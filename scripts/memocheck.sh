#!/bin/sh
# memocheck.sh — end-to-end report-determinism check for trigger-point
# prefix memoization.
#
# Builds the lfi CLI, generates the demo libc + a small target, runs a
# non-memoized snapshot sweep as the reference report, then sweeps the
# same matrix with the prefix memo cache (the -snapshot default) across
# both execution engines, 1/4/8 workers, CoW and flat restores, and a
# starved -memo-budget that forces evictions. Every report must be
# byte-identical: memoization shares the pre-fault prefix across
# experiments, it never changes what any experiment observes.
#
# A second leg replays the -max-crashes and -store/-resume flows under
# memoization against their non-memoized counterparts — truncation and
# resume bookkeeping must not drift when entries are served from shared
# prefixes.
#
#   ./scripts/memocheck.sh
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/lfi-memocheck-XXXXXX")"
trap 'rm -rf "$work"' EXIT

go build -o "$work/lfi" ./cmd/lfi

"$work/lfi" demo -o "$work" >/dev/null

cat >"$work/app.mc" <<'EOF'
needs "libc.so";
extern int strcmp(byte *a, byte *b);
extern int strncmp(byte *a, byte *b, int n);
extern byte *malloc(int n);
int main(void) {
  int r;
  byte *p;
  r = strcmp("a", "a");
  if (r != 0) { r = 0; }
  r = strncmp("ab", "ab", 2);
  if (r != 0) { r = 0; }
  p = malloc(4);
  p[0] = 'x';
  return 0;
}
EOF
"$work/lfi" build -exe -name app -o "$work/app.slef" "$work/app.mc" >/dev/null

base="-app $work/app.slef -lib $work/libc.slef -profile $work/libc.so.profile.xml"

echo "== non-memoized snapshot sweep (reference) =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 4 -snapshot -memo=false >"$work/ref.txt"
grep '^summary:' "$work/ref.txt"

echo "== memoized sweeps must match byte for byte =="
for engine in block step; do
	for mode in "-snapshot" "-snapshot -cow=false" "-snapshot -memo-budget 1"; do
		for j in 1 4 8; do
			# shellcheck disable=SC2086
			"$work/lfi" sweep $base -engine "$engine" -j "$j" $mode >"$work/got.txt" 2>"$work/stats.txt"
			if ! cmp -s "$work/ref.txt" "$work/got.txt"; then
				echo "memocheck: FAIL: report differs (engine=$engine j=$j mode='$mode')" >&2
				diff "$work/ref.txt" "$work/got.txt" >&2 || true
				exit 1
			fi
			if ! grep -q '^memo:' "$work/stats.txt"; then
				echo "memocheck: FAIL: no memo stats on stderr (engine=$engine j=$j mode='$mode')" >&2
				exit 1
			fi
			echo "ok: engine=$engine j=$j mode='$mode'"
		done
	done
done

echo "== -max-crashes truncation must agree with the non-memoized sweep =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 1 -snapshot -memo=false -max-crashes 1 >"$work/crash-ref.txt"
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 1 -snapshot -max-crashes 1 >"$work/crash-memo.txt" 2>/dev/null
if ! cmp -s "$work/crash-ref.txt" "$work/crash-memo.txt"; then
	echo "memocheck: FAIL: -max-crashes reports differ" >&2
	diff "$work/crash-ref.txt" "$work/crash-memo.txt" >&2 || true
	exit 1
fi
echo "ok: -max-crashes 1"

echo "== resume from a half-completed store, memoized =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 2 -snapshot -max-crashes 1 -store "$work/campaign" >/dev/null 2>&1
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 4 -snapshot -store "$work/campaign" -resume >"$work/resumed.txt" 2>/dev/null
if ! cmp -s "$work/ref.txt" "$work/resumed.txt"; then
	echo "memocheck: FAIL: memoized resumed report differs from reference" >&2
	diff "$work/ref.txt" "$work/resumed.txt" >&2 || true
	exit 1
fi
echo "ok: -store/-resume"

echo "memocheck: OK"
