#!/bin/sh
# benchvm.sh — step-vs-block engine comparison for the VM benchmarks.
#
# Prints a ns/op table for the BenchmarkVMExec kernels (both engines run
# as sub-benchmarks of one invocation) and A/Bs the end-to-end campaign
# benchmarks across engines via the LFI_ENGINE hook in bench_test.go.
# Run it before and after touching internal/vm to spot regressions:
#
#   ./scripts/benchvm.sh             # quick (default benchtime)
#   BENCHTIME=2s ./scripts/benchvm.sh
#
# The recorded baseline lives in BENCH_vm.json.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"

echo "== BenchmarkVMExec (ns per guest instruction; step vs block per kernel) =="
go test -run '^$' -bench BenchmarkVMExec -benchtime "$BENCHTIME" . |
	awk '/^BenchmarkVMExec/ {
		split($1, parts, "/");
		kernel = parts[2]; engine = parts[3];
		sub(/-[0-9]+$/, "", engine);
		ns[kernel "/" engine] = $3;
		if (!(kernel in seen)) { order[++n] = kernel; seen[kernel] = 1 }
	}
	END {
		printf "%-14s %10s %10s %8s\n", "kernel", "step", "block", "speedup";
		for (i = 1; i <= n; i++) {
			k = order[i];
			s = ns[k "/step"]; b = ns[k "/block"];
			printf "%-14s %8.2fns %8.2fns %7.2fx\n", k, s, b, s / b;
		}
	}'

echo
echo "== BenchmarkRestoreCoW (per-experiment restore+run; cow vs flat) =="
go test -run '^$' -bench BenchmarkRestoreCoW -benchtime "$BENCHTIME" . |
	awk '/^BenchmarkRestoreCoW/ {
		split($1, parts, "/");
		mode = parts[2];
		sub(/-[0-9]+$/, "", mode);
		ns[mode] = $3;
	}
	END {
		printf "%-14s %10s %10s %8s\n", "", "cow", "flat", "speedup";
		printf "%-14s %8.0fns %8.0fns %7.2fx\n", "restore+run", ns["cow"], ns["flat"], ns["flat"] / ns["cow"];
	}'

echo
echo "== End-to-end campaign (BenchmarkSweepSnapshot / BenchmarkSweepParallel) =="
for engine in step block; do
	echo "-- engine=$engine"
	LFI_ENGINE=$engine go test -run '^$' \
		-bench 'BenchmarkSweepSnapshot|BenchmarkSweepParallel' \
		-benchtime "$BENCHTIME" . | grep '^Benchmark'
done
