#!/bin/sh
# auditcheck.sh — end-to-end determinism check for the caller-side audit
# and the audit-prioritised execution order.
#
# Builds the lfi CLI, generates the demo libc + a target with a mix of
# checked and unchecked call sites, then proves two properties:
#
#   1. `lfi audit` is deterministic (byte-identical across runs), exits
#      nonzero exactly when unchecked sites exist, and classifies the
#      known sites correctly.
#   2. `lfi sweep -order=static` only reorders execution — the
#      reassembled report is byte-identical to the default-order sweep
#      across both engines, 1/4/8 workers, fresh/CoW/flat restores, and
#      memoization on/off.
#
#   ./scripts/auditcheck.sh
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/lfi-auditcheck-XXXXXX")"
trap 'rm -rf "$work"' EXIT

go build -o "$work/lfi" ./cmd/lfi

"$work/lfi" demo -o "$work" >/dev/null

cat >"$work/app.mc" <<'EOF'
needs "libc.so";
extern int strcmp(byte *a, byte *b);
extern int strncmp(byte *a, byte *b, int n);
extern byte *malloc(int n);
int main(void) {
  int r;
  byte *p;
  r = strcmp("a", "a");
  if (r != 0) { return 2; }
  r = strncmp("ab", "ab", 2);
  if (r != 0) { r = 0; }
  p = malloc(4);
  p[0] = 'x';
  return 0;
}
EOF
"$work/lfi" build -exe -name app -o "$work/app.slef" "$work/app.mc" >/dev/null

base="-app $work/app.slef -lib $work/libc.slef -profile $work/libc.so.profile.xml"

echo "== audit is deterministic and exits nonzero on unchecked sites =="
rc=0
"$work/lfi" audit -lib "$work/libc.slef" -profile "$work/libc.so.profile.xml" "$work/app.slef" >"$work/audit1.txt" 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
	echo "auditcheck: FAIL: audit exited 0 with unchecked call sites present" >&2
	exit 1
fi
rc=0
"$work/lfi" audit -lib "$work/libc.slef" -profile "$work/libc.so.profile.xml" "$work/app.slef" >"$work/audit2.txt" 2>&1 || rc=$?
if ! cmp -s "$work/audit1.txt" "$work/audit2.txt"; then
	echo "auditcheck: FAIL: audit output differs between identical runs" >&2
	diff "$work/audit1.txt" "$work/audit2.txt" >&2 || true
	exit 1
fi
grep -q 'main -> strcmp: checked' "$work/audit1.txt"
grep -q 'main -> malloc: unchecked-clobbered' "$work/audit1.txt"
grep -q 'unchecked call site' "$work/audit1.txt"
echo "ok: audit deterministic, exit=$rc, classes as expected"

echo "== audit exits zero when every call site is checked =="
# The app alone, without the libc binary: the demo libc's own
# puts_fd -> write site is unchecked by design, so a clean exit is only
# expected when auditing the application's call sites.
cat >"$work/clean.mc" <<'EOF'
needs "libc.so";
extern int open(byte *path, int flags, int mode);
int main(void) {
  int fd;
  fd = open("/etc/motd", 0, 0);
  if (fd < 0) { return 2; }
  return 0;
}
EOF
"$work/lfi" build -exe -name clean -o "$work/clean.slef" "$work/clean.mc" >/dev/null
"$work/lfi" audit -profile "$work/libc.so.profile.xml" "$work/clean.slef" >"$work/clean.txt"
grep -q 'unchecked: 0 site(s)' "$work/clean.txt"
echo "ok: clean target audits clean"

echo "== default-order reference sweep =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 1 >"$work/ref.txt"
grep '^summary:' "$work/ref.txt"

echo "== -order=static reports must match byte for byte =="
for engine in block step; do
	for mode in "" "-snapshot" "-snapshot -cow=false" "-snapshot -memo=false"; do
		for j in 1 4 8; do
			# shellcheck disable=SC2086
			"$work/lfi" sweep $base -order=static -engine "$engine" -j "$j" $mode >"$work/got.txt" 2>/dev/null
			if ! cmp -s "$work/ref.txt" "$work/got.txt"; then
				echo "auditcheck: FAIL: static-order report differs (engine=$engine j=$j mode='$mode')" >&2
				diff "$work/ref.txt" "$work/got.txt" >&2 || true
				exit 1
			fi
			echo "ok: engine=$engine j=$j mode='$mode'"
		done
	done
done

echo "== static order fronts the crash under -max-crashes 1 =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 1 -order=static -max-crashes 1 >"$work/first.txt" 2>/dev/null
if ! grep -q 'malloc.*crash' "$work/first.txt"; then
	echo "auditcheck: FAIL: first static-order experiment is not the unchecked malloc crash" >&2
	cat "$work/first.txt" >&2
	exit 1
fi
echo "ok: -order=static -max-crashes 1 lands on the unchecked malloc fault"

echo "auditcheck: OK"
