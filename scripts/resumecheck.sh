#!/bin/sh
# resumecheck.sh — end-to-end resume-determinism check for the
# persistent campaign store.
#
# Builds the lfi CLI, generates the demo libc + a small target with a
# crash path, then:
#
#   1. runs a fresh full sweep (the reference report);
#   2. runs the same sweep into a -store, "killed" partway by
#      -max-crashes 1;
#   3. resumes from the half-completed store (fresh and snapshot
#      executors, several worker counts) and diffs every resumed report
#      against the reference — any byte of difference fails.
#
#   ./scripts/resumecheck.sh
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/lfi-resumecheck-XXXXXX")"
trap 'rm -rf "$work"' EXIT

go build -o "$work/lfi" ./cmd/lfi

"$work/lfi" demo -o "$work" >/dev/null

cat >"$work/app.mc" <<'EOF'
needs "libc.so";
extern int strcmp(byte *a, byte *b);
extern int strncmp(byte *a, byte *b, int n);
extern byte *malloc(int n);
int main(void) {
  int r;
  byte *p;
  r = strcmp("a", "a");
  if (r != 0) { r = 0; }
  r = strncmp("ab", "ab", 2);
  if (r != 0) { r = 0; }
  p = malloc(4);
  p[0] = 'x';
  return 0;
}
EOF
"$work/lfi" build -exe -name app -o "$work/app.slef" "$work/app.mc" >/dev/null

base="-app $work/app.slef -lib $work/libc.slef -profile $work/libc.so.profile.xml"

echo "== fresh full sweep (reference) =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 4 >"$work/fresh.txt"
grep '^summary:' "$work/fresh.txt"

echo "== killed campaign (-max-crashes 1 -> half-completed store) =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 2 -max-crashes 1 -store "$work/campaign" >"$work/partial.txt"
if cmp -s "$work/fresh.txt" "$work/partial.txt"; then
	echo "resumecheck: FAIL: -max-crashes run was not truncated" >&2
	exit 1
fi
wc -l <"$work/campaign/results.jsonl" | xargs echo "records persisted:"

echo "== resume: every report must be byte-identical to the reference =="
for mode in "" "-snapshot"; do
	for j in 1 4 8; do
		# shellcheck disable=SC2086
		"$work/lfi" sweep $base -j "$j" $mode -store "$work/campaign" -resume >"$work/resume.txt"
		if ! cmp -s "$work/fresh.txt" "$work/resume.txt"; then
			echo "resumecheck: FAIL: resumed report differs (j=$j mode='$mode')" >&2
			diff "$work/fresh.txt" "$work/resume.txt" >&2 || true
			exit 1
		fi
		echo "ok: j=$j mode='${mode:-fresh-spawn}'"
	done
done

echo "== triage + escalation render deterministically =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 4 -store "$work/campaign" -resume -triage -escalate >"$work/triage1.txt"
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 8 -store "$work/campaign" -resume -triage -escalate >"$work/triage2.txt"
if ! cmp -s "$work/triage1.txt" "$work/triage2.txt"; then
	echo "resumecheck: FAIL: triage/escalation output differs across runs" >&2
	diff "$work/triage1.txt" "$work/triage2.txt" >&2 || true
	exit 1
fi
grep 'crash triage:' "$work/triage1.txt"
grep 'escalation:' "$work/triage1.txt"

echo "resumecheck: OK"
