#!/bin/sh
# availcheck.sh — end-to-end determinism check for the traffic-driven
# availability harness.
#
# Builds the lfi CLI and runs `lfi sweep -avail minidb` — a generated
# MiniC client pumping phased request traffic through the kernel's
# loopback sockets at the retrying WAL server while the fault matrix
# (one-shot errno, <delay>, <exhaust disk/fds>) opens mid-steady-state
# — as the single-worker fresh-spawn reference report. The same sweep
# must then render byte-identically across both execution engines,
# 1/4/8 workers, fresh spawns, CoW and flat snapshot restores, memo
# on/off and a starved memo budget: availability classes and per-phase
# served counts are computed from guest memory after multi-process
# request/response traffic, so any executor-visible divergence shows up
# as a flipped class or a shifted count.
#
# Further legs: -store/-resume bookkeeping of availability records
# (classes and served counts round-trip through the JSONL store), the
# availability triage clustering, and the non-retrying server's
# flagship divergence (write/errno: recovered vs degraded).
#
#   ./scripts/availcheck.sh
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/lfi-availcheck-XXXXXX")"
trap 'rm -rf "$work"' EXIT

go build -o "$work/lfi" ./cmd/lfi

echo "== single-worker fresh-spawn availability sweep (reference) =="
"$work/lfi" sweep -avail minidb -j 1 >"$work/ref.txt"
grep '^summary:' "$work/ref.txt"
for label in 'avail=recovered' 'avail=degraded' 'avail=wedged' 'served=200/'; do
	if ! grep -q "$label" "$work/ref.txt"; then
		echo "availcheck: FAIL: reference report has no $label rows" >&2
		exit 1
	fi
done

echo "== every executor configuration must match byte for byte =="
for engine in block step; do
	for mode in "" "-snapshot" "-snapshot -cow=false" "-snapshot -memo=false" "-snapshot -memo-budget 1"; do
		for j in 1 4 8; do
			# shellcheck disable=SC2086
			"$work/lfi" sweep -avail minidb -engine "$engine" -j "$j" $mode >"$work/got.txt" 2>/dev/null
			if ! cmp -s "$work/ref.txt" "$work/got.txt"; then
				echo "availcheck: FAIL: report differs (engine=$engine j=$j mode='${mode:-fresh}')" >&2
				diff "$work/ref.txt" "$work/got.txt" >&2 || true
				exit 1
			fi
			echo "ok: engine=$engine j=$j mode='${mode:-fresh}'"
		done
	done
done

echo "== availability records resume from a persistent store =="
"$work/lfi" sweep -avail minidb -j 2 -snapshot -store "$work/campaign" >/dev/null 2>&1
"$work/lfi" sweep -avail minidb -j 8 -snapshot -store "$work/campaign" -resume >"$work/resumed.txt" 2>/dev/null
if ! cmp -s "$work/ref.txt" "$work/resumed.txt"; then
	echo "availcheck: FAIL: resumed availability report differs from reference" >&2
	diff "$work/ref.txt" "$work/resumed.txt" >&2 || true
	exit 1
fi
echo "ok: -store/-resume"

echo "== triage clusters availability failures by class =="
"$work/lfi" sweep -avail minidb -j 4 -snapshot -store "$work/campaign" -resume -triage >"$work/triaged.txt" 2>/dev/null
for label in 'cluster 1 \[degraded\] reach=4' '\[wedged\] reach=3' 'avail=wedged served=' 'avail=degraded served='; do
	if ! grep -q "$label" "$work/triaged.txt"; then
		echo "availcheck: FAIL: triage is missing $label:" >&2
		cat "$work/triaged.txt" >&2
		exit 1
	fi
done
echo "ok: -triage"

echo "== flagship: the WAL retry decides write/errno =="
"$work/lfi" sweep -avail minidb-nr -j 4 -snapshot >"$work/nr.txt" 2>/dev/null
if ! grep -q 'libc.so.write -> -1.*avail=recovered' "$work/ref.txt"; then
	echo "availcheck: FAIL: retrying server did not recover from one-shot write errno" >&2
	exit 1
fi
if ! grep -q 'libc.so.write -> -1.*avail=degraded' "$work/nr.txt"; then
	echo "availcheck: FAIL: non-retrying server did not degrade under one-shot write errno" >&2
	exit 1
fi
if ! grep -q 'exhaust=disk:after=0.*avail=degraded' "$work/ref.txt" ||
	! grep -q 'delay=200000000.*avail=wedged' "$work/ref.txt"; then
	echo "availcheck: FAIL: persistent exhaustion/stall did not defeat the retry" >&2
	exit 1
fi
echo "ok: flagship comparison"

echo "availcheck: OK"
