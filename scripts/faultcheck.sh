#!/bin/sh
# faultcheck.sh — end-to-end determinism check for the stateful
# degradation fault models (<delay> latency injection, <exhaust> disk
# quota and fd pressure).
#
# Builds the lfi CLI, generates the demo libc + a target that opens and
# writes a file (so disk exhaustion and fd pressure actually bind), runs
# a non-memoized snapshot degradation sweep as the reference report,
# then sweeps the same matrix across both execution engines, 1/4/8
# workers, fresh spawns, CoW and flat restores, and a starved
# -memo-budget. Degradations mutate kernel state mid-run, so this is
# the strongest determinism claim in the tree: armed quotas and shrunk
# fd tables must restore bit-identically whichever executor ran them.
#
# Further legs: -faults all (errno + degradation concatenated),
# -store/-resume bookkeeping of degradation records, and replay
# fidelity — a replay plan minted from a degraded run must reproduce
# the original injection log byte for byte.
#
#   ./scripts/faultcheck.sh
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/lfi-faultcheck-XXXXXX")"
trap 'rm -rf "$work"' EXIT

go build -o "$work/lfi" ./cmd/lfi

"$work/lfi" demo -o "$work" >/dev/null

cat >"$work/app.mc" <<'EOF'
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int write(int fd, byte *buf, int n);
int main(void) {
  int fd;
  int i;
  fd = open("/out", 65, 0);
  if (fd < 0) { return 3; }
  i = 0;
  while (i < 4) {
    if (write(fd, "abcdefgh", 8) < 8) { close(fd); return 4; }
    i = i + 1;
  }
  close(fd);
  return 0;
}
EOF
"$work/lfi" build -exe -name app -o "$work/app.slef" "$work/app.mc" >/dev/null

base="-app $work/app.slef -lib $work/libc.slef -profile $work/libc.so.profile.xml"

echo "== non-memoized snapshot degradation sweep (reference) =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -faults degradation -j 4 -snapshot -memo=false >"$work/ref.txt"
grep '^summary:' "$work/ref.txt"
for label in 'delay=' 'exhaust=disk:after=' 'exhaust=fds:slots='; do
	if ! grep -q "$label" "$work/ref.txt"; then
		echo "faultcheck: FAIL: reference report has no $label rows" >&2
		exit 1
	fi
done

echo "== every executor configuration must match byte for byte =="
for engine in block step; do
	for mode in "" "-snapshot" "-snapshot -cow=false" "-snapshot -memo-budget 1"; do
		for j in 1 4 8; do
			# shellcheck disable=SC2086
			"$work/lfi" sweep $base -faults degradation -engine "$engine" -j "$j" $mode >"$work/got.txt" 2>/dev/null
			if ! cmp -s "$work/ref.txt" "$work/got.txt"; then
				echo "faultcheck: FAIL: report differs (engine=$engine j=$j mode='${mode:-fresh}')" >&2
				diff "$work/ref.txt" "$work/got.txt" >&2 || true
				exit 1
			fi
			echo "ok: engine=$engine j=$j mode='${mode:-fresh}'"
		done
	done
done

echo "== -faults all is the errno matrix plus the degradation matrix =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -faults all -j 4 -snapshot >"$work/all-memo.txt" 2>/dev/null
# shellcheck disable=SC2086
"$work/lfi" sweep $base -faults all -j 1 >"$work/all-fresh.txt"
if ! cmp -s "$work/all-memo.txt" "$work/all-fresh.txt"; then
	echo "faultcheck: FAIL: -faults all differs between memoized and fresh executors" >&2
	diff "$work/all-memo.txt" "$work/all-fresh.txt" >&2 || true
	exit 1
fi
if ! grep -q 'errno=' "$work/all-memo.txt" || ! grep -q 'exhaust=disk:after=' "$work/all-memo.txt"; then
	echo "faultcheck: FAIL: -faults all is missing a fault-model family" >&2
	exit 1
fi
echo "ok: -faults all"

echo "== degradation records resume from a persistent store =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -faults degradation -j 2 -snapshot -store "$work/campaign" >/dev/null 2>&1
# shellcheck disable=SC2086
"$work/lfi" sweep $base -faults degradation -j 8 -snapshot -store "$work/campaign" -resume >"$work/resumed.txt" 2>/dev/null
if ! cmp -s "$work/ref.txt" "$work/resumed.txt"; then
	echo "faultcheck: FAIL: resumed degradation report differs from reference" >&2
	diff "$work/ref.txt" "$work/resumed.txt" >&2 || true
	exit 1
fi
echo "ok: -store/-resume"

echo "== a minted replay plan reproduces the degraded run's log =="
cat >"$work/plan.xml" <<'EOF'
<plan>
  <function name="open" inject="1" once="true">
    <exhaust resource="disk" after="8"></exhaust>
  </function>
  <function name="write" inject="2" once="true" retval="-1" errno="ENOSPC" calloriginal="false">
    <delay cycles="1000"></delay>
  </function>
</plan>
EOF
# shellcheck disable=SC2086
"$work/lfi" run $base -plan "$work/plan.xml" -log "$work/log1.txt" -replay "$work/replay.xml" >"$work/run1.txt"
# shellcheck disable=SC2086
"$work/lfi" run $base -plan "$work/replay.xml" -log "$work/log2.txt" >"$work/run2.txt"
for f in log run; do
	if ! cmp -s "$work/${f}1.txt" "$work/${f}2.txt"; then
		echo "faultcheck: FAIL: replayed $f differs from the original degraded run" >&2
		diff "$work/${f}1.txt" "$work/${f}2.txt" >&2 || true
		exit 1
	fi
done
if ! grep -q 'exhaust=disk' "$work/log1.txt" || ! grep -q 'delay=1000' "$work/log1.txt"; then
	echo "faultcheck: FAIL: injection log does not record the degradations:" >&2
	cat "$work/log1.txt" >&2
	exit 1
fi
echo "ok: replay fidelity"

echo "faultcheck: OK"
