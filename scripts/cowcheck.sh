#!/bin/sh
# cowcheck.sh — end-to-end report-determinism check for the
# copy-on-write snapshot restore.
#
# Builds the lfi CLI, generates the demo libc + a small target, runs a
# fresh-spawn sweep as the reference report, then sweeps the same
# matrix under every executor the CLI exposes — fresh-spawn, snapshot
# with CoW restores (the default) and snapshot with flat deep-copy
# restores (-cow=false) — at 1, 4 and 8 workers, under both execution
# engines. Every report must be byte-identical to the reference: the
# restore representation and the engine are performance choices, never
# observable ones.
#
#   ./scripts/cowcheck.sh
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d "${TMPDIR:-/tmp}/lfi-cowcheck-XXXXXX")"
trap 'rm -rf "$work"' EXIT

go build -o "$work/lfi" ./cmd/lfi

"$work/lfi" demo -o "$work" >/dev/null

cat >"$work/app.mc" <<'EOF'
needs "libc.so";
extern int strcmp(byte *a, byte *b);
extern int strncmp(byte *a, byte *b, int n);
extern byte *malloc(int n);
int main(void) {
  int r;
  byte *p;
  r = strcmp("a", "a");
  if (r != 0) { r = 0; }
  r = strncmp("ab", "ab", 2);
  if (r != 0) { r = 0; }
  p = malloc(4);
  p[0] = 'x';
  return 0;
}
EOF
"$work/lfi" build -exe -name app -o "$work/app.slef" "$work/app.mc" >/dev/null

base="-app $work/app.slef -lib $work/libc.slef -profile $work/libc.so.profile.xml"

echo "== fresh-spawn sweep (reference) =="
# shellcheck disable=SC2086
"$work/lfi" sweep $base -j 4 >"$work/fresh.txt"
grep '^summary:' "$work/fresh.txt"

echo "== every executor x worker count x engine must match byte for byte =="
for engine in block step; do
	for mode in "" "-snapshot" "-snapshot -cow=false"; do
		for j in 1 4 8; do
			# shellcheck disable=SC2086
			"$work/lfi" sweep $base -engine "$engine" -j "$j" $mode >"$work/got.txt"
			if ! cmp -s "$work/fresh.txt" "$work/got.txt"; then
				echo "cowcheck: FAIL: report differs (engine=$engine j=$j mode='${mode:-fresh-spawn}')" >&2
				diff "$work/fresh.txt" "$work/got.txt" >&2 || true
				exit 1
			fi
			echo "ok: engine=$engine j=$j mode='${mode:-fresh-spawn}'"
		done
	done
done

echo "cowcheck: OK"
