package lfi_test

// One benchmark per table and figure of the paper's evaluation (§6), plus
// microbenchmarks and ablations of the design choices called out in
// DESIGN.md. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Virtual-time metrics (vsec/op, vcycles/call) come from the VM's
// deterministic cycle accounting; wall-clock ns/op reflects the host.

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/corpus"
	"lfi/internal/experiments"
	"lfi/internal/kernel"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
	"lfi/internal/profiler"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// LFI_ENGINE=step|block pins the VM engine for every system the
// benchmarks build — the harness-side twin of the cmd binaries' -engine
// flag. scripts/benchvm.sh uses it to A/B the end-to-end campaign
// benchmarks (BenchmarkSweepSnapshot and friends) across engines.
func init() {
	if err := vm.SetDefaultEngine(os.Getenv("LFI_ENGINE")); err != nil {
		panic(err) // a typo here would silently A/B block against block
	}
}

// benchEnv caches the compiled environment across benchmarks.
var benchEnv *experiments.Env

func env(b *testing.B) *experiments.Env {
	b.Helper()
	if benchEnv == nil {
		e, err := experiments.NewEnv()
		if err != nil {
			b.Fatal(err)
		}
		benchEnv = e
	}
	return benchEnv
}

// BenchmarkFigure2CFG rebuilds the paper's example CFG.
func BenchmarkFigure2CFG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1SideChannelStats regenerates Table 1 on a 1000-function
// corpus slice (use cmd/lfi-bench -funcs 20000 for the paper-scale run).
func BenchmarkTable1SideChannelStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(1000, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.NoSideEffectFraction(), "%no-side-effects")
	}
}

// BenchmarkTable2ProfilerAccuracy regenerates the full 18-library accuracy
// table plus the libpcre baseline.
func BenchmarkTable2ProfilerAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MeanAccuracy(), "%mean-accuracy")
	}
}

// BenchmarkProfilerEfficiency is the §6.2 series: profiling time per
// library size.
func BenchmarkProfilerEfficiency(b *testing.B) {
	for _, spec := range corpus.EfficiencySpecs() {
		spec := spec
		b.Run(spec.Traits.Name, func(b *testing.B) {
			lib, err := corpus.Generate(spec.Traits)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr := profiler.New(profiler.Options{DropZeroReturns: true, DropPredicates: true})
				if err := pr.AddLibrary(lib.Object); err != nil {
					b.Fatal(err)
				}
				if _, err := pr.ProfileLibrary(spec.Traits.Name); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(lib.Object.Text))/1024, "codeKB")
		})
	}
}

// BenchmarkProfilerLibc profiles the synthetic libc with kernel-image
// recursion — the §3.1 wrapper analysis end to end.
func BenchmarkProfilerLibc(b *testing.B) {
	lc, err := libc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	img, err := kernel.Image()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := profiler.New(profiler.Options{DropZeroReturns: true})
		if err := pr.AddLibrary(lc); err != nil {
			b.Fatal(err)
		}
		if err := pr.AddLibrary(img); err != nil {
			b.Fatal(err)
		}
		if _, err := pr.ProfileLibrary(libc.Name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ApacheOverhead reruns Table 3 cells; vsec/op is the
// virtual completion time of the request batch.
func BenchmarkTable3ApacheOverhead(b *testing.B) {
	e := env(b)
	for _, triggers := range []int{0, 1000} {
		for _, path := range []string{"/index.html", "/app.php"} {
			name := map[int]string{0: "baseline", 1000: "1000triggers"}[triggers] + path
			b.Run(name, func(b *testing.B) {
				var vsecs float64
				for i := 0; i < b.N; i++ {
					r, err := experiments.Table3Cell(e, triggers, path, 50)
					if err != nil {
						b.Fatal(err)
					}
					vsecs = r.Seconds()
				}
				b.ReportMetric(vsecs, "vsec/batch")
			})
		}
	}
}

// BenchmarkTable4MySQLOverhead reruns Table 4 cells; vtps is transactions
// per virtual second.
func BenchmarkTable4MySQLOverhead(b *testing.B) {
	e := env(b)
	for _, triggers := range []int{0, 1000} {
		for _, kind := range []string{"ro", "rw"} {
			name := map[int]string{0: "baseline", 1000: "1000triggers"}[triggers] + "/" + kind
			b.Run(name, func(b *testing.B) {
				var tps float64
				for i := 0; i < b.N; i++ {
					r, err := experiments.Table4Cell(e, triggers, kind == "rw", 30)
					if err != nil {
						b.Fatal(err)
					}
					tps = r.TPS()
				}
				b.ReportMetric(tps, "vtps")
			})
		}
	}
}

// BenchmarkPidginBugHunt finds and replays the §6.1 crash.
func BenchmarkPidginBugHunt(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.PidginBug(e, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Injections), "injections")
	}
}

// BenchmarkDBCoverage reruns the §6.1 coverage experiment.
func BenchmarkDBCoverage(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.DBCoverage(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.WithLFI-r.Baseline), "coverage-points-gained")
	}
}

// BenchmarkInterceptionPath measures the per-call cost of the synthesised
// stub (count, trigger evaluation, DlNext tail jump) in virtual cycles —
// the mechanism behind Tables 3/4.
func BenchmarkInterceptionPath(b *testing.B) {
	lc, err := libc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	app, err := minic.Compile("bench", `
needs "libc.so";
extern int getpid(void);
int main(void) {
  int i;
  for (i = 0; i < 1000; i = i + 1) { getpid(); }
  return 0;
}`, obj.Executable)
	if err != nil {
		b.Fatal(err)
	}
	run := func(withLFI bool) uint64 {
		sys := vm.NewSystem(vm.Options{})
		sys.Register(lc)
		sys.Register(app)
		cfg := vm.SpawnConfig{}
		if withLFI {
			plan := &scenario.Plan{Triggers: []scenario.Trigger{{
				Function: "getpid", Inject: 1 << 30, Retval: "-1",
			}}}
			ctl := controller.New(nil, plan)
			ctl.PassThrough = true
			if err := ctl.Install(sys); err != nil {
				b.Fatal(err)
			}
			cfg.Preload = ctl.PreloadList()
		}
		if _, err := sys.Spawn("bench", cfg); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(0); err != nil {
			b.Fatal(err)
		}
		return sys.TotalCycles
	}
	var base, intercepted uint64
	for i := 0; i < b.N; i++ {
		base = run(false)
		intercepted = run(true)
	}
	b.ReportMetric(float64(intercepted-base)/1000, "vcycles/intercepted-call")
}

// BenchmarkAblationSearchBudget compares the bounded on-demand
// product-graph expansion against an effectively unbounded search — the
// DESIGN.md ablation for §3.1's "generates G' on demand, only expanding
// the nodes of interest".
func BenchmarkAblationSearchBudget(b *testing.B) {
	lib, err := corpus.Generate(corpus.Traits{
		Name: "libbench.so", Seed: 5, NumFuncs: 120, TPItems: 120, FNItems: 12, FPItems: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name      string
		maxStates int
	}{
		{"budget64", 64},
		{"budget4096", 4096},
		{"unbounded", 1 << 30},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				pr := profiler.New(profiler.Options{MaxStates: cfg.maxStates})
				if err := pr.AddLibrary(lib.Object); err != nil {
					b.Fatal(err)
				}
				if _, err := pr.ProfileLibrary("libbench.so"); err != nil {
					b.Fatal(err)
				}
				states = pr.Stats().StatesExpanded
			}
			b.ReportMetric(float64(states), "product-states")
		})
	}
}

// BenchmarkAblationHeuristics measures the §3.1 heuristics' effect on
// accuracy versus documentation (off = paper default).
func BenchmarkAblationHeuristics(b *testing.B) {
	lib, err := corpus.Generate(corpus.Traits{
		Name: "libheur.so", Seed: 9, NumFuncs: 150, TPItems: 150, FNItems: 15, FPItems: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	docs := lib.DocumentedItems()
	for _, cfg := range []struct {
		name string
		on   bool
	}{{"heuristicsOff", false}, {"heuristicsOn", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				pr := profiler.New(profiler.Options{
					DropZeroReturns: cfg.on, DropPredicates: cfg.on,
				})
				if err := pr.AddLibrary(lib.Object); err != nil {
					b.Fatal(err)
				}
				p, err := pr.ProfileLibrary("libheur.so")
				if err != nil {
					b.Fatal(err)
				}
				acc = corpus.Compare(corpus.ProfiledItems(p), docs).Accuracy()
			}
			b.ReportMetric(100*acc, "%accuracy")
		})
	}
}

// BenchmarkAblationSymbolicPruning measures the future-work extension
// (§3.1 symbolic path feasibility): FP reduction and its analysis cost.
func BenchmarkAblationSymbolicPruning(b *testing.B) {
	lib, err := corpus.Generate(corpus.Traits{
		Name: "libsymb.so", Seed: 21, NumFuncs: 100, TPItems: 100, FNItems: 10, FPItems: 14,
	})
	if err != nil {
		b.Fatal(err)
	}
	docs := lib.DocumentedItems()
	for _, cfg := range []struct {
		name  string
		prune bool
	}{{"pruneOff", false}, {"pruneOn", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var fp int
			for i := 0; i < b.N; i++ {
				pr := profiler.New(profiler.Options{
					DropZeroReturns: true, DropPredicates: true,
					PruneInfeasible: cfg.prune,
				})
				if err := pr.AddLibrary(lib.Object); err != nil {
					b.Fatal(err)
				}
				p, err := pr.ProfileLibrary("libsymb.so")
				if err != nil {
					b.Fatal(err)
				}
				fp = corpus.Compare(corpus.ProfiledItems(p), docs).FP
			}
			b.ReportMetric(float64(fp), "false-positives")
		})
	}
}

// BenchmarkStubSynthesis measures controller stub-library generation for
// growing interception surfaces.
func BenchmarkStubSynthesis(b *testing.B) {
	e := env(b)
	plan := scenario.Exhaustive(e.LibcProfiles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl := controller.New(e.LibcProfiles, plan)
		if _, err := ctl.StubLibrary(); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepBenchApp models a corpus application: a compute phase (config
// parsing stand-in) followed by the open/read/close/malloc/write sequence
// the sweep injects into. The compute loop is sized like the §2
// matrix's short config-loading runs: enough virtual work that a run is
// not free, short enough that per-experiment setup — what the snapshot
// runtime amortises — is a realistic share of campaign cost.
const sweepBenchApp = `
needs "libc.so";
needs "libbig.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern int write(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  int i;
  int acc;
  byte buf[32];
  byte *p;
  acc = 0;
  for (i = 0; i < 1000; i = i + 1) { acc = acc + i; }
  fd = open("/data", 0, 0);
  if (fd < 0) { return 2; }
  n = read(fd, buf, 31);
  if (n < 0) { n = 0; }
  close(fd);
  p = malloc(64);
  if (p == 0) { return 7; }
  p[0] = 'x';
  write(1, buf, n);
  return 0;
}
`

// sweepBenchTarget builds the shared target and a profile whose matrix
// has a dozen (function, error code) experiments. Besides libc the
// target links a 400-function corpus library it barely uses — the
// paper's reality, where applications load hundreds of KB of shared
// library text per process and exercise a sliver of it. Fresh spawns
// re-copy, re-relocate and re-decode all of it per experiment; the
// snapshot runtime shares it immutably across restores.
func sweepBenchTarget(b *testing.B) (core.CampaignConfig, profile.Set) {
	b.Helper()
	lc, err := libc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	big, err := corpus.Generate(corpus.Traits{Name: "libbig.so", Seed: 3, NumFuncs: 400})
	if err != nil {
		b.Fatal(err)
	}
	app, err := minic.Compile("swept", sweepBenchApp, obj.Executable)
	if err != nil {
		b.Fatal(err)
	}
	tls := func(errno int32) []profile.SideEffect {
		return []profile.SideEffect{{Type: profile.SideEffectTLS, Module: libc.Name, Value: errno}}
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: []profile.ErrorCode{
				{Retval: -1, SideEffects: tls(13)}, {Retval: -1, SideEffects: tls(2)},
			}},
			{Name: "read", ErrorCodes: []profile.ErrorCode{
				{Retval: -1, SideEffects: tls(5)}, {Retval: -1, SideEffects: tls(4)},
			}},
			{Name: "close", ErrorCodes: []profile.ErrorCode{
				{Retval: -1, SideEffects: tls(9)},
			}},
			{Name: "malloc", ErrorCodes: []profile.ErrorCode{
				{Retval: 0, SideEffects: tls(12)},
			}},
			{Name: "write", ErrorCodes: []profile.ErrorCode{
				{Retval: -1, SideEffects: tls(32)}, {Retval: -1, SideEffects: tls(5)},
			}},
		},
	}}
	cfg := core.CampaignConfig{
		Programs:   []*obj.File{lc, big.Object, app},
		Executable: "swept",
		Files:      map[string][]byte{"/data": []byte("mode=bench\n")},
		// The app touches a few KB; right-size the address space so
		// neither executor pays for untouched gigabytes of zeroes.
		// Both executors get the same options, so the ratio is fair.
		VM: vm.Options{StackSize: 1 << 16, HeapLimit: 1 << 18},
	}
	return cfg, set
}

// BenchmarkSweepSequential is the single-worker reference: the whole
// (function, error code) matrix, one fresh VM per experiment, in plan
// order on one goroutine.
func BenchmarkSweepSequential(b *testing.B) {
	cfg, set := sweepBenchTarget(b)
	b.ResetTimer()
	var entries int
	for i := 0; i < b.N; i++ {
		res, err := core.Sweep(cfg, set, 0)
		if err != nil {
			b.Fatal(err)
		}
		entries = len(res.Entries)
	}
	b.ReportMetric(float64(entries), "experiments")
}

// BenchmarkSweepParallel is the same matrix over the worker-pool campaign
// scheduler at GOMAXPROCS — the ZOFI-style claim that campaign throughput
// scales with cores because experiments are independent.
func BenchmarkSweepParallel(b *testing.B) {
	cfg, set := sweepBenchTarget(b)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	var entries int
	for i := 0; i < b.N; i++ {
		res, err := core.SweepParallel(cfg, set, 0, workers)
		if err != nil {
			b.Fatal(err)
		}
		entries = len(res.Entries)
	}
	b.ReportMetric(float64(entries), "experiments")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkSweepSnapshot is the same matrix and worker count on the
// fork-server runtime: the load pipeline (text copy, relocation,
// decode, symbol maps, stub synthesis) runs once into a vm.Snapshot and
// every experiment restores from it in O(writable bytes). The ratio to
// BenchmarkSweepParallel is the per-experiment-setup share of campaign
// cost that snapshotting eliminates (BENCH_sweep.json). Memoization is
// pinned off: this is the plain-restore reference the BenchmarkSweepMemo
// A/B compares against (and on this short-prefix 8-experiment matrix
// the memo's step-wise prefix runs cost more than 2-member groups
// amortise).
func BenchmarkSweepSnapshot(b *testing.B) {
	cfg, set := sweepBenchTarget(b)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	var entries int
	for i := 0; i < b.N; i++ {
		res, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
			core.SweepOptions{Workers: workers, Snapshot: true, NoMemo: true})
		if err != nil {
			b.Fatal(err)
		}
		entries = len(res.Entries)
	}
	b.ReportMetric(float64(entries), "experiments")
	b.ReportMetric(float64(workers), "workers")
}

// memoBenchApp is the prefix-memoization bench target: a long compute
// phase (the paper's config-parse / state-build startup) before the
// first injectable call. Every experiment of an exhaustive errno sweep
// replays that startup identically up to its trigger site — exactly the
// cost prefix memoization shares, once per (function, call) group
// instead of once per errno variant.
const memoBenchApp = `
needs "libc.so";
needs "libbig.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern int write(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  int i;
  int acc;
  byte buf[32];
  byte *p;
  acc = 0;
  for (i = 0; i < 60000; i = i + 1) { acc = acc + i; }
  fd = open("/data", 0, 0);
  if (fd < 0) { return 2; }
  n = read(fd, buf, 31);
  if (n < 0) { n = 0; }
  close(fd);
  p = malloc(64);
  if (p == 0) { return 7; }
  p[0] = 'x';
  write(1, buf, n);
  return 0;
}
`

// memoBenchTarget pairs the heavy-startup app with an exhaustive-style
// profile: 8 errno variants per function, the §3 documented-errno
// reality for POSIX I/O calls. 40 experiments over 5 first-fire sites —
// a memoized sweep runs 5 prefixes where a plain snapshot sweep runs 40.
func memoBenchTarget(b *testing.B) (core.CampaignConfig, profile.Set) {
	b.Helper()
	lc, err := libc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	big, err := corpus.Generate(corpus.Traits{Name: "libbig.so", Seed: 3, NumFuncs: 400})
	if err != nil {
		b.Fatal(err)
	}
	app, err := minic.Compile("memoized", memoBenchApp, obj.Executable)
	if err != nil {
		b.Fatal(err)
	}
	tls := func(errno int32) []profile.SideEffect {
		return []profile.SideEffect{{Type: profile.SideEffectTLS, Module: libc.Name, Value: errno}}
	}
	codes := func(retval int32, errnos ...int32) []profile.ErrorCode {
		var out []profile.ErrorCode
		for _, e := range errnos {
			out = append(out, profile.ErrorCode{Retval: retval, SideEffects: tls(e)})
		}
		return out
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: codes(-1, 1, 2, 4, 12, 13, 20, 23, 24)},
			{Name: "read", ErrorCodes: codes(-1, 4, 5, 9, 11, 12, 14, 21, 22)},
			{Name: "close", ErrorCodes: codes(-1, 4, 5, 9, 11, 14, 22, 23, 25)},
			{Name: "malloc", ErrorCodes: codes(0, 1, 2, 4, 5, 11, 12, 14, 22)},
			{Name: "write", ErrorCodes: codes(-1, 4, 5, 9, 11, 14, 22, 27, 28)},
		},
	}}
	cfg := core.CampaignConfig{
		Programs:   []*obj.File{lc, big.Object, app},
		Executable: "memoized",
		Files:      map[string][]byte{"/data": []byte("mode=bench\n")},
		VM:         vm.Options{StackSize: 1 << 16, HeapLimit: 1 << 18},
	}
	return cfg, set
}

// BenchmarkSweepMemo A/Bs prefix memoization on the heavy-startup
// exhaustive matrix: memo is the snapshot executor with the prefix
// cache (the default), nomemo the same executor with -memo=false.
// Reports are byte-identical (scripts/memocheck.sh); the ratio is the
// shared-prefix cost the memo cache eliminates, net of its step-wise
// prefix runs. Recorded in BENCH_sweep.json.
func BenchmarkSweepMemo(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noMemo bool
	}{{"memo", false}, {"nomemo", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg, set := memoBenchTarget(b)
			workers := runtime.GOMAXPROCS(0)
			b.ResetTimer()
			var entries, restored int
			for i := 0; i < b.N; i++ {
				res, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
					core.SweepOptions{Workers: workers, Snapshot: true, NoMemo: mode.noMemo})
				if err != nil {
					b.Fatal(err)
				}
				entries = len(res.Entries)
				if res.Memo != nil {
					restored = res.Memo.Restored
				}
			}
			b.ReportMetric(float64(entries), "experiments")
			b.ReportMetric(float64(workers), "workers")
			if !mode.noMemo {
				b.ReportMetric(float64(restored), "restored")
			}
		})
	}
}

// BenchmarkRestoreCoW isolates the per-experiment restore cost the
// copy-on-write snapshot buys back: a 1 MiB-stack guest that dirties
// only a couple of pages per run, restored and run to completion per
// iteration. Under cow (the default) a restore copies page-view
// headers plus the few dirtied pages; under flat it deep-copies every
// writable byte. The cow/flat ratio is the low-dirty-ratio speedup
// recorded in BENCH_sweep.json — per-restore cost must scale with
// dirtied pages, not writable-segment size.
func BenchmarkRestoreCoW(b *testing.B) {
	const dirtySrc = `
.exe dirty
.global main
.func main
  mov r2, 0
.loop:
  push r2
  add r2, 1
  cmp r2, 1024
  jne .loop
  mov r0, r2
  halt
`
	for _, mode := range []struct {
		name string
		flat bool
	}{{"cow", false}, {"flat", true}} {
		b.Run(mode.name, func(b *testing.B) {
			sys := vm.NewSystem(vm.Options{StackSize: 1 << 20, HeapLimit: 1 << 16, FlatRestore: mode.flat})
			f, err := asm.Assemble("dirty.s", dirtySrc)
			if err != nil {
				b.Fatal(err)
			}
			sys.Register(f)
			if _, err := sys.Spawn("dirty", vm.SpawnConfig{}); err != nil {
				b.Fatal(err)
			}
			snap, err := sys.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := snap.Restore()
				if err := r.Run(1_000_000); err != nil {
					b.Fatal(err)
				}
				if p := r.Procs()[0]; !p.Exited || p.Status.Code != 1024 {
					b.Fatalf("bad exit: %+v", p.Status)
				}
			}
		})
	}
}

// exhaustiveStylePlan models an exhaustive libc faultload: nfns
// functions, two (error code) triggers each, none of which fires during
// the measured calls — the pure per-call trigger-evaluation cost the
// paper's Tables 3/4 methodology isolates.
func exhaustiveStylePlan(nfns int) (*scenario.Plan, []string) {
	plan := &scenario.Plan{}
	fns := make([]string, nfns)
	for i := 0; i < nfns; i++ {
		fn := fmt.Sprintf("fn%04d", i)
		fns[i] = fn
		for c := 0; c < 2; c++ {
			plan.Triggers = append(plan.Triggers, scenario.Trigger{
				Function: fn,
				Inject:   int32(1_000_000_000 + c),
				Retval:   "-1",
				Errno:    "EIO",
			})
		}
	}
	return plan, fns
}

// BenchmarkEvaluatorLargePlan measures per-call trigger evaluation as
// the exhaustive plan grows 10x (100 -> 1000 triggers). The compiled
// engine indexes triggers per function, so its per-call cost stays flat
// (each function keeps 2 triggers regardless of plan size); the scan
// variant replicates the pre-compile engine — a full pass over the
// trigger list per call — whose cost grows linearly with the plan.
func BenchmarkEvaluatorLargePlan(b *testing.B) {
	for _, nfns := range []int{50, 500} {
		plan, fns := exhaustiveStylePlan(nfns)
		b.Run(fmt.Sprintf("compiled/%dtriggers", len(plan.Triggers)), func(b *testing.B) {
			cp, err := scenario.Compile(plan, nil)
			if err != nil {
				b.Fatal(err)
			}
			ev := cp.NewEvaluator()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ev.OnCall(fns[i%len(fns)], nil).Inject {
					b.Fatal("no trigger should fire")
				}
			}
			b.ReportMetric(float64(len(plan.Triggers)), "plan-triggers")
		})
		b.Run(fmt.Sprintf("scan/%dtriggers", len(plan.Triggers)), func(b *testing.B) {
			count := make(map[string]int32, len(fns))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn := fns[i%len(fns)]
				count[fn]++
				n := count[fn]
				for j := range plan.Triggers {
					t := &plan.Triggers[j]
					if t.Function != fn {
						continue
					}
					if t.Inject > 0 && t.Inject != n {
						continue
					}
					b.Fatal("no trigger should fire")
				}
			}
			b.ReportMetric(float64(len(plan.Triggers)), "plan-triggers")
		})
	}
}

// vmExecDispatchKernel is the straight-line dispatch kernel: unrolled,
// register-independent ALU work in ~100-instruction superblocks — the
// shape of compiled library code between calls, and the purest measure
// of per-instruction interpreter overhead (everything the block engine
// batches: image lookup, bounds check, coverage bit, cycle counters).
func vmExecDispatchKernel(b *testing.B) *obj.File {
	b.Helper()
	body := strings.Repeat(`  mov r1, 12345
  add r2, 3
  mov r3, 99
  add r4, 7
  sub r5, 1
  add r1, 11
`, 16)
	f, err := asm.Assemble("dispatch.s", `
.exe guest
.global main
.func main
  mov r0, 0
.loop:
`+body+`  add r0, 1
  cmp r0, 0
  jne .loop
  ret
`)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkVMExec is the instruction-throughput microbench behind
// BENCH_vm.json. Guests run for exactly b.N cycles per configuration,
// so ns/op is nanoseconds per guest instruction. Three kernels:
//
//   - dispatch: the straight-line ALU kernel, coverage off — raw
//     per-instruction overhead.
//   - dispatch-cov: the same kernel with instruction coverage on (the
//     campaign configuration behind sweep -prune baselines and the
//     §6.1 coverage experiment); the block engine's >=3x acceptance
//     target is measured here, where the step engine pays the honest
//     per-instruction bit-set that block batching eliminates.
//   - appmix: a MiniC corpus-style compute loop (stack-spill heavy:
//     ~45% push/pop/load/store) — the conservative bound.
//
// AllocsPerOp must be 0 everywhere (asserted hard by TestEngineAllocFree
// in internal/vm; reported here via -benchmem). scripts/benchvm.sh
// prints the step-vs-block comparison table.
func BenchmarkVMExec(b *testing.B) {
	lc, err := libc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	appmix, err := minic.Compile("guest", `
needs "libc.so";
int main(void) {
  int i;
  int acc;
  byte buf[16];
  for (i = 0; i < 2000000000; i = i + 1) {
    acc = acc + i * 3;
    buf[i & 15] = buf[i & 15] + 1;
    acc = acc ^ (i >> 2);
    if (acc < 0) { acc = acc + buf[0]; }
  }
  return acc;
}`, obj.Executable)
	if err != nil {
		b.Fatal(err)
	}
	dispatch := vmExecDispatchKernel(b)
	cases := []struct {
		name     string
		programs []*obj.File
		coverage bool
	}{
		{"dispatch", []*obj.File{dispatch}, false},
		{"dispatch-cov", []*obj.File{dispatch}, true},
		{"appmix", []*obj.File{lc, appmix}, false},
	}
	for _, tc := range cases {
		for _, engine := range []string{vm.EngineStep, vm.EngineBlock} {
			b.Run(tc.name+"/"+engine, func(b *testing.B) {
				sys := vm.NewSystem(vm.Options{
					Engine: engine, Coverage: tc.coverage,
					StackSize: 1 << 16, HeapLimit: 1 << 16,
				})
				for _, f := range tc.programs {
					sys.Register(f)
				}
				if _, err := sys.Spawn("guest", vm.SpawnConfig{}); err != nil {
					b.Fatal(err)
				}
				// Warm the dispatch and segment caches so b.N measures
				// steady state.
				if err := sys.RunUntil(nil, 10_000); err != vm.ErrBudget {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				if err := sys.RunUntil(nil, uint64(b.N)); err != vm.ErrBudget {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
			})
		}
	}
}

// BenchmarkVMThroughput measures raw interpreter speed.
func BenchmarkVMThroughput(b *testing.B) {
	lc, err := libc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	app, err := minic.Compile("spin", `
needs "libc.so";
int main(void) {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < 200000; i = i + 1) { acc = acc + i; }
  return 0;
}`, obj.Executable)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := vm.NewSystem(vm.Options{})
		sys.Register(lc)
		sys.Register(app)
		if _, err := sys.Spawn("spin", vm.SpawnConfig{}); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(0); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(sys.TotalCycles))
	}
}
