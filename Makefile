# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

.PHONY: test race bench-vm verify

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/core/... ./internal/controller/... ./internal/vm/... ./internal/kernel/...

# Step-vs-block engine comparison (ns/op per kernel + end-to-end sweeps).
# Run before and after touching internal/vm; baseline in BENCH_vm.json.
bench-vm:
	./scripts/benchvm.sh

verify: test race
