# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

.PHONY: test race bench-vm bench-memo verify

test:
	go build ./... && go test ./...

race:
	go test -race ./internal/core/... ./internal/controller/... ./internal/vm/... ./internal/kernel/...

# Step-vs-block engine comparison (ns/op per kernel + end-to-end sweeps).
# Run before and after touching internal/vm; baseline in BENCH_vm.json.
bench-vm:
	./scripts/benchvm.sh

# Prefix-memoization A/B (memoized vs plain snapshot sweep) plus the
# end-to-end determinism check; baseline in BENCH_sweep.json.
bench-memo:
	go test -run '^$$' -bench 'BenchmarkSweepMemo|BenchmarkSweepSnapshot' -benchtime 3s .
	./scripts/memocheck.sh

verify: test race
