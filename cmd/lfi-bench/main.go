// Command lfi-bench regenerates every table and figure of the paper's
// evaluation and prints paper-vs-measured rows.
//
//	lfi-bench -run all
//	lfi-bench -run table3 -requests 1000
//	lfi-bench -run table1 -funcs 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lfi/internal/experiments"
	"lfi/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lfi-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	which := flag.String("run", "all",
		"experiments to run: all, or comma-separated of table1,table2,efficiency,robustness,correlated,table3,table4,pidgin,coverage,docgaps,figure2,availability,audit")
	funcs := flag.Int("funcs", 5000, "table1 corpus size (paper: >20000)")
	requests := flag.Int("requests", 1000, "table3 AB requests per cell (paper: 1000)")
	txns := flag.Int("txns", 200, "table4 transactions per cell")
	seed := flag.Int64("seed", 42, "table1 corpus seed")
	jobs := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS for sweeps; sequential for the efficiency timing series)")
	snapshot := flag.Bool("snapshot", false, "run sweeps on the fork-server runtime (restore from one post-load snapshot)")
	memo := flag.Bool("memo", true, "with -snapshot: share each trigger site's pre-fault prefix across errno variants (prefix memoization)")
	engine := flag.String("engine", "", "VM execution engine: block (default) or step — rerun any experiment on the reference interpreter to cross-check the block engine")
	flag.Parse()
	if err := vm.SetDefaultEngine(*engine); err != nil {
		return err
	}

	sel := map[string]bool{}
	if *which == "all" {
		for _, k := range []string{"figure2", "table1", "table2", "efficiency", "robustness", "correlated", "table3", "table4", "pidgin", "coverage", "docgaps", "availability", "audit"} {
			sel[k] = true
		}
	} else {
		for _, k := range strings.Split(*which, ",") {
			sel[strings.TrimSpace(k)] = true
		}
	}

	var env *experiments.Env
	needEnv := sel["table3"] || sel["table4"] || sel["pidgin"] || sel["coverage"] || sel["docgaps"]
	if needEnv {
		e, err := experiments.NewEnv()
		if err != nil {
			return err
		}
		env = e
	}

	section := func(name string) { fmt.Printf("\n========== %s ==========\n", name) }

	if sel["figure2"] {
		section("Figure 2")
		r, err := experiments.Figure2()
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	if sel["table1"] {
		section("Table 1")
		r, err := experiments.Table1(*funcs, *seed)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	if sel["table2"] {
		section("Table 2")
		r, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	if sel["efficiency"] {
		section("§6.2 Efficiency")
		r, err := experiments.Efficiency(*jobs)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	if sel["robustness"] {
		section("§2 Robustness comparison")
		r, err := experiments.Robustness(*jobs, *snapshot, *memo)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		for _, a := range r.Apps {
			if a.Result.Memo != nil {
				fmt.Fprintf(os.Stderr, "%s %s\n", a.Name, a.Result.Memo.String())
			}
		}
	}
	if sel["availability"] {
		section("Availability under fault")
		r, err := experiments.Availability(*jobs, *snapshot)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		for _, s := range r.Servers {
			if s.Sweep.Memo != nil {
				fmt.Fprintf(os.Stderr, "%s %s\n", s.Name, s.Sweep.Memo.String())
			}
		}
	}
	if sel["audit"] {
		section("Caller-side audit")
		r, err := experiments.StaticAudit(*jobs)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	if sel["correlated"] {
		section("§4 Correlated faultload")
		r, err := experiments.Correlated()
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	if sel["table3"] {
		section("Table 3")
		r, err := experiments.Table3(env, *requests)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		fmt.Printf("max overhead vs baseline: %.1f%% (paper: ~5-6%% at 1000 triggers)\n", 100*r.MaxOverhead())
	}
	if sel["table4"] {
		section("Table 4")
		r, err := experiments.Table4(env, *txns)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		fmt.Printf("max throughput loss: %.1f%% (paper: ~1-2%% at 1000 triggers)\n", 100*r.MaxThroughputLoss())
	}
	if sel["pidgin"] {
		section("§6.1 Pidgin")
		r, err := experiments.PidginBug(env, 60)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	if sel["coverage"] {
		section("§6.1 Coverage")
		r, err := experiments.DBCoverage(env)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	if sel["docgaps"] {
		section("§3.1/§3.3 Documentation gaps")
		r, err := experiments.DocGaps(env)
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
	}
	return nil
}
