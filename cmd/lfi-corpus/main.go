// Command lfi-corpus materialises the synthetic evaluation corpus to
// disk: for every Table 2 library it writes the MiniC source, the SLEF
// binary, the man-page documentation bundle, and the ground-truth item
// list — useful for inspecting what the accuracy experiments measure.
//
//	lfi-corpus -o corpus/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"lfi/internal/corpus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lfi-corpus:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "corpus", "output directory")
	flag.Parse()

	rows := corpus.Table2Rows()
	rows = append(rows, corpus.PcreSpec())
	for _, row := range rows {
		lib, err := corpus.Generate(row.Traits)
		if err != nil {
			return err
		}
		dir := filepath.Join(*out, fmt.Sprintf("%s-%s",
			strings.TrimSuffix(row.Traits.Name, ".so"), strings.ToLower(row.Traits.Platform)))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		files := map[string][]byte{
			"source.mc": []byte(lib.Source),
			"lib.slef":  lib.Object.Encode(),
			"docs.man":  []byte(lib.Docs.Render()),
			"truth.txt": []byte(renderTruth(lib)),
		}
		for name, data := range files {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("%-40s %4d functions, %6d bytes text, %4d truth items\n",
			dir, len(lib.Object.ExportedFuncs()), len(lib.Object.Text), len(lib.Truth))
	}
	return nil
}

func renderTruth(lib *corpus.Library) string {
	items := make([]string, 0, len(lib.Truth))
	for it := range lib.Truth {
		items = append(items, it.String())
	}
	sort.Strings(items)
	return strings.Join(items, "\n") + "\n"
}
