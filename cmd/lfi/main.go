// Command lfi is the LFI command-line tool: build MiniC sources into SLEF
// objects, profile libraries and applications, generate fault scenarios,
// run injection campaigns, and inspect binaries.
//
// The paper's two-command workflow:
//
//	lfi profile -app app.slef -lib libc.slef -o profiles/
//	lfi run -app app.slef -lib libc.slef -plan plan.xml
//
// Supporting commands:
//
//	lfi build prog.mc -o prog.slef [-exe]
//	lfi plan -kind random -p 10 -seed 7 -profile libc.profile.xml -o plan.xml
//	lfi plan -check plan.xml [-profile libc.profile.xml]
//	lfi sweep -app app.slef -lib libc.slef -profile libc.profile.xml -j 8 -snapshot -prune
//	lfi sweep ... -store campaign/ -resume -triage -escalate
//	lfi sweep -avail minidb -j 8 -snapshot -store campaign/ -triage
//	lfi sweep ... -order=static   # audit-prioritised execution order
//	lfi audit -lib libc.slef [-profile libc.profile.xml] app.slef
//	lfi disasm lib.slef [-func name]
//	lfi cfg lib.slef -func name [-dot]
//	lfi demo
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lfi/internal/apps"
	"lfi/internal/audit"
	"lfi/internal/campaign"
	"lfi/internal/cfg"
	"lfi/internal/core"
	"lfi/internal/disasm"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lfi:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: lfi <build|profile|plan|run|sweep|audit|disasm|cfg|demo> ...")
	}
	switch args[0] {
	case "build":
		return cmdBuild(args[1:])
	case "profile":
		return cmdProfile(args[1:])
	case "plan":
		return cmdPlan(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "sweep":
		return cmdSweep(args[1:])
	case "audit":
		return cmdAudit(args[1:])
	case "disasm":
		return cmdDisasm(args[1:])
	case "cfg":
		return cmdCFG(args[1:])
	case "demo":
		return cmdDemo(args[1:])
	}
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func loadObj(path string) (*obj.File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return obj.Decode(b)
}

// loadPrograms loads the application plus its comma-listed libraries; the
// application is first in the returned slice.
func loadPrograms(appPath, libList string) ([]*obj.File, error) {
	appObj, err := loadObj(appPath)
	if err != nil {
		return nil, err
	}
	programs := []*obj.File{appObj}
	for _, p := range splitList(libList) {
		f, err := loadObj(p)
		if err != nil {
			return nil, err
		}
		programs = append(programs, f)
	}
	return programs, nil
}

// loadProfileSet reads comma-listed .profile.xml files into a set.
func loadProfileSet(pathList string) (profile.Set, error) {
	set := make(profile.Set)
	for _, p := range splitList(pathList) {
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		pr, err := profile.Unmarshal(b)
		if err != nil {
			return nil, err
		}
		set[pr.Library] = pr
	}
	return set, nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	out := fs.String("o", "", "output SLEF path (default: <name>.slef)")
	exe := fs.Bool("exe", false, "build an executable instead of a library")
	name := fs.String("name", "", "module name (default: source file base name)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("build: exactly one MiniC source file required")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	mod := *name
	if mod == "" {
		mod = strings.TrimSuffix(filepath.Base(fs.Arg(0)), filepath.Ext(fs.Arg(0)))
	}
	kind := obj.Library
	if *exe {
		kind = obj.Executable
	}
	f, err := minic.Compile(mod, string(src), kind)
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = mod + ".slef"
	}
	if err := os.WriteFile(dst, f.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Printf("built %s: %s, %d bytes text, %d exported functions\n",
		dst, f.Kind, len(f.Text), len(f.ExportedFuncs()))
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	app := fs.String("app", "", "application SLEF to profile (profiles its needed libraries)")
	libFlag := fs.String("lib", "", "comma-separated library SLEF paths")
	one := fs.String("library", "", "profile one library by module name")
	outDir := fs.String("o", ".", "output directory for .profile.xml files")
	heur := fs.Bool("heuristics", false, "enable the unsound §3.1 filtering heuristics")
	maxStates := fs.Int("max-states", 0, "per-function product-graph state budget (0 = default; exhaustion is reported per function)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	l := core.New(core.Options{Heuristics: *heur, MaxStates: *maxStates})
	if err := l.AddKernelImage(); err != nil {
		return err
	}
	for _, p := range splitList(*libFlag) {
		f, err := loadObj(p)
		if err != nil {
			return err
		}
		if err := l.AddLibrary(f); err != nil {
			return err
		}
	}
	var set profile.Set
	switch {
	case *app != "":
		f, err := loadObj(*app)
		if err != nil {
			return err
		}
		if err := l.AddLibrary(f); err != nil {
			return err
		}
		s, err := l.ProfileApplication(f.Name)
		if err != nil {
			return err
		}
		set = s
	case *one != "":
		p, err := l.ProfileLibrary(*one)
		if err != nil {
			return err
		}
		set = profile.Set{*one: p}
	default:
		return fmt.Errorf("profile: need -app or -library")
	}
	for name, p := range set {
		blob, err := p.Marshal()
		if err != nil {
			return err
		}
		dst := filepath.Join(*outDir, name+".profile.xml")
		if err := os.WriteFile(dst, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d functions)\n", dst, len(p.Functions))
	}
	// Budget exhaustion is never silent: every function whose analysis
	// was cut short (MaxStates truncation, MaxDepth refusals) gets a
	// diagnostic, because its profile may be missing error codes.
	if diags := l.Diagnostics(); len(diags) > 0 {
		st := l.Stats()
		fmt.Fprintf(os.Stderr, "profile: %d analysis budget exhaustion(s) (%d truncated, %d depth-limited):\n",
			len(diags), st.Truncated, st.DepthLimited)
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
	}
	return nil
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	kind := fs.String("kind", "exhaustive", "scenario kind: exhaustive|random|fileio|malloc|socket")
	prob := fs.Float64("p", 5, "injection probability in percent (random kinds)")
	seed := fs.Int64("seed", 1, "random seed")
	profiles := fs.String("profile", "", "comma-separated .profile.xml paths")
	out := fs.String("o", "plan.xml", "output plan path")
	check := fs.String("check", "", "validate and lint an existing faultload XML instead of generating one")
	app := fs.String("app", "", "application SLEF (with -check: audit its call sites into the plan's targets)")
	libFlag := fs.String("lib", "", "comma-separated library SLEF paths (with -check, audited alongside -app)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, err := loadProfileSet(*profiles)
	if err != nil {
		return err
	}
	if *check != "" {
		var files []*obj.File
		if *app != "" {
			if files, err = loadPrograms(*app, *libFlag); err != nil {
				return err
			}
		}
		return checkPlan(*check, set, files)
	}
	if *app != "" || *libFlag != "" {
		return fmt.Errorf("plan: -app/-lib only apply to -check")
	}
	if len(set) == 0 {
		return fmt.Errorf("plan: need at least one -profile")
	}
	var plan *scenario.Plan
	switch *kind {
	case "exhaustive":
		plan = scenario.Exhaustive(set)
	case "random":
		plan = scenario.Random(set, *prob, *seed)
	case "fileio":
		plan = scenario.LibcFileIO(set, *prob, *seed)
	case "malloc":
		plan = scenario.LibcMemAlloc(set, *prob, *seed)
	case "socket":
		plan = scenario.LibcSocketIO(set, *prob, *seed)
	default:
		return fmt.Errorf("plan: unknown kind %q", *kind)
	}
	blob, err := plan.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d triggers)\n", *out, len(plan.Triggers))
	return nil
}

// checkPlan validates, compiles and lints a faultload: parse errors and
// compile errors (bad retval/errno, malformed condition trees) fail the
// command with the offending trigger's position; lint findings are
// printed as warnings. With -profile, random triggers are checked
// against the profiles that would feed them. With -app/-lib, each
// targeted function is annotated with its caller-side audit class, so
// the author sees up front which faultloads hit call sites that never
// check the return value.
func checkPlan(path string, set profile.Set, files []*obj.File) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	plan, err := scenario.Unmarshal(b)
	if err != nil {
		return fmt.Errorf("plan: %s: %w", path, err)
	}
	cp, err := scenario.Compile(plan, set)
	if err != nil {
		return fmt.Errorf("plan: %s: %w", path, err)
	}
	fns := cp.Functions()
	fmt.Printf("%s: OK — %d triggers over %d functions (seed %d)\n",
		path, len(plan.Triggers), len(fns), plan.Seed)
	for _, fn := range fns {
		fmt.Printf("  %-20s %d trigger(s) evaluated per call\n", fn, cp.TriggerCount(fn))
	}
	// Fault-model classification: name each stateful degradation so the
	// author sees what the plan arms, then report memoizability — the
	// sweep property degradations interact with.
	for i := range plan.Triggers {
		t := &plan.Triggers[i]
		if t.Delay != nil {
			fmt.Printf("  trigger %d (%s): latency injection: +%d cycles at the call boundary per fire\n",
				i, t.Function, t.Delay.Cycles)
		}
		if t.Exhaust != nil {
			switch t.Exhaust.Resource {
			case scenario.ResourceDisk:
				fmt.Printf("  trigger %d (%s): disk exhaustion: ENOSPC after %d post-fire bytes\n",
					i, t.Function, t.Exhaust.After)
			case scenario.ResourceFDs:
				fmt.Printf("  trigger %d (%s): fd pressure: EMFILE beyond %d free descriptors at fire\n",
					i, t.Function, t.Exhaust.Slots)
			}
		}
	}
	// Fire phase: whether the first injection can hit initialization
	// paths or only lands on a guest already serving traffic — the
	// distinction availability sweeps arrange with <calls after> windows.
	phase, evidence := cp.FirePhase()
	switch phase {
	case scenario.PhaseNever:
		fmt.Println("fire phase: never (no triggers)")
	default:
		fmt.Printf("fire phase: %s (%s)\n", phase, evidence)
	}
	if len(files) > 0 {
		res, err := audit.Analyze(files, fns, audit.Options{})
		if err != nil {
			return fmt.Errorf("plan: audit: %w", err)
		}
		classes := res.Classes()
		for _, fn := range fns {
			class := classes[fn]
			if class == "" {
				class = "unknown" // no discovered call site
			}
			fmt.Printf("audit: %-20s %s\n", fn, class)
		}
	}
	if site, reason := cp.FirstFireSite(); reason == "" {
		fmt.Printf("memo: deterministic first-fire site %s@call %d — snapshot sweeps share the pre-fault prefix\n",
			site.Function, site.Call)
		if plan.Stateful() {
			fmt.Println("memo: stateful degradation arms at fire time: the shared prefix stays pre-fire, each suffix is private")
		}
	} else {
		fmt.Printf("memo: non-memoizable (%s): snapshot sweeps fall back to the entry snapshot\n", reason)
	}
	if warns := scenario.Lint(plan, set); len(warns) > 0 {
		fmt.Println("warnings:")
		for _, w := range warns {
			fmt.Printf("  %s\n", w)
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	app := fs.String("app", "", "application SLEF to run")
	libFlag := fs.String("lib", "", "comma-separated library SLEF paths")
	planPath := fs.String("plan", "", "fault scenario XML (omit for a clean run)")
	profiles := fs.String("profile", "", "comma-separated .profile.xml paths")
	logPath := fs.String("log", "", "write the injection log here")
	replayPath := fs.String("replay", "", "write the replay script here")
	budget := fs.Uint64("budget", 500_000_000, "cycle budget (0 = unlimited)")
	// -engine=step selects the per-instruction reference interpreter the
	// block engine is differentially tested against — the escape hatch
	// for bisecting a suspected engine divergence in the field.
	engine := fs.String("engine", "", "VM execution engine: block (default) or step (reference interpreter)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := vm.SetDefaultEngine(*engine); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if *app == "" {
		return fmt.Errorf("run: -app is required")
	}
	programs, err := loadPrograms(*app, *libFlag)
	if err != nil {
		return err
	}
	cfgC := core.CampaignConfig{Programs: programs, Executable: programs[0].Name}
	if *planPath != "" {
		b, err := os.ReadFile(*planPath)
		if err != nil {
			return err
		}
		plan, err := scenario.Unmarshal(b)
		if err != nil {
			return err
		}
		cfgC.Plan = plan
		set, err := loadProfileSet(*profiles)
		if err != nil {
			return err
		}
		cfgC.Profiles = set
	}
	c, err := core.NewCampaign(cfgC)
	if err != nil {
		return err
	}
	rep, err := c.Run(*budget)
	if err != nil {
		return err
	}
	fmt.Printf("exit: code=%d signal=%d deadlocked=%v cycles=%d injections=%d\n",
		rep.Status.Code, rep.Status.Signal, rep.Deadlocked, rep.Cycles, len(rep.Injections))
	if *logPath != "" && c.Controller() != nil {
		f, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.Controller().WriteLog(f); err != nil {
			return err
		}
	}
	if *replayPath != "" && rep.ReplayPlan != nil {
		blob, err := rep.ReplayPlan.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*replayPath, blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// availTarget assembles the traffic-driven availability campaign for a
// built-in server guest: libc, the server (plus its worker binary for
// the multi-process httpd), and the generated client driver that pumps
// phased request traffic through the kernel's loopback sockets. The
// fault space is restricted to the server-side calls every request
// exercises, so a <calls after=N> window lands mid-steady-state.
func availTarget(server string) (core.CampaignConfig, profile.Set, error) {
	var fns, extra []string
	switch server {
	case "minidb", "minidb-nr":
		fns = []string{"accept", "write"}
	case "httpd":
		fns = []string{"accept", "open"}
	case "httpd-mp":
		fns = []string{"accept", "open"}
		extra = []string{"httpdw"}
	default:
		return core.CampaignConfig{}, nil, fmt.Errorf(
			"sweep: -avail %q is not a built-in server guest (want minidb, minidb-nr, httpd or httpd-mp)", server)
	}
	lc, err := libc.Compile()
	if err != nil {
		return core.CampaignConfig{}, nil, err
	}
	client := apps.AvailClientName(server)
	progs := []*obj.File{lc}
	for _, n := range append([]string{server, client}, extra...) {
		f, err := apps.Compile(n)
		if err != nil {
			return core.CampaignConfig{}, nil, fmt.Errorf("sweep: compile %s: %w", n, err)
		}
		progs = append(progs, f)
	}
	p := &profile.Profile{Library: libc.Name}
	for _, fn := range fns {
		p.Functions = append(p.Functions, profile.Function{
			Name: fn, ErrorCodes: []profile.ErrorCode{{Retval: -1}},
		})
	}
	cfg := core.CampaignConfig{
		Programs:   progs,
		Executable: client,
		Files:      apps.WWWFiles(),
		Avail:      &core.AvailSpec{Client: client},
	}
	return cfg, profile.Set{libc.Name: p}, nil
}

// cmdSweep runs the §2 robustness benchmark: one fault-injection
// campaign per (function, error code) in the profiles, distributed over a
// worker pool, rendered as the per-fault outcome matrix. Profiles may be
// loaded from -profile files or derived on the fly by profiling the
// application's libraries.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	app := fs.String("app", "", "application SLEF to sweep")
	libFlag := fs.String("lib", "", "comma-separated library SLEF paths")
	profiles := fs.String("profile", "", "comma-separated .profile.xml paths (omit to profile -lib in-process)")
	jobs := fs.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	maxCrashes := fs.Int("max-crashes", 0, "stop after this many crash outcomes (0 = run the full matrix)")
	order := fs.String("order", "default", "execution order: default (plan order) or static (caller-side audit fronts unchecked targets; full-sweep report stays byte-identical)")
	budget := fs.Uint64("budget", 0, "per-run cycle budget (0 = default)")
	progress := fs.Bool("progress", false, "print live progress to stderr")
	heur := fs.Bool("heuristics", false, "enable the §3.1 filtering heuristics for in-process profiling")
	snapshot := fs.Bool("snapshot", false, "fork-server runtime: restore every run from one post-load snapshot")
	cow := fs.Bool("cow", true, "copy-on-write restores: share template pages, copy on first write (with -snapshot; -cow=false deep-copies)")
	memo := fs.Bool("memo", true, "prefix memoization: run the shared pre-fault prefix once per trigger site (with -snapshot; report stays byte-identical)")
	memoBudget := fs.Int64("memo-budget", 0, "prefix snapshot cache budget in bytes (0 = default 256 MiB)")
	prune := fs.Bool("prune", false, "skip experiments whose function the baseline never calls (coverage-informed)")
	faults := fs.String("faults", "errno", "fault models to sweep: errno (error-return stores), degradation (latency + resource exhaustion), or all")
	avail := fs.String("avail", "", "traffic-driven availability sweep against a built-in server guest (minidb, minidb-nr, httpd, httpd-mp); replaces -app/-lib/-profile/-faults")
	engine := fs.String("engine", "", "VM execution engine: block (default) or step (reference interpreter)")
	storeDir := fs.String("store", "", "persistent campaign store directory (append-only JSONL, written live)")
	resume := fs.Bool("resume", false, "skip experiments already completed in -store (report stays byte-identical)")
	triage := fs.Bool("triage", false, "after the sweep, print crash clusters deduped by stack hash (needs -store)")
	escalate := fs.Bool("escalate", false, "run a second round of pairwise multi-fault plans minted from single-fault survivors (needs -store)")
	maxPairs := fs.Int("max-pairs", 0, "cap on escalated pairs (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// -memo/-memo-budget only act on the snapshot executor. They default
	// on, so only an explicitly passed flag without -snapshot is a
	// contradiction worth failing fast on (it used to be silently
	// ignored).
	if !*snapshot {
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if explicit["memo"] && *memo {
			return fmt.Errorf("sweep: -memo needs -snapshot (prefix memoization runs on the snapshot executor)")
		}
		if explicit["memo-budget"] {
			return fmt.Errorf("sweep: -memo-budget needs -snapshot (prefix memoization runs on the snapshot executor)")
		}
	}
	if err := vm.SetDefaultEngine(*engine); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if *app == "" && *avail == "" {
		return fmt.Errorf("sweep: -app is required (or -avail <server>)")
	}

	var set profile.Set
	var cfgC core.CampaignConfig
	if *avail != "" {
		var err error
		if cfgC, set, err = availTarget(*avail); err != nil {
			return err
		}
	} else {
		programs, err := loadPrograms(*app, *libFlag)
		if err != nil {
			return err
		}
		if *profiles != "" {
			if set, err = loadProfileSet(*profiles); err != nil {
				return err
			}
		} else {
			l := core.New(core.Options{Heuristics: *heur})
			if err := l.AddKernelImage(); err != nil {
				return err
			}
			for _, f := range programs {
				if err := l.AddLibrary(f); err != nil {
					return err
				}
			}
			if set, err = l.ProfileApplication(programs[0].Name); err != nil {
				return err
			}
		}
		cfgC = core.CampaignConfig{
			Programs:   programs,
			Executable: programs[0].Name,
		}
	}
	if len(set) == 0 {
		return fmt.Errorf("sweep: no fault profiles")
	}

	opts := core.SweepOptions{
		Workers: *jobs, MaxCrashes: *maxCrashes,
		Snapshot: *snapshot, FlatRestore: !*cow, PruneUncalled: *prune,
		NoMemo: !*memo, MemoBudget: *memoBudget,
	}
	if *progress {
		opts.Progress = func(p core.SweepProgress) {
			fmt.Fprintln(os.Stderr, p.String())
		}
	}

	var store *campaign.Store
	if *storeDir != "" {
		var err error
		if store, err = campaign.Open(*storeDir); err != nil {
			return err
		}
		defer store.Close()
	} else if *resume || *triage || *escalate {
		return fmt.Errorf("sweep: -resume, -triage and -escalate need -store")
	}

	var exps []core.Experiment
	switch {
	case *avail != "":
		// The availability matrix carries its own fault models (one-shot
		// errno + delay + exhaustion), windowed mid-steady-state.
		exps = core.AvailabilityExperiments(set, apps.AvailAfter)
	case *faults == "errno":
		exps = core.PlanExperiments(set)
	case *faults == "degradation":
		exps = core.DegradationExperiments(set)
	case *faults == "all":
		exps = append(core.PlanExperiments(set), core.DegradationExperiments(set)...)
	default:
		return fmt.Errorf("sweep: unknown -faults %q (want errno, degradation or all)", *faults)
	}
	switch *order {
	case "default":
	case "static":
		// Audit the guest binaries for the profiled targets, stamp each
		// experiment with its target's class (persisted by -store,
		// clustered by -triage), and run the statically fragile ones
		// first. Reassembly keeps the full-sweep report byte-identical;
		// only -max-crashes early stops observe the new order.
		ares, err := audit.Analyze(cfgC.Programs, auditTargets(set), audit.Options{})
		if err != nil {
			return fmt.Errorf("sweep: audit: %w", err)
		}
		classes := ares.Classes()
		core.AnnotateAudit(exps, classes)
		opts.ExecOrder = core.StaticOrder(exps, classes)
	default:
		return fmt.Errorf("sweep: unknown -order %q (want default or static)", *order)
	}
	res, err := campaign.Sweep(cfgC, exps, *budget, opts, store, *resume)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if res.Memo != nil {
		fmt.Fprintln(os.Stderr, res.Memo.String())
	}

	if *triage {
		fmt.Print(campaign.RenderClusters(campaign.Triage(store.Records())))
	}
	if *escalate {
		surv := campaign.Survivors(exps, store.Completed())
		second := campaign.Escalate(surv, set, *maxPairs)
		fmt.Printf("escalation: %d single-fault survivor(s) -> %d pairwise plan(s)\n",
			len(surv), len(second))
		if len(second) > 0 {
			// The escalated plan is a different experiment list; the
			// round-one permutation does not apply to it.
			opts.ExecOrder = nil
			res2, err := campaign.Sweep(cfgC, second, *budget, opts, store, *resume)
			if err != nil {
				return err
			}
			fmt.Print(res2.Render())
			if res2.Memo != nil {
				fmt.Fprintln(os.Stderr, res2.Memo.String())
			}
			if *triage {
				fmt.Print(campaign.RenderClusters(campaign.Triage(store.Records())))
			}
		}
	}
	return nil
}

// auditTargets collects the function names a profile set covers — the
// functions a sweep would inject into, and therefore the ones whose
// call sites the audit should classify.
func auditTargets(set profile.Set) []string {
	var targets []string
	for _, p := range set {
		for _, fn := range p.Functions {
			targets = append(targets, fn.Name)
		}
	}
	return targets
}

// cmdAudit runs the caller-side error-handling audit: a static forward
// taint walk from every call site into a profiled (or imported)
// function, classifying whether the caller checks the return value. A
// nonzero exit on unchecked sites makes it a CI lint; the same
// classification drives `lfi sweep -order=static`.
func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	libFlag := fs.String("lib", "", "comma-separated library SLEF paths audited alongside the positional binaries")
	profiles := fs.String("profile", "", "comma-separated .profile.xml paths restricting the audited targets (default: every function the binaries import)")
	maxStates := fs.Int("max-states", 0, "per-site taint-walk state budget (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("audit: at least one SLEF binary required")
	}
	var files []*obj.File
	for _, p := range append(append([]string(nil), fs.Args()...), splitList(*libFlag)...) {
		f, err := loadObj(p)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	var targets []string
	if *profiles != "" {
		set, err := loadProfileSet(*profiles)
		if err != nil {
			return err
		}
		targets = auditTargets(set)
	} else {
		// No profile restriction: audit every cross-module call (the
		// imports) and every intra-module call to an exported function
		// (a library's internal use of its own API, e.g. puts_fd
		// calling write).
		for _, f := range files {
			targets = append(targets, f.Imports...)
			for _, sym := range f.ExportedFuncs() {
				targets = append(targets, sym.Name)
			}
		}
	}
	res, err := audit.Analyze(files, targets, audit.Options{MaxStates: *maxStates})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if n := len(res.Unchecked()); n > 0 {
		return fmt.Errorf("audit: %d unchecked call site(s)", n)
	}
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ContinueOnError)
	fn := fs.String("func", "", "limit to one function")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("disasm: one SLEF path required")
	}
	f, err := loadObj(fs.Arg(0))
	if err != nil {
		return err
	}
	p, err := disasm.Disassemble(f)
	if err != nil {
		return err
	}
	if *fn != "" {
		sym, ok := f.LookupExport(*fn)
		if !ok {
			if sym, ok = f.Lookup(*fn); !ok {
				return fmt.Errorf("no symbol %q", *fn)
			}
		}
		fmt.Print(p.Render(sym.Off, sym.Off+sym.Size))
		return nil
	}
	fmt.Print(p.Render(0, int32(len(f.Text))))
	return nil
}

func cmdCFG(args []string) error {
	fs := flag.NewFlagSet("cfg", flag.ContinueOnError)
	fn := fs.String("func", "", "function to graph")
	dot := fs.Bool("dot", false, "emit Graphviz dot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *fn == "" {
		return fmt.Errorf("cfg: usage: lfi cfg lib.slef -func name [-dot]")
	}
	f, err := loadObj(fs.Arg(0))
	if err != nil {
		return err
	}
	p, err := disasm.Disassemble(f)
	if err != nil {
		return err
	}
	sym, ok := f.Lookup(*fn)
	if !ok {
		return fmt.Errorf("no symbol %q", *fn)
	}
	g, err := cfg.Build(p, sym.Off)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(g.Dot(*fn))
		return nil
	}
	fmt.Printf("%s: %d blocks, %d exits, incomplete=%v\n",
		*fn, len(g.Blocks), len(g.ExitBlocks()), g.Incomplete)
	for _, b := range g.Blocks {
		succs := make([]string, 0, len(b.Succs))
		for _, s := range b.Succs {
			succs = append(succs, fmt.Sprintf("b%d", s.ID))
		}
		fmt.Printf("  b%d [%#x..%#x) -> %s\n", b.ID, b.Start, b.End, strings.Join(succs, ","))
	}
	return nil
}

// cmdDemo writes the synthetic libc and its profile to the current
// directory — a zero-setup way to try the tool.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	dir := fs.String("o", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lc, err := libc.Compile()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, "libc.slef"), lc.Encode(), 0o644); err != nil {
		return err
	}
	l := core.New(core.Options{Heuristics: true})
	if err := l.AddKernelImage(); err != nil {
		return err
	}
	if err := l.AddLibrary(lc); err != nil {
		return err
	}
	p, err := l.ProfileLibrary(libc.Name)
	if err != nil {
		return err
	}
	blob, err := p.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, "libc.so.profile.xml"), blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote libc.slef and libc.so.profile.xml (%d functions) to %s\n", len(p.Functions), *dir)
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
