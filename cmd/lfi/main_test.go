package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDemoAssets runs `lfi demo` into dir and returns the produced
// paths.
func writeDemoAssets(t *testing.T, dir string) (libPath, profPath string) {
	t.Helper()
	if err := run([]string{"demo", "-o", dir}); err != nil {
		t.Fatalf("demo: %v", err)
	}
	return filepath.Join(dir, "libc.slef"), filepath.Join(dir, "libc.so.profile.xml")
}

const cliAppSrc = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern tls int errno;
int main(void) {
  int fd;
  fd = open("/cfg", 0, 0);
  if (fd < 0) { return errno; }
  close(fd);
  return 0;
}
`

func TestCLIFullWorkflow(t *testing.T) {
	dir := t.TempDir()
	libPath, profPath := writeDemoAssets(t, dir)

	// build
	srcPath := filepath.Join(dir, "app.mc")
	if err := os.WriteFile(srcPath, []byte(cliAppSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	appPath := filepath.Join(dir, "app.slef")
	if err := run([]string{"build", "-exe", "-name", "app", "-o", appPath, srcPath}); err != nil {
		t.Fatalf("build: %v", err)
	}

	// plan (random, seeded)
	planPath := filepath.Join(dir, "plan.xml")
	if err := run([]string{"plan", "-kind", "fileio", "-p", "100", "-seed", "3",
		"-profile", profPath, "-o", planPath}); err != nil {
		t.Fatalf("plan: %v", err)
	}
	planBytes, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(planBytes), `name="open"`) {
		t.Errorf("plan missing open trigger:\n%s", planBytes)
	}

	// run under injection, capture log + replay
	logPath := filepath.Join(dir, "lfi.log")
	replayPath := filepath.Join(dir, "replay.xml")
	if err := run([]string{"run", "-app", appPath, "-lib", libPath,
		"-plan", planPath, "-profile", profPath,
		"-log", logPath, "-replay", replayPath}); err != nil {
		t.Fatalf("run: %v", err)
	}
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(logBytes), "fn=open") {
		t.Errorf("log missing injection: %q", logBytes)
	}
	replayBytes, err := os.ReadFile(replayPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(replayBytes), "<plan>") {
		t.Errorf("replay script malformed: %q", replayBytes)
	}

	// replay the generated script
	if err := run([]string{"run", "-app", appPath, "-lib", libPath,
		"-plan", replayPath, "-profile", profPath}); err != nil {
		t.Fatalf("replay run: %v", err)
	}
}

func TestCLIProfileApplication(t *testing.T) {
	dir := t.TempDir()
	libPath, _ := writeDemoAssets(t, dir)
	srcPath := filepath.Join(dir, "app.mc")
	if err := os.WriteFile(srcPath, []byte(cliAppSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	appPath := filepath.Join(dir, "app.slef")
	if err := run([]string{"build", "-exe", "-name", "app", "-o", appPath, srcPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"profile", "-app", appPath, "-lib", libPath, "-o", dir}); err != nil {
		t.Fatalf("profile -app: %v", err)
	}
	out, err := os.ReadFile(filepath.Join(dir, "libc.so.profile.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `<function name="close">`) {
		t.Error("application profile missing close")
	}
}

func TestCLIDisasmAndCFG(t *testing.T) {
	dir := t.TempDir()
	libPath, _ := writeDemoAssets(t, dir)
	if err := run([]string{"disasm", "-func", "close", libPath}); err != nil {
		t.Errorf("disasm: %v", err)
	}
	if err := run([]string{"cfg", "-func", "close", libPath}); err != nil {
		t.Errorf("cfg: %v", err)
	}
	if err := run([]string{"cfg", "-func", "close", "-dot", libPath}); err != nil {
		t.Errorf("cfg -dot: %v", err)
	}
	if err := run([]string{"cfg", "-func", "missing", libPath}); err == nil {
		t.Error("cfg of missing symbol should fail")
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	r.Close()
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", runErr, out)
	}
	return out
}

func TestCLISweep(t *testing.T) {
	dir := t.TempDir()
	libPath, profPath := writeDemoAssets(t, dir)
	srcPath := filepath.Join(dir, "app.mc")
	if err := os.WriteFile(srcPath, []byte(cliAppSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	appPath := filepath.Join(dir, "app.slef")
	if err := run([]string{"build", "-exe", "-name", "app", "-o", appPath, srcPath}); err != nil {
		t.Fatal(err)
	}

	// Explicit profiles, parallel workers, early-stop flag.
	out := captureStdout(t, func() error {
		return run([]string{"sweep", "-app", appPath, "-lib", libPath,
			"-profile", profPath, "-j", "4", "-max-crashes", "3"})
	})
	if !strings.Contains(out, "robustness sweep: app") || !strings.Contains(out, "summary:") {
		t.Errorf("sweep report malformed:\n%s", out)
	}

	// In-process profiling path (no -profile).
	out2 := captureStdout(t, func() error {
		return run([]string{"sweep", "-app", appPath, "-lib", libPath, "-heuristics", "-j", "2"})
	})
	if !strings.Contains(out2, "robustness sweep: app") {
		t.Errorf("in-process-profiled sweep malformed:\n%s", out2)
	}

	// The fork-server runtime and baseline-informed pruning must render
	// the exact same report as the fresh-spawn sweep.
	base := captureStdout(t, func() error {
		return run([]string{"sweep", "-app", appPath, "-lib", libPath, "-profile", profPath, "-j", "4"})
	})
	snap := captureStdout(t, func() error {
		return run([]string{"sweep", "-app", appPath, "-lib", libPath,
			"-profile", profPath, "-j", "4", "-snapshot", "-prune"})
	})
	if snap != base {
		t.Errorf("-snapshot -prune report differs from fresh-spawn:\n--- fresh ---\n%s--- snapshot ---\n%s", base, snap)
	}

	if err := run([]string{"sweep"}); err == nil {
		t.Error("sweep without -app should fail")
	}
	if err := run([]string{"sweep", "-app", appPath}); err == nil {
		t.Error("sweep with unresolvable libraries should fail")
	}
}

// TestCLISweepStoreResume: the persistent campaign workflow end to end —
// a max-crashes-truncated sweep fills the store halfway, the resumed
// sweep prints a report byte-identical to a fresh full one, and -triage
// and -escalate render their passes after it.
func TestCLISweepStoreResume(t *testing.T) {
	dir := t.TempDir()
	libPath, profPath := writeDemoAssets(t, dir)
	// An app with a crash path (unchecked malloc) so -max-crashes can
	// truncate, plus two distinct tolerated functions (strcmp, strncmp)
	// so escalation has pairs to mint. No file I/O: the CLI sweep
	// installs no kernel files, so open would fail in the baseline too.
	const crashAppSrc = `
needs "libc.so";
extern int strcmp(byte *a, byte *b);
extern int strncmp(byte *a, byte *b, int n);
extern byte *malloc(int n);
int main(void) {
  int r;
  byte *p;
  r = strcmp("a", "a");
  if (r != 0) { r = 0; }        // tolerate injected compare fault
  r = strncmp("ab", "ab", 2);
  if (r != 0) { r = 0; }        // tolerate injected compare fault
  p = malloc(4);
  p[0] = 'x';                   // BUG: unchecked allocation
  return 0;
}
`
	srcPath := filepath.Join(dir, "app.mc")
	if err := os.WriteFile(srcPath, []byte(crashAppSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	appPath := filepath.Join(dir, "app.slef")
	if err := run([]string{"build", "-exe", "-name", "app", "-o", appPath, srcPath}); err != nil {
		t.Fatal(err)
	}
	base := []string{"sweep", "-app", appPath, "-lib", libPath, "-profile", profPath}

	fresh := captureStdout(t, func() error { return run(append(base, "-j", "4")) })

	storeDir := filepath.Join(dir, "campaign")
	// Phase 1: the "killed" campaign — truncated by -max-crashes.
	partial := captureStdout(t, func() error {
		return run(append(base, "-j", "2", "-max-crashes", "1", "-store", storeDir))
	})
	if partial == fresh {
		t.Fatal("-max-crashes run should be truncated relative to the full sweep")
	}
	if _, err := os.Stat(filepath.Join(storeDir, "results.jsonl")); err != nil {
		t.Fatalf("store not written: %v", err)
	}

	// Phase 2: resume — byte-identical to the fresh full report.
	resumed := captureStdout(t, func() error {
		return run(append(base, "-j", "4", "-store", storeDir, "-resume"))
	})
	if resumed != fresh {
		t.Errorf("resumed report differs from fresh:\n--- fresh ---\n%s--- resumed ---\n%s", fresh, resumed)
	}
	// Resume is idempotent and executor-independent.
	again := captureStdout(t, func() error {
		return run(append(base, "-j", "1", "-store", storeDir, "-resume", "-snapshot"))
	})
	if again != fresh {
		t.Errorf("snapshot resume differs from fresh:\n%s\nvs\n%s", fresh, again)
	}

	// Phase 3: triage + escalation render after the (unchanged) report.
	out := captureStdout(t, func() error {
		return run(append(base, "-j", "4", "-store", storeDir, "-resume", "-triage", "-escalate"))
	})
	if !strings.HasPrefix(out, fresh) {
		t.Errorf("triage output must follow the unchanged report:\n%s", out)
	}
	if !strings.Contains(out, "crash triage:") || !strings.Contains(out, "escalation:") {
		t.Errorf("missing triage/escalation sections:\n%s", out)
	}

	// Flags that need the store must say so.
	if err := run(append(base, "-resume")); err == nil {
		t.Error("-resume without -store should fail")
	}
	if err := run(append(base, "-triage")); err == nil {
		t.Error("-triage without -store should fail")
	}
}

func TestCLIPlanCheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.xml")
	if err := os.WriteFile(good, []byte(`<plan>
  <function name="write" retval="-1" errno="ENOSPC" sticky="true">
    <after-fault function="malloc"></after-fault>
  </function>
  <function name="read" probability="10" random="true"></function>
</plan>`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return run([]string{"plan", "-check", good})
	})
	if !strings.Contains(out, "OK — 2 triggers over 2 functions") {
		t.Errorf("check summary malformed:\n%s", out)
	}
	// Lint: the random trigger has no profile, and after-fault names a
	// function no trigger targets.
	if !strings.Contains(out, "warnings:") ||
		!strings.Contains(out, `no profile supplies error codes for "read"`) ||
		!strings.Contains(out, `no trigger targets "malloc"`) {
		t.Errorf("expected lint warnings:\n%s", out)
	}

	// A bad retval must fail with the trigger's position.
	bad := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(bad, []byte(`<plan>
  <function name="read" retval="-1"></function>
  <function name="write" retval="oops"></function>
</plan>`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"plan", "-check", bad})
	if err == nil {
		t.Fatal("bad retval should fail -check")
	}
	if msg := err.Error(); !strings.Contains(msg, "trigger 1") || !strings.Contains(msg, `"oops"`) {
		t.Errorf("error lacks position: %v", err)
	}

	if err := run([]string{"plan", "-check", filepath.Join(dir, "missing.xml")}); err == nil {
		t.Error("missing plan file should fail -check")
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"build"},                       // missing source
		{"profile"},                     // need -app or -library
		{"plan", "-kind", "bogus"},      // unknown kind
		{"plan"},                        // no profiles
		{"run"},                         // missing -app
		{"disasm"},                      // missing path
		{"run", "-app", "/nonexistent"}, // unreadable
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// TestCLISweepMemoFlagContradictions: -memo/-memo-budget act on the
// snapshot executor only, so passing them without -snapshot fails fast
// instead of being silently ignored. Validation runs before any asset
// loads, so a bogus app path proves the error is the flag check's.
func TestCLISweepMemoFlagContradictions(t *testing.T) {
	for _, args := range [][]string{
		{"sweep", "-app", "/nonexistent", "-memo"},
		{"sweep", "-app", "/nonexistent", "-memo=true"},
		{"sweep", "-app", "/nonexistent", "-memo-budget", "1"},
		{"sweep", "-app", "/nonexistent", "-memo=false", "-memo-budget", "4096"},
	} {
		err := run(args)
		if err == nil || !strings.Contains(err.Error(), "needs -snapshot") {
			t.Errorf("args %v: err = %v, want needs -snapshot", args, err)
		}
	}
	// Explicitly disabling memoization without -snapshot is consistent,
	// not a contradiction: the command proceeds past flag validation
	// (and then fails on the unreadable app, not the flags).
	err := run([]string{"sweep", "-app", "/nonexistent", "-memo=false"})
	if err == nil || strings.Contains(err.Error(), "needs -snapshot") {
		t.Errorf("-memo=false without -snapshot rejected: %v", err)
	}
}

// TestCLISweepFaultModels: -faults selects the experiment matrix —
// degradation rows render fault labels instead of retval/errno
// coordinates, and -faults all is the concatenation of both sweeps.
func TestCLISweepFaultModels(t *testing.T) {
	dir := t.TempDir()
	libPath, profPath := writeDemoAssets(t, dir)
	srcPath := filepath.Join(dir, "app.mc")
	if err := os.WriteFile(srcPath, []byte(cliAppSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	appPath := filepath.Join(dir, "app.slef")
	if err := run([]string{"build", "-exe", "-name", "app", "-o", appPath, srcPath}); err != nil {
		t.Fatal(err)
	}

	degr := captureStdout(t, func() error {
		return run([]string{"sweep", "-app", appPath, "-lib", libPath,
			"-profile", profPath, "-faults", "degradation", "-j", "4", "-snapshot"})
	})
	for _, want := range []string{"delay=", "exhaust=disk:after=", "exhaust=fds:slots="} {
		if !strings.Contains(degr, want) {
			t.Errorf("degradation sweep missing %q:\n%s", want, degr)
		}
	}
	if strings.Contains(degr, "errno=") {
		t.Errorf("degradation sweep rendered errno coordinates:\n%s", degr)
	}

	// Degradation reports are engine- and worker-independent, like
	// errno reports.
	degr2 := captureStdout(t, func() error {
		return run([]string{"sweep", "-app", appPath, "-lib", libPath,
			"-profile", profPath, "-faults", "degradation", "-j", "1"})
	})
	if degr2 != degr {
		t.Errorf("degradation report differs across executors:\n--- snapshot j4 ---\n%s--- fresh j1 ---\n%s", degr, degr2)
	}

	all := captureStdout(t, func() error {
		return run([]string{"sweep", "-app", appPath, "-lib", libPath,
			"-profile", profPath, "-faults", "all", "-j", "4", "-snapshot"})
	})
	if !strings.Contains(all, "errno=") || !strings.Contains(all, "exhaust=disk:after=") {
		t.Errorf("-faults all missing a model family:\n%s", all)
	}

	if err := run([]string{"sweep", "-app", appPath, "-faults", "bogus"}); err == nil {
		t.Error("unknown -faults value should fail")
	}
}

// cliAuditSrc calls into libc with one checked and several unchecked
// call sites — the audit must split them.
const cliAuditSrc = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern byte *malloc(int n);
int main(void) {
  int fd;
  int n;
  byte buf[32];
  byte *p;
  fd = open("/data", 0, 0);
  if (fd < 0) { return 2; }
  n = read(fd, buf, 31);
  close(fd);
  p = malloc(8);
  p[0] = 'x';
  return 0;
}
`

func buildAuditApp(t *testing.T, dir string) (appPath, libPath, profPath string) {
	t.Helper()
	libPath, profPath = writeDemoAssets(t, dir)
	srcPath := filepath.Join(dir, "app.mc")
	if err := os.WriteFile(srcPath, []byte(cliAuditSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	appPath = filepath.Join(dir, "app.slef")
	if err := run([]string{"build", "-exe", "-name", "app", "-o", appPath, srcPath}); err != nil {
		t.Fatal(err)
	}
	return appPath, libPath, profPath
}

// captureStdoutErr is captureStdout for commands expected to fail (the
// audit's CI-lint exit): it returns the output and the error.
func captureStdoutErr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	r.Close()
	return out, runErr
}

func TestCLIAudit(t *testing.T) {
	dir := t.TempDir()
	appPath, libPath, profPath := buildAuditApp(t, dir)

	auditArgs := []string{"audit", "-lib", libPath, "-profile", profPath, appPath}
	out, err := captureStdoutErr(t, func() error { return run(auditArgs) })
	if err == nil {
		t.Fatal("audit with unchecked sites must exit nonzero")
	}
	for _, want := range []string{
		"caller-side audit:",
		"main -> open: checked",
		"main -> malloc: unchecked-clobbered",
		"main -> close: unchecked-clobbered",
		"puts_fd -> write: unchecked-propagated",
		"unchecked:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("audit output missing %q:\n%s", want, out)
		}
	}

	// Deterministic across runs.
	again, _ := captureStdoutErr(t, func() error { return run(auditArgs) })
	if out != again {
		t.Errorf("audit output not deterministic:\n--- 1 ---\n%s--- 2 ---\n%s", out, again)
	}

	// Without -profile the targets default to the binaries' imports;
	// libc.slef audited alone has its own internal unchecked site.
	out2, err2 := captureStdoutErr(t, func() error {
		return run([]string{"audit", libPath})
	})
	if err2 == nil {
		t.Error("libc self-audit should flag puts_fd -> write")
	}
	if !strings.Contains(out2, "puts_fd -> write: unchecked-propagated") {
		t.Errorf("self-audit output:\n%s", out2)
	}
}

func TestCLISweepStaticOrder(t *testing.T) {
	dir := t.TempDir()
	appPath, libPath, profPath := buildAuditApp(t, dir)
	base := []string{"sweep", "-app", appPath, "-lib", libPath, "-profile", profPath, "-j", "4"}
	def := captureStdout(t, func() error { return run(base) })
	static := captureStdout(t, func() error {
		return run(append([]string{"sweep", "-order=static"}, base[1:]...))
	})
	if def != static {
		t.Errorf("-order=static full-sweep report differs from default:\n--- default ---\n%s--- static ---\n%s", def, static)
	}
	if _, err := captureStdoutErr(t, func() error {
		return run(append([]string{"sweep", "-order=bogus"}, base[1:]...))
	}); err == nil {
		t.Error("unknown -order accepted")
	}
}

func TestCLIPlanCheckAudit(t *testing.T) {
	dir := t.TempDir()
	appPath, libPath, profPath := buildAuditApp(t, dir)
	planPath := filepath.Join(dir, "plan.xml")
	if err := run([]string{"plan", "-kind", "exhaustive", "-profile", profPath, "-o", planPath}); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return run([]string{"plan", "-check", planPath, "-profile", profPath,
			"-app", appPath, "-lib", libPath})
	})
	for _, want := range []string{"fire phase:", "audit: malloc", "unchecked-clobbered", "audit: open", "checked"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan -check missing %q:\n%s", want, out)
		}
	}
	// Without -app the audit lines are absent, everything else intact.
	plain := captureStdout(t, func() error {
		return run([]string{"plan", "-check", planPath, "-profile", profPath})
	})
	if strings.Contains(plain, "audit:") {
		t.Errorf("plan -check without -app printed audit lines:\n%s", plain)
	}
}
