// Package dataflow implements the static analyses at the core of the LFI
// profiler (DSN'09 §3.1–3.2):
//
//   - reverse constant propagation: starting from the last write to the
//     return location (R0, the eax analogue) in each exit basic block, it
//     searches backwards through the CFG for the constants that can reach
//     it. The search operates on the product graph G' = V × {locations}
//     described in the paper, expanded on demand: a search state is a
//     (basic block, abstract location) pair, and an edge exists when the
//     predecessor block propagates the location's content.
//
//   - side-effect extraction: for each discovered constant origin, the
//     representative path from the defining block to the exit is replayed
//     forward with a small abstract evaluator that recognises writes to
//     TLS locations (errno), PIC-addressed globals, and pointers loaded
//     from positive frame-pointer offsets (output arguments).
//
// Calls to dependent functions are delegated to a Resolver so the profiler
// can recurse across functions, libraries and the kernel image, exactly as
// §3.1 prescribes ("for calls to dependent functions, we consider all of
// the dependent function's return values to be propagated").
package dataflow

import (
	"fmt"

	"lfi/internal/cfg"
	"lfi/internal/isa"
	"lfi/internal/obj"
)

// CalleeKind classifies the target of a call discovered during analysis.
type CalleeKind uint8

// Callee kinds.
const (
	CalleeLocal    CalleeKind = iota + 1 // direct call within the module
	CalleeImport                         // direct call to an imported symbol
	CalleeSyscall                        // SYSCALL with a known number
	CalleeIndirect                       // register-indirect call (unresolvable)
)

// CalleeRef identifies a dependent function.
type CalleeRef struct {
	Kind    CalleeKind
	Off     int32  // CalleeLocal: text offset of the entry
	Name    string // CalleeImport: imported symbol name
	Syscall int32  // CalleeSyscall: syscall number
}

// String renders the callee reference for logs and tests.
func (c CalleeRef) String() string {
	switch c.Kind {
	case CalleeLocal:
		return fmt.Sprintf("local@%#x", c.Off)
	case CalleeImport:
		return "import:" + c.Name
	case CalleeSyscall:
		return fmt.Sprintf("syscall:%d", c.Syscall)
	case CalleeIndirect:
		return "indirect"
	}
	return "unknown"
}

// Resolver supplies the constant return values of dependent functions.
// ok=false means the callee's returns are unknown (e.g. indirect call),
// in which case the origin is recorded as non-constant.
type Resolver interface {
	ReturnConstants(ref CalleeRef) (values []int32, ok bool)
}

// Origin describes one way a value can reach the return location at a
// function exit.
type Origin struct {
	// Known is false when the value is not a compile-time constant nor a
	// dependent-function return (e.g. computed arithmetic, argument
	// pass-through, indirect call result).
	Known bool
	// Value is the constant, valid when Known && !ViaCall.
	Value int32
	// ViaCall marks origins whose values are the dependent callee's
	// return constants.
	ViaCall bool
	Callee  CalleeRef
	// CalleeConsts are the callee's constant returns (ViaCall only).
	CalleeConsts []int32
	// Path is a representative chain of basic blocks from the defining
	// block to the exit block (inclusive), used for side-effect
	// extraction per §3.2.
	Path []*cfg.Block
	// DefIdx is the instruction index of the defining write within
	// Path[0] (-1 when the definition is a callee return entering the
	// block).
	DefIdx int
}

// Values returns the concrete constants this origin contributes.
func (o Origin) Values() []int32 {
	if !o.Known {
		return nil
	}
	if o.ViaCall {
		return o.CalleeConsts
	}
	return []int32{o.Value}
}

// SideEffectKind classifies how error details are exposed (§3.2, Table 1).
type SideEffectKind uint8

// Side-effect kinds.
const (
	SideEffectTLS      SideEffectKind = iota + 1 // thread-local (errno)
	SideEffectGlobal                             // PIC-addressed global
	SideEffectArgument                           // write through pointer argument
)

// String names the side-effect kind as used in fault profiles.
func (k SideEffectKind) String() string {
	switch k {
	case SideEffectTLS:
		return "TLS"
	case SideEffectGlobal:
		return "global"
	case SideEffectArgument:
		return "argument"
	}
	return "unknown"
}

// StoredValue is the abstract value written by a side-effecting store.
type StoredValue struct {
	// FromCallee is true when the stored value derives from the
	// dependent callee's return (the glibc errno = -eax pattern).
	FromCallee bool
	// Negated is true when the store negates the propagated value.
	Negated bool
	// Const is the literal stored value when !FromCallee.
	Const int32
	// Consts are the dependent callee's constant returns (FromCallee
	// only); each expands to one profile side-effect entry.
	Consts []int32
}

// SideEffect is one discovered error side channel.
type SideEffect struct {
	Kind   SideEffectKind
	Off    int32 // TLS or data-section offset (TLS/global kinds)
	ArgIdx int32 // argument index (argument kind)
	Value  StoredValue
}

// Analysis runs the §3.1/§3.2 analyses over one function CFG.
type Analysis struct {
	Graph    *cfg.Graph
	Resolver Resolver
	// MaxStates bounds the on-demand product-graph expansion; zero means
	// DefaultMaxStates.
	MaxStates int
	// stats
	statesExpanded int
	truncated      bool
	// feasStack is scratch state for PathFeasible's operand tracking.
	feasStack []argVal
}

// DefaultMaxStates bounds the product-graph search per function.
const DefaultMaxStates = 4096

// StatesExpanded reports how many (block, location) product states the
// last ReturnOrigins call expanded; used by the ablation benchmarks.
func (a *Analysis) StatesExpanded() int { return a.statesExpanded }

// Truncated reports whether the last ReturnOrigins call hit the
// MaxStates budget and abandoned part of the product-graph search. A
// truncated analysis may miss return origins (and thus error codes);
// callers surface it as a diagnostic rather than silently shipping a
// partial profile.
func (a *Analysis) Truncated() bool { return a.truncated }

// Abstract locations tracked by the backward search: registers and
// BP-relative frame slots (negative offsets = locals and spills; positive
// offsets = incoming arguments).
type locKind uint8

const (
	locReg locKind = iota + 1
	locFrame
)

type loc struct {
	kind locKind
	reg  isa.Reg
	off  int32
}

func regLoc(r isa.Reg) loc   { return loc{kind: locReg, reg: r} }
func frameLoc(off int32) loc { return loc{kind: locFrame, off: off} }
func (l loc) String() string {
	if l.kind == locReg {
		return l.reg.String()
	}
	return fmt.Sprintf("[bp%+d]", l.off)
}

type searchState struct {
	block *cfg.Block
	idx   int // instruction index to start scanning backwards from
	loc   loc
	path  []*cfg.Block // blocks from current to exit (current first)
}

// ReturnOrigins finds every origin of the function's return value across
// all exit blocks — the paper's "reverse constant propagation".
func (a *Analysis) ReturnOrigins() []Origin {
	max := a.MaxStates
	if max <= 0 {
		max = DefaultMaxStates
	}
	a.statesExpanded = 0
	a.truncated = false

	var origins []Origin
	type visitKey struct {
		blockID int
		l       loc
	}
	visited := make(map[visitKey]bool)

	var stack []searchState
	for _, exit := range a.Graph.ExitBlocks() {
		if exit.Last().Op != isa.OpRet {
			continue // halt does not return a value to a caller
		}
		stack = append(stack, searchState{
			block: exit,
			idx:   exit.NumInsts() - 2, // skip the ret itself
			loc:   regLoc(isa.R0),
			path:  []*cfg.Block{exit},
		})
	}

	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.statesExpanded >= max {
			a.truncated = true
			break
		}
		a.statesExpanded++

		found := false
		for i := st.idx; i >= 0 && !found; i-- {
			in := st.block.Inst(i)
			def, kind := defines(in, st.loc)
			if !def {
				continue
			}
			found = true
			switch kind.sort {
			case defConst:
				origins = append(origins, Origin{
					Known: true, Value: kind.imm,
					Path: reversePath(st.path), DefIdx: i,
				})
			case defCopy:
				// Continue searching for the source location from just
				// above this instruction, same block.
				stack = append(stack, searchState{
					block: st.block, idx: i - 1, loc: kind.src, path: st.path,
				})
			case defCall:
				ref := a.calleeAt(st.block, i)
				consts, ok := a.resolve(ref)
				origins = append(origins, Origin{
					Known: ok, ViaCall: true, Callee: ref, CalleeConsts: consts,
					Path: reversePath(st.path), DefIdx: i,
				})
			case defUnknown:
				origins = append(origins, Origin{
					Known: false,
					Path:  reversePath(st.path), DefIdx: i,
				})
			}
		}
		if found {
			continue
		}
		// Not defined in this block: expand product-graph edges into
		// predecessors. Reaching the entry block means the location
		// holds a caller-supplied value (argument/uninitialised) — a
		// non-constant origin we simply drop, matching the paper (only
		// constants are fault-profile candidates).
		for _, pred := range st.block.Preds {
			key := visitKey{pred.ID, st.loc}
			if visited[key] {
				continue
			}
			visited[key] = true
			np := make([]*cfg.Block, len(st.path)+1)
			np[0] = pred
			copy(np[1:], st.path)
			stack = append(stack, searchState{
				block: pred, idx: pred.NumInsts() - 1, loc: st.loc, path: np,
			})
		}
	}
	return origins
}

type defSort uint8

const (
	defConst defSort = iota + 1
	defCopy
	defCall
	defUnknown
)

type defInfo struct {
	sort defSort
	imm  int32
	src  loc
}

// defines reports whether instruction in writes the given location, and if
// so, how the written value is produced.
func defines(in isa.Inst, l loc) (bool, defInfo) {
	switch l.kind {
	case locReg:
		r := l.reg
		switch in.Op {
		case isa.OpMovRI:
			if in.A == r {
				return true, defInfo{sort: defConst, imm: in.Imm}
			}
		case isa.OpMovRR:
			if in.A == r {
				return true, defInfo{sort: defCopy, src: regLoc(in.B)}
			}
		case isa.OpLoad, isa.OpLoadB:
			if in.A == r {
				if in.B == isa.BP {
					return true, defInfo{sort: defCopy, src: frameLoc(in.Imm)}
				}
				return true, defInfo{sort: defUnknown}
			}
		case isa.OpPopR:
			if in.A == r {
				return true, defInfo{sort: defUnknown}
			}
		case isa.OpAddRI, isa.OpSubRI, isa.OpAndRI, isa.OpOrRI, isa.OpXorRI,
			isa.OpShlRI, isa.OpShrRI, isa.OpNeg, isa.OpNot:
			if in.A == r {
				return true, defInfo{sort: defUnknown}
			}
		case isa.OpAddRR, isa.OpSubRR, isa.OpMulRR, isa.OpDivRR, isa.OpModRR,
			isa.OpAndRR, isa.OpOrRR, isa.OpXorRR:
			if in.A == r {
				return true, defInfo{sort: defUnknown}
			}
		case isa.OpLea, isa.OpTLSBase, isa.OpDlNext:
			if in.A == r {
				return true, defInfo{sort: defUnknown}
			}
		case isa.OpCall, isa.OpSyscall:
			// Calls define the return register.
			if r == isa.R0 {
				return true, defInfo{sort: defCall}
			}
		case isa.OpCallR:
			if r == isa.R0 {
				return true, defInfo{sort: defCall}
			}
		}
	case locFrame:
		switch in.Op {
		case isa.OpStoreR:
			if in.A == isa.BP && in.Imm == l.off {
				return true, defInfo{sort: defCopy, src: regLoc(in.B)}
			}
		case isa.OpStoreB:
			if in.A == isa.BP && in.Imm == l.off {
				return true, defInfo{sort: defUnknown}
			}
		case isa.OpStoreI:
			if in.A == isa.BP && in.StoreIDisp() == l.off {
				return true, defInfo{sort: defConst, imm: in.Imm}
			}
		}
	}
	return false, defInfo{}
}

// calleeAt identifies the callee of the call-class instruction at index
// idx of block b, scanning backwards for the syscall number when needed.
func (a *Analysis) calleeAt(b *cfg.Block, idx int) CalleeRef {
	in := b.Inst(idx)
	off := b.InstOff(idx)
	switch in.Op {
	case isa.OpCall:
		local, imp, imported, ok := a.Graph.Prog.CallTarget(off)
		if !ok {
			return CalleeRef{Kind: CalleeIndirect}
		}
		if imported {
			return CalleeRef{Kind: CalleeImport, Name: imp}
		}
		return CalleeRef{Kind: CalleeLocal, Off: local}
	case isa.OpCallR:
		return CalleeRef{Kind: CalleeIndirect}
	case isa.OpSyscall:
		// The MiniC syscall intrinsic materialises the number with
		// `mov r0, N` shortly before the trap; mirror the paper's
		// kernel-dependency discovery by scanning backwards for it.
		for i := idx - 1; i >= 0; i-- {
			prev := b.Inst(i)
			if prev.Op == isa.OpMovRI && prev.A == isa.R0 {
				return CalleeRef{Kind: CalleeSyscall, Syscall: prev.Imm}
			}
			if wr, _ := defines(prev, regLoc(isa.R0)); wr {
				break
			}
		}
		return CalleeRef{Kind: CalleeIndirect}
	}
	return CalleeRef{Kind: CalleeIndirect}
}

func (a *Analysis) resolve(ref CalleeRef) ([]int32, bool) {
	if ref.Kind == CalleeIndirect || a.Resolver == nil {
		return nil, false
	}
	return a.Resolver.ReturnConstants(ref)
}

func reversePath(p []*cfg.Block) []*cfg.Block {
	out := make([]*cfg.Block, len(p))
	copy(out, p)
	return out
}

// ---------------------------------------------------------------------------
// Side-effect extraction (§3.2)
// ---------------------------------------------------------------------------

// absVal is the forward abstract value domain used during path replay.
type absVal struct {
	kind   absKind
	c      int32   // absConst: the constant; absAddr*: accumulated offset
	arg    int32   // absArgPtr: argument index
	neg    bool    // absRet: negated callee return
	consts []int32 // absRet: the callee's constant returns
}

type absKind uint8

const (
	absTop absKind = iota
	absConst
	absRet     // value of the origin's dependent call / origin constant
	absAddrTLS // address within the module TLS block
	absAddrGlb // address within the module data section
	absArgPtr  // pointer loaded from a positive BP offset (argument)
)

// replayState carries the forward abstract machine state: registers,
// tracked frame slots, and the expression-temporary stack (push/pop pairs
// emitted by compilers for binary operations). Frame slots not written
// during the replay are resolved lazily with a backward search (locals
// often hold dependent-call results stored before the error branch).
type replayState struct {
	regs   [isa.NumRegs]absVal
	frames map[int32]absVal
	stack  []absVal
}

// SideEffects replays the origin's representative path and returns the
// error side channels discovered along it.
func (a *Analysis) SideEffects(o Origin) []SideEffect {
	if len(o.Path) == 0 {
		return nil
	}
	var out []SideEffect
	st := &replayState{frames: make(map[int32]absVal)}

	// If the path's first block is entered with the dependent callee's
	// return value in R0 (the wrapper pattern: call; test; error block),
	// model it as absRet carrying the callee's constants. When the origin
	// itself is a call, R0 is seeded as the replay passes the call below.
	if !o.ViaCall {
		if ref, ok := a.blockEnteredWithCallReturn(o.Path[0]); ok {
			consts, _ := a.resolve(ref)
			st.regs[isa.R0] = absVal{kind: absRet, consts: consts}
		}
	}

	seen := make(map[seKey]bool)
	for _, b := range o.Path {
		for i := 0; i < b.NumInsts(); i++ {
			in := b.Inst(i)
			a.step(st, b, i, in, &out, seen)
		}
	}
	return out
}

// lookupBack resolves the abstract value of a location at (block b,
// before instruction idx+1) by backward search — the same product-graph
// walk as ReturnOrigins, reduced to a single representative answer.
func (a *Analysis) lookupBack(b *cfg.Block, idx int, l loc,
	visited map[lookupKey]bool, depth int) absVal {

	if depth > 64 {
		return absVal{}
	}
	for i := idx; i >= 0; i-- {
		def, info := defines(b.Inst(i), l)
		if !def {
			continue
		}
		switch info.sort {
		case defConst:
			return absVal{kind: absConst, c: info.imm}
		case defCopy:
			return a.lookupBack(b, i-1, info.src, visited, depth+1)
		case defCall:
			consts, _ := a.resolve(a.calleeAt(b, i))
			return absVal{kind: absRet, consts: consts}
		default:
			return absVal{}
		}
	}
	for _, pred := range b.Preds {
		key := lookupKey{pred.ID, l}
		if visited[key] {
			continue
		}
		visited[key] = true
		if v := a.lookupBack(pred, pred.NumInsts()-1, l, visited, depth+1); v.kind != absTop {
			return v
		}
	}
	return absVal{}
}

type lookupKey struct {
	blockID int
	l       loc
}

// blockEnteredWithCallReturn probes whether R0 at the block's entry holds
// a dependent-function return value, identifying the callee.
func (a *Analysis) blockEnteredWithCallReturn(b *cfg.Block) (CalleeRef, bool) {
	for _, pred := range b.Preds {
		for i := pred.NumInsts() - 1; i >= 0; i-- {
			in := pred.Inst(i)
			if in.Op == isa.OpCall || in.Op == isa.OpSyscall || in.Op == isa.OpCallR {
				return a.calleeAt(pred, i), true
			}
			if def, _ := defines(in, regLoc(isa.R0)); def {
				break
			}
		}
	}
	return CalleeRef{}, false
}

// seKey identifies a side effect for deduplication (comparable subset of
// SideEffect).
type seKey struct {
	kind       SideEffectKind
	off        int32
	argIdx     int32
	fromCallee bool
	negated    bool
	constVal   int32
}

// step advances the abstract state over one instruction and records any
// side-effecting store.
func (a *Analysis) step(st *replayState, b *cfg.Block, i int, in isa.Inst,
	out *[]SideEffect, seen map[seKey]bool) {

	regs := &st.regs
	off := b.InstOff(i)
	set := func(r isa.Reg, v absVal) { regs[r] = v }

	switch in.Op {
	case isa.OpMovRI:
		set(in.A, absVal{kind: absConst, c: in.Imm})
	case isa.OpMovRR:
		set(in.A, regs[in.B])
	case isa.OpLea:
		if r, ok := a.Graph.Prog.RelocAt(off); ok {
			switch r.Kind {
			case obj.RelocTLS:
				set(in.A, absVal{kind: absAddrTLS, c: r.Index})
				return
			case obj.RelocData:
				set(in.A, absVal{kind: absAddrGlb, c: r.Index})
				return
			}
		}
		set(in.A, absVal{kind: absTop})
	case isa.OpTLSBase:
		set(in.A, absVal{kind: absAddrTLS})
	case isa.OpLoad, isa.OpLoadB:
		if in.B == isa.BP && in.Imm >= 8 {
			// Pointer (or value) loaded from an argument slot; treat as
			// a potential output-argument base (§3.2's [ebp+??] rule).
			set(in.A, absVal{kind: absArgPtr, arg: (in.Imm - 8) / 4})
			return
		}
		if in.B == isa.BP {
			if v, ok := st.frames[in.Imm]; ok {
				set(in.A, v)
				return
			}
			// Lazy backward resolution: locals commonly hold a
			// dependent-call result stored before the error branch.
			v := a.lookupBack(b, i-1, frameLoc(in.Imm), make(map[lookupKey]bool), 0)
			set(in.A, v)
			return
		}
		set(in.A, absVal{kind: absTop})
	case isa.OpAddRI:
		v := regs[in.A]
		switch v.kind {
		case absConst, absAddrTLS, absAddrGlb:
			v.c += in.Imm
			set(in.A, v)
		default:
			set(in.A, absVal{kind: absTop})
		}
	case isa.OpSubRI:
		v := regs[in.A]
		switch v.kind {
		case absConst, absAddrTLS, absAddrGlb:
			v.c -= in.Imm
			set(in.A, v)
		default:
			set(in.A, absVal{kind: absTop})
		}
	case isa.OpNeg:
		v := regs[in.A]
		switch v.kind {
		case absConst:
			v.c = -v.c
			set(in.A, v)
		case absRet:
			v.neg = !v.neg
			set(in.A, v)
		default:
			set(in.A, absVal{kind: absTop})
		}
	case isa.OpXorRR:
		if in.A == in.B {
			set(in.A, absVal{kind: absConst, c: 0})
			return
		}
		set(in.A, absVal{kind: absTop})
	case isa.OpSubRR:
		// The glibc pattern: xor edx,edx; sub edx,eax => edx = -eax.
		va, vb := regs[in.A], regs[in.B]
		if va.kind == absConst && va.c == 0 && vb.kind == absRet {
			set(in.A, absVal{kind: absRet, neg: !vb.neg, consts: vb.consts})
			return
		}
		if va.kind == absConst && vb.kind == absConst {
			set(in.A, absVal{kind: absConst, c: va.c - vb.c})
			return
		}
		set(in.A, absVal{kind: absTop})
	case isa.OpAddRR, isa.OpMulRR, isa.OpDivRR, isa.OpModRR, isa.OpAndRR,
		isa.OpOrRR, isa.OpAndRI, isa.OpOrRI, isa.OpXorRI, isa.OpShlRI,
		isa.OpShrRI, isa.OpNot:
		set(in.A, absVal{kind: absTop})
	case isa.OpPushR:
		st.stack = append(st.stack, regs[in.A])
	case isa.OpPushI:
		st.stack = append(st.stack, absVal{kind: absConst, c: in.Imm})
	case isa.OpPopR:
		if n := len(st.stack); n > 0 {
			set(in.A, st.stack[n-1])
			st.stack = st.stack[:n-1]
		} else {
			set(in.A, absVal{kind: absTop})
		}
	case isa.OpCall, isa.OpSyscall, isa.OpCallR:
		// Conservatively clobber caller-saved registers; R0 becomes the
		// callee return. Any dependent call return can feed errno
		// stores, so model every call return as absRet with the
		// callee's resolved constants attached. The expression stack is
		// invalidated (arguments are popped by `add sp, n` which the
		// abstract stack does not track).
		consts, _ := a.resolve(a.calleeAt(b, i))
		set(isa.R0, absVal{kind: absRet, consts: consts})
		set(isa.R1, absVal{kind: absTop})
		set(isa.R2, absVal{kind: absTop})
		set(isa.R3, absVal{kind: absTop})
		st.stack = st.stack[:0]
	case isa.OpStoreR, isa.OpStoreB:
		if in.A == isa.BP {
			st.frames[in.Imm] = regs[in.B]
			return
		}
		a.recordStore(regs[in.A], in.Imm, regs[in.B], out, seen)
	case isa.OpStoreI:
		if in.A == isa.BP {
			st.frames[in.StoreIDisp()] = absVal{kind: absConst, c: in.Imm}
			return
		}
		a.recordStore(regs[in.A], in.StoreIDisp(),
			absVal{kind: absConst, c: in.Imm}, out, seen)
	}
}

func (a *Analysis) recordStore(base absVal, disp int32, val absVal,
	out *[]SideEffect, seen map[seKey]bool) {

	var se SideEffect
	switch base.kind {
	case absAddrTLS:
		se = SideEffect{Kind: SideEffectTLS, Off: base.c + disp}
	case absAddrGlb:
		se = SideEffect{Kind: SideEffectGlobal, Off: base.c + disp}
	case absArgPtr:
		se = SideEffect{Kind: SideEffectArgument, ArgIdx: base.arg, Off: disp}
	default:
		return
	}
	switch val.kind {
	case absConst:
		se.Value = StoredValue{Const: val.c}
	case absRet:
		se.Value = StoredValue{FromCallee: true, Negated: val.neg, Consts: val.consts}
	default:
		return // unknown stored value: not a usable fault side effect
	}
	key := seKey{
		kind: se.Kind, off: se.Off, argIdx: se.ArgIdx,
		fromCallee: se.Value.FromCallee, negated: se.Value.Negated, constVal: se.Value.Const,
	}
	if !seen[key] {
		seen[key] = true
		*out = append(*out, se)
	}
}
