package dataflow_test

import (
	"testing"
)

// feasOrigins returns each known-constant origin with its feasibility.
func feasOrigins(t *testing.T, src string) map[int32]bool {
	t.Helper()
	a := analyse(t, src, "f", nil)
	out := make(map[int32]bool)
	for _, o := range a.ReturnOrigins() {
		if !o.Known || o.ViaCall {
			continue
		}
		out[o.Value] = a.PathFeasible(o)
	}
	return out
}

// TestContradictoryGuardInfeasible: the corpus phantom pattern — a path
// requiring a0 > 95 and a0 < 5 simultaneously.
func TestContradictoryGuardInfeasible(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r0, [bp+8]
  cmp r0, 95
  jle .out
  load r0, [bp+8]
  cmp r0, 5
  jge .out
  mov r0, -3
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	if feas, ok := got[-3]; !ok || feas {
		t.Errorf("phantom -3 feasibility = %v (present=%v), want infeasible", feas, ok)
	}
	if feas, ok := got[0]; !ok || !feas {
		t.Errorf("success 0 feasibility = %v, want feasible", feas)
	}
}

// TestConsistentGuardFeasible: a0 > 5 && a0 < 95 is satisfiable.
func TestConsistentGuardFeasible(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r0, [bp+8]
  cmp r0, 5
  jle .out
  load r0, [bp+8]
  cmp r0, 95
  jge .out
  mov r0, -3
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	if feas := got[-3]; !feas {
		t.Error("satisfiable guard marked infeasible")
	}
}

// TestEqualityPinning: a0 == 3 then a0 == 4 on one path is impossible.
func TestEqualityPinning(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r0, [bp+8]
  cmp r0, 3
  jne .out
  load r0, [bp+8]
  cmp r0, 4
  jne .out
  mov r0, -8
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	if feas := got[-8]; feas {
		t.Error("a0==3 && a0==4 should be infeasible")
	}
}

// TestMirroredComparison: constant on the left (cmp const-reg, arg-reg).
func TestMirroredComparison(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r1, [bp+8]
  mov r0, 10
  cmp r0, r1
  jl .next        ; 10 < a0  =>  a0 > 10
  jmp .out
.next:
  load r0, [bp+8]
  cmp r0, 4
  jge .out        ; requires a0 < 4: contradiction
  mov r0, -6
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	if feas := got[-6]; feas {
		t.Error("mirrored contradiction not detected")
	}
}

// TestUnknownOperandsStayFeasible: comparisons not involving arguments
// must not constrain anything.
func TestUnknownOperandsStayFeasible(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.extern g
.global f
.func f
  call g
  cmp r0, 100
  jle .out
  call g
  cmp r0, 0
  jge .out
  mov r0, -2
  ret
.out:
  mov r0, 0
  ret
`)
	if feas, ok := got[-2]; ok && !feas {
		t.Error("call results are unconstrained; path must stay feasible")
	}
}
