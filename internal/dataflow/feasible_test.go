package dataflow_test

import (
	"fmt"
	"strings"
	"testing"
)

// feasOrigins returns each known-constant origin with its feasibility.
func feasOrigins(t *testing.T, src string) map[int32]bool {
	t.Helper()
	a := analyse(t, src, "f", nil)
	out := make(map[int32]bool)
	for _, o := range a.ReturnOrigins() {
		if !o.Known || o.ViaCall {
			continue
		}
		out[o.Value] = a.PathFeasible(o)
	}
	return out
}

// TestContradictoryGuardInfeasible: the corpus phantom pattern — a path
// requiring a0 > 95 and a0 < 5 simultaneously.
func TestContradictoryGuardInfeasible(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r0, [bp+8]
  cmp r0, 95
  jle .out
  load r0, [bp+8]
  cmp r0, 5
  jge .out
  mov r0, -3
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	if feas, ok := got[-3]; !ok || feas {
		t.Errorf("phantom -3 feasibility = %v (present=%v), want infeasible", feas, ok)
	}
	if feas, ok := got[0]; !ok || !feas {
		t.Errorf("success 0 feasibility = %v, want feasible", feas)
	}
}

// TestConsistentGuardFeasible: a0 > 5 && a0 < 95 is satisfiable.
func TestConsistentGuardFeasible(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r0, [bp+8]
  cmp r0, 5
  jle .out
  load r0, [bp+8]
  cmp r0, 95
  jge .out
  mov r0, -3
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	if feas := got[-3]; !feas {
		t.Error("satisfiable guard marked infeasible")
	}
}

// TestEqualityPinning: a0 == 3 then a0 == 4 on one path is impossible.
func TestEqualityPinning(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r0, [bp+8]
  cmp r0, 3
  jne .out
  load r0, [bp+8]
  cmp r0, 4
  jne .out
  mov r0, -8
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	if feas := got[-8]; feas {
		t.Error("a0==3 && a0==4 should be infeasible")
	}
}

// TestMirroredComparison: constant on the left (cmp const-reg, arg-reg).
func TestMirroredComparison(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r1, [bp+8]
  mov r0, 10
  cmp r0, r1
  jl .next        ; 10 < a0  =>  a0 > 10
  jmp .out
.next:
  load r0, [bp+8]
  cmp r0, 4
  jge .out        ; requires a0 < 4: contradiction
  mov r0, -6
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	if feas := got[-6]; feas {
		t.Error("mirrored contradiction not detected")
	}
}

// TestUnknownOperandsStayFeasible: comparisons not involving arguments
// must not constrain anything.
func TestUnknownOperandsStayFeasible(t *testing.T) {
	got := feasOrigins(t, `
.lib x
.extern g
.global f
.func f
  call g
  cmp r0, 100
  jle .out
  call g
  cmp r0, 0
  jge .out
  mov r0, -2
  ret
.out:
  mov r0, 0
  ret
`)
	if feas, ok := got[-2]; ok && !feas {
		t.Error("call results are unconstrained; path must stay feasible")
	}
}

// diamondGuardSrc builds a function whose defining block sits behind a
// contradictory argument guard (a0 > 95 && a0 < 5) with n unconstrained
// diamonds in between, giving 2^n acyclic entry->def paths — every one
// of them unsatisfiable.
func diamondGuardSrc(n int) string {
	var b strings.Builder
	b.WriteString(`
.lib x
.extern g
.global f
.func f
  push bp
  mov bp, sp
  load r0, [bp+8]
  cmp r0, 95
  jle .out
`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `  call g
  cmp r0, 1
  je .b%d
  jmp .j%d
.b%d:
  nop
.j%d:
`, i, i, i, i)
	}
	b.WriteString(`  load r0, [bp+8]
  cmp r0, 5
  jge .out
  mov r0, -3
  mov sp, bp
  pop bp
  ret
.out:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`)
	return b.String()
}

// TestFeasibilityBudgetConservative: PathFeasible enumerates at most 128
// candidate paths. Exhausting the budget must fail open — report
// feasible — so pruning never discards an error code it could not prove
// away; a small instance of the same contradiction is still pruned.
func TestFeasibilityBudgetConservative(t *testing.T) {
	// 2 diamonds: 4 paths, all checked, contradiction proven.
	if got := feasOrigins(t, diamondGuardSrc(2)); got[-3] {
		t.Error("4-path contradiction not pruned (budget is not the limit here)")
	}
	// 8 diamonds: 256 paths > 128. The DFS gives up with the
	// contradiction unproven and must conservatively keep the code.
	if got := feasOrigins(t, diamondGuardSrc(8)); !got[-3] {
		t.Error("budget exhaustion reported infeasible; must fail open and keep the error code")
	}
}
