package dataflow_test

import (
	"sort"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/cfg"
	"lfi/internal/dataflow"
	"lfi/internal/disasm"
)

// tableResolver serves canned constants for named callees.
type tableResolver map[string][]int32

func (r tableResolver) ReturnConstants(ref dataflow.CalleeRef) ([]int32, bool) {
	var key string
	switch ref.Kind {
	case dataflow.CalleeImport:
		key = ref.Name
	case dataflow.CalleeSyscall:
		key = "syscall"
	default:
		return nil, false
	}
	v, ok := r[key]
	return v, ok
}

func analyse(t *testing.T, src, fn string, res dataflow.Resolver) *dataflow.Analysis {
	t.Helper()
	f, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p, err := disasm.Disassemble(f)
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := f.Lookup(fn)
	if !ok {
		t.Fatalf("no symbol %s", fn)
	}
	g, err := cfg.Build(p, sym.Off)
	if err != nil {
		t.Fatal(err)
	}
	return &dataflow.Analysis{Graph: g, Resolver: res}
}

func constants(origins []dataflow.Origin) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, o := range origins {
		for _, v := range o.Values() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestDirectConstantReturn(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  mov r0, -7
  ret
`, "f", nil)
	got := constants(a.ReturnOrigins())
	if len(got) != 1 || got[0] != -7 {
		t.Errorf("constants = %v, want [-7]", got)
	}
}

func TestConstantThroughRegisterCopy(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  mov r1, -3
  mov r0, r1
  ret
`, "f", nil)
	got := constants(a.ReturnOrigins())
	if len(got) != 1 || got[0] != -3 {
		t.Errorf("constants = %v, want [-3]", got)
	}
}

func TestConstantThroughFrameSlot(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  sub sp, 4
  mov r0, -5
  store [bp-4], r0
  mov r0, 0
  load r0, [bp-4]
  mov sp, bp
  pop bp
  ret
`, "f", nil)
	got := constants(a.ReturnOrigins())
	if len(got) != 1 || got[0] != -5 {
		t.Errorf("constants = %v, want [-5]", got)
	}
}

func TestMultiPathConstants(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  cmp r1, 0
  je .z
  cmp r1, 1
  je .one
  mov r0, -1
  ret
.z:
  mov r0, 0
  ret
.one:
  mov r0, 5
  ret
`, "f", nil)
	got := constants(a.ReturnOrigins())
	want := []int32{-1, 0, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("constants = %v, want %v", got, want)
	}
}

func TestDependentCallPropagation(t *testing.T) {
	a := analyse(t, `
.lib x
.extern dep
.global f
.func f
  call dep
  ret
`, "f", tableResolver{"dep": {-9, -5}})
	got := constants(a.ReturnOrigins())
	if len(got) != 2 || got[0] != -9 || got[1] != -5 {
		t.Errorf("constants = %v, want [-9 -5]", got)
	}
}

func TestIndirectCallYieldsUnknown(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  callr r1
  ret
`, "f", tableResolver{})
	origins := a.ReturnOrigins()
	if len(origins) == 0 {
		t.Fatal("no origins")
	}
	for _, o := range origins {
		if o.Known {
			t.Errorf("indirect call origin should be unknown: %+v", o)
		}
	}
}

func TestSyscallNumberDiscovery(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  mov r1, 3
  mov r0, 5
  syscall
  ret
`, "f", tableResolver{"syscall": {-4}})
	got := constants(a.ReturnOrigins())
	if len(got) != 1 || got[0] != -4 {
		t.Errorf("constants = %v, want [-4] via syscall resolver", got)
	}
}

func TestArithmeticResultIsUnknown(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  mov r0, 2
  add r0, r1
  ret
`, "f", nil)
	got := constants(a.ReturnOrigins())
	if len(got) != 0 {
		t.Errorf("computed values must not be constants: %v", got)
	}
}

func TestArgumentPassThroughIsUnknown(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  load r0, [bp+8]
  mov sp, bp
  pop bp
  ret
`, "f", nil)
	if got := constants(a.ReturnOrigins()); len(got) != 0 {
		t.Errorf("argument return must not be constant: %v", got)
	}
}

// TestGlibcErrnoPattern reproduces the §3.2 listing: after a dependent
// call, the error block computes errno = -result via the xor/sub idiom
// and returns -1.
func TestGlibcErrnoPattern(t *testing.T) {
	a := analyse(t, `
.lib x
.extern kern
.global f
.tls errno 4
.func f
  call kern
  cmp r0, 0
  jge .ok
  xor r2, r2
  sub r2, r0
  lea r1, errno
  store [r1+0], r2
  mov r0, -1
  ret
.ok:
  ret
`, "f", tableResolver{"kern": {-9, -5, -4, 0}})
	origins := a.ReturnOrigins()
	var minusOne *dataflow.Origin
	for i := range origins {
		if origins[i].Known && !origins[i].ViaCall && origins[i].Value == -1 {
			minusOne = &origins[i]
		}
	}
	if minusOne == nil {
		t.Fatalf("no -1 origin: %+v", origins)
	}
	ses := a.SideEffects(*minusOne)
	if len(ses) != 1 {
		t.Fatalf("side effects = %+v, want 1 TLS entry", ses)
	}
	se := ses[0]
	if se.Kind != dataflow.SideEffectTLS || se.Off != 0 {
		t.Errorf("side effect = %+v", se)
	}
	if !se.Value.FromCallee || !se.Value.Negated {
		t.Errorf("stored value = %+v, want negated callee return", se.Value)
	}
	if len(se.Value.Consts) != 4 {
		t.Errorf("callee consts = %v", se.Value.Consts)
	}
}

// TestNegPattern covers the MiniC-style errno = -r via OpNeg with the
// value re-loaded from a frame slot.
func TestNegPatternThroughFrame(t *testing.T) {
	a := analyse(t, `
.lib x
.extern kern
.global f
.tls errno 4
.func f
  push bp
  mov bp, sp
  sub sp, 4
  call kern
  store [bp-4], r0
  load r0, [bp-4]
  cmp r0, 0
  jge .ok
  load r0, [bp-4]
  neg r0
  lea r1, errno
  store [r1+0], r0
  mov r0, -1
  mov sp, bp
  pop bp
  ret
.ok:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`, "f", tableResolver{"kern": {-9}})
	origins := a.ReturnOrigins()
	found := false
	for _, o := range origins {
		if o.Known && o.Value == -1 {
			ses := a.SideEffects(o)
			for _, se := range ses {
				if se.Kind == dataflow.SideEffectTLS && se.Value.FromCallee && se.Value.Negated {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("frame-mediated errno side effect not detected")
	}
}

func TestGlobalSideEffect(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.dataw lasterr 0
.func f
  cmp r1, 0
  jge .ok
  lea r2, lasterr
  store [r2+0], 22
  mov r0, -1
  ret
.ok:
  mov r0, 0
  ret
`, "f", nil)
	for _, o := range a.ReturnOrigins() {
		if o.Known && o.Value == -1 {
			ses := a.SideEffects(o)
			if len(ses) != 1 || ses[0].Kind != dataflow.SideEffectGlobal || ses[0].Value.Const != 22 {
				t.Errorf("global side effect = %+v", ses)
			}
			return
		}
	}
	t.Fatal("-1 origin not found")
}

func TestOutputArgumentSideEffect(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  push bp
  mov bp, sp
  cmp r1, 0
  jge .ok
  load r2, [bp+12]
  store [r2+0], 42
  mov r0, -1
  mov sp, bp
  pop bp
  ret
.ok:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`, "f", nil)
	for _, o := range a.ReturnOrigins() {
		if o.Known && o.Value == -1 {
			ses := a.SideEffects(o)
			if len(ses) != 1 || ses[0].Kind != dataflow.SideEffectArgument ||
				ses[0].ArgIdx != 1 || ses[0].Value.Const != 42 {
				t.Errorf("argument side effect = %+v", ses)
			}
			return
		}
	}
	t.Fatal("-1 origin not found")
}

func TestMaxStatesBudget(t *testing.T) {
	a := analyse(t, `
.lib x
.global f
.func f
  mov r0, -1
  ret
`, "f", nil)
	a.MaxStates = 1
	a.ReturnOrigins()
	if a.StatesExpanded() > 1 {
		t.Errorf("states expanded = %d with budget 1", a.StatesExpanded())
	}
}

func TestCalleeRefString(t *testing.T) {
	cases := map[string]dataflow.CalleeRef{
		"local@0x10":  {Kind: dataflow.CalleeLocal, Off: 16},
		"import:read": {Kind: dataflow.CalleeImport, Name: "read"},
		"syscall:5":   {Kind: dataflow.CalleeSyscall, Syscall: 5},
		"indirect":    {Kind: dataflow.CalleeIndirect},
	}
	for want, ref := range cases {
		if got := ref.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
