package dataflow

import (
	"lfi/internal/cfg"
	"lfi/internal/isa"
)

// PathFeasible checks whether the origin's representative path is
// satisfiable under an interval abstraction of the function's arguments.
//
// This implements the extension the paper leaves as future work (§3.1:
// "fault profiles may include false positives, i.e., return codes that
// can be returned only when certain combinations of arguments are
// provided. Inferring the relationship between arguments can be done
// using symbolic execution, but the current LFI prototype does not
// support this yet").
//
// The analysis walks the path's conditional branches; whenever a branch
// compares an argument value against a constant, the implied constraint
// narrows that argument's interval. A path that forces an empty interval
// (e.g. the guard a0 > 95 && a0 < 5) is infeasible, and its constant can
// be pruned from the fault profile. Like the paper's §3.1 heuristics the
// pruning is unsound — a representative path may be infeasible while
// another path reaches the same constant — so it is off by default.
func (a *Analysis) PathFeasible(o Origin) bool {
	if len(o.Path) == 0 {
		return true
	}
	// The origin's recorded path runs from the defining block to the
	// exit; the argument guards live on the way *to* the defining block.
	// The definition is reachable iff some acyclic entry->def path is
	// satisfiable (checking one arbitrary path would misreport dead code
	// as live and vice versa).
	target := o.Path[0]
	entry := a.Graph.Entry
	if entry == nil {
		return true
	}
	found := false
	budget := 128
	var dfs func(b *cfg.Block, path []*cfg.Block, onPath map[int]bool)
	dfs = func(b *cfg.Block, path []*cfg.Block, onPath map[int]bool) {
		if found || budget <= 0 {
			return
		}
		path = append(path, b)
		if b == target {
			budget--
			full := append(append([]*cfg.Block(nil), path...), o.Path[1:]...)
			if a.pathSatisfiable(full) {
				found = true
			}
			return
		}
		onPath[b.ID] = true
		for _, s := range b.Succs {
			if !onPath[s.ID] {
				dfs(s, path, onPath)
			}
		}
		delete(onPath, b.ID)
	}
	dfs(entry, nil, make(map[int]bool))
	return found || budget <= 0 // out of budget: assume feasible (sound-ish default)
}

// pathSatisfiable evaluates the branch constraints along one concrete
// block sequence under the argument-interval abstraction.
func (a *Analysis) pathSatisfiable(path []*cfg.Block) bool {
	iv := newIntervals()
	var regs [isa.NumRegs]argVal
	a.feasStack = a.feasStack[:0]

	for bi := 0; bi < len(path)-1; bi++ {
		b := path[bi]
		next := path[bi+1]

		// Forward-track argument and constant values within the block,
		// remembering the operands of the last comparison.
		var cmpA, cmpB argVal
		haveCmp := false
		for i := 0; i < b.NumInsts(); i++ {
			in := b.Inst(i)
			switch in.Op {
			case isa.OpMovRI:
				regs[in.A] = argVal{kind: avConst, c: in.Imm}
			case isa.OpMovRR:
				regs[in.A] = regs[in.B]
			case isa.OpLoad:
				if in.B == isa.BP && in.Imm >= 8 {
					regs[in.A] = argVal{kind: avArg, arg: (in.Imm - 8) / 4}
				} else {
					regs[in.A] = argVal{}
				}
			case isa.OpCmpRI:
				cmpA, cmpB = regs[in.A], argVal{kind: avConst, c: in.Imm}
				haveCmp = true
			case isa.OpCmpRR:
				cmpA, cmpB = regs[in.A], regs[in.B]
				haveCmp = true
			case isa.OpPushR, isa.OpPushI, isa.OpPopR:
				// The expression stack shuttles operands; a pop yields
				// an unknown unless we track it. Track one-deep: the
				// common binary-op pattern is push L; ...; pop r0.
				if in.Op == isa.OpPopR {
					regs[in.A] = a.popTracked()
				} else if in.Op == isa.OpPushR {
					a.pushTracked(regs[in.A])
				} else {
					a.pushTracked(argVal{kind: avConst, c: in.Imm})
				}
			case isa.OpCall, isa.OpCallR, isa.OpSyscall:
				regs[isa.R0] = argVal{}
				regs[isa.R1] = argVal{}
				regs[isa.R2] = argVal{}
				regs[isa.R3] = argVal{}
				a.feasStack = a.feasStack[:0]
			default:
				// Writes from arithmetic etc. lose precision.
				if def, _ := defines(in, regLoc(isa.R0)); def && in.A == isa.R0 {
					switch in.Op {
					case isa.OpMovRI, isa.OpMovRR, isa.OpLoad:
					default:
						regs[isa.R0] = argVal{}
					}
				}
			}
		}

		last := b.Last()
		if !last.Op.IsCondBranch() || !haveCmp {
			continue
		}
		taken := branchTakenTo(a, b, next)
		if !applyConstraint(iv, cmpA, cmpB, last.Op, taken) {
			return false
		}
	}
	return true
}

// feasStack is the one-deep operand tracking used by PathFeasible.
func (a *Analysis) pushTracked(v argVal) {
	a.feasStack = append(a.feasStack, v)
	if len(a.feasStack) > 8 {
		a.feasStack = a.feasStack[1:]
	}
}

func (a *Analysis) popTracked() argVal {
	if n := len(a.feasStack); n > 0 {
		v := a.feasStack[n-1]
		a.feasStack = a.feasStack[:n-1]
		return v
	}
	return argVal{}
}

type argVal struct {
	kind avKind
	c    int32
	arg  int32
}

type avKind uint8

const (
	avTop avKind = iota
	avConst
	avArg
)

// branchTakenTo reports whether the path edge from b to next follows the
// branch target (true) or the fall-through (false).
func branchTakenTo(a *Analysis, b, next *cfg.Block) bool {
	lastOff := b.End - isa.Size
	tgt := b.Last().Imm
	if r, ok := a.Graph.Prog.RelocAt(lastOff); ok {
		tgt = r.Index
	}
	return next.Start == tgt && next.Start != b.End
}

// interval is a closed signed range.
type interval struct {
	lo, hi int64
}

func fullInterval() interval { return interval{lo: -1 << 33, hi: 1 << 33} }

func (iv interval) empty() bool { return iv.lo > iv.hi }

type intervals map[int32]interval

func newIntervals() intervals { return make(intervals) }

func (m intervals) get(arg int32) interval {
	if iv, ok := m[arg]; ok {
		return iv
	}
	return fullInterval()
}

// applyConstraint narrows the intervals with "A op B" (or its negation
// when the branch is not taken); it returns false when an argument's
// interval becomes empty.
func applyConstraint(m intervals, a, b argVal, op isa.Op, taken bool) bool {
	// Constant-vs-constant comparisons decide the branch outright: a
	// path taking the impossible side (e.g. a boolean-materialisation
	// merge requiring 0 != 0) is unsatisfiable. This is what rules out
	// the bogus routes through compiled short-circuit (&&/||) code.
	if a.kind == avConst && b.kind == avConst {
		rel := relationOf(op, taken)
		if rel == relNone {
			return true
		}
		return constRelHolds(rel, a.c, b.c)
	}
	// Normalise to arg-on-the-left.
	if a.kind != avArg && b.kind == avArg && a.kind == avConst {
		a, b = b, a
		op = mirrorCmp(op)
	}
	if a.kind != avArg || b.kind != avConst {
		return true // not an argument-vs-constant comparison
	}
	rel := relationOf(op, taken)
	if rel == relNone {
		return true
	}
	iv := m.get(a.arg)
	c := int64(b.c)
	switch rel {
	case relEQ:
		if c > iv.lo {
			iv.lo = c
		}
		if c < iv.hi {
			iv.hi = c
		}
	case relLT:
		if c-1 < iv.hi {
			iv.hi = c - 1
		}
	case relLE:
		if c < iv.hi {
			iv.hi = c
		}
	case relGT:
		if c+1 > iv.lo {
			iv.lo = c + 1
		}
	case relGE:
		if c > iv.lo {
			iv.lo = c
		}
	case relNE:
		// Intervals cannot express holes; skip.
		return true
	}
	if iv.empty() {
		return false
	}
	m[a.arg] = iv
	return true
}

// constRelHolds evaluates a relation between two known constants.
func constRelHolds(rel relation, a, b int32) bool {
	switch rel {
	case relEQ:
		return a == b
	case relNE:
		return a != b
	case relLT:
		return a < b
	case relLE:
		return a <= b
	case relGT:
		return a > b
	case relGE:
		return a >= b
	}
	return true
}

type relation uint8

const (
	relNone relation = iota
	relEQ
	relNE
	relLT
	relLE
	relGT
	relGE
)

// relationOf maps a conditional branch (and whether it was taken) to the
// relation that must hold between the compared operands.
func relationOf(op isa.Op, taken bool) relation {
	var rel relation
	switch op {
	case isa.OpJe:
		rel = relEQ
	case isa.OpJne:
		rel = relNE
	case isa.OpJl:
		rel = relLT
	case isa.OpJle:
		rel = relLE
	case isa.OpJg:
		rel = relGT
	case isa.OpJge:
		rel = relGE
	default:
		return relNone
	}
	if !taken {
		rel = negateRel(rel)
	}
	return rel
}

func negateRel(r relation) relation {
	switch r {
	case relEQ:
		return relNE
	case relNE:
		return relEQ
	case relLT:
		return relGE
	case relLE:
		return relGT
	case relGT:
		return relLE
	case relGE:
		return relLT
	}
	return relNone
}

// mirrorCmp swaps comparison operands: a OP b <=> b mirror(OP) a.
func mirrorCmp(op isa.Op) isa.Op {
	switch op {
	case isa.OpJl:
		return isa.OpJg
	case isa.OpJle:
		return isa.OpJge
	case isa.OpJg:
		return isa.OpJl
	case isa.OpJge:
		return isa.OpJle
	}
	return op // je/jne are symmetric
}
