package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"lfi/internal/profile"
)

// SweepOptions tunes the campaign executor.
type SweepOptions struct {
	// Workers is the number of concurrent campaigns; <= 0 means
	// runtime.GOMAXPROCS(0). Each worker owns its own Campaign (and
	// therefore its own vm.System, controller and evaluator); the
	// CampaignConfig's Programs, Profiles and Files are shared across
	// workers and must not be mutated while the sweep runs.
	Workers int
	// MaxCrashes, when > 0, stops the sweep early once that many crash
	// outcomes have accumulated — the triage workflow: "show me the
	// first N ways this program dies". Crashes are counted in plan
	// order and the report is truncated at the threshold entry, so the
	// early-stopped result is also identical at every worker count.
	MaxCrashes int
	// Progress, when non-nil, is called after each experiment is
	// committed to the report, in plan order, from a single goroutine.
	Progress func(SweepProgress)
	// Snapshot switches the executor to the fork-server runtime: the
	// whole load pipeline (text copy, relocation, instruction decode,
	// symbol maps, stub synthesis for the union of intercepted
	// functions) runs once into an immutable vm.Snapshot, and every
	// run — baseline included — restores from it in O(writable bytes),
	// binding only its own compiled faultload. The rendered report is
	// byte-identical to the fresh-spawn executor's for faultloads whose
	// triggers key on calls (inject=, <calls>, probability, stacks,
	// after-fault — everything PlanExperiments generates), with one
	// caveat: the shared surface intercepts every swept function in
	// every run, so virtual cycle counts run slightly higher than under
	// the fresh executor's single-function stubs. A <cycles>-windowed
	// trigger or a run sitting exactly at an explicit tight cycle
	// budget can therefore classify differently; under the default
	// budget and call-keyed triggers the reports match byte for byte.
	Snapshot bool
	// FlatRestore disables the page-granular copy-on-write restore of
	// the snapshot executor and deep-copies every writable byte per run
	// instead (the CLI's -cow=false escape hatch). Reports are
	// byte-identical either way; only the per-experiment cost differs.
	// Ignored unless Snapshot is set.
	FlatRestore bool
	// NoMemo disables trigger-point prefix memoization. Under Snapshot,
	// precompiled experiments sharing a deterministic first-fire site
	// (scenario.FirstFireSite: same function, call number and trigger
	// count, no probability/after-fault/sticky/pid/cycles conditions)
	// are grouped: the deterministic prefix up to the site runs once per
	// group into a mid-execution snapshot + controller checkpoint, and
	// each member restores from it and runs only its suffix. Reports are
	// byte-identical either way (scripts/memocheck.sh); the zero value
	// keeps memoization on — the CLI's `-memo=false` escape hatch sets
	// this. Ignored unless Snapshot is set.
	NoMemo bool
	// MemoBudget caps the memo cache's resident snapshot bytes; 0 means
	// DefaultMemoBudget. Least-recently-used prefixes are evicted (and
	// rebuilt on demand) beyond the budget. Ignored when memoization is
	// inactive.
	MemoBudget int64
	// PruneUncalled enables baseline-informed pruning: the baseline
	// runs once with instruction coverage, and experiments whose
	// faultload only names functions the baseline never executed are
	// committed as not-triggered without spawning a run (deterministic
	// execution guarantees the run would replay the baseline exactly).
	// The rendered report is unchanged; only the work is skipped.
	PruneUncalled bool
	// Skip, when non-nil, is consulted once per experiment before any
	// run is spawned; returning (entry, true) commits the cached entry
	// in plan order without executing. This is the resume filter of
	// persistent campaign stores (internal/campaign): completed keys are
	// served from disk, the rest run, and the reassembled report is
	// byte-identical to a fresh full sweep. Skipped entries still count
	// toward MaxCrashes in plan order, so a resumed early-stopped sweep
	// truncates exactly where a fresh one would. Called from worker
	// goroutines — implementations must be safe for concurrent use.
	Skip func(exp *Experiment) (SweepEntry, bool)
	// ExecOrder, when non-nil, is a permutation of [0, len(exps))
	// giving the order experiments are dispatched AND committed in —
	// the audit-prioritised schedule of `lfi sweep -order=static`
	// (core.StaticOrder), where faultloads targeting unchecked call
	// sites run first so crash clusters surface early under MaxCrashes.
	// Early-stop thresholds count outcomes in execution order and
	// truncate there; a completed sweep's entries are reassembled into
	// plan order before the result is returned, so the full-sweep
	// report is byte-identical to the default (nil) order at any worker
	// count. A non-permutation is rejected.
	ExecOrder []int
	// OnResult, when non-nil, observes every freshly-executed experiment
	// from the worker goroutine that ran it — the live feed persistent
	// stores append to, firing as results complete (before plan-order
	// reassembly, so arrival order varies with scheduling). rep is nil
	// when the entry was synthesised without a run (pruned not-triggered
	// experiments); entries served from Skip are not re-reported.
	// Called concurrently at Workers > 1 — implementations must be safe
	// for concurrent use.
	OnResult func(exp *Experiment, entry SweepEntry, rep *Report)
}

// SweepProgress is one live progress update of a running sweep.
type SweepProgress struct {
	// Done experiments out of Total are committed to the report.
	Done, Total int
	// Served is how many of the Done entries were satisfied without a
	// member-specific execution: resume entries served from the
	// persistent store (Skip), baseline-pruned experiments, and memoized
	// experiments served whole from a terminated shared prefix. Done -
	// Served is the number of experiments actually executed.
	Served int
	// Entry is the experiment just committed.
	Entry SweepEntry
	// Tally is the cumulative outcome count over committed entries.
	Tally map[Outcome]int
}

// String renders the update as a one-line status.
func (p SweepProgress) String() string {
	return fmt.Sprintf("[%d/%d] %s.%s -> %s (crash=%d hang=%d error-exit=%d served=%d)",
		p.Done, p.Total, p.Entry.Library, p.Entry.Function, p.Entry.Outcome,
		p.Tally[OutcomeCrash], p.Tally[OutcomeHang], p.Tally[OutcomeErrorExit], p.Served)
}

// SweepParallel is Sweep distributed over a pool of workers, each running
// complete experiments in its own Campaign/vm.System. Results are
// re-ordered into plan order as they arrive, so the final SweepResult —
// and its Render output — is byte-identical to the sequential Sweep at
// any worker count. workers <= 0 defaults to runtime.GOMAXPROCS(0).
func SweepParallel(cfg CampaignConfig, set profile.Set, budget uint64, workers int) (*SweepResult, error) {
	return RunExperiments(cfg, PlanExperiments(set), budget, SweepOptions{Workers: workers})
}

// RunExperiments is the campaign executor: it runs the clean baseline,
// dispatches the experiments to a worker pool, and collects the entries
// back into plan order. It is the engine beneath Sweep and SweepParallel;
// callers with custom faultloads (e.g. seeded random triggers) can build
// their own experiment list and execute it here directly.
func RunExperiments(cfg CampaignConfig, exps []Experiment, budget uint64, opts SweepOptions) (*SweepResult, error) {
	if budget == 0 {
		budget = DefaultSweepBudget
	}
	// pos maps commit position -> plan index under the optional
	// execution-order permutation (identity when unset).
	if opts.ExecOrder != nil {
		if err := checkPermutation(opts.ExecOrder, len(exps)); err != nil {
			return nil, err
		}
	}
	pos := func(k int) int {
		if opts.ExecOrder != nil {
			return opts.ExecOrder[k]
		}
		return k
	}
	// A matrix that intercepts nothing — empty, or experiments whose
	// faultloads name no functions — has nothing a snapshot would
	// amortise: fall back to the fresh executor so the report matches
	// it instead of failing to build a stub set.
	var sr *snapshotRunner
	if opts.Snapshot {
		if fns := sweepFunctions(exps); len(fns) > 0 {
			// cfg is a by-value copy, so flipping the VM option here
			// never leaks into the caller's config or the fresh-spawn
			// paths (which build their systems straight from cfg.VM).
			cfg.VM.FlatRestore = opts.FlatRestore
			r, err := newSnapshotRunner(cfg, fns)
			if err != nil {
				return nil, err
			}
			sr = r
			if !opts.NoMemo {
				sr.memo = newMemoCache(opts.MemoBudget)
				sr.memo.plan(exps)
			}
		}
	}
	// The baseline anchors outcome classification. With pruning it also
	// collects the coverage-derived call set, which needs a fresh
	// coverage-enabled campaign; otherwise it comes from a snapshot
	// restore (pass-through stubs leave the exit code unchanged; sr is
	// nil for an empty matrix even with opts.Snapshot) or a plain fresh
	// spawn. All three produce the same exit code.
	var (
		base   *Report
		called map[string]bool
		err    error
	)
	switch {
	case opts.PruneUncalled:
		base, called, err = baselineCoverage(cfg, budget)
	case sr != nil:
		base, err = sr.baseline(budget)
	default:
		base, err = runBaseline(cfg, budget)
	}
	if err != nil {
		return nil, err
	}
	run := func(exp Experiment) (SweepEntry, bool, error) {
		// Resume outranks pruning: a cached entry is the recorded truth
		// of a real run, while pruning merely predicts one.
		if opts.Skip != nil {
			if entry, ok := opts.Skip(&exp); ok {
				return entry, true, nil
			}
		}
		if called != nil {
			if entry, ok := pruneEntry(&exp, called, base, cfg.Avail); ok {
				if opts.OnResult != nil {
					opts.OnResult(&exp, entry, nil)
				}
				return entry, true, nil
			}
		}
		var (
			entry  SweepEntry
			rep    *Report
			served bool
			err    error
		)
		if sr != nil {
			entry, rep, served, err = sr.run(exp, base, budget)
		} else {
			entry, rep, err = runExperiment(cfg, exp, base, budget)
		}
		if err != nil {
			return entry, served, err
		}
		if opts.OnResult != nil {
			opts.OnResult(&exp, entry, rep)
		}
		return entry, served, nil
	}
	res := &SweepResult{Executable: cfg.Executable, Baseline: base.Status.Code}
	if sr != nil && sr.memo != nil {
		defer func() { res.Memo = sr.memo.statsSnapshot() }()
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	collect := newCollector(res, len(exps), opts)
	if workers <= 1 {
		for k := range exps {
			i := pos(k)
			entry, served, err := run(exps[i])
			if err != nil {
				return nil, err
			}
			if collect.commit(i, entry, served) {
				break
			}
		}
		collect.reassemble()
		return res, nil
	}

	type job struct {
		idx int
		exp Experiment
	}
	type outcome struct {
		idx    int
		entry  SweepEntry
		served bool
		err    error
	}
	jobs := make(chan job)
	results := make(chan outcome, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	// On every exit path — completion, early stop, error — halt the pool
	// and drain results until the closer closes the channel, i.e. until
	// every worker has exited. A worker mid-experiment finishes that run
	// first, so no goroutine reads the shared CampaignConfig after this
	// function returns and callers may immediately reuse or mutate it.
	defer func() {
		halt()
		for range results {
		}
	}()

	// Dispatcher: feeds the plan in execution order until done or halted.
	go func() {
		defer close(jobs)
		for k := range exps {
			i := pos(k)
			select {
			case jobs <- job{idx: i, exp: exps[i]}:
			case <-stop:
				return
			}
		}
	}()

	// Workers: one fresh Campaign per experiment, nothing shared but the
	// read-only config.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				entry, served, err := run(j.exp)
				select {
				case results <- outcome{idx: j.idx, entry: entry, served: served, err: err}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: re-order completions into execution order so the report
	// is independent of scheduling (plan order unless ExecOrder permutes
	// it; reassemble below restores plan order either way). Errors are
	// buffered like entries and surfaced in execution order too — an
	// error from a later experiment must not preempt an earlier early
	// stop, or the sweep would fail at some worker counts and succeed at
	// others.
	pending := make(map[int]outcome, workers)
	next := 0
	for r := range results {
		pending[r.idx] = r
		stopped := false
		for next < len(exps) {
			o, ok := pending[pos(next)]
			if !ok {
				break
			}
			if o.err != nil {
				halt()
				return nil, o.err
			}
			delete(pending, pos(next))
			next++
			if collect.commit(o.idx, o.entry, o.served) {
				stopped = true
				break
			}
		}
		if stopped || next == len(exps) {
			halt()
			break
		}
	}
	collect.reassemble()
	return res, nil
}

// checkPermutation validates an ExecOrder against the plan size.
func checkPermutation(order []int, n int) error {
	if len(order) != n {
		return fmt.Errorf("core: ExecOrder has %d entries for %d experiments", len(order), n)
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return fmt.Errorf("core: ExecOrder is not a permutation of the plan")
		}
		seen[i] = true
	}
	return nil
}

// collector accumulates in-order entries, drives progress reporting and
// decides early stop. It is used from a single goroutine.
type collector struct {
	res    *SweepResult
	total  int
	opts   SweepOptions
	tally  map[Outcome]int
	served int
	// idxs records each committed entry's plan index, so reassemble can
	// restore plan order after a permuted (ExecOrder) execution.
	idxs []int
}

func newCollector(res *SweepResult, total int, opts SweepOptions) *collector {
	return &collector{res: res, total: total, opts: opts, tally: make(map[Outcome]int)}
}

// commit appends one in-execution-order entry (idx is its plan index)
// and reports whether the sweep should stop early. served marks entries
// satisfied without executing a run (resume cache hits, pruned
// experiments, shared terminal prefixes), tallied separately from
// executed experiments.
func (c *collector) commit(idx int, entry SweepEntry, served bool) (stop bool) {
	c.res.Entries = append(c.res.Entries, entry)
	c.idxs = append(c.idxs, idx)
	c.tally[entry.Outcome]++
	if served {
		c.served++
	}
	if c.opts.Progress != nil {
		tally := make(map[Outcome]int, len(c.tally))
		for k, v := range c.tally {
			tally[k] = v
		}
		c.opts.Progress(SweepProgress{
			Done: len(c.res.Entries), Total: c.total, Served: c.served,
			Entry: entry, Tally: tally,
		})
	}
	return c.opts.MaxCrashes > 0 && c.tally[OutcomeCrash] >= c.opts.MaxCrashes
}

// reassemble sorts the committed entries back into plan order. Under the
// default schedule commits already arrive in plan order and this is a
// no-op; under ExecOrder it is what makes a completed permuted sweep's
// report byte-identical to the default order's.
func (c *collector) reassemble() {
	if c.opts.ExecOrder == nil {
		return
	}
	sort.Sort(&byPlanIndex{entries: c.res.Entries, idxs: c.idxs})
}

// byPlanIndex sorts entries and their plan indices together.
type byPlanIndex struct {
	entries []SweepEntry
	idxs    []int
}

func (s *byPlanIndex) Len() int           { return len(s.idxs) }
func (s *byPlanIndex) Less(i, j int) bool { return s.idxs[i] < s.idxs[j] }
func (s *byPlanIndex) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.idxs[i], s.idxs[j] = s.idxs[j], s.idxs[i]
}
