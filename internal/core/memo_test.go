package core_test

import (
	"strings"
	"testing"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/profile"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// wideTarget is mixedTarget with an exhaustive-errno profile: several
// error codes per function, so every (function, call-site) cell forms a
// shared-prefix group the memoizer can amortise — the paper's
// functions × errnos matrix shape.
func wideTarget(t testing.TB) (core.CampaignConfig, profile.Set) {
	t.Helper()
	cfg, _ := mixedTarget(t)
	tls := func(errno int32) []profile.SideEffect {
		return []profile.SideEffect{{Type: profile.SideEffectTLS, Module: libc.Name, Value: errno}}
	}
	fn := func(name string, retval int32, errnos ...int32) profile.Function {
		f := profile.Function{Name: name}
		for _, e := range errnos {
			f.ErrorCodes = append(f.ErrorCodes, profile.ErrorCode{Retval: retval, SideEffects: tls(e)})
		}
		return f
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			fn("open", -1, 13, 2, 24),
			fn("read", -1, 5, 4, 11),
			fn("close", -1, 9, 5, 4),
			fn("malloc", 0, 12, 11, 22),
			fn("write", -1, 32, 5, 28), // never called: terminal-prefix group
		},
	}}
	return cfg, set
}

// TestSweepMemoIdentical is the determinism bar of prefix memoization:
// on an exhaustive errno matrix the memoized snapshot sweep renders
// byte-identically to the non-memoized one across both engines, CoW and
// flat restores, at 1, 4 and 8 workers.
func TestSweepMemoIdentical(t *testing.T) {
	cfg, set := wideTarget(t)
	for _, engine := range []string{vm.EngineStep, vm.EngineBlock} {
		cfg.VM.Engine = engine
		ref, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
			core.SweepOptions{Workers: 1, Snapshot: true, NoMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Render()
		if !strings.Contains(want, "crash") || !strings.Contains(want, "not-triggered") {
			t.Fatalf("target does not cover enough outcomes:\n%s", want)
		}
		for _, workers := range []int{1, 4, 8} {
			for _, flat := range []bool{false, true} {
				got, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
					core.SweepOptions{Workers: workers, Snapshot: true, FlatRestore: flat})
				if err != nil {
					t.Fatalf("engine=%v workers=%d flat=%v: %v", engine, workers, flat, err)
				}
				if r := got.Render(); r != want {
					t.Errorf("engine=%v workers=%d flat=%v memoized report differs:\n--- nomemo ---\n%s--- memo ---\n%s",
						engine, workers, flat, want, r)
				}
				if got.Memo == nil {
					t.Fatalf("engine=%v workers=%d flat=%v: no memo stats", engine, workers, flat)
				}
				if got.Memo.Restored == 0 {
					t.Errorf("engine=%v workers=%d flat=%v: memoizer never restored a prefix: %+v",
						engine, workers, flat, *got.Memo)
				}
				if got.Memo.Terminal == 0 {
					t.Errorf("engine=%v workers=%d flat=%v: write group should be served from a terminal prefix: %+v",
						engine, workers, flat, *got.Memo)
				}
			}
		}
	}
}

// TestSweepMemoStats pins the bookkeeping: 5 functions × 3 errnos give
// 5 groups of 3, one prefix run per group (no evictions under the
// default budget), 4 reached sites restoring 3 members each, and the
// never-called write group served whole from its terminated prefix.
func TestSweepMemoStats(t *testing.T) {
	cfg, set := wideTarget(t)
	res, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 4, Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Memo
	if m == nil {
		t.Fatal("no memo stats")
	}
	if m.Groups != 5 || m.MaxGroup != 3 {
		t.Errorf("groups=%d max=%d, want 5 groups of 3", m.Groups, m.MaxGroup)
	}
	if m.Prefixes != 5 {
		t.Errorf("prefix runs = %d, want 5 (one per group)", m.Prefixes)
	}
	if m.Restored != 12 {
		t.Errorf("restored = %d, want 12 (4 reached sites x 3 members)", m.Restored)
	}
	if m.Terminal != 3 {
		t.Errorf("terminal-served = %d, want 3 (write group)", m.Terminal)
	}
	if m.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 under default budget", m.Evictions)
	}
	if m.Unmemoizable != 0 || m.Fallbacks != 0 {
		t.Errorf("unmemoizable=%d fallbacks=%d, want 0", m.Unmemoizable, m.Fallbacks)
	}
	if m.PeakBytes <= 0 {
		t.Errorf("peak bytes = %d, want > 0", m.PeakBytes)
	}
}

// TestSweepMemoLaterSite exercises a non-trivial first-fire site: all
// errno variants firing on read's second call share a prefix through
// the first read. The app calls read once — so inject=2 never fires —
// and inject=1 variants fire; both groups must match the non-memoized
// report exactly.
func TestSweepMemoLaterSite(t *testing.T) {
	cfg, set := wideTarget(t)
	var exps []core.Experiment
	for _, inject := range []int32{1, 2} {
		for _, errno := range []string{"5", "4", "11"} {
			plan := &scenario.Plan{Triggers: []scenario.Trigger{{
				Function: "read", Inject: inject, Retval: "-1", Errno: errno, Once: true,
			}}}
			exps = append(exps, core.Experiment{
				Library: libc.Name, Function: "read", Retval: -1,
				Plan:     plan,
				Compiled: scenario.MustCompile(plan, set),
			})
		}
	}
	ref, err := core.RunExperiments(cfg, exps, 0,
		core.SweepOptions{Workers: 1, Snapshot: true, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render()
	for _, workers := range []int{1, 4} {
		got, err := core.RunExperiments(cfg, exps, 0,
			core.SweepOptions{Workers: workers, Snapshot: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r := got.Render(); r != want {
			t.Errorf("workers=%d report differs:\n--- nomemo ---\n%s--- memo ---\n%s", workers, want, r)
		}
		// inject=1 group restores; inject=2's site is never reached
		// (read is called once), so that group is terminal-served.
		if got.Memo.Restored == 0 || got.Memo.Terminal == 0 {
			t.Errorf("workers=%d stats: %+v", workers, *got.Memo)
		}
	}
}

// TestSweepMemoUnmemoizable: plans with probability conditions have no
// deterministic first-fire site; the sweep must fall back per
// experiment and still match the non-memoized report (seeded streams
// never transfer across a memo boundary because no memo happens).
func TestSweepMemoUnmemoizable(t *testing.T) {
	cfg, set := wideTarget(t)
	cfg.Profiles = set
	var exps []core.Experiment
	for seed := int64(1); seed <= 4; seed++ {
		plan := &scenario.Plan{Seed: seed, Triggers: []scenario.Trigger{{
			Function: "read", Probability: 60, Random: true,
		}}}
		exps = append(exps, core.Experiment{
			Library: libc.Name, Function: "read", Retval: -1,
			Plan:     plan,
			Compiled: scenario.MustCompile(plan, set),
		})
	}
	ref, err := core.RunExperiments(cfg, exps, 0,
		core.SweepOptions{Workers: 1, Snapshot: true, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render()
	got, err := core.RunExperiments(cfg, exps, 0,
		core.SweepOptions{Workers: 4, Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	if r := got.Render(); r != want {
		t.Errorf("report differs:\n--- nomemo ---\n%s--- memo ---\n%s", want, r)
	}
	if got.Memo.Unmemoizable != 4 || got.Memo.Restored != 0 {
		t.Errorf("stats: %+v, want 4 unmemoizable and 0 restored", *got.Memo)
	}
}

// TestSweepMemoEviction: a one-byte budget cannot hold any prefix
// snapshot, so every sealed entry beyond the first is evicted and
// groups whose members arrive after eviction rebuild the prefix —
// reports must stay byte-identical regardless.
func TestSweepMemoEviction(t *testing.T) {
	cfg, set := wideTarget(t)
	ref, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 1, Snapshot: true, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render()
	got, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 1, Snapshot: true, MemoBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := got.Render(); r != want {
		t.Errorf("report differs under eviction pressure:\n--- nomemo ---\n%s--- memo ---\n%s", want, r)
	}
	if got.Memo.Evictions == 0 {
		t.Errorf("stats: %+v, want evictions under a 1-byte budget", *got.Memo)
	}
}

// TestSweepMemoMaxCrashes: the early-stop threshold must truncate the
// memoized sweep at the same plan-order entry as the non-memoized one.
func TestSweepMemoMaxCrashes(t *testing.T) {
	cfg, set := wideTarget(t)
	ref, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 1, Snapshot: true, NoMemo: true, MaxCrashes: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Render()
	for _, workers := range []int{1, 4, 8} {
		got, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
			core.SweepOptions{Workers: workers, Snapshot: true, MaxCrashes: 2})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r := got.Render(); r != want {
			t.Errorf("workers=%d early-stopped memo report differs:\n--- nomemo ---\n%s--- memo ---\n%s",
				workers, want, r)
		}
	}
}

// TestSweepProgressServed is the satellite contract for SweepProgress:
// entries satisfied without executing a run — resume cache hits and
// terminal-prefix members — land in a distinct Served tally, and every
// progress update reports the running count.
func TestSweepProgressServed(t *testing.T) {
	cfg, set := wideTarget(t)
	exps := core.PlanExperiments(set)

	// Phase 1: record the full sweep.
	recorded := make(map[string]core.SweepEntry)
	full, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
		Workers: 1, Snapshot: true,
		OnResult: func(exp *core.Experiment, entry core.SweepEntry, rep *core.Report) {
			recorded[exp.Key()] = entry
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume with half the keys served from the recording. The
	// write group (3 experiments) is terminal-served by the memoizer on
	// top of the Skip hits.
	cached := make(map[string]bool)
	for i, exp := range exps {
		if i%2 == 0 {
			cached[exp.Key()] = true
		}
	}
	var (
		last     core.SweepProgress
		monotone = true
		updates  int
	)
	res, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
		Workers: 1, Snapshot: true,
		Skip: func(exp *core.Experiment) (core.SweepEntry, bool) {
			if cached[exp.Key()] {
				return recorded[exp.Key()], true
			}
			return core.SweepEntry{}, false
		},
		Progress: func(p core.SweepProgress) {
			updates++
			if p.Served < last.Served || p.Done != updates {
				monotone = false
			}
			last = p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != full.Render() {
		t.Errorf("resumed report differs from full sweep")
	}
	if !monotone {
		t.Error("Served tally not monotone or Done out of order")
	}
	if last.Done != len(exps) {
		t.Errorf("final Done = %d, want %d", last.Done, len(exps))
	}
	skipServed := len(cached)
	// Terminal-prefix serves only apply to write experiments not already
	// skipped.
	terminal := 0
	for i, exp := range exps {
		if i%2 != 0 && exp.Function == "write" {
			terminal++
		}
	}
	if want := skipServed + terminal; last.Served != want {
		t.Errorf("final Served = %d, want %d (%d skip + %d terminal)",
			last.Served, want, skipServed, terminal)
	}
	if last.Served == last.Done {
		t.Error("Served should not count executed experiments")
	}
}
