// Package core is the top-level LFI facade: the library-level fault
// injector of Marinescu & Candea (DSN'09) assembled from its parts.
//
// Using LFI is the paper's two-step workflow (§2):
//
//  1. Profile: point LFI at a target application; it finds the shared
//     libraries the application links against (like ldd), statically
//     analyses their binaries — and the kernel image beneath libc — and
//     produces per-library fault profiles (error return values plus errno
//     and output-argument side effects).
//
//  2. Inject: combine the profiles with a fault scenario (exhaustive,
//     random, ready-made libc faultloads, or a hand-written XML plan);
//     the controller synthesises an interceptor library, preloads it
//     ahead of the originals, runs the workload, logs each injection and
//     emits a replay script.
//
// A minimal campaign:
//
//	l := core.New(core.Options{})
//	l.AddLibrary(libcObj)
//	l.AddKernelImage()
//	set, _ := l.ProfileApplication(appObj)
//	plan := scenario.Random(set, 10, seed)
//	c, _ := core.NewCampaign(core.CampaignConfig{
//	    Programs: []*obj.File{libcObj, appObj},
//	    Executable: appObj.Name, Profiles: set, Plan: plan,
//	})
//	report, _ := c.Run(0)
//
// # Parallel campaigns
//
// The §2 robustness benchmark — every (function, error code) of the
// profile set injected once into a fresh run — is embarrassingly
// parallel: experiments share nothing but read-only inputs. The sweep
// engine splits it into a generator and an executor:
//
//	exps := core.PlanExperiments(set)                      // the matrix, in plan order
//	res, _ := core.SweepParallel(cfg, set, 0, workers)     // pool of private Campaigns
//	res, _ := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
//	    Workers:    8,
//	    MaxCrashes: 5,                    // triage: stop at the 5th crash
//	    Progress:   func(p core.SweepProgress) { ... },    // live tallies
//	})
//
// Each worker owns a full Campaign (its own vm.System, controller and
// evaluator); completions are re-ordered into plan order before they are
// committed, so the SweepResult — including early-stopped ones, whose
// crash threshold is counted in plan order — renders byte-identical at
// every worker count. Seeded random faultloads stay reproducible too:
// an evaluator's random stream derives from its plan's Seed, never from
// scheduling.
//
// A single Campaign is not safe for concurrent use; concurrency comes
// from running many of them. CampaignConfig inputs (Programs, Profiles,
// Files, Compiled) are shared across workers and must not be mutated
// during a sweep — the VM loader copies text and data segments per
// process, the controller treats profiles as immutable, and faultloads
// are compiled once per campaign into an immutable
// scenario.CompiledPlan (PlanExperiments pre-compiles each experiment's
// single-trigger plan so all runs and workers share it), so sharing is
// read-only.
//
// # Snapshot campaigns
//
// With SweepOptions.Snapshot, the executor switches to a fork-server
// runtime. Its lifecycle per sweep:
//
//  1. Template build (once): register programs and kernel files,
//     synthesise one interceptor stub library for the union of every
//     function any experiment intercepts, and spawn the executable
//     with it preloaded — paying text copy, relocation, instruction
//     decode and symbol-map construction exactly once.
//  2. Freeze: vm.Snapshot captures the spawned system at the post-load
//     entry point.
//  3. Restore (per run, baseline included): Snapshot.Restore mints a
//     private System in O(writable bytes) — writable data/TLS/stack/
//     heap segments, registers, kernel FS/FD state and cycle counters
//     are deep-copied; patched text, decoded instructions, symbol
//     tables and the whole Image are shared immutably. The run then
//     binds only its own faultload: a thin controller over the shared
//     stub surface and compiled plan (controller.NewWithStubs), whose
//     evaluators and log are the run's entire private state.
//
// The concurrency contract: the Snapshot, StubSet and CompiledPlans
// are immutable and shared by every worker; each restored System and
// its controller belong to exactly one run and must not outlive it
// into another. Stubs for functions the current faultload does not
// name evaluate to pass-through, so the baseline (an empty plan) and
// every experiment execute the same images — which is what makes the
// snapshot report byte-identical to the fresh-spawn report, seeded
// random faultloads and -max-crashes early stops included.
//
// SweepOptions.PruneUncalled adds baseline-informed pruning on either
// executor: the baseline runs once with instruction coverage, and
// experiments whose faultload only names functions the baseline never
// executed are committed as not-triggered without spawning a run —
// sound because the deterministic VM replays the baseline exactly
// until a fault fires.
//
// The snapshot executor also memoizes shared pre-fault prefixes
// (memo.go, on by default; SweepOptions.NoMemo opts out): experiments
// whose faultload has a deterministic first-fire site
// (scenario.FirstFireSite) are grouped by site, each group's prefix is
// executed once to just before the trigger call (vm.System.RunBreak)
// and frozen as a mid-execution snapshot plus controller checkpoint,
// and members restore from it to run only their suffix. The cache is a
// byte-budgeted LRU shared across workers; SweepResult.Memo reports
// its hit statistics. The rendered report stays byte-identical either
// way (scripts/memocheck.sh).
package core

import (
	"fmt"
	"math/bits"

	"lfi/internal/controller"
	"lfi/internal/kernel"
	"lfi/internal/obj"
	"lfi/internal/profile"
	"lfi/internal/profiler"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// Options configures profiling.
type Options struct {
	// Heuristics enables the paper's two unsound §3.1 filters
	// (drop-zero-returns, drop-predicate-functions). Off by default,
	// exactly as in the paper.
	Heuristics bool
	// MaxStates bounds the per-function product-graph search.
	MaxStates int
}

// LFI is the profiling half of the tool.
type LFI struct {
	prof *profiler.Profiler
}

// New creates an LFI instance.
func New(opts Options) *LFI {
	return &LFI{prof: profiler.New(profiler.Options{
		DropZeroReturns: opts.Heuristics,
		DropPredicates:  opts.Heuristics,
		MaxStates:       opts.MaxStates,
	})}
}

// AddLibrary registers a library (or application) binary for analysis.
func (l *LFI) AddLibrary(f *obj.File) error { return l.prof.AddLibrary(f) }

// AddKernelImage compiles and registers the synthetic kernel image so
// that libc-style syscall wrappers resolve their kernel dependencies
// (§3.1).
func (l *LFI) AddKernelImage() error {
	img, err := kernel.Image()
	if err != nil {
		return err
	}
	return l.prof.AddLibrary(img)
}

// ProfileLibrary profiles one library by name.
func (l *LFI) ProfileLibrary(name string) (*profile.Profile, error) {
	return l.prof.ProfileLibrary(name)
}

// ProfileApplication walks the application's needed libraries (the ldd
// step) and profiles each of them.
func (l *LFI) ProfileApplication(appName string) (profile.Set, error) {
	return l.prof.ProfileApplication(appName)
}

// Stats exposes profiling statistics (functions analysed, product-graph
// states expanded) for the §6.2 efficiency measurements.
func (l *LFI) Stats() profiler.Stats { return l.prof.Stats() }

// Diagnostics reports per-function analysis-budget exhaustion — one
// line per exported function whose return-origin search was truncated
// at MaxStates or whose dependent calls were cut at the recursion
// depth bound. Empty when every profile is budget-complete.
func (l *LFI) Diagnostics() []string { return l.prof.Diagnostics() }

// CampaignConfig describes one fault-injection experiment.
type CampaignConfig struct {
	// Programs are the executable and all libraries it needs.
	Programs []*obj.File
	// Executable is the program to run under injection.
	Executable string
	// Profiles drive random scenarios and side-effect application.
	Profiles profile.Set
	// Plan is the fault scenario; nil runs without injection. It is
	// compiled once per campaign (NewCampaign reports compile errors).
	Plan *scenario.Plan
	// Compiled, when set, is the pre-compiled faultload and takes
	// precedence over Plan. CompiledPlans are immutable, so campaign
	// schedulers compile once and share one across all workers.
	Compiled *scenario.CompiledPlan
	// Files are installed into the kernel file system before the run.
	Files map[string][]byte
	// VM tunes the virtual machine (coverage, heap limit, ...).
	VM vm.Options
	// PassThrough forces trigger evaluation without fault activation
	// (the Tables 3/4 overhead methodology).
	PassThrough bool
	// Avail, when set, opts the campaign into availability collection:
	// the Executable is treated as a traffic driver and every report
	// carries its phase counters (Report.Avail). Nil leaves reports
	// exactly as before.
	Avail *AvailSpec
}

// Campaign is a configured injection experiment.
type Campaign struct {
	cfg  CampaignConfig
	sys  *vm.System
	ctl  *controller.Controller
	proc *vm.Proc
}

// Report summarises a campaign run (§5.2's log plus replay script).
type Report struct {
	Status     vm.ExitStatus
	Injections []controller.InjectionRecord
	ReplayPlan *scenario.Plan
	Cycles     uint64
	// Deadlocked is set when the run wedged rather than exiting — a true
	// scheduler deadlock or an exhausted cycle budget (back-compat: both
	// keep setting this flag).
	Deadlocked bool
	// BudgetExhausted distinguishes the two Deadlocked causes: true when
	// the run hit its cycle budget (possible livelock — the availability
	// classifier's wedge signal), false when the scheduler proved a true
	// deadlock (every process blocked).
	BudgetExhausted bool
	// Avail carries the run's service-level phase counters when the
	// campaign ran with CampaignConfig.Avail set; nil otherwise.
	Avail *AvailCounters
	// Degradation is the kernel's resource-degradation state at end of
	// run: which exhaustion faults were armed and whether they actually
	// failed an operation (tripped). Zero when the faultload armed none.
	Degradation kernel.DegradationState
	// CrashStack is the dying process's shadow call stack, innermost
	// frame first (symbol names, hex addresses for stripped locals),
	// captured when the run terminated on a signal. It is the identity
	// crash triage clusters on (controller.StackHash); nil for clean
	// exits and hangs.
	CrashStack []string
	// Coverage counts the distinct instructions executed across every
	// image of every process when the campaign's VM ran with coverage
	// enabled; 0 otherwise. Campaign stores persist it as the per-run
	// coverage summary.
	Coverage int
}

// NewCampaign builds the system: registers programs, installs kernel
// files, synthesises and installs the interceptor library, and spawns the
// executable with the interceptor preloaded.
func NewCampaign(cfg CampaignConfig) (*Campaign, error) {
	c := &Campaign{cfg: cfg, sys: vm.NewSystem(cfg.VM)}
	for _, f := range cfg.Programs {
		c.sys.Register(f)
	}
	for path, data := range cfg.Files {
		c.sys.Kernel().AddFile(path, data)
	}
	spawnCfg := vm.SpawnConfig{}
	switch {
	case cfg.Compiled != nil:
		c.ctl = controller.NewCompiled(cfg.Compiled)
	case cfg.Plan != nil:
		c.ctl = controller.New(cfg.Profiles, cfg.Plan)
	}
	if c.ctl != nil {
		c.ctl.PassThrough = cfg.PassThrough
		if err := c.ctl.Install(c.sys); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		spawnCfg.Preload = c.ctl.PreloadList()
	}
	p, err := c.sys.Spawn(cfg.Executable, spawnCfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c.proc = p
	return c, nil
}

// System exposes the VM for workload drivers.
func (c *Campaign) System() *vm.System { return c.sys }

// Process returns the process under test.
func (c *Campaign) Process() *vm.Proc { return c.proc }

// Controller returns the injection controller (nil without a plan).
func (c *Campaign) Controller() *controller.Controller { return c.ctl }

// Run executes to completion (budget 0 = unlimited) and reports.
func (c *Campaign) Run(budget uint64) (*Report, error) {
	err := c.sys.Run(budget) // sequenced: status/cycles are read post-run
	rep, rerr := assembleReport(err, c.sys, c.ctl, c.cfg.Avail)
	if c.cfg.VM.Coverage {
		rep.Coverage = coveredInsts(c.sys)
	}
	return rep, rerr
}

// assembleReport turns a finished run (fresh-spawn or snapshot-restore)
// into a Report: it splits budget exhaustion from true deadlock (both
// keep Deadlocked set for back-compat), captures the crash backtrace on
// signal deaths, and — under an availability spec — collects the
// traffic client's phase counters. The run's own process is the first
// spawned one; when it survived but a server process it spawned died,
// the server's backtrace becomes the report's crash stack so triage
// clusters server deaths by where the server died.
func assembleReport(err error, sys *vm.System, ctl *controller.Controller, avail *AvailSpec) (*Report, error) {
	proc := sys.Procs()[0]
	rep := &Report{Status: proc.Status, Cycles: sys.TotalCycles}
	rep.Degradation = sys.Kernel().Degradation()
	if proc.Status.Signal != 0 {
		rep.CrashStack = crashStack(proc)
	}
	if ctl != nil {
		rep.Injections = ctl.Log()
		rep.ReplayPlan = ctl.ReplayPlan()
	}
	if avail != nil {
		rep.Avail = collectAvail(sys, avail)
		if rep.CrashStack == nil && rep.Avail.ServerSignal != 0 {
			for _, p := range sys.Procs()[1:] {
				if p.Status.Signal != 0 {
					rep.CrashStack = crashStack(p)
					break
				}
			}
		}
	}
	switch err {
	case nil:
	case vm.ErrDeadlock:
		rep.Deadlocked = true
	case vm.ErrBudget:
		rep.Deadlocked = true
		rep.BudgetExhausted = true
	default:
		return rep, err
	}
	return rep, nil
}

// crashStack renders the process shadow stack at death as triage
// frames, innermost first — the controller's frame renderer and
// orientation, so crash stacks and injection-record stacks hash into
// the same StackHash space.
func crashStack(proc *vm.Proc) []string {
	out := make([]string, 0, len(proc.CallStack))
	for i := len(proc.CallStack) - 1; i >= 0; i-- {
		f := proc.CallStack[i]
		out = append(out, controller.FrameLabel(f.Symbol, f.FuncVA))
	}
	return out
}

// coveredInsts counts executed instructions across every image of every
// process — the coverage summary persisted per experiment when the
// campaign runs with vm.Options.Coverage.
func coveredInsts(sys *vm.System) int {
	n := 0
	for _, p := range sys.Procs() {
		for _, im := range p.Images {
			for _, w := range im.CoverBits {
				n += bits.OnesCount64(w)
			}
		}
	}
	return n
}
