package core

import (
	"fmt"
	"sort"

	"lfi/internal/kernel"
	"lfi/internal/profile"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// Availability classification: the service-level outcome taxonomy for
// traffic-driven server campaigns.
//
// The five process-shaped Outcomes (crash/hang/error-exit/handled/
// not-triggered) describe what happened to the process; for server
// guests the question that matters is what happened to the *service* —
// did it keep answering requests, degrade, recover, or wedge after the
// fault cleared? A traffic-driven campaign spawns a synthetic client
// (internal/apps.AvailClientSource) that pumps a three-phase request
// stream — warmup, steady state (the fault fires mid-stream via a
// <calls after=N> window), post-fault probe — entirely on the VM's
// deterministic cycle clock, and tallies per-phase successes and
// failures into guest globals. With CampaignConfig.Avail set, every
// run's report collects those counters (Report.Avail) and the sweep
// classifier folds them, together with the clean baseline's, into an
// AvailClass per experiment.

// AvailClass is the availability outcome of one traffic-driven run.
type AvailClass string

// Availability classes, ordered from best to worst. Classification
// precedence is the reverse: crashed, wedged, lost, degraded, recovered.
const (
	// AvailRecovered: every post-fault probe request succeeded and
	// total run latency (in virtual cycles) stayed within the baseline
	// envelope — the service absorbed the fault.
	AvailRecovered AvailClass = "recovered"
	// AvailDegraded: the service kept answering but below baseline —
	// post-fault requests still failing at the end of the probe window,
	// or run latency elevated beyond the LatencyPct envelope.
	AvailDegraded AvailClass = "degraded"
	// AvailLost: requests were dropped after the fault but the tail of
	// the probe window was clean — an outage, then full restoration.
	AvailLost AvailClass = "lost"
	// AvailWedged: the client never completed its phases (the run hung
	// or ran out of budget mid-traffic) or not a single post-fault
	// request succeeded — the server stopped answering without dying.
	AvailWedged AvailClass = "wedged"
	// AvailCrashed: the server (or the client) died on a signal.
	AvailCrashed AvailClass = "crashed"
)

// DefaultAvailLatencyPct is the latency envelope when AvailSpec leaves
// LatencyPct zero: a completed run whose total virtual cycles exceed
// the baseline's by more than 25% classifies as degraded even when
// every request succeeded. The margin is far above the executor noise
// floor (the snapshot executor's shared stub surface adds well under
// 1% cycles), so classes agree across engines and restore modes.
const DefaultAvailLatencyPct = 25

// AvailDelaySlowCycles is the moderate injected latency of the
// availability fault matrix: large against a clean traffic run (a few
// million cycles) so the latency envelope trips, small against the
// default budget so the run still completes — the degraded-by-latency
// row. AvailDelayWedgeCycles stalls past the whole default budget: the
// delayed call never returns and the run wedges mid-traffic.
const (
	AvailDelaySlowCycles  = 30_000_000
	AvailDelayWedgeCycles = DefaultSweepBudget
)

// AvailSpec opts a campaign into availability collection: the traffic
// client's program name (whose av_* globals carry the phase counters)
// and the latency envelope. CampaignConfig.Avail carries it; nil keeps
// reports and sweeps exactly as before.
type AvailSpec struct {
	// Client is the traffic driver's program name — the spawned
	// executable whose image exports the av_* counter globals
	// (apps.AvailClientName gives the conventional name).
	Client string
	// LatencyPct widens or tightens the degraded-latency envelope;
	// 0 means DefaultAvailLatencyPct.
	LatencyPct int
}

func (s *AvailSpec) latencyPct() int {
	if s.LatencyPct > 0 {
		return s.LatencyPct
	}
	return DefaultAvailLatencyPct
}

// AvailCounters are one run's service-level tallies, read from the
// traffic client's guest globals after the run ends. Each phase splits
// its requests three ways: OK (served), Err (the server answered with
// an error status — up but failing), Fail (never answered: connect
// exhaustion, send failure, EOF before a reply). TailFail counts
// non-served requests in the final AvailTail probes — the restoration
// check that separates a transient outage from lasting damage.
type AvailCounters struct {
	WarmOK, WarmFail, WarmErr       int32
	SteadyOK, SteadyFail, SteadyErr int32
	PostOK, PostFail, PostErr       int32
	TailFail                        int32
	// Done is the client's end-of-phases marker: false means the run
	// terminated (budget, deadlock, crash) before the probe finished.
	Done bool
	// ServerSignal is the first non-zero death signal among the
	// non-client processes (server master or worker); 0 when all of
	// them exited cleanly or were still alive at end of run.
	ServerSignal int32
}

// availSymbols maps AvailCounters fields to the client globals the
// generated traffic driver exports.
var availSymbols = []string{
	"av_warm_ok", "av_warm_fail", "av_warm_err",
	"av_steady_ok", "av_steady_fail", "av_steady_err",
	"av_post_ok", "av_post_fail", "av_post_err",
	"av_tail_fail", "av_done",
}

// collectAvail reads the availability counters out of a finished run:
// the phase tallies from the client's globals (the client is the
// spawned executable, process 0; exited processes keep their memory)
// and the server's death signal from every other process.
func collectAvail(sys *vm.System, spec *AvailSpec) *AvailCounters {
	c := &AvailCounters{}
	procs := sys.Procs()
	if len(procs) == 0 {
		return c
	}
	client := procs[0]
	if im, ok := client.ImageByName(spec.Client); ok {
		vals := make([]int32, len(availSymbols))
		for i, sym := range availSymbols {
			if va, ok := im.SymbolVA(sym); ok {
				if v, err := client.ReadWord(va); err == nil {
					vals[i] = v
				}
			}
		}
		c.WarmOK, c.WarmFail, c.WarmErr = vals[0], vals[1], vals[2]
		c.SteadyOK, c.SteadyFail, c.SteadyErr = vals[3], vals[4], vals[5]
		c.PostOK, c.PostFail, c.PostErr = vals[6], vals[7], vals[8]
		c.TailFail = vals[9]
		c.Done = vals[10] == 1
	}
	for _, p := range procs[1:] {
		if p.Status.Signal != 0 {
			c.ServerSignal = p.Status.Signal
			break
		}
	}
	return c
}

// ClassifyAvail folds one run's availability counters, against the
// clean baseline's report, into the five-class taxonomy. Precedence is
// worst-first: a crashed server is crashed even if traffic limped on;
// an incomplete client is wedged regardless of its partial tallies.
// The latency check compares whole-run virtual cycles against the
// baseline within the latencyPct envelope — wall time never enters.
func ClassifyAvail(rep, base *Report, latencyPct int) AvailClass {
	c := rep.Avail
	if c == nil {
		return AvailWedged
	}
	switch {
	case c.ServerSignal != 0 || rep.Status.Signal != 0:
		return AvailCrashed
	case !c.Done || c.PostOK+c.PostErr == 0:
		// The client never finished, or not one probe got any answer —
		// the server stopped answering without dying.
		return AvailWedged
	case c.PostFail+c.PostErr > 0 && c.TailFail == 0:
		// Requests were dropped or errored after the fault, but the tail
		// of the probe window is clean: an outage, then restoration.
		return AvailLost
	case c.PostFail+c.PostErr > 0:
		return AvailDegraded
	case rep.Cycles*100 > base.Cycles*uint64(100+latencyPct):
		return AvailDegraded
	default:
		return AvailRecovered
	}
}

// AvailabilityExperiments expands a profile set into the availability
// fault matrix: for every profiled function, one experiment per error
// code plus the four degradation models (moderate delay, budget-length
// delay, disk-full, fd-saturation), each firing once mid-steady-state
// via a <calls after=N> window — the paper-style comparison of
// one-shot errors against persistent resource faults on a serving
// guest. after is the fire window (calls to skip before the fault
// becomes eligible; apps.AvailAfter places it mid-steady-state for the
// generated traffic clients). The order is deterministic and the
// triggers are call-keyed, so availability sweeps shard, resume and
// memoize like every other matrix.
func AvailabilityExperiments(set profile.Set, after int32) []Experiment {
	var out []Experiment
	libs := make([]string, 0, len(set))
	for lib := range set {
		libs = append(libs, lib)
	}
	sort.Strings(libs)
	window := func() []scenario.Cond { return []scenario.Cond{scenario.Calls(after, 0, 0)} }
	for _, lib := range libs {
		for _, fn := range set[lib].Functions {
			for _, ec := range fn.ErrorCodes {
				exp := Experiment{Library: lib, Function: fn.Name, Retval: ec.Retval}
				// Inject stays 0: the <calls> window alone decides the
				// fire site (Inject=1 would demand the first call AND a
				// call past the window — unsatisfiable together).
				trigger := scenario.Trigger{
					Function: fn.Name,
					Retval:   fmt.Sprint(ec.Retval),
					Once:     true,
					Conds:    window(),
				}
				if errno, ok := errnoSideEffect(ec); ok {
					exp.HasErrno = true
					exp.Errno = errno
					trigger.Errno = errnoLabel(errno)
				}
				exp.Plan = &scenario.Plan{Triggers: []scenario.Trigger{trigger}}
				if cp, err := scenario.Compile(exp.Plan, set); err == nil {
					exp.Compiled = cp
				}
				out = append(out, exp)
			}
			models := []struct {
				label   string
				trigger scenario.Trigger
			}{
				{
					label: fmt.Sprintf("delay=%d", AvailDelaySlowCycles),
					trigger: scenario.Trigger{
						Function: fn.Name, Once: true, Conds: window(),
						Delay: &scenario.Delay{Cycles: AvailDelaySlowCycles},
					},
				},
				{
					label: fmt.Sprintf("delay=%d", AvailDelayWedgeCycles),
					trigger: scenario.Trigger{
						Function: fn.Name, Once: true, Conds: window(),
						Delay: &scenario.Delay{Cycles: AvailDelayWedgeCycles},
					},
				},
				{
					label: "exhaust=disk:after=0",
					trigger: scenario.Trigger{
						Function: fn.Name, Once: true, Conds: window(),
						Exhaust: &scenario.Exhaust{Resource: scenario.ResourceDisk, After: 0},
					},
				},
				{
					label: "exhaust=fds:slots=0",
					trigger: scenario.Trigger{
						Function: fn.Name, Once: true, Conds: window(),
						Exhaust: &scenario.Exhaust{Resource: scenario.ResourceFDs, Slots: 0},
					},
				},
			}
			for _, m := range models {
				exp := Experiment{Library: lib, Function: fn.Name, Fault: m.label}
				exp.Plan = &scenario.Plan{Triggers: []scenario.Trigger{m.trigger}}
				if cp, err := scenario.Compile(exp.Plan, set); err == nil {
					exp.Compiled = cp
				}
				out = append(out, exp)
			}
		}
	}
	return out
}

// errnoSideEffect extracts the TLS-errno side effect of one profiled
// error code, shared by the first-call and windowed generators.
func errnoSideEffect(ec profile.ErrorCode) (int32, bool) {
	for _, se := range ec.SideEffects {
		if se.Type == profile.SideEffectTLS {
			return se.Applied(), true
		}
	}
	return 0, false
}

// errnoLabel renders an errno for a trigger attribute: symbolic name
// when the kernel knows it, decimal otherwise.
func errnoLabel(errno int32) string {
	if name := kernel.ErrnoName(errno); name != "" {
		return name
	}
	return fmt.Sprint(errno)
}
