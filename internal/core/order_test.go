package core_test

import (
	"testing"

	"lfi/internal/core"
)

// orderClasses is a handcrafted audit result for mixedTarget: malloc's
// call site ignores the return (the planted bug), close's return is
// dropped, the rest are checked; write has no call site (unknown).
var orderClasses = map[string]string{
	"malloc": "unchecked-clobbered",
	"close":  "unchecked-propagated",
	"open":   "checked",
	"read":   "checked",
}

func TestStaticOrderRanks(t *testing.T) {
	cfg, set := mixedTarget(t)
	_ = cfg
	exps := core.PlanExperiments(set)
	order := core.StaticOrder(exps, orderClasses)
	if len(order) != len(exps) {
		t.Fatalf("order has %d entries for %d experiments", len(order), len(exps))
	}
	// Expected rank sequence: malloc (clobbered), close (propagated),
	// write (unknown), then the checked open/read — ties in plan order.
	var fns []string
	for _, i := range order {
		fns = append(fns, exps[i].Function)
	}
	if fns[0] != "malloc" || fns[1] != "close" || fns[2] != "write" {
		t.Errorf("static order = %v, want malloc, close, write first", fns)
	}
	last := -1
	for _, i := range order {
		r := auditRankFor(exps[i].Function)
		if r < last {
			t.Fatalf("static order not monotone in rank: %v", fns)
		}
		last = r
	}
}

func auditRankFor(fn string) int {
	switch orderClasses[fn] {
	case "unchecked-clobbered":
		return 0
	case "unchecked-propagated":
		return 1
	case "stored":
		return 2
	case "checked":
		return 4
	}
	return 3
}

// TestExecOrderReportByteIdentical is the scheduler's determinism bar:
// a statically reordered full sweep must render the exact same report
// as the default plan order, at any worker count.
func TestExecOrderReportByteIdentical(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	want, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	order := core.StaticOrder(exps, orderClasses)
	for _, workers := range []int{1, 4, 8} {
		res, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
			Workers: workers, ExecOrder: order,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Render() != want.Render() {
			t.Errorf("workers=%d: reordered report differs from plan order:\n--- default ---\n%s--- static ---\n%s",
				workers, want.Render(), res.Render())
		}
	}
}

// TestExecOrderEarlyStop: with the audit fronting the crashing malloc
// experiment, -max-crashes=1 stops after a single run; the default plan
// order needs to wade through the alphabetically earlier experiments
// first.
func TestExecOrderEarlyStop(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	order := core.StaticOrder(exps, orderClasses)
	res, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
		Workers: 1, MaxCrashes: 1, ExecOrder: order,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("static-order early stop committed %d entries, want 1:\n%s",
			len(res.Entries), res.Render())
	}
	if e := res.Entries[0]; e.Function != "malloc" || e.Outcome != core.OutcomeCrash {
		t.Errorf("first committed entry = %+v, want the malloc crash", e)
	}
	def, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
		Workers: 1, MaxCrashes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Entries) <= len(res.Entries) {
		t.Errorf("default order found the crash in %d entries, static in %d — static should be strictly earlier here",
			len(def.Entries), len(res.Entries))
	}
}

func TestExecOrderRejectsNonPermutation(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	for _, bad := range [][]int{
		{0},                      // wrong length
		make([]int, len(exps)),   // all zeros: duplicate indices
		badIndexOrder(len(exps)), // out of range
	} {
		_, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
			Workers: 1, ExecOrder: bad,
		})
		if err == nil {
			t.Errorf("ExecOrder %v accepted, want rejection", bad)
		}
	}
}

func badIndexOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	out[n-1] = n
	return out
}

// TestAnnotateAudit stamps experiments and leaves identity untouched.
func TestAnnotateAudit(t *testing.T) {
	_, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	before := make([]string, len(exps))
	for i := range exps {
		before[i] = exps[i].Key()
	}
	core.AnnotateAudit(exps, orderClasses)
	for i := range exps {
		if exps[i].Audit != orderClasses[exps[i].Function] {
			t.Errorf("%s annotated %q, want %q",
				exps[i].Function, exps[i].Audit, orderClasses[exps[i].Function])
		}
		if exps[i].Key() != before[i] {
			t.Errorf("annotation changed experiment key %q -> %q", before[i], exps[i].Key())
		}
	}
}
