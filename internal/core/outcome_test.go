package core_test

import (
	"testing"

	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
	"lfi/internal/vm"
)

// TestClassifyOutcomes drives the classifier through all five §2 outcomes
// with synthetic reports, including both hang flavours (deadlock and
// exhausted cycle budget both surface as Report.Deadlocked).
func TestClassifyOutcomes(t *testing.T) {
	inj := []controller.InjectionRecord{{Function: "open", CallCount: 1}}
	cases := []struct {
		name     string
		rep      core.Report
		baseline int32
		want     core.Outcome
	}{
		{
			name: "not-triggered: no injections, whatever the exit",
			rep:  core.Report{Status: vm.ExitStatus{Code: 0}},
			want: core.OutcomeNotTriggered,
		},
		{
			name: "not-triggered wins even over a signal death",
			rep:  core.Report{Status: vm.ExitStatus{Signal: vm.SigSEGV}},
			want: core.OutcomeNotTriggered,
		},
		{
			name: "crash: injected and died on SIGSEGV",
			rep:  core.Report{Injections: inj, Status: vm.ExitStatus{Signal: vm.SigSEGV}},
			want: core.OutcomeCrash,
		},
		{
			name: "crash: injected and died on SIGABRT",
			rep:  core.Report{Injections: inj, Status: vm.ExitStatus{Signal: vm.SigABRT}},
			want: core.OutcomeCrash,
		},
		{
			name: "crash wins over deadlock when both are set",
			rep: core.Report{Injections: inj, Deadlocked: true,
				Status: vm.ExitStatus{Signal: vm.SigSEGV}},
			want: core.OutcomeCrash,
		},
		{
			name: "hang: injected and wedged (deadlock or cycle budget)",
			rep:  core.Report{Injections: inj, Deadlocked: true},
			want: core.OutcomeHang,
		},
		{
			name:     "handled: injected, exited with the baseline code",
			rep:      core.Report{Injections: inj, Status: vm.ExitStatus{Code: 4}},
			baseline: 4,
			want:     core.OutcomeHandled,
		},
		{
			name:     "error-exit: injected, exited with a different code",
			rep:      core.Report{Injections: inj, Status: vm.ExitStatus{Code: 3}},
			baseline: 0,
			want:     core.OutcomeErrorExit,
		},
		{
			name:     "error-exit: nonzero baseline, zero exit",
			rep:      core.Report{Injections: inj, Status: vm.ExitStatus{Code: 0}},
			baseline: 5,
			want:     core.OutcomeErrorExit,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := tc.rep
			if got := core.Classify(&rep, tc.baseline); got != tc.want {
				t.Errorf("Classify(%+v, %d) = %s, want %s", tc.rep, tc.baseline, got, tc.want)
			}
		})
	}
}

// TestSweepBudgetHang exercises the cycle-budget hang path end to end: an
// injected read failure traps the program in a busy-wait retry loop, the
// per-run budget expires, and the sweep reports a hang.
func TestSweepBudgetHang(t *testing.T) {
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int read(int fd, byte *buf, int n);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  byte buf[8];
  fd = open("/data", 0, 0);
  n = read(fd, buf, 7);
  while (n < 0) { n = n - 1; }     // BUG: busy-wait that never recovers
  return 0;
}`, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "read", ErrorCodes: []profile.ErrorCode{{
				Retval: -1,
				SideEffects: []profile.SideEffect{{
					Type: profile.SideEffectTLS, Module: libc.Name, Value: 5,
				}},
			}}},
		},
	}}
	cfg := core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
		Files:      map[string][]byte{"/data": []byte("d")},
	}
	// A small budget keeps the test fast; the baseline completes within
	// it, the injected run spins until it expires.
	res, err := core.SweepParallel(cfg, set, 2_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Outcome != core.OutcomeHang {
		t.Fatalf("entries = %+v, want one hang", res.Entries)
	}
	seq, err := core.Sweep(cfg, set, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != res.Render() {
		t.Errorf("hang report differs between sequential and parallel:\n%s\nvs\n%s",
			seq.Render(), res.Render())
	}
}
