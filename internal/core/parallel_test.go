package core_test

import (
	"fmt"
	"strings"
	"testing"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

// mixedApp exercises every interesting reaction: error-exit on open
// failure, handled read/close failures, a crash on unchecked malloc, and
// write is never called (not-triggered).
const mixedApp = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern int write(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  byte buf[32];
  byte *p;
  fd = open("/data", 0, 0);
  if (fd < 0) { return 2; }        // detect: graceful error exit
  n = read(fd, buf, 31);
  if (n < 0) { n = 0; }            // tolerate: empty input
  close(fd);                       // tolerate: ignore close failure
  p = malloc(8);
  p[0] = 'x';                      // BUG: unchecked allocation
  return 0;
}
`

// mixedTarget builds the shared campaign config and a profile whose
// experiment matrix covers several outcomes and multiple error codes per
// function.
func mixedTarget(t testing.TB) (core.CampaignConfig, profile.Set) {
	t.Helper()
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", mixedApp, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	tls := func(errno int32) []profile.SideEffect {
		return []profile.SideEffect{{Type: profile.SideEffectTLS, Module: libc.Name, Value: errno}}
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: []profile.ErrorCode{{Retval: -1, SideEffects: tls(13)}}},
			{Name: "read", ErrorCodes: []profile.ErrorCode{
				{Retval: -1, SideEffects: tls(5)},
				{Retval: -1, SideEffects: tls(4)},
			}},
			{Name: "close", ErrorCodes: []profile.ErrorCode{{Retval: -1, SideEffects: tls(9)}}},
			{Name: "malloc", ErrorCodes: []profile.ErrorCode{{Retval: 0, SideEffects: tls(12)}}},
			{Name: "write", ErrorCodes: []profile.ErrorCode{{Retval: -1, SideEffects: tls(32)}}},
		},
	}}
	cfg := core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
		Files:      map[string][]byte{"/data": []byte("payload")},
	}
	return cfg, set
}

// TestSweepParallelDeterminism is the engine's core guarantee: any worker
// count renders the exact same report as the sequential sweep.
func TestSweepParallelDeterminism(t *testing.T) {
	cfg, set := mixedTarget(t)
	seq, err := core.Sweep(cfg, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Render()
	if !strings.Contains(want, "crash") || !strings.Contains(want, "error-exit") ||
		!strings.Contains(want, "handled") || !strings.Contains(want, "not-triggered") {
		t.Fatalf("target does not cover enough outcomes:\n%s", want)
	}
	for _, workers := range []int{1, 4, 8} {
		par, err := core.SweepParallel(cfg, set, 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := par.Render(); got != want {
			t.Errorf("workers=%d report differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestSweepParallelDeterminismSeededRandom covers seeded random plans:
// random triggers draw their error code from the profile via a stream
// seeded by Plan.Seed, so even randomised experiments must reproduce
// identically at every worker count.
func TestSweepParallelDeterminismSeededRandom(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	for seed := int64(1); seed <= 5; seed++ {
		exps = append(exps, core.Experiment{
			Library:  libc.Name,
			Function: "read",
			Retval:   -1,
			Plan: &scenario.Plan{Seed: seed, Triggers: []scenario.Trigger{{
				Function: "read", Probability: 60, Random: true,
			}}},
		})
	}
	seq, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Render()
	for _, workers := range []int{4, 8} {
		par, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := par.Render(); got != want {
			t.Errorf("workers=%d seeded-random report differs:\n--- sequential ---\n%s--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestSweepParallelEarlyStop checks -max-crashes semantics: the sweep
// stops at the N-th crash in plan order, and because crashes are counted
// on the re-ordered stream the truncated report is identical at every
// worker count.
func TestSweepParallelEarlyStop(t *testing.T) {
	cfg, set := mixedTarget(t)
	full, err := core.Sweep(cfg, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want *core.SweepResult
	for _, workers := range []int{1, 4, 8} {
		res, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
			core.SweepOptions{Workers: workers, MaxCrashes: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n := res.Summary()[core.OutcomeCrash]; n != 1 {
			t.Fatalf("workers=%d: crashes = %d, want exactly 1", workers, n)
		}
		if len(res.Entries) >= len(full.Entries) {
			t.Fatalf("workers=%d: early stop did not truncate (%d entries)", workers, len(res.Entries))
		}
		if last := res.Entries[len(res.Entries)-1]; last.Outcome != core.OutcomeCrash {
			t.Fatalf("workers=%d: report must end at the stopping crash, got %s", workers, last.Outcome)
		}
		if want == nil {
			want = res
		} else if res.Render() != want.Render() {
			t.Errorf("workers=%d: early-stopped report differs:\n%s\nvs\n%s",
				workers, want.Render(), res.Render())
		}
		// The engine must not return while workers are still reading the
		// shared config: mutating it here races any straggler (caught by
		// the -race CI run).
		cfg.Files[fmt.Sprintf("/scratch-%d", workers)] = []byte("x")
	}
}

// TestSweepParallelProgress checks live reporting: updates arrive in plan
// order with a monotonically complete Done counter and a tally that ends
// equal to the report summary.
func TestSweepParallelProgress(t *testing.T) {
	cfg, set := mixedTarget(t)
	var updates []core.SweepProgress
	opts := core.SweepOptions{Workers: 4, Progress: func(p core.SweepProgress) {
		updates = append(updates, p)
	}}
	res, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != len(res.Entries) {
		t.Fatalf("got %d updates for %d entries", len(updates), len(res.Entries))
	}
	for i, p := range updates {
		if p.Done != i+1 || p.Total != len(res.Entries) {
			t.Errorf("update %d: done/total = %d/%d", i, p.Done, p.Total)
		}
		if p.Entry != res.Entries[i] {
			t.Errorf("update %d out of plan order: %+v != %+v", i, p.Entry, res.Entries[i])
		}
	}
	final := updates[len(updates)-1].Tally
	sum := res.Summary()
	if len(final) != len(sum) {
		t.Fatalf("final tally %v != summary %v", final, sum)
	}
	for k, v := range sum {
		if final[k] != v {
			t.Errorf("tally[%s] = %d, want %d", k, final[k], v)
		}
	}
	if s := updates[0].String(); !strings.Contains(s, fmt.Sprintf("/%d]", len(res.Entries))) {
		t.Errorf("progress line malformed: %q", s)
	}
}

// TestSweepEarlyStopBeatsLaterError: when the crash threshold is reached
// at a plan index before a broken experiment, every worker count must
// return the truncated report successfully — a plan-order-later error
// completing first on another worker must not preempt the early stop.
func TestSweepEarlyStopBeatsLaterError(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	crashAt := -1
	for i, e := range exps {
		if e.Function == "malloc" {
			crashAt = i
			break
		}
	}
	if crashAt < 0 {
		t.Fatal("no malloc experiment in the plan")
	}
	exps = append(exps, core.Experiment{
		Library: libc.Name, Function: "open", Retval: -1,
		Plan: &scenario.Plan{}, // rejected by the controller
	})
	for _, workers := range []int{1, 4, 8} {
		res, err := core.RunExperiments(cfg, exps, 0,
			core.SweepOptions{Workers: workers, MaxCrashes: 1})
		if err != nil {
			t.Fatalf("workers=%d: early stop should win over the later error, got %v", workers, err)
		}
		if len(res.Entries) != crashAt+1 {
			t.Errorf("workers=%d: entries = %d, want %d", workers, len(res.Entries), crashAt+1)
		}
	}
}

// TestSweepParallelPropagatesError: a failing experiment (here: a plan
// with no triggers, which the controller rejects) must abort the whole
// sweep with that error at any worker count.
func TestSweepParallelPropagatesError(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	exps = append(exps[:2:2], core.Experiment{
		Library: libc.Name, Function: "open", Retval: -1,
		Plan: &scenario.Plan{},
	})
	for _, workers := range []int{1, 4} {
		if _, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: workers}); err == nil {
			t.Errorf("workers=%d: expected error from empty plan", workers)
		}
	}
}
