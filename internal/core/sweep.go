package core

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/kernel"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

// DefaultSweepBudget is the per-run cycle budget used when a sweep is
// started with budget 0. A run that exhausts it is classified as a hang.
const DefaultSweepBudget = 200_000_000

// Outcome classifies one fault-injection run — the rows of the §2 test
// report ("the results in the report can pinpoint bugs or weak spots in
// the target software").
type Outcome string

// Outcomes.
const (
	// OutcomeHandled: the program terminated exactly as it does without
	// injection — it tolerated the fault.
	OutcomeHandled Outcome = "handled"
	// OutcomeErrorExit: the program terminated normally but with a
	// different exit code — it detected the fault and degraded.
	OutcomeErrorExit Outcome = "error-exit"
	// OutcomeCrash: the program died on a signal (SIGSEGV, SIGABRT...).
	OutcomeCrash Outcome = "crash"
	// OutcomeHang: the program deadlocked or exhausted its cycle budget.
	OutcomeHang Outcome = "hang"
	// OutcomeNotTriggered: the workload never called the function, so
	// the fault was not exercised.
	OutcomeNotTriggered Outcome = "not-triggered"
)

// Classify maps one campaign report onto the five §2 outcomes, relative
// to the clean-run baseline exit code.
func Classify(rep *Report, baseline int32) Outcome {
	switch {
	case len(rep.Injections) == 0:
		return OutcomeNotTriggered
	case rep.Status.Signal != 0:
		return OutcomeCrash
	case rep.Deadlocked:
		return OutcomeHang
	case rep.Status.Code == baseline:
		return OutcomeHandled
	default:
		return OutcomeErrorExit
	}
}

// SweepEntry is one (function, fault) experiment: an error-return store
// (Retval/Errno) or, when Fault is set, a stateful degradation.
type SweepEntry struct {
	Library  string
	Function string
	Retval   int32
	Errno    int32
	HasErrno bool
	// Fault, when non-empty, labels a degradation fault model
	// ("delay=N", "exhaust=disk:after=K", "exhaust=fds:slots=K") in
	// place of the retval/errno coordinates. Empty for error-return
	// experiments, so their report rows render exactly as before.
	Fault    string
	Outcome  Outcome
	ExitCode int32
	Signal   int32
	// Avail is the availability class of a traffic-driven run, with the
	// requests served before/during/after the fault window alongside.
	// Empty without an availability spec, so plain sweep rows render
	// exactly as before.
	Avail       AvailClass
	AvailBefore int32
	AvailDuring int32
	AvailAfter  int32
}

// String renders the entry as a report line.
func (e SweepEntry) String() string {
	var fault string
	if e.Fault != "" {
		fault = fmt.Sprintf("%s.%s %s", e.Library, e.Function, e.Fault)
	} else {
		fault = fmt.Sprintf("%s.%s -> %d", e.Library, e.Function, e.Retval)
		if e.HasErrno {
			name := kernel.ErrnoName(e.Errno)
			if name == "" {
				name = fmt.Sprint(e.Errno)
			}
			fault += " errno=" + name
		}
	}
	line := fmt.Sprintf("%-46s %s", fault, e.Outcome)
	if e.Avail != "" {
		line += fmt.Sprintf(" avail=%s served=%d/%d/%d",
			e.Avail, e.AvailBefore, e.AvailDuring, e.AvailAfter)
	}
	return line
}

// SweepResult is the robustness matrix of one application.
type SweepResult struct {
	Executable string
	Baseline   int32 // clean-run exit code
	Entries    []SweepEntry
	// Memo, when the sweep ran on the memoizing snapshot executor,
	// carries its prefix-sharing statistics. Deliberately not part of
	// Render: the rendered report stays byte-identical to a
	// non-memoized sweep's.
	Memo *MemoStats
}

// Summary counts entries per outcome.
func (r *SweepResult) Summary() map[Outcome]int {
	out := make(map[Outcome]int)
	for _, e := range r.Entries {
		out[e.Outcome]++
	}
	return out
}

// Render prints the report: per-fault rows then the outcome summary.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "robustness sweep: %s (baseline exit %d, %d faults)\n",
		r.Executable, r.Baseline, len(r.Entries))
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %s\n", e.String())
	}
	sum := r.Summary()
	keys := make([]string, 0, len(sum))
	for k := range sum {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	b.WriteString("summary:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, sum[Outcome(k)])
	}
	b.WriteString("\n")
	return b.String()
}

// Experiment is one planned fault-injection run: the (library, function,
// error code) coordinates of a SweepEntry plus the single-trigger
// faultload that realises it. Experiments are self-contained — the plan
// is owned by the experiment and cloned again per run — so they can be
// executed in any order, on any worker, with identical results.
type Experiment struct {
	Library  string
	Function string
	Retval   int32
	Errno    int32
	HasErrno bool
	// Fault labels a degradation fault model (see SweepEntry.Fault);
	// empty for error-return experiments.
	Fault string
	// Audit is the caller-side audit class of the target function's
	// most fragile call site ("checked", "stored",
	// "unchecked-propagated", "unchecked-clobbered"; empty = unknown).
	// Purely an annotation: it rides into campaign records and triage
	// but is not part of the experiment's identity (Key) or its report
	// row, so annotated and unannotated sweeps render identically.
	Audit string
	// Plan is the faultload for this run. PlanExperiments builds a
	// deterministic once-on-first-call trigger; hand-built experiments
	// may use any plan, including seeded random triggers (the per-run
	// evaluator derives its stream from Plan.Seed, so random draws are
	// reproducible regardless of scheduling).
	Plan *scenario.Plan
	// Compiled, when set, is Plan's pre-compiled form. PlanExperiments
	// fills it so every run and worker shares one immutable compiled
	// plan; hand-built experiments may leave it nil, and the plan is
	// then compiled once per campaign (errors surface in plan order).
	Compiled *scenario.CompiledPlan
}

// Key is the experiment's canonical identity for persistent campaign
// stores: the report coordinates plus the faultload's canonical key
// (scenario.Plan.CanonicalKey). Two experiments share a key iff they
// would produce the same report row from the same faultload, so a
// resumed sweep can skip completed keys and still render byte-identical
// to a fresh run. The key is stable across processes and machines —
// PlanExperiments is deterministic and plans marshal canonically.
func (exp *Experiment) Key() string {
	plan := exp.Plan
	if plan == nil && exp.Compiled != nil {
		plan = exp.Compiled.Plan()
	}
	key := fmt.Sprintf("%s/%s/%d/%d/%t/%s",
		exp.Library, exp.Function, exp.Retval, exp.Errno, exp.HasErrno, plan.CanonicalKey())
	if exp.Fault != "" {
		// Degradation experiments append their fault label; error-return
		// keys keep the historical five-segment shape, so stores written
		// by earlier campaigns resume unchanged.
		key += "/" + exp.Fault
	}
	return key
}

// PlanExperiments expands a profile set into the full experiment matrix —
// one experiment per (library, function, error code), in deterministic
// lexicographic library order. This is the generator half of a sweep; the
// executor half is RunExperiments.
func PlanExperiments(set profile.Set) []Experiment {
	var out []Experiment
	libs := make([]string, 0, len(set))
	for lib := range set {
		libs = append(libs, lib)
	}
	sort.Strings(libs)
	for _, lib := range libs {
		for _, fn := range set[lib].Functions {
			for _, ec := range fn.ErrorCodes {
				exp := Experiment{
					Library: lib, Function: fn.Name, Retval: ec.Retval,
				}
				trigger := scenario.Trigger{
					Function: fn.Name,
					Inject:   1,
					Retval:   fmt.Sprint(ec.Retval),
					Once:     true,
				}
				for _, se := range ec.SideEffects {
					if se.Type == profile.SideEffectTLS {
						exp.HasErrno = true
						exp.Errno = se.Applied()
						if name := kernel.ErrnoName(exp.Errno); name != "" {
							trigger.Errno = name
						} else {
							trigger.Errno = fmt.Sprint(exp.Errno)
						}
						break
					}
				}
				exp.Plan = &scenario.Plan{Triggers: []scenario.Trigger{trigger}}
				// Generated triggers always compile; sharing the
				// immutable compiled form across runs and workers
				// replaces the old defensive per-run plan clone.
				if cp, err := scenario.Compile(exp.Plan, set); err == nil {
					exp.Compiled = cp
				}
				out = append(out, exp)
			}
		}
	}
	return out
}

// Degradation fault-model parameters used by DegradationExperiments.
// They pick the harshest point of each model so one sweep answers "what
// happens when this resource degrades at this call site":
const (
	// DegradationDelayCycles stalls the intercepted call past the
	// default per-run budget — the call effectively never returns, the
	// ZOFI-style timing fault — so a fired delay under the default
	// budget classifies as a hang. Sweeps with a larger explicit budget
	// see a slow call instead.
	DegradationDelayCycles = DefaultSweepBudget
	// DegradationDiskBytes = 0: the disk is full from the moment the
	// trigger fires; the next write or creating open fails with ENOSPC.
	DegradationDiskBytes = 0
	// DegradationFDSlots = 0: the fd table saturates at fire time; the
	// fired call's own descriptor allocation (and every later one)
	// fails with EMFILE.
	DegradationFDSlots = 0
)

// DegradationExperiments expands a profile set into the stateful
// degradation matrix: for every profiled function, one latency
// injection, one disk-exhaustion and one fd-pressure experiment, each
// armed on the function's first call (pass-through triggers — the
// original proceeds against the degraded kernel). The generator is
// deterministic in the same lexicographic order as PlanExperiments,
// so degradation sweeps shard, resume and memoize identically.
func DegradationExperiments(set profile.Set) []Experiment {
	var out []Experiment
	libs := make([]string, 0, len(set))
	for lib := range set {
		libs = append(libs, lib)
	}
	sort.Strings(libs)
	for _, lib := range libs {
		for _, fn := range set[lib].Functions {
			models := []struct {
				label   string
				trigger scenario.Trigger
			}{
				{
					label: fmt.Sprintf("delay=%d", DegradationDelayCycles),
					trigger: scenario.Trigger{
						Function: fn.Name, Inject: 1, Once: true,
						Delay: &scenario.Delay{Cycles: DegradationDelayCycles},
					},
				},
				{
					label: fmt.Sprintf("exhaust=disk:after=%d", DegradationDiskBytes),
					trigger: scenario.Trigger{
						Function: fn.Name, Inject: 1, Once: true,
						Exhaust: &scenario.Exhaust{Resource: scenario.ResourceDisk, After: DegradationDiskBytes},
					},
				},
				{
					label: fmt.Sprintf("exhaust=fds:slots=%d", DegradationFDSlots),
					trigger: scenario.Trigger{
						Function: fn.Name, Inject: 1, Once: true,
						Exhaust: &scenario.Exhaust{Resource: scenario.ResourceFDs, Slots: DegradationFDSlots},
					},
				},
			}
			for _, m := range models {
				exp := Experiment{Library: lib, Function: fn.Name, Fault: m.label}
				exp.Plan = &scenario.Plan{Triggers: []scenario.Trigger{m.trigger}}
				if cp, err := scenario.Compile(exp.Plan, set); err == nil {
					exp.Compiled = cp
				}
				out = append(out, exp)
			}
		}
	}
	return out
}

// checkBaseline rejects crashed or wedged baselines — no classification
// can anchor on those — and, under an availability spec, baselines whose
// traffic run did not complete cleanly (a fault-free client that drops
// requests would poison every availability class).
func checkBaseline(rep *Report, avail *AvailSpec) error {
	if rep.Status.Signal != 0 || rep.Deadlocked {
		return fmt.Errorf("core: baseline run is unhealthy: %+v", rep.Status)
	}
	if avail != nil {
		c := rep.Avail
		if c == nil || !c.Done || c.ServerSignal != 0 ||
			c.WarmFail+c.SteadyFail+c.PostFail+c.TailFail != 0 ||
			c.WarmErr+c.SteadyErr+c.PostErr != 0 {
			return fmt.Errorf("core: baseline traffic run is unhealthy: %+v", c)
		}
	}
	return nil
}

// runBaseline executes the clean run that anchors outcome (and
// availability) classification.
func runBaseline(cfg CampaignConfig, budget uint64) (*Report, error) {
	baseCfg := cfg
	baseCfg.Plan = nil
	baseCfg.Compiled = nil
	baseline, err := NewCampaign(baseCfg)
	if err != nil {
		return nil, err
	}
	baseRep, err := baseline.Run(budget)
	if err != nil {
		return nil, err
	}
	if err := checkBaseline(baseRep, cfg.Avail); err != nil {
		return nil, err
	}
	return baseRep, nil
}

// entry seeds the report row for an experiment's coordinates.
func (exp *Experiment) entry() SweepEntry {
	return SweepEntry{
		Library: exp.Library, Function: exp.Function, Retval: exp.Retval,
		Errno: exp.Errno, HasErrno: exp.HasErrno, Fault: exp.Fault,
	}
}

// classify fills the outcome half of the entry from a finished run:
// the process-shaped Outcome against the baseline exit code and — when
// the sweep runs under an availability spec — the service-level class
// against the baseline's counters and cycle envelope. Every executor
// path (fresh, snapshot, memo-restored, memo-terminal) funnels through
// here, which is what keeps availability reports byte-identical across
// engines and memo settings.
func (e *SweepEntry) classify(rep *Report, base *Report, avail *AvailSpec) {
	e.ExitCode = rep.Status.Code
	e.Signal = rep.Status.Signal
	e.Outcome = Classify(rep, base.Status.Code)
	if avail == nil || rep.Avail == nil {
		return
	}
	e.Avail = ClassifyAvail(rep, base, avail.latencyPct())
	e.AvailBefore = rep.Avail.WarmOK
	e.AvailDuring = rep.Avail.SteadyOK
	e.AvailAfter = rep.Avail.PostOK
}

// runExperiment executes one experiment in a fresh Campaign (its own
// vm.System, controller and evaluator) and classifies the reaction,
// returning the full run report alongside the entry (for the OnResult
// observers of persistent campaign stores). The compiled plan is
// immutable and evaluator state is per-campaign, so the shared
// CampaignConfig and Experiment are only ever read — this is what keeps
// a many-worker sweep race-free.
func runExperiment(cfg CampaignConfig, exp Experiment, base *Report, budget uint64) (SweepEntry, *Report, error) {
	entry := exp.entry()
	runCfg := cfg
	runCfg.Plan = exp.Plan
	runCfg.Compiled = exp.Compiled
	runCfg.PassThrough = false
	c, err := NewCampaign(runCfg)
	if err != nil {
		return entry, nil, err
	}
	rep, err := c.Run(budget)
	if err != nil {
		return entry, nil, err
	}
	entry.classify(rep, base, cfg.Avail)
	return entry, rep, nil
}

// Sweep runs one campaign per (function, error code) in the profile set —
// the systematic fault-tolerance benchmark the paper's §2 envisions. Each
// run injects exactly one fault on the function's first call and
// classifies the program's reaction against a clean baseline.
//
// The cfg's Plan and PassThrough are ignored; everything else (programs,
// executable, files, VM options) describes the target. budget bounds each
// run's cycles (0 = DefaultSweepBudget).
//
// Sweep is the sequential reference executor; SweepParallel distributes
// the same experiment matrix over a worker pool and renders the exact
// same report.
func Sweep(cfg CampaignConfig, set profile.Set, budget uint64) (*SweepResult, error) {
	return RunExperiments(cfg, PlanExperiments(set), budget, SweepOptions{Workers: 1})
}
