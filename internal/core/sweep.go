package core

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/kernel"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

// Outcome classifies one fault-injection run — the rows of the §2 test
// report ("the results in the report can pinpoint bugs or weak spots in
// the target software").
type Outcome string

// Outcomes.
const (
	// OutcomeHandled: the program terminated exactly as it does without
	// injection — it tolerated the fault.
	OutcomeHandled Outcome = "handled"
	// OutcomeErrorExit: the program terminated normally but with a
	// different exit code — it detected the fault and degraded.
	OutcomeErrorExit Outcome = "error-exit"
	// OutcomeCrash: the program died on a signal (SIGSEGV, SIGABRT...).
	OutcomeCrash Outcome = "crash"
	// OutcomeHang: the program deadlocked or exhausted its cycle budget.
	OutcomeHang Outcome = "hang"
	// OutcomeNotTriggered: the workload never called the function, so
	// the fault was not exercised.
	OutcomeNotTriggered Outcome = "not-triggered"
)

// SweepEntry is one (function, error code) experiment.
type SweepEntry struct {
	Library  string
	Function string
	Retval   int32
	Errno    int32
	HasErrno bool
	Outcome  Outcome
	ExitCode int32
	Signal   int32
}

// String renders the entry as a report line.
func (e SweepEntry) String() string {
	fault := fmt.Sprintf("%s.%s -> %d", e.Library, e.Function, e.Retval)
	if e.HasErrno {
		name := kernel.ErrnoName(e.Errno)
		if name == "" {
			name = fmt.Sprint(e.Errno)
		}
		fault += " errno=" + name
	}
	return fmt.Sprintf("%-46s %s", fault, e.Outcome)
}

// SweepResult is the robustness matrix of one application.
type SweepResult struct {
	Executable string
	Baseline   int32 // clean-run exit code
	Entries    []SweepEntry
}

// Summary counts entries per outcome.
func (r *SweepResult) Summary() map[Outcome]int {
	out := make(map[Outcome]int)
	for _, e := range r.Entries {
		out[e.Outcome]++
	}
	return out
}

// Render prints the report: per-fault rows then the outcome summary.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "robustness sweep: %s (baseline exit %d, %d faults)\n",
		r.Executable, r.Baseline, len(r.Entries))
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "  %s\n", e.String())
	}
	sum := r.Summary()
	keys := make([]string, 0, len(sum))
	for k := range sum {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	b.WriteString("summary:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, sum[Outcome(k)])
	}
	b.WriteString("\n")
	return b.String()
}

// Sweep runs one campaign per (function, error code) in the profile set —
// the systematic fault-tolerance benchmark the paper's §2 envisions. Each
// run injects exactly one fault on the function's first call and
// classifies the program's reaction against a clean baseline.
//
// The cfg's Plan and PassThrough are ignored; everything else (programs,
// executable, files, VM options) describes the target. budget bounds each
// run's cycles (0 = a generous default).
func Sweep(cfg CampaignConfig, set profile.Set, budget uint64) (*SweepResult, error) {
	if budget == 0 {
		budget = 200_000_000
	}
	baseCfg := cfg
	baseCfg.Plan = nil
	baseline, err := NewCampaign(baseCfg)
	if err != nil {
		return nil, err
	}
	baseRep, err := baseline.Run(budget)
	if err != nil {
		return nil, err
	}
	if baseRep.Status.Signal != 0 || baseRep.Deadlocked {
		return nil, fmt.Errorf("core: baseline run is unhealthy: %+v", baseRep.Status)
	}

	res := &SweepResult{Executable: cfg.Executable, Baseline: baseRep.Status.Code}
	libs := make([]string, 0, len(set))
	for lib := range set {
		libs = append(libs, lib)
	}
	sort.Strings(libs)
	for _, lib := range libs {
		for _, fn := range set[lib].Functions {
			for _, ec := range fn.ErrorCodes {
				entry := SweepEntry{
					Library: lib, Function: fn.Name, Retval: ec.Retval,
				}
				trigger := scenario.Trigger{
					Function: fn.Name,
					Inject:   1,
					Retval:   fmt.Sprint(ec.Retval),
					Once:     true,
				}
				for _, se := range ec.SideEffects {
					if se.Type == profile.SideEffectTLS {
						entry.HasErrno = true
						entry.Errno = se.Applied()
						if name := kernel.ErrnoName(entry.Errno); name != "" {
							trigger.Errno = name
						} else {
							trigger.Errno = fmt.Sprint(entry.Errno)
						}
						break
					}
				}
				runCfg := cfg
				runCfg.Plan = &scenario.Plan{Triggers: []scenario.Trigger{trigger}}
				runCfg.PassThrough = false
				c, err := NewCampaign(runCfg)
				if err != nil {
					return nil, err
				}
				rep, err := c.Run(budget)
				if err != nil {
					return nil, err
				}
				entry.ExitCode = rep.Status.Code
				entry.Signal = rep.Status.Signal
				switch {
				case len(rep.Injections) == 0:
					entry.Outcome = OutcomeNotTriggered
				case rep.Status.Signal != 0:
					entry.Outcome = OutcomeCrash
				case rep.Deadlocked:
					entry.Outcome = OutcomeHang
				case rep.Status.Code == res.Baseline:
					entry.Outcome = OutcomeHandled
				default:
					entry.Outcome = OutcomeErrorExit
				}
				res.Entries = append(res.Entries, entry)
			}
		}
	}
	return res, nil
}
