package core_test

import (
	"testing"

	"lfi/internal/apps"
	"lfi/internal/core"
	"lfi/internal/kernel"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// readCounter reads one traffic-client global out of a system's first
// process (the spawned driver).
func readCounter(t *testing.T, sys *vm.System, client, sym string) int32 {
	t.Helper()
	p := sys.Procs()[0]
	im, ok := p.ImageByName(client)
	if !ok {
		t.Fatalf("no image %q", client)
	}
	va, ok := im.SymbolVA(sym)
	if !ok {
		t.Fatalf("no symbol %q", sym)
	}
	v, err := p.ReadWord(va)
	if err != nil {
		t.Fatalf("read %s: %v", sym, err)
	}
	return v
}

// TestExhaustFDsAcceptSnapshotRestore composes <exhaust resource="fds">
// with the serving guest's accept and proves the armed+tripped state
// round-trips through CoW and flat VM snapshot restores taken
// mid-connection: the fault fires mid-warmup, the starved accept leaves
// the client's connection queued on the backlog, and a snapshot frozen
// at that instant restores — in either mode — to a kernel that is
// still armed, still tripped, and still starving the same connection.
func TestExhaustFDsAcceptSnapshotRestore(t *testing.T) {
	set := flagshipSet()
	plan := &scenario.Plan{Triggers: []scenario.Trigger{{
		Function: "accept",
		Once:     true,
		Exhaust:  &scenario.Exhaust{Resource: scenario.ResourceFDs, Slots: 0},
		Conds:    []scenario.Cond{scenario.Calls(50, 0, 0)},
	}}}
	cp, err := scenario.Compile(plan, set)
	if err != nil {
		t.Fatal(err)
	}

	type endState struct {
		deg      kernel.DegradationState
		warmOK   int32
		warmFail int32
		done     int32
	}
	leg := func(flat bool) endState {
		cfg := availCfg(t, "minidb")
		cfg.Compiled = cp
		cfg.VM.FlatRestore = flat
		c, err := core.NewCampaign(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys := c.System()
		// Step the run in absolute-budget increments until the starved
		// accept trips the degradation — mid-warmup, mid-connection.
		var budget uint64
		for !sys.Kernel().Degradation().FDsTripped {
			budget += 200_000
			if budget > 50_000_000 {
				t.Fatal("fd pressure never tripped")
			}
			if err := sys.Run(budget); err != nil && err != vm.ErrBudget {
				t.Fatalf("run: %v", err)
			}
		}
		want := sys.Kernel().Degradation()
		if !want.FDsArmed || !want.FDsTripped {
			t.Fatalf("trip state = %+v", want)
		}

		snap, err := sys.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		rsys := snap.Restore()
		if got := rsys.Kernel().Degradation(); got != want {
			t.Fatalf("flat=%v restored degradation = %+v, want %+v", flat, got, want)
		}
		// Resume the restored run: the accept stays starved, the client
		// stays queued, and the run burns down to its budget — a wedge.
		if err := rsys.Run(budget + 2_000_000); err != vm.ErrBudget {
			t.Fatalf("flat=%v resumed run = %v, want ErrBudget", flat, err)
		}
		client := apps.AvailClientName("minidb")
		return endState{
			deg:      rsys.Kernel().Degradation(),
			warmOK:   readCounter(t, rsys, client, "av_warm_ok"),
			warmFail: readCounter(t, rsys, client, "av_warm_fail"),
			done:     readCounter(t, rsys, client, "av_done"),
		}
	}

	cow := leg(false)
	flat := leg(true)
	if cow != flat {
		t.Fatalf("restore modes diverged:\ncow  = %+v\nflat = %+v", cow, flat)
	}
	if !cow.deg.FDsArmed || !cow.deg.FDsTripped {
		t.Fatalf("end degradation = %+v, want armed+tripped", cow.deg)
	}
	if cow.done != 0 {
		t.Fatal("client completed its phases under a starved accept")
	}
	// The fault fired at accept call 51: fifty warmup requests were
	// served before it, none failed fast (the listener stays alive, so
	// the client blocks in recv rather than erroring).
	if cow.warmOK != 50 || cow.warmFail != 0 {
		t.Fatalf("warmup counters = %d ok / %d fail, want 50/0", cow.warmOK, cow.warmFail)
	}
}
