package core_test

import (
	"strings"
	"testing"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// sweepApp has one handled fault path (open: falls back), one unhandled
// crash (malloc result dereferenced blindly), and a function it never
// calls (write), so the sweep must produce handled, crash and
// not-triggered rows.
const sweepApp = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int write(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  byte *p;
  fd = open("/data", 0, 0);
  if (fd >= 0) { close(fd); }      // tolerate open failure
  p = malloc(16);
  p[0] = 'x';                      // BUG: unchecked allocation
  return 0;
}
`

func sweepSet(t *testing.T) (profile.Set, *obj.File, *obj.File) {
	t.Helper()
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", sweepApp, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	// A focused hand-built profile keeps the sweep small and readable.
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: []profile.ErrorCode{{
				Retval: -1,
				SideEffects: []profile.SideEffect{{
					Type: profile.SideEffectTLS, Module: libc.Name, Value: 13,
				}},
			}}},
			{Name: "malloc", ErrorCodes: []profile.ErrorCode{{
				Retval: 0,
				SideEffects: []profile.SideEffect{{
					Type: profile.SideEffectTLS, Module: libc.Name, Value: 12,
				}},
			}}},
			{Name: "write", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
		},
	}}
	return set, lc, app
}

func TestSweepClassifiesOutcomes(t *testing.T) {
	set, lc, app := sweepSet(t)
	res, err := core.Sweep(core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
		Files:      map[string][]byte{"/data": []byte("d")},
	}, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline != 0 {
		t.Fatalf("baseline = %d", res.Baseline)
	}
	got := map[string]core.Outcome{}
	for _, e := range res.Entries {
		got[e.Function] = e.Outcome
	}
	if got["open"] != core.OutcomeHandled {
		t.Errorf("open fault outcome = %s, want handled", got["open"])
	}
	if got["malloc"] != core.OutcomeCrash {
		t.Errorf("malloc fault outcome = %s, want crash (unchecked allocation)", got["malloc"])
	}
	if got["write"] != core.OutcomeNotTriggered {
		t.Errorf("write fault outcome = %s, want not-triggered", got["write"])
	}
	sum := res.Summary()
	if sum[core.OutcomeCrash] != 1 || sum[core.OutcomeHandled] != 1 || sum[core.OutcomeNotTriggered] != 1 {
		t.Errorf("summary = %v", sum)
	}
	report := res.Render()
	for _, want := range []string{"robustness sweep", "malloc -> 0", "crash", "errno=ENOMEM"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestSweepErrorExitClassification(t *testing.T) {
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern tls int errno;
int main(void) {
  if (open("/data", 0, 0) < 0) { return 3; }  // graceful error exit
  return 0;
}`, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
		},
	}}
	res, err := core.Sweep(core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
		Files:      map[string][]byte{"/data": []byte("d")},
	}, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Outcome != core.OutcomeErrorExit {
		t.Errorf("entries = %+v", res.Entries)
	}
	if res.Entries[0].ExitCode != 3 {
		t.Errorf("exit = %d", res.Entries[0].ExitCode)
	}
}

func TestSweepRejectsUnhealthyBaseline(t *testing.T) {
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", `
needs "libc.so";
int main(void) {
  int *p;
  p = 4;
  return *p;     // baseline itself crashes
}`, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Sweep(core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
	}, profile.Set{}, 0)
	if err == nil {
		t.Error("sweep must refuse a crashing baseline")
	}
}
