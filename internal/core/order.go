package core

import "sort"

// This file is the bridge between the caller-side audit (internal/audit)
// and the sweep scheduler: the audit's per-function classification
// becomes an execution-order permutation (SweepOptions.ExecOrder) that
// fronts the statically fragile experiments, while plan-order
// reassembly keeps the full-sweep report byte-identical to the default
// order. The class map is passed as plain strings so core does not
// depend on the audit package.

// Audit class ranks, mirroring audit.Rank: lower runs earlier. Unknown
// classes (functions with no discovered call site) sit between stored
// and checked — no static evidence either way.
func auditRank(class string) int {
	switch class {
	case "unchecked-clobbered":
		return 0
	case "unchecked-propagated":
		return 1
	case "stored":
		return 2
	case "checked":
		return 4
	}
	return 3
}

// AuditUnchecked reports whether a class string asserts the call site
// never examines the return value.
func AuditUnchecked(class string) bool {
	return class == "unchecked-clobbered" || class == "unchecked-propagated"
}

// AnnotateAudit stamps each experiment with the audit class of its
// target function, so campaign records (and triage) carry the static
// prediction alongside the dynamic outcome. Functions absent from the
// class map stay unannotated ("unknown").
func AnnotateAudit(exps []Experiment, class map[string]string) {
	for i := range exps {
		exps[i].Audit = class[exps[i].Function]
	}
}

// StaticOrder builds the audit-prioritised execution order: experiments
// whose target function has the most fragile call sites run first
// (unchecked-clobbered, unchecked-propagated, stored, unknown, checked),
// ties broken by plan index so the permutation is deterministic. The
// returned slice is a permutation of [0, len(exps)) for
// SweepOptions.ExecOrder; the committed report remains in plan order.
func StaticOrder(exps []Experiment, class map[string]string) []int {
	order := make([]int, len(exps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return auditRank(class[exps[order[a]].Function]) <
			auditRank(class[exps[order[b]].Function])
	})
	return order
}
