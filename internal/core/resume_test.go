package core_test

import (
	"sync"
	"testing"

	"lfi/internal/core"
)

// TestSweepSkipResumeIdentical is the executor half of the resume
// contract: results captured live by OnResult from a partial sweep,
// served back through Skip, must yield a report byte-identical to a
// fresh full sweep — at 1, 4 and 8 workers, on both executors.
func TestSweepSkipResumeIdentical(t *testing.T) {
	cfg, set := mixedTarget(t)
	fresh, err := core.Sweep(cfg, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Render()

	for _, snapshot := range []bool{false, true} {
		// Phase 1: execute exactly the first half of the matrix with
		// OnResult recording — the "killed at 50%" half-completed
		// campaign.
		var mu sync.Mutex
		done := make(map[string]core.SweepEntry)
		half := core.PlanExperiments(set)[:len(fresh.Entries)/2]
		if _, err := core.RunExperiments(cfg, half, 0, core.SweepOptions{
			Workers: 4, Snapshot: snapshot,
			OnResult: func(exp *core.Experiment, entry core.SweepEntry, rep *core.Report) {
				mu.Lock()
				done[exp.Key()] = entry
				mu.Unlock()
			},
		}); err != nil {
			t.Fatalf("snapshot=%v partial: %v", snapshot, err)
		}
		if len(done) != len(half) {
			t.Fatalf("snapshot=%v: recorded %d of %d executed experiments",
				snapshot, len(done), len(half))
		}

		// Phase 2: resume — completed keys served from the recorded map.
		for _, workers := range []int{1, 4, 8} {
			var skipped, ran int
			res, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0, core.SweepOptions{
				Workers: workers, Snapshot: snapshot,
				Skip: func(exp *core.Experiment) (core.SweepEntry, bool) {
					mu.Lock()
					defer mu.Unlock()
					if e, ok := done[exp.Key()]; ok {
						skipped++
						return e, true
					}
					ran++
					return core.SweepEntry{}, false
				},
			})
			if err != nil {
				t.Fatalf("snapshot=%v workers=%d resume: %v", snapshot, workers, err)
			}
			if got := res.Render(); got != want {
				t.Errorf("snapshot=%v workers=%d: resumed report differs from fresh:\n--- fresh ---\n%s--- resumed ---\n%s",
					snapshot, workers, want, got)
			}
			if skipped == 0 || ran == 0 {
				t.Errorf("snapshot=%v workers=%d: resume did not mix cached (%d) and fresh (%d) entries",
					snapshot, workers, skipped, ran)
			}
		}
	}
}

// TestSweepResumeRespectsMaxCrashes: cached crash entries count toward
// the threshold in plan order, so a resumed early-stopped sweep
// truncates exactly where a fresh early-stopped one does.
func TestSweepResumeRespectsMaxCrashes(t *testing.T) {
	cfg, set := mixedTarget(t)
	fresh, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 1, MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Serve every entry of the full matrix from cache.
	cache := make(map[string]core.SweepEntry)
	full, err := core.Sweep(cfg, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	exps := core.PlanExperiments(set)
	for i, exp := range exps {
		cache[exp.Key()] = full.Entries[i]
	}
	res, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
		Workers: 4, MaxCrashes: 1,
		Skip: func(exp *core.Experiment) (core.SweepEntry, bool) {
			e, ok := cache[exp.Key()]
			return e, ok
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != fresh.Render() {
		t.Errorf("all-cached early stop differs from fresh early stop:\n%s\nvs\n%s",
			fresh.Render(), res.Render())
	}
}

// TestExperimentKeysDistinctAndStable: every experiment in the matrix
// has a unique key, and regenerating the matrix reproduces them —
// the identity a store's resume filter matches across processes.
func TestExperimentKeysDistinctAndStable(t *testing.T) {
	_, set := mixedTarget(t)
	a, b := core.PlanExperiments(set), core.PlanExperiments(set)
	seen := make(map[string]int)
	for i := range a {
		k := a[i].Key()
		if j, dup := seen[k]; dup {
			t.Errorf("experiments %d and %d share key %q", j, i, k)
		}
		seen[k] = i
		if bk := b[i].Key(); bk != k {
			t.Errorf("experiment %d key unstable: %q vs %q", i, k, bk)
		}
	}
}

// TestReportCrashStack: a signal death captures the dying process's
// backtrace on the report (the triage clustering identity); clean exits
// do not.
func TestReportCrashStack(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	var crashRep, cleanRep *core.Report
	_, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
		Workers: 1,
		OnResult: func(exp *core.Experiment, entry core.SweepEntry, rep *core.Report) {
			switch {
			case entry.Outcome == core.OutcomeCrash && crashRep == nil:
				crashRep = rep
			case entry.Outcome == core.OutcomeHandled && cleanRep == nil:
				cleanRep = rep
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if crashRep == nil || cleanRep == nil {
		t.Fatal("matrix did not produce both a crash and a handled outcome")
	}
	if len(crashRep.CrashStack) == 0 {
		t.Error("crash report has no crash stack")
	} else if last := crashRep.CrashStack[len(crashRep.CrashStack)-1]; last != "main" {
		t.Errorf("outermost crash frame = %q, want main (stack %v)", last, crashRep.CrashStack)
	}
	if cleanRep.CrashStack != nil {
		t.Errorf("clean exit must not carry a crash stack: %v", cleanRep.CrashStack)
	}
}
