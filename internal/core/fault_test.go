package core_test

import (
	"strings"
	"sync"
	"testing"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// faultApp checks every syscall result and exits distinctly on each
// failure, so the degradation matrix produces clean classifications:
// a stalled call hangs, a full disk turns write/open into error exits,
// and fd pressure armed at write never binds (no later allocation).
const faultApp = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int write(int fd, byte *buf, int n);
extern tls int errno;
int main(void) {
  int fd;
  int i;
  fd = open("/out", 65, 0);
  if (fd < 0) { return 3; }
  i = 0;
  while (i < 4) {
    if (write(fd, "abcdefgh", 8) < 8) { close(fd); return 4; }
    i = i + 1;
  }
  close(fd);
  return 0;
}
`

func faultSet(t *testing.T) (profile.Set, *obj.File, *obj.File) {
	t.Helper()
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", faultApp, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
			{Name: "write", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
		},
	}}
	return set, lc, app
}

func TestDegradationSweepOutcomes(t *testing.T) {
	set, lc, app := faultSet(t)
	exps := core.DegradationExperiments(set)
	if len(exps) != 6 {
		t.Fatalf("experiments = %d, want 6 (2 functions x 3 models)", len(exps))
	}

	var mu sync.Mutex
	reports := map[string]*core.Report{}
	res, err := core.RunExperiments(core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
	}, exps, 0, core.SweepOptions{
		Workers: 1,
		OnResult: func(exp *core.Experiment, _ core.SweepEntry, rep *core.Report) {
			mu.Lock()
			reports[exp.Function+"/"+exp.Fault] = rep
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline != 0 {
		t.Fatalf("baseline = %d", res.Baseline)
	}

	got := map[string]core.Outcome{}
	for _, e := range res.Entries {
		got[e.Function+"/"+e.Fault] = e.Outcome
	}
	want := map[string]core.Outcome{
		// A call stalled past the budget never returns: hang.
		"open/delay=200000000":  core.OutcomeHang,
		"write/delay=200000000": core.OutcomeHang,
		// Full disk: the creating open (and the first write) fail with
		// ENOSPC, which the app detects and exits on.
		"open/exhaust=disk:after=0":  core.OutcomeErrorExit,
		"write/exhaust=disk:after=0": core.OutcomeErrorExit,
		// fd saturation at open fails that open's own allocation; armed
		// at write it never binds (the app allocates no more fds), so
		// the run completes exactly like the baseline.
		"open/exhaust=fds:slots=0":  core.OutcomeErrorExit,
		"write/exhaust=fds:slots=0": core.OutcomeHandled,
	}
	for key, w := range want {
		if got[key] != w {
			t.Errorf("%s outcome = %s, want %s", key, got[key], w)
		}
	}

	// The report carries the kernel's final degradation state: tripped
	// where the exhaustion actually failed an operation, armed-but-
	// untripped where it never bound.
	if rep := reports["write/exhaust=disk:after=0"]; rep == nil {
		t.Error("no report for write disk exhaustion")
	} else if d := rep.Degradation; !d.DiskArmed || !d.DiskTripped {
		t.Errorf("disk degradation = %+v, want armed+tripped", d)
	}
	if rep := reports["write/exhaust=fds:slots=0"]; rep == nil {
		t.Error("no report for write fd pressure")
	} else if d := rep.Degradation; !d.FDsArmed || d.FDsTripped {
		t.Errorf("fds degradation = %+v, want armed, untripped", d)
	}
	if rep := reports["open/delay=200000000"]; rep == nil {
		t.Error("no report for open delay")
	} else {
		var delay uint64
		for _, inj := range rep.Injections {
			delay += inj.DelayCycles
		}
		if delay != core.DegradationDelayCycles {
			t.Errorf("recorded delay = %d, want %d", delay, core.DegradationDelayCycles)
		}
	}

	// Fault rows render their degradation label in place of a retval.
	report := res.Render()
	for _, wantStr := range []string{"exhaust=disk:after=0", "exhaust=fds:slots=0", "delay=200000000"} {
		if !strings.Contains(report, wantStr) {
			t.Errorf("report missing %q:\n%s", wantStr, report)
		}
	}
}

// The degradation matrix must render byte-identically across every
// executor configuration: fresh spawns, snapshot restores (CoW and
// flat), memoized prefixes (unbounded and evicting), and any worker
// count. This is the in-process half of scripts/faultcheck.sh.
func TestDegradationSweepDeterminism(t *testing.T) {
	set, lc, app := faultSet(t)
	cfg := core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
	}
	run := func(opts core.SweepOptions) string {
		t.Helper()
		res, err := core.RunExperiments(cfg, core.DegradationExperiments(set), 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	ref := run(core.SweepOptions{Workers: 1})
	legs := map[string]core.SweepOptions{
		"fresh-w4":        {Workers: 4},
		"snapshot-cow-w1": {Workers: 1, Snapshot: true},
		"snapshot-cow-w4": {Workers: 4, Snapshot: true},
		"snapshot-flat":   {Workers: 2, Snapshot: true, FlatRestore: true},
		"snapshot-nomemo": {Workers: 4, Snapshot: true, NoMemo: true},
		"snapshot-memo-1": {Workers: 2, Snapshot: true, MemoBudget: 1},
	}
	for name, opts := range legs {
		if got := run(opts); got != ref {
			t.Errorf("%s report diverged from fresh single-worker reference:\n--- ref\n%s\n--- %s\n%s",
				name, ref, name, got)
		}
	}
}
