package core_test

import (
	"strings"
	"testing"

	"lfi/internal/apps"
	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// availCfg assembles a traffic-driven campaign: libc, the server, the
// generated client driver, and the availability spec naming it.
func availCfg(t *testing.T, server string, extra ...string) core.CampaignConfig {
	t.Helper()
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	progs := []*obj.File{lc}
	for _, n := range append([]string{server, apps.AvailClientName(server)}, extra...) {
		f, err := apps.Compile(n)
		if err != nil {
			t.Fatalf("compile %s: %v", n, err)
		}
		progs = append(progs, f)
	}
	return core.CampaignConfig{
		Programs:   progs,
		Executable: apps.AvailClientName(server),
		Files:      apps.WWWFiles(),
		Avail:      &core.AvailSpec{Client: apps.AvailClientName(server)},
	}
}

// flagshipSet profiles the two server-side calls every minidb request
// exercises exactly once — the connection accept and the WAL append —
// so a <calls after=N> window lands mid-steady-state deterministically.
// The client never calls either, which keeps the fault on the server.
func flagshipSet() profile.Set {
	return profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "accept", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
			{Name: "write", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
		},
	}}
}

// TestAvailabilityFlagship is the paper-style comparison the harness
// exists for: the retrying WAL server recovers from a one-shot write
// error but degrades under persistent disk exhaustion and injected
// latency, wedges when a call stalls past the budget, and the
// non-retrying variant turns the same one-shot error into permanent
// degradation.
func TestAvailabilityFlagship(t *testing.T) {
	set := flagshipSet()
	exps := core.AvailabilityExperiments(set, apps.AvailAfter)
	if len(exps) != 10 {
		t.Fatalf("experiments = %d, want 10 (2 functions x (1 errno + 4 models))", len(exps))
	}

	classes := func(server string) map[string]core.AvailClass {
		res, err := core.RunExperiments(availCfg(t, server), exps, 0, core.SweepOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", server, err)
		}
		got := map[string]core.AvailClass{}
		for _, e := range res.Entries {
			fault := e.Fault
			if fault == "" {
				fault = "errno"
			}
			key := e.Function + "/" + fault
			got[key] = e.Avail
			if e.Avail == "" {
				t.Errorf("%s %s: no availability class", server, key)
			}
			// Phase counters are per-run service evidence: warmup always
			// completes (the fault window opens mid-steady-state).
			if e.AvailBefore != apps.AvailWarm {
				t.Errorf("%s %s: warmup served %d/%d", server, key, e.AvailBefore, apps.AvailWarm)
			}
		}
		return got
	}

	retry := classes("minidb")
	want := map[string]core.AvailClass{
		// One-shot errors: the dropped accept is retried from the backlog
		// on the next loop; the failed append reopens the WAL — recovered.
		"accept/errno": core.AvailRecovered,
		"write/errno":  core.AvailRecovered,
		// Moderate stall: every request answered, latency envelope blown.
		"accept/delay=30000000": core.AvailDegraded,
		"write/delay=30000000":  core.AvailDegraded,
		// Budget-length stall: the client never finishes its phases.
		"accept/delay=200000000": core.AvailWedged,
		"write/delay=200000000":  core.AvailWedged,
		// Disk full from the window on: the WAL reopen succeeds (the node
		// exists) but every append keeps failing — the server answers ERR
		// for the rest of the run, which is degraded service, not a wedge.
		"accept/exhaust=disk:after=0": core.AvailDegraded,
		"write/exhaust=disk:after=0":  core.AvailDegraded,
		// fd saturation armed at accept fails that accept's own slot and
		// every later one: connections queue but are never answered.
		"accept/exhaust=fds:slots=0": core.AvailWedged,
		// Armed at the WAL write, the shrunk table still fits the
		// steady-state churn (the in-flight connection's slot is freed and
		// reused), so the pressure never binds: where a resource fault is
		// armed matters as much as which resource.
		"write/exhaust=fds:slots=0": core.AvailRecovered,
	}
	for key, w := range want {
		if retry[key] != w {
			t.Errorf("minidb %s = %s, want %s", key, retry[key], w)
		}
	}

	// The non-retrying server gives the WAL up on the first error: the
	// same one-shot fault becomes permanent degradation — the paper-style
	// recovery-code comparison.
	noRetry := classes("minidb-nr")
	if noRetry["write/errno"] != core.AvailDegraded {
		t.Errorf("minidb-nr write/errno = %s, want %s", noRetry["write/errno"], core.AvailDegraded)
	}
	if noRetry["accept/errno"] != core.AvailRecovered {
		t.Errorf("minidb-nr accept/errno = %s, want %s", noRetry["accept/errno"], core.AvailRecovered)
	}
}

// TestClassifyAvail pins the taxonomy's precedence: worst-first, with
// the latency envelope deciding degraded-vs-recovered only for runs
// that completed with clean counters.
func TestClassifyAvail(t *testing.T) {
	base := &core.Report{Cycles: 1000}
	rep := func(cycles uint64, c core.AvailCounters) *core.Report {
		return &core.Report{Cycles: cycles, Avail: &c}
	}
	ok := core.AvailCounters{PostOK: 10, TailFail: 0, Done: true}
	cases := []struct {
		name string
		rep  *core.Report
		want core.AvailClass
	}{
		{"clean", rep(1000, ok), core.AvailRecovered},
		{"latency-within-envelope", rep(1200, ok), core.AvailRecovered},
		{"latency-elevated", rep(1300, ok), core.AvailDegraded},
		{"dropped-then-restored", rep(1000, core.AvailCounters{PostOK: 8, PostFail: 2, Done: true}), core.AvailLost},
		{"still-failing", rep(1000, core.AvailCounters{PostOK: 8, PostFail: 2, TailFail: 2, Done: true}), core.AvailDegraded},
		{"never-answered", rep(1000, core.AvailCounters{PostFail: 10, Done: true}), core.AvailWedged},
		{"incomplete", rep(1000, core.AvailCounters{PostOK: 10, Done: false}), core.AvailWedged},
		{"server-died", rep(1000, core.AvailCounters{PostOK: 10, Done: true, ServerSignal: 11}), core.AvailCrashed},
		{"no-counters", &core.Report{Cycles: 1000}, core.AvailWedged},
	}
	for _, tc := range cases {
		if got := core.ClassifyAvail(tc.rep, base, core.DefaultAvailLatencyPct); got != tc.want {
			t.Errorf("%s = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestAvailabilitySweepDeterminism: availability reports must render
// byte-identically across every executor configuration — the
// in-process half of scripts/availcheck.sh.
func TestAvailabilitySweepDeterminism(t *testing.T) {
	set := flagshipSet()
	exps := core.AvailabilityExperiments(set, apps.AvailAfter)
	cfg := availCfg(t, "minidb")
	run := func(opts core.SweepOptions) string {
		t.Helper()
		res, err := core.RunExperiments(cfg, exps, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render()
	}
	ref := run(core.SweepOptions{Workers: 1})
	for _, wantStr := range []string{"avail=recovered", "avail=degraded", "avail=wedged", "served="} {
		if !strings.Contains(ref, wantStr) {
			t.Fatalf("reference report missing %q:\n%s", wantStr, ref)
		}
	}
	legs := map[string]core.SweepOptions{
		"fresh-w4":        {Workers: 4},
		"snapshot-cow-w1": {Workers: 1, Snapshot: true},
		"snapshot-cow-w4": {Workers: 4, Snapshot: true},
		"snapshot-flat":   {Workers: 2, Snapshot: true, FlatRestore: true},
		"snapshot-nomemo": {Workers: 4, Snapshot: true, NoMemo: true},
		"snapshot-memo-1": {Workers: 2, Snapshot: true, MemoBudget: 1},
	}
	for name, opts := range legs {
		if got := run(opts); got != ref {
			t.Errorf("%s report diverged from fresh single-worker reference:\n--- ref\n%s\n--- %s\n%s",
				name, ref, name, got)
		}
	}
}

// TestAvailabilityMultiProcessServer runs the fault matrix against the
// multi-process httpd: the master fans requests out to pipe workers,
// and a one-shot worker read error rides the failover path.
func TestAvailabilityMultiProcessServer(t *testing.T) {
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
		},
	}}
	exps := core.AvailabilityExperiments(set, apps.AvailAfter)
	res, err := core.RunExperiments(availCfg(t, "httpd-mp", "httpdw"), exps, 0,
		core.SweepOptions{Workers: 4, Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]core.AvailClass{}
	for _, e := range res.Entries {
		key := e.Fault
		if key == "" {
			key = "errno"
		}
		got[key] = e.Avail
	}
	// A one-shot open failure inside one worker 404s a single request
	// and the service carries on: lost (dropped then restored) — the
	// worker keeps serving, so nothing stays degraded.
	if c := got["errno"]; c != core.AvailRecovered && c != core.AvailLost && c != core.AvailDegraded {
		t.Errorf("httpd-mp errno = %s, want a serving class", c)
	}
	// Persistent disk exhaustion cannot fail reads of existing files:
	// the static corpus keeps serving.
	if c := got["exhaust=disk:after=0"]; c == core.AvailCrashed || c == core.AvailWedged {
		t.Errorf("httpd-mp disk exhaustion = %s, want a serving class", c)
	}
	// A worker open stalled past the budget wedges the request path.
	if c := got["delay=200000000"]; c != core.AvailWedged {
		t.Errorf("httpd-mp wedge delay = %s, want %s", c, core.AvailWedged)
	}
}
