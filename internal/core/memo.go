package core

import (
	"container/list"
	"fmt"
	"sync"

	"lfi/internal/controller"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// Trigger-point snapshot memoization: the prefix-sharing layer of the
// snapshot executor.
//
// Every experiment of an exhaustive functions × errnos sweep replays
// the same deterministic prefix from the entry point up to the call its
// fault first becomes fireable at — all E errno variants of one
// (function, call-N) cell pay that prefix E times. The memoizer groups
// experiments by their static first-fire site (scenario.FirstFireSite),
// runs the prefix once per group to just before the site
// (vm.System.RunBreak), freezes guest + controller state as a
// mid-execution vm.Snapshot plus controller.Checkpoint, and restores
// every group member from the pair. Determinism makes this exact:
// same-site plans evaluate calls 1..N-1 identically (same per-call
// cycle charges, no injections, no random draws), so the restored runs
// are bit-identical to unbroken ones and the rendered report matches
// the non-memoized sweep byte for byte (scripts/memocheck.sh).
//
// Cached prefixes live in a byte-budgeted LRU shared by all sweep
// workers; a first acquirer builds the entry while later members of the
// same group wait on its ready channel, and sealed entries evict
// least-recently-used first. Eviction is safe at any time: snapshots
// are immutable and waiters hold the entry pointer directly.

// DefaultMemoBudget caps the memo cache's resident snapshot bytes when
// SweepOptions.MemoBudget is zero.
const DefaultMemoBudget = 256 << 20

// memoKey identifies one shared-prefix group. Two plans with the same
// key have observably identical evaluation prefixes: the site fixes
// where execution stops, and the per-function trigger count fixes the
// per-call cycle charge (10 + 2*scanned) every earlier intercepted
// call to fn pays.
type memoKey struct {
	fn    string
	call  int32
	ntrig int
}

// memoEntry is one cached prefix. The builder fills exactly one of
// snap+ckpt (the site was reached), term (the prefix terminated first —
// every member's run IS the prefix run) or failed, then seals the entry
// and closes ready; all fields are immutable afterwards.
type memoEntry struct {
	key   memoKey
	ready chan struct{}
	elem  *list.Element

	snap   *vm.Snapshot
	ckpt   *controller.Checkpoint
	term   *Report
	size   int64
	failed bool
	sealed bool
}

// MemoStats summarises the prefix-memoization work of one sweep —
// the memo-hit/group-size numbers `lfi sweep` and `lfi-bench` report.
type MemoStats struct {
	// Groups is the number of first-fire-site groups with at least two
	// members in the plan; MaxGroup is the largest group's size.
	Groups   int
	MaxGroup int
	// Prefixes counts prefix runs executed (rebuilds after eviction
	// included); Restored counts experiments completed from a cached
	// mid-execution snapshot; Terminal counts experiments served whole
	// from a prefix that terminated before its site.
	Prefixes int
	Restored int
	Terminal int
	// Singletons are memoizable experiments alone at their site (run in
	// full — a prefix would amortise over nothing); Unmemoizable are
	// experiments with no deterministic first-fire site; Fallbacks are
	// group members that ran in full because their prefix failed to
	// build.
	Singletons   int
	Unmemoizable int
	Fallbacks    int
	// Evictions counts cache entries evicted by the byte budget;
	// PeakBytes is the cache's high-water resident footprint.
	Evictions int
	PeakBytes int64
}

// String renders the stats as the single diagnostic line `lfi sweep`
// and `lfi-bench` print to stderr (never stdout — the rendered report
// must stay byte-identical to a non-memoized sweep's).
func (s *MemoStats) String() string {
	return fmt.Sprintf("memo: groups=%d max-group=%d prefixes=%d restored=%d terminal=%d singletons=%d unmemoizable=%d fallbacks=%d evictions=%d peak-bytes=%d",
		s.Groups, s.MaxGroup, s.Prefixes, s.Restored, s.Terminal,
		s.Singletons, s.Unmemoizable, s.Fallbacks, s.Evictions, s.PeakBytes)
}

// memoCache is the sweep-wide prefix store, shared by all workers.
type memoCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[memoKey]*memoEntry
	lru     *list.List // front = most recently used
	stats   MemoStats
	// sizes maps each memoizable site to its member count in the plan,
	// precomputed before the sweep starts and read-only after.
	sizes map[memoKey]int
}

func newMemoCache(budget int64) *memoCache {
	if budget <= 0 {
		budget = DefaultMemoBudget
	}
	return &memoCache{
		budget:  budget,
		entries: make(map[memoKey]*memoEntry),
		lru:     list.New(),
		sizes:   make(map[memoKey]int),
	}
}

// plan registers the experiment list's memoizable sites so groupSize
// can tell amortisable groups from singletons, and derives the static
// group stats. Called once, before any worker runs.
func (c *memoCache) plan(exps []Experiment) {
	for i := range exps {
		cp := exps[i].Compiled
		if cp == nil {
			continue
		}
		site, reason := cp.FirstFireSite()
		if reason != "" {
			continue
		}
		c.sizes[memoKey{fn: site.Function, call: site.Call, ntrig: cp.TriggerCount(site.Function)}]++
	}
	for _, n := range c.sizes {
		if n >= 2 {
			c.stats.Groups++
		}
		if n > c.stats.MaxGroup {
			c.stats.MaxGroup = n
		}
	}
}

// groupSize returns how many plan experiments share the site.
func (c *memoCache) groupSize(key memoKey) int { return c.sizes[key] }

// acquire returns the cache entry for key and whether the caller must
// build it. A non-building caller waits on entry.ready before reading.
func (c *memoCache) acquire(key memoKey) (*memoEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		return e, false
	}
	e := &memoEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.stats.Prefixes++
	return e, true
}

// seal publishes a built entry: accounts its footprint, evicts
// least-recently-used sealed entries beyond the byte budget, and wakes
// waiters. The just-sealed entry itself is never evicted here, so a
// group always completes against the prefix it built even when a single
// snapshot exceeds the whole budget.
func (c *memoCache) seal(e *memoEntry) {
	c.mu.Lock()
	switch {
	case e.snap != nil:
		e.size = e.snap.Footprint()
	default:
		e.size = 1024 // terminal or failed: the entry itself
	}
	e.sealed = true
	c.used += e.size
	if c.used > c.stats.PeakBytes {
		c.stats.PeakBytes = c.used
	}
	for c.used > c.budget {
		var victim *memoEntry
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			v := el.Value.(*memoEntry)
			if v.sealed && v != e {
				victim = v
				break
			}
		}
		if victim == nil {
			break
		}
		c.lru.Remove(victim.elem)
		delete(c.entries, victim.key)
		c.used -= victim.size
		c.stats.Evictions++
	}
	c.mu.Unlock()
	close(e.ready)
}

// note runs a stats mutation under the cache lock.
func (c *memoCache) note(f func(*MemoStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// statsSnapshot copies the final counters out for SweepResult.Memo.
func (c *memoCache) statsSnapshot() *MemoStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	return &st
}

// runMemo executes one group member through the prefix cache: restore
// the group's mid-execution snapshot (building it first if this member
// arrives before anyone else), seed a thin controller with the
// checkpointed evaluator state and log prefix, and run only the suffix.
// The served flag is true when the entry came from a terminated prefix
// without executing anything member-specific.
func (r *snapshotRunner) runMemo(exp Experiment, key memoKey, base *Report, budget uint64) (SweepEntry, *Report, bool, error) {
	entry := exp.entry()
	e, build := r.memo.acquire(key)
	if build {
		r.buildPrefix(e, exp.Compiled, key, budget)
	} else {
		<-e.ready
	}
	switch {
	case e.failed:
		// The prefix could not be built (or violated the no-pre-site-
		// injection invariant): run this member in full, like a
		// non-memoized sweep would.
		r.memo.note(func(s *MemoStats) { s.Fallbacks++ })
		entry, rep, err := r.runPlain(exp, base, budget)
		return entry, rep, false, err
	case e.term != nil:
		// The prefix terminated before the site with no injection, so
		// every member's run is identical to it: serve the shared report.
		r.memo.note(func(s *MemoStats) { s.Terminal++ })
		entry.classify(e.term, base, r.cfg.Avail)
		return entry, e.term, true, nil
	}
	sys := e.snap.Restore()
	ctl := controller.NewWithStubs(r.stubs, exp.Compiled)
	ctl.SeedCheckpoint(e.ckpt)
	if err := ctl.Install(sys); err != nil {
		return entry, nil, false, err
	}
	err := sys.Run(budget) // absolute budget: TotalCycles carries over the prefix
	rep, rerr := assembleReport(err, sys, ctl, r.cfg.Avail)
	if r.cfg.VM.Coverage {
		rep.Coverage = coveredInsts(sys)
	}
	if rerr != nil {
		return entry, nil, false, rerr
	}
	r.memo.note(func(s *MemoStats) { s.Restored++ })
	entry.classify(rep, base, r.cfg.Avail)
	return entry, rep, false, nil
}

// buildPrefix runs the shared prefix for one group: restore the entry
// snapshot, bind the building member's faultload (any member works —
// same-key plans evaluate the prefix identically), run to just before
// the site's call, and freeze guest + controller state. When the guest
// terminates (or exhausts the budget, or deadlocks) before ever
// reaching the site, the completed run itself is the result for every
// member — provided nothing was injected, which the analyzer
// guarantees and this defensively re-checks.
func (r *snapshotRunner) buildPrefix(e *memoEntry, cp *scenario.CompiledPlan, key memoKey, budget uint64) {
	defer r.memo.seal(e)
	va, ok := r.stubVAs[key.fn]
	if !ok {
		e.failed = true
		return
	}
	sys := r.snap.Restore()
	ctl := controller.NewWithStubs(r.stubs, cp)
	if err := ctl.Install(sys); err != nil {
		e.failed = true
		return
	}
	hit, err := sys.RunBreak(va, key.call, budget)
	if len(ctl.Log()) > 0 {
		// An injection before the site contradicts FirstFireSite; never
		// share such a prefix.
		e.failed = true
		return
	}
	if !hit {
		rep, rerr := assembleReport(err, sys, ctl, r.cfg.Avail)
		if rerr != nil {
			e.failed = true
			return
		}
		if r.cfg.VM.Coverage {
			rep.Coverage = coveredInsts(sys)
		}
		e.term = rep
		return
	}
	snap, serr := sys.Snapshot()
	if serr != nil {
		e.failed = true
		return
	}
	e.snap = snap
	e.ckpt = ctl.Checkpoint()
}
