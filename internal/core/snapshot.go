package core

import (
	"fmt"

	"lfi/internal/controller"
	"lfi/internal/isa"
	"lfi/internal/obj"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// snapshotRunner is the fork-server campaign executor. It pays the full
// load pipeline once — program registration, kernel files, stub
// synthesis for the union of every function the sweep intercepts, spawn
// (text copy, relocation, decode, symbol maps) — and freezes the result
// as a vm.Snapshot. Each experiment, and the baseline, then restores
// from the snapshot in O(writable bytes) and binds only its own
// compiled faultload to the shared stub surface.
//
// A runner is immutable after construction and safe for concurrent use
// by any number of sweep workers: the snapshot, stub set and
// pass-through plan are shared read-only, and every run owns a private
// restored System plus a thin controller (evaluators and log).
type snapshotRunner struct {
	cfg      CampaignConfig
	snap     *vm.Snapshot
	stubs    *controller.StubSet
	passthru *scenario.CompiledPlan // empty plan: the baseline's faultload
	// stubVAs maps each intercepted function to its stub entry address
	// in the template — the breakpoint targets of prefix memoization.
	stubVAs map[string]uint32
	// memo, when non-nil, is the sweep-wide prefix cache (memo.go);
	// nil runs every experiment in full.
	memo *memoCache
}

// sweepFunctions is the union of every function the sweep's faultloads
// intercept — the snapshot template's stub surface.
func sweepFunctions(exps []Experiment) []string {
	var fns []string
	for i := range exps {
		fns = append(fns, experimentFunctions(&exps[i])...)
	}
	return fns
}

// newSnapshotRunner builds the template system for a sweep and
// snapshots it at the post-load entry point. fns must be non-empty
// (RunExperiments falls back to the fresh executor otherwise — with
// nothing to intercept there is nothing a snapshot would amortise).
func newSnapshotRunner(cfg CampaignConfig, fns []string) (*snapshotRunner, error) {
	stubs, err := controller.NewStubSet(fns)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot sweep: %w", err)
	}
	sys := vm.NewSystem(cfg.VM)
	for _, f := range cfg.Programs {
		sys.Register(f)
	}
	for path, data := range cfg.Files {
		sys.Kernel().AddFile(path, data)
	}
	stubs.InstallTemplate(sys)
	proc, err := sys.Spawn(cfg.Executable, vm.SpawnConfig{Preload: stubs.PreloadList()})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	stubVAs := make(map[string]uint32)
	if im, ok := proc.ImageByName(controller.StubLibName); ok {
		for _, fn := range stubs.Functions() {
			if va, ok := im.SymbolVA(fn); ok {
				stubVAs[fn] = va
			}
		}
	}
	return &snapshotRunner{
		cfg:      cfg,
		snap:     snap,
		stubs:    stubs,
		passthru: scenario.MustCompile(&scenario.Plan{}, nil),
		stubVAs:  stubVAs,
	}, nil
}

// experimentFunctions lists the functions an experiment's faultload
// intercepts.
func experimentFunctions(exp *Experiment) []string {
	switch {
	case exp.Compiled != nil:
		return exp.Compiled.Functions()
	case exp.Plan != nil:
		return exp.Plan.Functions()
	}
	return nil
}

// exec restores one run from the snapshot, binds the faultload and
// executes it to completion under the budget.
func (r *snapshotRunner) exec(cp *scenario.CompiledPlan, budget uint64) (*Report, error) {
	sys := r.snap.Restore()
	// PassThrough stays false, mirroring runExperiment's explicit clear:
	// sweep experiments always activate their faults on both executors.
	ctl := controller.NewWithStubs(r.stubs, cp)
	if err := ctl.Install(sys); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	err := sys.Run(budget) // sequenced: status/cycles are read post-run
	rep, rerr := assembleReport(err, sys, ctl, r.cfg.Avail)
	if r.cfg.VM.Coverage {
		rep.Coverage = coveredInsts(sys)
	}
	return rep, rerr
}

// baseline runs the clean reference from the snapshot: the shared stub
// surface with an empty faultload is a pure pass-through, so the exit
// code matches a fresh uninstrumented spawn.
func (r *snapshotRunner) baseline(budget uint64) (*Report, error) {
	rep, err := r.exec(r.passthru, budget)
	if err != nil {
		return nil, err
	}
	if err := checkBaseline(rep, r.cfg.Avail); err != nil {
		return nil, err
	}
	return rep, nil
}

// run executes one experiment on the snapshot executor. Precompiled
// experiments whose faultload has a deterministic first-fire site
// shared with at least one other experiment go through the prefix memo
// cache (memo.go); everything else runs in full via runPlain. The
// served flag is true when the entry was satisfied without a
// member-specific run (terminated shared prefix).
func (r *snapshotRunner) run(exp Experiment, base *Report, budget uint64) (SweepEntry, *Report, bool, error) {
	if r.memo != nil && exp.Compiled != nil {
		site, reason := exp.Compiled.FirstFireSite()
		if reason == "" {
			key := memoKey{fn: site.Function, call: site.Call, ntrig: exp.Compiled.TriggerCount(site.Function)}
			if r.memo.groupSize(key) >= 2 {
				return r.runMemo(exp, key, base, budget)
			}
			r.memo.note(func(s *MemoStats) { s.Singletons++ })
		} else {
			r.memo.note(func(s *MemoStats) { s.Unmemoizable++ })
		}
	}
	entry, rep, err := r.runPlain(exp, base, budget)
	return entry, rep, false, err
}

// runPlain executes one experiment from the snapshot and classifies it
// — the restore-path twin of runExperiment, returning the run report
// for OnResult observers alongside the entry.
func (r *snapshotRunner) runPlain(exp Experiment, base *Report, budget uint64) (SweepEntry, *Report, error) {
	entry := exp.entry()
	cp := exp.Compiled
	switch {
	case cp != nil:
	case exp.Plan == nil:
		// The fresh path runs a plan-less experiment uninstrumented and
		// classifies it not-triggered; the pass-through surface is its
		// restore-side equivalent (no trigger can fire).
		cp = r.passthru
	default:
		var err error
		cp, err = scenario.Compile(exp.Plan, r.cfg.Profiles)
		if err != nil {
			return entry, nil, fmt.Errorf("core: %w", err)
		}
	}
	// Match the fresh path's contract: a supplied faultload with no
	// triggers is an error there (the per-experiment stub library would
	// be empty), so it must fail here too, in the same plan-order
	// position.
	if cp != r.passthru && len(cp.Functions()) == 0 {
		return entry, nil, fmt.Errorf("core: controller: %w", controller.ErrNoTriggers)
	}
	rep, err := r.exec(cp, budget)
	if err != nil {
		return entry, nil, err
	}
	entry.classify(rep, base, r.cfg.Avail)
	return entry, rep, nil
}

// baselineCoverage runs the clean baseline once with instruction
// coverage enabled and reports its exit code plus every exported
// function the run executed (in any process, in any loaded module).
// It feeds baseline-informed pruning: an experiment whose faultload
// only names functions outside this set can never fire, because the
// deterministic VM replays the baseline exactly until a fault changes
// control flow.
func baselineCoverage(cfg CampaignConfig, budget uint64) (*Report, map[string]bool, error) {
	covCfg := cfg
	covCfg.Plan = nil
	covCfg.Compiled = nil
	covCfg.VM.Coverage = true
	c, err := NewCampaign(covCfg)
	if err != nil {
		return nil, nil, err
	}
	rep, err := c.Run(budget)
	if err != nil {
		return nil, nil, err
	}
	if err := checkBaseline(rep, cfg.Avail); err != nil {
		return nil, nil, err
	}
	called := make(map[string]bool)
	for _, p := range c.System().Procs() {
		for _, im := range p.Images {
			for _, sym := range im.File.Symbols {
				if sym.Kind != obj.SymFunc || !sym.Exported || called[sym.Name] {
					continue
				}
				for off := sym.Off; off < sym.Off+sym.Size; off += isa.Size {
					if im.Covered(off) {
						called[sym.Name] = true
						break
					}
				}
			}
		}
	}
	return rep, called, nil
}

// pruneEntry short-circuits an experiment the baseline proves inert:
// if none of its faultload's functions were executed by the clean run,
// the experiment replays the baseline exactly — terminating with the
// baseline exit code and an empty injection log — so its entry can be
// synthesised without spawning a run. Experiments with a missing,
// empty or uncompilable faultload are never pruned; the executor
// surfaces their outcomes and errors in plan order, exactly as without
// pruning.
func pruneEntry(exp *Experiment, called map[string]bool, base *Report, avail *AvailSpec) (SweepEntry, bool) {
	fns := experimentFunctions(exp)
	if len(fns) == 0 {
		return SweepEntry{}, false
	}
	for _, fn := range fns {
		if called[fn] {
			return SweepEntry{}, false
		}
	}
	// A plan the executor would reject must still abort the sweep —
	// pruning skips work, never validation.
	if exp.Compiled == nil && exp.Plan.Validate() != nil {
		return SweepEntry{}, false
	}
	entry := exp.entry()
	entry.Outcome = OutcomeNotTriggered
	entry.ExitCode = base.Status.Code
	if avail != nil && base.Avail != nil {
		// The run would replay the baseline exactly, so the synthesised
		// availability row is the baseline classified against itself.
		entry.Avail = ClassifyAvail(base, base, avail.latencyPct())
		entry.AvailBefore = base.Avail.WarmOK
		entry.AvailDuring = base.Avail.SteadyOK
		entry.AvailAfter = base.Avail.PostOK
	}
	return entry, true
}
