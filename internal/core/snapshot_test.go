package core_test

import (
	"strings"
	"testing"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/scenario"
)

// TestSweepSnapshotIdentical is the acceptance bar for the fork-server
// runtime: at 1, 4 and 8 workers the snapshot-restore sweep renders a
// byte-identical SweepResult to the fresh-spawn sweep.
func TestSweepSnapshotIdentical(t *testing.T) {
	cfg, set := mixedTarget(t)
	fresh, err := core.Sweep(cfg, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Render()
	if !strings.Contains(want, "crash") || !strings.Contains(want, "not-triggered") {
		t.Fatalf("target does not cover enough outcomes:\n%s", want)
	}
	for _, workers := range []int{1, 4, 8} {
		snap, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
			core.SweepOptions{Workers: workers, Snapshot: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := snap.Render(); got != want {
			t.Errorf("workers=%d snapshot report differs from fresh-spawn:\n--- fresh ---\n%s--- snapshot ---\n%s",
				workers, want, got)
		}
	}
}

// TestSweepFlatRestoreIdentical pins the copy-on-write restore to the
// flat deep-copy restore at the report level: for every worker count,
// CoW (the default), FlatRestore and fresh-spawn sweeps all render the
// same bytes. Only the per-experiment cost may differ.
func TestSweepFlatRestoreIdentical(t *testing.T) {
	cfg, set := mixedTarget(t)
	fresh, err := core.Sweep(cfg, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Render()
	for _, workers := range []int{1, 4, 8} {
		for _, flat := range []bool{false, true} {
			got, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
				core.SweepOptions{Workers: workers, Snapshot: true, FlatRestore: flat})
			if err != nil {
				t.Fatalf("workers=%d flat=%v: %v", workers, flat, err)
			}
			if r := got.Render(); r != want {
				t.Errorf("workers=%d flat=%v report differs from fresh-spawn:\n--- fresh ---\n%s--- snapshot ---\n%s",
					workers, flat, want, r)
			}
		}
	}
}

// TestSweepSnapshotEarlyStop: -max-crashes semantics must hold under
// the snapshot runtime too, truncating at the same plan-order entry.
func TestSweepSnapshotEarlyStop(t *testing.T) {
	cfg, set := mixedTarget(t)
	fresh, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 1, MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Render()
	for _, workers := range []int{1, 4, 8} {
		snap, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
			core.SweepOptions{Workers: workers, MaxCrashes: 1, Snapshot: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := snap.Render(); got != want {
			t.Errorf("workers=%d early-stopped snapshot report differs:\n--- fresh ---\n%s--- snapshot ---\n%s",
				workers, want, got)
		}
	}
}

// TestSweepSnapshotSeededRandom: seeded random faultloads must draw the
// same error codes under restore as under fresh spawn — the evaluator's
// stream derives from Plan.Seed, never from the runtime.
func TestSweepSnapshotSeededRandom(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	for seed := int64(1); seed <= 5; seed++ {
		exps = append(exps, core.Experiment{
			Library:  libc.Name,
			Function: "read",
			Retval:   -1,
			Plan: &scenario.Plan{Seed: seed, Triggers: []scenario.Trigger{{
				Function: "read", Probability: 60, Random: true,
			}}},
		})
	}
	cfg.Profiles = set // random triggers draw candidates from the profiles
	fresh, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Render()
	for _, workers := range []int{1, 4, 8} {
		snap, err := core.RunExperiments(cfg, exps, 0,
			core.SweepOptions{Workers: workers, Snapshot: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := snap.Render(); got != want {
			t.Errorf("workers=%d seeded-random snapshot report differs:\n--- fresh ---\n%s--- snapshot ---\n%s",
				workers, want, got)
		}
	}
}

// TestSweepSnapshotPropagatesError: a broken experiment (empty
// faultload) must abort a snapshot sweep exactly as it aborts a fresh
// one, and an earlier plan-order crash threshold must still win.
func TestSweepSnapshotPropagatesError(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	exps = append(exps[:2:2], core.Experiment{
		Library: libc.Name, Function: "open", Retval: -1,
		Plan: &scenario.Plan{},
	})
	for _, workers := range []int{1, 4} {
		_, err := core.RunExperiments(cfg, exps, 0,
			core.SweepOptions{Workers: workers, Snapshot: true})
		if err == nil {
			t.Errorf("workers=%d: expected error from empty plan", workers)
		}
	}
}

// TestSweepSnapshotExecutorParityEdges: degenerate inputs must render
// identically on both executors — an empty experiment matrix (nothing
// to intercept, so nothing to snapshot) and an experiment with no
// faultload at all (runs uninstrumented, classifies not-triggered).
func TestSweepSnapshotExecutorParityEdges(t *testing.T) {
	cfg, set := mixedTarget(t)
	for name, exps := range map[string][]core.Experiment{
		"empty-matrix": nil,
		"nil-faultload": append(core.PlanExperiments(set), core.Experiment{
			Library: libc.Name, Function: "read", Retval: -42,
		}),
		// Every experiment lacks a faultload: the union stub surface is
		// empty, so the snapshot executor must fall back rather than
		// fail stub synthesis.
		"all-nil-faultloads": {
			{Library: libc.Name, Function: "read", Retval: -1},
			{Library: libc.Name, Function: "open", Retval: -1},
		},
	} {
		fresh, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%s fresh: %v", name, err)
		}
		snap, err := core.RunExperiments(cfg, exps, 0,
			core.SweepOptions{Workers: 2, Snapshot: true})
		if err != nil {
			t.Fatalf("%s snapshot: %v", name, err)
		}
		if fresh.Render() != snap.Render() {
			t.Errorf("%s: executors disagree:\n--- fresh ---\n%s--- snapshot ---\n%s",
				name, fresh.Render(), snap.Render())
		}
	}
}

// TestSweepPruneUncalledIdentical: baseline-informed pruning must not
// change the rendered report — it only skips runs the baseline proves
// inert (here: the write experiments; mixedApp never calls write).
func TestSweepPruneUncalledIdentical(t *testing.T) {
	cfg, set := mixedTarget(t)
	fresh, err := core.Sweep(cfg, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Render()
	if !strings.Contains(want, "not-triggered") {
		t.Fatalf("target has no prunable experiment:\n%s", want)
	}
	for _, opts := range []core.SweepOptions{
		{Workers: 1, PruneUncalled: true},
		{Workers: 4, PruneUncalled: true},
		{Workers: 4, PruneUncalled: true, Snapshot: true},
	} {
		res, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if got := res.Render(); got != want {
			t.Errorf("opts %+v: pruned report differs:\n--- unpruned ---\n%s--- pruned ---\n%s",
				opts, want, got)
		}
	}
}

// TestSweepPruneKeepsValidation: pruning skips work, never validation —
// an uncompilable faultload on a never-called function must abort the
// pruned sweep exactly as it aborts the unpruned one.
func TestSweepPruneKeepsValidation(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := append(core.PlanExperiments(set), core.Experiment{
		Library: libc.Name, Function: "write", Retval: -1,
		Plan: &scenario.Plan{Triggers: []scenario.Trigger{{
			Function: "write", Inject: 1, Retval: "zzz", // bad retval
		}}},
	})
	if _, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: 2}); err == nil {
		t.Fatal("unpruned sweep must reject the bad retval")
	}
	if _, err := core.RunExperiments(cfg, exps, 0,
		core.SweepOptions{Workers: 2, PruneUncalled: true}); err == nil {
		t.Error("pruned sweep silently swallowed the compile error")
	}
}

// TestSweepPruneSkipsWork proves pruning actually short-circuits: with
// every function pruned (workload that calls nothing the profiles
// name), the sweep must not spawn a single experiment campaign. We
// detect spawned runs through Progress entries that carry a non-zero
// signal or unexpected outcome — and, structurally, by the fact that
// an experiment with an unbuildable faultload is never executed.
func TestSweepPruneSkipsWork(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	// An experiment whose plan names a function the baseline never
	// calls, with a faultload that would fail compilation only if the
	// executor actually tried to build a campaign around it: a valid
	// plan but an unregistered trigger function. The fresh executor
	// happily runs it (not-triggered); the pruned executor must commit
	// it without running. Equality of the two reports is the proof.
	exps = append(exps, core.Experiment{
		Library: libc.Name, Function: "write", Retval: -77,
		Plan: &scenario.Plan{Triggers: []scenario.Trigger{{
			Function: "write", Inject: 1, Retval: "-77", Once: true,
		}}},
	})
	fresh, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := core.RunExperiments(cfg, exps, 0,
		core.SweepOptions{Workers: 2, PruneUncalled: true})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Render() != pruned.Render() {
		t.Errorf("pruned report differs:\n%s\nvs\n%s", fresh.Render(), pruned.Render())
	}
	last := pruned.Entries[len(pruned.Entries)-1]
	if last.Outcome != core.OutcomeNotTriggered || last.Retval != -77 {
		t.Errorf("appended prunable experiment misclassified: %+v", last)
	}
}
