package core_test

// Sweep-report differential for the VM execution engines: the block
// engine must render byte-identical robustness reports to the legacy
// step engine on both executors (fresh-spawn and snapshot), at 1/4/8
// workers, under -max-crashes early stops and seeded random faultloads.
// The instruction-level lockstep oracle lives in internal/vm; this is
// the campaign-level end of the same contract — outcome classification,
// cycle budgets and injection logs must be decision-for-decision
// identical.

import (
	"testing"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// engineReports runs the same experiment list under both engines and
// returns the rendered reports.
func engineReports(t *testing.T, exps []core.Experiment, opts core.SweepOptions) (step, block string) {
	t.Helper()
	run := func(engine string) string {
		cfg, _ := mixedTarget(t)
		cfg.VM.Engine = engine
		res, err := core.RunExperiments(cfg, exps, 0, opts)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		return res.Render()
	}
	return run(vm.EngineStep), run(vm.EngineBlock)
}

func TestSweepEngineDifferential(t *testing.T) {
	_, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	// Add seeded random faultloads: the probability draws derive from
	// the plan seed, so they too must classify identically.
	for seed := int64(1); seed <= 3; seed++ {
		exps = append(exps, core.Experiment{
			Library:  libc.Name,
			Function: "read",
			Retval:   -1,
			Plan: &scenario.Plan{Seed: seed, Triggers: []scenario.Trigger{{
				Function: "read", Probability: 60, Random: true,
			}}},
		})
	}
	for _, snapshot := range []bool{false, true} {
		for _, workers := range []int{1, 4, 8} {
			name := map[bool]string{false: "fresh", true: "snapshot"}[snapshot]
			t.Run(name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				step, block := engineReports(t, exps, core.SweepOptions{
					Workers: workers, Snapshot: snapshot,
				})
				if step != block {
					t.Errorf("reports differ:\n--- step ---\n%s--- block ---\n%s", step, block)
				}
			})
		}
	}
}

func TestSweepEngineDifferentialMaxCrashes(t *testing.T) {
	_, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	for _, snapshot := range []bool{false, true} {
		name := map[bool]string{false: "fresh", true: "snapshot"}[snapshot]
		t.Run(name, func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 4, 8} {
				step, block := engineReports(t, exps, core.SweepOptions{
					Workers: workers, Snapshot: snapshot, MaxCrashes: 1,
				})
				if step != block {
					t.Fatalf("workers=%d: early-stopped reports differ:\n--- step ---\n%s--- block ---\n%s",
						workers, step, block)
				}
				if want == "" {
					want = step
				} else if step != want {
					t.Fatalf("workers=%d: report varies with worker count", workers)
				}
			}
		})
	}
}

// TestSweepEngineCycleParity pins the strictest observable: per-run
// virtual cycle counts (what <cycles> windows, ErrBudget hangs and the
// profiler's charging key on) must match exactly, not just outcomes.
func TestSweepEngineCycleParity(t *testing.T) {
	cfg, _ := mixedTarget(t)
	run := func(engine string) (uint64, int32) {
		runCfg := cfg
		runCfg.VM.Engine = engine
		runCfg.Plan = &scenario.Plan{Triggers: []scenario.Trigger{{
			Function: "read", Inject: 1, Retval: "-1", Errno: "EIO",
		}}}
		c, err := core.NewCampaign(runCfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles, rep.Status.Code
	}
	sc, scode := run(vm.EngineStep)
	bc, bcode := run(vm.EngineBlock)
	if sc != bc || scode != bcode {
		t.Errorf("step (cycles=%d exit=%d) != block (cycles=%d exit=%d)", sc, scode, bc, bcode)
	}
	if sc == 0 {
		t.Error("no cycles recorded")
	}
}
