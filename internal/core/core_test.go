package core_test

import (
	"testing"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

const appSrc = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  byte *p;
  fd = open("/data", 0, 0);
  if (fd < 0) { return 10 + errno; }
  close(fd);
  p = malloc(32);
  if (p == 0) { return 70; }
  return 0;
}
`

func buildWorld(t *testing.T) (*obj.File, *obj.File) {
	t.Helper()
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", appSrc, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	return lc, app
}

func TestProfileApplicationWalk(t *testing.T) {
	lc, app := buildWorld(t)
	l := core.New(core.Options{Heuristics: true})
	if err := l.AddKernelImage(); err != nil {
		t.Fatal(err)
	}
	if err := l.AddLibrary(lc); err != nil {
		t.Fatal(err)
	}
	if err := l.AddLibrary(app); err != nil {
		t.Fatal(err)
	}
	set, err := l.ProfileApplication("app")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := set[libc.Name]
	if !ok {
		t.Fatal("libc not profiled via needed-walk")
	}
	if _, ok := p.Lookup("open"); !ok {
		t.Error("open missing from profile")
	}
	if l.Stats().FunctionsAnalyzed == 0 {
		t.Error("stats not recorded")
	}
}

func TestCampaignCleanRun(t *testing.T) {
	lc, app := buildWorld(t)
	c, err := core.NewCampaign(core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
		Files:      map[string][]byte{"/data": []byte("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status.Code != 0 || rep.Status.Signal != 0 || rep.Deadlocked {
		t.Errorf("report = %+v", rep)
	}
	if len(rep.Injections) != 0 || rep.ReplayPlan != nil {
		t.Error("clean run should have no injection artifacts")
	}
	if rep.Cycles == 0 {
		t.Error("cycles not accounted")
	}
}

func TestCampaignWithInjection(t *testing.T) {
	lc, app := buildWorld(t)
	l := core.New(core.Options{Heuristics: true})
	if err := l.AddKernelImage(); err != nil {
		t.Fatal(err)
	}
	if err := l.AddLibrary(lc); err != nil {
		t.Fatal(err)
	}
	if err := l.AddLibrary(app); err != nil {
		t.Fatal(err)
	}
	set, err := l.ProfileApplication("app")
	if err != nil {
		t.Fatal(err)
	}
	plan := &scenario.Plan{Triggers: []scenario.Trigger{{
		Function: "open", Inject: 1, Retval: "-1", Errno: "EACCES",
	}}}
	c, err := core.NewCampaign(core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
		Profiles:   set,
		Plan:       plan,
		Files:      map[string][]byte{"/data": []byte("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// 10 + EACCES(13) = 23.
	if rep.Status.Code != 23 {
		t.Errorf("code = %d, want 23 (EACCES surfaced)", rep.Status.Code)
	}
	if len(rep.Injections) != 1 || rep.ReplayPlan == nil || len(rep.ReplayPlan.Triggers) != 1 {
		t.Errorf("injections = %+v", rep.Injections)
	}

	// Replaying the generated plan reproduces the exit code.
	c2, err := core.NewCampaign(core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
		Profiles:   set,
		Plan:       rep.ReplayPlan,
		Files:      map[string][]byte{"/data": []byte("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := c2.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Status != rep.Status {
		t.Errorf("replay status %+v != original %+v", rep2.Status, rep.Status)
	}
}

func TestCampaignPassThroughMode(t *testing.T) {
	lc, app := buildWorld(t)
	plan := &scenario.Plan{Triggers: []scenario.Trigger{{
		Function: "open", Inject: 1, Retval: "-1", Errno: "EIO",
	}}}
	c, err := core.NewCampaign(core.CampaignConfig{
		Programs:    []*obj.File{lc, app},
		Executable:  "app",
		Plan:        plan,
		PassThrough: true,
		Files:       map[string][]byte{"/data": []byte("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Trigger evaluated and logged, but the call went through.
	if rep.Status.Code != 0 {
		t.Errorf("pass-through run code = %d", rep.Status.Code)
	}
	if len(rep.Injections) != 1 || !rep.Injections[0].CallOrig {
		t.Errorf("injections = %+v", rep.Injections)
	}
}

func TestCampaignErrors(t *testing.T) {
	lc, _ := buildWorld(t)
	if _, err := core.NewCampaign(core.CampaignConfig{
		Programs:   []*obj.File{lc},
		Executable: "missing",
	}); err == nil {
		t.Error("spawn of unknown executable must fail")
	}
	if _, err := core.NewCampaign(core.CampaignConfig{
		Programs:   []*obj.File{lc},
		Executable: "app",
		Plan:       &scenario.Plan{}, // no triggers
	}); err == nil {
		t.Error("empty plan must fail stub synthesis")
	}
	_ = vm.Options{}
}
