// Package profile defines the library fault profile — the output of the
// LFI profiler (§3.3) and the input of the LFI controller (§5).
//
// A fault profile lists, for every exported function of a library, the
// possible error return values and the side effects associated with each
// value. The serialisation is the paper's XML format:
//
//	<profile library="libc.so">
//	  <function name="close">
//	    <error-codes retval="-1">
//	      <side-effect type="TLS" module="libc.so" offset="0" op="neg">-9</side-effect>
//	      ...
//	    </error-codes>
//	  </function>
//	</profile>
//
// Side-effect values are recorded exactly as the paper records them: the
// constant found by the propagation analysis (for the TLS errno channel
// this is the kernel's negative errno, e.g. -9; op="neg" tells the
// injector the stored value is its negation, i.e. errno = 9).
package profile

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// SideEffectType enumerates the paper's error side channels.
type SideEffectType string

// Side-effect channel names as they appear in profile XML.
const (
	SideEffectTLS      SideEffectType = "TLS"
	SideEffectGlobal   SideEffectType = "global"
	SideEffectArgument SideEffectType = "argument"
)

// SideEffect describes additional error information exposed alongside an
// error return value.
type SideEffect struct {
	Type SideEffectType `xml:"type,attr"`
	// Module and Offset locate the affected TLS/global slot.
	Module string `xml:"module,attr,omitempty"`
	Offset int32  `xml:"offset,attr"`
	// ArgIdx is the output-argument index for argument-type effects.
	ArgIdx int32 `xml:"arg,attr,omitempty"`
	// Op is "neg" when the injector must store the negation of Value
	// (the glibc errno = -eax pattern), empty for a direct store.
	Op string `xml:"op,attr,omitempty"`
	// Value is the propagated constant, rendered as element text.
	Value int32 `xml:",chardata"`
}

// Applied returns the concrete value the injector should store.
func (s SideEffect) Applied() int32 {
	if s.Op == "neg" {
		return -s.Value
	}
	return s.Value
}

// ErrorCode is one possible error return value with its side effects.
type ErrorCode struct {
	Retval      int32        `xml:"retval,attr"`
	SideEffects []SideEffect `xml:"side-effect"`
}

// Function is the fault profile of one exported function.
type Function struct {
	Name       string      `xml:"name,attr"`
	ErrorCodes []ErrorCode `xml:"error-codes"`
}

// Retvals returns the function's distinct error return values, sorted.
func (f *Function) Retvals() []int32 {
	out := make([]int32, 0, len(f.ErrorCodes))
	for _, ec := range f.ErrorCodes {
		out = append(out, ec.Retval)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Profile is the fault profile of one library.
type Profile struct {
	XMLName   xml.Name   `xml:"profile"`
	Library   string     `xml:"library,attr"`
	Functions []Function `xml:"function"`
}

// Lookup returns the profile of the named function.
func (p *Profile) Lookup(name string) (*Function, bool) {
	for i := range p.Functions {
		if p.Functions[i].Name == name {
			return &p.Functions[i], true
		}
	}
	return nil, false
}

// Sort orders functions by name and error codes by retval, making the
// profile deterministic for serialisation and diffing.
func (p *Profile) Sort() {
	sort.Slice(p.Functions, func(i, j int) bool {
		return p.Functions[i].Name < p.Functions[j].Name
	})
	for i := range p.Functions {
		ecs := p.Functions[i].ErrorCodes
		sort.Slice(ecs, func(a, b int) bool { return ecs[a].Retval < ecs[b].Retval })
		for j := range ecs {
			ses := ecs[j].SideEffects
			sort.Slice(ses, func(a, b int) bool {
				if ses[a].Type != ses[b].Type {
					return ses[a].Type < ses[b].Type
				}
				if ses[a].Offset != ses[b].Offset {
					return ses[a].Offset < ses[b].Offset
				}
				return ses[a].Value < ses[b].Value
			})
		}
	}
}

// Marshal renders the profile as indented XML.
func (p *Profile) Marshal() ([]byte, error) {
	p.Sort()
	b, err := xml.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("profile: marshal %s: %w", p.Library, err)
	}
	return append(b, '\n'), nil
}

// Unmarshal parses profile XML.
func Unmarshal(data []byte) (*Profile, error) {
	var p Profile
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("profile: unmarshal: %w", err)
	}
	return &p, nil
}

// String renders a compact human-readable summary for logs and tests.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s (%d functions)\n", p.Library, len(p.Functions))
	for _, f := range p.Functions {
		fmt.Fprintf(&b, "  %s:", f.Name)
		for _, ec := range f.ErrorCodes {
			fmt.Fprintf(&b, " %d", ec.Retval)
			if len(ec.SideEffects) > 0 {
				fmt.Fprintf(&b, "(%d se)", len(ec.SideEffects))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Set is a collection of profiles keyed by library name — what the
// controller receives for a multi-library injection experiment.
type Set map[string]*Profile

// Lookup finds the profile entry for libName.funcName.
func (s Set) Lookup(libName, funcName string) (*Function, bool) {
	p, ok := s[libName]
	if !ok {
		return nil, false
	}
	return p.Lookup(funcName)
}

// FindFunction searches every profile for the named function, returning
// the owning library too (the interception mechanism is name-based, so
// function names are assumed unique across the profiled set, as with
// LD_PRELOAD interposition).
func (s Set) FindFunction(funcName string) (string, *Function, bool) {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if f, ok := s[n].Lookup(funcName); ok {
			return n, f, true
		}
	}
	return "", nil, false
}
