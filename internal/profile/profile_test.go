package profile

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleProfile() *Profile {
	return &Profile{
		Library: "libc.so",
		Functions: []Function{
			{Name: "close", ErrorCodes: []ErrorCode{{
				Retval: -1,
				SideEffects: []SideEffect{
					{Type: SideEffectTLS, Module: "libc.so", Offset: 0, Op: "neg", Value: -9},
					{Type: SideEffectTLS, Module: "libc.so", Offset: 0, Op: "neg", Value: -5},
					{Type: SideEffectTLS, Module: "libc.so", Offset: 0, Op: "neg", Value: -4},
				},
			}}},
			{Name: "alloc", ErrorCodes: []ErrorCode{{
				Retval:      0,
				SideEffects: []SideEffect{{Type: SideEffectTLS, Module: "libc.so", Value: 12}},
			}}},
			{Name: "probe", ErrorCodes: []ErrorCode{
				{Retval: -2},
				{Retval: -7, SideEffects: []SideEffect{
					{Type: SideEffectArgument, ArgIdx: 1, Value: 3},
				}},
			}},
		},
	}
}

func TestXMLMatchesPaperShape(t *testing.T) {
	p := sampleProfile()
	blob, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The §3.3 vocabulary: profile/function/error-codes/side-effect with
	// type and module attributes and the constant as element text.
	for _, want := range []string{
		`<profile library="libc.so">`,
		`<function name="close">`,
		`<error-codes retval="-1">`,
		`type="TLS"`, `module="libc.so"`, `op="neg"`, `>-9</side-effect>`,
	} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("XML missing %s:\n%s", want, blob)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p := sampleProfile()
	blob, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.Library != p.Library || len(q.Functions) != len(p.Functions) {
		t.Fatal("structure lost")
	}
	c, ok := q.Lookup("close")
	if !ok || len(c.ErrorCodes) != 1 || len(c.ErrorCodes[0].SideEffects) != 3 {
		t.Fatalf("close = %+v", c)
	}
	se := c.ErrorCodes[0].SideEffects[0]
	if se.Op != "neg" || se.Applied() != -se.Value {
		t.Errorf("side effect semantics lost: %+v", se)
	}
}

func TestApplied(t *testing.T) {
	if (SideEffect{Op: "neg", Value: -9}).Applied() != 9 {
		t.Error("neg application")
	}
	if (SideEffect{Value: 12}).Applied() != 12 {
		t.Error("direct application")
	}
}

func TestRetvalsSorted(t *testing.T) {
	f := Function{ErrorCodes: []ErrorCode{{Retval: 5}, {Retval: -3}, {Retval: 0}}}
	got := f.Retvals()
	if len(got) != 3 || got[0] != -3 || got[1] != 0 || got[2] != 5 {
		t.Errorf("retvals = %v", got)
	}
}

func TestSortDeterminism(t *testing.T) {
	a := sampleProfile()
	b := sampleProfile()
	// Shuffle b's function order.
	b.Functions[0], b.Functions[2] = b.Functions[2], b.Functions[0]
	ab, _ := a.Marshal()
	bb, _ := b.Marshal()
	if string(ab) != string(bb) {
		t.Error("Marshal must canonicalise ordering")
	}
}

func TestSetLookup(t *testing.T) {
	s := Set{"libc.so": sampleProfile()}
	if _, ok := s.Lookup("libc.so", "close"); !ok {
		t.Error("set lookup failed")
	}
	if _, ok := s.Lookup("nope.so", "close"); ok {
		t.Error("missing library should fail")
	}
	lib, f, ok := s.FindFunction("alloc")
	if !ok || lib != "libc.so" || f.Name != "alloc" {
		t.Errorf("FindFunction = %q %v %v", lib, f, ok)
	}
	if _, _, ok := s.FindFunction("missing"); ok {
		t.Error("missing function should fail")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("<<<not xml")); err == nil {
		t.Error("garbage should not unmarshal")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(retval int32, seVal int32, off int32, neg bool) bool {
		op := ""
		if neg {
			op = "neg"
		}
		p := &Profile{Library: "l", Functions: []Function{{
			Name: "f",
			ErrorCodes: []ErrorCode{{
				Retval: retval,
				SideEffects: []SideEffect{{
					Type: SideEffectTLS, Module: "l", Offset: off, Op: op, Value: seVal,
				}},
			}},
		}}}
		blob, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Unmarshal(blob)
		if err != nil {
			return false
		}
		fn, ok := q.Lookup("f")
		if !ok || len(fn.ErrorCodes) != 1 {
			return false
		}
		ec := fn.ErrorCodes[0]
		return ec.Retval == retval && len(ec.SideEffects) == 1 &&
			ec.SideEffects[0].Value == seVal && ec.SideEffects[0].Offset == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSummary(t *testing.T) {
	s := sampleProfile().String()
	if !strings.Contains(s, "close") || !strings.Contains(s, "3 se") {
		t.Errorf("summary = %q", s)
	}
}
