package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"lfi/internal/core"
	"lfi/internal/vm"
)

// ManifestFile is the campaign-identity file inside a store directory.
const ManifestFile = "manifest.json"

// Manifest pins a store to the campaign that filled it. Experiment keys
// identify faultloads, not targets: the same profile swept over two
// different binaries (or under two different budgets) produces matching
// keys with different truths, so without this check a -resume against
// the wrong store would silently assemble one target's report from
// another target's cached outcomes. Sweep writes the manifest on the
// store's first use and refuses a store whose manifest disagrees.
//
// The snapshot/fresh executor choice and the worker count are
// deliberately absent: both are byte-identical by contract, so records
// from either are interchangeable.
type Manifest struct {
	// Executable is the campaign's target program name.
	Executable string `json:"executable"`
	// ProgramsDigest hashes the encoded bytes of every program image
	// (executable and libraries), order-independent.
	ProgramsDigest string `json:"programs_digest"`
	// Engine is the VM execution engine the records were produced on.
	Engine string `json:"engine"`
	// Budget is the per-run cycle budget (normalised: 0 is recorded as
	// core.DefaultSweepBudget, matching the executor).
	Budget uint64 `json:"budget"`
}

// manifestFor derives the campaign identity the store must match.
func manifestFor(cfg core.CampaignConfig, budget uint64) Manifest {
	if budget == 0 {
		budget = core.DefaultSweepBudget
	}
	engine := cfg.VM.Engine
	if engine == "" {
		engine = vm.DefaultEngine
	}
	// Digest program images by name so registration order is identity-
	// irrelevant (it is load-order-relevant only per spawn, which the
	// executable's needs/preload lists pin independently).
	names := make([]string, 0, len(cfg.Programs))
	byName := make(map[string][]byte, len(cfg.Programs))
	for _, f := range cfg.Programs {
		names = append(names, f.Name)
		byName[f.Name] = f.Encode()
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
		h.Write(byName[n])
	}
	return Manifest{
		Executable:     cfg.Executable,
		ProgramsDigest: fmt.Sprintf("%016x", h.Sum64()),
		Engine:         engine,
		Budget:         budget,
	}
}

// EnsureManifest claims the store for the given campaign: on a fresh
// store the manifest is written; on an existing one it must match, or
// the store belongs to a different campaign and resuming from (or
// appending to) it would mix incompatible results.
func (s *Store) EnsureManifest(m Manifest) error {
	path := filepath.Join(s.dir, ManifestFile)
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		blob, merr := json.MarshalIndent(m, "", "  ")
		if merr != nil {
			return fmt.Errorf("campaign: %w", merr)
		}
		if werr := os.WriteFile(path, append(blob, '\n'), 0o644); werr != nil {
			return fmt.Errorf("campaign: %w", werr)
		}
		return nil
	case err != nil:
		return fmt.Errorf("campaign: %w", err)
	}
	var have Manifest
	if err := json.Unmarshal(data, &have); err != nil {
		return fmt.Errorf("campaign: %s: corrupt manifest: %v", path, err)
	}
	if have != m {
		return fmt.Errorf("campaign: store %s belongs to a different campaign: has %+v, this sweep is %+v (use a fresh -store directory)",
			s.dir, have, m)
	}
	return nil
}
