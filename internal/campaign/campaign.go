// Package campaign makes fault-injection sweeps durable and queryable:
// a persistent, append-only result store written live by sweep workers,
// resume filtering that skips completed experiments while rendering
// byte-identical reports, crash triage that dedups hundreds of crashing
// runs into ranked failure-site clusters, and an adaptive escalation
// planner that promotes single-fault survivors into pairwise
// multi-fault scenarios for a second round.
//
// The paper's workflow (§5–§6) is a campaign — sweep the fault space,
// log every injection, replay the interesting runs — but an ephemeral
// sweep forfeits most of that: reports vanish at process exit and every
// invocation re-runs the full plan. Here each completed experiment is
// appended to a JSONL store as its worker finishes (one self-contained
// record per line: canonical faultload key, outcome, exit status,
// injection-log digest, crash stack + hash, cycle/coverage summary),
// so a campaign killed anywhere resumes from exactly what it had:
//
//	store, _ := campaign.Open(dir)
//	defer store.Close()
//	res, _ := campaign.Sweep(cfg, exps, 0, core.SweepOptions{Workers: 8},
//	    store, true /* resume */)
//
// Resume serves completed keys from disk through the executor's Skip
// hook and runs only the remainder; because entries are reassembled in
// plan order regardless of origin, the resumed report is byte-identical
// to a fresh full sweep — on both executors, at any worker count, with
// -max-crashes early stops counting cached crashes in plan order.
//
// Triage then folds the store's crash records into clusters keyed by
// crash-stack hash (controller.StackHash) and ranked by reach — how
// many distinct faultloads arrive at the same failure site — and
// Escalate pairs up the survivors (injected but tolerated faults) into
// two-fault plans, opening the multi-fault scenario space proportional
// to what round one actually tolerated instead of the quadratic whole.
package campaign

import (
	"lfi/internal/core"
)

// Sweep is core.RunExperiments with campaign persistence: every freshly
// executed experiment is appended to the store as its worker completes,
// and with resume set, experiments whose canonical key the store
// already holds are served from disk instead of re-run. A nil store
// degrades to a plain sweep. The rendered report is byte-identical to a
// fresh full sweep either way.
//
// The store hooks compose with any Skip/OnResult already present in
// opts: caller hooks run after the store's (a caller Skip is consulted
// only for keys the store has not completed).
func Sweep(cfg core.CampaignConfig, exps []core.Experiment, budget uint64, opts core.SweepOptions, store *Store, resume bool) (*core.SweepResult, error) {
	if store != nil {
		// The store is pinned to one campaign identity (target binaries,
		// engine, budget): results recorded for a different one must not
		// be served or mixed in.
		if err := store.EnsureManifest(manifestFor(cfg, budget)); err != nil {
			return nil, err
		}
		if resume {
			done := store.Completed()
			callerSkip := opts.Skip
			opts.Skip = func(exp *core.Experiment) (core.SweepEntry, bool) {
				if rec, ok := done[exp.Key()]; ok {
					return rec.Entry(), true
				}
				if callerSkip != nil {
					return callerSkip(exp)
				}
				return core.SweepEntry{}, false
			}
		}
		callerOn := opts.OnResult
		opts.OnResult = func(exp *core.Experiment, entry core.SweepEntry, rep *core.Report) {
			store.Append(NewRecord(exp, entry, rep))
			if callerOn != nil {
				callerOn(exp, entry, rep)
			}
		}
	}
	res, err := core.RunExperiments(cfg, exps, budget, opts)
	if err != nil {
		return nil, err
	}
	if store != nil {
		if serr := store.Err(); serr != nil {
			return nil, serr
		}
	}
	return res, nil
}
