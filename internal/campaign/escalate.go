package campaign

import (
	"fmt"

	"lfi/internal/core"
	"lfi/internal/kernel"
	"lfi/internal/profile"
	"lfi/internal/scenario"
)

// DefaultMaxPairs caps an escalation round when the caller does not
// choose a budget: pairwise growth over survivors is quadratic, and the
// point of adaptive escalation is opening the multi-fault space
// proportionally to what round one tolerated, not exhaustively.
const DefaultMaxPairs = 64

// Survivors selects the escalation candidates from a completed round:
// experiments whose fault was actually injected (the workload reached
// the function) yet produced no outcome change — the program swallowed
// the fault and terminated exactly like the baseline. Those are the
// paper's untested recovery paths: each tolerated one fault alone, so
// the open question is whether it tolerates them in combination. The
// experiments must be the round's plan (their keys index into recs);
// survivors come back in plan order, which makes everything downstream
// deterministic.
func Survivors(exps []core.Experiment, recs map[string]Record) []core.Experiment {
	var out []core.Experiment
	for _, exp := range exps {
		rec, ok := recs[exp.Key()]
		if !ok {
			continue
		}
		if core.Outcome(rec.Outcome) == core.OutcomeHandled && rec.Injections > 0 {
			out = append(out, exp)
		}
	}
	return out
}

// Escalate mints the second sweep round from round-one survivors: every
// pair of survivors targeting distinct functions becomes one two-fault
// experiment whose faultload is the pairwise merge of the parents'
// plans (scenario.Pairwise) — both faults armed in a single run. Pairs
// are generated in survivor (plan) order and capped at maxPairs
// (<= 0: DefaultMaxPairs), so the escalation plan is deterministic and
// never explodes past its budget. set supplies profiles for
// pre-compiling the merged faultloads; experiments whose merge fails to
// compile keep a nil Compiled and surface the error when executed.
//
// The minted experiment's report coordinates name both parents with
// their full fault coordinates ("read(-1,EIO)+close(-1,EBADF)") under
// the first parent's library and retval, so every escalated report row
// is unambiguous even when two pairs differ only in an errno.
func Escalate(survivors []core.Experiment, set profile.Set, maxPairs int) []core.Experiment {
	if maxPairs <= 0 {
		maxPairs = DefaultMaxPairs
	}
	var out []core.Experiment
	for i := 0; i < len(survivors) && len(out) < maxPairs; i++ {
		for j := i + 1; j < len(survivors) && len(out) < maxPairs; j++ {
			a, b := &survivors[i], &survivors[j]
			if a.Function == b.Function {
				// Same-function pairs degenerate: both triggers guard the
				// same first call and only one can fire.
				continue
			}
			plan := scenario.Pairwise(experimentPlan(a), experimentPlan(b))
			exp := core.Experiment{
				Library:  a.Library,
				Function: pairLabel(a) + "+" + pairLabel(b),
				Retval:   a.Retval,
				Plan:     plan,
			}
			if cp, err := scenario.Compile(plan, set); err == nil {
				exp.Compiled = cp
			}
			out = append(out, exp)
		}
	}
	return out
}

// pairLabel renders one parent's fault coordinates for the pair row:
// function plus (retval), (retval,ERRNO), or the degradation label.
func pairLabel(exp *core.Experiment) string {
	if exp.Fault != "" {
		return fmt.Sprintf("%s(%s)", exp.Function, exp.Fault)
	}
	if !exp.HasErrno {
		return fmt.Sprintf("%s(%d)", exp.Function, exp.Retval)
	}
	name := kernel.ErrnoName(exp.Errno)
	if name == "" {
		name = fmt.Sprint(exp.Errno)
	}
	return fmt.Sprintf("%s(%d,%s)", exp.Function, exp.Retval, name)
}

// experimentPlan returns an experiment's faultload, preferring the
// source plan over the compiled form's backing plan.
func experimentPlan(exp *core.Experiment) *scenario.Plan {
	if exp.Plan != nil {
		return exp.Plan
	}
	if exp.Compiled != nil {
		return exp.Compiled.Plan()
	}
	return nil
}
