package campaign

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/core"
)

// Cluster is one distinct failure site: every crashing experiment whose
// crash backtrace hashes alike, ranked by how many distinct faultloads
// reach it. One cluster ≈ one bug; its Reach is how exposed that bug is
// to the fault space, which is what makes the ranking a triage order.
type Cluster struct {
	// StackHash identifies the failure site (controller.StackHash over
	// the crash backtrace); "unknown" groups crashes with no recorded
	// stack. Availability records prefix it with their class
	// ("wedged", "degraded+<hash>", ...) so service-level failure modes
	// cluster apart from each other and from plain crashes.
	StackHash string
	// Avail is the availability class shared by the cluster's members;
	// empty for plain crash clusters.
	Avail string
	// Audit is the caller-side audit class shared by the cluster's
	// members (empty when the campaign ran without an audit). Crashes of
	// statically unchecked targets cluster apart from surprises — a
	// crash the audit did not predict — so the surprises, the ones that
	// defeat the static lint, surface on their own.
	Audit string
	// CrashStack is the representative backtrace, innermost frame first
	// (taken from the lexicographically smallest member key, so it is
	// deterministic across runs).
	CrashStack []string
	// Reach counts the distinct faultloads (experiment keys) that crash
	// here.
	Reach int
	// Keys lists the member experiment keys, sorted.
	Keys []string
	// Members are the member records, in key order.
	Members []Record
}

// unknownCluster groups crash records that carry no stack to hash.
const unknownCluster = "unknown"

// triageHash maps one record to its cluster key. Plain crashes cluster
// by crash-stack hash. Availability records — runs classified by a
// traffic driver — cluster by (availability class, stack hash): every
// non-recovered class is a distinct service-level failure mode, and
// within the crashed class the stack hash still separates failure
// sites. Recovered availability runs and non-crash plain records do
// not cluster ("" = not a triage subject).
func triageHash(r Record) string {
	stack := r.StackHash
	if stack == "" {
		stack = unknownCluster
	}
	if r.Avail != "" {
		if core.AvailClass(r.Avail) == core.AvailRecovered {
			return ""
		}
		if r.StackHash != "" {
			return r.Avail + "+" + r.StackHash
		}
		return r.Avail
	}
	if core.Outcome(r.Outcome) != core.OutcomeCrash {
		return ""
	}
	// Audited campaigns split crash clusters by whether the static audit
	// predicted the failure: an unchecked call site crashing is the lint
	// confirmed, a checked/stored one crashing is a surprise worth its
	// own line at the top of the triage report.
	if r.AuditClass != "" {
		if core.AuditUnchecked(r.AuditClass) {
			return "predicted:" + stack
		}
		return "surprise:" + stack
	}
	return stack
}

// Triage dedups the store's crash and availability-failure records into
// clusters by triageHash. Input records are deduplicated by experiment
// key first (last record wins, matching the resume view), so re-running
// a campaign never inflates a cluster's reach. The result is fully
// deterministic: clusters sort by reach descending, then stack hash
// ascending, and members by key.
func Triage(recs []Record) []Cluster {
	latest := make(map[string]Record, len(recs))
	var order []string
	for _, r := range recs {
		if _, seen := latest[r.Key]; !seen {
			order = append(order, r.Key)
		}
		latest[r.Key] = r
	}
	byHash := make(map[string][]Record)
	for _, key := range order {
		r := latest[key]
		if h := triageHash(r); h != "" {
			byHash[h] = append(byHash[h], r)
		}
	}
	out := make([]Cluster, 0, len(byHash))
	for h, members := range byHash {
		sort.Slice(members, func(i, j int) bool { return members[i].Key < members[j].Key })
		c := Cluster{StackHash: h, Avail: members[0].Avail, Audit: members[0].AuditClass, Reach: len(members), Members: members}
		for _, m := range members {
			c.Keys = append(c.Keys, m.Key)
		}
		c.CrashStack = members[0].CrashStack
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reach != out[j].Reach {
			return out[i].Reach > out[j].Reach
		}
		return out[i].StackHash < out[j].StackHash
	})
	return out
}

// RenderClusters prints the triage report: one block per cluster, most
// reachable first.
func RenderClusters(clusters []Cluster) string {
	var b strings.Builder
	total := 0
	for _, c := range clusters {
		total += c.Reach
	}
	fmt.Fprintf(&b, "crash triage: %d failure(s) in %d cluster(s)\n", total, len(clusters))
	for i, c := range clusters {
		fmt.Fprintf(&b, "  cluster %d [%s] reach=%d\n", i+1, c.StackHash, c.Reach)
		if len(c.CrashStack) > 0 {
			fmt.Fprintf(&b, "    stack: %s\n", strings.Join(c.CrashStack, "<-"))
		}
		for _, m := range c.Members {
			fault := fmt.Sprintf("%s.%s -> %d", m.Library, m.Function, m.Retval)
			if m.Fault != "" {
				fault = fmt.Sprintf("%s.%s %s", m.Library, m.Function, m.Fault)
			}
			var line string
			if m.Avail != "" {
				line = fmt.Sprintf("    %-40s avail=%s served=%d/%d/%d",
					fault, m.Avail, m.AvailBefore, m.AvailDuring, m.AvailAfter)
			} else {
				line = fmt.Sprintf("    %-40s signal=%d", fault, m.Signal)
			}
			if m.AuditClass != "" {
				line += " audit=" + m.AuditClass
			}
			b.WriteString(line + "\n")
		}
	}
	return b.String()
}
