package campaign

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/core"
)

// Cluster is one distinct failure site: every crashing experiment whose
// crash backtrace hashes alike, ranked by how many distinct faultloads
// reach it. One cluster ≈ one bug; its Reach is how exposed that bug is
// to the fault space, which is what makes the ranking a triage order.
type Cluster struct {
	// StackHash identifies the failure site (controller.StackHash over
	// the crash backtrace); "unknown" groups crashes with no recorded
	// stack.
	StackHash string
	// CrashStack is the representative backtrace, innermost frame first
	// (taken from the lexicographically smallest member key, so it is
	// deterministic across runs).
	CrashStack []string
	// Reach counts the distinct faultloads (experiment keys) that crash
	// here.
	Reach int
	// Keys lists the member experiment keys, sorted.
	Keys []string
	// Members are the member records, in key order.
	Members []Record
}

// unknownCluster groups crash records that carry no stack to hash.
const unknownCluster = "unknown"

// Triage dedups the store's crash records into clusters by crash-stack
// hash. Input records are deduplicated by experiment key first (last
// record wins, matching the resume view), so re-running a campaign
// never inflates a cluster's reach. The result is fully deterministic:
// clusters sort by reach descending, then stack hash ascending, and
// members by key.
func Triage(recs []Record) []Cluster {
	latest := make(map[string]Record, len(recs))
	var order []string
	for _, r := range recs {
		if _, seen := latest[r.Key]; !seen {
			order = append(order, r.Key)
		}
		latest[r.Key] = r
	}
	byHash := make(map[string][]Record)
	for _, key := range order {
		r := latest[key]
		if core.Outcome(r.Outcome) != core.OutcomeCrash {
			continue
		}
		h := r.StackHash
		if h == "" {
			h = unknownCluster
		}
		byHash[h] = append(byHash[h], r)
	}
	out := make([]Cluster, 0, len(byHash))
	for h, members := range byHash {
		sort.Slice(members, func(i, j int) bool { return members[i].Key < members[j].Key })
		c := Cluster{StackHash: h, Reach: len(members), Members: members}
		for _, m := range members {
			c.Keys = append(c.Keys, m.Key)
		}
		c.CrashStack = members[0].CrashStack
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reach != out[j].Reach {
			return out[i].Reach > out[j].Reach
		}
		return out[i].StackHash < out[j].StackHash
	})
	return out
}

// RenderClusters prints the triage report: one block per cluster, most
// reachable first.
func RenderClusters(clusters []Cluster) string {
	var b strings.Builder
	total := 0
	for _, c := range clusters {
		total += c.Reach
	}
	fmt.Fprintf(&b, "crash triage: %d crash(es) in %d cluster(s)\n", total, len(clusters))
	for i, c := range clusters {
		fmt.Fprintf(&b, "  cluster %d [%s] reach=%d\n", i+1, c.StackHash, c.Reach)
		if len(c.CrashStack) > 0 {
			fmt.Fprintf(&b, "    stack: %s\n", strings.Join(c.CrashStack, "<-"))
		}
		for _, m := range c.Members {
			fault := fmt.Sprintf("%s.%s -> %d", m.Library, m.Function, m.Retval)
			fmt.Fprintf(&b, "    %-40s signal=%d\n", fault, m.Signal)
		}
	}
	return b.String()
}
