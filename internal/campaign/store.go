package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"lfi/internal/controller"
	"lfi/internal/core"
)

// StoreFile is the result file inside a store directory.
const StoreFile = "results.jsonl"

// Record is one persisted experiment result — a line of the store's
// JSONL file. It carries everything needed to (a) re-render the
// experiment's report row without re-running it (the resume path) and
// (b) triage the campaign offline: the injection-log digest for replay
// fidelity checks, the crash stack and its hash for clustering, and the
// cycle/coverage summary of the run.
type Record struct {
	// Key is the experiment's canonical identity (core.Experiment.Key):
	// report coordinates plus the faultload's canonical key. Resume
	// matches on it; the last record per key wins.
	Key string `json:"key"`

	// Report-row coordinates and outcome (core.SweepEntry).
	Library  string `json:"library"`
	Function string `json:"function"`
	Retval   int32  `json:"retval"`
	Errno    int32  `json:"errno,omitempty"`
	HasErrno bool   `json:"has_errno,omitempty"`
	// Fault is the degradation fault-model label (core.SweepEntry.Fault);
	// empty for error-return experiments, so pre-degradation stores
	// parse (and resume) unchanged.
	Fault    string `json:"fault,omitempty"`
	Outcome  string `json:"outcome"`
	ExitCode int32  `json:"exit_code"`
	Signal   int32  `json:"signal,omitempty"`

	// AuditClass is the caller-side audit classification of the target
	// function's most fragile call site (internal/audit), carried so
	// triage can separate statically predicted failures from surprises.
	// Empty when the sweep ran without an audit — pre-audit stores parse
	// (and resume) unchanged.
	AuditClass string `json:"audit_class,omitempty"`

	// Triage payload.
	Injections int      `json:"injections,omitempty"`
	LogDigest  string   `json:"log_digest,omitempty"`
	StackHash  string   `json:"stack_hash,omitempty"`
	CrashStack []string `json:"crash_stack,omitempty"`
	Cycles     uint64   `json:"cycles,omitempty"`
	Coverage   int      `json:"coverage,omitempty"`

	// Degradation payload: total injected latency, which resources were
	// armed ("disk", "fds", or "disk,fds"), and whether any armed
	// degradation actually failed an operation.
	DelayCycles    uint64 `json:"delay_cycles,omitempty"`
	Exhausted      string `json:"exhausted,omitempty"`
	ExhaustTripped bool   `json:"exhaust_tripped,omitempty"`

	// Availability payload (sweeps driven by a traffic client): the
	// run's availability class and the requests served before/during/
	// after the fault window. Empty/zero for non-availability sweeps,
	// so pre-availability stores parse (and resume) unchanged.
	Avail       string `json:"avail,omitempty"`
	AvailBefore int32  `json:"avail_before,omitempty"`
	AvailDuring int32  `json:"avail_during,omitempty"`
	AvailAfter  int32  `json:"avail_after,omitempty"`
}

// NewRecord distils one executed experiment into its persistent form.
// rep may be nil (entries synthesised without a run, e.g. pruned
// not-triggered experiments); the triage payload is then empty.
func NewRecord(exp *core.Experiment, entry core.SweepEntry, rep *core.Report) Record {
	r := Record{
		Key:      exp.Key(),
		Library:  entry.Library,
		Function: entry.Function,
		Retval:   entry.Retval,
		Errno:    entry.Errno,
		HasErrno: entry.HasErrno,
		Fault:    entry.Fault,
		Outcome:  string(entry.Outcome),
		ExitCode: entry.ExitCode,
		Signal:   entry.Signal,

		AuditClass: exp.Audit,

		Avail:       string(entry.Avail),
		AvailBefore: entry.AvailBefore,
		AvailDuring: entry.AvailDuring,
		AvailAfter:  entry.AvailAfter,
	}
	if rep != nil {
		r.Injections = len(rep.Injections)
		r.LogDigest = controller.LogDigest(rep.Injections)
		r.Cycles = rep.Cycles
		r.Coverage = rep.Coverage
		if entry.Outcome == core.OutcomeCrash {
			r.CrashStack = rep.CrashStack
			r.StackHash = controller.StackHash(rep.CrashStack, rep.Injections)
		}
		for _, inj := range rep.Injections {
			r.DelayCycles += inj.DelayCycles
		}
		degr := rep.Degradation
		if degr.DiskArmed {
			r.Exhausted = "disk"
		}
		if degr.FDsArmed {
			if r.Exhausted != "" {
				r.Exhausted += ",fds"
			} else {
				r.Exhausted = "fds"
			}
		}
		r.ExhaustTripped = degr.Tripped()
	}
	return r
}

// Entry reconstitutes the report row a resumed sweep commits in place
// of re-running the experiment.
func (r Record) Entry() core.SweepEntry {
	return core.SweepEntry{
		Library:  r.Library,
		Function: r.Function,
		Retval:   r.Retval,
		Errno:    r.Errno,
		HasErrno: r.HasErrno,
		Fault:    r.Fault,
		Outcome:  core.Outcome(r.Outcome),
		ExitCode: r.ExitCode,
		Signal:   r.Signal,

		Avail:       core.AvailClass(r.Avail),
		AvailBefore: r.AvailBefore,
		AvailDuring: r.AvailDuring,
		AvailAfter:  r.AvailAfter,
	}
}

// Store is the append-only on-disk result store of a campaign: one
// JSONL record per completed experiment, written live as sweep workers
// finish runs. Appends are serialised internally, so a single Store is
// safe to share across all workers of a sweep; append failures are
// latched and surfaced by Err after the sweep rather than interleaved
// into worker control flow.
//
// The file format is crash-tolerant by construction: records are
// self-contained lines, so a process killed mid-append leaves at most
// one torn trailing line, which Open discards (and truncates away) on
// the next start. Everything before it is intact — that is what makes
// kill-anywhere/resume-anywhere campaigns safe.
type Store struct {
	dir  string
	path string

	mu   sync.Mutex
	f    *os.File
	recs []Record
	err  error
}

// Open opens (creating if needed) the store directory and loads every
// intact record. A torn final line — the signature of a writer killed
// mid-append — is discarded and truncated so subsequent appends start
// on a clean line boundary; a malformed line anywhere else is a corrupt
// store and an error.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	path := filepath.Join(dir, StoreFile)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	recs, good, err := parseRecords(data)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if good < int64(len(data)) {
		// Drop the torn tail before appending anything after it.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: recover %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &Store{dir: dir, path: path, f: f, recs: recs}, nil
}

// parseRecords decodes the store file, returning the intact records and
// the byte offset up to which the file is well-formed. The final line
// is recoverable — unterminated or unparsable means a writer died
// mid-append — but a malformed interior line is corruption.
func parseRecords(data []byte) ([]Record, int64, error) {
	var recs []Record
	var good int64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated final line: torn.
			break
		}
		line := data[off : off+nl]
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			if off+nl+1 == len(data) {
				// Unparsable final line: torn mid-append, recoverable.
				break
			}
			return nil, 0, fmt.Errorf("corrupt record at byte %d: %v", off, err)
		}
		recs = append(recs, r)
		off += nl + 1
		good = int64(off)
	}
	return recs, good, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Append persists one record. Failures are latched (first error wins)
// and reported by Err; the in-memory view always includes the record so
// a same-process reader stays consistent with what the sweep produced.
func (s *Store) Append(rec Record) {
	line, err := json.Marshal(rec)
	if err != nil {
		s.fail(err)
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	if s.err != nil {
		return
	}
	if _, err := s.f.Write(line); err != nil {
		s.err = fmt.Errorf("campaign: append %s: %w", s.path, err)
	}
}

func (s *Store) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = fmt.Errorf("campaign: %w", err)
	}
}

// Err reports the first append failure, if any — check it after a sweep
// that wrote through this store.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Records returns a copy of every record currently in the store, in
// append order (loaded records first).
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

// Completed indexes the store by experiment key, last record winning —
// the resume filter's view.
func (s *Store) Completed() map[string]Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Record, len(s.recs))
	for _, r := range s.recs {
		out[r.Key] = r
	}
	return out
}

// Close flushes and closes the underlying file. The store must not be
// appended to afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return s.err
	}
	err := s.f.Close()
	s.f = nil
	if s.err != nil {
		return s.err
	}
	if err != nil {
		return fmt.Errorf("campaign: close %s: %w", s.path, err)
	}
	return nil
}
