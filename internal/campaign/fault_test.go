package campaign_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"lfi/internal/campaign"
	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// degradationApp checks every result, so degradation experiments spread
// across hang (delay), error-exit (disk full, fd saturation at open)
// and handled (fd pressure armed at write never binds).
const degradationApp = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int write(int fd, byte *buf, int n);
extern tls int errno;
int main(void) {
  int fd;
  int i;
  fd = open("/out", 65, 0);
  if (fd < 0) { return 3; }
  i = 0;
  while (i < 4) {
    if (write(fd, "abcdefgh", 8) < 8) { close(fd); return 4; }
    i = i + 1;
  }
  close(fd);
  return 0;
}
`

func degradationTarget(t testing.TB) (core.CampaignConfig, profile.Set) {
	t.Helper()
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", degradationApp, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
			{Name: "write", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
		},
	}}
	return core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
	}, set
}

// Degradation experiments persist their armed/tripped state in the
// store, survive a JSON round trip bit-identically, and resume to a
// byte-identical report without re-running anything.
func TestDegradationRecordsPersistAndResume(t *testing.T) {
	cfg, set := degradationTarget(t)
	exps := core.DegradationExperiments(set)
	dir := t.TempDir()
	s, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Sweep(cfg, exps, 0,
		core.SweepOptions{Workers: 2, Snapshot: true}, s, false)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Render()

	recs := map[string]campaign.Record{}
	for _, r := range s.Records() {
		recs[r.Function+"/"+r.Fault] = r
	}
	if len(recs) != 6 {
		t.Fatalf("records = %d, want 6", len(recs))
	}
	// Every record carries its fault label, and degradation experiment
	// keys embed it (distinct from any errno experiment of the same fn).
	for key, r := range recs {
		if r.Fault == "" {
			t.Errorf("%s: record lost its fault label", key)
		}
		if !strings.Contains(r.Key, "/"+r.Fault) {
			t.Errorf("%s: key %q does not embed the fault label", key, r.Key)
		}
		if r.Entry().Fault != r.Fault {
			t.Errorf("%s: Entry() dropped the fault label", key)
		}
	}
	if r := recs["open/delay=200000000"]; r.DelayCycles != core.DegradationDelayCycles {
		t.Errorf("delay record DelayCycles = %d, want %d", r.DelayCycles, uint64(core.DegradationDelayCycles))
	}
	if r := recs["write/exhaust=disk:after=0"]; r.Exhausted != "disk" || !r.ExhaustTripped {
		t.Errorf("disk record = exhausted %q tripped %v, want disk/tripped", r.Exhausted, r.ExhaustTripped)
	}
	// fd pressure armed at write never binds: armed, not tripped.
	if r := recs["write/exhaust=fds:slots=0"]; r.Exhausted != "fds" || r.ExhaustTripped {
		t.Errorf("fds record = exhausted %q tripped %v, want fds/untripped", r.Exhausted, r.ExhaustTripped)
	}

	// JSON round trip is exact — degradation fields included.
	for key, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back campaign.Record
		if err := json.Unmarshal(line, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Errorf("%s: JSON round trip diverged:\n%+v\nvs\n%+v", key, r, back)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// All-cached resume: byte-identical report, zero executions.
	s2, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	executed := 0
	res2, err := campaign.Sweep(cfg, core.DegradationExperiments(set), 0,
		core.SweepOptions{Workers: 4, Snapshot: true,
			OnResult: func(*core.Experiment, core.SweepEntry, *core.Report) { executed++ }},
		s2, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Render(); got != want {
		t.Errorf("resumed degradation report differs:\n--- fresh ---\n%s--- resumed ---\n%s", want, got)
	}
	if executed != 0 {
		t.Errorf("all-cached resume executed %d experiments", executed)
	}
}
