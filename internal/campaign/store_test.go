package campaign_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lfi/internal/campaign"
	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// mixedApp covers every §2 outcome: error-exit on open failure, handled
// read/close failures, a crash on unchecked malloc, and a never-called
// write (not-triggered) — the same shape the core executor tests use.
const mixedApp = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern int write(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  byte buf[32];
  byte *p;
  fd = open("/data", 0, 0);
  if (fd < 0) { return 2; }
  n = read(fd, buf, 31);
  if (n < 0) { n = 0; }
  close(fd);
  p = malloc(8);
  p[0] = 'x';
  return 0;
}
`

// mixedTarget builds the campaign config and profile set whose matrix
// covers crashes, handled faults and not-triggered experiments.
func mixedTarget(t testing.TB) (core.CampaignConfig, profile.Set) {
	t.Helper()
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", mixedApp, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	tls := func(errno int32) []profile.SideEffect {
		return []profile.SideEffect{{Type: profile.SideEffectTLS, Module: libc.Name, Value: errno}}
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "open", ErrorCodes: []profile.ErrorCode{{Retval: -1, SideEffects: tls(13)}}},
			{Name: "read", ErrorCodes: []profile.ErrorCode{
				{Retval: -1, SideEffects: tls(5)},
				{Retval: -1, SideEffects: tls(4)},
			}},
			{Name: "close", ErrorCodes: []profile.ErrorCode{{Retval: -1, SideEffects: tls(9)}}},
			{Name: "malloc", ErrorCodes: []profile.ErrorCode{{Retval: 0, SideEffects: tls(12)}}},
			{Name: "write", ErrorCodes: []profile.ErrorCode{{Retval: -1, SideEffects: tls(32)}}},
		},
	}}
	cfg := core.CampaignConfig{
		Programs:   []*obj.File{lc, app},
		Executable: "app",
		Files:      map[string][]byte{"/data": []byte("payload")},
	}
	return cfg, set
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []campaign.Record{
		{Key: "a", Library: "libc.so", Function: "open", Retval: -1, Outcome: "handled"},
		{Key: "b", Library: "libc.so", Function: "malloc", Outcome: "crash", Signal: 11,
			CrashStack: []string{"malloc", "main"}, StackHash: "00000000deadbeef"},
		{Key: "a", Library: "libc.so", Function: "open", Retval: -1, Outcome: "error-exit"},
	}
	for _, r := range recs {
		s.Append(r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Records()
	if len(got) != 3 || got[1].StackHash != "00000000deadbeef" || got[1].CrashStack[1] != "main" {
		t.Fatalf("reloaded records = %+v", got)
	}
	done := s2.Completed()
	if len(done) != 2 {
		t.Fatalf("completed = %+v", done)
	}
	// Last record per key wins.
	if done["a"].Outcome != "error-exit" {
		t.Errorf("key a = %+v, want the later record", done["a"])
	}
	if e := done["b"].Entry(); e.Outcome != core.OutcomeCrash || e.Signal != 11 || e.Function != "malloc" {
		t.Errorf("entry reconstitution = %+v", e)
	}
}

// TestStoreTornLastLineRecovered: a writer killed mid-append leaves a
// partial trailing line; Open must keep every intact record, drop the
// torn tail, and leave the file clean for further appends.
func TestStoreTornLastLineRecovered(t *testing.T) {
	for name, tail := range map[string]string{
		"unterminated": `{"key":"c","outcome":"cra`,
		"garbage-line": "\x00\x7f not json at all\n",
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := campaign.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			s.Append(campaign.Record{Key: "a", Outcome: "handled"})
			s.Append(campaign.Record{Key: "b", Outcome: "crash"})
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, campaign.StoreFile)
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s2, err := campaign.Open(dir)
			if err != nil {
				t.Fatalf("torn store must recover, got %v", err)
			}
			if got := s2.Records(); len(got) != 2 || got[0].Key != "a" || got[1].Key != "b" {
				t.Fatalf("recovered records = %+v", got)
			}
			// Appends after recovery land on a clean line boundary.
			s2.Append(campaign.Record{Key: "c", Outcome: "hang"})
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := campaign.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if got := s3.Records(); len(got) != 3 || got[2].Key != "c" {
				t.Fatalf("post-recovery records = %+v", got)
			}
		})
	}
}

// TestStoreCorruptInteriorRejected: a malformed line that is NOT the
// final line cannot be a torn append — it is corruption, and pretending
// otherwise would silently drop completed results.
func TestStoreCorruptInteriorRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, campaign.StoreFile)
	blob := `{"key":"a","outcome":"handled"}
not json
{"key":"b","outcome":"crash"}
`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("interior corruption must fail Open, got %v", err)
	}
}

// TestSweepStoreResumeByteIdentical is the tentpole acceptance test: a
// store half-filled by a killed campaign (max-crashes early stop),
// resumed at 1/4/8 workers on both executors, renders byte-identical to
// a fresh full sweep — including after a torn trailing line.
func TestSweepStoreResumeByteIdentical(t *testing.T) {
	cfg, set := mixedTarget(t)
	fresh, err := core.Sweep(cfg, set, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Render()
	if !strings.Contains(want, "crash") || !strings.Contains(want, "not-triggered") {
		t.Fatalf("target does not cover enough outcomes:\n%s", want)
	}

	for _, snapshot := range []bool{false, true} {
		dir := t.TempDir()
		// Phase 1: the "killed" campaign — a max-crashes early stop
		// leaves the store partially filled.
		s, err := campaign.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		partial, err := campaign.Sweep(cfg, core.PlanExperiments(set), 0,
			core.SweepOptions{Workers: 2, MaxCrashes: 1, Snapshot: snapshot}, s, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(partial.Entries) >= len(fresh.Entries) {
			t.Fatalf("snapshot=%v: early stop did not truncate", snapshot)
		}
		recorded := len(s.Records())
		if recorded == 0 {
			t.Fatal("no records persisted")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Simulate the kill landing mid-append: torn trailing line.
		f, err := os.OpenFile(filepath.Join(dir, campaign.StoreFile), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"key":"torn","outc`); err != nil {
			t.Fatal(err)
		}
		f.Close()

		// Phase 2: resume at several worker counts; every report must be
		// byte-identical to the fresh full sweep.
		for _, workers := range []int{1, 4, 8} {
			s2, err := campaign.Open(dir)
			if err != nil {
				t.Fatalf("snapshot=%v workers=%d: reopen: %v", snapshot, workers, err)
			}
			if got := len(s2.Records()); got != recorded {
				t.Fatalf("snapshot=%v workers=%d: %d records survived recovery, want %d",
					snapshot, workers, got, recorded)
			}
			res, err := campaign.Sweep(cfg, core.PlanExperiments(set), 0,
				core.SweepOptions{Workers: workers, Snapshot: snapshot}, s2, true)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Render(); got != want {
				t.Errorf("snapshot=%v workers=%d: resumed report differs:\n--- fresh ---\n%s--- resumed ---\n%s",
					snapshot, workers, want, got)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		}

		// Phase 3: a fully-complete store resumes to the same report
		// without executing anything (every key cached).
		s3, err := campaign.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		executed := 0
		opts := core.SweepOptions{Workers: 4, Snapshot: snapshot,
			OnResult: func(*core.Experiment, core.SweepEntry, *core.Report) { executed++ }}
		res, err := campaign.Sweep(cfg, core.PlanExperiments(set), 0, opts, s3, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Render() != want {
			t.Errorf("snapshot=%v: all-cached resume differs from fresh", snapshot)
		}
		if executed != 0 {
			t.Errorf("snapshot=%v: all-cached resume executed %d experiments", snapshot, executed)
		}
		if err := s3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStoreManifestGuardsCampaignIdentity: a store filled by one
// campaign must refuse a sweep of a different target, budget or engine
// — experiment keys name faultloads, not targets, so without the
// manifest check a resume would silently serve one binary's outcomes as
// another's.
func TestStoreManifestGuardsCampaignIdentity(t *testing.T) {
	cfg, set := mixedTarget(t)
	dir := t.TempDir()
	s, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	exps := core.PlanExperiments(set)
	if _, err := campaign.Sweep(cfg, exps, 0, core.SweepOptions{Workers: 2}, s, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reject := func(name string, mutate func(*core.CampaignConfig) uint64) {
		t.Helper()
		s2, err := campaign.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		mcfg := cfg
		budget := mutate(&mcfg)
		_, err = campaign.Sweep(mcfg, exps, budget, core.SweepOptions{Workers: 2}, s2, true)
		if err == nil || !strings.Contains(err.Error(), "different campaign") {
			t.Errorf("%s: mismatched campaign must be refused, got %v", name, err)
		}
	}
	reject("different-binary", func(c *core.CampaignConfig) uint64 {
		src := strings.Replace(mixedApp, "malloc(8)", "malloc(16)", 1)
		if src == mixedApp {
			t.Fatal("mutation did not change the source")
		}
		app, err := minic.Compile("app", src, obj.Executable)
		if err != nil {
			t.Fatal(err)
		}
		c.Programs = []*obj.File{c.Programs[0], app}
		return 0
	})
	reject("different-budget", func(c *core.CampaignConfig) uint64 { return 12345678 })

	// The same campaign keeps resuming fine.
	s3, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, err := campaign.Sweep(cfg, exps, 0, core.SweepOptions{Workers: 2}, s3, true); err != nil {
		t.Errorf("same campaign refused: %v", err)
	}
}

// TestSweepStoreRecordsPayload: persisted crash records carry the
// triage payload — stack, hash, injection-log digest, cycles.
func TestSweepStoreRecordsPayload(t *testing.T) {
	cfg, set := mixedTarget(t)
	dir := t.TempDir()
	s, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := campaign.Sweep(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 4}, s, false); err != nil {
		t.Fatal(err)
	}
	var crash, handled *campaign.Record
	for _, r := range s.Records() {
		r := r
		switch core.Outcome(r.Outcome) {
		case core.OutcomeCrash:
			crash = &r
		case core.OutcomeHandled:
			handled = &r
		}
	}
	if crash == nil || handled == nil {
		t.Fatalf("records missing outcomes: %+v", s.Records())
	}
	if crash.StackHash == "" || len(crash.CrashStack) == 0 {
		t.Errorf("crash record lacks triage payload: %+v", crash)
	}
	if crash.Injections == 0 || crash.LogDigest == "" || crash.Cycles == 0 {
		t.Errorf("crash record lacks run summary: %+v", crash)
	}
	if handled.StackHash != "" || handled.CrashStack != nil {
		t.Errorf("handled record must not carry a crash stack: %+v", handled)
	}
}
