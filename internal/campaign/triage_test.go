package campaign_test

import (
	"reflect"
	"strings"
	"testing"

	"lfi/internal/campaign"
	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

func TestTriageClustersDeterministic(t *testing.T) {
	recs := []campaign.Record{
		// Three faultloads reaching the same failure site.
		{Key: "k1", Library: "l", Function: "malloc", Outcome: "crash", Signal: 11,
			StackHash: "aaaa", CrashStack: []string{"malloc", "main"}},
		{Key: "k2", Library: "l", Function: "calloc", Outcome: "crash", Signal: 11,
			StackHash: "aaaa", CrashStack: []string{"malloc", "main"}},
		{Key: "k3", Library: "l", Function: "read", Outcome: "crash", Signal: 11,
			StackHash: "aaaa", CrashStack: []string{"malloc", "main"}},
		// A distinct site.
		{Key: "k4", Library: "l", Function: "write", Outcome: "crash", Signal: 6,
			StackHash: "bbbb", CrashStack: []string{"abort", "flush", "main"}},
		// Non-crashes never cluster.
		{Key: "k5", Library: "l", Function: "open", Outcome: "handled"},
		{Key: "k6", Library: "l", Function: "close", Outcome: "hang"},
		// A crash with no recorded stack lands in the unknown bucket.
		{Key: "k7", Library: "l", Function: "pipe", Outcome: "crash", Signal: 11},
		// Re-recorded key: the later record wins and reach counts it once.
		{Key: "k2", Library: "l", Function: "calloc", Outcome: "crash", Signal: 11,
			StackHash: "aaaa", CrashStack: []string{"malloc", "main"}},
	}
	clusters := campaign.Triage(recs)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %+v", clusters)
	}
	if clusters[0].StackHash != "aaaa" || clusters[0].Reach != 3 {
		t.Errorf("top cluster = %+v, want aaaa with reach 3", clusters[0])
	}
	if got := clusters[0].Keys; !reflect.DeepEqual(got, []string{"k1", "k2", "k3"}) {
		t.Errorf("member keys = %v", got)
	}
	if clusters[1].StackHash != "bbbb" || clusters[1].Reach != 1 {
		t.Errorf("second cluster = %+v", clusters[1])
	}
	if clusters[2].StackHash != "unknown" || clusters[2].Reach != 1 {
		t.Errorf("unknown cluster = %+v", clusters[2])
	}

	// Deterministic: shuffled input order yields the same clusters
	// (records for distinct keys commute; triage re-sorts).
	shuffled := []campaign.Record{recs[4], recs[3], recs[0], recs[6], recs[5], recs[2], recs[1], recs[7]}
	if again := campaign.Triage(shuffled); !reflect.DeepEqual(again, clusters) {
		t.Errorf("triage is order-sensitive:\n%+v\nvs\n%+v", again, clusters)
	}

	out := campaign.RenderClusters(clusters)
	for _, want := range []string{
		"5 failure(s) in 3 cluster(s)",
		"cluster 1 [aaaa] reach=3",
		"stack: malloc<-main",
		"l.read -> 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestTriageEndToEnd: a real sweep through a store produces at least
// one crash cluster, identically across a fresh run and a resumed one.
func TestTriageEndToEnd(t *testing.T) {
	cfg, set := mixedTarget(t)
	dir := t.TempDir()
	s, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Sweep(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 4}, s, false); err != nil {
		t.Fatal(err)
	}
	clusters := campaign.Triage(s.Records())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("sweep produced no crash clusters (mixedApp crashes on malloc)")
	}
	if len(clusters[0].CrashStack) == 0 || clusters[0].StackHash == "" {
		t.Errorf("cluster lacks identity: %+v", clusters[0])
	}

	// A resumed (fully-cached) pass over the same store must triage
	// identically — the determinism half of the acceptance criteria.
	s2, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := campaign.Sweep(cfg, core.PlanExperiments(set), 0,
		core.SweepOptions{Workers: 8}, s2, true); err != nil {
		t.Fatal(err)
	}
	if again := campaign.Triage(s2.Records()); !reflect.DeepEqual(again, clusters) {
		t.Errorf("triage differs across resume:\n%+v\nvs\n%+v", again, clusters)
	}
}

func TestSurvivorsAndEscalate(t *testing.T) {
	cfg, set := mixedTarget(t)
	dir := t.TempDir()
	s, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	exps := core.PlanExperiments(set)
	if _, err := campaign.Sweep(cfg, exps, 0, core.SweepOptions{Workers: 4}, s, false); err != nil {
		t.Fatal(err)
	}

	surv := campaign.Survivors(exps, s.Completed())
	// mixedApp tolerates read (two error codes) and close faults; open
	// error-exits, malloc crashes, write is never called.
	if len(surv) != 3 {
		t.Fatalf("survivors = %+v", surv)
	}
	for _, e := range surv {
		if e.Function != "read" && e.Function != "close" {
			t.Errorf("unexpected survivor %s (outcome was not handled-with-injection)", e.Function)
		}
	}

	second := campaign.Escalate(surv, set, 0)
	// Pairs over {read(EIO), read(EINTR), close}: same-function pair
	// skipped, so read+close twice — labelled with full fault
	// coordinates so the two rows stay distinguishable.
	if len(second) != 2 {
		t.Fatalf("escalated experiments = %+v", second)
	}
	wantFns := []string{"read(-1,EIO)+close(-1,EBADF)", "read(-1,EINTR)+close(-1,EBADF)"}
	for i, e := range second {
		if e.Function != wantFns[i] {
			t.Errorf("pair %d coordinates = %q, want %q", i, e.Function, wantFns[i])
		}
		if e.Plan == nil || len(e.Plan.Triggers) != 2 {
			t.Errorf("pair faultload = %+v", e.Plan)
		}
		if e.Compiled == nil {
			t.Errorf("pair faultload not precompiled")
		}
	}
	// Keys must be distinct (different merged faultloads) and stable.
	if second[0].Key() == second[1].Key() {
		t.Error("escalated pairs share a key")
	}
	if again := campaign.Escalate(surv, set, 0); !reflect.DeepEqual(
		[]string{again[0].Key(), again[1].Key()},
		[]string{second[0].Key(), second[1].Key()}) {
		t.Error("escalation plan is not deterministic")
	}

	// The cap bounds the quadratic growth.
	if capped := campaign.Escalate(surv, set, 1); len(capped) != 1 {
		t.Errorf("maxPairs=1 minted %d pairs", len(capped))
	}

	// The escalated round executes and renders through the same store:
	// both faults inject, mixedApp tolerates both, and the rows read as
	// pairs.
	res, err := campaign.Sweep(cfg, second, 0, core.SweepOptions{Workers: 2}, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("second-round report = %+v", res)
	}
	for _, e := range res.Entries {
		if e.Outcome != core.OutcomeHandled {
			t.Errorf("read+close pair outcome = %s (mixedApp tolerates both)", e.Outcome)
		}
	}
	if out := res.Render(); !strings.Contains(out, "read(-1,EIO)+close(-1,EBADF)") ||
		!strings.Contains(out, "read(-1,EINTR)+close(-1,EBADF)") {
		t.Errorf("pair rows missing or ambiguous:\n%s", out)
	}
	// Pair records persisted with injections from both faults.
	done := s.Completed()
	rec, ok := done[second[0].Key()]
	if !ok || rec.Injections != 2 {
		t.Errorf("pair record = %+v (want both faults injected)", rec)
	}
}

// TestEscalateFindsLatentPair: the point of escalation — an app that
// tolerates each fault alone but crashes when both fire. Round one
// reports every single fault handled; the escalated round exposes the
// latent pair.
func TestEscalateFindsLatentPair(t *testing.T) {
	const src = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int read(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  byte buf[16];
  byte *fallback;
  fd = open("/data", 0, 0);
  if (fd < 0) { return 2; }
  fallback = malloc(16);
  n = read(fd, buf, 15);
  if (n < 0) {
    // Recovery path: spill into the fallback buffer — safe alone, but
    // nobody checked that malloc succeeded.
    fallback[0] = 'r';
    n = 0;
  }
  return 0;
}
`
	cfg, set := mixedTarget(t)
	app, err := minic.Compile("app", src, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Programs[1] = app
	// Restrict the matrix to the two functions of interest.
	p := *set[libc.Name]
	var fns []profile.Function
	for _, fn := range p.Functions {
		if fn.Name == "read" || fn.Name == "malloc" {
			fns = append(fns, fn)
		}
	}
	p.Functions = fns
	pairSet := profile.Set{libc.Name: &p}

	exps := core.PlanExperiments(pairSet)
	dir := t.TempDir()
	s, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := campaign.Sweep(cfg, exps, 0, core.SweepOptions{Workers: 2}, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := first.Summary()[core.OutcomeCrash]; n != 0 {
		t.Fatalf("round one must be crash-free (each fault tolerated alone):\n%s", first.Render())
	}

	surv := campaign.Survivors(exps, s.Completed())
	second := campaign.Escalate(surv, pairSet, 0)
	if len(second) == 0 {
		t.Fatal("no pairs escalated")
	}
	res, err := campaign.Sweep(cfg, second, 0, core.SweepOptions{Workers: 2}, s, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Summary()[core.OutcomeCrash]; n == 0 {
		t.Errorf("escalated round missed the latent read+malloc crash:\n%s", res.Render())
	}
	// And the new crash is triageable from the same store.
	clusters := campaign.Triage(s.Records())
	if len(clusters) == 0 {
		t.Error("latent-pair crash did not cluster")
	}
}

// TestTriageAvailabilityClusters: availability records cluster by
// (class, stack hash) — service-level failure modes separate from each
// other and from plain crashes, and recovered runs never cluster.
func TestTriageAvailabilityClusters(t *testing.T) {
	recs := []campaign.Record{
		{Key: "a1", Library: "l", Function: "accept", Fault: "exhaust=fds:slots=0",
			Outcome: "hang", Avail: "wedged", AvailBefore: 200},
		{Key: "a2", Library: "l", Function: "write", Fault: "delay=200000000",
			Outcome: "hang", Avail: "wedged", AvailBefore: 200},
		{Key: "a3", Library: "l", Function: "write", Fault: "exhaust=disk:after=0",
			Outcome: "handled", Avail: "degraded", AvailBefore: 200, AvailDuring: 250, AvailAfter: 0},
		{Key: "a4", Library: "l", Function: "write", Outcome: "handled", Avail: "recovered",
			AvailBefore: 200, AvailDuring: 600, AvailAfter: 400},
		{Key: "a5", Library: "l", Function: "read", Outcome: "crash", Signal: 11,
			Avail: "crashed", StackHash: "cccc", CrashStack: []string{"read", "main"}},
		// A plain (non-availability) crash with the same stack hash stays
		// in its own cluster.
		{Key: "p1", Library: "l", Function: "read", Outcome: "crash", Signal: 11,
			StackHash: "cccc", CrashStack: []string{"read", "main"}},
	}
	clusters := campaign.Triage(recs)
	got := map[string]int{}
	for _, c := range clusters {
		got[c.StackHash] = c.Reach
	}
	want := map[string]int{"wedged": 2, "degraded": 1, "crashed+cccc": 1, "cccc": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("clusters = %v, want %v", got, want)
	}
	if clusters[0].StackHash != "wedged" || clusters[0].Avail != "wedged" {
		t.Errorf("top cluster = %+v, want the wedged pair", clusters[0])
	}
	out := campaign.RenderClusters(clusters)
	for _, w := range []string{
		"5 failure(s) in 4 cluster(s)",
		"l.accept exhaust=fds:slots=0",
		"avail=wedged served=200/0/0",
		"avail=degraded served=200/250/0",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("render missing %q:\n%s", w, out)
		}
	}
}

// TestTriagePredictedVsSurprise: crash records carrying an audit class
// split into predicted (the static lint fired) and surprise clusters,
// even when the crash stacks hash alike; pre-audit records are
// untouched.
func TestTriagePredictedVsSurprise(t *testing.T) {
	recs := []campaign.Record{
		{Key: "p1", Library: "l", Function: "malloc", Outcome: "crash", Signal: 11,
			StackHash: "aaaa", CrashStack: []string{"malloc", "main"},
			AuditClass: "unchecked-clobbered"},
		{Key: "p2", Library: "l", Function: "read", Outcome: "crash", Signal: 11,
			StackHash: "aaaa", CrashStack: []string{"malloc", "main"},
			AuditClass: "unchecked-propagated"},
		{Key: "s1", Library: "l", Function: "open", Outcome: "crash", Signal: 11,
			StackHash: "aaaa", CrashStack: []string{"malloc", "main"},
			AuditClass: "checked"},
		// No audit ran for this record: classic stack-only clustering.
		{Key: "n1", Library: "l", Function: "write", Outcome: "crash", Signal: 11,
			StackHash: "aaaa", CrashStack: []string{"malloc", "main"}},
	}
	clusters := campaign.Triage(recs)
	if len(clusters) != 3 {
		t.Fatalf("want predicted/surprise/plain clusters, got %+v", clusters)
	}
	byHash := make(map[string]campaign.Cluster, len(clusters))
	for _, c := range clusters {
		byHash[c.StackHash] = c
	}
	pred, ok := byHash["predicted:aaaa"]
	if !ok || pred.Reach != 2 {
		t.Errorf("predicted cluster = %+v", byHash)
	}
	if pred.Audit == "" {
		t.Errorf("predicted cluster lacks audit class: %+v", pred)
	}
	if c, ok := byHash["surprise:aaaa"]; !ok || c.Reach != 1 || c.Audit != "checked" {
		t.Errorf("surprise cluster = %+v", c)
	}
	if c, ok := byHash["aaaa"]; !ok || c.Reach != 1 {
		t.Errorf("plain cluster = %+v", c)
	}
	out := campaign.RenderClusters(clusters)
	for _, want := range []string{
		"[predicted:aaaa]", "[surprise:aaaa]",
		"audit=unchecked-clobbered", "audit=checked",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSweepStoreCarriesAudit: annotated experiments persist their audit
// class and the round-tripped record keeps it.
func TestSweepStoreCarriesAudit(t *testing.T) {
	cfg, set := mixedTarget(t)
	exps := core.PlanExperiments(set)
	core.AnnotateAudit(exps, map[string]string{"malloc": "unchecked-clobbered"})
	dir := t.TempDir()
	s, err := campaign.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := campaign.Sweep(cfg, exps, 0, core.SweepOptions{Workers: 2}, s, false); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range s.Records() {
		switch r.Function {
		case "malloc":
			if r.AuditClass != "unchecked-clobbered" {
				t.Errorf("malloc record audit_class = %q", r.AuditClass)
			}
			found = true
		default:
			if r.AuditClass != "" {
				t.Errorf("%s record has stray audit_class %q", r.Function, r.AuditClass)
			}
		}
	}
	if !found {
		t.Fatal("no malloc record in store")
	}
}
