package vm

import "testing"

// TestMemFitsOverflow is the regression test for the uint32 wrap in the
// memory bounds checks: the legacy form (off+uint32(n) > seglen) wraps
// when off+n crosses 2^32 — reachable with a multi-gigabyte heap (the
// HeapLimit option is a full uint32) and a large syscall length — so a
// read that is far out of bounds passed the check and panicked on the
// slice expression instead of returning a MemoryError.
func TestMemFitsOverflow(t *testing.T) {
	seglen := 0x9000_0000 // a 2.25 GiB segment (length only; never allocated)
	off := uint32(0x8FFF_FFF0)
	n := int32(0x7000_0020) // a valid positive length

	if legacy := off+uint32(n) > uint32(seglen); legacy {
		t.Fatalf("precondition: the legacy check must wrap and pass (sum=%#x)", off+uint32(n))
	}
	if memFits(seglen, off, int64(n)) {
		t.Errorf("memFits(%#x, %#x, %#x) = true, want false", seglen, off, n)
	}
}

// TestMemFitsTable pins the helper's edges, including the int(len) >
// 2^32 truncation WriteBytes used to be exposed to.
func TestMemFitsTable(t *testing.T) {
	for _, tc := range []struct {
		seglen int
		off    uint32
		n      int64
		want   bool
	}{
		{16, 0, 16, true},
		{16, 12, 4, true},
		{16, 12, 5, false},
		{16, 15, 0, true},
		{16, 0, -1, false},            // negative length
		{16, 8, 1 << 32, false},       // uint32(n) would truncate to 0 and pass
		{16, 8, (1 << 32) + 4, false}, // ... or to 4
		{0x9000_0000, 0, 0x7FFF_FFFF, true},
	} {
		if got := memFits(tc.seglen, tc.off, tc.n); got != tc.want {
			t.Errorf("memFits(%#x, %#x, %#x) = %v, want %v", tc.seglen, tc.off, tc.n, got, tc.want)
		}
	}
}

// TestReadWriteBytesOutOfRange drives the fixed checks end to end on a
// real segment: far-out-of-bounds lengths must error, never panic.
func TestReadWriteBytesOutOfRange(t *testing.T) {
	p := &Proc{segs: []*segment{
		{base: 0x1000, data: make([]byte, 64), writable: true, name: "t"},
	}}
	if _, err := p.ReadBytes(0x1030, 0x7FFF_FFFF); err == nil {
		t.Error("ReadBytes with a huge length must fail")
	}
	if _, err := p.ReadBytes(0x1030, -1); err == nil {
		t.Error("ReadBytes with a negative length must fail")
	}
	if err := p.WriteBytes(0x103C, make([]byte, 5)); err == nil {
		t.Error("WriteBytes past the segment end must fail")
	}
	if _, err := p.ReadWord(0x103E); err == nil {
		t.Error("ReadWord straddling the segment end must fail")
	}
	if b, err := p.ReadBytes(0x1000, 64); err != nil || len(b) != 64 {
		t.Errorf("full-segment read: %v, %d bytes", err, len(b))
	}
}

// TestReadCStringSegments covers the segment-sliced scanner: strings
// ending inside a segment, spanning two adjacent segments, running into
// unmapped memory, and exceeding the 4096-byte cap.
func TestReadCStringSegments(t *testing.T) {
	a := &segment{base: 0x1000, data: []byte("hello\x00rest"), name: "a"}
	// b is bit-adjacent to a: a string may legitimately straddle them.
	b := &segment{base: a.base + uint32(len(a.data)), data: []byte("tail\x00"), name: "b"}
	long := &segment{base: 0x9000, data: make([]byte, 5000), name: "long"}
	for i := range long.data {
		long.data[i] = 'x'
	}
	p := &Proc{segs: []*segment{a, b, long}}

	if s, err := p.ReadCString(0x1000); err != nil || s != "hello" {
		t.Errorf("in-segment string: %q, %v", s, err)
	}
	if s, err := p.ReadCString(0x1006); err != nil || s != "resttail" {
		t.Errorf("segment-spanning string: %q, %v", s, err)
	}
	if _, err := p.ReadCString(0x9000 + 4998); err == nil {
		t.Error("string running off the last segment must fail")
	}
	if _, err := p.ReadCString(0x9000); err == nil {
		t.Error("unterminated 5000-byte run must exceed the cap and fail")
	}
	long.data[4095] = 0
	if s, err := p.ReadCString(0x9000); err != nil || len(s) != 4095 {
		t.Errorf("terminator at the cap boundary: len=%d, %v", len(s), err)
	}
}
