package vm

import (
	"encoding/binary"
	"testing"
)

// TestMemFitsOverflow is the regression test for the uint32 wrap in the
// memory bounds checks: the legacy form (off+uint32(n) > seglen) wraps
// when off+n crosses 2^32 — reachable with a multi-gigabyte heap (the
// HeapLimit option is a full uint32) and a large syscall length — so a
// read that is far out of bounds passed the check and panicked on the
// slice expression instead of returning a MemoryError.
func TestMemFitsOverflow(t *testing.T) {
	seglen := 0x9000_0000 // a 2.25 GiB segment (length only; never allocated)
	off := uint32(0x8FFF_FFF0)
	n := int32(0x7000_0020) // a valid positive length

	if legacy := off+uint32(n) > uint32(seglen); legacy {
		t.Fatalf("precondition: the legacy check must wrap and pass (sum=%#x)", off+uint32(n))
	}
	if memFits(seglen, off, int64(n)) {
		t.Errorf("memFits(%#x, %#x, %#x) = true, want false", seglen, off, n)
	}
}

// TestMemFitsTable pins the helper's edges, including the int(len) >
// 2^32 truncation WriteBytes used to be exposed to.
func TestMemFitsTable(t *testing.T) {
	for _, tc := range []struct {
		seglen int
		off    uint32
		n      int64
		want   bool
	}{
		{16, 0, 16, true},
		{16, 12, 4, true},
		{16, 12, 5, false},
		{16, 15, 0, true},
		{16, 0, -1, false},            // negative length
		{16, 8, 1 << 32, false},       // uint32(n) would truncate to 0 and pass
		{16, 8, (1 << 32) + 4, false}, // ... or to 4
		{0x9000_0000, 0, 0x7FFF_FFFF, true},
	} {
		if got := memFits(tc.seglen, tc.off, tc.n); got != tc.want {
			t.Errorf("memFits(%#x, %#x, %#x) = %v, want %v", tc.seglen, tc.off, tc.n, got, tc.want)
		}
	}
}

// TestReadWriteBytesOutOfRange drives the fixed checks end to end on a
// real segment: far-out-of-bounds lengths must error, never panic.
func TestReadWriteBytesOutOfRange(t *testing.T) {
	p := &Proc{segs: []*segment{
		{base: 0x1000, data: make([]byte, 64), writable: true, name: "t"},
	}}
	if _, err := p.ReadBytes(0x1030, 0x7FFF_FFFF); err == nil {
		t.Error("ReadBytes with a huge length must fail")
	}
	if _, err := p.ReadBytes(0x1030, -1); err == nil {
		t.Error("ReadBytes with a negative length must fail")
	}
	if err := p.WriteBytes(0x103C, make([]byte, 5)); err == nil {
		t.Error("WriteBytes past the segment end must fail")
	}
	if _, err := p.ReadWord(0x103E); err == nil {
		t.Error("ReadWord straddling the segment end must fail")
	}
	if b, err := p.ReadBytes(0x1000, 64); err != nil || len(b) != 64 {
		t.Errorf("full-segment read: %v, %d bytes", err, len(b))
	}
}

// TestWordRoundTripBoundaries drives the binary.LittleEndian word paths
// (cache-window hit and seg()-scan miss alike) at every segment edge:
// the last aligned word (offset len-4), straddling words (len-3..len-1),
// address-space wrap cases, and windows primed on a different segment.
// Each aligned case is a write/read round trip, so the two byte orders
// cannot drift apart.
func TestWordRoundTripBoundaries(t *testing.T) {
	const segLen = 0x100
	mk := func() *Proc {
		return &Proc{segs: []*segment{
			{base: 0x1000, data: make([]byte, segLen), writable: true, name: "w"},
			{base: 0x2000, data: make([]byte, segLen), name: "ro"},
			// A segment at the top of the address space (ending just
			// below 2^32): high-address offset arithmetic must not wrap.
			{base: 0xFFFF_FE00, data: make([]byte, segLen), writable: true, name: "top"},
		}}
	}
	roundTrip := func(t *testing.T, p *Proc, addr uint32, v int32) {
		t.Helper()
		if err := p.WriteWord(addr, v); err != nil {
			t.Fatalf("WriteWord(%#x): %v", addr, err)
		}
		got, err := p.ReadWord(addr)
		if err != nil || got != v {
			t.Fatalf("ReadWord(%#x) = %#x, %v; want %#x", addr, uint32(got), err, uint32(v))
		}
		// Second read must hit the cache window and agree byte for byte.
		again, err := p.ReadWord(addr)
		if err != nil || again != v {
			t.Fatalf("cached ReadWord(%#x) = %#x, %v", addr, uint32(again), err)
		}
	}

	t.Run("last-word", func(t *testing.T) {
		p := mk()
		roundTrip(t, p, 0x1000+segLen-4, -0x01020304)
		roundTrip(t, p, 0xFFFF_FE00+segLen-4, 0x7A7B7C7D) // last word below 2^32
	})
	t.Run("straddle", func(t *testing.T) {
		p := mk()
		for _, d := range []uint32{3, 2, 1} {
			addr := uint32(0x1000 + segLen - d)
			if err := p.WriteWord(addr, 1); err == nil {
				t.Errorf("WriteWord(len-%d) must fail", d)
			}
			if _, err := p.ReadWord(addr); err == nil {
				t.Errorf("ReadWord(len-%d) must fail", d)
			}
			// The top segment: the word would run past the segment end.
			addr = 0xFFFF_FE00 + (segLen - d)
			if err := p.WriteWord(addr, 1); err == nil {
				t.Errorf("WriteWord(wrap len-%d) must fail", d)
			}
			if _, err := p.ReadWord(addr); err == nil {
				t.Errorf("ReadWord(wrap len-%d) must fail", d)
			}
		}
	})
	t.Run("window-primed-elsewhere", func(t *testing.T) {
		// A window cached on the top segment must not serve low
		// addresses (addr-base wraps to a huge offset) and vice versa.
		p := mk()
		roundTrip(t, p, 0xFFFF_FE00, 0x11111111)
		roundTrip(t, p, 0x1000, 0x22222222)
		roundTrip(t, p, 0xFFFF_FE00+segLen-4, 0x33333333)
		if v, err := p.ReadWord(0xFFFF_FE00); err != nil || v != 0x11111111 {
			t.Fatalf("top word clobbered: %#x, %v", uint32(v), err)
		}
	})
	t.Run("read-only-window", func(t *testing.T) {
		p := mk()
		binary.LittleEndian.PutUint32(p.segs[1].data[segLen-4:], 0xCAFEBABE)
		if v, err := p.ReadWord(0x2000 + segLen - 4); err != nil || uint32(v) != 0xCAFEBABE {
			t.Fatalf("ro read: %#x, %v", uint32(v), err)
		}
		if err := p.WriteWord(0x2000, 1); err == nil {
			t.Fatal("write to read-only segment must fail")
		}
		// The failed write must not have installed a write window that
		// a later write could sneak through.
		if err := p.WriteWord(0x2000+4, 1); err == nil {
			t.Fatal("second write to read-only segment must fail")
		}
	})
	t.Run("segment-ending-at-wrap-unreachable", func(t *testing.T) {
		// A segment whose base+len is exactly 2^32 has always been
		// unreachable through the seg() scan (contains() wraps); the
		// cache windows are only ever installed by that scan, so the
		// fast path preserves the behaviour bit for bit.
		p := &Proc{segs: []*segment{
			{base: 0xFFFF_FF00, data: make([]byte, segLen), writable: true, name: "wrap"},
		}}
		if err := p.WriteWord(0xFFFF_FF00, 1); err == nil {
			t.Fatal("segment ending at 2^32 must stay unreachable (legacy parity)")
		}
		if _, err := p.ReadByteAt(0xFFFF_FFFF); err == nil {
			t.Fatal("top byte of wrap segment must stay unreachable (legacy parity)")
		}
	})
	t.Run("byte-boundaries", func(t *testing.T) {
		p := mk()
		if err := p.WriteByteAt(0x1000+segLen-1, 0x5A); err != nil {
			t.Fatal(err)
		}
		if v, err := p.ReadByteAt(0x1000 + segLen - 1); err != nil || v != 0x5A {
			t.Fatalf("byte at len-1: %#x, %v", v, err)
		}
		if err := p.WriteByteAt(0x1000+segLen, 1); err == nil {
			t.Fatal("byte write at len must fail")
		}
		if _, err := p.ReadByteAt(0x1000 + segLen); err == nil {
			t.Fatal("byte read at len must fail")
		}
		if err := p.WriteByteAt(0xFFFF_FE00+segLen-1, 0x66); err != nil {
			t.Fatal(err)
		}
		if v, err := p.ReadByteAt(0xFFFF_FE00 + segLen - 1); err != nil || v != 0x66 {
			t.Fatalf("top byte: %#x, %v", v, err)
		}
	})
}

// TestReadCStringSegments covers the segment-sliced scanner: strings
// ending inside a segment, spanning two adjacent segments, running into
// unmapped memory, and exceeding the 4096-byte cap.
func TestReadCStringSegments(t *testing.T) {
	a := &segment{base: 0x1000, data: []byte("hello\x00rest"), name: "a"}
	// b is bit-adjacent to a: a string may legitimately straddle them.
	b := &segment{base: a.base + uint32(len(a.data)), data: []byte("tail\x00"), name: "b"}
	long := &segment{base: 0x9000, data: make([]byte, 5000), name: "long"}
	for i := range long.data {
		long.data[i] = 'x'
	}
	p := &Proc{segs: []*segment{a, b, long}}

	if s, err := p.ReadCString(0x1000); err != nil || s != "hello" {
		t.Errorf("in-segment string: %q, %v", s, err)
	}
	if s, err := p.ReadCString(0x1006); err != nil || s != "resttail" {
		t.Errorf("segment-spanning string: %q, %v", s, err)
	}
	if _, err := p.ReadCString(0x9000 + 4998); err == nil {
		t.Error("string running off the last segment must fail")
	}
	if _, err := p.ReadCString(0x9000); err == nil {
		t.Error("unterminated 5000-byte run must exceed the cap and fail")
	}
	long.data[4095] = 0
	if s, err := p.ReadCString(0x9000); err != nil || len(s) != 4095 {
		t.Errorf("terminator at the cap boundary: len=%d, %v", len(s), err)
	}
}
