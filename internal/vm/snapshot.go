// Snapshot/restore: the fork-server campaign runtime (ZOFI-style).
//
// A fault-injection sweep runs thousands of experiments against
// byte-identical images; only the faultload differs. Building each run
// from scratch repeats the whole load pipeline — text copy, relocation
// patching, isa.DecodeAll, symbol-map construction — per experiment.
// Snapshot splits a spawned System into two halves:
//
//   - shared immutable template state: registered programs, patched
//     text, decoded []isa.Inst, the compiled superblock table the block
//     execution engine dispatches from (execCode, built once at
//     relocation), symbol tables and funcsVA (the whole Image, shared
//     by pointer when coverage is off), read-only segments, and the
//     frozen kernel template;
//   - mutable residue, deep-copied per Restore: writable data/TLS/
//     stack/heap segments, registers, flags, shadow call stack, brk,
//     kernel FS/FD state, and cycle counters.
//
// Mutable segment bytes are not deep-copied per Restore either: the
// snapshot precomputes a page-view table over each writable segment's
// frozen bytes, and Restore hands the new process a copy-on-write
// overlay of those shared pages (see cow.go). A page is copied only on
// the restored process's first write to it, so a Restore costs O(pages)
// slice headers up front and O(dirtied pages) over the run's lifetime —
// not O(writable bytes), and far below O(program size + decode +
// relocation). Options.FlatRestore disables the overlay and restores
// full private copies (the -cow=false escape hatch).
//
// A Snapshot is immutable and safe for concurrent
// Restore from any number of goroutines; each restored System is as
// private as a freshly spawned one and may be run, mutated and
// discarded independently. Host-function slots are copied per restore,
// so a caller may rebind a host function (RegisterHost) on one restored
// system — the fork-server idiom the LFI controller uses to attach a
// per-experiment trigger evaluator — without affecting siblings.
package vm

import (
	"errors"

	"lfi/internal/isa"
	"lfi/internal/kernel"
	"lfi/internal/obj"
)

// Snapshot is an immutable template of a System. The classic use takes
// it right after Spawn (the post-load entry point) and before Run, but
// any stopped System snapshots exactly: registers, CoW page tables,
// kernel FS/FD/pipe state, cycle counters and — when RunBreak froze the
// system mid-slice — the scheduler's position inside the interrupted
// round, so a restored system replays the slice boundaries of an
// unbroken run. Mid-execution snapshots are what the sweep memoizer
// mints at a plan's first-fire site.
type Snapshot struct {
	opts        Options
	programs    map[string]*obj.File
	hosts       []HostFunc
	hostIdx     map[string]int
	kern        *kernel.Snapshot
	nextPID     int
	totalCycles uint64
	resume      *schedResume
	procs       []procSnap
}

// Footprint estimates the bytes a snapshot keeps alive on its own —
// the writable segment copies plus page-view headers. Read-only
// segments, images and decoded instructions are shared with the
// template system and not counted. This is the unit of the sweep memo
// cache's byte budget.
func (s *Snapshot) Footprint() int64 {
	n := int64(4096) // struct + kernel clone overhead, approximately
	for i := range s.procs {
		for _, sg := range s.procs[i].segs {
			if sg.writable {
				n += int64(len(sg.data)) + int64(len(sg.pages))*24
			}
		}
	}
	return n
}

// procSnap freezes one process: template images and read-only segments
// are shared, writable segment bytes are copied into the snapshot.
type procSnap struct {
	id        int
	regs      [isa.NumRegs]uint32
	pc        uint32
	flagEQ    bool
	flagLT    bool
	images    []*Image
	segs      []segSnap
	heapIdx   int
	brk       uint32
	exited    bool
	status    ExitStatus
	cycles    uint64
	callStack []Frame
	cfg       SpawnConfig
	parentIdx int // index into Snapshot.procs; -1 = no parent
	reaped    bool
	blocked   bool
}

type segSnap struct {
	base     uint32
	data     []byte // frozen template bytes; shared on restore iff !writable
	pages    [][]byte // page views over data; CoW restores copy this table
	writable bool
	name     string
}

// Snapshot freezes the system's current state into an immutable
// template. The system itself is left untouched and remains runnable;
// writable memory is copied out, so later mutations of the live system
// do not leak into the template.
func (s *System) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{
		opts:        s.opts,
		programs:    make(map[string]*obj.File, len(s.programs)),
		hosts:       append([]HostFunc(nil), s.hosts...),
		hostIdx:     make(map[string]int, len(s.hostIdx)),
		kern:        s.kern.Snapshot(),
		nextPID:     s.nextPID,
		totalCycles: s.TotalCycles,
	}
	if s.resume != nil {
		r := *s.resume
		snap.resume = &r
	}
	for name, f := range s.programs {
		snap.programs[name] = f
	}
	for name, idx := range s.hostIdx {
		snap.hostIdx[name] = idx
	}
	procIdx := make(map[*Proc]int, len(s.procs))
	for i, p := range s.procs {
		procIdx[p] = i
	}
	for _, p := range s.procs {
		ps := procSnap{
			id:        p.ID,
			regs:      p.Regs,
			pc:        p.PC,
			flagEQ:    p.flagEQ,
			flagLT:    p.flagLT,
			images:    copyImages(p.Images, s.opts.Coverage),
			heapIdx:   -1,
			brk:       p.brk,
			exited:    p.Exited,
			status:    p.Status,
			cycles:    p.Cycles,
			callStack: append([]Frame(nil), p.CallStack...),
			cfg:       p.cfg,
			parentIdx: -1,
			reaped:    p.reaped,
			blocked:   p.blocked,
		}
		if p.parent != nil {
			idx, ok := procIdx[p.parent]
			if !ok {
				return nil, errors.New("vm: snapshot: process parent outside the system")
			}
			ps.parentIdx = idx
		}
		for i, sg := range p.segs {
			data := sg.data
			var pages [][]byte
			if sg.writable {
				// Flatten through copyTo so snapshotting a restored
				// (CoW) system works, and precompute the shared page
				// views every Restore will alias.
				data = make([]byte, sg.length())
				sg.copyTo(data)
				pages = pageViews(data)
			}
			ps.segs = append(ps.segs, segSnap{
				base: sg.base, data: data, pages: pages,
				writable: sg.writable, name: sg.name,
			})
			if sg == p.heap {
				ps.heapIdx = i
			}
		}
		if p.heap != nil && ps.heapIdx < 0 {
			return nil, errors.New("vm: snapshot: heap segment not in segment list")
		}
		snap.procs = append(snap.procs, ps)
	}
	return snap, nil
}

// Restore mints a fresh runnable System from the template. Only the
// mutable residue is deep-copied; text, decoded instructions and symbol
// tables are shared with the template and every sibling restore. The
// returned system owns private copies of the program registry and
// host-function table, so RegisterHost/Register on it never races a
// concurrent sibling.
func (s *Snapshot) Restore() *System {
	sys := &System{
		opts:        s.opts,
		programs:    make(map[string]*obj.File, len(s.programs)),
		hosts:       append([]HostFunc(nil), s.hosts...),
		hostIdx:     make(map[string]int, len(s.hostIdx)),
		kern:        s.kern.Restore(),
		nextPID:     s.nextPID,
		TotalCycles: s.totalCycles,
	}
	if s.resume != nil {
		r := *s.resume
		sys.resume = &r
	}
	for name, f := range s.programs {
		sys.programs[name] = f
	}
	for name, idx := range s.hostIdx {
		sys.hostIdx[name] = idx
	}

	procs := make([]*Proc, len(s.procs))
	for i := range s.procs {
		ps := &s.procs[i]
		p := &Proc{
			ID:        ps.id,
			Sys:       sys,
			Regs:      ps.regs,
			PC:        ps.pc,
			flagEQ:    ps.flagEQ,
			flagLT:    ps.flagLT,
			Exited:    ps.exited,
			Status:    ps.status,
			Cycles:    ps.cycles,
			CallStack: append([]Frame(nil), ps.callStack...),
			brk:       ps.brk,
			cfg:       ps.cfg,
			reaped:    ps.reaped,
			blocked:   ps.blocked,
		}
		p.Images = copyImages(ps.images, s.opts.Coverage)
		for j, sg := range ps.segs {
			seg := &segment{base: sg.base, writable: sg.writable, name: sg.name}
			switch {
			case !sg.writable:
				// Read-only: share the template bytes outright.
				seg.data = sg.data
			case s.opts.FlatRestore:
				seg.data = append([]byte(nil), sg.data...)
			default:
				// Copy-on-write: alias the snapshot's shared page views;
				// the write barrier (Proc.privatize) copies a page on
				// first write. "Reset to shared" on the next Restore is
				// free — each restore mints a fresh page table off the
				// same template, and dirty pages die with their System.
				seg.cow = &cowSeg{
					length: len(sg.data),
					pages:  append([][]byte(nil), sg.pages...),
					dirty:  make([]bool, len(sg.pages)),
				}
			}
			p.segs = append(p.segs, seg)
			if j == ps.heapIdx {
				p.heap = seg
			}
		}
		procs[i] = p
	}
	// Second pass: rebind the process tree (parent pointers, children,
	// SpawnConfig parents) onto the restored processes.
	for i := range s.procs {
		ps := &s.procs[i]
		if ps.parentIdx >= 0 {
			parent := procs[ps.parentIdx]
			procs[i].parent = parent
			procs[i].cfg.parent = parent
			parent.children = append(parent.children, procs[i])
		}
	}
	sys.procs = procs
	return sys
}

// copyImages freezes or restores an image list. Without coverage the
// images are immutable after relocation (File, patched text, decoded
// Insts, the compiled block table and symbol tables never change at
// run time), so the pointers are shared outright. With coverage on,
// CoverBits is written during execution, so both directions take
// shallow image copies with private bit vectors: Snapshot must not see
// coverage from a template that keeps running, and a restore must not
// see a sibling's. The shallow copy still shares exec — the block
// table is derived from Insts alone, so every restore dispatches from
// the template's compiled form without recompiling.
func copyImages(images []*Image, coverage bool) []*Image {
	if !coverage {
		return images
	}
	out := make([]*Image, len(images))
	for i, im := range images {
		c := *im
		c.CoverBits = append([]uint64(nil), im.CoverBits...)
		out[i] = &c
	}
	return out
}
