package vm

// RunBreak / mid-execution snapshot equivalence suite: a run stopped at
// a breakpoint, snapshotted, restored and continued must be observably
// identical — registers, flags, memory, call stack, per-process and
// total cycles, exit status, scheduler verdicts — to a run that never
// stopped. This is the correctness foundation of prefix-memoized
// sweeps (internal/core/memo.go).

import (
	"fmt"
	"testing"
)

// breakLibSrc is the intercept-shaped library: f's entry is the
// breakpoint target (like an interceptor stub's first instruction, it
// cannot block), and each call mutates a global.
const breakLibSrc = `
.lib libbrk.so
.global f
.global gcount
.dataw gcount 0
.func f
  lea r1, gcount
  load r2, [r1+0]
  add r2, 1
  store [r1+0], r2
  mov r0, r2
  ret
`

// breakExeSrc grows the heap mid-run (brk) and then loops: each
// iteration calls f and stores the running count into the mid-Brk heap
// — so a snapshot taken at call N freezes heap state no entry-point
// snapshot ever exercises.
const breakExeSrc = `
.exe breaker
.needs libbrk.so
.extern f
.global main
.func main
  ; brk(0x40000200): grow the heap before the loop
  mov r0, 7
  mov r1, 0x40000200
  syscall
  mov r5, 0
.loop:
  call f
  ; heap[0x40000100 + 4*i] = f() result
  mov r1, r5
  add r1, r1
  add r1, r1
  add r1, 0x40000100
  store [r1+0], r0
  add r5, 1
  cmp r5, 5
  jl .loop
  mov r0, r5
  ret
`

func breakSystem(t testing.TB, opts Options) *System {
	t.Helper()
	sys := NewSystem(opts)
	sys.Register(assembleSrc(t, breakLibSrc))
	sys.Register(assembleSrc(t, breakExeSrc))
	if _, err := sys.Spawn("breaker", SpawnConfig{}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func breakTargetVA(t testing.TB, sys *System, image, symbol string) uint32 {
	t.Helper()
	im, ok := sys.procs[0].ImageByName(image)
	if !ok {
		t.Fatalf("no image %s", image)
	}
	va, ok := im.SymbolVA(symbol)
	if !ok {
		t.Fatalf("no symbol %s in %s", symbol, image)
	}
	return va
}

// TestRunBreakEquivalence: break at the N-th arrival, snapshot, restore
// and finish — full machine state must match an unbroken run, for both
// engines, across slice widths that put the breakpoint at every
// position inside a slice, for early/middle/last arrivals.
func TestRunBreakEquivalence(t *testing.T) {
	for _, engine := range []string{EngineStep, EngineBlock} {
		for _, slice := range []int{1, 3, 7, 4096} {
			for _, target := range []int32{1, 3, 5} {
				name := fmt.Sprintf("%s/slice%d/call%d", engine, slice, target)
				t.Run(name, func(t *testing.T) {
					opts := Options{Engine: engine, TimeSlice: slice, StackSize: 1 << 13}
					ref := breakSystem(t, opts)
					if err := ref.Run(0); err != nil {
						t.Fatalf("reference run: %v", err)
					}

					sys := breakSystem(t, opts)
					va := breakTargetVA(t, sys, "libbrk.so", "f")
					hit, err := sys.RunBreak(va, target, 0)
					if err != nil || !hit {
						t.Fatalf("RunBreak(call %d) = (%v, %v), want hit", target, hit, err)
					}
					if pc := sys.procs[0].PC; pc != va {
						t.Fatalf("stopped at pc=%#x, want %#x", pc, va)
					}
					// The instruction at va has not executed: f has run
					// target-1 times.
					gva := breakTargetVA(t, sys, "libbrk.so", "gcount")
					if g, _ := sys.procs[0].ReadWord(gva); g != target-1 {
						t.Fatalf("gcount at break = %d, want %d", g, target-1)
					}
					snap, err := sys.Snapshot()
					if err != nil {
						t.Fatalf("mid-execution snapshot: %v", err)
					}
					r := snap.Restore()
					if err := r.Run(0); err != nil {
						t.Fatalf("restored run: %v", err)
					}
					if ref.TotalCycles != r.TotalCycles {
						t.Errorf("TotalCycles %d (unbroken) != %d (restored)", ref.TotalCycles, r.TotalCycles)
					}
					compareProcs(t, 0, ref.procs[0], r.procs[0])

					// The broken system itself (not just a restore) also
					// finishes identically.
					if err := sys.Run(0); err != nil {
						t.Fatalf("broken system continue: %v", err)
					}
					if ref.TotalCycles != sys.TotalCycles {
						t.Errorf("TotalCycles %d (unbroken) != %d (continued)", ref.TotalCycles, sys.TotalCycles)
					}
					compareProcs(t, 1, ref.procs[0], sys.procs[0])
				})
			}
		}
	}
}

// TestRunBreakRestoreIsolation: two restores from one mid-execution
// snapshot run independently — the heap a sibling keeps writing stays
// frozen in the snapshot and in unrun siblings.
func TestRunBreakRestoreIsolation(t *testing.T) {
	sys := breakSystem(t, Options{StackSize: 1 << 13})
	va := breakTargetVA(t, sys, "libbrk.so", "f")
	if hit, err := sys.RunBreak(va, 3, 0); err != nil || !hit {
		t.Fatalf("RunBreak = (%v, %v)", hit, err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, b := snap.Restore(), snap.Restore()
	if err := a.Run(0); err != nil {
		t.Fatal(err)
	}
	// a finished the loop: heap slot 4 written. b is still frozen at
	// call 3: slots 2+ untouched (two iterations completed pre-break).
	if w, _ := a.procs[0].ReadWord(0x4000_0100 + 4*4); w != 5 {
		t.Errorf("finished sibling heap[4] = %d, want 5", w)
	}
	if w, _ := b.procs[0].ReadWord(0x4000_0100 + 4*2); w != 0 {
		t.Errorf("frozen sibling heap[2] = %d, want 0", w)
	}
	if err := b.Run(0); err != nil {
		t.Fatal(err)
	}
	compareProcs(t, 0, a.procs[0], b.procs[0])
}

// TestRunBreakBudgetPhase sweeps budgets across the whole run: the
// broken-and-restored system must return the same verdict (ErrBudget or
// nil) at the same TotalCycles as the unbroken run for every budget —
// the resumed partial round must land budget checks on identical slice
// boundaries.
func TestRunBreakBudgetPhase(t *testing.T) {
	for _, slice := range []int{4, 16} {
		opts := Options{TimeSlice: slice, StackSize: 1 << 13}
		full := breakSystem(t, opts)
		if err := full.Run(0); err != nil {
			t.Fatal(err)
		}
		total := full.TotalCycles
		for budget := uint64(30); budget <= total+10; budget += 7 {
			ref := breakSystem(t, opts)
			refErr := ref.Run(budget)

			sys := breakSystem(t, opts)
			va := breakTargetVA(t, sys, "libbrk.so", "f")
			hit, err := sys.RunBreak(va, 3, budget)
			if !hit {
				// Budget ran out before the third call: verdict and cycle
				// count must match the plain run's.
				if err != refErr || sys.TotalCycles != ref.TotalCycles {
					t.Errorf("slice=%d budget=%d: no-hit (%v, %d), plain run (%v, %d)",
						slice, budget, err, sys.TotalCycles, refErr, ref.TotalCycles)
				}
				continue
			}
			snap, err := sys.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			r := snap.Restore()
			gotErr := r.Run(budget)
			if gotErr != refErr || r.TotalCycles != ref.TotalCycles {
				t.Errorf("slice=%d budget=%d: restored (%v, %d), plain run (%v, %d)",
					slice, budget, gotErr, r.TotalCycles, refErr, ref.TotalCycles)
			}
		}
	}
}

// TestRunBreakNotReached: when the run finishes before the target
// arrival, RunBreak reports no hit with Run-identical final state.
func TestRunBreakNotReached(t *testing.T) {
	ref := breakSystem(t, Options{StackSize: 1 << 13})
	if err := ref.Run(0); err != nil {
		t.Fatal(err)
	}
	sys := breakSystem(t, Options{StackSize: 1 << 13})
	va := breakTargetVA(t, sys, "libbrk.so", "f")
	hit, err := sys.RunBreak(va, 99, 0)
	if hit || err != nil {
		t.Fatalf("RunBreak(call 99) = (%v, %v), want clean finish", hit, err)
	}
	if ref.TotalCycles != sys.TotalCycles {
		t.Errorf("TotalCycles %d != %d", ref.TotalCycles, sys.TotalCycles)
	}
	compareProcs(t, 0, ref.procs[0], sys.procs[0])

	if _, err := sys.RunBreak(va, 0, 0); err == nil {
		t.Error("RunBreak(target 0) should reject")
	}
}

// Multi-process break: the parent blocks on a half-full pipe, a kid is
// mid-flight, and the breakpoint lands between the parent's two reads —
// the mid-execution snapshot must carry in-flight pipe bytes, the
// blocked/runnable states and the partial scheduler round.
const breakKidSrc = `
.exe kid
.global main
.dataw w0 0x64636261
.dataw w1 0x68676665
.func main
  ; write 8 bytes to fd 1 (inherited pipe end), then exit 33
  lea r2, w0
  mov r0, 3
  mov r1, 1
  mov r3, 8
  syscall
  mov r0, 1
  mov r1, 33
  syscall
`

const breakParentSrc = `
.exe parent
.global main
.global helper
.datab prog "kid"
.data fds 8
.data buf 16
.data st 4
.func helper
  ; marker between the two reads: the breakpoint target
  mov r5, 0x7e57
  ret
.func main
  ; pipe(fds)
  mov r0, 6
  lea r1, fds
  syscall
  ; spawn("kid", wfd -> kid fd1)
  mov r0, 8
  lea r1, prog
  mov r2, 0
  lea r3, fds
  load r3, [r3+4]
  syscall
  mov r4, r0
  ; read(rfd, buf, 4): may block until the kid writes
  mov r0, 2
  lea r1, fds
  load r1, [r1+0]
  lea r2, buf
  mov r3, 4
  syscall
  call helper
  ; read(rfd, buf+4, 4): the other half stays in flight across the break
  mov r0, 2
  lea r1, fds
  load r1, [r1+0]
  lea r2, buf
  add r2, 4
  mov r3, 4
  syscall
  ; wait(pid, &st)
  mov r0, 9
  mov r1, r4
  lea r2, st
  syscall
  lea r1, st
  load r0, [r1+0]
  ret
`

func TestRunBreakMultiProcess(t *testing.T) {
	for _, engine := range []string{EngineStep, EngineBlock} {
		for _, slice := range []int{1, 2, 5, 4096} {
			t.Run(fmt.Sprintf("%s/slice%d", engine, slice), func(t *testing.T) {
				mk := func() *System {
					sys := NewSystem(Options{Engine: engine, TimeSlice: slice, StackSize: 1 << 13})
					sys.Register(assembleSrc(t, breakKidSrc))
					sys.Register(assembleSrc(t, breakParentSrc))
					if _, err := sys.Spawn("parent", SpawnConfig{}); err != nil {
						t.Fatal(err)
					}
					return sys
				}
				ref := mk()
				if err := ref.Run(0); err != nil {
					t.Fatalf("reference run: %v", err)
				}
				if code := ref.procs[0].Status.Code; code != 33 {
					t.Fatalf("reference exit = %d, want kid status 33", code)
				}

				sys := mk()
				va := breakTargetVA(t, sys, "parent", "helper")
				hit, err := sys.RunBreak(va, 1, 0)
				if err != nil || !hit {
					t.Fatalf("RunBreak = (%v, %v), want hit", hit, err)
				}
				snap, err := sys.Snapshot()
				if err != nil {
					t.Fatalf("mid-execution snapshot: %v", err)
				}
				r := snap.Restore()
				if err := r.Run(0); err != nil {
					t.Fatalf("restored run: %v", err)
				}
				if ref.TotalCycles != r.TotalCycles {
					t.Errorf("TotalCycles %d (unbroken) != %d (restored)", ref.TotalCycles, r.TotalCycles)
				}
				if len(ref.procs) != len(r.procs) {
					t.Fatalf("proc count %d != %d", len(ref.procs), len(r.procs))
				}
				for i := range ref.procs {
					compareProcs(t, i, ref.procs[i], r.procs[i])
				}
			})
		}
	}
}
