package vm

// Cache-invalidation coverage for the execution engine's two caches:
// the per-proc read/write segment windows (memWindow) and the per-image
// compiled block table (execCode). Serving stale entries would mean
// reads from a pre-Brk heap array, writes lost into a dropped backing
// slice, or blocks executed from the wrong image — each test drives the
// scenario end to end and checks the observable memory state.

import (
	"testing"

	"lfi/internal/isa"
)

// memProc builds a minimal process with a writable heap-like segment,
// enough for the word/byte paths and Brk to run without a full Spawn.
func memProc(heapLen int) *Proc {
	sys := NewSystem(Options{HeapLimit: 1 << 20})
	p := &Proc{Sys: sys, brk: heapBase + uint32(heapLen)}
	p.heap = &segment{base: heapBase, data: make([]byte, heapLen), writable: true, name: "heap"}
	p.segs = append(p.segs, p.heap)
	return p
}

// TestSegmentCacheInvalidation is the table-driven stale-window check:
// each mutation that swaps or grows a segment's backing array must drop
// the cached read/write windows so the next access re-resolves.
func TestSegmentCacheInvalidation(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"brk-growth-write-window", func(t *testing.T) {
			p := memProc(64)
			// Prime the write window on the old heap array.
			if err := p.WriteWord(heapBase, 0x11223344); err != nil {
				t.Fatal(err)
			}
			if p.wrc.data == nil {
				t.Fatal("write window not primed")
			}
			old := p.heap.data
			if ret := p.Brk(heapBase + 4096); ret < 0 {
				t.Fatalf("brk: %d", ret)
			}
			if &p.heap.data[0] == &old[0] {
				t.Skip("append did not move the heap; stale-window hazard not reproducible")
			}
			if p.wrc.data != nil || p.rdc.data != nil {
				t.Fatal("Brk growth must invalidate both cache windows")
			}
			// A write after growth must land in the new array...
			if err := p.WriteWord(heapBase+8, 0x55667788); err != nil {
				t.Fatal(err)
			}
			if v, _ := p.ReadWord(heapBase + 8); v != 0x55667788 {
				t.Fatalf("post-brk write read back %#x", uint32(v))
			}
			// ...and the pre-growth value must have been carried over.
			if v, _ := p.ReadWord(heapBase); v != 0x11223344 {
				t.Fatalf("pre-brk value read back %#x", uint32(v))
			}
			// The old array must not see the new write (proves the new
			// window is not aliasing the dropped allocation).
			if old[8] != 0 {
				t.Fatal("write leaked into the pre-brk backing array")
			}
		}},
		{"brk-growth-read-window", func(t *testing.T) {
			p := memProc(64)
			p.heap.data[0] = 0xAB
			if _, err := p.ReadByteAt(heapBase); err != nil {
				t.Fatal(err)
			}
			if p.rdc.data == nil {
				t.Fatal("read window not primed")
			}
			if ret := p.Brk(heapBase + 4096); ret < 0 {
				t.Fatalf("brk: %d", ret)
			}
			if p.rdc.data != nil {
				t.Fatal("Brk growth must invalidate the read window")
			}
			// Bytes past the old length exist only in the new array; a
			// stale window would fault (or read the wrong array).
			if v, err := p.ReadByteAt(heapBase + 100); err != nil || v != 0 {
				t.Fatalf("read past old length: %v %v", v, err)
			}
		}},
		{"brk-shrink-regrow", func(t *testing.T) {
			p := memProc(0)
			if ret := p.Brk(heapBase + 0x1000); ret < 0 {
				t.Fatalf("grow: %d", ret)
			}
			if err := p.WriteWord(heapBase+0x800, 0x5EEDF00D); err != nil {
				t.Fatal(err)
			}
			if ret := p.Brk(heapBase + 0x100); ret < 0 {
				t.Fatalf("shrink: %d", ret)
			}
			if p.wrc.data != nil || p.rdc.data != nil {
				t.Fatal("shrink must invalidate the cache windows")
			}
			// Memory beyond brk is unmapped after the shrink...
			if err := p.WriteWord(heapBase+0x800, 1); err == nil {
				t.Fatal("write beyond shrunk brk must fail")
			}
			if ret := p.Brk(heapBase + 0x1000); ret < 0 {
				t.Fatalf("regrow: %d", ret)
			}
			// ...and regrown memory reads as zero, not as the stale
			// pre-shrink bytes.
			if v, err := p.ReadWord(heapBase + 0x800); err != nil || v != 0 {
				t.Fatalf("regrown word = %#x, %v; want 0", uint32(v), err)
			}
			if got := len(p.heap.data); got != 0x1000 {
				t.Fatalf("heap length %#x desynchronised from brk", got)
			}
		}},
		{"brk-query-keeps-windows", func(t *testing.T) {
			p := memProc(64)
			if err := p.WriteWord(heapBase, 1); err != nil {
				t.Fatal(err)
			}
			if ret := p.Brk(0); uint32(ret) != p.brk {
				t.Fatalf("brk(0) = %d", ret)
			}
			if p.wrc.data == nil {
				t.Fatal("brk(0) is a query; it must not drop the windows")
			}
		}},
		{"cow-privatize-drops-read-window", func(t *testing.T) {
			// Rebuild the heap as a CoW overlay of a shared template —
			// the shape a snapshot Restore produces.
			p := memProc(0)
			template := make([]byte, 2*pageSize)
			template[5] = 0xAA
			p.heap.data = nil
			p.heap.cow = &cowSeg{
				length: len(template),
				pages:  pageViews(template),
				dirty:  make([]bool, 2),
			}
			p.brk = heapBase + uint32(len(template))
			// Prime the read window on the shared first page.
			if v, err := p.ReadByteAt(heapBase + 5); err != nil || v != 0xAA {
				t.Fatalf("template read: %#x, %v", v, err)
			}
			if p.rdc.data == nil {
				t.Fatal("read window not primed")
			}
			// The first write to the page copies it; the read window
			// aliasing the shared view must drop, or the next read keeps
			// serving template bytes the write no longer reaches.
			if err := p.WriteByteAt(heapBase+6, 0x42); err != nil {
				t.Fatal(err)
			}
			if v, _ := p.ReadByteAt(heapBase + 6); v != 0x42 {
				t.Fatalf("read after privatizing write = %#x, want 0x42 (stale shared-page window)", v)
			}
			if template[6] != 0 {
				t.Fatal("write leaked into the shared template page")
			}
			// Untouched neighbouring pages stay shared and readable.
			if v, err := p.ReadByteAt(heapBase + pageSize + 1); err != nil || v != 0 {
				t.Fatalf("untouched page read: %#x, %v", v, err)
			}
			if p.heap.cow.dirty[1] {
				t.Fatal("untouched page marked dirty")
			}
		}},
		{"window-rejects-other-segment", func(t *testing.T) {
			p := memProc(64)
			lo := &segment{base: 0x1000, data: make([]byte, 64), writable: true, name: "lo"}
			p.segs = append(p.segs, lo)
			// Prime both windows on the heap, then access the low
			// segment: the wrapped offset must miss, not alias.
			if err := p.WriteWord(heapBase, 7); err != nil {
				t.Fatal(err)
			}
			if _, err := p.ReadWord(heapBase); err != nil {
				t.Fatal(err)
			}
			if err := p.WriteWord(0x1000, 0x0BADF00D); err != nil {
				t.Fatal(err)
			}
			if v, _ := p.ReadWord(0x1000); v != 0x0BADF00D {
				t.Fatalf("cross-segment write read back %#x", uint32(v))
			}
			if v, _ := p.ReadWord(heapBase); v != 7 {
				t.Fatalf("heap word clobbered: %#x", uint32(v))
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestRestoreStartsWithColdCaches pins the snapshot contract: priming
// the template's windows must not leak into restores (each restored
// proc owns fresh segment arrays; a carried window would alias the
// template's memory and corrupt it from a sibling run).
func TestRestoreStartsWithColdCaches(t *testing.T) {
	var obs []hostObs
	sys := NewSystem(Options{StackSize: 1 << 14, HeapLimit: 1 << 16})
	buildCorpusApp(t, sys, &obs)
	tpl := sys.procs[0]
	// Prime the template's windows on its own stack/data.
	if err := tpl.WriteWord(tpl.Regs[isa.SP]-8, 0x7777); err != nil {
		t.Fatal(err)
	}
	if _, err := tpl.ReadWord(tpl.Regs[isa.SP] - 8); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r1 := snap.Restore()
	p1 := r1.procs[0]
	if p1.rdc.data != nil || p1.wrc.data != nil {
		t.Fatal("restored proc must start with cold cache windows")
	}
	// Write through the restored proc and verify the template and a
	// sibling restore see nothing (the window must bind to the
	// restore's own copy of the segment).
	addr := p1.Regs[isa.SP] - 8
	if err := p1.WriteWord(addr, 0x1234); err != nil {
		t.Fatal(err)
	}
	if v, _ := tpl.ReadWord(addr); v == 0x1234 && addr != tpl.Regs[isa.SP]-8 {
		t.Fatal("restore write visible in template")
	}
	tv, _ := tpl.ReadWord(tpl.Regs[isa.SP] - 8)
	if tv != 0x7777 {
		t.Fatalf("template word changed to %#x after restore write", uint32(tv))
	}
	p2 := snap.Restore().procs[0]
	if v, _ := p2.ReadWord(addr); v == 0x1234 {
		t.Fatal("restore write visible in sibling restore")
	}
}

// TestBlockCacheCrossImage pins the block-table side: a DlNext
// tail-jump chain hops exe -> stub -> library text in one call, and
// each hop must dispatch the destination image's own compiled blocks
// (a stale table would mis-slice the run or mis-cover the wrong image).
func TestBlockCacheCrossImage(t *testing.T) {
	lib := assembleSrc(t, `
.lib libreal.so
.global f
.func f
  load r1, [sp+4]
  add r1, 1000
  mov r0, r1
  ret
`)
	stub := assembleSrc(t, `
.lib stub.so
.needs libreal.so
.global f
.func f
  dlnext r3, f
  jmpi r3
`)
	exe := assembleSrc(t, `
.exe main
.extern f
.global main
.func main
  push 42
  call f
  pop r1
  ret
`)
	sys := NewSystem(Options{Engine: EngineBlock, StackSize: 1 << 13, Coverage: true})
	sys.Register(lib)
	sys.Register(stub)
	sys.Register(exe)
	p, err := sys.Spawn("main", SpawnConfig{Preload: []string{"stub.so"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Status.Code != 1042 {
		t.Fatalf("exit = %+v, want 1042 (42 through stub and library)", p.Status)
	}
	// Every image on the chain has its own block table and its own
	// coverage: each must have been executed under its own table.
	for _, name := range []string{"main", "stub.so", "libreal.so"} {
		im, ok := p.ImageByName(name)
		if !ok {
			t.Fatalf("image %s missing", name)
		}
		if im.exec == nil {
			t.Fatalf("image %s has no compiled blocks", name)
		}
		if !im.Covered(0) {
			t.Errorf("image %s: entry instruction not covered", name)
		}
	}
}

// TestEngineAllocFree is the AllocsPerOp floor for both engines: with
// the fail closure hoisted out of step() and the segment windows
// replacing per-access error allocations, steady-state interpretation
// of compute code allocates nothing on either engine.
func TestEngineAllocFree(t *testing.T) {
	for _, engine := range []string{EngineStep, EngineBlock} {
		t.Run(engine, func(t *testing.T) {
			sys := NewSystem(Options{Engine: engine, StackSize: 1 << 13})
			sys.Register(assembleSrc(t, `
.exe spin
.global main
.func main
.loop:
  add r1, 1
  push r1
  pop r2
  add r3, r2
  cmp r1, 0
  jne .loop
  ret
`))
			if _, err := sys.Spawn("spin", SpawnConfig{}); err != nil {
				t.Fatal(err)
			}
			// Warm the segment windows and block dispatch.
			if err := sys.RunUntil(nil, 10_000); err != ErrBudget {
				t.Fatalf("warmup: %v", err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := sys.RunUntil(nil, 50_000); err != ErrBudget {
					t.Fatalf("run: %v", err)
				}
			})
			if allocs > 0 {
				t.Errorf("engine %s allocates %.1f objects per 50k instructions, want 0", engine, allocs)
			}
		})
	}
}
