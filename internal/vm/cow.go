// Copy-on-write segment memory for snapshot restores.
//
// A Restore used to deep-copy every writable byte of the template —
// O(writable bytes) per experiment, paid mostly for stack and heap
// pages the run never touches. The CoW representation shares the
// template's frozen bytes page by page instead: a restored segment
// starts as a table of page views aliasing the snapshot's flat copy,
// every view read-only by convention, and the write barrier in the
// Proc memory slow paths replaces a view with a private 4 KiB copy on
// the first write to its page. Restore therefore costs O(pages) slice
// headers, and a run's total copy cost is O(dirtied pages).
//
// Lifecycle: share (Restore points pages[i] at the template), copy
// (privatize on first write), reset (the next Restore mints a fresh
// page table off the same template — dirty pages are simply dropped
// with their System). The template itself is never written: every
// write path goes through privatize before touching bytes.
//
// Write-barrier placement: all writes funnel through the slow paths
// (writeWordSlow, writeByteSlow, WriteBytes) because the fast paths
// only ever hit the wrc window, and wrc is only ever installed over a
// page that privatize has already copied. Reads may hit shared pages
// through rdc — harmless — but the first write to a page must drop an
// rdc window aliasing that page's shared view, or reads would keep
// serving template bytes the writes no longer reach (the
// cow-privatize-drops-read-window regression case).
package vm

// CoW page geometry. 4 KiB balances restore cost (one slice header
// per page) against copy granularity (one memcpy per dirtied page).
const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// cowSeg is the copy-on-write overlay of one writable segment. When a
// segment carries a cowSeg, its flat data slice is nil and all access
// goes through the page table.
type cowSeg struct {
	// length is the segment's total byte length (the flat-data
	// equivalent of len(data); the last page may be partial).
	length int
	// pages[i] is the current view of page i: an alias of the
	// snapshot's shared template page until the first write, a private
	// copy afterwards. Views are read through freely; writes require
	// dirty[i] (i.e. privatize first).
	pages [][]byte
	// dirty[i] marks pages[i] as privately owned and writable.
	dirty []bool
}

// pageViews slices a flat byte array into capped page views — the
// shared table a Snapshot precomputes once so every Restore only
// copies slice headers.
func pageViews(data []byte) [][]byte {
	n := (len(data) + pageSize - 1) >> pageShift
	views := make([][]byte, n)
	for i := range views {
		lo := i << pageShift
		hi := lo + pageSize
		if hi > len(data) {
			hi = len(data)
		}
		views[i] = data[lo:hi:hi]
	}
	return views
}

// length returns the segment's byte length regardless of representation.
func (s *segment) length() int {
	if s.cow != nil {
		return s.cow.length
	}
	return len(s.data)
}

// view returns the longest contiguous readable run starting at off:
// the rest of a flat segment, or the rest of one page of a CoW one.
// off must be in bounds.
func (s *segment) view(off uint32) []byte {
	if s.cow == nil {
		return s.data[off:]
	}
	return s.cow.pages[off>>pageShift][off&pageMask:]
}

// byteAt reads one in-bounds byte through either representation.
func (s *segment) byteAt(off uint32) byte {
	if s.cow == nil {
		return s.data[off]
	}
	return s.cow.pages[off>>pageShift][off&pageMask]
}

// copyTo flattens the segment's full contents into dst (len >= length).
func (s *segment) copyTo(dst []byte) {
	if s.cow == nil {
		copy(dst, s.data)
		return
	}
	for i, pg := range s.cow.pages {
		copy(dst[i<<pageShift:], pg)
	}
}

// flatten renders the segment as one contiguous slice: the backing
// array itself for flat segments, a fresh joined copy for CoW ones.
// Oracle/test helper — the execution paths never call it.
func (s *segment) flatten() []byte {
	if s.cow == nil {
		return s.data
	}
	out := make([]byte, s.cow.length)
	s.copyTo(out)
	return out
}

// materialize converts a CoW segment back to a private flat backing
// array. Brk calls it before resizing the heap: growth and shrink
// reason about one contiguous slice, and a resized segment no longer
// matches the template's page geometry anyway. The caller must
// invalidate the window cache (page views die with the overlay).
func (s *segment) materialize() {
	if s.cow == nil {
		return
	}
	data := make([]byte, s.cow.length)
	s.copyTo(data)
	s.data = data
	s.cow = nil
}

// privatize is the write barrier: it gives the process a private copy
// of one CoW page before the first write lands, and drops a read
// window aliasing the shared view so later reads cannot serve stale
// template bytes. Returns the (now writable) page view. pi must be in
// bounds; sg.cow must be non-nil.
func (p *Proc) privatize(sg *segment, pi uint32) []byte {
	c := sg.cow
	if !c.dirty[pi] {
		c.pages[pi] = append([]byte(nil), c.pages[pi]...)
		c.dirty[pi] = true
		if p.rdc.base == sg.base+pi<<pageShift {
			p.rdc = memWindow{}
		}
	}
	return c.pages[pi]
}
