package vm

import (
	"lfi/internal/isa"
	"lfi/internal/kernel"
)

// doSyscall dispatches OpSyscall: number in R0, arguments in R1..R3,
// Linux-style result (-errno on failure) in R0. It returns false when the
// process blocks, leaving PC on the syscall instruction so the trap is
// retried on the next time slice.
func (p *Proc) doSyscall(next uint32) bool {
	num := int32(p.Regs[isa.R0])
	a, b, c := int32(p.Regs[isa.R1]), int32(p.Regs[isa.R2]), int32(p.Regs[isa.R3])
	k := p.Sys.kern

	ret := int32(0)
	switch num {
	case kernel.SysExit:
		p.exit(a)
		return true

	case kernel.SysAbort:
		p.kill(SigABRT)
		return true

	case kernel.SysGetpid:
		ret = int32(p.ID)

	case kernel.SysYield:
		ret = 0

	case kernel.SysBrk:
		ret = p.Brk(uint32(a))

	case kernel.SysOpen:
		path, err := p.ReadCString(uint32(a))
		if err != nil {
			ret = -kernel.EFAULT
		} else {
			ret = k.Open(p.ID, path, b)
		}

	case kernel.SysUnlink:
		path, err := p.ReadCString(uint32(a))
		if err != nil {
			ret = -kernel.EFAULT
		} else {
			ret = k.Unlink(p.ID, path)
		}

	case kernel.SysClose:
		ret = k.Close(p.ID, a)

	case kernel.SysRead, kernel.SysRecv:
		data, n, blocked := k.Read(p.ID, a, c)
		if blocked {
			p.blocked = true
			return false
		}
		if n > 0 {
			if err := p.WriteBytes(uint32(b), data); err != nil {
				n = -kernel.EFAULT
			}
		}
		ret = n

	case kernel.SysWrite, kernel.SysSend:
		data, err := p.ReadBytes(uint32(b), c)
		if err != nil {
			ret = -kernel.EFAULT
		} else {
			n, blocked := k.Write(p.ID, a, data)
			if blocked {
				p.blocked = true
				return false
			}
			ret = n
		}

	case kernel.SysPipe:
		rfd, wfd, errno := k.Pipe(p.ID)
		if errno != 0 {
			ret = -errno
		} else if p.WriteWord(uint32(a), rfd) != nil || p.WriteWord(uint32(a)+4, wfd) != nil {
			ret = -kernel.EFAULT
		}

	case kernel.SysSocket:
		ret = k.Socket(p.ID)

	case kernel.SysListen:
		ret = k.Listen(p.ID, a, b)

	case kernel.SysAccept:
		fd, blocked := k.Accept(p.ID, a)
		if blocked {
			p.blocked = true
			return false
		}
		ret = fd

	case kernel.SysConnect:
		ret = k.Connect(p.ID, a, b)

	case kernel.SysSpawn:
		ret = p.sysSpawn(a, b, c)

	case kernel.SysWait:
		st, blocked := p.sysWait(a, b)
		if blocked {
			p.blocked = true
			return false
		}
		ret = st

	default:
		ret = -kernel.ENOSYS
	}

	p.blocked = false
	p.Regs[isa.R0] = uint32(ret)
	p.PC = next
	return true
}

// sysSpawn starts a registered program as a child of p, passing two
// descriptors that become the child's fd 0 and fd 1 (typically pipe ends,
// as in the Pidgin resolver scenario). Returns the child pid or -errno.
func (p *Proc) sysSpawn(nameAddr, fdIn, fdOut int32) int32 {
	name, err := p.ReadCString(uint32(nameAddr))
	if err != nil {
		return -kernel.EFAULT
	}
	if _, ok := p.Sys.programs[name]; !ok {
		return -kernel.ENOENT
	}
	cfg := SpawnConfig{
		Preload:    p.cfg.Preload, // children inherit LD_PRELOAD
		InheritFDs: map[int32]int32{0: fdIn, 1: fdOut},
		parent:     p,
	}
	child, err := p.Sys.Spawn(name, cfg)
	if err != nil {
		return -kernel.ENOMEM
	}
	return int32(child.ID)
}

// sysWait reaps an exited child. pid -1 waits for any child. Returns the
// child's pid (status written to statusAddr) or -errno; blocked=true when
// no child has exited yet.
func (p *Proc) sysWait(pid, statusAddr int32) (int32, bool) {
	anyAlive := false
	for _, ch := range p.children {
		if ch.reaped {
			continue
		}
		if pid != -1 && int32(ch.ID) != pid {
			continue
		}
		if !ch.Exited {
			anyAlive = true
			continue
		}
		ch.reaped = true
		if statusAddr != 0 {
			if err := p.WriteWord(uint32(statusAddr), ch.Status.wstatus()); err != nil {
				return -kernel.EFAULT, false
			}
		}
		return int32(ch.ID), false
	}
	if anyAlive {
		return 0, true
	}
	return -kernel.ECHILD, false
}
