package vm_test

import (
	"sync"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/vm"
)

// snapTestLib mutates a global, grows the heap via brk and rewrites a
// kernel file — every class of mutable state a restore must isolate.
const snapTestLibSrc = `
.lib libsnap.so
.global touch
.global gword
.dataw gword 7
.dataw path 0x6174642f
.dataw path0 0
.dataw msg 0x21746968
.func touch
  ; gword = gword + 1
  lea r1, gword
  load r2, [r1+0]
  add r2, 1
  store [r1+0], r2
  ; brk(0x40000100): grow the heap, then write into it
  mov r0, 7
  mov r1, 0x40000100
  syscall
  mov r1, 0x40000080
  mov r2, 0x5a5a5a5a
  store [r1+0], r2
  ; fd = open("/dta", O_CREAT|O_TRUNC|O_WRONLY)
  mov r0, 4
  lea r1, path
  mov r2, 577
  syscall
  mov r4, r0
  ; write(fd, msg, 4)
  mov r0, 3
  mov r1, r4
  lea r2, msg
  mov r3, 4
  syscall
  mov r0, 0
  ret
`

const snapTestExeSrc = `
.exe snapped
.needs libsnap.so
.extern touch
.extern gword
.global main
.func main
  call touch
  lea r1, gword
  load r0, [r1+0]
  ret
`

func snapTestSystem(t *testing.T, opts vm.Options) *vm.System {
	t.Helper()
	sys := vm.NewSystem(opts)
	for _, src := range []string{snapTestLibSrc, snapTestExeSrc} {
		f, err := asm.Assemble("t.s", src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		sys.Register(f)
	}
	sys.Kernel().AddFile("/dta", []byte("original"))
	if _, err := sys.Spawn("snapped", vm.SpawnConfig{}); err != nil {
		t.Fatalf("spawn: %v", err)
	}
	return sys
}

func libData(t *testing.T, p *vm.Proc) (gword int32, heapWord int32) {
	t.Helper()
	im, ok := p.ImageByName("libsnap.so")
	if !ok {
		t.Fatal("no libsnap.so image")
	}
	va, ok := im.SymbolVA("gword")
	if !ok {
		t.Fatal("no gword symbol")
	}
	gword, err := p.ReadWord(va)
	if err != nil {
		t.Fatalf("read gword: %v", err)
	}
	heapWord, _ = p.ReadWord(0x4000_0080) // errors leave it 0 (heap not grown)
	return gword, heapWord
}

// TestSnapshotRestoreRuns: a restored system runs to the same result as
// the template would, and the exit code proves data/heap state works.
func TestSnapshotRestoreRuns(t *testing.T) {
	sys := snapTestSystem(t, vm.Options{})
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r := snap.Restore()
	if err := r.Run(0); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	p := r.Procs()[0]
	if p.Status.Code != 8 || p.Status.Signal != 0 { // gword 7+1
		t.Errorf("restored run status = %+v, want code 8", p.Status)
	}
	if gw, hw := libData(t, p); gw != 8 || hw != 0x5a5a5a5a {
		t.Errorf("restored run state: gword=%d heap=%#x", gw, hw)
	}
	if data, ok := r.Kernel().FileData("/dta"); !ok || string(data) != "hit!" {
		t.Errorf("restored kernel file = %q", data)
	}
	// The template also still runs, from its own untouched state.
	if err := sys.Run(0); err != nil {
		t.Fatalf("template run after snapshot: %v", err)
	}
	if code := sys.Procs()[0].Status.Code; code != 8 {
		t.Errorf("template run exit = %d, want 8", code)
	}
}

// TestSnapshotIsolation is the core contract: one restored run's
// mutations of data segments, heap and kernel files must be invisible
// to the template and to a sibling restore. Run with -race: the sibling
// is inspected from another goroutine while the first restore runs.
func TestSnapshotIsolation(t *testing.T) {
	sys := snapTestSystem(t, vm.Options{})
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mutated := snap.Restore()
	sibling := snap.Restore()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := mutated.Run(0); err != nil {
			t.Errorf("mutated run: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		// Concurrent reads of the sibling's copies while the first
		// restore writes its own: -race proves nothing is shared.
		p := sibling.Procs()[0]
		if gw, hw := libData(t, p); gw != 7 || hw != 0 {
			t.Errorf("sibling pre-run state: gword=%d heap=%#x", gw, hw)
		}
	}()
	wg.Wait()

	// After the first restore ran to completion, the sibling and the
	// template still see pristine state everywhere.
	for name, s := range map[string]*vm.System{"sibling": sibling, "template": sys} {
		p := s.Procs()[0]
		if p.Exited {
			t.Errorf("%s process exited without running", name)
		}
		if gw, hw := libData(t, p); gw != 7 || hw != 0 {
			t.Errorf("%s leaked memory writes: gword=%d heap=%#x", name, gw, hw)
		}
		if data, ok := s.Kernel().FileData("/dta"); !ok || string(data) != "original" {
			t.Errorf("%s leaked kernel file writes: %q", name, data)
		}
	}
	// And the sibling still runs to the same result as the first.
	if err := sibling.Run(0); err != nil {
		t.Fatalf("sibling run: %v", err)
	}
	if code := sibling.Procs()[0].Status.Code; code != 8 {
		t.Errorf("sibling exit = %d, want 8", code)
	}
}

// TestSnapshotSharesImmutableImages: restores share decoded
// instructions, patched text and symbol tables with the template —
// the O(writable bytes) claim — unless coverage forces private bits.
func TestSnapshotSharesImmutableImages(t *testing.T) {
	sys := snapTestSystem(t, vm.Options{})
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, b := snap.Restore(), snap.Restore()
	ia := a.Procs()[0].Images
	ib := b.Procs()[0].Images
	for i := range ia {
		if ia[i] != ib[i] {
			t.Errorf("image %d not shared between restores without coverage", i)
		}
	}

	cov := snapTestSystem(t, vm.Options{Coverage: true})
	csnap, err := cov.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := csnap.Restore(), csnap.Restore()
	if err := ca.Run(0); err != nil {
		t.Fatal(err)
	}
	caim := ca.Procs()[0].Images[0]
	cbim := cb.Procs()[0].Images[0]
	if caim == cbim {
		t.Fatal("images must be private copies when coverage is on")
	}
	if caim.File != cbim.File || &caim.Insts[0] != &cbim.Insts[0] {
		t.Error("object file and decoded instructions must still be shared")
	}
	if !caim.Covered(0) {
		t.Error("run did not mark coverage")
	}
	if cbim.Covered(0) {
		t.Error("coverage bits leaked into the sibling restore")
	}
}

// TestSnapshotFreezesCoverage: the snapshot must capture coverage bits
// by value — the template stays runnable after Snapshot, and coverage
// it accumulates afterwards must not leak into later restores.
func TestSnapshotFreezesCoverage(t *testing.T) {
	sys := snapTestSystem(t, vm.Options{Coverage: true})
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(0); err != nil { // mutate the template's CoverBits
		t.Fatal(err)
	}
	if !sys.Procs()[0].Images[0].Covered(0) {
		t.Fatal("template run did not mark coverage")
	}
	r := snap.Restore()
	if r.Procs()[0].Images[0].Covered(0) {
		t.Error("template coverage accumulated after Snapshot leaked into a restore")
	}
}

// TestSnapshotProcessTree: snapshots taken of multi-process systems
// rebind parent/child links onto the restored processes.
func TestSnapshotProcessTree(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	child, err := asm.Assemble("c.s", `
.exe child
.global main
.func main
  mov r0, 5
  ret
`)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := asm.Assemble("p.s", `
.exe parent
.global main
.dataw cname 0x6c696863
.dataw cname0 0x64
.func main
  ; spawn("child", 0, 1) then wait(-1, 0)
  mov r0, 8
  lea r1, cname
  mov r2, 0
  mov r3, 1
  syscall
  mov r0, 9
  mov r1, -1
  mov r2, 0
  syscall
  mov r0, 0
  ret
`)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(child)
	sys.Register(parent)
	if _, err := sys.Spawn("parent", vm.SpawnConfig{}); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r := snap.Restore()
	if err := r.Run(0); err != nil {
		t.Fatalf("restored parent/child run: %v", err)
	}
	procs := r.Procs()
	if len(procs) != 2 {
		t.Fatalf("got %d processes, want parent+child", len(procs))
	}
	for _, p := range procs {
		if !p.Exited || p.Status.Signal != 0 {
			t.Errorf("pid %d: %+v", p.ID, p.Status)
		}
		if p.Sys != r {
			t.Errorf("pid %d backpointer not rebound to the restored system", p.ID)
		}
	}
}
