// Block-compiled execution engine.
//
// The legacy interpreter (step, the EngineStep reference) pays a fixed
// per-instruction tax: an image lookup, an index bounds check, a
// coverage bit-set and two cycle-counter increments for every single
// instruction executed. For a fault-injection campaign the guest-side
// work between two observable events — a host call, a syscall, a branch
// — is pure straight-line interpretation, so the tax dominates exactly
// where throughput matters (ZOFI's coverage-per-hour argument).
//
// EngineBlock removes the tax by compiling each image's decoded text
// into superblocks once, at load time (compileExec, invoked from
// relocate, which makes the result part of the immutable image shared
// by every snapshot restore). Block leaders come from
// cfg.StreamLeaders — the profiler's §3.1 leader analysis applied to
// the whole relocated stream — and ends[i] gives, for *every*
// instruction index, the end of the straight-line run beginning there,
// so control may enter a block anywhere (computed jumps, corrupted
// return addresses, syscall resume) and still find a valid run.
//
// Per dispatched run the engine resolves the image once, bounds-checks
// once, and executes the run with no per-instruction bookkeeping.
// Superblock chaining extends the amortisation across runs: each direct
// branch carries a compile-time link to its in-image target (execCode
// chain), and the dispatch loop follows links — and straight-line
// fall-through — without leaving execBlock, so loop-heavy guests pay
// the image resolution once per time slice instead of once per block;
// cycles (Proc.Cycles, System.TotalCycles) and coverage are folded in
// at run exit — before any control transfer, so a host function, a
// syscall or the scheduler observes exactly the counters the reference
// interpreter would produce. Runs are also split at the time-slice
// boundary, keeping round-robin scheduling, budget checks and ErrIdle/
// ErrDeadlock detection decision-for-decision identical to EngineStep;
// the lockstep differential test (exec_test.go) enforces the contract
// instruction-slice by instruction-slice.
package vm

import (
	"encoding/binary"

	"lfi/internal/cfg"
	"lfi/internal/isa"
)

// regMask re-proves to the compiler what isa.Decode already enforces
// (register operands < NumRegs), making every register-file access in
// the dispatch loop bounds-check-free. That identity only holds while
// NumRegs is a power of two; the constant below fails to compile (a
// negative value cannot convert to uint8) if a register is ever added
// without rounding the file up, instead of silently aliasing registers
// in this engine only.
const regMask = isa.NumRegs - 1

const _ = uint8(-(isa.NumRegs & (isa.NumRegs - 1))) // NumRegs must be a power of two

// execCode is the block-compiled form of one image's text. It is
// derived purely from the immutable post-relocation instruction stream,
// never written after compileExec returns, and therefore shared by
// pointer across snapshot restores and coverage image copies.
type execCode struct {
	// ends[i] is the exclusive end, in instruction indexes, of the
	// superblock run starting at instruction i: every instruction in
	// [i, ends[i]-1) is straight-line, and ends[i]-1 is either a
	// control transfer (isa.Op.Transfers), the instruction before the
	// next block leader, or the last instruction of the image.
	ends []int32
	// blocks counts distinct leaders — the block-granular unit coverage
	// and accounting are batched over (exposed for tests and stats).
	blocks int
	// chain[i] is the block-to-block successor of a direct branch at i:
	// the instruction index of its (taken) target when that target is an
	// aligned address inside this image's text, -1 otherwise. The
	// dispatch loop follows chain links — and straight-line fall-through
	// — without re-resolving the owning image or re-checking bounds, so
	// loop-heavy guests stay inside one dispatch call for a whole time
	// slice.
	//
	// The table needs no runtime invalidation because it is structural:
	// like ends it is derived from the immutable post-relocation
	// instruction stream, so snapshot restores share it safely; an
	// engine switch takes effect at the next slice because chaining
	// never crosses the slice boundary (the ran/max budget below); and
	// DlNext-resolved cross-image transfers go through computed jumps
	// (JmpI/CallR), which always exit the dispatch loop and re-resolve.
	chain []int32
}

// compileExec builds the superblock table for a relocated image.
func compileExec(im *Image) *execCode {
	insts := im.Insts
	// local maps a branch/call immediate to an instruction index iff it
	// is an aligned virtual address inside this image's text after
	// relocation (cross-module calls and host addresses are not).
	local := func(imm int32) (int, bool) {
		if uint32(imm) < im.TextBase {
			return 0, false
		}
		off := uint32(imm) - im.TextBase
		if off%isa.Size != 0 {
			return 0, false
		}
		idx := int(off / isa.Size)
		if idx >= len(insts) {
			return 0, false
		}
		return idx, true
	}
	leaders := cfg.StreamLeaders(insts, local)
	ec := &execCode{
		ends:  make([]int32, len(insts)),
		chain: make([]int32, len(insts)),
	}
	for i := len(insts) - 1; i >= 0; i-- {
		if insts[i].Op.Transfers() || i+1 == len(insts) || leaders[i+1] {
			ec.ends[i] = int32(i + 1)
		} else {
			ec.ends[i] = ec.ends[i+1]
		}
		ec.chain[i] = -1
		switch insts[i].Op {
		case isa.OpJmp, isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge:
			if t, ok := local(insts[i].Imm); ok {
				ec.chain[i] = int32(t)
			}
		}
	}
	for _, l := range leaders {
		if l {
			ec.blocks++
		}
	}
	return ec
}

// coverRange sets the coverage bits for instruction indexes [lo, hi]
// (inclusive) word-at-a-time — the block-granular expansion into the
// per-instruction CoverBits contract Image.Covered and package coverage
// rely on.
func coverRange(bits []uint64, lo, hi int) {
	loW, hiW := lo/64, hi/64
	loMask := ^uint64(0) << (lo % 64)
	hiMask := ^uint64(0) >> (63 - hi%64)
	if loW == hiW {
		bits[loW] |= loMask & hiMask
		return
	}
	bits[loW] |= loMask
	for w := loW + 1; w < hiW; w++ {
		bits[w] = ^uint64(0)
	}
	bits[hiW] |= hiMask
}

// chargeRun folds a finished run's batched accounting — instructions
// [start, last], inclusive — into the cycle counters and coverage bits.
// It runs before any control transfer out of the block, so everything
// that can observe the counters (host functions, syscalls, the budget
// check between slices, <cycles> triggers) sees the same values the
// reference interpreter accumulates one instruction at a time.
func (p *Proc) chargeRun(im *Image, start, last int) {
	n := uint64(last - start + 1)
	p.Cycles += n
	p.Sys.TotalCycles += n
	if im.CoverBits != nil {
		coverRange(im.CoverBits, start, last)
	}
}

// blockFault is the shared cold-path epilogue for an instruction that
// faults mid-block: fold the batched accounting for the run up to and
// including the faulting instruction, park PC on it (the step engine's
// resting state), and kill. Every faulting arm of execBlock must go
// through here — the charge/park/kill sequence is part of the
// step-equivalence contract the lockstep oracle enforces.
func (p *Proc) blockFault(im *Image, idx, k int, sig int32) {
	p.chargeRun(im, idx, idx+k)
	p.PC = im.TextBase + uint32(idx+k)*isa.Size
	p.kill(sig)
}

// stepOnce delegates one instruction to the reference interpreter —
// the slow path for states the block cache does not cover (a
// misaligned PC from a corrupted return address or computed jump).
func (p *Proc) stepOnce() (int, bool) {
	if p.step() {
		return 1, true
	}
	return 0, false
}

// runSliceBlocks executes up to n instructions by dispatching whole
// superblock runs; returns how many ran. Runs never cross the slice
// boundary: a block longer than the slice remainder is split and the
// process resumes mid-block next slice (ends[] is indexed per
// instruction, so any split point is a valid entry).
func (p *Proc) runSliceBlocks(n int) int {
	ran := 0
	for ran < n && !p.Exited {
		m, cont := p.execBlock(n - ran)
		ran += m
		if !cont {
			break // blocked in a syscall: yield the slice
		}
	}
	return ran
}

// execBlock executes up to max instructions by dispatching superblock
// runs and following chain links between them. It returns how many
// instructions advanced and whether the process can keep running this
// slice (false = blocked in a syscall, PC unchanged). Every path
// through here is behaviourally identical to iterating step(): same
// kills, same cycle counts, same coverage, same PC at every observable
// boundary.
func (p *Proc) execBlock(max int) (int, bool) {
	if p.PC == exitSentinel {
		p.exit(int32(p.Regs[isa.R0]))
		return 1, true
	}
	im := p.imageAt(p.PC)
	if im == nil {
		p.kill(SigSEGV)
		return 1, true
	}
	off := p.PC - im.TextBase
	if off%isa.Size != 0 || im.exec == nil {
		return p.stepOnce()
	}
	idx := int(off) / isa.Size
	insts := im.Insts
	if idx >= len(insts) {
		p.kill(SigSEGV)
		return 1, true
	}
	// The image, its instruction stream and its block table are resolved
	// once, here. The dispatch loop re-enters at chain targets and
	// fall-through successors — compile-time-validated indexes into this
	// same image — without repeating that work. p.PC is materialised
	// only when control leaves the loop; every exit arm sets it first.
	ec := im.exec
	regs := &p.Regs
	ran := 0
dispatch:
	for {
		end := int(ec.ends[idx])
		if lim := idx + (max - ran); lim < end {
			end = lim
		}
		blk := insts[idx:end]
		for k := 0; k < len(blk); k++ {
			in := blk[k]
			switch in.Op {
			case isa.OpNop:

			case isa.OpMovRI:
				regs[in.A&regMask] = uint32(in.Imm)
			case isa.OpMovRR:
				regs[in.A&regMask] = regs[in.B&regMask]
			case isa.OpLoad:
				// Memory ops check the segment windows inline — the method
				// fast paths are not inlinable, and a call per load would
				// give back most of the dispatch win on spill-heavy code.
				addr := regs[in.B&regMask] + uint32(in.Imm)
				if off := addr - p.rdc.base; uint64(off)+4 <= uint64(len(p.rdc.data)) {
					regs[in.A&regMask] = binary.LittleEndian.Uint32(p.rdc.data[off:])
				} else if off := addr - p.wrc.base; uint64(off)+4 <= uint64(len(p.wrc.data)) {
					regs[in.A&regMask] = binary.LittleEndian.Uint32(p.wrc.data[off:])
				} else if v, err := p.readWordSlow(addr); err == nil {
					regs[in.A&regMask] = uint32(v)
				} else {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}
			case isa.OpLoadB:
				addr := regs[in.B&regMask] + uint32(in.Imm)
				if off := addr - p.rdc.base; uint64(off) < uint64(len(p.rdc.data)) {
					regs[in.A&regMask] = uint32(p.rdc.data[off])
				} else if off := addr - p.wrc.base; uint64(off) < uint64(len(p.wrc.data)) {
					regs[in.A&regMask] = uint32(p.wrc.data[off])
				} else if v, err := p.ReadByteAt(addr); err == nil {
					regs[in.A&regMask] = uint32(v)
				} else {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}
			case isa.OpStoreR:
				addr := regs[in.A&regMask] + uint32(in.Imm)
				if off := addr - p.wrc.base; uint64(off)+4 <= uint64(len(p.wrc.data)) {
					binary.LittleEndian.PutUint32(p.wrc.data[off:], regs[in.B&regMask])
				} else if err := p.writeWordSlow(addr, int32(regs[in.B&regMask])); err != nil {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}
			case isa.OpStoreB:
				addr := regs[in.A&regMask] + uint32(in.Imm)
				if off := addr - p.wrc.base; uint64(off) < uint64(len(p.wrc.data)) {
					p.wrc.data[off] = byte(regs[in.B&regMask])
				} else if err := p.WriteByteAt(addr, byte(regs[in.B&regMask])); err != nil {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}
			case isa.OpStoreI:
				addr := regs[in.A&regMask] + uint32(in.StoreIDisp())
				if off := addr - p.wrc.base; uint64(off)+4 <= uint64(len(p.wrc.data)) {
					binary.LittleEndian.PutUint32(p.wrc.data[off:], uint32(in.Imm))
				} else if err := p.writeWordSlow(addr, in.Imm); err != nil {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}
			case isa.OpPushR:
				regs[isa.SP] -= 4
				if off := regs[isa.SP] - p.wrc.base; uint64(off)+4 <= uint64(len(p.wrc.data)) {
					binary.LittleEndian.PutUint32(p.wrc.data[off:], regs[in.A&regMask])
				} else if err := p.writeWordSlow(regs[isa.SP], int32(regs[in.A&regMask])); err != nil {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}
			case isa.OpPushI:
				regs[isa.SP] -= 4
				if off := regs[isa.SP] - p.wrc.base; uint64(off)+4 <= uint64(len(p.wrc.data)) {
					binary.LittleEndian.PutUint32(p.wrc.data[off:], uint32(in.Imm))
				} else if err := p.writeWordSlow(regs[isa.SP], in.Imm); err != nil {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}
			case isa.OpPopR:
				// Order matters when the destination is SP itself ("pop
				// sp"): the reference interpreter bumps SP and then assigns
				// the popped value, so the assignment must come last here
				// too or the two engines diverge on that guest.
				if off := regs[isa.SP] - p.wrc.base; uint64(off)+4 <= uint64(len(p.wrc.data)) {
					v := binary.LittleEndian.Uint32(p.wrc.data[off:])
					regs[isa.SP] += 4
					regs[in.A&regMask] = v
				} else if v, err := p.ReadWord(regs[isa.SP]); err == nil {
					regs[isa.SP] += 4
					regs[in.A&regMask] = uint32(v)
				} else {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}

			case isa.OpAddRI:
				regs[in.A&regMask] += uint32(in.Imm)
			case isa.OpAddRR:
				regs[in.A&regMask] += regs[in.B&regMask]
			case isa.OpSubRI:
				regs[in.A&regMask] -= uint32(in.Imm)
			case isa.OpSubRR:
				regs[in.A&regMask] -= regs[in.B&regMask]
			case isa.OpMulRR:
				regs[in.A&regMask] = uint32(int32(regs[in.A&regMask]) * int32(regs[in.B&regMask]))
			case isa.OpDivRR:
				if regs[in.B&regMask] == 0 {
					p.blockFault(im, idx, k, SigFPE)
					return ran + k + 1, true
				}
				regs[in.A&regMask] = uint32(int32(regs[in.A&regMask]) / int32(regs[in.B&regMask]))
			case isa.OpModRR:
				if regs[in.B&regMask] == 0 {
					p.blockFault(im, idx, k, SigFPE)
					return ran + k + 1, true
				}
				regs[in.A&regMask] = uint32(int32(regs[in.A&regMask]) % int32(regs[in.B&regMask]))
			case isa.OpAndRI:
				regs[in.A&regMask] &= uint32(in.Imm)
			case isa.OpAndRR:
				regs[in.A&regMask] &= regs[in.B&regMask]
			case isa.OpOrRI:
				regs[in.A&regMask] |= uint32(in.Imm)
			case isa.OpOrRR:
				regs[in.A&regMask] |= regs[in.B&regMask]
			case isa.OpXorRI:
				regs[in.A&regMask] ^= uint32(in.Imm)
			case isa.OpXorRR:
				regs[in.A&regMask] ^= regs[in.B&regMask]
			case isa.OpShlRI:
				regs[in.A&regMask] <<= uint32(in.Imm) & 31
			case isa.OpShrRI:
				regs[in.A&regMask] >>= uint32(in.Imm) & 31
			case isa.OpNeg:
				regs[in.A&regMask] = uint32(-int32(regs[in.A&regMask]))
			case isa.OpNot:
				regs[in.A&regMask] = ^regs[in.A&regMask]

			case isa.OpCmpRI:
				a := int32(regs[in.A&regMask])
				p.flagEQ = a == in.Imm
				p.flagLT = a < in.Imm
			case isa.OpCmpRR:
				a, b := int32(regs[in.A&regMask]), int32(regs[in.B&regMask])
				p.flagEQ = a == b
				p.flagLT = a < b

			case isa.OpJmp:
				// Direct branches chain: a compile-time-validated local
				// target re-enters the dispatch loop without an image
				// lookup, as long as the slice budget allows. Non-local
				// (cross-image or wild) targets exit and re-resolve.
				p.chargeRun(im, idx, idx+k)
				ran += k + 1
				if t := ec.chain[idx+k]; t >= 0 && ran < max {
					idx = int(t)
					continue dispatch
				}
				p.PC = uint32(in.Imm)
				return ran, true
			case isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJle, isa.OpJg, isa.OpJge:
				p.chargeRun(im, idx, idx+k)
				ran += k + 1
				var taken bool
				switch in.Op {
				case isa.OpJe:
					taken = p.flagEQ
				case isa.OpJne:
					taken = !p.flagEQ
				case isa.OpJl:
					taken = p.flagLT
				case isa.OpJle:
					taken = p.flagLT || p.flagEQ
				case isa.OpJg:
					taken = !p.flagLT && !p.flagEQ
				case isa.OpJge:
					taken = !p.flagLT
				}
				if taken {
					if t := ec.chain[idx+k]; t >= 0 && ran < max {
						idx = int(t)
						continue dispatch
					}
					p.PC = uint32(in.Imm)
					return ran, true
				}
				// Not taken: chain to the fall-through successor, unless
				// it lies outside the text — then park PC there and let
				// the next dispatch fault exactly like the step engine.
				if next := idx + k + 1; ran < max && next < len(insts) {
					idx = next
					continue dispatch
				}
				p.PC = im.TextBase + uint32(idx+k+1)*isa.Size
				return ran, true

			case isa.OpCall:
				// Park PC on the call before dispatching: doCall sets PC on
				// success, and on a push fault it kills with PC at the call —
				// the step engine's resting state.
				p.chargeRun(im, idx, idx+k)
				p.PC = im.TextBase + uint32(idx+k)*isa.Size
				p.doCall(uint32(in.Imm), p.PC+isa.Size)
				return ran + k + 1, true
			case isa.OpCallR:
				p.chargeRun(im, idx, idx+k)
				p.PC = im.TextBase + uint32(idx+k)*isa.Size
				p.doCall(regs[in.A&regMask], p.PC+isa.Size)
				return ran + k + 1, true
			case isa.OpJmpI:
				// Computed jumps always exit the dispatch loop — this is
				// what makes the chain table safe against DlNext-resolved
				// cross-image transfers without runtime invalidation.
				p.chargeRun(im, idx, idx+k)
				p.PC = regs[in.A&regMask]
				return ran + k + 1, true
			case isa.OpRet:
				p.chargeRun(im, idx, idx+k)
				p.PC = im.TextBase + uint32(idx+k)*isa.Size
				v, err := p.ReadWord(regs[isa.SP])
				if err != nil {
					p.kill(SigSEGV)
					return ran + k + 1, true
				}
				regs[isa.SP] += 4
				p.PC = uint32(v)
				if len(p.CallStack) > 0 {
					p.CallStack = p.CallStack[:len(p.CallStack)-1]
				}
				return ran + k + 1, true

			case isa.OpHalt:
				p.chargeRun(im, idx, idx+k)
				p.PC = im.TextBase + uint32(idx+k)*isa.Size
				p.exit(int32(regs[isa.R0]))
				return ran + k + 1, true
			case isa.OpSyscall:
				// Park PC on the syscall before trapping: a blocked syscall
				// (PC unchanged, retried next slice, one cycle per attempt)
				// and an exiting one (SysExit/SysAbort leave PC in place)
				// both rest exactly where the step engine rests. The run's
				// straight-line prefix has already executed and never
				// replays. doSyscall advances PC itself on completion.
				p.chargeRun(im, idx, idx+k)
				p.PC = im.TextBase + uint32(idx+k)*isa.Size
				if !p.doSyscall(p.PC + isa.Size) {
					return ran + k, false
				}
				return ran + k + 1, true

			case isa.OpLea:
				regs[in.A&regMask] = uint32(in.Imm)
			case isa.OpTLSBase:
				regs[in.A&regMask] = im.TLSBase
			case isa.OpDlNext:
				// Both bounds checked: Imm is attacker-controlled via a
				// crafted object file, and a negative index must fault the
				// guest, not panic the host (mirrors step()'s arm).
				name := ""
				if in.Imm >= 0 && int(in.Imm) < len(im.File.Imports) {
					name = im.File.Imports[in.Imm]
				}
				va, ok := p.Sys.resolveNext(p, im, name)
				if !ok {
					p.blockFault(im, idx, k, SigSEGV)
					return ran + k + 1, true
				}
				regs[in.A&regMask] = va

			default:
				p.blockFault(im, idx, k, SigSEGV)
				return ran + k + 1, true
			}
		}
		// Straight-line fall-off: the run ended at a block leader, the
		// slice boundary, or the last instruction of the image. Fold the
		// batch and chain into the successor block if the budget allows
		// and the successor is still inside the text; otherwise park PC
		// at the next instruction (possibly outside the text — the next
		// dispatch then faults exactly like the step engine).
		p.chargeRun(im, idx, end-1)
		ran += end - idx
		if ran < max && end < len(insts) {
			idx = end
			continue dispatch
		}
		p.PC = im.TextBase + uint32(end)*isa.Size
		return ran, true
	}
}
