// Package vm implements the SIA-32 virtual machine: a dynamic-linking
// loader and interpreter with processes, a synthetic kernel, host-function
// bridging and basic-block coverage hooks.
//
// The loader honours preload order when resolving imported symbols — the
// reproduction's LD_PRELOAD analogue (§5.1): interceptor libraries
// synthesised by the LFI controller are listed in SpawnConfig.Preload and
// win symbol resolution over the original libraries. The OpDlNext
// instruction resolves "the next definition of my own exported symbol",
// mirroring dlsym(RTLD_NEXT), so stubs can tail-jump to the functions they
// shadow.
//
// Execution is deterministic: processes are scheduled round-robin with
// fixed time slices, every instruction costs one cycle, and the kernel
// introduces no spontaneous events. Virtual time (cycles / ClockHz) is
// what the overhead experiments (paper Tables 3 and 4) report.
package vm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"lfi/internal/isa"
	"lfi/internal/kernel"
	"lfi/internal/obj"
)

// Address-space layout constants.
const (
	moduleStride = 0x0100_0000
	moduleBase   = 0x0100_0000
	dataOffset   = 0x0040_0000
	tlsOffset    = 0x0060_0000
	heapBase     = 0x4000_0000
	stackTop     = 0x7F10_0000
	hostBase     = 0xF000_0000
	exitSentinel = 0xFFFF_FFF0
)

// ClockHz converts cycles to virtual seconds in experiment reports.
const ClockHz = 100_000_000

// Signal numbers used in exit statuses.
const (
	SigABRT = 6
	SigFPE  = 8
	SigSEGV = 11
)

// HostFunc is a native function callable from VM code through an import.
// It runs with the calling process stopped at the call site and returns
// the value to place in R0.
type HostFunc func(hc *HostCall) int32

// HostCall gives a host function access to its caller.
type HostCall struct {
	Sys  *System
	Proc *Proc
	sp   uint32 // SP at entry (points at the return address)
}

// Arg returns the i-th 32-bit stack argument of the host call.
func (h *HostCall) Arg(i int) int32 {
	v, err := h.Proc.ReadWord(h.sp + 4 + uint32(4*i))
	if err != nil {
		return 0
	}
	return v
}

// ArgAddr returns the address of the i-th stack argument.
func (h *HostCall) ArgAddr(i int) uint32 { return h.sp + 4 + uint32(4*i) }

// ChargeCycles accounts virtual time for work the host function performs
// on behalf of the process — e.g. the trigger evaluation an LD_PRELOAD
// interceptor would execute natively. This is what makes the overhead
// experiments (paper Tables 3 and 4) observable in virtual time.
func (h *HostCall) ChargeCycles(n uint64) {
	h.Proc.Cycles += n
	h.Sys.TotalCycles += n
}

// Image is one module loaded into a process address space.
type Image struct {
	File     *obj.File
	TextBase uint32
	DataBase uint32
	TLSBase  uint32
	Insts    []isa.Inst // decoded after relocation patching
	// CoverBits marks executed instruction slots when coverage is on.
	CoverBits []uint64

	text    []byte
	symVA   map[string]uint32 // exported symbol -> VA
	funcsVA []vaSym           // sorted by VA, for reverse lookup
	// exec is the block-compiled form of Insts (see exec.go), built once
	// after relocation. Like text and Insts it is immutable, so snapshot
	// restores and coverage shallow-copies share it by pointer.
	exec *execCode
}

type vaSym struct {
	va   uint32
	name string
}

// SymbolVA resolves an exported symbol of this image to its VA.
func (im *Image) SymbolVA(name string) (uint32, bool) {
	va, ok := im.symVA[name]
	return va, ok
}

// FuncNameAt returns the name of the function containing the VA, if known.
func (im *Image) FuncNameAt(va uint32) string {
	i := sort.Search(len(im.funcsVA), func(i int) bool { return im.funcsVA[i].va > va })
	if i == 0 {
		return ""
	}
	return im.funcsVA[i-1].name
}

// Covered reports whether the instruction at the given text offset ran.
func (im *Image) Covered(off int32) bool {
	if im.CoverBits == nil {
		return false
	}
	idx := int(off) / isa.Size
	return im.CoverBits[idx/64]&(1<<(idx%64)) != 0
}

// Frame is one entry of the shadow call stack, used for the paper's
// stack-trace triggers (§4).
type Frame struct {
	FuncVA uint32
	Symbol string // best-effort name ("" for stripped locals)
	Module string
	RetPC  uint32
}

// ExitStatus describes how a process terminated.
type ExitStatus struct {
	Code   int32
	Signal int32 // 0 = normal exit; SigABRT/SigSEGV/SigFPE otherwise
}

// Wait-status encoding written by sys_wait: code for normal exits,
// 128+signal for signal deaths (shell convention).
func (e ExitStatus) wstatus() int32 {
	if e.Signal != 0 {
		return 128 + e.Signal
	}
	return e.Code
}

// SignalName returns "SIGABRT"-style names.
func SignalName(sig int32) string {
	switch sig {
	case SigABRT:
		return "SIGABRT"
	case SigFPE:
		return "SIGFPE"
	case SigSEGV:
		return "SIGSEGV"
	}
	return fmt.Sprintf("SIG%d", sig)
}

// SpawnConfig controls process creation.
type SpawnConfig struct {
	// Preload lists library names loaded ahead of the executable's
	// needed libraries in symbol search order (the LD_PRELOAD slot).
	Preload []string
	// InheritFDs maps child descriptors to (parent) descriptors; used by
	// sys_spawn to pass pipe ends.
	InheritFDs map[int32]int32
	parent     *Proc
}

// Proc is one SIA-32 process.
type Proc struct {
	ID  int
	Sys *System

	Regs   [isa.NumRegs]uint32
	PC     uint32
	flagEQ bool
	flagLT bool

	Images []*Image // symbol search order: exe, preloads, needed libs

	Exited bool
	Status ExitStatus
	Cycles uint64

	CallStack []Frame

	segs     []*segment
	lastSeg  *segment
	lastImg  *Image
	rdc      memWindow // last segment hit by a word/byte read
	wrc      memWindow // last writable segment hit by a word/byte write
	brk      uint32
	heap     *segment
	blocked  bool
	cfg      SpawnConfig
	parent   *Proc
	children []*Proc
	reaped   bool
}

// segment is one mapping of a process address space. Exactly one of
// two representations backs it: a flat data slice (fresh spawns,
// read-only segments, flat restores), or a copy-on-write page table
// (writable segments of a CoW restore — see cow.go). data is nil iff
// cow is non-nil.
type segment struct {
	base     uint32
	data     []byte
	writable bool
	name     string
	cow      *cowSeg
}

func (s *segment) contains(addr uint32) bool {
	return addr >= s.base && addr < s.base+uint32(s.length())
}

// memWindow is one entry of the per-process segment cache: a direct view
// of a segment's backing slice. Word and byte accesses that land inside
// the window skip the seg() scan and the MemoryError allocation of the
// slow path entirely. The zero value is an always-miss window.
//
// Windows alias segment data, so in-place mutation (stores, syscalls,
// host writes) stays coherent; only an operation that swaps a segment's
// backing array — Brk growing the heap — must invalidate them. Restored
// and freshly spawned processes start with empty windows.
type memWindow struct {
	base uint32
	data []byte
}

// invalidateMemCache drops both cache windows; called when a segment's
// backing array may have been reallocated (Brk).
func (p *Proc) invalidateMemCache() {
	p.rdc = memWindow{}
	p.wrc = memWindow{}
}

// MemoryError reports an invalid VM memory access.
type MemoryError struct {
	Addr  uint32
	Write bool
}

// Error implements the error interface.
func (e *MemoryError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("vm: invalid %s at %#x", op, e.Addr)
}

// Execution engines. The block engine is the production interpreter;
// the step engine is the per-instruction reference it is differentially
// tested against (and the escape hatch should a divergence ever need
// bisecting in the field: `lfi ... -engine=step`).
const (
	// EngineBlock runs predecoded superblocks with per-block image
	// resolution, segment-cached memory and batched cycle/coverage
	// accounting (see exec.go). Decision-for-decision identical to
	// EngineStep: same scheduling, cycle counts at every observable
	// boundary, coverage bits, exit statuses.
	EngineBlock = "block"
	// EngineStep is the legacy one-instruction-at-a-time interpreter.
	EngineStep = "step"
)

// DefaultEngine is the engine used when Options.Engine is empty. The
// cmd binaries' -engine flag sets it process-wide (via SetDefaultEngine)
// so every System a campaign builds — including snapshot templates —
// inherits the choice.
var DefaultEngine = EngineBlock

// SetDefaultEngine validates and installs the process-wide default
// engine — the one place the -engine flags and the LFI_ENGINE benchmark
// hook funnel through. Rejecting unknown names matters because the
// dispatch check is "step or not": a typo would otherwise silently
// select the block engine and, say, turn an A/B comparison into
// block-vs-block. The empty string keeps the current default.
func SetDefaultEngine(engine string) error {
	switch engine {
	case "":
		return nil
	case EngineBlock, EngineStep:
		DefaultEngine = engine
		return nil
	}
	return fmt.Errorf("vm: unknown engine %q (want %q or %q)", engine, EngineBlock, EngineStep)
}

// Options configures a System.
type Options struct {
	// HeapLimit bounds per-process heap growth via sys_brk (default 1 MiB).
	HeapLimit uint32
	// StackSize is the per-process stack size (default 1 MiB).
	StackSize uint32
	// Coverage enables executed-instruction tracking on all images.
	Coverage bool
	// TimeSlice is the round-robin quantum in instructions (default 4096).
	TimeSlice int
	// Engine selects the interpreter: EngineBlock or EngineStep
	// (default DefaultEngine). Both engines are decision-for-decision
	// identical; see the package doc's determinism contract.
	Engine string
	// FlatRestore disables the page-granular copy-on-write restore:
	// Snapshot.Restore deep-copies every writable byte per run (the
	// pre-CoW behaviour, the `-cow=false` escape hatch). Execution is
	// bit-identical either way; only the memory representation and the
	// per-restore cost differ.
	FlatRestore bool
}

// System owns the program registry, host functions, kernel and processes.
type System struct {
	opts     Options
	programs map[string]*obj.File
	hosts    []HostFunc
	hostIdx  map[string]int
	kern     *kernel.Kernel
	procs    []*Proc
	nextPID  int
	// resume, when non-nil, is the partially-completed scheduler round a
	// RunBreak stop left behind; the next schedule call finishes it
	// before starting fresh rounds. Snapshot/Restore carry it so a
	// system restored from a mid-execution snapshot replays the exact
	// slice boundaries of an unbroken run.
	resume *schedResume
	// TotalCycles accumulates cycles across all processes.
	TotalCycles uint64
}

// NewSystem creates a System with the given options.
func NewSystem(opts Options) *System {
	if opts.HeapLimit == 0 {
		opts.HeapLimit = 1 << 20
	}
	if opts.StackSize == 0 {
		opts.StackSize = 1 << 20
	}
	if opts.TimeSlice == 0 {
		opts.TimeSlice = 4096
	}
	switch opts.Engine {
	case "":
		opts.Engine = DefaultEngine
	case EngineBlock, EngineStep:
	default:
		// The dispatch check is "step or not", so an unvalidated typo
		// ("Step", "stpe") would silently select the block engine —
		// precisely the wrong failure mode for a differential escape
		// hatch. A bad engine name is a programming error, so fail loud.
		panic(fmt.Sprintf("vm: unknown engine %q (want %q or %q)", opts.Engine, EngineBlock, EngineStep))
	}
	return &System{
		opts:     opts,
		programs: make(map[string]*obj.File),
		hostIdx:  make(map[string]int),
		kern:     kernel.New(),
		nextPID:  1,
	}
}

// Kernel exposes the system kernel (for workload drivers and file setup).
func (s *System) Kernel() *kernel.Kernel { return s.kern }

// Register adds a program or library to the load registry.
func (s *System) Register(f *obj.File) { s.programs[f.Name] = f }

// RegisterHost installs a named host function resolvable as an import.
func (s *System) RegisterHost(name string, fn HostFunc) {
	if idx, ok := s.hostIdx[name]; ok {
		s.hosts[idx] = fn
		return
	}
	s.hostIdx[name] = len(s.hosts)
	s.hosts = append(s.hosts, fn)
}

// Procs returns all processes (including exited ones).
func (s *System) Procs() []*Proc { return append([]*Proc(nil), s.procs...) }

// Spawn loads and starts a registered executable.
func (s *System) Spawn(exe string, cfg SpawnConfig) (*Proc, error) {
	main, ok := s.programs[exe]
	if !ok {
		return nil, fmt.Errorf("vm: program %q not registered", exe)
	}
	p := &Proc{ID: s.nextPID, Sys: s, cfg: cfg, parent: cfg.parent}
	s.nextPID++

	// Assemble the module list in symbol search order: the executable,
	// then preloads, then needed libraries discovered breadth-first.
	var files []*obj.File
	seen := map[string]bool{exe: true}
	files = append(files, main)
	queue := append([]string(nil), cfg.Preload...)
	queue = append(queue, main.Needed...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		f, ok := s.programs[name]
		if !ok {
			return nil, fmt.Errorf("vm: %s: needed library %q not registered", exe, name)
		}
		files = append(files, f)
		queue = append(queue, f.Needed...)
	}
	// Preloads must precede needed libs but follow the executable; the
	// BFS above already walks cfg.Preload first, giving that order.

	for i, f := range files {
		im, err := s.loadImage(p, f, i)
		if err != nil {
			return nil, err
		}
		p.Images = append(p.Images, im)
	}
	if err := s.relocate(p); err != nil {
		return nil, err
	}

	// Stack and heap.
	stack := &segment{
		base: stackTop - s.opts.StackSize, data: make([]byte, s.opts.StackSize),
		writable: true, name: "stack",
	}
	p.segs = append(p.segs, stack)
	p.heap = &segment{base: heapBase, writable: true, name: "heap"}
	p.segs = append(p.segs, p.heap)
	p.brk = heapBase

	// Entry point.
	entryImg := p.Images[0]
	entryVA, ok := entryImg.SymbolVA("main")
	if !ok {
		return nil, fmt.Errorf("vm: %s has no exported main", exe)
	}
	p.PC = entryVA
	p.Regs[isa.SP] = stackTop - 16
	// Returning from main lands on the exit sentinel.
	p.Regs[isa.SP] -= 4
	sentinel := uint32(exitSentinel)
	if err := p.WriteWord(p.Regs[isa.SP], int32(sentinel)); err != nil {
		return nil, err
	}
	p.CallStack = append(p.CallStack, Frame{
		FuncVA: entryVA, Symbol: "main", Module: exe, RetPC: exitSentinel,
	})

	s.kern.NewProcess(p.ID)
	for childFD, parentFD := range cfg.InheritFDs {
		if cfg.parent != nil {
			s.kern.InstallAt(p.ID, childFD, cfg.parent.ID, parentFD)
		}
	}

	s.procs = append(s.procs, p)
	if cfg.parent != nil {
		cfg.parent.children = append(cfg.parent.children, p)
	}
	return p, nil
}

func (s *System) loadImage(p *Proc, f *obj.File, slot int) (*Image, error) {
	base := uint32(moduleBase + slot*moduleStride)
	im := &Image{
		File:     f,
		TextBase: base,
		DataBase: base + dataOffset,
		TLSBase:  base + tlsOffset,
		text:     append([]byte(nil), f.Text...),
		symVA:    make(map[string]uint32),
	}
	data := make([]byte, f.DataSize)
	copy(data, f.Data)
	tls := make([]byte, f.TLSSize)

	for _, sym := range f.Symbols {
		var va uint32
		switch sym.Kind {
		case obj.SymFunc:
			va = im.TextBase + uint32(sym.Off)
			im.funcsVA = append(im.funcsVA, vaSym{va: va, name: sym.Name})
		case obj.SymData:
			va = im.DataBase + uint32(sym.Off)
		case obj.SymTLS:
			va = im.TLSBase + uint32(sym.Off)
		}
		if sym.Exported {
			im.symVA[sym.Name] = va
		}
	}
	sort.Slice(im.funcsVA, func(i, j int) bool { return im.funcsVA[i].va < im.funcsVA[j].va })

	if s.opts.Coverage {
		n := (len(f.Text)/isa.Size + 63) / 64
		im.CoverBits = make([]uint64, n)
	}

	p.segs = append(p.segs,
		&segment{base: im.TextBase, data: im.text, name: f.Name + ".text"},
		&segment{base: im.DataBase, data: data, writable: true, name: f.Name + ".data"},
		&segment{base: im.TLSBase, data: tls, writable: true, name: f.Name + ".tls"},
	)
	return im, nil
}

// relocate patches every image's text and decodes the instruction stream.
func (s *System) relocate(p *Proc) error {
	for _, im := range p.Images {
		f := im.File
		for _, r := range f.Relocs {
			var va uint32
			switch r.Kind {
			case obj.RelocText:
				va = im.TextBase + uint32(r.Index)
			case obj.RelocData:
				va = im.DataBase + uint32(r.Index)
			case obj.RelocTLS:
				va = im.TLSBase + uint32(r.Index)
			case obj.RelocImport:
				name := f.Imports[r.Index]
				resolved, err := s.resolveImport(p, name)
				if err != nil {
					return fmt.Errorf("vm: %s: %w", f.Name, err)
				}
				va = resolved
			}
			// Patch the Imm field (bytes 4..8 of the instruction).
			off := int(r.Off)
			im.text[off+4] = byte(va)
			im.text[off+5] = byte(va >> 8)
			im.text[off+6] = byte(va >> 16)
			im.text[off+7] = byte(va >> 24)
		}
		insts, err := isa.DecodeAll(im.text)
		if err != nil {
			return fmt.Errorf("vm: %s: %w", f.Name, err)
		}
		im.Insts = insts
		// Compile the block form eagerly: one O(text) pass here, and the
		// result is immutable, so snapshots can hand it to any number of
		// concurrently restored systems without synchronisation.
		im.exec = compileExec(im)
	}
	return nil
}

// resolveImport searches the process scope (exe, preloads, needed) for an
// exported definition; host functions are the fallback.
func (s *System) resolveImport(p *Proc, name string) (uint32, error) {
	for _, im := range p.Images {
		if va, ok := im.symVA[name]; ok {
			return va, nil
		}
	}
	if idx, ok := s.hostIdx[name]; ok {
		return hostBase + uint32(idx*8), nil
	}
	return 0, fmt.Errorf("unresolved import %q", name)
}

// resolveNext implements dlsym(RTLD_NEXT): the first definition of name in
// modules after the given image in search order.
func (s *System) resolveNext(p *Proc, after *Image, name string) (uint32, bool) {
	past := false
	for _, im := range p.Images {
		if im == after {
			past = true
			continue
		}
		if !past {
			continue
		}
		if va, ok := im.symVA[name]; ok {
			return va, true
		}
	}
	return 0, false
}

// ImageByName returns the process image for the named module.
func (p *Proc) ImageByName(name string) (*Image, bool) {
	for _, im := range p.Images {
		if im.File.Name == name {
			return im, true
		}
	}
	return nil, false
}

// imageAt maps a VA to the image whose text contains it.
func (p *Proc) imageAt(va uint32) *Image {
	if p.lastImg != nil &&
		va >= p.lastImg.TextBase && va < p.lastImg.TextBase+uint32(len(p.lastImg.text)) {
		return p.lastImg
	}
	for _, im := range p.Images {
		if va >= im.TextBase && va < im.TextBase+uint32(len(im.text)) {
			p.lastImg = im
			return im
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Memory access
// ---------------------------------------------------------------------------

func (p *Proc) seg(addr uint32, write bool) (*segment, error) {
	if p.lastSeg != nil && p.lastSeg.contains(addr) && (!write || p.lastSeg.writable) {
		return p.lastSeg, nil
	}
	for _, sg := range p.segs {
		if sg.contains(addr) {
			if write && !sg.writable {
				return nil, &MemoryError{Addr: addr, Write: true}
			}
			p.lastSeg = sg
			return sg, nil
		}
	}
	return nil, &MemoryError{Addr: addr, Write: write}
}

// memFits reports whether n bytes starting at off fit inside a segment
// of seglen bytes. The comparison runs in 64 bits: the natural uint32
// form (off+uint32(n) > seglen) wraps for large n — e.g. a syscall
// passing a huge length against a multi-gigabyte heap — passing the
// bounds check only to panic on the slice expression below it.
func memFits(seglen int, off uint32, n int64) bool {
	return n >= 0 && uint64(off)+uint64(n) <= uint64(seglen)
}

// ReadWord reads a 32-bit little-endian word. The fast path serves the
// word straight out of a cached segment window — no seg() scan, no
// error allocation; `addr - base` wraps for addresses below the window,
// so the single unsigned comparison rejects both sides.
func (p *Proc) ReadWord(addr uint32) (int32, error) {
	if off := addr - p.rdc.base; uint64(off)+4 <= uint64(len(p.rdc.data)) {
		return int32(binary.LittleEndian.Uint32(p.rdc.data[off:])), nil
	}
	if off := addr - p.wrc.base; uint64(off)+4 <= uint64(len(p.wrc.data)) {
		return int32(binary.LittleEndian.Uint32(p.wrc.data[off:])), nil
	}
	return p.readWordSlow(addr)
}

func (p *Proc) readWordSlow(addr uint32) (int32, error) {
	sg, err := p.seg(addr, false)
	if err != nil {
		return 0, err
	}
	off := addr - sg.base
	if !memFits(sg.length(), off, 4) {
		return 0, &MemoryError{Addr: addr}
	}
	if sg.cow == nil {
		p.rdc = memWindow{base: sg.base, data: sg.data}
		return int32(binary.LittleEndian.Uint32(sg.data[off:])), nil
	}
	// CoW segments get page-granular windows: adjacent pages are not
	// contiguous in host memory once one of them is privatized.
	pi, po := off>>pageShift, off&pageMask
	if pg := sg.cow.pages[pi]; uint64(po)+4 <= uint64(len(pg)) {
		p.rdc = memWindow{base: sg.base + pi<<pageShift, data: pg}
		return int32(binary.LittleEndian.Uint32(pg[po:])), nil
	}
	// The word straddles a page boundary: assemble it byte-wise
	// (memFits above proved every byte is in bounds).
	var w uint32
	for i := uint32(0); i < 4; i++ {
		w |= uint32(sg.byteAt(off+i)) << (8 * i)
	}
	return int32(w), nil
}

// WriteWord writes a 32-bit little-endian word. The write window caches
// only writable segments, so a hit needs no permission re-check.
func (p *Proc) WriteWord(addr uint32, v int32) error {
	if off := addr - p.wrc.base; uint64(off)+4 <= uint64(len(p.wrc.data)) {
		binary.LittleEndian.PutUint32(p.wrc.data[off:], uint32(v))
		return nil
	}
	return p.writeWordSlow(addr, v)
}

func (p *Proc) writeWordSlow(addr uint32, v int32) error {
	sg, err := p.seg(addr, true)
	if err != nil {
		return err
	}
	off := addr - sg.base
	if !memFits(sg.length(), off, 4) {
		return &MemoryError{Addr: addr, Write: true}
	}
	if sg.cow == nil {
		p.wrc = memWindow{base: sg.base, data: sg.data}
		binary.LittleEndian.PutUint32(sg.data[off:], uint32(v))
		return nil
	}
	// The wrc window is only ever installed over an already-private
	// page, which is what keeps the inline fast paths barrier-free.
	pi, po := off>>pageShift, off&pageMask
	pg := p.privatize(sg, pi)
	if uint64(po)+4 <= uint64(len(pg)) {
		p.wrc = memWindow{base: sg.base + pi<<pageShift, data: pg}
		binary.LittleEndian.PutUint32(pg[po:], uint32(v))
		return nil
	}
	// Page-straddling word: privatize both pages, write byte-wise.
	p.privatize(sg, pi+1)
	for i := uint32(0); i < 4; i++ {
		o := off + i
		sg.cow.pages[o>>pageShift][o&pageMask] = byte(uint32(v) >> (8 * i))
	}
	return nil
}

// ReadByte reads one byte.
func (p *Proc) ReadByteAt(addr uint32) (byte, error) {
	if off := addr - p.rdc.base; uint64(off) < uint64(len(p.rdc.data)) {
		return p.rdc.data[off], nil
	}
	if off := addr - p.wrc.base; uint64(off) < uint64(len(p.wrc.data)) {
		return p.wrc.data[off], nil
	}
	return p.readByteSlow(addr)
}

func (p *Proc) readByteSlow(addr uint32) (byte, error) {
	sg, err := p.seg(addr, false)
	if err != nil {
		return 0, err
	}
	off := addr - sg.base
	if sg.cow == nil {
		p.rdc = memWindow{base: sg.base, data: sg.data}
		return sg.data[off], nil
	}
	pi := off >> pageShift
	pg := sg.cow.pages[pi]
	p.rdc = memWindow{base: sg.base + pi<<pageShift, data: pg}
	return pg[off&pageMask], nil
}

// WriteByte writes one byte.
func (p *Proc) WriteByteAt(addr uint32, v byte) error {
	if off := addr - p.wrc.base; uint64(off) < uint64(len(p.wrc.data)) {
		p.wrc.data[off] = v
		return nil
	}
	return p.writeByteSlow(addr, v)
}

func (p *Proc) writeByteSlow(addr uint32, v byte) error {
	sg, err := p.seg(addr, true)
	if err != nil {
		return err
	}
	off := addr - sg.base
	if sg.cow == nil {
		p.wrc = memWindow{base: sg.base, data: sg.data}
		sg.data[off] = v
		return nil
	}
	pi := off >> pageShift
	pg := p.privatize(sg, pi)
	p.wrc = memWindow{base: sg.base + pi<<pageShift, data: pg}
	pg[off&pageMask] = v
	return nil
}

// ReadBytes copies n bytes out of VM memory.
func (p *Proc) ReadBytes(addr uint32, n int32) ([]byte, error) {
	sg, err := p.seg(addr, false)
	if err != nil {
		return nil, err
	}
	off := addr - sg.base
	if !memFits(sg.length(), off, int64(n)) {
		return nil, &MemoryError{Addr: addr}
	}
	if sg.cow == nil {
		return append([]byte(nil), sg.data[off:off+uint32(n)]...), nil
	}
	out := make([]byte, n)
	for copied := 0; copied < len(out); {
		copied += copy(out[copied:], sg.view(off+uint32(copied)))
	}
	return out, nil
}

// WriteBytes copies bytes into VM memory.
func (p *Proc) WriteBytes(addr uint32, b []byte) error {
	sg, err := p.seg(addr, true)
	if err != nil {
		return err
	}
	off := addr - sg.base
	if !memFits(sg.length(), off, int64(len(b))) {
		return &MemoryError{Addr: addr, Write: true}
	}
	if sg.cow == nil {
		copy(sg.data[off:], b)
		return nil
	}
	for len(b) > 0 {
		pg := p.privatize(sg, off>>pageShift)
		n := copy(pg[off&pageMask:], b)
		b = b[n:]
		off += uint32(n)
	}
	return nil
}

// ReadCString reads a NUL-terminated string (max 4096 bytes). It scans
// whole segment slices rather than resolving one segment per byte —
// this is the interceptor's string-argument path (every intercepted
// open/unlink/spawn resolves its path argument through here).
func (p *Proc) ReadCString(addr uint32) (string, error) {
	var out []byte
	for len(out) < 4096 {
		sg, err := p.seg(addr, false)
		if err != nil {
			return "", err
		}
		b := sg.view(addr - sg.base)
		if rem := 4096 - len(out); len(b) > rem {
			b = b[:rem]
		}
		if i := bytes.IndexByte(b, 0); i >= 0 {
			return string(append(out, b[:i]...)), nil
		}
		// No terminator before the segment (or scan-limit) boundary:
		// keep going at the next address, as the byte loop would.
		out = append(out, b...)
		addr += uint32(len(b))
	}
	return "", errors.New("vm: unterminated string")
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// ErrDeadlock is returned by Run when no runnable process can make
// progress.
var ErrDeadlock = errors.New("vm: deadlock: all processes blocked")

// ErrBudget is returned when the cycle budget is exhausted.
var ErrBudget = errors.New("vm: cycle budget exhausted")

// ErrIdle is returned by RunUntil when every live process is blocked —
// typically waiting for a workload driver to supply external input.
var ErrIdle = errors.New("vm: all processes idle")

// Run schedules all processes round-robin until every process has exited,
// the cycle budget is exhausted (budget 0 = unlimited, measured against
// the system's absolute TotalCycles), or a deadlock is detected.
func (s *System) Run(budget uint64) error {
	return s.schedule(nil, 0, budget, ErrDeadlock)
}

// RunUntil schedules processes until cond returns true (checked between
// time slices), all processes exit (nil), every live process blocks
// (ErrIdle — the workload driver should feed more input and call again),
// or the budget is exhausted (ErrBudget; 0 = unlimited, measured from
// the call's starting TotalCycles).
func (s *System) RunUntil(cond func() bool, budget uint64) error {
	return s.schedule(cond, s.TotalCycles, budget, ErrIdle)
}

// schedule is the one round-robin scheduler loop behind Run and RunUntil
// (Run is RunUntil(nil, budget) with an absolute budget origin and
// ErrDeadlock as its no-progress verdict: a wedged Run can never make
// progress again, while a wedged RunUntil is merely idle until the
// workload driver feeds more input). Budget exhaustion is checked after
// every time slice against s.TotalCycles - start.
func (s *System) schedule(cond func() bool, start, budget uint64, stall error) error {
	if err, done := s.resumeRound(start, budget, stall); done {
		return err
	}
	for {
		if cond != nil && cond() {
			return nil
		}
		alive, progress := 0, false
		for _, p := range s.procs {
			if p.Exited {
				continue
			}
			alive++
			if p.runSlice(s.opts.TimeSlice) > 0 {
				progress = true
			}
			if budget > 0 && s.TotalCycles-start >= budget {
				return ErrBudget
			}
		}
		if alive == 0 {
			return nil
		}
		if !progress {
			return stall
		}
	}
}

// schedResume freezes the scheduler's position inside a partially
// completed round — the state RunBreak leaves behind when it stops the
// system mid-slice at a breakpoint. The next schedule call consumes it:
// the interrupted process finishes its remaining slice first, then the
// rest of that round's processes take full slices, and only then do
// fresh rounds begin. That way every later slice boundary, budget check
// and cross-process interleaving lands on exactly the cycle it would
// have in an unbroken run.
type schedResume struct {
	procIdx   int  // round position: the process that was mid-slice
	sliceLeft int  // instructions left in its interrupted slice
	alive     int  // live processes already counted this round (procIdx included)
	progress  bool // whether the round made progress before the stop
	nprocs    int  // processes in the round when it started (later spawns join the next)
}

// resumeRound finishes a round interrupted by RunBreak. It returns
// done=true when the scheduler must stop inside the resumed round
// (budget exhausted, all processes exited, or no progress) and
// done=false when the round completed and normal rounds should follow.
func (s *System) resumeRound(start, budget uint64, stall error) (error, bool) {
	r := s.resume
	if r == nil {
		return nil, false
	}
	s.resume = nil
	alive, progress := r.alive, r.progress
	n := r.nprocs
	if n > len(s.procs) {
		n = len(s.procs)
	}
	for i := r.procIdx; i < n; i++ {
		p := s.procs[i]
		slice := s.opts.TimeSlice
		if i == r.procIdx {
			slice = r.sliceLeft
		} else {
			if p.Exited {
				continue
			}
			alive++
		}
		if p.runSlice(slice) > 0 {
			progress = true
		}
		if budget > 0 && s.TotalCycles-start >= budget {
			return ErrBudget, true
		}
	}
	if alive == 0 {
		return nil, true
	}
	if !progress {
		return stall, true
	}
	return nil, false
}

// breakState tracks breakpoint arrivals for one process during RunBreak.
// atVA suppresses double counting when a slice ends (or a blocked
// syscall retries) with the PC parked on the breakpoint address.
type breakState struct {
	count int32
	atVA  bool
}

// RunBreak runs like Run(budget) but stops the whole system just before
// the target-th arrival of any process's PC at va (arrivals are counted
// across all processes). On a hit it returns (true, nil) with the
// system frozen before the instruction at va executes and the
// scheduler's mid-round position recorded, so Snapshot/Restore/Run
// continues with slice boundaries, budget checks and interleavings
// identical to an unbroken Run — the memoized-sweep prefix contract.
// When every process exits (nil), the system deadlocks (ErrDeadlock) or
// the budget runs out (ErrBudget) before the arrival, it returns
// (false, err) with cycle accounting identical to Run's.
//
// The instruction at va must not be able to block (true for interceptor
// stub prologues, whose first instruction is a lea). The prefix executes
// on the step engine regardless of Options.Engine — both engines are
// decision-for-decision identical, so the stopped state is the one
// either engine reaches.
func (s *System) RunBreak(va uint32, target int32, budget uint64) (bool, error) {
	if target <= 0 {
		return false, fmt.Errorf("vm: RunBreak target %d not positive", target)
	}
	states := make(map[*Proc]*breakState)
	for {
		alive, progress := 0, false
		nprocs := len(s.procs)
		for i := 0; i < nprocs; i++ {
			p := s.procs[i]
			if p.Exited {
				continue
			}
			alive++
			st := states[p]
			if st == nil {
				st = &breakState{}
				states[p] = st
			}
			ran, hit := p.runSliceBreak(s.opts.TimeSlice, va, target, st)
			if ran > 0 {
				progress = true
			}
			if hit {
				s.resume = &schedResume{
					procIdx:   i,
					sliceLeft: s.opts.TimeSlice - ran,
					alive:     alive,
					progress:  progress,
					nprocs:    nprocs,
				}
				return true, nil
			}
			if budget > 0 && s.TotalCycles >= budget {
				return false, ErrBudget
			}
		}
		if alive == 0 {
			return false, nil
		}
		if !progress {
			return false, ErrDeadlock
		}
	}
}

// runSliceBreak is the step engine's runSlice with an arrival check
// before every instruction. It returns how many instructions ran and
// whether the target arrival was reached (the instruction at va not yet
// executed).
func (p *Proc) runSliceBreak(n int, va uint32, target int32, st *breakState) (int, bool) {
	ran := 0
	for ran < n && !p.Exited {
		if p.PC == va {
			if !st.atVA {
				st.atVA = true
				st.count++
				if st.count == target {
					return ran, true
				}
			}
		} else {
			st.atVA = false
		}
		if !p.step() {
			break // blocked in a syscall: yield the slice
		}
		ran++
	}
	return ran, false
}

// runSlice executes up to n instructions on the configured engine;
// returns how many ran. Both engines consume the slice instruction by
// instruction — a superblock straddling the slice boundary is split, so
// scheduling (and therefore every cross-process interleaving and budget
// check) is identical between them.
func (p *Proc) runSlice(n int) int {
	if p.Sys.opts.Engine == EngineStep {
		ran := 0
		for i := 0; i < n && !p.Exited; i++ {
			advanced := p.step()
			if advanced {
				ran++
			} else {
				break // blocked in a syscall: yield the slice
			}
		}
		return ran
	}
	return p.runSliceBlocks(n)
}

func (p *Proc) kill(sig int32) {
	p.Exited = true
	p.Status = ExitStatus{Signal: sig}
	p.Sys.kern.ReleaseProcess(p.ID)
}

// failMem kills the process on a faulting memory access. Every memory
// fault is a SIGSEGV regardless of the underlying error; hoisted out of
// the interpreter loop (it used to be a per-step closure) so a step
// allocates nothing.
func (p *Proc) failMem() bool {
	p.kill(SigSEGV)
	return true
}

func (p *Proc) exit(code int32) {
	p.Exited = true
	p.Status = ExitStatus{Code: code}
	p.Sys.kern.ReleaseProcess(p.ID)
}

// step executes one instruction. It returns false when the process is
// blocked (PC unchanged) so the scheduler can switch away.
func (p *Proc) step() bool {
	if p.PC == exitSentinel {
		p.exit(int32(p.Regs[isa.R0]))
		return true
	}
	im := p.imageAt(p.PC)
	if im == nil {
		p.kill(SigSEGV)
		return true
	}
	idx := int(p.PC-im.TextBase) / isa.Size
	if idx >= len(im.Insts) {
		p.kill(SigSEGV)
		return true
	}
	if im.CoverBits != nil {
		im.CoverBits[idx/64] |= 1 << (idx % 64)
	}
	in := im.Insts[idx]
	p.Cycles++
	p.Sys.TotalCycles++
	next := p.PC + isa.Size

	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		p.exit(int32(p.Regs[isa.R0]))
		return true

	case isa.OpMovRI:
		p.Regs[in.A] = uint32(in.Imm)
	case isa.OpMovRR:
		p.Regs[in.A] = p.Regs[in.B]
	case isa.OpLoad:
		v, err := p.ReadWord(p.Regs[in.B] + uint32(in.Imm))
		if err != nil {
			return p.failMem()
		}
		p.Regs[in.A] = uint32(v)
	case isa.OpLoadB:
		v, err := p.ReadByteAt(p.Regs[in.B] + uint32(in.Imm))
		if err != nil {
			return p.failMem()
		}
		p.Regs[in.A] = uint32(v)
	case isa.OpStoreR:
		if err := p.WriteWord(p.Regs[in.A]+uint32(in.Imm), int32(p.Regs[in.B])); err != nil {
			return p.failMem()
		}
	case isa.OpStoreB:
		if err := p.WriteByteAt(p.Regs[in.A]+uint32(in.Imm), byte(p.Regs[in.B])); err != nil {
			return p.failMem()
		}
	case isa.OpStoreI:
		if err := p.WriteWord(p.Regs[in.A]+uint32(in.StoreIDisp()), in.Imm); err != nil {
			return p.failMem()
		}
	case isa.OpPushR:
		p.Regs[isa.SP] -= 4
		if err := p.WriteWord(p.Regs[isa.SP], int32(p.Regs[in.A])); err != nil {
			return p.failMem()
		}
	case isa.OpPushI:
		p.Regs[isa.SP] -= 4
		if err := p.WriteWord(p.Regs[isa.SP], in.Imm); err != nil {
			return p.failMem()
		}
	case isa.OpPopR:
		v, err := p.ReadWord(p.Regs[isa.SP])
		if err != nil {
			return p.failMem()
		}
		p.Regs[isa.SP] += 4
		p.Regs[in.A] = uint32(v)

	case isa.OpAddRI:
		p.Regs[in.A] += uint32(in.Imm)
	case isa.OpAddRR:
		p.Regs[in.A] += p.Regs[in.B]
	case isa.OpSubRI:
		p.Regs[in.A] -= uint32(in.Imm)
	case isa.OpSubRR:
		p.Regs[in.A] -= p.Regs[in.B]
	case isa.OpMulRR:
		p.Regs[in.A] = uint32(int32(p.Regs[in.A]) * int32(p.Regs[in.B]))
	case isa.OpDivRR:
		if p.Regs[in.B] == 0 {
			p.kill(SigFPE)
			return true
		}
		p.Regs[in.A] = uint32(int32(p.Regs[in.A]) / int32(p.Regs[in.B]))
	case isa.OpModRR:
		if p.Regs[in.B] == 0 {
			p.kill(SigFPE)
			return true
		}
		p.Regs[in.A] = uint32(int32(p.Regs[in.A]) % int32(p.Regs[in.B]))
	case isa.OpAndRI:
		p.Regs[in.A] &= uint32(in.Imm)
	case isa.OpAndRR:
		p.Regs[in.A] &= p.Regs[in.B]
	case isa.OpOrRI:
		p.Regs[in.A] |= uint32(in.Imm)
	case isa.OpOrRR:
		p.Regs[in.A] |= p.Regs[in.B]
	case isa.OpXorRI:
		p.Regs[in.A] ^= uint32(in.Imm)
	case isa.OpXorRR:
		p.Regs[in.A] ^= p.Regs[in.B]
	case isa.OpShlRI:
		p.Regs[in.A] <<= uint32(in.Imm) & 31
	case isa.OpShrRI:
		p.Regs[in.A] >>= uint32(in.Imm) & 31
	case isa.OpNeg:
		p.Regs[in.A] = uint32(-int32(p.Regs[in.A]))
	case isa.OpNot:
		p.Regs[in.A] = ^p.Regs[in.A]

	case isa.OpCmpRI:
		a := int32(p.Regs[in.A])
		p.flagEQ = a == in.Imm
		p.flagLT = a < in.Imm
	case isa.OpCmpRR:
		a, b := int32(p.Regs[in.A]), int32(p.Regs[in.B])
		p.flagEQ = a == b
		p.flagLT = a < b

	case isa.OpJmp:
		p.PC = uint32(in.Imm)
		return true
	case isa.OpJe:
		if p.flagEQ {
			p.PC = uint32(in.Imm)
			return true
		}
	case isa.OpJne:
		if !p.flagEQ {
			p.PC = uint32(in.Imm)
			return true
		}
	case isa.OpJl:
		if p.flagLT {
			p.PC = uint32(in.Imm)
			return true
		}
	case isa.OpJle:
		if p.flagLT || p.flagEQ {
			p.PC = uint32(in.Imm)
			return true
		}
	case isa.OpJg:
		if !p.flagLT && !p.flagEQ {
			p.PC = uint32(in.Imm)
			return true
		}
	case isa.OpJge:
		if !p.flagLT {
			p.PC = uint32(in.Imm)
			return true
		}

	case isa.OpCall:
		return p.doCall(uint32(in.Imm), next)
	case isa.OpCallR:
		return p.doCall(p.Regs[in.A], next)
	case isa.OpJmpI:
		p.PC = p.Regs[in.A]
		return true
	case isa.OpRet:
		v, err := p.ReadWord(p.Regs[isa.SP])
		if err != nil {
			return p.failMem()
		}
		p.Regs[isa.SP] += 4
		p.PC = uint32(v)
		if len(p.CallStack) > 0 {
			p.CallStack = p.CallStack[:len(p.CallStack)-1]
		}
		return true

	case isa.OpSyscall:
		return p.doSyscall(next)

	case isa.OpLea:
		p.Regs[in.A] = uint32(in.Imm)
	case isa.OpTLSBase:
		p.Regs[in.A] = im.TLSBase
	case isa.OpDlNext:
		// The import index comes from the encoded instruction, which a
		// crafted object file controls: both bounds must be checked or a
		// negative Imm would panic the host instead of faulting the
		// guest (the block engine mirrors this arm exactly).
		name := ""
		if in.Imm >= 0 && int(in.Imm) < len(im.File.Imports) {
			name = im.File.Imports[in.Imm]
		}
		va, ok := p.Sys.resolveNext(p, im, name)
		if !ok {
			p.kill(SigSEGV)
			return true
		}
		p.Regs[in.A] = va

	default:
		p.kill(SigSEGV)
		return true
	}
	p.PC = next
	return true
}

func (p *Proc) doCall(target, retPC uint32) bool {
	// Push the return address.
	p.Regs[isa.SP] -= 4
	if err := p.WriteWord(p.Regs[isa.SP], int32(retPC)); err != nil {
		p.kill(SigSEGV)
		return true
	}
	if target >= hostBase && target != exitSentinel {
		idx := int(target-hostBase) / 8
		if idx < 0 || idx >= len(p.Sys.hosts) {
			p.kill(SigSEGV)
			return true
		}
		hc := &HostCall{Sys: p.Sys, Proc: p, sp: p.Regs[isa.SP]}
		ret := p.Sys.hosts[idx](hc)
		if p.Exited {
			return true
		}
		p.Regs[isa.R0] = uint32(ret)
		// Simulated return.
		p.Regs[isa.SP] += 4
		p.PC = retPC
		return true
	}
	sym := ""
	mod := ""
	if im := p.imageAt(target); im != nil {
		sym = im.FuncNameAt(target)
		mod = im.File.Name
	}
	p.CallStack = append(p.CallStack, Frame{FuncVA: target, Symbol: sym, Module: mod, RetPC: retPC})
	p.PC = target
	return true
}

// Brk grows (or queries, with arg 0) the process heap; Linux-style.
func (p *Proc) Brk(newBrk uint32) int32 {
	if newBrk == 0 {
		return int32(p.brk)
	}
	if newBrk < heapBase || newBrk > heapBase+p.Sys.opts.HeapLimit {
		return -kernel.ENOMEM
	}
	// A restored CoW heap flattens before any resize: grow/shrink
	// reason about one contiguous backing slice, and the resized heap
	// no longer matches the template's page geometry. Both resize arms
	// below invalidate the window cache, which also drops any page
	// views the flatten orphaned.
	if newBrk != p.brk {
		p.heap.materialize()
	}
	switch {
	case newBrk > p.brk:
		p.heap.data = append(p.heap.data, make([]byte, newBrk-p.brk)...)
		// The append may have moved the heap's backing array; cached
		// segment windows alias the old one and must not serve it.
		p.invalidateMemCache()
	case newBrk < p.brk:
		// Shrink truncates the segment so len(heap.data) tracks brk:
		// without this, a shrink-then-grow cycle appends onto the old
		// high-water buffer, leaving memory beyond brk accessible and
		// regrown bytes stale instead of zeroed. (The append above
		// writes zeroes over any reused capacity.) Cached windows hold
		// the longer length and must be dropped.
		p.heap.data = p.heap.data[:newBrk-heapBase]
		p.invalidateMemCache()
	}
	p.brk = newBrk
	return int32(p.brk)
}

// HeapLimit reports the configured per-process heap cap.
func (s *System) HeapLimit() uint32 { return s.opts.HeapLimit }
