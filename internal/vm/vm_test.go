package vm_test

import (
	"testing"

	"lfi/internal/asm"
	"lfi/internal/isa"
	"lfi/internal/kernel"
	"lfi/internal/obj"
	"lfi/internal/vm"
)

func assemble(t *testing.T, src string) *obj.File {
	t.Helper()
	f, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return f
}

func runExe(t *testing.T, sys *vm.System, exe string, cfg vm.SpawnConfig) *vm.Proc {
	t.Helper()
	p, err := sys.Spawn(exe, cfg)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if err := sys.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p
}

func TestExitCodeFromMain(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  mov r0, 41
  add r0, 1
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != 42 || p.Status.Signal != 0 {
		t.Errorf("status = %+v", p.Status)
	}
}

func TestCrossModuleCallAndData(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.lib libm.so
.global addone
.global base
.dataw base 100
.func addone
  push bp
  mov bp, sp
  load r0, [bp+8]
  add r0, 1
  lea r1, base
  load r1, [r1+0]
  add r0, r1
  mov sp, bp
  pop bp
  ret
`))
	sys.Register(assemble(t, `
.exe a
.needs libm.so
.extern addone
.global main
.func main
  push 5
  call addone
  add sp, 4
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != 106 {
		t.Errorf("code = %d, want 106", p.Status.Code)
	}
}

func TestPreloadInterposition(t *testing.T) {
	// The preloaded module's definition of f wins; dlnext reaches the
	// original — LD_PRELOAD + RTLD_NEXT semantics.
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.lib orig.so
.global f
.func f
  mov r0, 1
  ret
`))
	sys.Register(assemble(t, `
.lib shim.so
.global f
.func f
  dlnext r1, f
  callr r1
  add r0, 100
  ret
`))
	sys.Register(assemble(t, `
.exe a
.needs orig.so
.extern f
.global main
.func main
  call f
  ret
`))
	// Without preload: 1. With preload: 101.
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != 1 {
		t.Fatalf("clean run code = %d", p.Status.Code)
	}
	p2 := runExe(t, sys, "a", vm.SpawnConfig{Preload: []string{"shim.so"}})
	if p2.Status.Code != 101 {
		t.Errorf("preloaded run code = %d, want 101", p2.Status.Code)
	}
}

func TestTLSIsolationBetweenModules(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.lib l1.so
.global seterr
.global geterr
.tls myerr 4
.func seterr
  lea r1, myerr
  store [r1+0], 77
  ret
.func geterr
  lea r1, myerr
  load r0, [r1+0]
  ret
`))
	sys.Register(assemble(t, `
.exe a
.needs l1.so
.extern seterr
.extern geterr
.global main
.tls myerr 4
.func main
  call seterr
  ; our own myerr must still be zero
  lea r1, myerr
  load r2, [r1+0]
  cmp r2, 0
  jne .bad
  call geterr
  ret
.bad:
  mov r0, -1
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != 77 {
		t.Errorf("code = %d, want 77 (module-private TLS)", p.Status.Code)
	}
}

func TestSignalOnBadMemory(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  mov r1, 1234
  load r0, [r1+0]
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Signal != vm.SigSEGV {
		t.Errorf("status = %+v, want SIGSEGV", p.Status)
	}
}

func TestWriteToTextSegfaults(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.global f
.func main
  lea r1, f
  store [r1+0], 0
  ret
.func f
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Signal != vm.SigSEGV {
		t.Errorf("status = %+v, want SIGSEGV on text write", p.Status)
	}
}

func TestBrkGrowsHeap(t *testing.T) {
	sys := vm.NewSystem(vm.Options{HeapLimit: 8192})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  ; query brk
  mov r0, 7
  mov r1, 0
  syscall
  mov r2, r0
  ; grow by 16
  add r2, 16
  mov r0, 7
  mov r1, r2
  syscall
  ; store at the new memory
  sub r2, 16
  store [r2+0], 9
  load r0, [r2+0]
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != 9 || p.Status.Signal != 0 {
		t.Errorf("status = %+v", p.Status)
	}
}

func TestBrkBeyondLimitFails(t *testing.T) {
	sys := vm.NewSystem(vm.Options{HeapLimit: 4096})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  mov r0, 7
  mov r1, 0
  syscall
  add r0, 1000000
  mov r1, r0
  mov r0, 7
  syscall
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != -kernel.ENOMEM {
		t.Errorf("code = %d, want -ENOMEM", p.Status.Code)
	}
}

func TestUnresolvedImportFailsSpawn(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.extern missing
.global main
.func main
  call missing
  ret
`))
	if _, err := sys.Spawn("a", vm.SpawnConfig{}); err == nil {
		t.Error("spawn must fail on unresolved import")
	}
}

func TestHostFunctionBridge(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	var gotArgs []int32
	sys.RegisterHost("host_add", func(hc *vm.HostCall) int32 {
		gotArgs = []int32{hc.Arg(0), hc.Arg(1)}
		return hc.Arg(0) + hc.Arg(1)
	})
	sys.Register(assemble(t, `
.exe a
.extern host_add
.global main
.func main
  push 30
  push 12
  call host_add
  add sp, 8
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != 42 {
		t.Errorf("code = %d, want 42", p.Status.Code)
	}
	if len(gotArgs) != 2 || gotArgs[0] != 12 || gotArgs[1] != 30 {
		t.Errorf("host args = %v (pushed right-to-left)", gotArgs)
	}
}

func TestShadowCallStack(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	var depth int
	var names []string
	sys.RegisterHost("probe", func(hc *vm.HostCall) int32 {
		depth = len(hc.Proc.CallStack)
		names = nil
		for _, f := range hc.Proc.CallStack {
			names = append(names, f.Symbol)
		}
		return 0
	})
	sys.Register(assemble(t, `
.exe a
.extern probe
.global main
.global inner
.func main
  call inner
  ret
.func inner
  call probe
  ret
`))
	runExe(t, sys, "a", vm.SpawnConfig{})
	if depth != 2 {
		t.Fatalf("stack depth at probe = %d, want 2 (main, inner): %v", depth, names)
	}
	if names[0] != "main" || names[1] != "inner" {
		t.Errorf("frames = %v", names)
	}
}

func TestPipeBetweenProcesses(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe child
.global main
.datab msg "hi"
.func child_body
  ret
.func main
  ; write "hi" (2 bytes + nul -> send 2) to fd 1
  mov r0, 3
  mov r1, 1
  lea r2, msg
  mov r3, 2
  syscall
  mov r0, 0
  ret
`))
	sys.Register(assemble(t, `
.exe parent
.global main
.data buf 8
.datab prog "child"
.func main
  push bp
  mov bp, sp
  sub sp, 8
  ; pipe(fds) at [bp-8]
  mov r0, 6
  mov r1, bp
  sub r1, 8
  syscall
  ; spawn("child", 0, wfd=[bp-4])
  mov r0, 8
  lea r1, prog
  mov r2, 0
  load r3, [bp-4]
  syscall
  ; wait(pid=-1, 0)
  mov r0, 9
  mov r1, -1
  mov r2, 0
  syscall
  ; read(rfd, buf, 8)
  mov r0, 2
  load r1, [bp-8]
  lea r2, buf
  mov r3, 8
  syscall
  ; return number of bytes read (2)
  mov sp, bp
  pop bp
  ret
`))
	p := runExe(t, sys, "parent", vm.SpawnConfig{})
	if p.Status.Code != 2 {
		t.Errorf("read %d bytes from child, want 2", p.Status.Code)
	}
}

func TestRunUntilIdle(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.data fds 8
.func main
  ; pipe + read from empty pipe: blocks forever
  mov r0, 6
  lea r1, fds
  syscall
  mov r0, 2
  lea r1, fds
  load r1, [r1+0]
  lea r2, fds
  mov r3, 4
  syscall
  ret
`))
	if _, err := sys.Spawn("a", vm.SpawnConfig{}); err != nil {
		t.Fatal(err)
	}
	err := sys.RunUntil(nil, 1_000_000)
	if err != vm.ErrIdle {
		t.Errorf("err = %v, want ErrIdle", err)
	}
}

func TestCycleBudget(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
.loop:
  jmp .loop
`))
	if _, err := sys.Spawn("a", vm.SpawnConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(100_000); err != vm.ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if sys.TotalCycles < 100_000 {
		t.Errorf("cycles = %d", sys.TotalCycles)
	}
}

func TestCoverageBits(t *testing.T) {
	sys := vm.NewSystem(vm.Options{Coverage: true})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  cmp r0, 0
  jne .skip
  mov r0, 7
.skip:
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	im, ok := p.ImageByName("a")
	if !ok {
		t.Fatal("image missing")
	}
	// All four instructions execute (r0 starts 0, so no skip).
	for off := int32(0); off < 4*isa.Size; off += isa.Size {
		if !im.Covered(off) {
			t.Errorf("instruction at %#x not covered", off)
		}
	}
}

func TestDivideByZeroSignal(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  mov r0, 5
  mov r1, 0
  div r0, r1
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Signal != vm.SigFPE {
		t.Errorf("status = %+v, want SIGFPE", p.Status)
	}
}

func TestSignalNames(t *testing.T) {
	if vm.SignalName(vm.SigABRT) != "SIGABRT" ||
		vm.SignalName(vm.SigSEGV) != "SIGSEGV" ||
		vm.SignalName(vm.SigFPE) != "SIGFPE" {
		t.Error("signal names wrong")
	}
}

func TestMemoryErrorMessage(t *testing.T) {
	err := &vm.MemoryError{Addr: 0x1234, Write: true}
	if err.Error() != "vm: invalid write at 0x1234" {
		t.Errorf("message = %q", err.Error())
	}
}
