package vm

// Restore-isolation property tests for the copy-on-write snapshot
// runtime (cow.go): sibling restores interleave writes to the same
// pages and must never see each other or the template; an untouched
// sibling must still be sharing (pointer-equal) pages with the
// snapshot; and a restore must be bit-identical to a fresh spawn.
// FuzzRestoreCoW drives the same invariants from random host-side
// write/Brk/Restore/run sequences.

import (
	"fmt"
	"sync"
	"testing"
)

// cowHammerSrc grows the heap and writes every word of it — a guest
// whose whole working set is dirtied CoW pages. The exit code is a
// checksum over everything it wrote, so a corrupted or stale page
// changes the observable outcome.
const cowHammerSrc = `
.exe cowhammer
.global main
.func main
  mov r0, 7
  mov r1, 0x40000400
  syscall
  mov r1, 0x40000000
  mov r2, 0
  mov r3, 0
.loop:
  store [r1+0], r2
  load r4, [r1+0]
  add r3, r4
  add r1, 4
  add r2, 5
  cmp r1, 0x40000400
  jne .loop
  mov r0, r3
  ret
`

func cowTestSystem(t testing.TB) *System {
	sys := NewSystem(Options{StackSize: 1 << 14, HeapLimit: 1 << 16})
	sys.Register(assembleSrc(t, cowHammerSrc))
	if _, err := sys.Spawn("cowhammer", SpawnConfig{}); err != nil {
		t.Fatal(err)
	}
	return sys
}

// writableBytes flattens every writable segment of a process, keyed by
// segment name — the full mutable memory image.
func writableBytes(p *Proc) map[string][]byte {
	out := make(map[string][]byte)
	for _, sg := range p.segs {
		if sg.writable {
			out[sg.name] = append([]byte(nil), sg.flatten()...)
		}
	}
	return out
}

func sameBytes(t *testing.T, what string, a, b map[string][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: segment count %d != %d", what, len(a), len(b))
	}
	for name, av := range a {
		bv, ok := b[name]
		if !ok {
			t.Fatalf("%s: segment %s missing", what, name)
		}
		if string(av) != string(bv) {
			t.Fatalf("%s: segment %s bytes diverged", what, name)
		}
	}
}

func stackSeg(t *testing.T, p *Proc) *segment {
	t.Helper()
	for _, sg := range p.segs {
		if sg.name == "stack" {
			return sg
		}
	}
	t.Fatal("no stack segment")
	return nil
}

// TestRestoreCoWIsolation is the N-sibling property test: siblings
// interleave distinct writes to the same stack pages; the template and
// every sibling must stay bit-identical to a fresh spawn modulo exactly
// their own writes, and a sibling that never wrote must still share
// every page with the snapshot, pointer for pointer.
func TestRestoreCoWIsolation(t *testing.T) {
	tplSys := cowTestSystem(t)
	freshRef := writableBytes(cowTestSystem(t).procs[0])
	snap, err := tplSys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	const siblings = 4
	sibs := make([]*System, siblings)
	for i := range sibs {
		sibs[i] = snap.Restore()
	}
	untouched := snap.Restore()

	// All siblings hammer the same three pages, interleaved by round.
	base := stackSeg(t, sibs[0].procs[0]).base
	addrs := []uint32{base + 16, base + pageSize + 128, base + 2*pageSize + 512}
	last := make([]map[uint32]int32, siblings)
	for round := 0; round < 3; round++ {
		for si, sb := range sibs {
			p := sb.procs[0]
			if last[si] == nil {
				last[si] = make(map[uint32]int32)
			}
			for ai, addr := range addrs {
				v := int32(0x01000000*si + 0x10000*round + 0x100*ai + 7)
				if err := p.WriteWord(addr, v); err != nil {
					t.Fatalf("sibling %d write %#x: %v", si, addr, err)
				}
				last[si][addr] = v
			}
		}
	}

	// Every sibling reads back exactly its own final values...
	for si, sb := range sibs {
		p := sb.procs[0]
		for addr, want := range last[si] {
			if got, err := p.ReadWord(addr); err != nil || got != want {
				t.Fatalf("sibling %d read %#x = %#x, %v; want %#x", si, addr, uint32(got), err, uint32(want))
			}
		}
		// ...and its full memory image equals fresh-spawn plus exactly
		// its own writes.
		want := make(map[string][]byte, len(freshRef))
		for name, bs := range freshRef {
			want[name] = append([]byte(nil), bs...)
		}
		for addr, v := range last[si] {
			stk := want["stack"]
			off := addr - base
			stk[off] = byte(v)
			stk[off+1] = byte(v >> 8)
			stk[off+2] = byte(v >> 16)
			stk[off+3] = byte(v >> 24)
		}
		sameBytes(t, fmt.Sprintf("sibling %d", si), writableBytes(p), want)
	}

	// The template system and the untouched sibling are still fresh.
	sameBytes(t, "template", writableBytes(tplSys.procs[0]), freshRef)
	sameBytes(t, "untouched sibling", writableBytes(untouched.procs[0]), freshRef)

	// The untouched sibling never copied: every page of every writable
	// segment is pointer-equal to the snapshot's shared page table.
	up := untouched.procs[0]
	for i, sg := range up.segs {
		if !sg.writable {
			continue
		}
		if sg.cow == nil {
			t.Fatalf("segment %s restored without a CoW overlay", sg.name)
		}
		ss := &snap.procs[0].segs[i]
		if len(sg.cow.pages) != len(ss.pages) {
			t.Fatalf("segment %s: %d pages vs %d in snapshot", sg.name, len(sg.cow.pages), len(ss.pages))
		}
		for j, pg := range sg.cow.pages {
			if sg.cow.dirty[j] {
				t.Fatalf("segment %s page %d dirty on an untouched sibling", sg.name, j)
			}
			if len(pg) > 0 && &pg[0] != &ss.pages[j][0] {
				t.Fatalf("segment %s page %d not shared with the snapshot", sg.name, j)
			}
		}
	}

	// And a writing sibling privatized only the pages it touched.
	ws := stackSeg(t, sibs[0].procs[0])
	dirtyPages := map[uint32]bool{}
	for _, addr := range addrs {
		dirtyPages[(addr-base)>>pageShift] = true
	}
	for j := range ws.cow.pages {
		if ws.cow.dirty[j] != dirtyPages[uint32(j)] {
			t.Fatalf("stack page %d dirty=%v, want %v", j, ws.cow.dirty[j], dirtyPages[uint32(j)])
		}
	}
}

// TestRestoreCoWConcurrent restores and runs the guest from one shared
// template on 8 goroutines at once — the sweep executor's worker shape.
// Run under -race in CI: every sibling reads the same shared pages and
// must copy before writing, privately.
func TestRestoreCoWConcurrent(t *testing.T) {
	ref := cowTestSystem(t)
	if err := ref.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	want := ref.procs[0].Status
	if !ref.procs[0].Exited {
		t.Fatal("reference run did not exit")
	}

	snap, err := cowTestSystem(t).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				r := snap.Restore()
				if err := r.Run(1_000_000); err != nil {
					t.Errorf("worker %d run %d: %v", w, i, err)
					return
				}
				if p := r.procs[0]; !p.Exited || p.Status != want {
					t.Errorf("worker %d run %d: status %+v, want %+v", w, i, p.Status, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// FuzzRestoreCoW drives random host-side sequences of guest-memory
// writes, Brk resizes, partial guest executions and fresh restores
// against one shared snapshot. Invariants: the template never mutates,
// and an untouched restore reads bit-identically to a fresh spawn.
func FuzzRestoreCoW(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 1, 0, 0x40, 0x20, 2, 8, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0})
	f.Add([]byte{2, 0xff, 0x10, 0, 0, 0, 0, 0x7f, 4, 1, 1, 1, 0, 2, 4, 8})
	f.Add([]byte{3, 3, 3, 3, 1, 2, 3, 4, 2, 0, 0xff, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tpl := cowTestSystem(t)
		before := writableBytes(tpl.procs[0])
		snap, err := tpl.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		cur := snap.Restore()
		p := cur.procs[0]
		for i := 0; i+3 < len(ops); i += 4 {
			op, a, b, c := ops[i], ops[i+1], ops[i+2], ops[i+3]
			switch op % 5 {
			case 0: // word write somewhere in the stack
				sg := stackSeg(t, p)
				addr := sg.base + (uint32(a)<<8|uint32(b))%uint32(sg.length())
				_ = p.WriteWord(addr, int32(c)*0x01010101) // fault paths are in scope
			case 1: // byte write at/above the heap base (often unmapped)
				_ = p.WriteByteAt(heapBase+uint32(a), c)
			case 2: // resize the heap
				p.Brk(heapBase + uint32(b)<<4)
			case 3: // run a few instructions of the guest
				_ = cur.RunUntil(nil, uint64(a)+1)
			case 4: // abandon this sibling, restore a fresh one
				cur = snap.Restore()
				p = cur.procs[0]
			}
		}
		// The template never mutates, no matter what siblings did.
		after := writableBytes(tpl.procs[0])
		for name, bs := range before {
			if string(after[name]) != string(bs) {
				t.Fatalf("template segment %s mutated by restore activity", name)
			}
		}
		// Restore-then-read equals fresh-spawn-then-read.
		clean := snap.Restore().procs[0]
		fresh := cowTestSystem(t).procs[0]
		cb, fb := writableBytes(clean), writableBytes(fresh)
		for name, bs := range fb {
			if string(cb[name]) != string(bs) {
				t.Fatalf("segment %s: restore-then-read differs from fresh-spawn-then-read", name)
			}
		}
		// The word-read path agrees too (not just flatten): sample the
		// stack through ReadWord on both.
		sg := stackSeg(t, fresh)
		for off := uint32(0); off+4 <= uint32(sg.length()); off += 997 {
			cv, ce := clean.ReadWord(sg.base + off)
			fv, fe := fresh.ReadWord(sg.base + off)
			if cv != fv || (ce == nil) != (fe == nil) {
				t.Fatalf("ReadWord(%#x): restore %#x,%v vs fresh %#x,%v", sg.base+off, uint32(cv), ce, uint32(fv), fe)
			}
		}
	})
}
