package vm

// The differential oracle for the block-compiled execution engine: the
// legacy per-instruction interpreter (EngineStep) is the reference, and
// every test here runs the same guest under both engines in lockstep —
// one scheduler round at a time — asserting identical registers, flags,
// PCs, per-process and total cycle counts, memory images, coverage bits,
// exit statuses and host-call-boundary observations after every round.
// A sweep-report-level differential (fresh-spawn and snapshot executors,
// 1/4/8 workers) lives in internal/core.

import (
	"bytes"
	"fmt"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/isa"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
)

func assembleSrc(t testing.TB, src string) *obj.File {
	t.Helper()
	f, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return f
}

// hostObs is one host-call-boundary observation: everything a host
// function (and therefore an LFI interceptor's trigger evaluator) can
// see about the calling process at the moment of the call.
type hostObs struct {
	pid    int
	regs   [isa.NumRegs]uint32
	sp     uint32
	cycles uint64
	total  uint64
	depth  int // shadow call stack depth
}

// lockstepCase builds one System per engine. The build function must be
// deterministic: register the same programs, files and host functions,
// and spawn the same processes on whichever system it is given.
type lockstepCase struct {
	name  string
	opts  Options
	build func(t testing.TB, sys *System, obs *[]hostObs)
	// rounds caps the scheduler rounds before the test declares the
	// guest wedged (0 = default).
	rounds int
	// wantExit, when non-nil, asserts the first process's final status —
	// a guard against a guest that "passes" lockstep only because it
	// fails identically on both engines.
	wantExit *ExitStatus
}

// schedRound mirrors one iteration of System.schedule's inner loop and
// reports whether the system can still make progress.
func schedRound(s *System) (done bool) {
	alive, progress := 0, false
	for _, p := range s.procs {
		if p.Exited {
			continue
		}
		alive++
		if p.runSlice(s.opts.TimeSlice) > 0 {
			progress = true
		}
	}
	return alive == 0 || !progress
}

func compareProcs(t testing.TB, round int, a, b *Proc) {
	t.Helper()
	if a.PC != b.PC || a.Regs != b.Regs || a.flagEQ != b.flagEQ || a.flagLT != b.flagLT {
		t.Fatalf("round %d pid %d: state diverged\n step:  pc=%#x regs=%v eq=%v lt=%v\n block: pc=%#x regs=%v eq=%v lt=%v",
			round, a.ID, a.PC, a.Regs, a.flagEQ, a.flagLT, b.PC, b.Regs, b.flagEQ, b.flagLT)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("round %d pid %d: cycles %d (step) != %d (block)", round, a.ID, a.Cycles, b.Cycles)
	}
	if a.Exited != b.Exited || a.Status != b.Status || a.blocked != b.blocked || a.brk != b.brk {
		t.Fatalf("round %d pid %d: exited=%v/%v status=%+v/%+v blocked=%v/%v brk=%#x/%#x",
			round, a.ID, a.Exited, b.Exited, a.Status, b.Status, a.blocked, b.blocked, a.brk, b.brk)
	}
	if len(a.CallStack) != len(b.CallStack) {
		t.Fatalf("round %d pid %d: call stack depth %d != %d", round, a.ID, len(a.CallStack), len(b.CallStack))
	}
	for i := range a.CallStack {
		if a.CallStack[i] != b.CallStack[i] {
			t.Fatalf("round %d pid %d: frame %d %+v != %+v", round, a.ID, i, a.CallStack[i], b.CallStack[i])
		}
	}
	if len(a.segs) != len(b.segs) {
		t.Fatalf("round %d pid %d: segment count %d != %d", round, a.ID, len(a.segs), len(b.segs))
	}
	for i, sg := range a.segs {
		// flatten, not sg.data: either side may be a CoW restore whose
		// segment lives behind a page table (data == nil).
		if sg.base != b.segs[i].base || sg.name != b.segs[i].name || !bytes.Equal(sg.flatten(), b.segs[i].flatten()) {
			t.Fatalf("round %d pid %d: segment %s diverged", round, a.ID, sg.name)
		}
	}
	if len(a.Images) != len(b.Images) {
		t.Fatalf("round %d pid %d: image count %d != %d", round, a.ID, len(a.Images), len(b.Images))
	}
	for i, im := range a.Images {
		bm := b.Images[i]
		if (im.CoverBits == nil) != (bm.CoverBits == nil) {
			t.Fatalf("round %d pid %d: coverage enabled on one engine only", round, a.ID)
		}
		for w := range im.CoverBits {
			if im.CoverBits[w] != bm.CoverBits[w] {
				t.Fatalf("round %d pid %d image %s: coverage word %d %#x (step) != %#x (block)",
					round, a.ID, im.File.Name, w, im.CoverBits[w], bm.CoverBits[w])
			}
		}
	}
}

func runLockstep(t *testing.T, tc lockstepCase) {
	t.Helper()
	var obsStep, obsBlock []hostObs
	mk := func(engine string, obs *[]hostObs) *System {
		opts := tc.opts
		opts.Engine = engine
		sys := NewSystem(opts)
		tc.build(t, sys, obs)
		return sys
	}
	a := mk(EngineStep, &obsStep)
	b := mk(EngineBlock, &obsBlock)

	rounds := tc.rounds
	if rounds == 0 {
		rounds = 20000
	}
	finished := false
	for round := 0; round < rounds; round++ {
		doneA := schedRound(a)
		doneB := schedRound(b)
		if a.TotalCycles != b.TotalCycles {
			t.Fatalf("round %d: TotalCycles %d (step) != %d (block)", round, a.TotalCycles, b.TotalCycles)
		}
		if len(a.procs) != len(b.procs) {
			t.Fatalf("round %d: process count %d != %d", round, len(a.procs), len(b.procs))
		}
		for i := range a.procs {
			compareProcs(t, round, a.procs[i], b.procs[i])
		}
		if doneA != doneB {
			t.Fatalf("round %d: step done=%v, block done=%v", round, doneA, doneB)
		}
		if doneA {
			finished = true
			break
		}
	}
	if !finished {
		t.Fatalf("guest still running after %d scheduler rounds", rounds)
	}
	if tc.wantExit != nil {
		if got := a.procs[0].Status; got != *tc.wantExit {
			t.Fatalf("final status = %+v, want %+v", got, *tc.wantExit)
		}
	}
	if len(obsStep) != len(obsBlock) {
		t.Fatalf("host-call boundaries: %d (step) != %d (block)", len(obsStep), len(obsBlock))
	}
	for i := range obsStep {
		if obsStep[i] != obsBlock[i] {
			t.Fatalf("host call %d: boundary observation diverged\n step:  %+v\n block: %+v",
				i, obsStep[i], obsBlock[i])
		}
	}
}

// installProbe registers the shared host function that snapshots the
// caller at every host-call boundary.
func installProbe(sys *System, obs *[]hostObs) {
	sys.RegisterHost("probe", func(hc *HostCall) int32 {
		*obs = append(*obs, hostObs{
			pid:    hc.Proc.ID,
			regs:   hc.Proc.Regs,
			sp:     hc.sp,
			cycles: hc.Proc.Cycles,
			total:  hc.Sys.TotalCycles,
			depth:  len(hc.Proc.CallStack),
		})
		hc.ChargeCycles(3) // interceptor-style virtual-time charge
		return int32(len(*obs))
	})
}

// corpusApp is a minic program touching every subsystem a sweep
// experiment exercises: compute loops, libc syscall wrappers (open/
// read/close/write), heap growth through malloc/brk, TLS errno access,
// byte and word loads/stores, and host-function calls.
const corpusApp = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern int write(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern int probe(int x);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  int i;
  int acc;
  byte buf[32];
  byte *p;
  acc = 0;
  for (i = 0; i < 300; i = i + 1) { acc = acc + i * 3 - (i / 7); }
  probe(acc);
  fd = open("/data", 0, 0);
  if (fd < 0) { return 2; }
  n = read(fd, buf, 31);
  if (n < 0) { n = 0; }
  close(fd);
  p = malloc(4096);
  if (p == 0) { return 7; }
  p[0] = 'x';
  p[4095] = 'y';
  probe(errno);
  write(1, buf, n);
  probe(n);
  return 5;
}
`

func buildCorpusApp(t testing.TB, sys *System, obs *[]hostObs) {
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	app, err := minic.Compile("app", corpusApp, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	sys.Register(lc)
	sys.Register(app)
	sys.Kernel().AddFile("/data", []byte("mode=differential\n"))
	installProbe(sys, obs)
	if _, err := sys.Spawn("app", SpawnConfig{}); err != nil {
		t.Fatal(err)
	}
}

// TestLockstepCorpusApp is the core differential: the corpus app under
// both engines, across time-slice widths that force superblocks to be
// split at every possible point (slice 1 = one instruction per slice),
// with and without coverage.
func TestLockstepCorpusApp(t *testing.T) {
	for _, slice := range []int{1, 3, 7, 4096} {
		for _, cov := range []bool{false, true} {
			name := fmt.Sprintf("slice%d/cov=%v", slice, cov)
			t.Run(name, func(t *testing.T) {
				rounds := 20000
				if slice == 1 {
					rounds = 400000
				}
				runLockstep(t, lockstepCase{
					opts:   Options{TimeSlice: slice, Coverage: cov, StackSize: 1 << 14, HeapLimit: 1 << 16},
					build:  buildCorpusApp,
					rounds: rounds,
				})
			})
		}
	}
}

// TestLockstepInterceptorChain exercises the LD_PRELOAD idiom the LFI
// controller generates — a preloaded interceptor that counts calls,
// probes the host boundary and tail-jumps to the real definition with
// OpDlNext — so the block engine's cross-image dispatch (exe text ->
// stub text -> library text) is covered at block granularity.
func TestLockstepInterceptorChain(t *testing.T) {
	lib := `
.lib libreal.so
.global f
.func f
  ; f(x) = x + 100, sets a global marker
  load r1, [sp+4]
  add r1, 100
  mov r0, r1
  ret
`
	stub := `
.lib stub.so
.needs libreal.so
.global f
.extern probe
.dataw count 0
.func f
  ; count++
  lea r1, count
  load r2, [r1+0]
  add r2, 1
  store [r1+0], r2
  push r2
  call probe
  pop r2
  ; tail-jump to the next definition of f
  dlnext r3, f
  jmpi r3
`
	exe := `
.exe main
.extern f
.global main
.func main
  mov r4, 0
  mov r5, 0
.loop:
  push r4
  call f
  pop r1
  add r5, r0
  add r4, 1
  cmp r4, 5
  jl .loop
  mov r0, r5
  ret
`
	for _, slice := range []int{1, 4096} {
		t.Run(fmt.Sprintf("slice%d", slice), func(t *testing.T) {
			runLockstep(t, lockstepCase{
				opts:     Options{TimeSlice: slice, StackSize: 1 << 13, Coverage: true},
				rounds:   200000,
				wantExit: &ExitStatus{Code: 510},
				build: func(t testing.TB, sys *System, obs *[]hostObs) {
					sys.Register(assembleSrc(t, lib))
					sys.Register(assembleSrc(t, stub))
					sys.Register(assembleSrc(t, exe))
					installProbe(sys, obs)
					if _, err := sys.Spawn("main", SpawnConfig{Preload: []string{"stub.so"}}); err != nil {
						t.Fatal(err)
					}
				},
			})
		})
	}
}

// TestLockstepMultiProcess drives the spawn/pipe/wait machinery: a
// parent spawning a child, blocked reads on an empty pipe, blocked
// waits, and round-robin interleaving between runnable processes.
func TestLockstepMultiProcess(t *testing.T) {
	kid := `
.exe kid
.global main
.dataw word 0x64636261
.func main
  ; write 4 bytes to fd 1 (inherited pipe end), then exit 33
  lea r2, word
  mov r0, 3
  mov r1, 1
  mov r3, 4
  syscall
  mov r0, 1
  mov r1, 33
  syscall
`
	parent := `
.exe parent
.global main
.datab prog "kid"
.data fds 8
.data buf 8
.data st 4
.func main
  ; pipe(fds)
  mov r0, 6
  lea r1, fds
  syscall
  ; spawn("kid", wfd -> kid fd1)
  mov r0, 8
  lea r1, prog
  mov r2, 0
  lea r3, fds
  load r3, [r3+4]
  syscall
  mov r4, r0
  ; read(rfd, buf, 4): may block until the kid writes
  mov r0, 2
  lea r1, fds
  load r1, [r1+0]
  lea r2, buf
  mov r3, 4
  syscall
  ; wait(pid, &st)
  mov r0, 9
  mov r1, r4
  lea r2, st
  syscall
  lea r1, st
  load r0, [r1+0]
  ret
`
	for _, slice := range []int{1, 2, 4096} {
		t.Run(fmt.Sprintf("slice%d", slice), func(t *testing.T) {
			runLockstep(t, lockstepCase{
				opts:     Options{TimeSlice: slice, StackSize: 1 << 13},
				rounds:   100000,
				wantExit: &ExitStatus{Code: 33},
				build: func(t testing.TB, sys *System, obs *[]hostObs) {
					sys.Register(assembleSrc(t, kid))
					sys.Register(assembleSrc(t, parent))
					if _, err := sys.Spawn("parent", SpawnConfig{}); err != nil {
						t.Fatal(err)
					}
				},
			})
		})
	}
}

// TestLockstepFaults pins the failure paths: both engines must kill the
// process on the same instruction with the same signal, cycle count and
// coverage, for every fault class the step engine distinguishes.
func TestLockstepFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"div-by-zero", `
.exe a
.global main
.func main
  mov r1, 7
  mov r2, 0
  div r1, r2
  ret
`},
		{"mod-by-zero", `
.exe a
.global main
.func main
  mov r1, 7
  mov r2, 0
  mod r1, r2
  ret
`},
		{"store-unmapped", `
.exe a
.global main
.func main
  mov r1, 0x200
  mov r2, 5
  store [r1+0], r2
  ret
`},
		{"load-unmapped", `
.exe a
.global main
.func main
  mov r1, 0x200
  load r2, [r1+0]
  ret
`},
		{"store-readonly-text", `
.exe a
.global main
.func main
  mov r1, 0x01000000
  mov r2, 5
  store [r1+0], r2
  ret
`},
		{"jmpi-unmapped", `
.exe a
.global main
.func main
  mov r1, 0x40
  jmpi r1
`},
		{"jmpi-misaligned", `
.exe a
.global main
.func main
  ; jump into the middle of an encoded instruction: execution continues
  ; with a skewed PC (floor-of-PC decode) until it walks into the halt —
  ; the block engine must delegate every misaligned step to the
  ; reference interpreter and stay in lockstep throughout.
  mov r1, 0x01000014
  jmpi r1
  nop
  nop
  nop
  nop
  halt
`},
		{"callr-host-range", `
.exe a
.global main
.func main
  mov r1, 0xF0001000
  callr r1
  ret
`},
		{"ret-corrupt-stack", `
.exe a
.global main
.func main
  mov sp, 0x80
  ret
`},
		{"stack-overflow-push", `
.exe a
.global main
.func main
  mov sp, 0x7F0FF000
.loop:
  push r1
  jmp .loop
`},
		{"dlnext-missing", `
.exe a
.global main
.func main
  dlnext r1, main
  jmpi r1
`},
		{"pop-into-sp", `
.exe a
.global main
.func main
  ; pop whose destination is SP itself: the popped value must win
  ; over the post-pop increment, on both engines (then the skewed
  ; stack faults the ret identically).
  push 0x7F0F0000
  pop sp
  push r1
  pop r2
  ret
`},
		{"push-sp", `
.exe a
.global main
.func main
  ; push of SP stores the already-decremented SP on both engines
  push sp
  pop r1
  mov r0, r1
  ret
`},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, slice := range []int{1, 4096} {
				runLockstep(t, lockstepCase{
					opts:   Options{TimeSlice: slice, StackSize: 1 << 13, Coverage: true},
					rounds: 3_000_000,
					build: func(t testing.TB, sys *System, obs *[]hostObs) {
						sys.Register(assembleSrc(t, tc.src))
						if _, err := sys.Spawn("a", SpawnConfig{}); err != nil {
							t.Fatal(err)
						}
					},
				})
			}
		})
	}
}

// TestDlNextNegativeImmFaults pins the crafted-object hardening: the
// assembler never emits a negative dlnext import index, but obj.Decode
// accepts one from disk, and it must fault the guest with SIGSEGV on
// both engines — not panic the host with an index-out-of-range.
func TestDlNextNegativeImmFaults(t *testing.T) {
	var text []byte
	for _, in := range []isa.Inst{
		{Op: isa.OpDlNext, A: isa.R1, Imm: -1},
		{Op: isa.OpRet},
	} {
		text = append(text, in.EncodeBytes()...)
	}
	crafted := &obj.File{
		Name: "crafted",
		Kind: obj.Executable,
		Text: text,
		Symbols: []obj.Symbol{
			{Name: "main", Kind: obj.SymFunc, Off: 0, Size: int32(len(text)), Exported: true},
		},
	}
	for _, engine := range []string{EngineStep, EngineBlock} {
		t.Run(engine, func(t *testing.T) {
			sys := NewSystem(Options{Engine: engine, StackSize: 1 << 13})
			sys.Register(crafted)
			p, err := sys.Spawn("crafted", SpawnConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(1000); err != nil {
				t.Fatal(err)
			}
			if p.Status.Signal != SigSEGV {
				t.Errorf("status = %+v, want SIGSEGV", p.Status)
			}
		})
	}
}

// TestLockstepBudgetAndErrors pins the scheduler verdicts: both engines
// must return the same error (ErrBudget / ErrDeadlock / ErrIdle / nil)
// at the same TotalCycles.
func TestLockstepBudgetAndErrors(t *testing.T) {
	spin := `
.exe a
.global main
.func main
.loop:
  add r1, 1
  add r2, r1
  cmp r1, 0
  jne .loop
  ret
`
	blockRead := `
.exe a
.global main
.data fds 8
.func main
  mov r0, 6
  lea r1, fds
  syscall
  mov r0, 2
  lea r1, fds
  load r1, [r1+0]
  lea r2, fds
  mov r3, 4
  syscall
  ret
`
	run := func(t *testing.T, src string, f func(*System) error) (uint64, uint64, error, error) {
		t.Helper()
		mk := func(engine string) *System {
			sys := NewSystem(Options{Engine: engine, StackSize: 1 << 13})
			sys.Register(assembleSrc(t, src))
			if _, err := sys.Spawn("a", SpawnConfig{}); err != nil {
				t.Fatal(err)
			}
			return sys
		}
		a, b := mk(EngineStep), mk(EngineBlock)
		errA, errB := f(a), f(b)
		return a.TotalCycles, b.TotalCycles, errA, errB
	}

	ca, cb, ea, eb := run(t, spin, func(s *System) error { return s.Run(100_000) })
	if ea != ErrBudget || eb != ErrBudget || ca != cb {
		t.Errorf("budget: step (%v, %d) vs block (%v, %d), want ErrBudget at equal cycles", ea, ca, eb, cb)
	}
	ca, cb, ea, eb = run(t, blockRead, func(s *System) error { return s.Run(1_000_000) })
	if ea != ErrDeadlock || eb != ErrDeadlock || ca != cb {
		t.Errorf("deadlock: step (%v, %d) vs block (%v, %d), want ErrDeadlock at equal cycles", ea, ca, eb, cb)
	}
	ca, cb, ea, eb = run(t, blockRead, func(s *System) error { return s.RunUntil(nil, 1_000_000) })
	if ea != ErrIdle || eb != ErrIdle || ca != cb {
		t.Errorf("idle: step (%v, %d) vs block (%v, %d), want ErrIdle at equal cycles", ea, ca, eb, cb)
	}
}

// TestLockstepChainedLoops is the dedicated differential for superblock
// chaining: a guest that is almost nothing but chainable control flow —
// hot backward branches (nested loops), alternating taken/not-taken
// forward conditionals, unconditional forward jumps, and one cross-image
// call that must break the chain — lockstepped across slice widths that
// split chains at every possible point (slice 1 = one instruction per
// dispatch, so chaining never fires; 4096 = whole loop nests chained
// inside a single execBlock call).
func TestLockstepChainedLoops(t *testing.T) {
	lib := `
.lib libg.so
.global g
.func g
  load r1, [sp+4]
  add r1, r1
  add r1, 5
  mov r0, r1
  ret
`
	exe := `
.exe chained
.needs libg.so
.extern g
.global main
.func main
  mov r5, 0
  mov r1, 0
.outer:
  mov r2, 0
.inner:
  add r5, r2
  add r2, 1
  cmp r2, 7
  jl .inner
  add r1, 1
  cmp r1, 50
  jl .outer
  mov r3, 0
.fwd:
  cmp r3, 0
  jne .odd
  add r5, 11
  jmp .join
.odd:
  add r5, 3
.join:
  add r3, 1
  cmp r3, 40
  jl .fwd
  push r5
  call g
  pop r1
  ret
`
	// inner sums 0..6 per outer pass (21*50), the forward chain adds
	// 11 + 39*3, and g doubles-plus-5: (1050+128)*2+5.
	want := ExitStatus{Code: 2361}
	for _, slice := range []int{1, 2, 3, 5, 17, 4096} {
		for _, cov := range []bool{false, true} {
			t.Run(fmt.Sprintf("slice%d/cov=%v", slice, cov), func(t *testing.T) {
				runLockstep(t, lockstepCase{
					opts:     Options{TimeSlice: slice, Coverage: cov, StackSize: 1 << 13},
					rounds:   400000,
					wantExit: &want,
					build: func(t testing.TB, sys *System, obs *[]hostObs) {
						sys.Register(assembleSrc(t, lib))
						sys.Register(assembleSrc(t, exe))
						installProbe(sys, obs)
						if _, err := sys.Spawn("chained", SpawnConfig{}); err != nil {
							t.Fatal(err)
						}
					},
				})
			})
		}
	}
}

// TestLockstepSnapshotRestore runs the differential over the fork-server
// path: snapshot the corpus app post-spawn, then lockstep a restored
// system per engine. Restored images share the template's compiled block
// cache (including the chain table) and restored segments are CoW
// overlays of the template's pages, so this also proves both kinds of
// sharing introduce no cross-run state — at every slice width.
func TestLockstepSnapshotRestore(t *testing.T) {
	for _, slice := range []int{1, 7, 4096} {
		t.Run(fmt.Sprintf("slice%d", slice), func(t *testing.T) {
			var obsStep, obsBlock []hostObs
			mk := func(engine string, obs *[]hostObs) *System {
				sys := NewSystem(Options{Engine: engine, TimeSlice: slice, StackSize: 1 << 14, HeapLimit: 1 << 16, Coverage: true})
				buildCorpusApp(t, sys, obs)
				snap, err := sys.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				restored := snap.Restore()
				// The restored system shares host-function slots with the
				// template; rebind the probe to this run's log, as the
				// controller rebinds its evaluator per experiment.
				installProbe(restored, obs)
				return restored
			}
			a := mk(EngineStep, &obsStep)
			b := mk(EngineBlock, &obsBlock)
			for _, im := range b.procs[0].Images {
				if im.exec == nil {
					t.Fatalf("restored image %s lost its compiled block cache", im.File.Name)
				}
			}
			rounds := 20000
			if slice == 1 {
				rounds = 400000
			}
			for round := 0; round < rounds; round++ {
				doneA := schedRound(a)
				doneB := schedRound(b)
				if a.TotalCycles != b.TotalCycles {
					t.Fatalf("round %d: TotalCycles %d != %d", round, a.TotalCycles, b.TotalCycles)
				}
				for i := range a.procs {
					compareProcs(t, round, a.procs[i], b.procs[i])
				}
				if doneA != doneB {
					t.Fatalf("round %d: done %v vs %v", round, doneA, doneB)
				}
				if doneA {
					if len(obsStep) == 0 || len(obsStep) != len(obsBlock) {
						t.Fatalf("host observations: %d vs %d", len(obsStep), len(obsBlock))
					}
					return
				}
			}
			t.Fatal("restored guest did not finish")
		})
	}
}
