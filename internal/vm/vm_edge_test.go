package vm_test

import (
	"testing"

	"lfi/internal/kernel"
	"lfi/internal/vm"
)

func TestDlNextWithoutNextDefinitionSegfaults(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  dlnext r1, main
  jmpi r1
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Signal != vm.SigSEGV {
		t.Errorf("status = %+v, want SIGSEGV (no next definition of main)", p.Status)
	}
}

func TestWaitForSpecificChild(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe kid
.global main
.func main
  mov r0, 1
  mov r1, 33
  syscall
`))
	sys.Register(assemble(t, `
.exe parent
.global main
.datab prog "kid"
.data st 4
.func main
  ; pid = spawn("kid", 0, 0)
  mov r0, 8
  lea r1, prog
  mov r2, 0
  mov r3, 0
  syscall
  mov r4, r0
  ; wait(pid, &st)
  mov r0, 9
  mov r1, r4
  lea r2, st
  syscall
  ; returned pid must equal spawned pid
  cmp r0, r4
  jne .bad
  lea r1, st
  load r0, [r1+0]
  ret
.bad:
  mov r0, -1
  ret
`))
	p := runExe(t, sys, "parent", vm.SpawnConfig{})
	if p.Status.Code != 33 {
		t.Errorf("collected status = %d, want 33", p.Status.Code)
	}
}

func TestWaitWithNoChildrenReturnsECHILD(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  mov r0, 9
  mov r1, -1
  mov r2, 0
  syscall
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != -kernel.ECHILD {
		t.Errorf("wait() = %d, want -ECHILD", p.Status.Code)
	}
}

func TestSignalDeathReportedToParent(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe kid
.global main
.func main
  mov r1, 7
  load r0, [r1+0]
  ret
`))
	sys.Register(assemble(t, `
.exe parent
.global main
.datab prog "kid"
.data st 4
.func main
  mov r0, 8
  lea r1, prog
  mov r2, 0
  mov r3, 0
  syscall
  mov r0, 9
  mov r1, -1
  lea r2, st
  syscall
  lea r1, st
  load r0, [r1+0]
  ret
`))
	p := runExe(t, sys, "parent", vm.SpawnConfig{})
	// Shell convention: 128 + SIGSEGV(11) = 139.
	if p.Status.Code != 128+vm.SigSEGV {
		t.Errorf("wstatus = %d, want %d", p.Status.Code, 128+vm.SigSEGV)
	}
}

func TestSpawnUnknownProgram(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.datab prog "ghost"
.func main
  mov r0, 8
  lea r1, prog
  mov r2, 0
  mov r3, 0
  syscall
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != -kernel.ENOENT {
		t.Errorf("spawn ghost = %d, want -ENOENT", p.Status.Code)
	}
}

func TestUnknownSyscallReturnsENOSYS(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.func main
  mov r0, 999
  syscall
  ret
`))
	p := runExe(t, sys, "a", vm.SpawnConfig{})
	if p.Status.Code != -kernel.ENOSYS {
		t.Errorf("syscall 999 = %d, want -ENOSYS", p.Status.Code)
	}
}

func TestImageSymbolAndNameLookups(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.global helper
.global g
.dataw g 5
.func main
  call helper
  ret
.func helper
  mov r0, 3
  ret
`))
	p, err := sys.Spawn("a", vm.SpawnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	im, ok := p.ImageByName("a")
	if !ok {
		t.Fatal("image missing")
	}
	mainVA, ok := im.SymbolVA("main")
	if !ok {
		t.Fatal("main VA missing")
	}
	if name := im.FuncNameAt(mainVA); name != "main" {
		t.Errorf("FuncNameAt(main) = %q", name)
	}
	helperVA, _ := im.SymbolVA("helper")
	if name := im.FuncNameAt(helperVA + 8); name != "helper" {
		t.Errorf("FuncNameAt(helper+8) = %q", name)
	}
	if _, ok := p.ImageByName("ghost"); ok {
		t.Error("ghost image should not resolve")
	}
	if _, ok := im.SymbolVA("g"); !ok {
		t.Error("exported data symbol should resolve")
	}
}

func TestReadCStringBounds(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, `
.exe a
.global main
.datab msg "hello"
.func main
  ret
`))
	p, err := sys.Spawn("a", vm.SpawnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	im, _ := p.ImageByName("a")
	va, _ := im.SymbolVA("msg")
	_ = va
	// Read through exported data: find msg's VA via the data segment.
	s, err := p.ReadCString(im.DataBase)
	if err != nil || s != "hello" {
		t.Errorf("ReadCString = %q, %v", s, err)
	}
	if _, err := p.ReadCString(0xDEAD0000); err == nil {
		t.Error("unmapped string read should fail")
	}
}

func TestProcsSnapshot(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	sys.Register(assemble(t, ".exe a\n.global main\n.func main\n  ret\n"))
	if len(sys.Procs()) != 0 {
		t.Error("no procs expected before spawn")
	}
	if _, err := sys.Spawn("a", vm.SpawnConfig{}); err != nil {
		t.Fatal(err)
	}
	if len(sys.Procs()) != 1 {
		t.Error("one proc expected")
	}
}
