package mandoc

import (
	"strings"
	"testing"
)

func samplePage() *Page {
	return &Page{
		Library:  "libxml2.so",
		Function: "xml_parse",
		Synopsis: "int xml_parse(int handle, int flags)",
		Retvals:  []int32{-1, 0},
		Errnos:   []string{"EBADF", "EINVAL"},
		Prose:    "parse a document",
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	p := samplePage()
	text := p.Render()
	q, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if q.Function != "xml_parse" || q.Library != "libxml2.so" {
		t.Errorf("identity = %q / %q", q.Function, q.Library)
	}
	if len(q.Retvals) != 2 || q.Retvals[0] != -1 || q.Retvals[1] != 0 {
		t.Errorf("retvals = %v", q.Retvals)
	}
	if len(q.Errnos) != 2 || q.Errnos[0] != "EBADF" {
		t.Errorf("errnos = %v", q.Errnos)
	}
	if q.Synopsis != p.Synopsis {
		t.Errorf("synopsis = %q", q.Synopsis)
	}
}

func TestReturnTypeExtraction(t *testing.T) {
	cases := map[string]string{
		"int f(int a)":   "int",
		"void g(int a)":  "void",
		"byte *h(int a)": "byte*",
		"int *p(void)":   "int*",
		"":               "",
	}
	for syn, want := range cases {
		p := &Page{Synopsis: syn}
		if got := p.ReturnType(); got != want {
			t.Errorf("ReturnType(%q) = %q, want %q", syn, got, want)
		}
	}
}

func TestVoidPageHasNoRetvals(t *testing.T) {
	p := &Page{Library: "l", Function: "f", Synopsis: "void f(int a)"}
	q, err := Parse(p.Render())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Retvals) != 0 || len(q.Errnos) != 0 {
		t.Errorf("void page parsed retvals=%v errnos=%v", q.Retvals, q.Errnos)
	}
}

func TestSetRoundTrip(t *testing.T) {
	s := NewSet("libxml2.so")
	s.Add(samplePage())
	s.Add(&Page{Library: "libxml2.so", Function: "xml_free", Synopsis: "void xml_free(byte *p)"})
	text := s.Render()
	back, err := ParseSet("libxml2.so", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pages) != 2 {
		t.Fatalf("pages = %d", len(back.Pages))
	}
	if _, ok := back.Pages["xml_parse"]; !ok {
		t.Error("xml_parse lost")
	}
	if _, ok := back.Pages["xml_free"]; !ok {
		t.Error("xml_free lost")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("no roff here"); err == nil {
		t.Error("pageless text should fail")
	}
	if _, err := Parse(".TH ???"); err == nil {
		t.Error("bad .TH should fail")
	}
}

func TestRenderStable(t *testing.T) {
	s := NewSet("l")
	s.Add(&Page{Library: "l", Function: "b", Synopsis: "int b(void)"})
	s.Add(&Page{Library: "l", Function: "a", Synopsis: "int a(void)"})
	r1 := s.Render()
	r2 := s.Render()
	if r1 != r2 {
		t.Error("render not deterministic")
	}
	if strings.Index(r1, "\"l\"") < 0 {
		t.Error("library attribution missing")
	}
	// Alphabetical page order.
	if strings.Index(r1, ".TH A ") > strings.Index(r1, ".TH B ") {
		t.Error("pages not sorted")
	}
}
