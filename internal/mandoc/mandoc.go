// Package mandoc implements the man-page-like documentation format used
// as evaluation ground truth.
//
// §6.3 of the LFI paper measures profiler accuracy against library
// documentation ("we wrote documentation parsers for each of the measured
// libraries... While this evaluation is inexact, it is the only practical
// method of comparison"). This package provides both halves: a writer the
// corpus generator uses to emit per-function pages, and the parser the
// Table 2 experiment uses to extract documented error return values and
// errno codes.
//
// The format is a small roff-like subset:
//
//	.TH XML_PARSE 3 "libxml2"
//	.SH SYNOPSIS
//	int xml_parse(int handle, int flags);
//	.SH RETURN VALUE
//	On error, -1 is returned. On success, 0 is returned.
//	.SH ERRORS
//	.B EBADF
//	The handle is not valid.
//
// Like real man pages, the prose can be incomplete or wrong; the corpus
// generator injects exactly the kinds of discrepancies the paper found
// (modify_ldt's undocumented ENOMEM, htmlParseDocument's undocumented 1).
package mandoc

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Page is one function's man page.
type Page struct {
	Library  string
	Function string
	Synopsis string // C prototype
	// Retvals are the documented error return values.
	Retvals []int32
	// Errnos are the documented errno names.
	Errnos []string
	// Prose is free-text description (not machine-meaningful).
	Prose string
}

// Render emits the page in the roff-like format.
func (p *Page) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".TH %s 3 \"%s\"\n", strings.ToUpper(p.Function), p.Library)
	b.WriteString(".SH NAME\n")
	fmt.Fprintf(&b, "%s \\- %s\n", p.Function, firstLine(p.Prose))
	b.WriteString(".SH SYNOPSIS\n")
	fmt.Fprintf(&b, "%s;\n", p.Synopsis)
	b.WriteString(".SH RETURN VALUE\n")
	if len(p.Retvals) == 0 {
		b.WriteString("No return value.\n")
	} else {
		for _, v := range p.Retvals {
			fmt.Fprintf(&b, "On error, %d is returned.\n", v)
		}
	}
	if len(p.Errnos) > 0 {
		b.WriteString(".SH ERRORS\n")
		for _, e := range p.Errnos {
			fmt.Fprintf(&b, ".B %s\n", e)
			b.WriteString("See above.\n")
		}
	}
	return b.String()
}

var (
	reTH     = regexp.MustCompile(`^\.TH\s+(\S+)\s+\d+\s+"([^"]*)"`)
	reRetval = regexp.MustCompile(`On error, (-?\d+) is returned`)
	reErrno  = regexp.MustCompile(`^\.B\s+([A-Z][A-Z0-9]+)\s*$`)
)

// Parse extracts the machine-readable content from a rendered page.
func Parse(text string) (*Page, error) {
	p := &Page{}
	section := ""
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, ".TH"):
			m := reTH.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("mandoc: bad .TH line %q", line)
			}
			p.Function = strings.ToLower(m[1])
			p.Library = m[2]
		case strings.HasPrefix(line, ".SH"):
			section = strings.TrimSpace(strings.TrimPrefix(line, ".SH"))
		case section == "SYNOPSIS" && strings.TrimSpace(line) != "":
			if p.Synopsis == "" {
				p.Synopsis = strings.TrimSuffix(strings.TrimSpace(line), ";")
			}
		case section == "NAME":
			if i := strings.Index(line, "\\- "); i >= 0 && p.Function == "" {
				p.Function = strings.TrimSpace(line[:i])
			}
		case section == "RETURN VALUE":
			for _, m := range reRetval.FindAllStringSubmatch(line, -1) {
				v, err := strconv.ParseInt(m[1], 10, 32)
				if err == nil {
					p.Retvals = append(p.Retvals, int32(v))
				}
			}
		case section == "ERRORS":
			if m := reErrno.FindStringSubmatch(line); m != nil {
				p.Errnos = append(p.Errnos, m[1])
			}
		}
	}
	if p.Function == "" {
		return nil, fmt.Errorf("mandoc: page has no function name")
	}
	return p, nil
}

// ReturnType extracts the return type from the synopsis ("int", "void",
// "int*", "byte*") — the header-analysis half of the paper's Table 1
// methodology (ELSA on development headers).
func (p *Page) ReturnType() string {
	s := strings.TrimSpace(p.Synopsis)
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return ""
	}
	typ := s[:i]
	rest := strings.TrimSpace(s[i:])
	if strings.HasPrefix(rest, "*") {
		typ += "*"
	}
	return typ
}

// Set is a library's documentation: one page per function.
type Set struct {
	Library string
	Pages   map[string]*Page
}

// NewSet creates an empty documentation set.
func NewSet(library string) *Set {
	return &Set{Library: library, Pages: make(map[string]*Page)}
}

// Add installs a page.
func (s *Set) Add(p *Page) { s.Pages[p.Function] = p }

// Render emits all pages concatenated (as a doc bundle file).
func (s *Set) Render() string {
	var names []string
	for n := range s.Pages {
		names = append(names, n)
	}
	sortStrings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(s.Pages[n].Render())
		b.WriteString(".\\\" ----\n")
	}
	return b.String()
}

// ParseSet splits a doc bundle back into pages.
func ParseSet(library, text string) (*Set, error) {
	s := NewSet(library)
	for _, chunk := range strings.Split(text, ".\\\" ----\n") {
		if strings.TrimSpace(chunk) == "" {
			continue
		}
		p, err := Parse(chunk)
		if err != nil {
			return nil, err
		}
		s.Add(p)
	}
	return s, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	if s == "" {
		return "library routine"
	}
	return s
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
