package audit_test

import (
	"fmt"
	"testing"

	"lfi/internal/audit"
	"lfi/internal/corpus"
	"lfi/internal/obj"
)

// FuzzAudit audits generated MiniC guests: for any corpus seed the
// classification must not panic, must be deterministic, and must assign
// every discovered call site exactly one valid class.
func FuzzAudit(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 20090629} {
		f.Add(seed, 6)
	}
	f.Fuzz(func(t *testing.T, seed int64, nfuncs int) {
		if nfuncs < 1 || nfuncs > 24 {
			t.Skip("function count out of the generator's useful range")
		}
		lib, err := corpus.Generate(corpus.Traits{
			Name: "fuzzed.so", Seed: seed, NumFuncs: nfuncs,
		})
		if err != nil {
			t.Skip("generator rejected the traits")
		}
		var targets []string
		for _, sym := range lib.Object.Funcs() {
			targets = append(targets, sym.Name)
		}
		res, err := audit.Analyze([]*obj.File{lib.Object}, targets, audit.Options{})
		if err != nil {
			t.Fatalf("audit: %v", err)
		}
		valid := map[audit.Class]bool{
			audit.ClassChecked: true, audit.ClassStored: true,
			audit.ClassPropagated: true, audit.ClassClobbered: true,
		}
		seen := make(map[string]bool, len(res.Sites))
		for _, s := range res.Sites {
			if !valid[s.Class] {
				t.Errorf("site %s has invalid class %q", s, s.Class)
			}
			key := fmt.Sprintf("%s@%d", s.Module, s.Off)
			if seen[key] {
				t.Errorf("call site %s classified more than once", key)
			}
			seen[key] = true
		}
		again, err := audit.Analyze([]*obj.File{lib.Object}, targets, audit.Options{})
		if err != nil {
			t.Fatalf("audit (2nd run): %v", err)
		}
		if res.Render() != again.Render() {
			t.Error("audit of the same binary is not deterministic")
		}
	})
}
