package audit_test

import (
	"strings"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/audit"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
)

// auditSrc assembles one module and audits its call sites into the
// named target functions.
func auditSrc(t *testing.T, src string, targets []string, opts audit.Options) *audit.Result {
	t.Helper()
	f, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	res, err := audit.Analyze([]*obj.File{f}, targets, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// classOf returns the class of the single expected site.
func classOf(t *testing.T, res *audit.Result) audit.Class {
	t.Helper()
	if len(res.Sites) != 1 {
		t.Fatalf("sites = %+v, want exactly 1", res.Sites)
	}
	return res.Sites[0].Class
}

func TestCheckedDirectCompare(t *testing.T) {
	res := auditSrc(t, `
.lib x
.extern dep
.global f
.func f
  call dep
  cmp r0, 0
  jge .ok
  mov r0, -1
  ret
.ok:
  mov r0, 0
  ret
`, []string{"dep"}, audit.Options{})
	if c := classOf(t, res); c != audit.ClassChecked {
		t.Errorf("class = %s, want checked", c)
	}
}

func TestCheckedDerivedValue(t *testing.T) {
	// The compare reads r1 = r0 + 1, a value derived from the return.
	res := auditSrc(t, `
.lib x
.extern dep
.global f
.func f
  call dep
  mov r1, r0
  add r1, 1
  cmp r1, 9
  jge .ok
  mov r0, -1
  ret
.ok:
  mov r0, 0
  ret
`, []string{"dep"}, audit.Options{})
	if c := classOf(t, res); c != audit.ClassChecked {
		t.Errorf("class = %s, want checked", c)
	}
}

func TestUncheckedClobbered(t *testing.T) {
	res := auditSrc(t, `
.lib x
.extern dep
.global f
.func f
  call dep
  mov r0, 0
  ret
`, []string{"dep"}, audit.Options{})
	if c := classOf(t, res); c != audit.ClassClobbered {
		t.Errorf("class = %s, want unchecked-clobbered", c)
	}
	if len(res.Unchecked()) != 1 {
		t.Errorf("Unchecked() = %+v, want the clobbered site", res.Unchecked())
	}
}

func TestUncheckedPropagated(t *testing.T) {
	res := auditSrc(t, `
.lib x
.extern dep
.global f
.func f
  call dep
  ret
`, []string{"dep"}, audit.Options{})
	if c := classOf(t, res); c != audit.ClassPropagated {
		t.Errorf("class = %s, want unchecked-propagated", c)
	}
}

func TestStoredToGlobal(t *testing.T) {
	res := auditSrc(t, `
.lib x
.extern dep
.global f
.data g 4
.func f
  call dep
  lea r1, g
  store [r1+0], r0
  mov r0, 0
  ret
`, []string{"dep"}, audit.Options{})
	if c := classOf(t, res); c != audit.ClassStored {
		t.Errorf("class = %s, want stored", c)
	}
}

func TestStoredAsArgument(t *testing.T) {
	// The return value is passed to another call without a compare.
	res := auditSrc(t, `
.lib x
.extern dep
.extern log
.global f
.func f
  call dep
  push r0
  call log
  add sp, 4
  mov r0, 0
  ret
`, []string{"dep"}, audit.Options{})
	if c := classOf(t, res); c != audit.ClassStored {
		t.Errorf("class = %s, want stored", c)
	}
}

func TestSpillReloadChecked(t *testing.T) {
	// The MiniC idiom: the result round-trips a frame slot before the
	// compare. The tracked spill must revive the taint.
	res := auditSrc(t, `
.lib x
.extern dep
.global f
.func f
  push bp
  mov bp, sp
  sub sp, 4
  call dep
  store [bp-4], r0
  mov r0, 0
  load r1, [bp-4]
  cmp r1, 0
  jge .ok
  mov r0, -1
.ok:
  mov sp, bp
  pop bp
  ret
`, []string{"dep"}, audit.Options{})
	if c := classOf(t, res); c != audit.ClassChecked {
		t.Errorf("class = %s, want checked (spill tracked through reload)", c)
	}
}

func TestCheckedOnOnePathWins(t *testing.T) {
	// One successor path checks, another clobbers: the programmer did
	// check somewhere, so the site is checked.
	res := auditSrc(t, `
.lib x
.extern dep
.extern cond
.global f
.func f
  push bp
  mov bp, sp
  sub sp, 4
  call dep
  store [bp-4], r0
  call cond
  cmp r1, 0
  je .skip
  load r2, [bp-4]
  cmp r2, 0
.skip:
  mov r0, 0
  mov sp, bp
  pop bp
  ret
`, []string{"dep"}, audit.Options{})
	if c := classOf(t, res); c != audit.ClassChecked {
		t.Errorf("class = %s, want checked", c)
	}
}

func TestBudgetExhaustionReported(t *testing.T) {
	// The taint survives in a frame slot across a diamond the walk must
	// explore; MaxStates=1 exhausts before reaching the final compare.
	res := auditSrc(t, `
.lib x
.extern dep
.global f
.func f
  push bp
  mov bp, sp
  sub sp, 4
  call dep
  store [bp-4], r0
  mov r0, 0
  cmp r1, 0
  je .a
  mov r2, 1
.a:
  load r0, [bp-4]
  cmp r0, 0
  mov sp, bp
  pop bp
  ret
`, []string{"dep"}, audit.Options{MaxStates: 1})
	if len(res.Sites) != 1 {
		t.Fatalf("sites = %+v", res.Sites)
	}
	if !res.Sites[0].Exhausted {
		t.Error("budget exhaustion not reported on the site")
	}
	if res.Exhausted() != 1 {
		t.Errorf("Exhausted() = %d, want 1", res.Exhausted())
	}
	if !strings.Contains(res.Render(), "analysis budget exhausted") {
		t.Error("Render() does not surface the exhaustion")
	}
}

// TestMiniCCallers audits compiled MiniC code end to end: the codegen's
// boolean-materialisation pattern (cmp; mov r0,1; jcc; mov r0,0)
// clobbers the compared register before the branch, so the audit must
// key on the compare, not the branch.
func TestMiniCCallers(t *testing.T) {
	src := `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int write(int fd, byte *buf, int n);
extern byte *malloc(int n);
int main(void) {
  int fd;
  byte *p;
  fd = open("/f", 65, 0);
  if (fd < 0) { return 3; }
  p = malloc(8);
  p[0] = 'x';
  write(fd, "x", 1);
  close(fd);
  return 0;
}
`
	exe, err := minic.Compile("guest", src, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	res, err := audit.Analyze([]*obj.File{exe},
		[]string{"open", "close", "write", "malloc"}, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	classes := res.Classes()
	if classes["open"] != string(audit.ClassChecked) {
		t.Errorf("open class = %q, want checked", classes["open"])
	}
	// malloc's return is dereferenced but never compared; write's and
	// close's returns are dropped outright. All three are unchecked.
	for _, fn := range []string{"malloc", "write", "close"} {
		if !audit.Class(classes[fn]).Unchecked() {
			t.Errorf("%s class = %q, want unchecked", fn, classes[fn])
		}
	}
}

// TestLibcSelfAudit runs the audit over the synthetic libc itself: every
// wrapper checks its syscall result, and the audit must terminate and
// classify deterministically.
func TestLibcSelfAudit(t *testing.T) {
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	targets := []string{"write", "strlen"}
	res1, err := audit.Analyze([]*obj.File{lc}, targets, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// puts_fd calls write(fd, s, strlen(s)) and returns its result
	// unexamined: propagated.
	var found bool
	for _, s := range res1.Sites {
		if s.Caller == "puts_fd" && s.Target == "write" {
			found = true
			if s.Class != audit.ClassPropagated {
				t.Errorf("puts_fd->write class = %s, want unchecked-propagated", s.Class)
			}
		}
	}
	if !found {
		t.Fatalf("no puts_fd->write site found: %+v", res1.Sites)
	}
	res2, err := audit.Analyze([]*obj.File{lc}, targets, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Render() != res2.Render() {
		t.Error("audit is not deterministic across runs")
	}
}

func TestRankOrdering(t *testing.T) {
	if !(audit.Rank(string(audit.ClassClobbered)) < audit.Rank(string(audit.ClassPropagated)) &&
		audit.Rank(string(audit.ClassPropagated)) < audit.Rank(string(audit.ClassStored)) &&
		audit.Rank(string(audit.ClassStored)) < audit.Rank("") &&
		audit.Rank("") < audit.Rank(string(audit.ClassChecked))) {
		t.Error("Rank ordering violated: want clobbered < propagated < stored < unknown < checked")
	}
}
