// Package audit implements the caller-side error-handling audit: a
// forward dataflow pass over guest binaries that classifies, for every
// call site targeting a profiled/intercepted function, what the caller
// does with the returned value.
//
// The profiler (internal/profiler) points the disasm/cfg/dataflow
// machinery at *callees* to learn what errors a library function can
// return; this package points the same machinery at *callers* to learn
// whether those errors would even be looked at. The paper's headline
// §6.1 case study — Pidgin losing data because a library error return
// was ignored — is exactly the pattern this pass finds statically,
// before any experiment runs.
//
// For each call site the return register (R0) is tainted and the taint
// is tracked forward through the caller's CFG: copies, arithmetic
// derivations and push/pop round-trips keep it, frame spills are
// tracked through reloads, and the walk is bounded by a per-site state
// budget whose exhaustion is always reported, never silent. The site's
// class is the strongest claim any explored path supports:
//
//   - checked: a compare reads the return value or a value derived
//     from it (in SIA-32 codegen every `if (x < 0)` materialises as a
//     cmp on the tainted register before the conditional branch);
//   - stored: the value escapes the trackable state — stored to a
//     global or through a pointer, or consumed as an argument of a
//     later call — so its fate is outside this function;
//   - unchecked-propagated: the caller returns the value to its own
//     caller without examining it;
//   - unchecked-clobbered: every path overwrites or abandons the value
//     before any compare — the return is definitively ignored.
//
// The two unchecked classes are the campaign scheduler's static prior:
// faultloads targeting functions with unchecked call sites are the ones
// most likely to crash rather than be handled, so `lfi sweep
// -order=static` runs them first.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/cfg"
	"lfi/internal/disasm"
	"lfi/internal/isa"
	"lfi/internal/obj"
)

// Class is the audit classification of one call site.
type Class string

// Call-site classes, ordered from most to least fragile (see Rank).
const (
	ClassClobbered  Class = "unchecked-clobbered"
	ClassPropagated Class = "unchecked-propagated"
	ClassStored     Class = "stored"
	ClassChecked    Class = "checked"
)

// Unchecked reports whether the class asserts the return value is never
// examined in the caller — the lint-failing, run-first classes.
func (c Class) Unchecked() bool {
	return c == ClassClobbered || c == ClassPropagated
}

// Rank orders classes by fragility: lower ranks are more likely to turn
// an injected error into an unhandled failure. Unknown strings rank
// between stored and checked (no static evidence either way).
func Rank(class string) int {
	switch Class(class) {
	case ClassClobbered:
		return 0
	case ClassPropagated:
		return 1
	case ClassStored:
		return 2
	case ClassChecked:
		return 4
	}
	return 3
}

// Site is one audited call site.
type Site struct {
	// Module is the binary containing the call, Caller the enclosing
	// function symbol, Off the text offset of the call instruction.
	Module string
	Caller string
	Off    int32
	// Target is the profiled function the call resolves to.
	Target string
	Class  Class
	// Exhausted marks sites whose forward walk hit the state budget;
	// the class then reflects only the explored prefix of paths.
	Exhausted bool
}

// String renders the site as one deterministic report line.
func (s Site) String() string {
	line := fmt.Sprintf("%#06x %s -> %s: %s", s.Off, s.Caller, s.Target, s.Class)
	if s.Exhausted {
		line += " (budget exhausted)"
	}
	return line
}

// Options tunes the audit.
type Options struct {
	// MaxStates bounds the forward walk per call site; zero means
	// DefaultMaxStates. Exhaustion is reported on the Site, never
	// swallowed.
	MaxStates int
}

// DefaultMaxStates bounds the per-site forward state expansion, mirroring
// the profiler's product-graph budget.
const DefaultMaxStates = 4096

// Result is the audit of a set of binaries.
type Result struct {
	// Sites are the classified call sites, sorted by (module, offset) —
	// deterministic for any input order of identical binaries.
	Sites []Site
	// Targets is the sorted profiled-function set the audit looked for.
	Targets []string
	// Incomplete lists functions whose CFG could not be built
	// ("module.fn: error"); their call sites are not audited.
	Incomplete []string
}

// Analyze audits every function of the given binaries for call sites
// targeting one of the named functions. Call targets resolve like the
// interposition layer sees them: direct local calls by symbol, import
// calls by imported name; register-indirect calls are unresolvable and
// skipped (the CFG marks them incomplete).
func Analyze(files []*obj.File, targets []string, opts Options) (*Result, error) {
	max := opts.MaxStates
	if max <= 0 {
		max = DefaultMaxStates
	}
	want := make(map[string]bool, len(targets))
	res := &Result{}
	for _, t := range targets {
		if !want[t] {
			want[t] = true
			res.Targets = append(res.Targets, t)
		}
	}
	sort.Strings(res.Targets)

	for _, f := range files {
		prog, err := disasm.Disassemble(f)
		if err != nil {
			return nil, fmt.Errorf("audit: %s: %w", f.Name, err)
		}
		seen := make(map[int32]bool) // call offsets already attributed
		for _, sym := range f.Funcs() {
			if sym.Size <= 0 {
				continue
			}
			g, err := cfg.Build(prog, sym.Off)
			if err != nil {
				res.Incomplete = append(res.Incomplete,
					fmt.Sprintf("%s.%s: %v", f.Name, sym.Name, err))
				continue
			}
			end := sym.Off + sym.Size
			for _, b := range g.Blocks {
				for i := 0; i < b.NumInsts(); i++ {
					off := b.InstOff(i)
					if b.Inst(i).Op != isa.OpCall || off < sym.Off || off >= end || seen[off] {
						continue
					}
					target, ok := callTargetName(prog, off)
					if !ok || !want[target] {
						continue
					}
					seen[off] = true
					class, exhausted := classifySite(g, b, i, max)
					res.Sites = append(res.Sites, Site{
						Module: f.Name, Caller: sym.Name, Off: off,
						Target: target, Class: class, Exhausted: exhausted,
					})
				}
			}
		}
	}
	sort.Slice(res.Sites, func(i, j int) bool {
		a, b := res.Sites[i], res.Sites[j]
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		return a.Off < b.Off
	})
	sort.Strings(res.Incomplete)
	return res, nil
}

// callTargetName resolves the call at off to a function name: imported
// symbol name for import calls, defining symbol for direct local calls.
func callTargetName(prog *disasm.Program, off int32) (string, bool) {
	local, imp, imported, ok := prog.CallTarget(off)
	if !ok {
		return "", false
	}
	if imported {
		return imp, true
	}
	return prog.SymbolFor(local)
}

// Unchecked returns the sites whose class asserts the return value is
// never examined.
func (r *Result) Unchecked() []Site {
	var out []Site
	for _, s := range r.Sites {
		if s.Class.Unchecked() {
			out = append(out, s)
		}
	}
	return out
}

// Exhausted counts sites whose analysis hit the state budget.
func (r *Result) Exhausted() int {
	n := 0
	for _, s := range r.Sites {
		if s.Exhausted {
			n++
		}
	}
	return n
}

// Classes aggregates the audit per target function: each audited
// function maps to its most fragile site class (minimum Rank). This is
// the static prior core.StaticOrder schedules by and the classification
// campaign records carry. Functions with no discovered call site are
// absent — "unknown" to the consumer.
func (r *Result) Classes() map[string]string {
	out := make(map[string]string)
	for _, s := range r.Sites {
		if cur, ok := out[s.Target]; !ok || Rank(string(s.Class)) < Rank(cur) {
			out[s.Target] = string(s.Class)
		}
	}
	return out
}

// Render prints the deterministic audit report: per-module site lines,
// per-function summaries, and the unchecked/exhaustion totals.
func (r *Result) Render() string {
	var b strings.Builder
	byTarget := make(map[string]int)
	for _, s := range r.Sites {
		byTarget[s.Target]++
	}
	fmt.Fprintf(&b, "caller-side audit: %d call site(s) into %d of %d profiled function(s)\n",
		len(r.Sites), len(byTarget), len(r.Targets))
	var module string
	for _, s := range r.Sites {
		if s.Module != module {
			module = s.Module
			fmt.Fprintf(&b, "%s:\n", module)
		}
		fmt.Fprintf(&b, "  %s\n", s)
	}
	if len(byTarget) > 0 {
		b.WriteString("per-function:\n")
		targets := make([]string, 0, len(byTarget))
		for t := range byTarget {
			targets = append(targets, t)
		}
		sort.Strings(targets)
		for _, t := range targets {
			counts := make(map[Class]int)
			for _, s := range r.Sites {
				if s.Target == t {
					counts[s.Class]++
				}
			}
			classes := make([]string, 0, len(counts))
			for c := range counts {
				classes = append(classes, string(c))
			}
			sort.Slice(classes, func(i, j int) bool {
				if ri, rj := Rank(classes[i]), Rank(classes[j]); ri != rj {
					return ri < rj
				}
				return classes[i] < classes[j]
			})
			parts := make([]string, 0, len(classes))
			for _, c := range classes {
				parts = append(parts, fmt.Sprintf("%d %s", counts[Class(c)], c))
			}
			fmt.Fprintf(&b, "  %s: %d site(s) — %s\n", t, byTarget[t], strings.Join(parts, ", "))
		}
	}
	for _, inc := range r.Incomplete {
		fmt.Fprintf(&b, "incomplete: %s\n", inc)
	}
	if n := r.Exhausted(); n > 0 {
		fmt.Fprintf(&b, "analysis budget exhausted at %d site(s) (raise MaxStates)\n", n)
	}
	fmt.Fprintf(&b, "unchecked: %d site(s)\n", len(r.Unchecked()))
	return b.String()
}

// ---------------------------------------------------------------------------
// Forward taint walk
// ---------------------------------------------------------------------------

// maxFrameSlots bounds the tracked spill slots per path; a tainted store
// beyond the bound degrades to stored-evidence instead of growing state.
const maxFrameSlots = 16

// maxOpStack bounds the abstract expression stack per path.
const maxOpStack = 16

// taintState is the per-path abstract state of the forward walk: which
// registers, BP-relative frame slots and expression-stack entries hold
// the call's return value (or a value derived from it).
type taintState struct {
	regs  uint16
	frame map[int32]bool
	stack []bool
}

func (s *taintState) reg(r isa.Reg) bool { return s.regs&(1<<uint(r)) != 0 }
func (s *taintState) setReg(r isa.Reg, t bool) {
	if t {
		s.regs |= 1 << uint(r)
	} else {
		s.regs &^= 1 << uint(r)
	}
}

func (s *taintState) live() bool {
	if s.regs != 0 {
		return true
	}
	for _, t := range s.frame {
		if t {
			return true
		}
	}
	for _, t := range s.stack {
		if t {
			return true
		}
	}
	return false
}

func (s *taintState) clone() *taintState {
	n := &taintState{regs: s.regs}
	if len(s.frame) > 0 {
		n.frame = make(map[int32]bool, len(s.frame))
		for k, v := range s.frame {
			n.frame[k] = v
		}
	}
	if len(s.stack) > 0 {
		n.stack = append([]bool(nil), s.stack...)
	}
	return n
}

// key canonicalises the state for visited-set dedup.
func (s *taintState) key() string {
	offs := make([]int32, 0, len(s.frame))
	for off, t := range s.frame {
		if t {
			offs = append(offs, off)
		}
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "r%x|f", s.regs)
	for _, off := range offs {
		fmt.Fprintf(&b, "%d,", off)
	}
	b.WriteString("|s")
	for _, t := range s.stack {
		if t {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// evidence accumulates what the explored paths did with the value.
type evidence struct {
	checked    bool
	propagated bool
	stored     bool
}

func (e evidence) class() Class {
	switch {
	case e.checked:
		return ClassChecked
	case e.propagated:
		return ClassPropagated
	case e.stored:
		return ClassStored
	default:
		return ClassClobbered
	}
}

// walkItem is one pending (position, state) pair of the forward walk.
type walkItem struct {
	block *cfg.Block
	idx   int // first instruction index to execute
	st    *taintState
}

// classifySite runs the forward taint walk from just after the call at
// instruction index callIdx of block b.
func classifySite(g *cfg.Graph, b *cfg.Block, callIdx int, maxStates int) (Class, bool) {
	init := &taintState{}
	init.setReg(isa.R0, true)
	var ev evidence
	exhausted := false
	visited := make(map[string]bool)
	expanded := 0
	work := []walkItem{{block: b, idx: callIdx + 1, st: init}}

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if expanded >= maxStates {
			exhausted = true
			break
		}
		expanded++

		st := it.st
		ended := false
		for i := it.idx; i < it.block.NumInsts(); i++ {
			if stepTaint(st, it.block.Inst(i), &ev) {
				ended = true
				break
			}
			if !st.live() {
				// The value is gone from every tracked location: the
				// path abandons it (clobbered unless other paths say
				// otherwise).
				ended = true
				break
			}
		}
		if ended || ev.checked {
			// checked dominates every other class; once seen, no
			// further exploration can change the outcome.
			if ev.checked {
				break
			}
			continue
		}
		for _, succ := range it.block.Succs {
			key := fmt.Sprintf("b%d|%s", succ.ID, st.key())
			if visited[key] {
				continue
			}
			visited[key] = true
			work = append(work, walkItem{block: succ, idx: 0, st: st.clone()})
		}
	}
	return ev.class(), exhausted
}

// stepTaint advances one path's taint state over one instruction,
// recording evidence. It returns true when the path ends (a compare on
// the tainted value, a return, or a terminator).
func stepTaint(st *taintState, in isa.Inst, ev *evidence) bool {
	switch in.Op {
	case isa.OpCmpRI:
		if st.reg(in.A) {
			ev.checked = true
			return true
		}
	case isa.OpCmpRR:
		if st.reg(in.A) || st.reg(in.B) {
			ev.checked = true
			return true
		}
	case isa.OpRet:
		if st.reg(isa.R0) {
			ev.propagated = true
		}
		return true
	case isa.OpHalt:
		return true
	case isa.OpJmpI:
		// Computed jump; if it keys on the value, the value escaped our
		// model. Either way the path is unfollowable.
		if st.reg(in.A) {
			ev.stored = true
		}
		return true
	case isa.OpMovRI, isa.OpLea, isa.OpTLSBase, isa.OpDlNext:
		st.setReg(in.A, false)
	case isa.OpMovRR:
		st.setReg(in.A, st.reg(in.B))
	case isa.OpLoad, isa.OpLoadB:
		if in.B == isa.BP {
			st.setReg(in.A, st.frame[in.Imm])
		} else {
			// Loading *through* the value (unchecked pointer deref)
			// yields pointee bytes, not the value itself.
			st.setReg(in.A, false)
		}
	case isa.OpStoreR, isa.OpStoreB:
		if in.A == isa.BP {
			if st.reg(in.B) && st.frame == nil {
				st.frame = make(map[int32]bool, 4)
			}
			if st.reg(in.B) && len(st.frame) >= maxFrameSlots && !st.frame[in.Imm] {
				// Spill table full: the value escapes the bounded model.
				ev.stored = true
			} else if st.frame != nil {
				st.frame[in.Imm] = st.reg(in.B)
			}
		} else if st.reg(in.B) {
			// Stored to a global or through a pointer: fate unknown.
			ev.stored = true
		}
	case isa.OpStoreI:
		if in.A == isa.BP && st.frame != nil {
			st.frame[in.StoreIDisp()] = false
		}
	case isa.OpPushR:
		if len(st.stack) >= maxOpStack {
			if st.reg(in.A) {
				ev.stored = true
			}
		} else {
			st.stack = append(st.stack, st.reg(in.A))
		}
	case isa.OpPushI:
		if len(st.stack) < maxOpStack {
			st.stack = append(st.stack, false)
		}
	case isa.OpPopR:
		if n := len(st.stack); n > 0 {
			st.setReg(in.A, st.stack[n-1])
			st.stack = st.stack[:n-1]
		} else {
			st.setReg(in.A, false)
		}
	case isa.OpXorRR:
		if in.A == in.B {
			st.setReg(in.A, false) // zeroing idiom kills the taint
		} else {
			st.setReg(in.A, st.reg(in.A) || st.reg(in.B))
		}
	case isa.OpAddRR, isa.OpSubRR, isa.OpMulRR, isa.OpDivRR, isa.OpModRR,
		isa.OpAndRR, isa.OpOrRR:
		st.setReg(in.A, st.reg(in.A) || st.reg(in.B))
	case isa.OpAddRI, isa.OpSubRI, isa.OpAndRI, isa.OpOrRI, isa.OpXorRI,
		isa.OpShlRI, isa.OpShrRI, isa.OpNeg, isa.OpNot:
		// Derived values keep the taint: `n + 1 < 9` still checks n.
	case isa.OpCall, isa.OpCallR, isa.OpSyscall:
		// Arguments pushed for the callee are consumed by it; a tainted
		// argument escapes into the callee (used, but whether it is
		// examined is beyond this function).
		for _, t := range st.stack {
			if t {
				ev.stored = true
				break
			}
		}
		st.stack = st.stack[:0]
		if in.Op == isa.OpSyscall &&
			(st.reg(isa.R1) || st.reg(isa.R2) || st.reg(isa.R3)) {
			ev.stored = true
		}
		// Caller-saved registers are clobbered by the callee.
		st.setReg(isa.R0, false)
		st.setReg(isa.R1, false)
		st.setReg(isa.R2, false)
		st.setReg(isa.R3, false)
	}
	return false
}
