package kernel

import "testing"

// Disk-quota degradation: writes consume the armed quota, the last
// write is partial, and exhaustion returns ENOSPC from both Write and
// node-creating Open.

func TestDiskQuotaWrite(t *testing.T) {
	k := New()
	k.NewProcess(1)
	fd := k.Open(1, "/log", OCreat|OWronly)
	if fd < 0 {
		t.Fatalf("open: %d", fd)
	}
	k.ArmDiskQuota(10)

	if n, _ := k.Write(1, fd, []byte("12345678")); n != 8 {
		t.Fatalf("write under quota = %d, want 8", n)
	}
	// 2 bytes left: a 5-byte write is capped to a partial 2.
	if n, _ := k.Write(1, fd, []byte("abcde")); n != 2 {
		t.Fatalf("partial write = %d, want 2", n)
	}
	if n, _ := k.Write(1, fd, []byte("x")); n != -ENOSPC {
		t.Fatalf("exhausted write = %d, want -ENOSPC", n)
	}
	// Zero-length writes still succeed on a full disk, as POSIX's do.
	if n, _ := k.Write(1, fd, nil); n != 0 {
		t.Fatalf("zero write = %d, want 0", n)
	}
	st := k.Degradation()
	if !st.DiskArmed || !st.DiskTripped || st.DiskWritten != 10 {
		t.Fatalf("state = %+v", st)
	}
	if data, _ := k.FileData("/log"); string(data) != "12345678ab" {
		t.Fatalf("file = %q", data)
	}
	// Creating a new node on the full disk fails; opening an existing
	// one (a pure metadata read) still works.
	if ret := k.Open(1, "/new", OCreat|OWronly); ret != -ENOSPC {
		t.Fatalf("creating open = %d, want -ENOSPC", ret)
	}
	if ret := k.Open(1, "/log", ORdonly); ret < 0 {
		t.Fatalf("re-open existing = %d", ret)
	}
}

func TestDiskQuotaRearmResets(t *testing.T) {
	k := New()
	k.NewProcess(1)
	fd := k.Open(1, "/f", OCreat|OWronly)
	k.ArmDiskQuota(0)
	if n, _ := k.Write(1, fd, []byte("x")); n != -ENOSPC {
		t.Fatalf("write = %d, want -ENOSPC", n)
	}
	// Re-arming (a sticky trigger re-firing) resets written and tripped.
	k.ArmDiskQuota(4)
	st := k.Degradation()
	if st.DiskTripped || st.DiskWritten != 0 || st.DiskQuota != 4 {
		t.Fatalf("re-armed state = %+v", st)
	}
	if n, _ := k.Write(1, fd, []byte("ab")); n != 2 {
		t.Fatalf("write after re-arm = %d, want 2", n)
	}
}

// fd-pressure degradation: the effective table cap shrinks to the
// armed headroom, and every allocation path fails the same way.

func TestFDPressure(t *testing.T) {
	k := New()
	k.NewProcess(1)
	k.AddFile("/a", []byte("a"))
	fd := k.Open(1, "/a", ORdonly)
	if fd < 0 {
		t.Fatal(fd)
	}
	k.ArmFDPressure(1, 1) // one free slot left
	fd2 := k.Open(1, "/a", ORdonly)
	if fd2 < 0 {
		t.Fatalf("open within headroom = %d", fd2)
	}
	if ret := k.Open(1, "/a", ORdonly); ret != -EMFILE {
		t.Fatalf("open beyond headroom = %d, want -EMFILE", ret)
	}
	if ret := k.Dup(1, fd); ret != -EMFILE {
		t.Fatalf("dup beyond headroom = %d, want -EMFILE", ret)
	}
	if _, _, errno := k.Pipe(1); errno != EMFILE {
		t.Fatalf("pipe beyond headroom errno = %d, want EMFILE", errno)
	}
	st := k.Degradation()
	if !st.FDsArmed || !st.FDsTripped || st.FDsLimit != 2 {
		t.Fatalf("state = %+v", st)
	}
	// Closing frees a slot under the shrunk cap.
	k.Close(1, fd2)
	if ret := k.Open(1, "/a", ORdonly); ret < 0 {
		t.Fatalf("open after close = %d", ret)
	}
}

// Boundary consistency at exactly MaxFDs: install, Dup and Pipe all
// answer EMFILE from the same check, and pipe creation never leaks a
// descriptor when only one end fits.

func fillTable(t *testing.T, k *Kernel, pid int, upTo int) []int32 {
	t.Helper()
	k.AddFile("/fill", []byte("x"))
	var fds []int32
	for len(fds) < upTo {
		fd := k.Open(pid, "/fill", ORdonly)
		if fd < 0 {
			t.Fatalf("fill open %d = %d", len(fds), fd)
		}
		fds = append(fds, fd)
	}
	return fds
}

func TestFDBoundaryAtMaxFDs(t *testing.T) {
	k := New()
	k.NewProcess(1)
	fds := fillTable(t, k, 1, MaxFDs)
	if ret := k.Open(1, "/fill", ORdonly); ret != -EMFILE {
		t.Fatalf("open at MaxFDs = %d, want -EMFILE", ret)
	}
	if ret := k.Dup(1, fds[0]); ret != -EMFILE {
		t.Fatalf("dup at MaxFDs = %d, want -EMFILE", ret)
	}
	if _, _, errno := k.Pipe(1); errno != EMFILE {
		t.Fatalf("pipe at MaxFDs errno = %d, want EMFILE", errno)
	}

	// One slot free: a pipe needs two, so it must fail with EMFILE AND
	// roll back the read end it managed to install.
	k.Close(1, fds[0])
	before := len(k.table(1).files)
	if _, _, errno := k.Pipe(1); errno != EMFILE {
		t.Fatalf("pipe with 1 slot errno = %d, want EMFILE", errno)
	}
	if after := len(k.table(1).files); after != before {
		t.Fatalf("pipe leaked descriptors: %d -> %d", before, after)
	}
	// A single-fd allocation still fits in that slot.
	if ret := k.Dup(1, fds[1]); ret < 0 {
		t.Fatalf("dup with 1 slot = %d", ret)
	}

	// Two slots free: the pipe fits exactly, filling the table.
	k.Close(1, fds[2])
	k.Close(1, fds[3])
	rfd, wfd, errno := k.Pipe(1)
	if errno != 0 || rfd < 0 || wfd < 0 {
		t.Fatalf("pipe with 2 slots = (%d,%d,%d)", rfd, wfd, errno)
	}
	if got := len(k.table(1).files); got != MaxFDs {
		t.Fatalf("table population = %d, want %d", got, MaxFDs)
	}
}

func TestDupSharesDescription(t *testing.T) {
	k := New()
	k.NewProcess(1)
	k.AddFile("/d", []byte("abcdef"))
	fd := k.Open(1, "/d", ORdonly)
	nfd := k.Dup(1, fd)
	if nfd < 0 || nfd == fd {
		t.Fatalf("dup = %d", nfd)
	}
	// One shared offset, like POSIX dup.
	if data, n, _ := k.Read(1, fd, 3); n != 3 || string(data) != "abc" {
		t.Fatalf("read via fd = %q (%d)", data, n)
	}
	if data, n, _ := k.Read(1, nfd, 3); n != 3 || string(data) != "def" {
		t.Fatalf("read via dup = %q (%d)", data, n)
	}
	if ret := k.Dup(1, 999); ret != -EBADF {
		t.Fatalf("dup bad fd = %d, want -EBADF", ret)
	}
	// Dup'd pipe ends are refcounted: closing one write end must not
	// EOF the reader while its twin is open.
	rfd, wfd, _ := k.Pipe(1)
	wfd2 := k.Dup(1, wfd)
	if wfd2 < 0 {
		t.Fatal(wfd2)
	}
	k.Close(1, wfd)
	k.Write(1, wfd2, []byte("z"))
	if data, n, _ := k.Read(1, rfd, 1); n != 1 || string(data) != "z" {
		t.Fatalf("pipe read after twin close = %q (%d)", data, n)
	}
	k.Close(1, wfd2)
	if _, n, _ := k.Read(1, rfd, 1); n != 0 {
		t.Fatalf("pipe read after all writers closed = %d, want EOF", n)
	}
}

// Snapshot round-trips of degradation state: armed-but-untripped,
// tripped, and restored-mid-degradation kernels must come back
// bit-identically and keep degrading from exactly where they stopped.

func TestSnapshotRoundTripsDegradation(t *testing.T) {
	cases := []struct {
		name string
		prep func(k *Kernel) int32
	}{
		{"armed-untripped", func(k *Kernel) int32 {
			fd := k.Open(1, "/f", OCreat|OWronly)
			k.ArmDiskQuota(8)
			k.ArmFDPressure(1, 3)
			return fd
		}},
		{"mid-degradation", func(k *Kernel) int32 {
			fd := k.Open(1, "/f", OCreat|OWronly)
			k.ArmDiskQuota(8)
			k.Write(1, fd, []byte("abcde")) // 3 bytes left
			return fd
		}},
		{"tripped", func(k *Kernel) int32 {
			fd := k.Open(1, "/f", OCreat|OWronly)
			k.ArmDiskQuota(2)
			k.Write(1, fd, []byte("abcde")) // partial, exhausts
			k.Write(1, fd, []byte("x"))     // trips
			k.ArmFDPressure(1, 0)
			k.Open(1, "/f", ORdonly) // trips fds too
			return fd
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := New()
			k.NewProcess(1)
			fd := tc.prep(k)
			want := k.Degradation()
			snap := k.Snapshot()

			// Mutate the original past the snapshot point; the restored
			// copy must still match the frozen state.
			k.Write(1, fd, []byte("later"))
			k.ArmDiskQuota(1 << 20)

			r := snap.Restore()
			if got := r.Degradation(); got != want {
				t.Fatalf("restored degradation = %+v, want %+v", got, want)
			}
			// And a second restore is independent of the first.
			r.Write(1, fd, []byte("zz"))
			if got := snap.Restore().Degradation(); got != want {
				t.Fatalf("second restore diverged: %+v, want %+v", got, want)
			}
		})
	}
}

func TestRestoredKernelContinuesDegrading(t *testing.T) {
	k := New()
	k.NewProcess(1)
	fd := k.Open(1, "/f", OCreat|OWronly)
	k.ArmDiskQuota(6)
	k.Write(1, fd, []byte("abcd")) // 2 left
	snap := k.Snapshot()

	r := snap.Restore()
	if n, _ := r.Write(1, fd, []byte("wxyz")); n != 2 {
		t.Fatalf("restored partial write = %d, want 2", n)
	}
	if n, _ := r.Write(1, fd, []byte("q")); n != -ENOSPC {
		t.Fatalf("restored exhausted write = %d, want -ENOSPC", n)
	}
	if !r.Degradation().DiskTripped {
		t.Fatal("restored kernel did not trip")
	}
	// SetDegradation(Degradation()) is an exact round trip.
	k2 := New()
	k2.SetDegradation(r.Degradation())
	if k2.Degradation() != r.Degradation() {
		t.Fatalf("SetDegradation round trip: %+v vs %+v", k2.Degradation(), r.Degradation())
	}
}

// The accept path under fd pressure: a serving listener whose table is
// saturated answers EMFILE without dropping the established connection,
// Socket starves the same way on the client side, and a kernel snapshot
// taken mid-connection — pressure armed and tripped, a peer queued on
// the backlog — restores to exactly that state and completes the
// connection once a descriptor frees up.

func TestFDPressureAcceptPath(t *testing.T) {
	k := New()
	k.NewProcess(1) // server
	k.NewProcess(2) // client
	lfd := k.Socket(1)
	if lfd < 0 || k.Listen(1, lfd, 80) != 0 {
		t.Fatal("listen setup failed")
	}
	cfd := k.Socket(2)
	if cfd < 0 || k.Connect(2, cfd, 80) != 0 {
		t.Fatal("connect failed")
	}
	if n, _ := k.Write(2, cfd, []byte("ping")); n != 4 {
		t.Fatalf("send to queued conn = %d", n)
	}

	// Zero headroom on the server: the accept's own slot allocation
	// fails, trips the degradation, and the connection stays queued.
	k.ArmFDPressure(1, 0)
	if ret, blocked := k.Accept(1, lfd); ret != -EMFILE || blocked {
		t.Fatalf("accept under pressure = (%d, %v), want (-EMFILE, false)", ret, blocked)
	}
	if st := k.Degradation(); !st.FDsArmed || !st.FDsTripped {
		t.Fatalf("state after starved accept = %+v", st)
	}

	// Socket starves on the client side too — same system-wide limit.
	if ret := k.Socket(2); ret != -EMFILE {
		t.Fatalf("socket under pressure = %d, want -EMFILE", ret)
	}

	// Snapshot mid-connection: armed+tripped, peer still on the backlog.
	want := k.Degradation()
	snap := k.Snapshot()

	r := snap.Restore()
	if got := r.Degradation(); got != want {
		t.Fatalf("restored degradation = %+v, want %+v", got, want)
	}
	// The restored server is still starved...
	if ret, _ := r.Accept(1, lfd); ret != -EMFILE {
		t.Fatalf("restored accept = %d, want -EMFILE", ret)
	}
	// ...until pressure lifts; then the queued connection — bytes and
	// all — is finally served.
	r.ArmFDPressure(1, 1)
	sfd, blocked := r.Accept(1, lfd)
	if sfd < 0 || blocked {
		t.Fatalf("accept after relief = (%d, %v)", sfd, blocked)
	}
	if data, n, _ := r.Read(1, sfd, 4); n != 4 || string(data) != "ping" {
		t.Fatalf("read after relieved accept = %q (%d)", data, n)
	}

	// The original kernel is untouched by the restored copy's progress.
	if st := k.Degradation(); st != want {
		t.Fatalf("original mutated: %+v, want %+v", st, want)
	}
	if ret, _ := k.Accept(1, lfd); ret != -EMFILE {
		t.Fatalf("original accept = %d, want -EMFILE", ret)
	}
}
