// Package kernel implements the synthetic operating-system kernel beneath
// the SIA-32 virtual machine.
//
// It plays two roles in the LFI reproduction:
//
//  1. Runtime substrate: the VM traps OpSyscall into Kernel, which
//     implements Linux-flavoured files, pipes, heap, process and loopback
//     socket services with -errno error returns.
//
//  2. Static-analysis subject: §3.1 of the paper observes that libc wraps
//     kernel system calls, so "many dependent functions reside in the
//     kernel" and LFI "performs static analysis on the kernel image as
//     well". Image() compiles a MiniC kernel image whose per-syscall
//     handlers return exactly the -errno constants the runtime can
//     produce; the profiler analyses that image to recover error codes
//     that libc propagates.
//
// Both roles are driven by the same Spec table, so the analysable image
// and the executable behaviour cannot drift apart.
package kernel

// Linux-flavoured errno values. The subset mirrors the codes that appear
// in the paper's discussion (EBADF/EIO/EINTR for close; EWOULDBLOCK for
// read; ENOMEM for modify_ldt; ENOSPC and ENOLINK for the HP/UX and
// Solaris close variants).
const (
	EPERM        int32 = 1
	ENOENT       int32 = 2
	ESRCH        int32 = 3
	EINTR        int32 = 4
	EIO          int32 = 5
	ENXIO        int32 = 6
	EBADF        int32 = 9
	ECHILD       int32 = 10
	EAGAIN       int32 = 11
	ENOMEM       int32 = 12
	EACCES       int32 = 13
	EFAULT       int32 = 14
	EBUSY        int32 = 16
	EEXIST       int32 = 17
	ENOTDIR      int32 = 20
	EISDIR       int32 = 21
	EINVAL       int32 = 22
	ENFILE       int32 = 23
	EMFILE       int32 = 24
	ENOSPC       int32 = 28
	EPIPE        int32 = 32
	ENOSYS       int32 = 38
	ENOLINK      int32 = 67
	ECONNREFUSED int32 = 111

	// EWOULDBLOCK aliases EAGAIN, as on Linux.
	EWOULDBLOCK = EAGAIN
)

var errnoNames = map[int32]string{
	EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH", EINTR: "EINTR",
	EIO: "EIO", ENXIO: "ENXIO", EBADF: "EBADF", ECHILD: "ECHILD",
	EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES", EFAULT: "EFAULT",
	EBUSY: "EBUSY", EEXIST: "EEXIST", ENOTDIR: "ENOTDIR", EISDIR: "EISDIR",
	EINVAL: "EINVAL", ENFILE: "ENFILE", EMFILE: "EMFILE", ENOSPC: "ENOSPC",
	EPIPE: "EPIPE", ENOSYS: "ENOSYS", ENOLINK: "ENOLINK",
	ECONNREFUSED: "ECONNREFUSED",
}

var errnoByName = func() map[string]int32 {
	m := make(map[string]int32, len(errnoNames)+1)
	for v, n := range errnoNames {
		m[n] = v
	}
	m["EWOULDBLOCK"] = EWOULDBLOCK
	return m
}()

// ErrnoName returns the symbolic name of an errno value ("EBADF"), or an
// empty string if unknown.
func ErrnoName(v int32) string { return errnoNames[v] }

// ErrnoByName resolves a symbolic errno name to its value.
func ErrnoByName(name string) (int32, bool) {
	v, ok := errnoByName[name]
	return v, ok
}

// AllErrnos returns every defined errno value (unsorted copy).
func AllErrnos() []int32 {
	out := make([]int32, 0, len(errnoNames))
	for v := range errnoNames {
		out = append(out, v)
	}
	return out
}
