package kernel

import (
	"fmt"
	"strings"

	"lfi/internal/minic"
	"lfi/internal/obj"
)

// Syscall numbers.
const (
	SysExit int32 = iota + 1
	SysRead
	SysWrite
	SysOpen
	SysClose
	SysPipe
	SysBrk
	SysSpawn
	SysWait
	SysSocket
	SysConnect
	SysAccept
	SysSend
	SysRecv
	SysAbort
	SysGetpid
	SysYield
	SysUnlink
	SysListen
	numSyscalls = iota + 1
)

// SyscallSpec describes one system call: its runtime identity and the
// errno constants its handler can return. The MiniC kernel image and the
// Go runtime are both generated/validated from this single table.
type SyscallSpec struct {
	Num     int32
	Name    string  // user-facing name ("read")
	Handler string  // kernel image symbol ("sys_read")
	Arity   int     // number of arguments (0..3)
	Errnos  []int32 // error codes the handler can produce
}

// Spec is the syscall table of the synthetic kernel.
var Spec = []SyscallSpec{
	{SysExit, "exit", "sys_exit", 1, nil},
	{SysRead, "read", "sys_read", 3, []int32{EBADF, EIO, EINTR, EAGAIN, EFAULT}},
	{SysWrite, "write", "sys_write", 3, []int32{EBADF, EIO, EINTR, EPIPE, ENOSPC, EFAULT}},
	{SysOpen, "open", "sys_open", 3, []int32{ENOENT, EACCES, EMFILE, ENFILE, EISDIR, ENOSPC}},
	{SysClose, "close", "sys_close", 1, []int32{EBADF, EIO, EINTR}},
	{SysPipe, "pipe", "sys_pipe", 1, []int32{EFAULT, EMFILE, ENFILE}},
	{SysBrk, "brk", "sys_brk", 1, []int32{ENOMEM}},
	{SysSpawn, "spawn", "sys_spawn", 3, []int32{ENOENT, ENOMEM, EAGAIN, EFAULT}},
	{SysWait, "wait", "sys_wait", 2, []int32{ECHILD, EINTR, EFAULT}},
	{SysSocket, "socket", "sys_socket", 1, []int32{EMFILE, ENFILE, EINVAL}},
	{SysConnect, "connect", "sys_connect", 2, []int32{EBADF, ECONNREFUSED, EINTR, EINVAL}},
	{SysAccept, "accept", "sys_accept", 1, []int32{EBADF, EAGAIN, EINTR, EMFILE, EINVAL}},
	{SysSend, "send", "sys_send", 3, []int32{EBADF, EPIPE, EINTR, EAGAIN, EFAULT}},
	{SysRecv, "recv", "sys_recv", 3, []int32{EBADF, EINTR, EAGAIN, EFAULT, EINVAL}},
	{SysAbort, "abort", "sys_abort", 0, nil},
	{SysGetpid, "getpid", "sys_getpid", 0, nil},
	{SysYield, "yield", "sys_yield", 0, nil},
	{SysUnlink, "unlink", "sys_unlink", 1, []int32{ENOENT, EACCES, EBUSY, EFAULT}},
	{SysListen, "listen", "sys_listen", 2, []int32{EBADF, EINVAL, EMFILE}},
}

// SpecByNum returns the spec entry for a syscall number.
func SpecByNum(num int32) (SyscallSpec, bool) {
	for _, s := range Spec {
		if s.Num == num {
			return s, true
		}
	}
	return SyscallSpec{}, false
}

// HandlerSymbol maps a syscall number to its kernel-image handler symbol,
// which is how the profiler resolves libc's SYSCALL "dependent functions"
// into the kernel image (§3.1).
func HandlerSymbol(num int32) (string, bool) {
	s, ok := SpecByNum(num)
	if !ok {
		return "", false
	}
	return s.Handler, true
}

// ImageName is the module name of the analysable kernel image.
const ImageName = "kernel.img"

// ImageSource generates the MiniC source of the kernel image. Each
// handler contains the real control structure of a kernel entry point —
// argument validation, state checks, then the work — returning the
// -errno constants from the Spec table on its failure paths.
//
// The image exists so the LFI profiler can extract kernel-originated
// error codes by static analysis, exactly as the paper does for Linux.
func ImageSource() string {
	var b strings.Builder
	b.WriteString("// Synthetic kernel image, generated from kernel.Spec.\n")
	b.WriteString("int __kstate;\n")
	for _, s := range Spec {
		fmt.Fprintf(&b, "int %s(", s.Handler)
		for i := 0; i < s.Arity; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "int a%d", i)
		}
		if s.Arity == 0 {
			b.WriteString("void")
		}
		b.WriteString(") {\n")
		for i, e := range s.Errnos {
			// Each failure path checks a distinct condition; the guard
			// reads kernel state and arguments so the branch is not
			// trivially dead.
			cond := fmt.Sprintf("__kstate == %d", i+1)
			if s.Arity > 0 {
				cond = fmt.Sprintf("a0 < 0 && __kstate == %d", i+1)
				if i%2 == 1 {
					cond = fmt.Sprintf("a%d == 0 - %d", i%s.Arity, i+1)
				}
			}
			fmt.Fprintf(&b, "  if (%s) { return -%d; }\n", cond, e)
		}
		b.WriteString("  return 0;\n}\n")
	}
	return b.String()
}

// Image compiles the analysable kernel image.
func Image() (*obj.File, error) {
	f, err := minic.Compile(ImageName, ImageSource(), obj.Library)
	if err != nil {
		return nil, fmt.Errorf("kernel: compiling image: %w", err)
	}
	return f, nil
}
