package kernel

import (
	"bytes"
	"testing"
)

// TestSnapshotFileIsolation: writes through a restored kernel must not
// leak into the template or into sibling restores.
func TestSnapshotFileIsolation(t *testing.T) {
	k := New()
	k.AddFile("/etc/conf", []byte("mode=safe\n"))
	k.NewProcess(1)

	snap := k.Snapshot()
	a := snap.Restore()
	b := snap.Restore()

	fd := a.Open(1, "/etc/conf", ORdwr)
	if fd < 0 {
		t.Fatalf("open: errno %d", -fd)
	}
	if n, _ := a.Write(1, fd, []byte("CLOBBERED!")); n < 0 {
		t.Fatalf("write: errno %d", -n)
	}
	if n, _ := a.Write(1, fd, []byte("...and grown beyond the original size")); n < 0 {
		t.Fatalf("write: errno %d", -n)
	}

	want := []byte("mode=safe\n")
	for name, kk := range map[string]*Kernel{"template": k, "sibling restore": b} {
		got, ok := kk.FileData("/etc/conf")
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("%s sees %q, want %q", name, got, want)
		}
	}
	if got, _ := a.FileData("/etc/conf"); bytes.Equal(got, want) {
		t.Error("mutated restore still shows the template contents")
	}
}

// TestSnapshotPreservesAliasing: a pipe shared between two descriptor
// tables must restore as one pipe, not two.
func TestSnapshotPreservesAliasing(t *testing.T) {
	k := New()
	k.NewProcess(1)
	rfd, wfd, errno := k.Pipe(1)
	if errno != 0 {
		t.Fatalf("pipe: errno %d", errno)
	}
	k.NewProcess(2)
	if !k.InstallAt(2, 0, 1, rfd) {
		t.Fatal("InstallAt failed")
	}

	r := k.Snapshot().Restore()
	if n, _ := r.Write(1, wfd, []byte("ping")); n != 4 {
		t.Fatalf("write to restored pipe: %d", n)
	}
	data, n, blocked := r.Read(2, 0, 16)
	if blocked || n != 4 || string(data) != "ping" {
		t.Fatalf("read from restored shared pipe: n=%d blocked=%v data=%q", n, blocked, data)
	}
	// The template pipe saw none of that traffic.
	if data, n, _ := k.Read(2, 0, 16); n != 0 || len(data) != 0 {
		t.Fatalf("template pipe has data: n=%d %q", n, data)
	}
	// Closing the restored writer ends the restored reader with EOF —
	// reader/writer refcounts survived the copy.
	if ret := r.Close(1, wfd); ret != 0 {
		t.Fatalf("close: %d", ret)
	}
	if _, n, blocked := r.Read(2, 0, 16); blocked || n != 0 {
		t.Fatalf("restored pipe after writer close: n=%d blocked=%v, want EOF", n, blocked)
	}
}

// TestSnapshotMidReadOffset: a snapshot taken between two reads of one
// open descriptor must freeze the file offset — every restore resumes
// reading at byte N, not at zero, and advances independently of its
// siblings and the template. This is the kernel half of mid-execution
// prefix snapshots (vm.System.RunBreak): the breakpoint routinely lands
// with files half-consumed.
func TestSnapshotMidReadOffset(t *testing.T) {
	k := New()
	k.AddFile("/data", []byte("abcdefghij"))
	k.NewProcess(1)
	fd := k.Open(1, "/data", ORdonly)
	if fd < 0 {
		t.Fatalf("open: errno %d", -fd)
	}
	if data, n, _ := k.Read(1, fd, 4); n != 4 || string(data) != "abcd" {
		t.Fatalf("pre-snapshot read: n=%d %q", n, data)
	}

	snap := k.Snapshot()
	a := snap.Restore()
	b := snap.Restore()

	// Both restores resume at offset 4, bit-identically.
	for name, kk := range map[string]*Kernel{"a": a, "b": b} {
		if data, n, _ := kk.Read(1, fd, 3); n != 3 || string(data) != "efg" {
			t.Errorf("restore %s resumed read: n=%d %q, want \"efg\"", name, n, data)
		}
	}
	// a reads on; b's offset is its own and stays at 7.
	if data, n, _ := a.Read(1, fd, 10); n != 3 || string(data) != "hij" {
		t.Errorf("restore a tail read: n=%d %q, want \"hij\"", n, data)
	}
	if data, n, _ := b.Read(1, fd, 1); n != 1 || string(data) != "h" {
		t.Errorf("restore b offset moved with sibling: n=%d %q, want \"h\"", n, data)
	}
	// The template's offset is still 4.
	if data, n, _ := k.Read(1, fd, 2); n != 2 || string(data) != "ef" {
		t.Errorf("template offset drifted: n=%d %q, want \"ef\"", n, data)
	}
}

// TestSnapshotMidWriteOffset: a descriptor opened for write restores
// with its write position intact, so a restored run keeps appending
// where the prefix stopped instead of clobbering byte 0.
func TestSnapshotMidWriteOffset(t *testing.T) {
	k := New()
	k.AddFile("/log", nil)
	k.NewProcess(1)
	fd := k.Open(1, "/log", OWronly)
	if fd < 0 {
		t.Fatalf("open: errno %d", -fd)
	}
	if n, _ := k.Write(1, fd, []byte("pre:")); n != 4 {
		t.Fatalf("write: %d", n)
	}

	r := k.Snapshot().Restore()
	if n, _ := r.Write(1, fd, []byte("post")); n != 4 {
		t.Fatalf("restored write: %d", n)
	}
	if got, _ := r.FileData("/log"); string(got) != "pre:post" {
		t.Errorf("restored file = %q, want \"pre:post\"", got)
	}
	if got, _ := k.FileData("/log"); string(got) != "pre:" {
		t.Errorf("template file = %q, want \"pre:\"", got)
	}
}

// TestSnapshotInFlightPipe: a pipe with buffered, half-drained bytes at
// snapshot time must restore with exactly the undrained remainder — in
// order, once per restore, invisible to the template.
func TestSnapshotInFlightPipe(t *testing.T) {
	k := New()
	k.NewProcess(1)
	rfd, wfd, errno := k.Pipe(1)
	if errno != 0 {
		t.Fatalf("pipe: errno %d", errno)
	}
	if n, _ := k.Write(1, wfd, []byte("12345678")); n != 8 {
		t.Fatalf("write: %d", n)
	}
	if data, n, _ := k.Read(1, rfd, 3); n != 3 || string(data) != "123" {
		t.Fatalf("pre-snapshot drain: n=%d %q", n, data)
	}

	snap := k.Snapshot()
	a := snap.Restore()
	b := snap.Restore()
	// Each restore holds its own copy of the 5 in-flight bytes.
	for name, kk := range map[string]*Kernel{"a": a, "b": b} {
		if data, n, blocked := kk.Read(1, rfd, 16); blocked || n != 5 || string(data) != "45678" {
			t.Errorf("restore %s in-flight bytes: n=%d blocked=%v %q, want \"45678\"", name, n, blocked, data)
		}
		// Drained once: a second read blocks (writer still open).
		if _, n, blocked := kk.Read(1, rfd, 1); !blocked || n != 0 {
			t.Errorf("restore %s re-read: n=%d blocked=%v, want blocked", name, n, blocked)
		}
	}
	// The template still holds all 5 bytes.
	if data, n, _ := k.Read(1, rfd, 16); n != 5 || string(data) != "45678" {
		t.Errorf("template in-flight bytes: n=%d %q, want \"45678\"", n, data)
	}
}

// TestSnapshotListeners: a bound listener restores with its port, and a
// connect on the restored kernel does not land in the template backlog.
func TestSnapshotListeners(t *testing.T) {
	k := New()
	k.NewProcess(1)
	sfd := k.Socket(1)
	if ret := k.Listen(1, sfd, 8080); ret != 0 {
		t.Fatalf("listen: %d", ret)
	}

	r := k.Snapshot().Restore()
	k.NewProcess(2)
	r.NewProcess(2)
	cfd := r.Socket(2)
	if ret := r.Connect(2, cfd, 8080); ret != 0 {
		t.Fatalf("connect on restore: %d", ret)
	}
	if fd, blocked := r.Accept(1, sfd); blocked || fd < 0 {
		t.Fatalf("accept on restore: fd=%d blocked=%v", fd, blocked)
	}
	// The template listener's backlog is still empty.
	if _, blocked := k.Accept(1, sfd); !blocked {
		t.Fatal("template listener accepted a connection made on a restore")
	}
}
