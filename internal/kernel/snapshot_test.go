package kernel

import (
	"bytes"
	"testing"
)

// TestSnapshotFileIsolation: writes through a restored kernel must not
// leak into the template or into sibling restores.
func TestSnapshotFileIsolation(t *testing.T) {
	k := New()
	k.AddFile("/etc/conf", []byte("mode=safe\n"))
	k.NewProcess(1)

	snap := k.Snapshot()
	a := snap.Restore()
	b := snap.Restore()

	fd := a.Open(1, "/etc/conf", ORdwr)
	if fd < 0 {
		t.Fatalf("open: errno %d", -fd)
	}
	if n, _ := a.Write(1, fd, []byte("CLOBBERED!")); n < 0 {
		t.Fatalf("write: errno %d", -n)
	}
	if n, _ := a.Write(1, fd, []byte("...and grown beyond the original size")); n < 0 {
		t.Fatalf("write: errno %d", -n)
	}

	want := []byte("mode=safe\n")
	for name, kk := range map[string]*Kernel{"template": k, "sibling restore": b} {
		got, ok := kk.FileData("/etc/conf")
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("%s sees %q, want %q", name, got, want)
		}
	}
	if got, _ := a.FileData("/etc/conf"); bytes.Equal(got, want) {
		t.Error("mutated restore still shows the template contents")
	}
}

// TestSnapshotPreservesAliasing: a pipe shared between two descriptor
// tables must restore as one pipe, not two.
func TestSnapshotPreservesAliasing(t *testing.T) {
	k := New()
	k.NewProcess(1)
	rfd, wfd, errno := k.Pipe(1)
	if errno != 0 {
		t.Fatalf("pipe: errno %d", errno)
	}
	k.NewProcess(2)
	if !k.InstallAt(2, 0, 1, rfd) {
		t.Fatal("InstallAt failed")
	}

	r := k.Snapshot().Restore()
	if n, _ := r.Write(1, wfd, []byte("ping")); n != 4 {
		t.Fatalf("write to restored pipe: %d", n)
	}
	data, n, blocked := r.Read(2, 0, 16)
	if blocked || n != 4 || string(data) != "ping" {
		t.Fatalf("read from restored shared pipe: n=%d blocked=%v data=%q", n, blocked, data)
	}
	// The template pipe saw none of that traffic.
	if data, n, _ := k.Read(2, 0, 16); n != 0 || len(data) != 0 {
		t.Fatalf("template pipe has data: n=%d %q", n, data)
	}
	// Closing the restored writer ends the restored reader with EOF —
	// reader/writer refcounts survived the copy.
	if ret := r.Close(1, wfd); ret != 0 {
		t.Fatalf("close: %d", ret)
	}
	if _, n, blocked := r.Read(2, 0, 16); blocked || n != 0 {
		t.Fatalf("restored pipe after writer close: n=%d blocked=%v, want EOF", n, blocked)
	}
}

// TestSnapshotListeners: a bound listener restores with its port, and a
// connect on the restored kernel does not land in the template backlog.
func TestSnapshotListeners(t *testing.T) {
	k := New()
	k.NewProcess(1)
	sfd := k.Socket(1)
	if ret := k.Listen(1, sfd, 8080); ret != 0 {
		t.Fatalf("listen: %d", ret)
	}

	r := k.Snapshot().Restore()
	k.NewProcess(2)
	r.NewProcess(2)
	cfd := r.Socket(2)
	if ret := r.Connect(2, cfd, 8080); ret != 0 {
		t.Fatalf("connect on restore: %d", ret)
	}
	if fd, blocked := r.Accept(1, sfd); blocked || fd < 0 {
		t.Fatalf("accept on restore: fd=%d blocked=%v", fd, blocked)
	}
	// The template listener's backlog is still empty.
	if _, blocked := k.Accept(1, sfd); !blocked {
		t.Fatal("template listener accepted a connection made on a restore")
	}
}
