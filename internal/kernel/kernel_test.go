package kernel

import (
	"strings"
	"testing"
)

func TestErrnoNames(t *testing.T) {
	cases := map[int32]string{
		EBADF: "EBADF", EIO: "EIO", EINTR: "EINTR", ENOMEM: "ENOMEM",
		ENOLINK: "ENOLINK", ENOSPC: "ENOSPC",
	}
	for v, name := range cases {
		if got := ErrnoName(v); got != name {
			t.Errorf("ErrnoName(%d) = %q, want %q", v, got, name)
		}
		if back, ok := ErrnoByName(name); !ok || back != v {
			t.Errorf("ErrnoByName(%q) = %d, %v", name, back, ok)
		}
	}
	if ErrnoName(9999) != "" {
		t.Error("unknown errno should yield empty name")
	}
	// EWOULDBLOCK aliases EAGAIN, as on Linux.
	if v, ok := ErrnoByName("EWOULDBLOCK"); !ok || v != EAGAIN {
		t.Error("EWOULDBLOCK alias broken")
	}
}

func TestSpecConsistency(t *testing.T) {
	seenNum := map[int32]bool{}
	seenHandler := map[string]bool{}
	for _, s := range Spec {
		if seenNum[s.Num] {
			t.Errorf("duplicate syscall number %d", s.Num)
		}
		seenNum[s.Num] = true
		if seenHandler[s.Handler] {
			t.Errorf("duplicate handler %s", s.Handler)
		}
		seenHandler[s.Handler] = true
		if s.Arity < 0 || s.Arity > 3 {
			t.Errorf("%s: arity %d out of range", s.Name, s.Arity)
		}
		for _, e := range s.Errnos {
			if ErrnoName(e) == "" {
				t.Errorf("%s: unnamed errno %d", s.Name, e)
			}
		}
		if h, ok := HandlerSymbol(s.Num); !ok || h != s.Handler {
			t.Errorf("HandlerSymbol(%d) = %q, %v", s.Num, h, ok)
		}
	}
	if _, ok := SpecByNum(999); ok {
		t.Error("unknown syscall should not resolve")
	}
}

func TestImageSourceCoversSpec(t *testing.T) {
	src := ImageSource()
	for _, s := range Spec {
		if !strings.Contains(src, s.Handler) {
			t.Errorf("image source missing handler %s", s.Handler)
		}
	}
}

func TestImageCompilesWithAllErrnos(t *testing.T) {
	img, err := Image()
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != ImageName {
		t.Errorf("image name = %q", img.Name)
	}
	for _, s := range Spec {
		if _, ok := img.LookupExport(s.Handler); !ok {
			t.Errorf("image missing exported handler %s", s.Handler)
		}
	}
}

func TestFileLifecycle(t *testing.T) {
	k := New()
	k.NewProcess(1)
	fd := k.Open(1, "/a", OCreat|OWronly)
	if fd < 0 {
		t.Fatalf("open: %d", fd)
	}
	if n, blocked := k.Write(1, fd, []byte("hello")); n != 5 || blocked {
		t.Fatalf("write: %d %v", n, blocked)
	}
	if ret := k.Close(1, fd); ret != 0 {
		t.Fatalf("close: %d", ret)
	}
	fd = k.Open(1, "/a", ORdonly)
	data, n, _ := k.Read(1, fd, 16)
	if n != 5 || string(data) != "hello" {
		t.Errorf("read: %q %d", data, n)
	}
	// EOF.
	if _, n, _ := k.Read(1, fd, 16); n != 0 {
		t.Errorf("expected EOF, got %d", n)
	}
	if got, ok := k.FileData("/a"); !ok || string(got) != "hello" {
		t.Errorf("FileData = %q, %v", got, ok)
	}
}

func TestOpenErrors(t *testing.T) {
	k := New()
	k.NewProcess(1)
	if fd := k.Open(1, "/missing", ORdonly); fd != -ENOENT {
		t.Errorf("open missing = %d, want -ENOENT", fd)
	}
	if ret := k.Close(1, 99); ret != -EBADF {
		t.Errorf("close bad fd = %d, want -EBADF", ret)
	}
	if _, n, _ := k.Read(1, 42, 4); n != -EBADF {
		t.Errorf("read bad fd = %d", n)
	}
	if ret := k.Unlink(1, "/missing"); ret != -ENOENT {
		t.Errorf("unlink = %d", ret)
	}
}

func TestFDExhaustion(t *testing.T) {
	k := New()
	k.NewProcess(1)
	k.AddFile("/x", nil)
	last := int32(0)
	for i := 0; i < MaxFDs+4; i++ {
		last = k.Open(1, "/x", ORdonly)
	}
	if last != -EMFILE {
		t.Errorf("open beyond MaxFDs = %d, want -EMFILE", last)
	}
}

func TestPipeSemantics(t *testing.T) {
	k := New()
	k.NewProcess(1)
	rfd, wfd, errno := k.Pipe(1)
	if errno != 0 {
		t.Fatal(errno)
	}
	// Empty pipe with writer open: block.
	if _, _, blocked := k.Read(1, rfd, 4); !blocked {
		t.Error("read from empty pipe should block")
	}
	if n, _ := k.Write(1, wfd, []byte("ab")); n != 2 {
		t.Errorf("write = %d", n)
	}
	data, n, _ := k.Read(1, rfd, 1)
	if n != 1 || data[0] != 'a' {
		t.Errorf("read = %q", data)
	}
	// Close writer: drain then EOF.
	k.Close(1, wfd)
	if _, n, _ := k.Read(1, rfd, 4); n != 1 {
		t.Errorf("drain = %d", n)
	}
	if _, n, blocked := k.Read(1, rfd, 4); n != 0 || blocked {
		t.Errorf("EOF expected: n=%d blocked=%v", n, blocked)
	}
}

func TestPipeEPIPEWithoutReader(t *testing.T) {
	k := New()
	k.NewProcess(1)
	rfd, wfd, _ := k.Pipe(1)
	k.Close(1, rfd)
	if n, _ := k.Write(1, wfd, []byte("x")); n != -EPIPE {
		t.Errorf("write without reader = %d, want -EPIPE", n)
	}
}

func TestPipePartialWriteWhenFull(t *testing.T) {
	k := New()
	k.NewProcess(1)
	_, wfd, _ := k.Pipe(1)
	big := make([]byte, 5000)
	n, blocked := k.Write(1, wfd, big)
	if blocked || n != 4096 {
		t.Errorf("first write = %d (blocked=%v), want partial 4096", n, blocked)
	}
	// Now full: blocks.
	if _, blocked := k.Write(1, wfd, []byte("x")); !blocked {
		t.Error("write to full pipe should block")
	}
}

func TestPipeSharingAcrossProcesses(t *testing.T) {
	k := New()
	k.NewProcess(1)
	k.NewProcess(2)
	rfd, wfd, _ := k.Pipe(1)
	if !k.InstallAt(2, 0, 1, rfd) {
		t.Fatal("InstallAt failed")
	}
	k.Write(1, wfd, []byte("z"))
	data, n, _ := k.Read(2, 0, 4)
	if n != 1 || data[0] != 'z' {
		t.Errorf("child read = %q", data)
	}
	// Parent closing its read end must not EOF the child (child holds a
	// reference).
	k.Close(1, rfd)
	if n, _ := k.Write(1, wfd, []byte("y")); n != 1 {
		t.Errorf("write after parent close = %d", n)
	}
}

func TestListenerAndHostConn(t *testing.T) {
	k := New()
	k.NewProcess(1)
	lfd := k.Socket(1)
	if ret := k.Listen(1, lfd, 80); ret != 0 {
		t.Fatal(ret)
	}
	// Accept with empty backlog blocks.
	if _, blocked := k.Accept(1, lfd); !blocked {
		t.Error("accept should block on empty backlog")
	}
	conn, err := k.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	cfd, blocked := k.Accept(1, lfd)
	if blocked || cfd < 0 {
		t.Fatalf("accept = %d %v", cfd, blocked)
	}
	conn.Send([]byte("req"))
	data, n, _ := k.Read(1, cfd, 16)
	if n != 3 || string(data) != "req" {
		t.Errorf("server read = %q", data)
	}
	k.Write(1, cfd, []byte("resp"))
	if got := conn.Recv(); string(got) != "resp" {
		t.Errorf("client recv = %q", got)
	}
	if conn.PeerClosed() {
		t.Error("peer should be open")
	}
	k.Close(1, cfd)
	if !conn.PeerClosed() {
		t.Error("peer close not visible")
	}
}

func TestDialWithoutListener(t *testing.T) {
	k := New()
	if _, err := k.Dial(9999); err == nil {
		t.Error("dial without listener must fail")
	}
}

func TestListenPortConflict(t *testing.T) {
	k := New()
	k.NewProcess(1)
	a := k.Socket(1)
	b := k.Socket(1)
	if ret := k.Listen(1, a, 80); ret != 0 {
		t.Fatal(ret)
	}
	if ret := k.Listen(1, b, 80); ret != -EINVAL {
		t.Errorf("second listen = %d, want -EINVAL", ret)
	}
}

func TestVMToVMSocketPair(t *testing.T) {
	k := New()
	k.NewProcess(1)
	k.NewProcess(2)
	lfd := k.Socket(1)
	k.Listen(1, lfd, 7000)
	cfd := k.Socket(2)
	if ret := k.Connect(2, cfd, 7000); ret != 0 {
		t.Fatalf("connect = %d", ret)
	}
	sfd, blocked := k.Accept(1, lfd)
	if blocked {
		t.Fatal("accept blocked after connect")
	}
	// Client -> server.
	k.Write(2, cfd, []byte("ping"))
	data, n, _ := k.Read(1, sfd, 16)
	if n != 4 || string(data) != "ping" {
		t.Errorf("server got %q", data)
	}
	// Server -> client.
	k.Write(1, sfd, []byte("pong"))
	data, n, _ = k.Read(2, cfd, 16)
	if n != 4 || string(data) != "pong" {
		t.Errorf("client got %q", data)
	}
	if ret := k.Connect(2, k.Socket(2), 9999); ret != -ECONNREFUSED {
		t.Errorf("connect to closed port = %d", ret)
	}
}

func TestReleaseProcessClosesEverything(t *testing.T) {
	k := New()
	k.NewProcess(1)
	rfd, wfd, _ := k.Pipe(1)
	_ = rfd
	k.NewProcess(2)
	k.InstallAt(2, 0, 1, rfd)
	k.ReleaseProcess(1)
	// Child still reads EOF-able pipe; writer is gone.
	if _, n, blocked := k.Read(2, 0, 4); n != 0 || blocked {
		t.Errorf("read after writer release: n=%d blocked=%v, want EOF", n, blocked)
	}
	_ = wfd
}
