package kernel

import (
	"fmt"
	"sync"
)

// Open flags understood by the synthetic kernel (Linux-flavoured).
const (
	ORdonly int32 = 0
	OWronly int32 = 1
	ORdwr   int32 = 2
	OCreat  int32 = 64
	OTrunc  int32 = 512
	OAppend int32 = 1024
)

// MaxFDs is the per-process file-descriptor table size (EMFILE beyond it).
const MaxFDs = 64

// pipeCap is the pipe buffer capacity in bytes.
const pipeCap = 4096

// Kernel implements the resource side of the synthetic OS: an in-memory
// file system, pipes, and loopback sockets reachable from host-side
// workload drivers. Process control (spawn/wait/exit/brk) lives in the VM,
// which owns address spaces and scheduling.
//
// All operations are deterministic; the kernel injects no spontaneous
// faults of its own — faults come from the LFI controller at the library
// boundary, as in the paper.
type Kernel struct {
	mu        sync.Mutex
	fs        map[string]*inode
	tables    map[int]*fdTable // pid -> descriptors
	listeners map[int32]*listener
	// ex is the armed resource-degradation state (exhaust.go): disk
	// quota and fd pressure injected by the LFI controller.
	ex exhaustState
}

type inode struct {
	data []byte
}

// file is an open-file description, possibly shared between processes
// (pipe ends passed to spawned children).
type file struct {
	kind   fileKind
	node   *inode // regular files
	pos    int32
	flags  int32
	pipe   *pipe // pipe ends
	rdEnd  bool  // true when this is the read end of a pipe
	sock   *sock // connected sockets
	mirror bool  // true for the connecting end of a VM-to-VM socket
	lst    *listener
}

type fileKind uint8

const (
	fileRegular fileKind = iota + 1
	filePipe
	fileSocket
	fileListener
)

type pipe struct {
	buf     []byte
	readers int
	writers int
}

type listener struct {
	port    int32
	backlog []*sock
	closed  bool
}

// sock is a bidirectional loopback byte stream. The "a" side is the VM
// process; the "b" side is either another VM socket or a host Conn.
type sock struct {
	a2b, b2a []byte
	aOpen    bool
	bOpen    bool
}

type fdTable struct {
	files map[int32]*file
	next  int32
}

// New creates an empty kernel.
func New() *Kernel {
	return &Kernel{
		fs:        make(map[string]*inode),
		tables:    make(map[int]*fdTable),
		listeners: make(map[int32]*listener),
	}
}

// AddFile installs a file into the in-memory file system.
func (k *Kernel) AddFile(path string, data []byte) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.fs[path] = &inode{data: append([]byte(nil), data...)}
}

// FileData returns a copy of the named file's current contents.
func (k *Kernel) FileData(path string) ([]byte, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	n, ok := k.fs[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), n.data...), true
}

// NewProcess allocates a descriptor table for a process.
func (k *Kernel) NewProcess(pid int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.tables[pid] = &fdTable{files: make(map[int32]*file), next: 3}
}

// ReleaseProcess closes all descriptors of an exiting process.
func (k *Kernel) ReleaseProcess(pid int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.tables[pid]
	if t == nil {
		return
	}
	for fd := range t.files {
		k.closeLocked(t, fd)
	}
	delete(k.tables, pid)
}

func (k *Kernel) table(pid int) *fdTable {
	t := k.tables[pid]
	if t == nil {
		t = &fdTable{files: make(map[int32]*file), next: 3}
		k.tables[pid] = t
	}
	return t
}

// install places an open-file description at the next free descriptor
// of t, enforcing the table cap (caller holds k.mu). The cap is MaxFDs,
// shrunk to the armed fd-pressure limit when that degradation is in
// effect; EMFILE under the shrunk limit marks the degradation tripped.
// This is the single descriptor-allocation authority — Open, Pipe, Dup,
// Socket and Accept all go through it, so the boundary check cannot
// drift between paths.
func (k *Kernel) install(t *fdTable, f *file) int32 {
	max := MaxFDs
	if k.ex.fdsArmed && k.ex.fdsLimit < max {
		max = k.ex.fdsLimit
	}
	if len(t.files) >= max {
		if max < MaxFDs {
			k.ex.fdsTripped = true
		}
		return -EMFILE
	}
	fd := t.next
	for t.files[fd] != nil {
		fd++
	}
	t.next = fd + 1
	t.files[fd] = f
	return fd
}

// Dup implements sys_dup: fd's open-file description is installed at
// the next free descriptor, sharing position and pipe/socket identity.
// Returns the new fd or -errno; at the table cap it fails with EMFILE —
// the same check as every other allocation path.
func (k *Kernel) Dup(pid int, fd int32) int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.table(pid)
	f := t.files[fd]
	if f == nil {
		return -EBADF
	}
	nfd := k.install(t, f)
	if nfd < 0 {
		return nfd
	}
	if f.kind == filePipe {
		if f.rdEnd {
			f.pipe.readers++
		} else {
			f.pipe.writers++
		}
	}
	return nfd
}

// InstallAt force-installs a shared open file at a specific descriptor in
// a (child) process — the fd-inheritance half of spawn.
func (k *Kernel) InstallAt(pid int, fd int32, from int, fromFD int32) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	src := k.table(from).files[fromFD]
	if src == nil {
		return false
	}
	if src.kind == filePipe {
		if src.rdEnd {
			src.pipe.readers++
		} else {
			src.pipe.writers++
		}
	}
	k.table(pid).files[fd] = src
	return true
}

// Open implements sys_open. Returns fd or -errno.
func (k *Kernel) Open(pid int, path string, flags int32) int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	node, exists := k.fs[path]
	if !exists {
		if flags&OCreat == 0 {
			return -ENOENT
		}
		// Creating a node consumes disk metadata: under an exhausted
		// quota the create itself fails, like a full file system.
		if k.diskRemaining() <= 0 {
			k.ex.diskTripped = true
			return -ENOSPC
		}
		node = &inode{}
		k.fs[path] = node
	}
	if flags&OTrunc != 0 {
		node.data = nil
	}
	f := &file{kind: fileRegular, node: node, flags: flags}
	if flags&OAppend != 0 {
		f.pos = int32(len(node.data))
	}
	return k.install(k.table(pid), f)
}

// Unlink implements sys_unlink.
func (k *Kernel) Unlink(pid int, path string) int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.fs[path]; !ok {
		return -ENOENT
	}
	delete(k.fs, path)
	return 0
}

// Close implements sys_close.
func (k *Kernel) Close(pid int, fd int32) int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.table(pid)
	if t.files[fd] == nil {
		return -EBADF
	}
	k.closeLocked(t, fd)
	return 0
}

func (k *Kernel) closeLocked(t *fdTable, fd int32) {
	f := t.files[fd]
	delete(t.files, fd)
	switch f.kind {
	case filePipe:
		if f.rdEnd {
			f.pipe.readers--
		} else {
			f.pipe.writers--
		}
	case fileSocket:
		if f.mirror {
			f.sock.bOpen = false
		} else {
			f.sock.aOpen = false
		}
	case fileListener:
		f.lst.closed = true
		// Connections queued on the backlog will never be accepted: drop
		// the acceptor-side view so connected-but-unaccepted peers see
		// EOF on recv and EPIPE on send instead of blocking forever. A
		// crashed server releases its fds through this same path, which
		// is what lets a traffic driver observe the outage and move on.
		for _, s := range f.lst.backlog {
			s.aOpen = false
		}
		f.lst.backlog = nil
		delete(k.listeners, f.lst.port)
	}
}

// Read implements sys_read. blocked=true means the caller must retry (the
// VM keeps the process on the syscall instruction).
func (k *Kernel) Read(pid int, fd int32, n int32) (data []byte, ret int32, blocked bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	f := k.table(pid).files[fd]
	if f == nil || n < 0 {
		if f == nil {
			return nil, -EBADF, false
		}
		return nil, -EINVAL, false
	}
	switch f.kind {
	case fileRegular:
		if f.flags&3 == OWronly {
			return nil, -EBADF, false
		}
		avail := int32(len(f.node.data)) - f.pos
		if avail <= 0 {
			return nil, 0, false // EOF
		}
		if n > avail {
			n = avail
		}
		out := f.node.data[f.pos : f.pos+n]
		f.pos += n
		return out, n, false
	case filePipe:
		if !f.rdEnd {
			return nil, -EBADF, false
		}
		if len(f.pipe.buf) == 0 {
			if f.pipe.writers == 0 {
				return nil, 0, false // EOF
			}
			return nil, 0, true // block until data or writer close
		}
		if int(n) > len(f.pipe.buf) {
			n = int32(len(f.pipe.buf))
		}
		out := append([]byte(nil), f.pipe.buf[:n]...)
		f.pipe.buf = f.pipe.buf[n:]
		return out, n, false
	case fileSocket:
		return k.sockRecvLocked(f, n)
	}
	return nil, -EINVAL, false
}

// Write implements sys_write.
func (k *Kernel) Write(pid int, fd int32, data []byte) (ret int32, blocked bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	f := k.table(pid).files[fd]
	if f == nil {
		return -EBADF, false
	}
	switch f.kind {
	case fileRegular:
		if f.flags&3 == ORdonly {
			return -EBADF, false
		}
		// Armed disk quota: fail with ENOSPC once exhausted, and cap the
		// last write to the remaining bytes (a partial write, as POSIX
		// allows on a filling disk). Zero-length writes always succeed.
		if len(data) > 0 {
			rem := k.diskRemaining()
			if rem <= 0 {
				k.ex.diskTripped = true
				return -ENOSPC, false
			}
			if int64(len(data)) > rem {
				data = data[:rem]
			}
		}
		end := int(f.pos) + len(data)
		if end > len(f.node.data) {
			grown := make([]byte, end)
			copy(grown, f.node.data)
			f.node.data = grown
		}
		copy(f.node.data[f.pos:], data)
		f.pos += int32(len(data))
		if k.ex.diskArmed {
			k.ex.diskWritten += int64(len(data))
		}
		return int32(len(data)), false
	case filePipe:
		if f.rdEnd {
			return -EBADF, false
		}
		if f.pipe.readers == 0 {
			return -EPIPE, false
		}
		space := pipeCap - len(f.pipe.buf)
		if space == 0 {
			return 0, true // block until the reader drains
		}
		n := len(data)
		if n > space {
			n = space // partial write, as POSIX pipes allow
		}
		f.pipe.buf = append(f.pipe.buf, data[:n]...)
		return int32(n), false
	case fileSocket:
		return k.sockSendLocked(f, data)
	}
	return -EINVAL, false
}

// Pipe implements sys_pipe, returning the read and write descriptors.
// Pipe creation is all-or-nothing: if the second descriptor does not
// fit under the table cap, the first is rolled back and EMFILE is
// returned with no fd leaked. Both ends allocate through install, so
// the boundary check is identical to Open/Dup's (>= the effective cap)
// instead of the old separate `+2 >` pre-check.
func (k *Kernel) Pipe(pid int) (rfd, wfd, errno int32) {
	k.mu.Lock()
	defer k.mu.Unlock()
	t := k.table(pid)
	p := &pipe{readers: 1, writers: 1}
	rfd = k.install(t, &file{kind: filePipe, pipe: p, rdEnd: true})
	if rfd < 0 {
		return 0, 0, EMFILE
	}
	wfd = k.install(t, &file{kind: filePipe, pipe: p})
	if wfd < 0 {
		k.closeLocked(t, rfd)
		return 0, 0, EMFILE
	}
	return rfd, wfd, 0
}

// Socket implements sys_socket.
func (k *Kernel) Socket(pid int) int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.install(k.table(pid), &file{kind: fileSocket, sock: &sock{aOpen: true, bOpen: false}})
}

// Listen implements sys_listen: binds the descriptor to a port and makes
// it a listener.
func (k *Kernel) Listen(pid int, fd, port int32) int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	f := k.table(pid).files[fd]
	if f == nil {
		return -EBADF
	}
	if f.kind != fileSocket {
		return -EINVAL
	}
	if _, busy := k.listeners[port]; busy {
		return -EINVAL
	}
	l := &listener{port: port}
	f.kind = fileListener
	f.lst = l
	k.listeners[port] = l
	return 0
}

// Accept implements sys_accept.
func (k *Kernel) Accept(pid int, fd int32) (ret int32, blocked bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	f := k.table(pid).files[fd]
	if f == nil {
		return -EBADF, false
	}
	if f.kind != fileListener {
		return -EINVAL, false
	}
	if len(f.lst.backlog) == 0 {
		return 0, true
	}
	// Install before dequeue: a failed allocation (EMFILE under fd
	// pressure) must not drop the established connection — it stays
	// queued and a later accept, once a descriptor frees up, serves it.
	s := f.lst.backlog[0]
	nfd := k.install(k.table(pid), &file{kind: fileSocket, sock: s})
	if nfd < 0 {
		return nfd, false
	}
	f.lst.backlog = f.lst.backlog[1:]
	return nfd, false
}

// Connect implements sys_connect: connects a VM socket to a VM listener
// on the loopback "network".
func (k *Kernel) Connect(pid int, fd, port int32) int32 {
	k.mu.Lock()
	defer k.mu.Unlock()
	f := k.table(pid).files[fd]
	if f == nil {
		return -EBADF
	}
	if f.kind != fileSocket {
		return -EINVAL
	}
	l, ok := k.listeners[port]
	if !ok || l.closed {
		return -ECONNREFUSED
	}
	// One shared stream pair: the acceptor holds the "a" view, the
	// connector the mirrored "b" view (send and recv buffers swapped).
	s := &sock{aOpen: true, bOpen: true}
	f.sock = s
	f.mirror = true
	l.backlog = append(l.backlog, s)
	return 0
}

func (k *Kernel) sockSendLocked(f *file, data []byte) (int32, bool) {
	s := f.sock
	peerOpen := s.bOpen
	if f.mirror {
		peerOpen = s.aOpen
	}
	if !peerOpen {
		return -EPIPE, false
	}
	if f.mirror {
		s.b2a = append(s.b2a, data...)
	} else {
		s.a2b = append(s.a2b, data...)
	}
	return int32(len(data)), false
}

func (k *Kernel) sockRecvLocked(f *file, n int32) ([]byte, int32, bool) {
	s := f.sock
	buf := &s.b2a
	peerOpen := s.bOpen
	if f.mirror {
		buf = &s.a2b
		peerOpen = s.aOpen
	}
	if len(*buf) == 0 {
		if !peerOpen {
			return nil, 0, false // peer closed: EOF
		}
		return nil, 0, true
	}
	if int(n) > len(*buf) {
		n = int32(len(*buf))
	}
	out := append([]byte(nil), (*buf)[:n]...)
	*buf = (*buf)[n:]
	return out, n, false
}

// ---------------------------------------------------------------------------
// Host-side (workload driver) endpoints
// ---------------------------------------------------------------------------

// Conn is a host-side connection to a VM listener, used by workload
// drivers (the AB and SysBench analogues) to exercise servers running in
// the VM.
type Conn struct {
	k *Kernel
	s *sock
}

// Dial connects the host side to a VM listener port. It fails with
// ECONNREFUSED semantics if nothing is listening.
func (k *Kernel) Dial(port int32) (*Conn, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	l, ok := k.listeners[port]
	if !ok || l.closed {
		return nil, fmt.Errorf("kernel: dial port %d: connection refused", port)
	}
	s := &sock{aOpen: true, bOpen: true}
	l.backlog = append(l.backlog, s)
	return &Conn{k: k, s: s}, nil
}

// Send enqueues bytes for the VM side to recv.
func (c *Conn) Send(data []byte) {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	c.s.b2a = append(c.s.b2a, data...)
}

// Recv drains whatever the VM side has sent so far.
func (c *Conn) Recv() []byte {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	out := c.s.a2b
	c.s.a2b = nil
	return out
}

// PeerClosed reports whether the VM side has closed the connection.
func (c *Conn) PeerClosed() bool {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	return !c.s.aOpen
}

// Pending reports whether unread VM->host bytes are buffered.
func (c *Conn) Pending() bool {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	return len(c.s.a2b) > 0
}

// Close closes the host side of the connection.
func (c *Conn) Close() {
	c.k.mu.Lock()
	defer c.k.mu.Unlock()
	c.s.bOpen = false
}
