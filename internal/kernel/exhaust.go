// Stateful resource-exhaustion degradations — the kernel half of the
// scenario grammar's <exhaust> fault model.
//
// Unlike a one-shot errno store, an exhaustion fault changes kernel
// state: once armed, a disk-byte quota makes Write (and creating Open)
// return ENOSPC after the quota is consumed, and fd pressure shrinks
// the effective descriptor-table headroom so allocations return EMFILE.
// The armed/tripped state is part of the kernel's resource state proper:
// Snapshot/Restore carry it (cloneLocked copies it bit-identically), and
// the controller's mid-execution Checkpoint moves it across memoized
// prefix restores, so degradation campaigns stay byte-identical across
// CoW/flat restores and memo on/off.
package kernel

// exhaustState is the armed degradation state. The zero value means no
// degradation is armed — the kernel behaves exactly as before the fault
// model existed.
type exhaustState struct {
	diskArmed   bool
	diskQuota   int64 // bytes that may still be written when armed
	diskWritten int64 // bytes written since arming
	diskTripped bool  // an operation has returned ENOSPC

	fdsArmed   bool
	fdsLimit   int  // effective per-table descriptor cap (<= MaxFDs)
	fdsTripped bool // an allocation has returned EMFILE under the limit
}

// DegradationState is the exported snapshot of the kernel's armed
// resource degradations, used by controller checkpoints, reports and
// tests. The zero value means nothing is armed.
type DegradationState struct {
	DiskArmed   bool
	DiskQuota   int64
	DiskWritten int64
	DiskTripped bool

	FDsArmed   bool
	FDsLimit   int
	FDsTripped bool
}

// Armed reports whether any degradation is armed.
func (s DegradationState) Armed() bool { return s.DiskArmed || s.FDsArmed }

// Tripped reports whether any armed degradation has actually failed an
// operation.
func (s DegradationState) Tripped() bool { return s.DiskTripped || s.FDsTripped }

// ArmDiskQuota arms (or re-arms) the disk-exhaustion degradation: after
// `after` more bytes are written, Write and node-creating Open fail
// with ENOSPC. Re-arming resets the written counter and the tripped
// flag — a sticky trigger that re-fires restarts the quota.
func (k *Kernel) ArmDiskQuota(after int64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ex.diskArmed = true
	k.ex.diskQuota = after
	k.ex.diskWritten = 0
	k.ex.diskTripped = false
}

// ArmFDPressure arms (or re-arms) fd-table pressure: the effective
// MaxFDs shrinks so the process identified by pid has exactly `slots`
// free descriptors left at arm time. The limit applies to every table
// (descriptor tables are per-process but the degradation models a
// system-wide resource), and never exceeds MaxFDs.
func (k *Kernel) ArmFDPressure(pid int, slots int32) {
	k.mu.Lock()
	defer k.mu.Unlock()
	limit := len(k.table(pid).files) + int(slots)
	if limit > MaxFDs {
		limit = MaxFDs
	}
	k.ex.fdsArmed = true
	k.ex.fdsLimit = limit
	k.ex.fdsTripped = false
}

// Degradation exports the current degradation state.
func (k *Kernel) Degradation() DegradationState {
	k.mu.Lock()
	defer k.mu.Unlock()
	return DegradationState{
		DiskArmed:   k.ex.diskArmed,
		DiskQuota:   k.ex.diskQuota,
		DiskWritten: k.ex.diskWritten,
		DiskTripped: k.ex.diskTripped,
		FDsArmed:    k.ex.fdsArmed,
		FDsLimit:    k.ex.fdsLimit,
		FDsTripped:  k.ex.fdsTripped,
	}
}

// SetDegradation overwrites the degradation state — the restore half of
// a controller checkpoint carrying armed state across a memoized prefix.
func (k *Kernel) SetDegradation(st DegradationState) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.ex = exhaustState{
		diskArmed:   st.DiskArmed,
		diskQuota:   st.DiskQuota,
		diskWritten: st.DiskWritten,
		diskTripped: st.DiskTripped,
		fdsArmed:    st.FDsArmed,
		fdsLimit:    st.FDsLimit,
		fdsTripped:  st.FDsTripped,
	}
}

// diskRemaining returns how many bytes may still be written under an
// armed quota (caller holds k.mu). Unarmed: effectively unlimited.
func (k *Kernel) diskRemaining() int64 {
	if !k.ex.diskArmed {
		return 1 << 62
	}
	rem := k.ex.diskQuota - k.ex.diskWritten
	if rem < 0 {
		rem = 0
	}
	return rem
}
