package kernel

// Snapshot is a frozen, immutable copy of a kernel's whole resource
// state: file system, per-process descriptor tables, pipes, sockets and
// listeners. It backs the VM's fork-server campaign runtime: one
// snapshot is taken from a template system after load, and every
// restored run receives its own private kernel so experiments cannot
// observe each other's file writes or descriptor churn.
//
// A Snapshot is safe for concurrent Restore calls from any number of
// goroutines. Host-side connections (Conn) are not captured — take the
// snapshot before workload drivers dial in.
type Snapshot struct {
	frozen *Kernel
}

// Snapshot deep-copies the kernel's current state into an immutable
// template.
func (k *Kernel) Snapshot() *Snapshot {
	return &Snapshot{frozen: k.clone()}
}

// Restore mints a fresh kernel from the template. Every call returns an
// independent deep copy: open-file descriptions, pipe buffers and inode
// contents are private to the restored kernel, while the sharing
// structure inside it (two descriptors referencing one pipe, a file
// inherited across processes) is preserved exactly. The frozen template
// is immutable, so concurrent Restores copy without taking any lock —
// no convoy on the per-experiment hot path.
func (s *Snapshot) Restore() *Kernel {
	return s.frozen.cloneLocked()
}

// clone deep-copies a live kernel under its lock.
func (k *Kernel) clone() *Kernel {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.cloneLocked()
}

// cloneLocked deep-copies the kernel, preserving aliasing: every *file,
// *inode, *pipe, *sock and *listener reachable from more than one place
// maps to exactly one copy. The caller must hold k.mu or otherwise
// guarantee k is not being mutated (frozen snapshot templates).
func (k *Kernel) cloneLocked() *Kernel {
	out := New()
	inodes := make(map[*inode]*inode)
	pipes := make(map[*pipe]*pipe)
	socks := make(map[*sock]*sock)
	lsts := make(map[*listener]*listener)
	files := make(map[*file]*file)

	cloneInode := func(n *inode) *inode {
		if n == nil {
			return nil
		}
		if c, ok := inodes[n]; ok {
			return c
		}
		c := &inode{data: append([]byte(nil), n.data...)}
		inodes[n] = c
		return c
	}
	cloneSock := func(s *sock) *sock {
		if s == nil {
			return nil
		}
		if c, ok := socks[s]; ok {
			return c
		}
		c := &sock{
			a2b:   append([]byte(nil), s.a2b...),
			b2a:   append([]byte(nil), s.b2a...),
			aOpen: s.aOpen,
			bOpen: s.bOpen,
		}
		socks[s] = c
		return c
	}
	cloneListener := func(l *listener) *listener {
		if l == nil {
			return nil
		}
		if c, ok := lsts[l]; ok {
			return c
		}
		c := &listener{port: l.port, closed: l.closed}
		lsts[l] = c
		for _, s := range l.backlog {
			c.backlog = append(c.backlog, cloneSock(s))
		}
		return c
	}
	cloneFile := func(f *file) *file {
		if f == nil {
			return nil
		}
		if c, ok := files[f]; ok {
			return c
		}
		c := &file{
			kind:   f.kind,
			node:   cloneInode(f.node),
			pos:    f.pos,
			flags:  f.flags,
			rdEnd:  f.rdEnd,
			sock:   cloneSock(f.sock),
			mirror: f.mirror,
			lst:    cloneListener(f.lst),
		}
		if f.pipe != nil {
			p, ok := pipes[f.pipe]
			if !ok {
				p = &pipe{
					buf:     append([]byte(nil), f.pipe.buf...),
					readers: f.pipe.readers,
					writers: f.pipe.writers,
				}
				pipes[f.pipe] = p
			}
			c.pipe = p
		}
		files[f] = c
		return c
	}

	for path, n := range k.fs {
		out.fs[path] = cloneInode(n)
	}
	for pid, t := range k.tables {
		ct := &fdTable{files: make(map[int32]*file, len(t.files)), next: t.next}
		for fd, f := range t.files {
			ct.files[fd] = cloneFile(f)
		}
		out.tables[pid] = ct
	}
	for port, l := range k.listeners {
		out.listeners[port] = cloneListener(l)
	}
	// Armed degradation state (disk quota, fd pressure) is plain values:
	// a struct copy carries it bit-identically, so a kernel restored
	// mid-degradation keeps failing exactly where the original would.
	out.ex = k.ex
	return out
}
