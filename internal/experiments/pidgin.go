package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/controller"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// PidginResult reproduces the §6.1 case study: a random 10% faultload on
// libc's I/O functions crashes Pidgin with SIGABRT through its DNS
// resolver child's unchecked partial pipe writes, and the generated
// replay script reproduces the crash.
type PidginResult struct {
	// Seed is the random-scenario seed that produced the crash.
	Seed int64
	// Signal is the parent's death signal ("SIGABRT").
	Signal string
	// Injections is the number of faults injected before the crash.
	Injections int
	// ReplaySignal is the signal observed when re-running the generated
	// replay script.
	ReplaySignal string
	// Log is the injection log of the crashing run.
	Log []controller.InjectionRecord
	// CleanExitCode is pidgin's exit code without LFI (sanity baseline).
	CleanExitCode int32
}

// PidginBug searches seeds of the ready-made "file I/O faults, 10%
// probability" scenario until the crash manifests (the paper hit it
// "shortly after we entered the IM login details"), then replays it.
func PidginBug(e *Env, maxSeeds int) (*PidginResult, error) {
	// Baseline: without LFI pidgin resolves all 12 requests and exits 12.
	clean, _, err := e.runPidgin(nil)
	if err != nil {
		return nil, err
	}
	if clean.Signal != 0 {
		return nil, fmt.Errorf("pidgin crashes without LFI: %+v", clean)
	}

	for seed := int64(1); seed <= int64(maxSeeds); seed++ {
		plan := scenario.LibcFileIO(e.LibcProfiles, 10, seed)
		st, ctl, err := e.runPidgin(plan)
		if err != nil {
			return nil, err
		}
		if st.Signal != vm.SigABRT {
			continue
		}
		res := &PidginResult{
			Seed:          seed,
			Signal:        vm.SignalName(st.Signal),
			Injections:    len(ctl.Log()),
			Log:           ctl.Log(),
			CleanExitCode: clean.Code,
		}
		// Replay: the generated script must reproduce the crash.
		replaySt, _, err := e.runPidgin(ctl.ReplayPlan())
		if err != nil {
			return nil, err
		}
		res.ReplaySignal = vm.SignalName(replaySt.Signal)
		if replaySt.Signal == 0 {
			res.ReplaySignal = "none"
		}
		return res, nil
	}
	return nil, fmt.Errorf("pidgin bug did not manifest in %d seeds", maxSeeds)
}

// runPidgin runs pidgin+resolver under the given plan (nil = no LFI).
func (e *Env) runPidgin(plan *scenario.Plan) (vm.ExitStatus, *controller.Controller, error) {
	sys := e.newSystem(vm.Options{}, e.Pidgin, e.Resolver)
	var ctl *controller.Controller
	if plan != nil {
		ctl = controller.New(e.LibcProfiles, plan)
	}
	p, err := e.spawnUnder(sys, ctl, "pidgin")
	if err != nil {
		return vm.ExitStatus{}, nil, err
	}
	err = sys.Run(200_000_000)
	if err != nil && err != vm.ErrDeadlock {
		return vm.ExitStatus{}, nil, err
	}
	if err == vm.ErrDeadlock && !p.Exited {
		// The desync can also wedge parent and child; treat as a hang,
		// not a crash.
		return vm.ExitStatus{Code: -1}, ctl, nil
	}
	return p.Status, ctl, nil
}

// Render summarises the case study.
func (r *PidginResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.1 — Pidgin DNS-resolver bug (paper: SIGABRT via unchecked partial pipe write)\n")
	fmt.Fprintf(&b, "clean run: exit code %d (no crash)\n", r.CleanExitCode)
	fmt.Fprintf(&b, "random I/O faultload (10%%, seed %d): crash %s after %d injections\n",
		r.Seed, r.Signal, r.Injections)
	fmt.Fprintf(&b, "replay script: crash %s\n", r.ReplaySignal)
	for i, rec := range r.Log {
		if i >= 6 {
			fmt.Fprintf(&b, "  ... %d more injections\n", len(r.Log)-i)
			break
		}
		fmt.Fprintf(&b, "  %s\n", rec.String())
	}
	return b.String()
}
