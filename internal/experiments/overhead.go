package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/apps"
	"lfi/internal/controller"
	"lfi/internal/vm"
	"lfi/internal/workload"
)

// TriggerCounts are the paper's Table 3/4 sweep points (0 = baseline
// without LFI).
var TriggerCounts = []int{0, 10, 100, 500, 1000}

// httpdHot and dbHot order the libc functions by how often the workloads
// call them — the "top-N most-called functions" of the paper's overhead
// methodology.
var (
	httpdHot = []string{
		"recv", "send", "open", "read", "close", "accept",
		"strncmp", "strlen", "memset", "itoa", "malloc", "free",
	}
	dbHot = []string{
		"recv", "send", "accept", "write", "close", "open",
		"itoa", "strlen", "malloc", "free",
	}
)

// Table3Row is one Apache/AB measurement.
type Table3Row struct {
	Triggers    int
	StaticSecs  float64
	PHPSecs     float64
	StaticPaper float64
	PHPPaper    float64
}

// Table3Result reproduces the paper's Table 3: completion time of an
// AB batch against httpd while LFI evaluates 0..1000 pass-through
// triggers. Seconds are virtual (cycles / ClockHz), so results are
// deterministic; the reproduced claim is the shape — overhead negligible
// and mildly increasing with trigger count, PHP ≫ static baseline.
type Table3Result struct {
	Requests int
	Rows     []Table3Row
}

// paperTable3 maps trigger count to the published (static, php) seconds.
var paperTable3 = map[int][2]float64{
	0:    {0.151, 1.51},
	10:   {0.156, 1.53},
	100:  {0.156, 1.53},
	500:  {0.158, 1.57},
	1000: {0.159, 1.60},
}

// Table3 runs the AB sweep with the given request count per cell (the
// paper uses 1000).
func Table3(e *Env, requests int) (*Table3Result, error) {
	res := &Table3Result{Requests: requests}
	for _, n := range TriggerCounts {
		static, err := e.runAB(n, "/index.html", requests)
		if err != nil {
			return nil, fmt.Errorf("table3: %d triggers static: %w", n, err)
		}
		php, err := e.runAB(n, "/app.php", requests)
		if err != nil {
			return nil, fmt.Errorf("table3: %d triggers php: %w", n, err)
		}
		paper := paperTable3[n]
		res.Rows = append(res.Rows, Table3Row{
			Triggers:   n,
			StaticSecs: static.Seconds(), PHPSecs: php.Seconds(),
			StaticPaper: paper[0], PHPPaper: paper[1],
		})
	}
	return res, nil
}

// Table3Cell runs a single Table 3 cell (one trigger count, one path) —
// exposed for the benchmark harness.
func Table3Cell(e *Env, triggers int, path string, requests int) (workload.ABResult, error) {
	return e.runAB(triggers, path, requests)
}

// Table4Cell runs a single Table 4 cell — exposed for the benchmark
// harness.
func Table4Cell(e *Env, triggers int, readWrite bool, txns int) (workload.OLTPResult, error) {
	kind := workload.ReadOnly
	if readWrite {
		kind = workload.ReadWrite
	}
	return e.runOLTP(triggers, kind, txns)
}

func (e *Env) runAB(triggers int, path string, requests int) (workload.ABResult, error) {
	sys := e.newSystem(vm.Options{}, e.Httpd)
	for p, data := range apps.WWWFiles() {
		sys.Kernel().AddFile(p, data)
	}
	var ctl *controller.Controller
	if triggers > 0 {
		ctl = controller.New(e.LibcProfiles, passthroughPlan(httpdHot, triggers))
		ctl.PassThrough = true
	}
	if _, err := e.spawnUnder(sys, ctl, "httpd"); err != nil {
		return workload.ABResult{}, err
	}
	r, err := workload.RunAB(sys, apps.HTTPPort, path, requests)
	if err != nil {
		return r, err
	}
	if r.Failed > 0 {
		return r, fmt.Errorf("%d/%d requests failed", r.Failed, r.Requests)
	}
	return r, nil
}

// Render prints Table 3 with paper values alongside.
func (r *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — Apache httpd + AB, %d requests (virtual secs | paper secs)\n", r.Requests)
	b.WriteString("Config            Static HTML          PHP\n")
	for _, row := range r.Rows {
		name := "Baseline (no LFI)"
		if row.Triggers > 0 {
			name = fmt.Sprintf("%d triggers", row.Triggers)
		}
		fmt.Fprintf(&b, "%-17s %8.4f | %-8.3f %8.4f | %-8.2f\n",
			name, row.StaticSecs, row.StaticPaper, row.PHPSecs, row.PHPPaper)
	}
	return b.String()
}

// MaxOverhead returns the worst-case relative slowdown vs baseline across
// both workloads — the "negligible overhead" claim.
func (r *Table3Result) MaxOverhead() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	base := r.Rows[0]
	worst := 0.0
	for _, row := range r.Rows[1:] {
		if base.StaticSecs > 0 {
			if d := row.StaticSecs/base.StaticSecs - 1; d > worst {
				worst = d
			}
		}
		if base.PHPSecs > 0 {
			if d := row.PHPSecs/base.PHPSecs - 1; d > worst {
				worst = d
			}
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// Table 4 — MySQL / SysBench OLTP
// ---------------------------------------------------------------------------

// Table4Row is one OLTP measurement.
type Table4Row struct {
	Triggers  int
	ReadOnly  float64 // txns per virtual second
	ReadWrite float64
	ROPaper   float64
	RWPaper   float64
}

// Table4Result reproduces the paper's Table 4: SysBench OLTP throughput
// on minidb under 0..1000 pass-through triggers.
type Table4Result struct {
	Transactions int
	Rows         []Table4Row
}

var paperTable4 = map[int][2]float64{
	0:    {465.28, 112.62},
	10:   {464.48, 112.08},
	100:  {463.19, 111.53},
	500:  {460.80, 110.88},
	1000: {459.39, 110.10},
}

// Table4 runs the OLTP sweep with the given transaction count per cell.
func Table4(e *Env, txns int) (*Table4Result, error) {
	res := &Table4Result{Transactions: txns}
	for _, n := range TriggerCounts {
		ro, err := e.runOLTP(n, workload.ReadOnly, txns)
		if err != nil {
			return nil, fmt.Errorf("table4: %d triggers ro: %w", n, err)
		}
		rw, err := e.runOLTP(n, workload.ReadWrite, txns)
		if err != nil {
			return nil, fmt.Errorf("table4: %d triggers rw: %w", n, err)
		}
		paper := paperTable4[n]
		res.Rows = append(res.Rows, Table4Row{
			Triggers: n,
			ReadOnly: ro.TPS(), ReadWrite: rw.TPS(),
			ROPaper: paper[0], RWPaper: paper[1],
		})
	}
	return res, nil
}

func (e *Env) runOLTP(triggers int, kind workload.OLTPKind, txns int) (workload.OLTPResult, error) {
	sys := e.newSystem(vm.Options{}, e.Minidb)
	var ctl *controller.Controller
	if triggers > 0 {
		ctl = controller.New(e.LibcProfiles, passthroughPlan(dbHot, triggers))
		ctl.PassThrough = true
	}
	if _, err := e.spawnUnder(sys, ctl, "minidb"); err != nil {
		return workload.OLTPResult{}, err
	}
	r, err := workload.RunOLTP(sys, apps.DBPort, kind, txns)
	if err != nil {
		return r, err
	}
	if r.Failed > 0 {
		return r, fmt.Errorf("%d/%d transactions failed", r.Failed, r.Transactions)
	}
	return r, nil
}

// Render prints Table 4 with paper values alongside.
func (r *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — MySQL + SysBench OLTP, %d transactions (virtual txns/sec | paper)\n", r.Transactions)
	b.WriteString("Config            Read-only              Read/Write\n")
	for _, row := range r.Rows {
		name := "Baseline (no LFI)"
		if row.Triggers > 0 {
			name = fmt.Sprintf("%d triggers", row.Triggers)
		}
		fmt.Fprintf(&b, "%-17s %9.1f | %-9.2f %9.1f | %-9.2f\n",
			name, row.ReadOnly, row.ROPaper, row.ReadWrite, row.RWPaper)
	}
	return b.String()
}

// MaxThroughputLoss returns the worst relative throughput drop vs
// baseline.
func (r *Table4Result) MaxThroughputLoss() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	base := r.Rows[0]
	worst := 0.0
	for _, row := range r.Rows[1:] {
		if base.ReadOnly > 0 {
			if d := 1 - row.ReadOnly/base.ReadOnly; d > worst {
				worst = d
			}
		}
		if base.ReadWrite > 0 {
			if d := 1 - row.ReadWrite/base.ReadWrite; d > worst {
				worst = d
			}
		}
	}
	return worst
}
