package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"lfi/internal/audit"
	"lfi/internal/controller"
	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// The static-audit benchmark guest: a key-value cache library plus an
// application whose call sites span the audit's whole classification
// range. open is checked (graceful error exit), read is
// checked-and-tolerated, close is unchecked but benign (the false
// positive the audit cannot avoid), and two call sites drop a pointer
// result on the floor — malloc inside the app and cache_get across the
// library boundary — each a distinct crash under injection.
const (
	auditLibSrc = `
needs "libc.so";
extern byte *malloc(int n);
byte *cache_get(int k) {
  byte *p;
  p = malloc(16);
  if (p == 0) { return 0; }
  p[0] = 'k';
  return p;
}
`
	auditAppSrc = `
needs "libc.so";
needs "libdb.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern byte *cache_get(int k);
int load(void) {
  byte *p;
  p = malloc(8);
  p[0] = 'x';                      // BUG: unchecked allocation
  return 0;
}
int main(void) {
  int fd;
  int n;
  byte buf[32];
  byte *q;
  fd = open("/data", 0, 0);
  if (fd < 0) { return 2; }        // checked: graceful error exit
  n = read(fd, buf, 31);
  if (n < 0) { n = 0; }            // checked: tolerated
  close(fd);                       // unchecked but benign
  load();
  q = cache_get(3);
  q[1] = 'v';                      // BUG: unchecked cross-library lookup
  return 0;
}
`
)

// StaticAuditResult measures how well the caller-side audit predicts
// dynamic outcomes, and how much of the experiment budget the
// audit-prioritised execution order saves before every crash cluster
// has been discovered.
type StaticAuditResult struct {
	Workers int
	// Audit is the static classification of the guest's call sites.
	Audit *audit.Result
	// Classes maps each profiled function to its most fragile class.
	Classes map[string]string
	// Sweep is the full dynamic matrix, in plan order.
	Sweep *core.SweepResult
	// Total is the experiment count (the sweep budget).
	Total int
	// Clusters is the number of distinct crash clusters (stack hashes)
	// in the full matrix.
	Clusters int
	// DefaultBudget and StaticBudget count the experiments executed, in
	// plan order and in audit-prioritised order respectively, until the
	// last crash cluster is first reached.
	DefaultBudget int
	StaticBudget  int
	// Function-level confusion matrix of "statically unchecked =>
	// dynamically non-recovered (crash/hang)".
	TruePos, FalsePos, TrueNeg, FalseNeg int
}

// Precision is TP/(TP+FP) of the unchecked => non-recovered prediction.
func (r *StaticAuditResult) Precision() float64 {
	if r.TruePos+r.FalsePos == 0 {
		return 0
	}
	return float64(r.TruePos) / float64(r.TruePos+r.FalsePos)
}

// Recall is TP/(TP+FN).
func (r *StaticAuditResult) Recall() float64 {
	if r.TruePos+r.FalseNeg == 0 {
		return 0
	}
	return float64(r.TruePos) / float64(r.TruePos+r.FalseNeg)
}

// StaticAudit runs the caller-side audit against the benchmark guest,
// sweeps the full fault matrix once, and evaluates the audit two ways:
// as a predictor (does "unchecked" imply a non-recovered outcome?) and
// as a scheduler (how many experiments does -order=static need before
// every crash cluster has been seen, versus plan order?). The sweep
// runs once; both discovery curves are replayed from its recorded
// outcomes, so the comparison is exact, not sampled.
func StaticAudit(workers int) (*StaticAuditResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lc, err := libc.Compile()
	if err != nil {
		return nil, err
	}
	lib, err := minic.Compile("libdb.so", auditLibSrc, obj.Library)
	if err != nil {
		return nil, err
	}
	app, err := minic.Compile("app", auditAppSrc, obj.Executable)
	if err != nil {
		return nil, err
	}
	tls := func(errno int32) []profile.SideEffect {
		return []profile.SideEffect{{Type: profile.SideEffectTLS, Module: libc.Name, Value: errno}}
	}
	// The profile is restricted to the calls the guest makes; open and
	// read carry several error codes so the checked faultloads pad the
	// plan-order prefix the static order gets to skip.
	set := profile.Set{
		libc.Name: &profile.Profile{
			Library: libc.Name,
			Functions: []profile.Function{
				{Name: "open", ErrorCodes: []profile.ErrorCode{
					{Retval: -1, SideEffects: tls(2)},
					{Retval: -1, SideEffects: tls(13)},
					{Retval: -1, SideEffects: tls(24)},
				}},
				{Name: "read", ErrorCodes: []profile.ErrorCode{
					{Retval: -1, SideEffects: tls(4)},
					{Retval: -1, SideEffects: tls(5)},
				}},
				{Name: "close", ErrorCodes: []profile.ErrorCode{{Retval: -1, SideEffects: tls(9)}}},
				{Name: "malloc", ErrorCodes: []profile.ErrorCode{{Retval: 0, SideEffects: tls(12)}}},
			},
		},
		"libdb.so": &profile.Profile{
			Library: "libdb.so",
			Functions: []profile.Function{
				{Name: "cache_get", ErrorCodes: []profile.ErrorCode{{Retval: 0}}},
			},
		},
	}
	cfg := core.CampaignConfig{
		Programs:   []*obj.File{lc, lib, app},
		Executable: "app",
		Files:      map[string][]byte{"/data": []byte("payload")},
	}

	var targets []string
	for _, p := range set {
		for _, fn := range p.Functions {
			targets = append(targets, fn.Name)
		}
	}
	ares, err := audit.Analyze(cfg.Programs, targets, audit.Options{})
	if err != nil {
		return nil, err
	}
	classes := ares.Classes()

	exps := core.PlanExperiments(set)
	core.AnnotateAudit(exps, classes)

	// One full sweep, capturing the crash cluster (stack hash) of every
	// crashing experiment as it completes.
	var mu sync.Mutex
	hashes := make(map[string]string, len(exps))
	res, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
		Workers: workers,
		OnResult: func(exp *core.Experiment, entry core.SweepEntry, rep *core.Report) {
			if entry.Outcome == core.OutcomeCrash && rep != nil {
				h := controller.StackHash(rep.CrashStack, rep.Injections)
				mu.Lock()
				hashes[exp.Key()] = h
				mu.Unlock()
			}
		},
	})
	if err != nil {
		return nil, err
	}

	out := &StaticAuditResult{
		Workers: workers, Audit: ares, Classes: classes,
		Sweep: res, Total: len(exps),
	}

	// Crash-discovery curves: walk each execution order through the
	// recorded per-experiment clusters and note when the last distinct
	// cluster first appears.
	all := make(map[string]bool, len(hashes))
	for _, h := range hashes {
		all[h] = true
	}
	out.Clusters = len(all)
	discover := func(order []int) int {
		seen := make(map[string]bool, len(all))
		for k, i := range order {
			if h, ok := hashes[exps[i].Key()]; ok && !seen[h] {
				seen[h] = true
				if len(seen) == len(all) {
					return k + 1
				}
			}
		}
		return len(order)
	}
	identity := make([]int, len(exps))
	for i := range identity {
		identity[i] = i
	}
	out.DefaultBudget = discover(identity)
	out.StaticBudget = discover(core.StaticOrder(exps, classes))

	// Function-level confusion matrix. Ground truth: a function is
	// non-recovered when any of its faultloads crashes or hangs the
	// guest; handled and graceful error exits count as recovered.
	nonRecovered := make(map[string]bool)
	for _, e := range res.Entries {
		if e.Outcome == core.OutcomeCrash || e.Outcome == core.OutcomeHang {
			nonRecovered[e.Function] = true
		}
	}
	for _, fn := range sortedTargets(set) {
		predicted := core.AuditUnchecked(classes[fn])
		actual := nonRecovered[fn]
		switch {
		case predicted && actual:
			out.TruePos++
		case predicted && !actual:
			out.FalsePos++
		case !predicted && actual:
			out.FalseNeg++
		default:
			out.TrueNeg++
		}
	}
	return out, nil
}

// sortedTargets lists the profiled function names deterministically.
func sortedTargets(set profile.Set) []string {
	var out []string
	for _, p := range set {
		for _, fn := range p.Functions {
			out = append(out, fn.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Render prints the audit, the dynamic matrix, and both evaluations.
func (r *StaticAuditResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "static audit vs dynamic outcomes (%d workers)\n", r.Workers)
	b.WriteString(r.Audit.Render())
	b.WriteString(r.Sweep.Render())
	fmt.Fprintf(&b, "prediction (unchecked => non-recovered): precision %.2f (%d/%d), recall %.2f (%d/%d)\n",
		r.Precision(), r.TruePos, r.TruePos+r.FalsePos,
		r.Recall(), r.TruePos, r.TruePos+r.FalseNeg)
	fmt.Fprintf(&b, "crash discovery: %d cluster(s) in %d experiment(s)\n", r.Clusters, r.Total)
	fmt.Fprintf(&b, "  default order: all clusters after %d/%d experiments (%d%%)\n",
		r.DefaultBudget, r.Total, budgetPct(r.DefaultBudget, r.Total))
	fmt.Fprintf(&b, "  static order:  all clusters after %d/%d experiments (%d%%)\n",
		r.StaticBudget, r.Total, budgetPct(r.StaticBudget, r.Total))
	return b.String()
}

func budgetPct(n, d int) int {
	if d == 0 {
		return 0
	}
	return 100 * n / d
}
