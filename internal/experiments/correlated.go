package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/controller"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// correlatedAppSrc models a service loop under heap pressure: each
// iteration allocates a scratch buffer and appends a record to its
// output stream, tallying write failures observed before and after the
// first allocation failure. Exit code = 10*before + after.
const correlatedAppSrc = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern byte *malloc(int n);
extern int write(int fd, byte *buf, int n);
extern tls int errno;
int main(void) {
  int fd;
  int i;
  int before;
  int after;
  int seen;
  byte *p;
  fd = open("/journal", 65, 0);
  if (fd < 0) { return 99; }
  before = 0;
  after = 0;
  seen = 0;
  for (i = 0; i < 8; i = i + 1) {
    p = malloc(16);
    if (p == 0) { seen = 1; }
    if (write(fd, "x", 1) < 0) {
      if (seen == 0) { before = before + 1; }
      else { after = after + 1; }
    }
  }
  return before * 10 + after;
}
`

// CorrelatedResult demonstrates the correlated-faultload grammar: the
// faultload fails write with ENOSPC only once malloc has already
// failed (<after-fault function="malloc"/>), and keeps it failing
// (sticky="true") — a cascading heap-pressure scenario a flat
// per-function trigger list cannot express.
type CorrelatedResult struct {
	// ExitCode is 10*WritesBefore + WritesAfter as counted by the app.
	ExitCode int32
	// MallocFaultCall is the malloc call count at which the upstream
	// fault fired.
	MallocFaultCall int32
	// WritesBefore/WritesAfter count injected write faults before and
	// after the malloc fault in log order (correlation demands 0 before).
	WritesBefore, WritesAfter int
	// Log is the full injection log.
	Log []controller.InjectionRecord
}

// CorrelatedPlan is the faultload under test, exported so the CLI and
// docs can show the worked example.
func CorrelatedPlan() *scenario.Plan {
	return &scenario.Plan{Triggers: []scenario.Trigger{
		{Function: "malloc", Inject: 4, Retval: "0", Errno: "ENOMEM", Once: true},
		{Function: "write", Retval: "-1", Errno: "ENOSPC", Sticky: true,
			Conds: []scenario.Cond{scenario.AfterFault("malloc")}},
	}}
}

// Correlated runs the cascading-faultload experiment and checks that
// every injected write fault is correlated with (strictly follows) the
// malloc fault.
func Correlated() (*CorrelatedResult, error) {
	lc, err := libc.Compile()
	if err != nil {
		return nil, err
	}
	app, err := minic.Compile("correlated", correlatedAppSrc, obj.Executable)
	if err != nil {
		return nil, err
	}
	sys := vm.NewSystem(vm.Options{})
	sys.Register(lc)
	sys.Register(app)
	ctl := controller.New(nil, CorrelatedPlan())
	if err := ctl.Install(sys); err != nil {
		return nil, err
	}
	p, err := sys.Spawn("correlated", vm.SpawnConfig{Preload: ctl.PreloadList()})
	if err != nil {
		return nil, err
	}
	if err := sys.Run(100_000_000); err != nil {
		return nil, err
	}
	if p.Status.Signal != 0 {
		return nil, fmt.Errorf("correlated: app died on signal %d", p.Status.Signal)
	}

	res := &CorrelatedResult{ExitCode: p.Status.Code, Log: ctl.Log()}
	mallocSeen := false
	for _, r := range res.Log {
		switch r.Function {
		case "malloc":
			mallocSeen = true
			res.MallocFaultCall = r.CallCount
		case "write":
			if mallocSeen {
				res.WritesAfter++
			} else {
				res.WritesBefore++
			}
		}
	}
	if !mallocSeen {
		return nil, fmt.Errorf("correlated: upstream malloc fault never fired")
	}
	return res, nil
}

// Correlated reports whether the cascade held: write faults occurred,
// and none preceded the malloc fault.
func (r *CorrelatedResult) Correlated() bool { return r.WritesBefore == 0 && r.WritesAfter > 0 }

// Render summarises the experiment.
func (r *CorrelatedResult) Render() string {
	var b strings.Builder
	b.WriteString("§4 — correlated faultload (write fails with ENOSPC only after malloc has failed)\n")
	fmt.Fprintf(&b, "malloc fault fired on call %d; write faults: %d before, %d after (exit code %d)\n",
		r.MallocFaultCall, r.WritesBefore, r.WritesAfter, r.ExitCode)
	if r.Correlated() {
		b.WriteString("correlation holds: every injected write failure follows the allocation failure\n")
	} else {
		b.WriteString("CORRELATION VIOLATED\n")
	}
	for _, rec := range r.Log {
		fmt.Fprintf(&b, "  %s\n", rec.String())
	}
	return b.String()
}
