package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// The §2 robustness-benchmark pair: two implementations of the same
// config-loading program, one defensive and one sloppy, swept through
// every (function, error code) fault of the libc profile.
const (
	defensiveAppSrc = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  byte buf[64];
  byte *state;
  fd = open("/etc/conf", 0, 0);
  if (fd < 0) { n = 0; }           // tolerate: defaults
  else {
    n = read(fd, buf, 63);
    if (n < 0) { n = 0; }          // tolerate: empty config
    if (close(fd) < 0) { }         // tolerate: ignore
  }
  state = malloc(128);
  if (state == 0) { return 7; }    // detect: graceful error exit
  state[0] = 's';
  return 0;
}
`
	sloppyAppSrc = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern tls int errno;
int main(void) {
  int fd;
  int n;
  byte buf[64];
  byte *state;
  fd = open("/etc/conf", 0, 0);
  n = read(fd, buf, 63);           // BUG: fd unchecked
  close(fd);
  state = malloc(128);
  state[0] = 's';                  // BUG: allocation unchecked
  buf[n] = 0;                      // BUG: n may be -1
  return 0;
}
`
)

// RobustnessApp is one application's robustness matrix.
type RobustnessApp struct {
	Name   string
	Result *core.SweepResult
}

// RobustnessResult is the §2 systematic comparison: the same faultload
// swept over a defensive and a sloppy implementation.
type RobustnessResult struct {
	Workers  int
	Snapshot bool
	Apps     []RobustnessApp
}

// Robustness runs the §2 robustness benchmark with a parallel campaign
// scheduler: every (function, error code) experiment is an independent
// run, distributed over the given number of workers (<= 0: GOMAXPROCS).
// With snapshot set, runs restore from a per-app vm.Snapshot instead of
// spawning fresh systems — the fork-server runtime; memo additionally
// shares each trigger site's pre-fault prefix across its errno variants
// (prefix memoization). The rendered result is identical at any worker
// count and in every runtime combination.
func Robustness(workers int, snapshot, memo bool) (*RobustnessResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lc, err := libc.Compile()
	if err != nil {
		return nil, err
	}
	l := core.New(core.Options{Heuristics: true})
	if err := l.AddKernelImage(); err != nil {
		return nil, err
	}
	if err := l.AddLibrary(lc); err != nil {
		return nil, err
	}
	p, err := l.ProfileLibrary(libc.Name)
	if err != nil {
		return nil, err
	}
	// Restrict the sweep to the calls these programs make.
	kept := p.Functions[:0]
	for _, fn := range p.Functions {
		switch fn.Name {
		case "open", "read", "close", "malloc":
			kept = append(kept, fn)
		}
	}
	p.Functions = kept
	set := profile.Set{libc.Name: p}

	res := &RobustnessResult{Workers: workers, Snapshot: snapshot}
	for _, app := range []struct{ name, src string }{
		{"defensive", defensiveAppSrc},
		{"sloppy", sloppyAppSrc},
	} {
		exe, err := minic.Compile(app.name, app.src, obj.Executable)
		if err != nil {
			return nil, err
		}
		cfg := core.CampaignConfig{
			Programs:   []*obj.File{lc, exe},
			Executable: app.name,
			Files:      map[string][]byte{"/etc/conf": []byte("mode=safe\n")},
		}
		sweep, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0,
			core.SweepOptions{Workers: workers, Snapshot: snapshot, NoMemo: !memo})
		if err != nil {
			return nil, err
		}
		res.Apps = append(res.Apps, RobustnessApp{Name: app.name, Result: sweep})
	}
	return res, nil
}

// Crashes counts crash outcomes for the named app (-1 if absent).
func (r *RobustnessResult) Crashes(name string) int {
	for _, a := range r.Apps {
		if a.Name == name {
			return a.Result.Summary()[core.OutcomeCrash]
		}
	}
	return -1
}

// Render prints both matrices and the comparison verdict.
func (r *RobustnessResult) Render() string {
	var b strings.Builder
	mode := "parallel sweep"
	if r.Snapshot {
		mode = "snapshot-restore sweep"
	}
	fmt.Fprintf(&b, "§2 — robustness comparison (%s, %d workers)\n", mode, r.Workers)
	for _, a := range r.Apps {
		b.WriteString(a.Result.Render())
	}
	fmt.Fprintf(&b, "crashes: defensive=%d sloppy=%d\n",
		r.Crashes("defensive"), r.Crashes("sloppy"))
	return b.String()
}
