package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/kernel"
	"lfi/internal/libc"
	"lfi/internal/mandoc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
	"lfi/internal/profiler"
)

// DocGap is one discrepancy between documentation and binary analysis.
type DocGap struct {
	Library  string
	Function string
	// Found lists error codes the profiler recovered from the binary.
	Found []string
	// Documented lists what the man page claims.
	Documented []string
	// Missing is Found minus Documented — the paper's point.
	Missing []string
}

// DocGapsResult reproduces the §3.1/§3.3 documentation-inconsistency
// findings:
//
//   - close(2): "on BSD systems the man page states that close can only
//     set errno to EBADF or EINTR. On Linux, EIO is also possible" — we
//     write the BSD-style page and show the profiler finds EIO too;
//   - modify_ldt(2): "the man page claims three possible return values
//     (EFAULT, EINVAL and ENOSYS), yet the LFI profiler found a fourth
//     one (ENOMEM)".
type DocGapsResult struct {
	Gaps []DocGap
}

// DocGaps runs both discrepancy demonstrations.
func DocGaps(e *Env) (*DocGapsResult, error) {
	res := &DocGapsResult{}

	// close(): BSD-style man page vs Linux-libc binary analysis.
	bsdClose := &mandoc.Page{
		Library: libc.Name, Function: "close",
		Synopsis: "int close(int fd)",
		Retvals:  []int32{-1},
		Errnos:   []string{"EBADF", "EINTR"}, // the BSD page omits EIO
		Prose:    "close a file descriptor",
	}
	closeGap, err := gapFor(e, bsdClose, "close")
	if err != nil {
		return nil, err
	}
	res.Gaps = append(res.Gaps, closeGap)

	// modify_ldt(): documentation lists EFAULT/EINVAL/ENOSYS; the binary
	// also returns ENOMEM.
	src := fmt.Sprintf(`
tls int errno;
int modify_ldt(int func, int *ptr, int bytecount) {
  if (func < 0) { errno = %d; return -1; }            // EINVAL
  if (bytecount < 0) { errno = %d; return -1; }       // EFAULT
  if (func > 16) { errno = %d; return -1; }           // ENOSYS
  if (bytecount > 65536) { errno = %d; return -1; }   // ENOMEM (undocumented)
  return 0;
}`, kernel.EINVAL, kernel.EFAULT, kernel.ENOSYS, kernel.ENOMEM)
	ldtLib, err := minic.Compile("libldt.so", src, obj.Library)
	if err != nil {
		return nil, err
	}
	ldtPage := &mandoc.Page{
		Library: "libldt.so", Function: "modify_ldt",
		Synopsis: "int modify_ldt(int func, int *ptr, int bytecount)",
		Retvals:  []int32{-1},
		Errnos:   []string{"EFAULT", "EINVAL", "ENOSYS"},
		Prose:    "get or set a per-process LDT entry",
	}
	pr := profiler.New(profiler.Options{DropZeroReturns: true})
	if err := pr.AddLibrary(ldtLib); err != nil {
		return nil, err
	}
	p, err := pr.ProfileLibrary("libldt.so")
	if err != nil {
		return nil, err
	}
	ldtGap := diffPage(p, ldtPage)
	res.Gaps = append(res.Gaps, ldtGap)
	return res, nil
}

func gapFor(e *Env, page *mandoc.Page, fn string) (DocGap, error) {
	return diffPage(e.LibcProfiles[libc.Name], page), nil
}

func diffPage(p *profile.Profile, page *mandoc.Page) DocGap {
	gap := DocGap{Library: page.Library, Function: page.Function}
	found := map[string]bool{}
	if f, ok := p.Lookup(page.Function); ok {
		for _, ec := range f.ErrorCodes {
			for _, se := range ec.SideEffects {
				if n := kernel.ErrnoName(se.Applied()); n != "" {
					if !found[n] {
						found[n] = true
						gap.Found = append(gap.Found, n)
					}
				}
			}
		}
	}
	sort.Strings(gap.Found)
	doc := map[string]bool{}
	for _, n := range page.Errnos {
		doc[n] = true
		gap.Documented = append(gap.Documented, n)
	}
	for _, n := range gap.Found {
		if !doc[n] {
			gap.Missing = append(gap.Missing, n)
		}
	}
	return gap
}

// Render prints each discrepancy.
func (r *DocGapsResult) Render() string {
	var b strings.Builder
	b.WriteString("§3.1/§3.3 — documentation vs binary analysis\n")
	for _, g := range r.Gaps {
		fmt.Fprintf(&b, "%s %s: documented {%s}, binary analysis found {%s}",
			g.Library, g.Function,
			strings.Join(g.Documented, ","), strings.Join(g.Found, ","))
		if len(g.Missing) > 0 {
			fmt.Fprintf(&b, " -> undocumented: {%s}", strings.Join(g.Missing, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}
