package experiments

import (
	"strings"
	"testing"

	"lfi/internal/core"
)

var envCache *Env

func testEnv(t *testing.T) *Env {
	t.Helper()
	if envCache == nil {
		e, err := NewEnv()
		if err != nil {
			t.Fatalf("environment: %v", err)
		}
		envCache = e
	}
	return envCache
}

func TestTable1Shape(t *testing.T) {
	r, err := Table1(1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total < 1500 {
		t.Errorf("analysed %d functions, want >= 1500", r.Total)
	}
	// Headline claim: >90% of functions expose no side channel.
	if f := r.NoSideEffectFraction(); f < 0.88 {
		t.Errorf("no-side-effect fraction = %.3f, want ~0.91", f)
	}
	// Cell shape: scalar/none dominates; void functions have no channel.
	if r.Cells["scalar"]["none"] < 0.4 {
		t.Errorf("scalar/none = %.3f, want ~0.57", r.Cells["scalar"]["none"])
	}
	if r.Cells["void"]["global"] != 0 || r.Cells["void"]["argument"] != 0 {
		t.Errorf("void rows must have no channels: %+v", r.Cells["void"])
	}
	if !strings.Contains(r.Render(), "Table 1") {
		t.Error("render missing header")
	}
}

func TestTable2SmallRows(t *testing.T) {
	// Full Table 2 runs in the bench/CLI; here check two small rows end
	// to end plus the pcre baseline path.
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(r.Rows))
	}
	mean := r.MeanAccuracy()
	if mean < 0.70 || mean > 0.98 {
		t.Errorf("mean accuracy = %.2f, paper reports ~80-90%%", mean)
	}
	for _, row := range r.Rows {
		acc := row.Score.Accuracy()
		if acc < 0.55 || row.Score.TP == 0 {
			t.Errorf("%s/%s: degenerate score %+v", row.Library, row.Platform, row.Score)
		}
		// Shape: each row lands within 15 points of the paper's value.
		if diff := acc - row.PaperAcc; diff > 0.15 || diff < -0.15 {
			t.Errorf("%s/%s: accuracy %.2f vs paper %.2f", row.Library, row.Platform, acc, row.PaperAcc)
		}
	}
	pacc := r.Pcre.Score.Accuracy()
	if pacc < 0.70 || pacc > 0.95 {
		t.Errorf("pcre accuracy = %.2f, paper 0.84", pacc)
	}
	t.Logf("\n%s", r.Render())
}

func TestRobustnessComparison(t *testing.T) {
	r, err := Robustness(4, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Crashes("defensive") != 0 {
		t.Errorf("defensive crashes = %d, want 0", r.Crashes("defensive"))
	}
	if r.Crashes("sloppy") == 0 {
		t.Error("sloppy build should crash under the sweep")
	}
	seq, err := Robustness(1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Robustness(4, true, false)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := Robustness(4, true, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Apps {
		if r.Apps[i].Result.Render() != seq.Apps[i].Result.Render() {
			t.Errorf("%s: parallel and sequential robustness matrices differ", r.Apps[i].Name)
		}
		if r.Apps[i].Result.Render() != snap.Apps[i].Result.Render() {
			t.Errorf("%s: snapshot and fresh-spawn robustness matrices differ", r.Apps[i].Name)
		}
		if r.Apps[i].Result.Render() != memo.Apps[i].Result.Render() {
			t.Errorf("%s: memoized and fresh-spawn robustness matrices differ", r.Apps[i].Name)
		}
	}
	for i := range memo.Apps {
		st := memo.Apps[i].Result.Memo
		if st == nil || st.Restored == 0 {
			t.Errorf("%s: memoized sweep shared no prefixes: %+v", memo.Apps[i].Name, st)
		}
	}
	t.Logf("\n%s", r.Render())
}

func TestTriageWalkthrough(t *testing.T) {
	dir := t.TempDir()
	r, err := Triage(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ResumeIdentical {
		t.Error("resumed report must be byte-identical to a fresh full sweep")
	}
	if r.PartialEntries == 0 || r.PartialEntries >= r.ResumedEntries {
		t.Errorf("killed campaign covered %d/%d entries — not a partial store",
			r.PartialEntries, r.ResumedEntries)
	}
	if len(r.Clusters) == 0 {
		t.Error("sloppy target produced no crash clusters")
	}
	if r.Survivors == 0 || r.Second == nil {
		t.Errorf("escalation round missing: %d survivors, second=%v", r.Survivors, r.Second)
	}
	out := r.Render()
	for _, want := range []string{"crash triage:", "escalation:", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	// Re-running against the same store resumes: the first round is
	// fully cached, and triage stays deterministic.
	again, err := Triage(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.First.Render() != r.First.Render() {
		t.Error("resumed walkthrough report differs")
	}
	if len(again.Clusters) != len(r.Clusters) ||
		(len(r.Clusters) > 0 && again.Clusters[0].StackHash != r.Clusters[0].StackHash) {
		t.Errorf("triage clusters differ across resumes:\n%+v\nvs\n%+v", again.Clusters, r.Clusters)
	}
	t.Logf("\n%s", r.Render())
}

func TestEfficiencySeries(t *testing.T) {
	r, err := Efficiency(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if !r.RoughlyLinear() {
		t.Errorf("profiling time grows super-quadratically:\n%s", r.Render())
	}
	// Largest library must still profile in seconds, not minutes.
	last := r.Points[len(r.Points)-1]
	if last.WallTime.Seconds() > 60 {
		t.Errorf("libxml2-size profiling took %v", last.WallTime)
	}
	t.Logf("\n%s", r.Render())
}

func TestTable3OverheadShape(t *testing.T) {
	e := testEnv(t)
	r, err := Table3(e, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(TriggerCounts) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base := r.Rows[0]
	// PHP must be substantially more expensive than static (paper: 10x).
	if base.PHPSecs < 3*base.StaticSecs {
		t.Errorf("php/static ratio = %.1f, want >= 3", base.PHPSecs/base.StaticSecs)
	}
	// Overhead monotonicity-ish and negligible: < 10% worst case.
	if ov := r.MaxOverhead(); ov > 0.10 {
		t.Errorf("max overhead = %.1f%%, paper reports negligible (<6%%)", 100*ov)
	}
	last := r.Rows[len(r.Rows)-1]
	if last.StaticSecs < base.StaticSecs || last.PHPSecs < base.PHPSecs {
		t.Errorf("1000 triggers faster than baseline: %+v vs %+v", last, base)
	}
	t.Logf("\n%s", r.Render())
}

func TestTable4OverheadShape(t *testing.T) {
	e := testEnv(t)
	r, err := Table4(e, 60)
	if err != nil {
		t.Fatal(err)
	}
	base := r.Rows[0]
	// Read-only throughput exceeds read/write (paper: 465 vs 113).
	if base.ReadOnly <= base.ReadWrite {
		t.Errorf("read-only TPS %.1f <= read/write TPS %.1f", base.ReadOnly, base.ReadWrite)
	}
	if loss := r.MaxThroughputLoss(); loss > 0.10 {
		t.Errorf("max throughput loss = %.1f%%, paper reports ~1-2%%", 100*loss)
	}
	last := r.Rows[len(r.Rows)-1]
	if last.ReadOnly > base.ReadOnly {
		t.Errorf("1000 triggers faster than baseline")
	}
	t.Logf("\n%s", r.Render())
}

func TestPidginBugFoundAndReplayed(t *testing.T) {
	e := testEnv(t)
	r, err := PidginBug(e, 60)
	if err != nil {
		t.Fatal(err)
	}
	if r.Signal != "SIGABRT" {
		t.Errorf("crash signal = %s, want SIGABRT", r.Signal)
	}
	if r.ReplaySignal != "SIGABRT" {
		t.Errorf("replay signal = %s, want SIGABRT", r.ReplaySignal)
	}
	if r.Injections == 0 {
		t.Error("no injections recorded")
	}
	if r.CleanExitCode != 12 {
		t.Errorf("clean run resolved %d, want 12", r.CleanExitCode)
	}
	t.Logf("\n%s", r.Render())
}

func TestDBCoverageImproves(t *testing.T) {
	e := testEnv(t)
	r, err := DBCoverage(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline < 0.60 || r.Baseline > 0.85 {
		t.Errorf("baseline coverage = %s, want ~73%%", pct(r.Baseline))
	}
	if r.WithLFI <= r.Baseline {
		t.Errorf("coverage did not improve: %s -> %s", pct(r.Baseline), pct(r.WithLFI))
	}
	mod, delta := r.BestModuleDelta()
	if delta < 5 {
		t.Errorf("best module delta = %.1f points (%s), want a wal-style jump", delta, mod)
	}
	if r.Injections == 0 {
		t.Error("no injections during coverage run")
	}
	t.Logf("\n%s", r.Render())
}

func TestDocGapsFound(t *testing.T) {
	e := testEnv(t)
	r, err := DocGaps(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Gaps) != 2 {
		t.Fatalf("gaps = %d", len(r.Gaps))
	}
	closeGap := r.Gaps[0]
	if !contains(closeGap.Missing, "EIO") {
		t.Errorf("close: EIO not flagged as undocumented: %+v", closeGap)
	}
	ldtGap := r.Gaps[1]
	if !contains(ldtGap.Missing, "ENOMEM") {
		t.Errorf("modify_ldt: ENOMEM not flagged: %+v", ldtGap)
	}
	t.Logf("\n%s", r.Render())
}

func TestCorrelatedFaultload(t *testing.T) {
	r, err := Correlated()
	if err != nil {
		t.Fatal(err)
	}
	if r.WritesBefore != 0 {
		t.Errorf("writes failed before the malloc fault: %d", r.WritesBefore)
	}
	if r.WritesAfter != 5 {
		t.Errorf("writes failed after the malloc fault = %d, want 5 (sticky cascade)", r.WritesAfter)
	}
	if r.MallocFaultCall != 4 {
		t.Errorf("malloc fault fired on call %d, want 4", r.MallocFaultCall)
	}
	if r.ExitCode != 5 {
		t.Errorf("exit code = %d, want 5 (0 before, 5 after)", r.ExitCode)
	}
	if !r.Correlated() {
		t.Error("correlation violated")
	}
	if len(r.Log) != 6 || r.Log[0].Function != "malloc" {
		t.Errorf("log should open with the malloc fault: %+v", r.Log)
	}
	t.Logf("\n%s", r.Render())
}

func TestFigure2CFG(t *testing.T) {
	r, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks < 4 {
		t.Errorf("blocks = %d, want a branching CFG", r.Blocks)
	}
	if r.Exits < 1 {
		t.Error("no exit blocks")
	}
	if !strings.Contains(r.Dot, "digraph") {
		t.Error("dot output malformed")
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestFaultModelsComparison(t *testing.T) {
	r, err := FaultModels(4, true)
	if err != nil {
		t.Fatal(err)
	}
	// The headline: one retry absorbs a one-shot errno fault on write,
	// but not a disk that stays full — the error-return matrix calls
	// the retrying writer robust where the stateful model does not.
	if got := r.Outcome("retrying", "write", "errno"); got != "handled" {
		t.Errorf("retrying/write under errno = %s, want handled", got)
	}
	if got := r.Outcome("retrying", "write", "exhaust=disk:after=0"); got != "error-exit" {
		t.Errorf("retrying/write under disk exhaustion = %s, want error-exit", got)
	}
	if got := r.Outcome("checking", "write", "errno"); got != "error-exit" {
		t.Errorf("checking/write under errno = %s, want error-exit", got)
	}
	// A stalled call hangs either app; no error-return fault can.
	if got := r.Outcome("retrying", "write", "delay=200000000"); got != "hang" {
		t.Errorf("retrying/write under delay = %s, want hang", got)
	}
	if r.Masked("retrying") == 0 {
		t.Error("errno model masked no stateful failures of the retrying writer")
	}
	// Deterministic across executors and worker counts.
	seq, err := FaultModels(1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Apps {
		if r.Apps[i].Errno.Render() != seq.Apps[i].Errno.Render() {
			t.Errorf("%s: errno matrix differs across executors", r.Apps[i].Name)
		}
		if r.Apps[i].Degradation.Render() != seq.Apps[i].Degradation.Render() {
			t.Errorf("%s: degradation matrix differs across executors", r.Apps[i].Name)
		}
	}
	report := r.Render()
	for _, want := range []string{"error-return matrix", "degradation matrix", "masked by one-shot errno model"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	t.Logf("\n%s", report)
}

// TestAvailabilityComparison pins the flagship service-level result:
// the WAL retry absorbs a one-shot write errno (recovered) where the
// non-retrying server degrades permanently, and neither retry helps
// against persistent exhaustion or a budget-length stall.
func TestAvailabilityComparison(t *testing.T) {
	r, err := Availability(4, true)
	if err != nil {
		t.Fatal(err)
	}
	cells := []struct {
		server, function, fault string
		want                    core.AvailClass
	}{
		{"minidb", "write", "errno", core.AvailRecovered},
		{"minidb-nr", "write", "errno", core.AvailDegraded},
		{"minidb", "write", "exhaust=disk:after=0", core.AvailDegraded},
		{"minidb-nr", "write", "exhaust=disk:after=0", core.AvailDegraded},
		{"minidb", "write", "delay=200000000", core.AvailWedged},
		{"minidb", "accept", "exhaust=fds:slots=0", core.AvailWedged},
	}
	for _, c := range cells {
		if got := r.Class(c.server, c.function, c.fault); got != c.want {
			t.Errorf("%s %s/%s = %s, want %s", c.server, c.function, c.fault, got, c.want)
		}
	}
	out := r.Render()
	for _, want := range []string{
		"write/errno: minidb=recovered minidb-nr=degraded",
		"classes:",
		"served=200/",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestStaticAuditExperiment pins the audit's headline numbers: the
// unchecked classification recalls every crashing function, the benign
// unchecked close is the expected precision hit, and the
// audit-prioritised order reaches every crash cluster within half the
// experiment budget the default order needs the whole of.
func TestStaticAuditExperiment(t *testing.T) {
	r, err := StaticAudit(4)
	if err != nil {
		t.Fatal(err)
	}
	// The static classification itself.
	for fn, want := range map[string]string{
		"malloc":    "unchecked-clobbered",
		"cache_get": "unchecked-clobbered",
		"close":     "unchecked-clobbered",
		"open":      "checked",
		"read":      "checked",
	} {
		if got := r.Classes[fn]; got != want {
			t.Errorf("class(%s) = %q, want %q", fn, got, want)
		}
	}
	// Prediction quality: both crashes are predicted (recall 1.0);
	// close is unchecked-but-benign, the designed false positive.
	if r.TruePos != 2 || r.FalseNeg != 0 {
		t.Errorf("confusion TP=%d FN=%d, want TP=2 FN=0", r.TruePos, r.FalseNeg)
	}
	if r.FalsePos != 1 {
		t.Errorf("FP=%d, want 1 (the benign unchecked close)", r.FalsePos)
	}
	if r.Recall() != 1.0 {
		t.Errorf("recall = %v, want 1.0", r.Recall())
	}
	// The discovery curve: two distinct crash clusters; static order
	// must find both within half the budget (the acceptance criterion),
	// and strictly earlier than plan order.
	if r.Clusters != 2 {
		t.Errorf("clusters = %d, want 2 (app malloc + cross-library cache_get)", r.Clusters)
	}
	if 2*r.StaticBudget > r.Total {
		t.Errorf("static order used %d/%d experiments to find all clusters; want <= 50%%",
			r.StaticBudget, r.Total)
	}
	if r.StaticBudget >= r.DefaultBudget {
		t.Errorf("static order (%d) not earlier than default (%d)", r.StaticBudget, r.DefaultBudget)
	}
	// Deterministic across worker counts.
	seq, err := StaticAudit(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sweep.Render() != seq.Sweep.Render() || r.Audit.Render() != seq.Audit.Render() ||
		r.DefaultBudget != seq.DefaultBudget || r.StaticBudget != seq.StaticBudget ||
		r.TruePos != seq.TruePos || r.FalsePos != seq.FalsePos ||
		r.TrueNeg != seq.TrueNeg || r.FalseNeg != seq.FalseNeg {
		t.Errorf("results differ across worker counts:\n--- 4 ---\n%s--- 1 ---\n%s",
			r.Render(), seq.Render())
	}
	t.Logf("\n%s", r.Render())
}
