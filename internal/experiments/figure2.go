package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/cfg"
	"lfi/internal/disasm"
	"lfi/internal/minic"
	"lfi/internal/obj"
)

// Figure2Result reproduces the paper's Figure 2: the control-flow graph
// of a simple exported library function ("blah") whose return value is 0
// or 5 depending on its argument.
type Figure2Result struct {
	Listing string // objdump-style listing of the function
	Dot     string // the CFG in Graphviz form
	Blocks  int
	Exits   int
}

// figure2Source is the paper's example function in MiniC: blah(0) -> 0,
// blah(1) -> 5, anything else falls through with the uninitialised local
// (compiled here as an explicit third constant to keep MiniC total).
const figure2Source = `
int blah(int i) {
  int v;
  v = -1;
  if (i == 0) { v = 0; }
  else { if (i == 1) { v = 5; } }
  return v;
}
`

// Figure2 compiles the example, disassembles it and builds the CFG.
func Figure2() (*Figure2Result, error) {
	lib, err := minic.Compile("libblah.so", figure2Source, obj.Library)
	if err != nil {
		return nil, err
	}
	prog, err := disasm.Disassemble(lib)
	if err != nil {
		return nil, err
	}
	sym, ok := lib.LookupExport("blah")
	if !ok {
		return nil, fmt.Errorf("figure2: blah not exported")
	}
	g, err := cfg.Build(prog, sym.Off)
	if err != nil {
		return nil, err
	}
	return &Figure2Result{
		Listing: prog.Render(sym.Off, sym.Off+sym.Size),
		Dot:     g.Dot("blah"),
		Blocks:  len(g.Blocks),
		Exits:   len(g.ExitBlocks()),
	}, nil
}

// Render prints the listing and CFG summary.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2 — CFG of an exported library function\n")
	fmt.Fprintf(&b, "%d basic blocks, %d exit block(s)\n\n", r.Blocks, r.Exits)
	b.WriteString(r.Listing)
	b.WriteString("\nGraphviz:\n")
	b.WriteString(r.Dot)
	return b.String()
}
