package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"lfi/internal/corpus"
	"lfi/internal/profiler"
)

// EfficiencyPoint is one library of the §6.2 profiling-time series.
type EfficiencyPoint struct {
	Library    string
	Functions  int
	CodeKB     int
	WallTime   time.Duration
	States     int
	Dependents int
	PaperSecs  float64 // 0 when the paper gives no number for this size
}

// EfficiencyResult reproduces §6.2: profiling time as a function of
// library size, from libdmx (18 functions, 8 KB, 0.2 s in the paper) to
// libxml2 (1612 functions, 897 KB, 20 s). Absolute times differ from the
// 2009 testbed; the shape — profiling time roughly linear in code size,
// seconds even for the largest library — is the reproduced claim.
type EfficiencyResult struct {
	Points []EfficiencyPoint
}

// Efficiency generates and profiles the size series. Each point is an
// independent corpus library with its own profiler instance, so the
// series can be swept by a pool of workers; points are reported in
// series order regardless of completion order. Because each point's
// WallTime is the §6.2 measurement itself, workers <= 0 defaults to the
// contention-free sequential series; pass an explicit count to trade
// timing fidelity for campaign throughput.
func Efficiency(workers int) (*EfficiencyResult, error) {
	specs := corpus.EfficiencySpecs()
	if workers <= 0 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	points := make([]EfficiencyPoint, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				points[i], errs[i] = efficiencyPoint(specs[i])
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &EfficiencyResult{Points: points}, nil
}

// efficiencyPoint generates and profiles one library of the series.
func efficiencyPoint(spec corpus.EfficiencySpec) (EfficiencyPoint, error) {
	lib, err := corpus.Generate(spec.Traits)
	if err != nil {
		return EfficiencyPoint{}, err
	}
	pr := profiler.New(profiler.Options{DropZeroReturns: true, DropPredicates: true})
	if err := pr.AddLibrary(lib.Object); err != nil {
		return EfficiencyPoint{}, err
	}
	start := time.Now()
	if _, err := pr.ProfileLibrary(spec.Traits.Name); err != nil {
		return EfficiencyPoint{}, err
	}
	elapsed := time.Since(start)
	st := pr.Stats()
	return EfficiencyPoint{
		Library:    spec.Traits.Name,
		Functions:  spec.ExportedFn,
		CodeKB:     len(lib.Object.Text) / 1024,
		WallTime:   elapsed,
		States:     st.StatesExpanded,
		Dependents: st.DependentsAnalyzed,
		PaperSecs:  spec.PaperSecs,
	}, nil
}

// Render prints the series.
func (r *EfficiencyResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.2 — profiling time vs library size\n")
	b.WriteString("Library          Funcs  CodeKB  Time        States   Paper\n")
	for _, p := range r.Points {
		paper := "-"
		if p.PaperSecs > 0 {
			paper = fmt.Sprintf("%.1fs", p.PaperSecs)
		}
		fmt.Fprintf(&b, "%-16s %5d  %6d  %-10s  %7d  %s\n",
			p.Library, p.Functions, p.CodeKB, p.WallTime.Round(time.Millisecond), p.States, paper)
	}
	return b.String()
}

// RoughlyLinear reports whether time grows sub-quadratically with code
// size across the series (the §6.2 claim: "profiling time is mainly
// influenced by code size").
func (r *EfficiencyResult) RoughlyLinear() bool {
	if len(r.Points) < 2 {
		return true
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if first.CodeKB == 0 || first.WallTime <= 0 {
		return true
	}
	sizeRatio := float64(last.CodeKB) / float64(first.CodeKB)
	timeRatio := float64(last.WallTime) / float64(first.WallTime)
	return timeRatio < sizeRatio*sizeRatio
}
