package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/apps"
	"lfi/internal/controller"
	"lfi/internal/coverage"
	"lfi/internal/scenario"
	"lfi/internal/vm"
	"lfi/internal/workload"
)

// CoverageResult reproduces the §6.1 MySQL experiment: running the
// regression test suite under a fully automatic random libc faultload
// raises basic-block coverage (paper: 73% → at least 74% overall, +12% in
// the InnoDB ibuf module, with 12 SIGSEGV crashes along the way).
type CoverageResult struct {
	// Baseline/WithLFI are overall covered-block fractions of minidb.
	Baseline float64
	WithLFI  float64
	// ByModule maps function-name prefixes (the "modules") to
	// (baseline, with-LFI) fractions.
	ByModule map[string][2]float64
	// Crashes counts test runs that died on a signal under injection.
	Crashes int
	// Injections counts faults injected across the suite.
	Injections int
}

// coverageFaultFuncs is the faultload surface for the coverage
// experiment: the libc calls minidb's recovery code guards.
var coverageFaultFuncs = []string{"write", "open", "close", "malloc"}

// regressionSuite is the minidb "test suite": each test is a list of
// transactions sent over fresh connections. Like MySQL's suite it is
// thorough on functional paths but never exercises error-recovery code
// (no admin commands, no fault conditions).
func regressionSuite() [][]string {
	return [][]string{
		{"R 1 R 2 R 3 C", "R 4 R 5 C"},
		{"W 1 100 W 2 200 C", "R 1 R 2 C"},
		{"W 10 1 W 11 2 W 12 3 W 13 4 C", "R 10 R 11 R 12 R 13 C"},
		{"R 500 R 511 R 0 C"},
		{"W 511 9 C", "R 511 C", "W 511 0 C"},
		{"R -5 R -100 C"}, // negative keys (slot wrapping)
		{"W 77 7 R 77 W 77 8 R 77 C", "R 77 C"},
		{"R 1 R 1 R 1 R 1 R 1 R 1 R 1 R 1 C"},
		{"W 300 3 W 301 4 C", "W 302 5 C", "R 300 R 301 R 302 C"},
		{"R 42 W 42 42 R 42 C", "V C"}, // verify pass
	}
}

// DBCoverage runs the suite twice — without LFI and with a per-test
// random faultload — and reports block-coverage union and per-module
// deltas.
func DBCoverage(e *Env) (*CoverageResult, error) {
	baseImages, _, _, err := e.runSuite(nil, 0)
	if err != nil {
		return nil, fmt.Errorf("dbcoverage baseline: %w", err)
	}
	lfiImages, crashes, injections, err := e.runSuite(coverageFaultFuncs, 10)
	if err != nil {
		return nil, fmt.Errorf("dbcoverage with LFI: %w", err)
	}

	// Faults find new paths *in addition to* the regular suite: the
	// with-LFI coverage is the union of both runs, as in the paper
	// (they re-ran the same suite under injection).
	base, err := coverage.MergeBits(e.Minidb, baseImages)
	if err != nil {
		return nil, err
	}
	withLFI, err := coverage.MergeBits(e.Minidb, append(baseImages, lfiImages...))
	if err != nil {
		return nil, err
	}

	res := &CoverageResult{
		Baseline:   base.Fraction(),
		WithLFI:    withLFI.Fraction(),
		Crashes:    crashes,
		Injections: injections,
		ByModule:   make(map[string][2]float64),
	}
	baseMods := groupByModule(base)
	lfiMods := groupByModule(withLFI)
	for mod, bc := range baseMods {
		lc := lfiMods[mod]
		var bFrac, lFrac float64
		if bc[1] > 0 {
			bFrac = float64(bc[0]) / float64(bc[1])
			lFrac = float64(lc[0]) / float64(lc[1])
		}
		res.ByModule[mod] = [2]float64{bFrac, lFrac}
	}
	return res, nil
}

// runSuite executes the regression suite; faultFuncs nil means no LFI.
func (e *Env) runSuite(faultFuncs []string, probability float64) (images []*vm.Image, crashes, injections int, err error) {
	for i, test := range regressionSuite() {
		sys := e.newSystem(vm.Options{Coverage: true}, e.Minidb)
		var ctl *controller.Controller
		if faultFuncs != nil {
			plan := scenario.RandomSubset(e.LibcProfiles, faultFuncs, probability, int64(1000+i))
			ctl = controller.New(e.LibcProfiles, plan)
		}
		proc, serr := e.spawnUnder(sys, ctl, "minidb")
		if serr != nil {
			return nil, 0, 0, serr
		}
		if serr := workload.Settle(sys); serr != nil {
			return nil, 0, 0, serr
		}
		for _, txn := range test {
			if _, xerr := workload.Exchange(sys, apps.DBPort, []byte(txn)); xerr != nil {
				return nil, 0, 0, xerr
			}
			if proc.Exited {
				break
			}
		}
		if proc.Exited && proc.Status.Signal != 0 {
			crashes++
		}
		if ctl != nil {
			injections += len(ctl.Log())
		}
		if im, ok := proc.ImageByName("minidb"); ok {
			images = append(images, im)
		}
	}
	return images, crashes, injections, nil
}

// groupByModule aggregates function coverage by name prefix ("wal",
// "tbl", "net", "parse", "adm", and "core" for main and helpers).
func groupByModule(mc coverage.ModuleCoverage) map[string][2]int {
	out := make(map[string][2]int)
	for _, f := range mc.Funcs {
		mod := "core"
		if i := strings.IndexByte(f.Name, '_'); i > 0 {
			mod = f.Name[:i]
		}
		cur := out[mod]
		cur[0] += f.Covered
		cur[1] += f.Total
		out[mod] = cur
	}
	return out
}

// Render prints the coverage comparison.
func (r *CoverageResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.1 — test-suite coverage improvement (paper: 73% → ≥74% overall, +12% in one module, 12 crashes)\n")
	fmt.Fprintf(&b, "overall: %s → %s (+%.1f points), %d crashes, %d injections\n",
		pct(r.Baseline), pct(r.WithLFI), 100*(r.WithLFI-r.Baseline), r.Crashes, r.Injections)
	mods := make([]string, 0, len(r.ByModule))
	for m := range r.ByModule {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	for _, m := range mods {
		v := r.ByModule[m]
		fmt.Fprintf(&b, "  module %-6s %s → %s (%+.1f points)\n",
			m, pct(v[0]), pct(v[1]), 100*(v[1]-v[0]))
	}
	return b.String()
}

// BestModuleDelta returns the largest per-module coverage gain in points.
func (r *CoverageResult) BestModuleDelta() (string, float64) {
	best, bestMod := 0.0, ""
	for m, v := range r.ByModule {
		if d := v[1] - v[0]; d > best {
			best, bestMod = d, m
		}
	}
	return bestMod, 100 * best
}
