// Package experiments implements one harness per table and figure of the
// paper's evaluation (§6), plus the §3 side experiments (documentation
// gaps, Figure 2's CFG). Each harness returns a result value with a
// Render method that prints the paper-style rows; cmd/lfi-bench and the
// top-level benchmarks drive them, and EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"

	"lfi/internal/apps"
	"lfi/internal/controller"
	"lfi/internal/kernel"
	"lfi/internal/libc"
	"lfi/internal/obj"
	"lfi/internal/profile"
	"lfi/internal/profiler"
	"lfi/internal/scenario"
	"lfi/internal/vm"
)

// Env caches the compiled artifacts shared by the experiments.
type Env struct {
	Libc        *obj.File
	KernelImage *obj.File
	Httpd       *obj.File
	Minidb      *obj.File
	Pidgin      *obj.File
	Resolver    *obj.File
	// LibcProfiles is the profiler's output for the synthetic libc, with
	// the §3.1 heuristics enabled (drop-zero, drop-predicates).
	LibcProfiles profile.Set
}

// NewEnv compiles everything once.
func NewEnv() (*Env, error) {
	e := &Env{}
	var err error
	if e.Libc, err = libc.Compile(); err != nil {
		return nil, err
	}
	if e.KernelImage, err = kernel.Image(); err != nil {
		return nil, err
	}
	for _, app := range []struct {
		name string
		dst  **obj.File
	}{
		{"httpd", &e.Httpd},
		{"minidb", &e.Minidb},
		{"pidgin", &e.Pidgin},
		{"resolver", &e.Resolver},
	} {
		f, err := apps.Compile(app.name)
		if err != nil {
			return nil, err
		}
		*app.dst = f
	}

	pr := profiler.New(profiler.Options{DropZeroReturns: true, DropPredicates: true})
	if err := pr.AddLibrary(e.Libc); err != nil {
		return nil, err
	}
	if err := pr.AddLibrary(e.KernelImage); err != nil {
		return nil, err
	}
	p, err := pr.ProfileLibrary(libc.Name)
	if err != nil {
		return nil, err
	}
	e.LibcProfiles = profile.Set{libc.Name: p}
	return e, nil
}

// newSystem builds a VM system with libc registered plus the given
// programs and kernel files.
func (e *Env) newSystem(opts vm.Options, programs ...*obj.File) *vm.System {
	sys := vm.NewSystem(opts)
	sys.Register(e.Libc)
	for _, f := range programs {
		sys.Register(f)
	}
	return sys
}

// spawnUnder spawns exe with (optionally) the controller's interceptor
// preloaded.
func (e *Env) spawnUnder(sys *vm.System, ctl *controller.Controller, exe string) (*vm.Proc, error) {
	cfg := vm.SpawnConfig{}
	if ctl != nil {
		if err := ctl.Install(sys); err != nil {
			return nil, err
		}
		cfg.Preload = ctl.PreloadList()
	}
	return sys.Spawn(exe, cfg)
}

// passthroughPlan builds an n-trigger plan over the hot function list
// that evaluates on every call but never fires — the Tables 3/4
// methodology ("LFI always passes the call through to the original
// library after evaluating the trigger").
func passthroughPlan(hot []string, n int) *scenario.Plan {
	plan := &scenario.Plan{}
	for i := 0; i < n; i++ {
		plan.Triggers = append(plan.Triggers, scenario.Trigger{
			Function: hot[i%len(hot)],
			Inject:   1_000_000_000 + int32(i), // never reached
			Retval:   "-1",
			Errno:    "EIO",
		})
	}
	return plan
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
