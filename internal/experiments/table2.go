package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/corpus"
	"lfi/internal/profiler"
)

// Table2RowResult is one library's accuracy measurement next to the
// paper's published numbers.
type Table2RowResult struct {
	Library  string
	Platform string
	Score    corpus.Score
	PaperTP  int
	PaperFN  int
	PaperFP  int
	PaperAcc float64
}

// Table2Result reproduces the paper's Table 2 (profiler accuracy against
// documentation on 18 libraries across three platforms) plus the §6.3
// libpcre manual-inspection baseline.
type Table2Result struct {
	Rows []Table2RowResult
	// Pcre is scored against generation ground truth, not docs.
	Pcre Table2RowResult
}

// Table2 generates every corpus library, profiles it with the §3.1
// heuristics enabled, and scores the result against the generated
// documentation, exactly as §6.3 scores LFI against man pages.
func Table2() (*Table2Result, error) {
	res := &Table2Result{}
	for _, row := range corpus.Table2Rows() {
		score, err := scoreAgainstDocs(row.Traits)
		if err != nil {
			return nil, fmt.Errorf("table2: %s/%s: %w", row.Traits.Name, row.Traits.Platform, err)
		}
		res.Rows = append(res.Rows, Table2RowResult{
			Library:  row.Traits.Name,
			Platform: row.Traits.Platform,
			Score:    score,
			PaperTP:  row.PaperTP, PaperFN: row.PaperFN, PaperFP: row.PaperFP,
			PaperAcc: row.PaperAccuracy(),
		})
	}

	// libpcre: "we performed such an analysis on a small library and
	// found the accuracy to be 84% (52 TP, 10 FN, 0 FP)" — scored
	// against code ground truth.
	prow := corpus.PcreSpec()
	lib, err := corpus.Generate(prow.Traits)
	if err != nil {
		return nil, err
	}
	p, err := profileLib(lib)
	if err != nil {
		return nil, err
	}
	res.Pcre = Table2RowResult{
		Library:  prow.Traits.Name,
		Platform: prow.Traits.Platform,
		Score:    corpus.Compare(p, lib.Truth),
		PaperTP:  prow.PaperTP, PaperFN: prow.PaperFN, PaperFP: prow.PaperFP,
		PaperAcc: prow.PaperAccuracy(),
	}
	return res, nil
}

func scoreAgainstDocs(tr corpus.Traits) (corpus.Score, error) {
	lib, err := corpus.Generate(tr)
	if err != nil {
		return corpus.Score{}, err
	}
	found, err := profileLib(lib)
	if err != nil {
		return corpus.Score{}, err
	}
	return corpus.Compare(found, lib.DocumentedItems()), nil
}

func profileLib(lib *corpus.Library) (map[corpus.Item]bool, error) {
	pr := profiler.New(profiler.Options{DropZeroReturns: true, DropPredicates: true})
	if err := pr.AddLibrary(lib.Object); err != nil {
		return nil, err
	}
	p, err := pr.ProfileLibrary(lib.Traits.Name)
	if err != nil {
		return nil, err
	}
	return corpus.ProfiledItems(p), nil
}

// Render prints the paper-style rows with measured and published values.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 — profiler accuracy vs documentation (measured | paper)\n")
	b.WriteString("Library            Platform  Acc      TPs        FNs      FPs\n")
	row := func(rr Table2RowResult) {
		fmt.Fprintf(&b, "%-18s %-9s %3.0f%%|%3.0f%% %5d|%-5d %3d|%-3d %3d|%-3d\n",
			rr.Library, rr.Platform,
			100*rr.Score.Accuracy(), 100*rr.PaperAcc,
			rr.Score.TP, rr.PaperTP, rr.Score.FN, rr.PaperFN, rr.Score.FP, rr.PaperFP)
	}
	for _, rr := range r.Rows {
		row(rr)
	}
	b.WriteString("--- manual-inspection baseline (vs code ground truth) ---\n")
	row(r.Pcre)
	return b.String()
}

// MeanAccuracy returns the measured mean accuracy across rows — the
// paper's "on the order of 80%-90% accuracy".
func (r *Table2Result) MeanAccuracy() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, rr := range r.Rows {
		sum += rr.Score.Accuracy()
	}
	return sum / float64(len(r.Rows))
}
