package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/corpus"
	"lfi/internal/profile"
	"lfi/internal/profiler"
)

// Table1Result reproduces the paper's Table 1: how library functions
// expose error details, as a joint distribution of (return type from
// header analysis) × (side channel from LFI binary analysis).
type Table1Result struct {
	// Cells[returnType][channel] is the fraction of all analysed
	// functions. Return types: "void", "scalar", "pointer"; channels:
	// "none", "global", "argument".
	Cells map[string]map[string]float64
	Total int
	// Paper holds the published cell values for side-by-side rendering.
	Paper map[string]map[string]float64
}

// paperTable1 is the published Table 1.
func paperTable1() map[string]map[string]float64 {
	return map[string]map[string]float64{
		"void":    {"none": 0.230, "global": 0.000, "argument": 0.000},
		"scalar":  {"none": 0.565, "global": 0.010, "argument": 0.035},
		"pointer": {"none": 0.116, "global": 0.010, "argument": 0.034},
	}
}

// Table1 generates a corpus with the paper's function mix, profiles it,
// and classifies every exported function by return type (from its man
// page synopsis, the ELSA-header-analysis analogue) and side channel
// (from the profiler's side-effect analysis). The paper analysed >20,000
// Ubuntu library functions; numFuncs scales the corpus.
func Table1(numFuncs int, seed int64) (*Table1Result, error) {
	lib, err := corpus.Generate(corpus.Table1Spec(numFuncs, seed))
	if err != nil {
		return nil, err
	}
	pr := profiler.New(profiler.Options{DropZeroReturns: true, DropPredicates: true})
	if err := pr.AddLibrary(lib.Object); err != nil {
		return nil, err
	}
	p, err := pr.ProfileLibrary(lib.Traits.Name)
	if err != nil {
		return nil, err
	}

	res := &Table1Result{
		Cells: map[string]map[string]float64{
			"void":    {"none": 0, "global": 0, "argument": 0},
			"scalar":  {"none": 0, "global": 0, "argument": 0},
			"pointer": {"none": 0, "global": 0, "argument": 0},
		},
		Paper: paperTable1(),
	}

	for fnName, page := range lib.Docs.Pages {
		rt := classifyReturnType(page.ReturnType())
		ch := classifyChannel(p, fnName)
		res.Cells[rt][ch]++
		res.Total++
	}
	if res.Total > 0 {
		for _, row := range res.Cells {
			for k := range row {
				row[k] /= float64(res.Total)
			}
		}
	}
	return res, nil
}

func classifyReturnType(t string) string {
	switch t {
	case "void":
		return "void"
	case "int*", "byte*":
		return "pointer"
	default:
		return "scalar"
	}
}

// classifyChannel maps the profiler's side-effect findings for one
// function onto Table 1's columns.
func classifyChannel(p *profile.Profile, fn string) string {
	f, ok := p.Lookup(fn)
	if !ok {
		return "none"
	}
	channel := "none"
	for _, ec := range f.ErrorCodes {
		for _, se := range ec.SideEffects {
			switch se.Type {
			case profile.SideEffectTLS, profile.SideEffectGlobal:
				channel = "global"
			case profile.SideEffectArgument:
				if channel == "none" {
					channel = "argument"
				}
			}
		}
	}
	return channel
}

// NoSideEffectFraction returns the fraction of functions with no side
// channel — the paper's headline ">90% of the exported functions in Linux
// shared libraries do not have side effects".
func (r *Table1Result) NoSideEffectFraction() float64 {
	return r.Cells["void"]["none"] + r.Cells["scalar"]["none"] + r.Cells["pointer"]["none"]
}

// Render prints the table with paper values alongside.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — error-detail side channels (%d functions analysed)\n", r.Total)
	b.WriteString("Return    None            Global location  Via arguments\n")
	b.WriteString("type      meas.  paper    meas.  paper     meas.  paper\n")
	for _, rt := range []string{"void", "scalar", "pointer"} {
		fmt.Fprintf(&b, "%-9s %-6s %-8s %-6s %-9s %-6s %s\n", rt,
			pct(r.Cells[rt]["none"]), pct(r.Paper[rt]["none"]),
			pct(r.Cells[rt]["global"]), pct(r.Paper[rt]["global"]),
			pct(r.Cells[rt]["argument"]), pct(r.Paper[rt]["argument"]))
	}
	fmt.Fprintf(&b, "no side effects overall: %s (paper: >90%%)\n", pct(r.NoSideEffectFraction()))
	return b.String()
}
