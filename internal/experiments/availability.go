package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"lfi/internal/apps"
	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// The availability comparison pair: the paper's robustness question
// asked of a *service* instead of a process. minidb is a WAL-backed
// transaction server whose append path retries a failed write (EINTR
// retry, then reopen); minidb-nr is the same server with the retry
// compiled out (it gives the WAL up on the first error). Both are
// driven by a generated traffic client that pumps phased requests —
// warmup, steady state, post-fault probe — through the kernel's
// loopback sockets, and every run is classified by what the service
// did, not how the process exited: recovered, degraded, lost, wedged
// or crashed.

// AvailabilityServer is one server guest's availability matrix.
type AvailabilityServer struct {
	Name  string
	Sweep *core.SweepResult
}

// AvailabilityResult compares service availability across fault models
// for the retrying and non-retrying servers.
type AvailabilityResult struct {
	Workers  int
	Snapshot bool
	Servers  []AvailabilityServer
}

// availabilityTarget builds the campaign for one server guest: libc +
// server + generated traffic driver, classified by the driver's phase
// counters. The profile is restricted to the two server-side calls
// every request exercises exactly once — the connection accept and the
// WAL append — so a <calls after=N> window lands mid-steady-state.
func availabilityTarget(server string) (core.CampaignConfig, profile.Set, error) {
	lc, err := libc.Compile()
	if err != nil {
		return core.CampaignConfig{}, nil, err
	}
	client := apps.AvailClientName(server)
	progs := []*obj.File{lc}
	for _, n := range []string{server, client} {
		f, err := apps.Compile(n)
		if err != nil {
			return core.CampaignConfig{}, nil, err
		}
		progs = append(progs, f)
	}
	set := profile.Set{libc.Name: &profile.Profile{
		Library: libc.Name,
		Functions: []profile.Function{
			{Name: "accept", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
			{Name: "write", ErrorCodes: []profile.ErrorCode{{Retval: -1}}},
		},
	}}
	cfg := core.CampaignConfig{
		Programs:   progs,
		Executable: client,
		Files:      apps.WWWFiles(),
		Avail:      &core.AvailSpec{Client: client},
	}
	return cfg, set, nil
}

// Availability sweeps the retrying and non-retrying minidb servers
// under the availability fault matrix — per profiled function one
// one-shot errno fault plus the stateful models (moderate delay,
// budget-length delay, persistent disk exhaustion, fd-table
// saturation), each windowed to fire mid-steady-state — and records
// the availability class and per-phase service counts of every run.
// Deterministic at any worker count, on either executor.
func Availability(workers int, snapshot bool) (*AvailabilityResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &AvailabilityResult{Workers: workers, Snapshot: snapshot}
	for _, server := range []string{"minidb", "minidb-nr"} {
		cfg, set, err := availabilityTarget(server)
		if err != nil {
			return nil, err
		}
		exps := core.AvailabilityExperiments(set, apps.AvailAfter)
		sr, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{
			Workers: workers, Snapshot: snapshot,
		})
		if err != nil {
			return nil, fmt.Errorf("availability %s: %w", server, err)
		}
		res.Servers = append(res.Servers, AvailabilityServer{Name: server, Sweep: sr})
	}
	return res, nil
}

// Class returns the availability class of one (server, function, fault)
// cell; fault "errno" selects the one-shot error-return experiment.
func (r *AvailabilityResult) Class(server, function, fault string) core.AvailClass {
	for _, s := range r.Servers {
		if s.Name != server {
			continue
		}
		for _, e := range s.Sweep.Entries {
			f := e.Fault
			if f == "" {
				f = "errno"
			}
			if e.Function == function && f == fault {
				return e.Avail
			}
		}
	}
	return ""
}

// Classes tallies one server's availability classes across its matrix.
func (r *AvailabilityResult) Classes(server string) map[core.AvailClass]int {
	out := map[core.AvailClass]int{}
	for _, s := range r.Servers {
		if s.Name != server {
			continue
		}
		for _, e := range s.Sweep.Entries {
			out[e.Avail]++
		}
	}
	return out
}

// Render prints the per-server availability matrices and the
// comparison verdict: what the retry buys (and fails to buy) in
// service-level terms.
func (r *AvailabilityResult) Render() string {
	var b strings.Builder
	mode := "parallel sweep"
	if r.Snapshot {
		mode = "snapshot-restore sweep"
	}
	fmt.Fprintf(&b, "availability under fault: retrying vs non-retrying server (%s, %d workers)\n",
		mode, r.Workers)
	for _, s := range r.Servers {
		fmt.Fprintf(&b, "--- %s: availability matrix ---\n", s.Name)
		b.WriteString(s.Sweep.Render())
		tally := r.Classes(s.Name)
		classes := make([]string, 0, len(tally))
		for c := range tally {
			classes = append(classes, string(c))
		}
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, c := range classes {
			parts = append(parts, fmt.Sprintf("%s=%d", c, tally[core.AvailClass(c)]))
		}
		fmt.Fprintf(&b, "classes: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, "write/errno: %s=%s %s=%s — the one-shot fault the WAL retry absorbs and the non-retrying server never recovers from\n",
		r.Servers[0].Name, r.Class(r.Servers[0].Name, "write", "errno"),
		r.Servers[1].Name, r.Class(r.Servers[1].Name, "write", "errno"))
	fmt.Fprintf(&b, "write/exhaust=disk:after=0: %s=%s — persistent exhaustion defeats the retry either way\n",
		r.Servers[0].Name, r.Class(r.Servers[0].Name, "write", "exhaust=disk:after=0"))
	fmt.Fprintf(&b, "write/delay=200000000: %s=%s — a stalled call wedges the service either way\n",
		r.Servers[0].Name, r.Class(r.Servers[0].Name, "write", "delay=200000000"))
	return b.String()
}
