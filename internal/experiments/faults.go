package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// The fault-model comparison pair: two journal writers that differ only
// in whether a failed write is retried once. A one-shot error-return
// fault (the paper's model) is exactly what a single retry absorbs; a
// stateful degradation — a disk that stays full, a call that never
// returns — is not. Sweeping both apps under both models measures how
// much the error-return matrix under-approximates stateful failures.
const (
	retryingAppSrc = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int write(int fd, byte *buf, int n);
extern tls int errno;
int main(void) {
  int fd;
  int i;
  int n;
  fd = open("/journal", 65, 0);
  if (fd < 0) { return 3; }
  i = 0;
  while (i < 4) {
    n = write(fd, "record--", 8);
    if (n < 8) { n = write(fd, "record--", 8); }   // retry once
    if (n < 8) { close(fd); return 4; }
    i = i + 1;
  }
  close(fd);
  return 0;
}
`
	checkingAppSrc = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int write(int fd, byte *buf, int n);
extern tls int errno;
int main(void) {
  int fd;
  int i;
  fd = open("/journal", 65, 0);
  if (fd < 0) { return 3; }
  i = 0;
  while (i < 4) {
    if (write(fd, "record--", 8) < 8) { close(fd); return 4; }
    i = i + 1;
  }
  close(fd);
  return 0;
}
`
)

// FaultModelApp is one application swept under both fault models.
type FaultModelApp struct {
	Name        string
	Errno       *core.SweepResult // one-shot error-return matrix
	Degradation *core.SweepResult // delay + exhaustion matrix
}

// FaultModelsResult compares the error-return fault model against the
// stateful degradation models over the same applications and profile.
type FaultModelsResult struct {
	Workers  int
	Snapshot bool
	Apps     []FaultModelApp
}

// FaultModels sweeps the retrying and checking journal writers under
// (a) the one-shot error-return matrix (core.PlanExperiments) and
// (b) the stateful degradation matrix (core.DegradationExperiments:
// latency past the budget, disk exhaustion, fd pressure), on the same
// restricted libc profile. Both sweeps run on the parallel scheduler;
// with snapshot set they restore from a per-app snapshot with prefix
// memoization. Results are deterministic at any worker count.
func FaultModels(workers int, snapshot bool) (*FaultModelsResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lc, err := libc.Compile()
	if err != nil {
		return nil, err
	}
	l := core.New(core.Options{Heuristics: true})
	if err := l.AddKernelImage(); err != nil {
		return nil, err
	}
	if err := l.AddLibrary(lc); err != nil {
		return nil, err
	}
	p, err := l.ProfileLibrary(libc.Name)
	if err != nil {
		return nil, err
	}
	// Restrict both matrices to the calls these programs make.
	kept := p.Functions[:0]
	for _, fn := range p.Functions {
		switch fn.Name {
		case "open", "write", "close":
			kept = append(kept, fn)
		}
	}
	p.Functions = kept
	set := profile.Set{libc.Name: p}

	res := &FaultModelsResult{Workers: workers, Snapshot: snapshot}
	for _, app := range []struct{ name, src string }{
		{"retrying", retryingAppSrc},
		{"checking", checkingAppSrc},
	} {
		exe, err := minic.Compile(app.name, app.src, obj.Executable)
		if err != nil {
			return nil, err
		}
		cfg := core.CampaignConfig{
			Programs:   []*obj.File{lc, exe},
			Executable: app.name,
		}
		opts := core.SweepOptions{Workers: workers, Snapshot: snapshot}
		errnoRes, err := core.RunExperiments(cfg, core.PlanExperiments(set), 0, opts)
		if err != nil {
			return nil, err
		}
		degrRes, err := core.RunExperiments(cfg, core.DegradationExperiments(set), 0, opts)
		if err != nil {
			return nil, err
		}
		res.Apps = append(res.Apps, FaultModelApp{
			Name: app.name, Errno: errnoRes, Degradation: degrRes,
		})
	}
	return res, nil
}

// Outcome returns the swept outcome of one (app, function) cell under
// the named model ("errno" or a degradation fault label); "" if absent.
func (r *FaultModelsResult) Outcome(app, function, fault string) core.Outcome {
	for _, a := range r.Apps {
		if a.Name != app {
			continue
		}
		entries := a.Errno.Entries
		if fault != "errno" {
			entries = a.Degradation.Entries
		}
		for _, e := range entries {
			if e.Function != function {
				continue
			}
			if fault == "errno" || e.Fault == fault {
				return e.Outcome
			}
		}
	}
	return ""
}

// Masked counts the cells where the error-return model reports handled
// but some degradation of the same function does not — the stateful
// failures a one-shot errno sweep under-approximates.
func (r *FaultModelsResult) Masked(app string) int {
	masked := 0
	for _, a := range r.Apps {
		if a.Name != app {
			continue
		}
		tolerated := map[string]bool{}
		for _, e := range a.Errno.Entries {
			if e.Outcome == core.OutcomeHandled {
				tolerated[e.Function] = true
			}
		}
		counted := map[string]bool{}
		for _, e := range a.Degradation.Entries {
			if tolerated[e.Function] && !counted[e.Function] &&
				e.Outcome != core.OutcomeHandled && e.Outcome != core.OutcomeNotTriggered {
				counted[e.Function] = true
				masked++
			}
		}
	}
	return masked
}

// Render prints both matrices per app and the comparison verdict.
func (r *FaultModelsResult) Render() string {
	var b strings.Builder
	mode := "parallel sweep"
	if r.Snapshot {
		mode = "snapshot-restore sweep"
	}
	fmt.Fprintf(&b, "fault-model comparison: error-return vs stateful degradation (%s, %d workers)\n",
		mode, r.Workers)
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "--- %s: error-return matrix ---\n", a.Name)
		b.WriteString(a.Errno.Render())
		fmt.Fprintf(&b, "--- %s: degradation matrix ---\n", a.Name)
		b.WriteString(a.Degradation.Render())
	}
	for _, a := range r.Apps {
		fmt.Fprintf(&b, "masked by one-shot errno model: %s=%d function(s)\n",
			a.Name, r.Masked(a.Name))
	}
	return b.String()
}
