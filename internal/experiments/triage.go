package experiments

import (
	"fmt"
	"strings"

	"lfi/internal/campaign"
	"lfi/internal/core"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// TriageResult is the persistent-campaign walkthrough: a sweep killed
// halfway and resumed from its store, the store's crash records deduped
// into ranked clusters, and an adaptive escalation round minted from
// the single-fault survivors.
type TriageResult struct {
	Dir     string
	Workers int
	// PartialEntries is how far the "killed" first invocation got
	// (truncated by its max-crashes budget) and ResumedEntries the full
	// matrix the resumed invocation rendered.
	PartialEntries, ResumedEntries int
	// ResumeIdentical records the acceptance check: the resumed report
	// is byte-identical to a fresh full sweep.
	ResumeIdentical bool
	First           *core.SweepResult
	Clusters        []campaign.Cluster
	Survivors       int
	Second          *core.SweepResult
}

// Triage runs the campaign-store workflow against the §2 sloppy target:
// sweep → kill at the first crash → resume byte-identically → cluster
// crashes by stack hash → escalate survivors pairwise. dir is the store
// directory (state persists there across calls — a second invocation
// resumes instantly); workers sizes the pool.
func Triage(dir string, workers int) (*TriageResult, error) {
	lc, err := libc.Compile()
	if err != nil {
		return nil, err
	}
	exe, err := minic.Compile("sloppy", sloppyAppSrc, obj.Executable)
	if err != nil {
		return nil, err
	}
	l := core.New(core.Options{Heuristics: true})
	if err := l.AddKernelImage(); err != nil {
		return nil, err
	}
	if err := l.AddLibrary(lc); err != nil {
		return nil, err
	}
	p, err := l.ProfileLibrary(libc.Name)
	if err != nil {
		return nil, err
	}
	kept := p.Functions[:0]
	for _, fn := range p.Functions {
		switch fn.Name {
		case "open", "read", "close", "malloc":
			kept = append(kept, fn)
		}
	}
	p.Functions = kept
	set := profile.Set{libc.Name: p}

	cfg := core.CampaignConfig{
		Programs:   []*obj.File{lc, exe},
		Executable: "sloppy",
		Files:      map[string][]byte{"/etc/conf": []byte("mode=safe\n")},
	}
	exps := core.PlanExperiments(set)
	res := &TriageResult{Dir: dir, Workers: workers}

	// The reference: a fresh, store-less full sweep.
	fresh, err := core.RunExperiments(cfg, exps, 0, core.SweepOptions{Workers: workers})
	if err != nil {
		return nil, err
	}

	// Round one, invocation one: "killed" at the first crash, results
	// persisted live. Resume is on so a repeated walkthrough against an
	// existing store serves this phase entirely from disk.
	store, err := campaign.Open(dir)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	partial, err := campaign.Sweep(cfg, exps, 0,
		core.SweepOptions{Workers: workers, MaxCrashes: 1}, store, true)
	if err != nil {
		return nil, err
	}
	res.PartialEntries = len(partial.Entries)

	// Invocation two: resume — completed keys come from the store, the
	// remainder runs, and the report must match the fresh sweep byte
	// for byte.
	first, err := campaign.Sweep(cfg, exps, 0,
		core.SweepOptions{Workers: workers}, store, true)
	if err != nil {
		return nil, err
	}
	res.First = first
	res.ResumedEntries = len(first.Entries)
	res.ResumeIdentical = first.Render() == fresh.Render()

	// Triage: cluster the store's crashes by stack hash.
	res.Clusters = campaign.Triage(store.Records())

	// Escalation: survivors (injected but tolerated) pair up into
	// two-fault plans for the second round, persisted in the same store.
	surv := campaign.Survivors(exps, store.Completed())
	res.Survivors = len(surv)
	second := campaign.Escalate(surv, set, 0)
	if len(second) > 0 {
		res.Second, err = campaign.Sweep(cfg, second, 0,
			core.SweepOptions{Workers: workers}, store, true)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render prints the walkthrough.
func (r *TriageResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "persistent campaign walkthrough (store %s, %d workers)\n", r.Dir, r.Workers)
	fmt.Fprintf(&b, "killed after %d/%d experiments; resume byte-identical to fresh: %v\n",
		r.PartialEntries, r.ResumedEntries, r.ResumeIdentical)
	b.WriteString(r.First.Render())
	b.WriteString(campaign.RenderClusters(r.Clusters))
	fmt.Fprintf(&b, "escalation: %d single-fault survivor(s)\n", r.Survivors)
	if r.Second != nil {
		b.WriteString(r.Second.Render())
	}
	return b.String()
}
