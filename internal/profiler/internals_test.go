package profiler_test

import (
	"strings"
	"testing"

	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profiler"
)

// TestRecursionDepthBound: dependent-function recursion stops at
// MaxDepth; deep chains beyond it contribute no constants instead of
// looping.
func TestRecursionDepthBound(t *testing.T) {
	src := `
static int d0(void) { return -77; }
static int d1(void) { return d0(); }
static int d2(void) { return d1(); }
static int d3(void) { return d2(); }
static int d4(void) { return d3(); }
int deep(int x) {
  if (x < 0) { return d4(); }
  return 0;
}`
	lib, err := minic.Compile("deep.so", src, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	// Depth 8 (default) reaches d0's constant through five frames.
	pr := profiler.New(profiler.Options{})
	if err := pr.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	p, err := pr.ProfileLibrary("deep.so")
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := p.Lookup("deep")
	found := false
	for _, v := range fn.Retvals() {
		if v == -77 {
			found = true
		}
	}
	if !found {
		t.Errorf("deep chain constant not found at default depth: %v", fn.Retvals())
	}

	// Depth 2 cannot reach it.
	pr2 := profiler.New(profiler.Options{MaxDepth: 2})
	if err := pr2.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	p2, err := pr2.ProfileLibrary("deep.so")
	if err != nil {
		t.Fatal(err)
	}
	fn2, _ := p2.Lookup("deep")
	for _, v := range fn2.Retvals() {
		if v == -77 {
			t.Errorf("depth-2 analysis should not reach d0: %v", fn2.Retvals())
		}
	}
}

// TestMutualRecursionTerminates: cycles between dependent functions are
// cut by the memo table's in-progress guard.
func TestMutualRecursionTerminates(t *testing.T) {
	src := `
int ping(int x);
int pong(int x) {
  if (x == 0) { return -5; }
  return ping(x - 1);
}
int ping(int x) {
  if (x == 0) { return -6; }
  return pong(x - 1);
}`
	// MiniC has no forward declarations; restructure with one direction.
	src = `
static int base(int x) { if (x == 0) { return -5; } return x; }
int pong(int x) {
  if (x < 0) { return pong(x + 1); }
  return base(x);
}`
	lib, err := minic.Compile("mut.so", src, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(profiler.Options{})
	if err := pr.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	p, err := pr.ProfileLibrary("mut.so") // must terminate
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := p.Lookup("pong")
	found := false
	for _, v := range fn.Retvals() {
		if v == -5 {
			found = true
		}
	}
	if !found {
		t.Errorf("self-recursive function lost base constant: %v", fn.Retvals())
	}
}

// TestMemoisationStability: profiling the same library twice in one
// profiler yields identical output and reuses dependent analyses.
func TestMemoisationStability(t *testing.T) {
	pr := newLibcProfiler(t, profiler.Options{DropZeroReturns: true})
	p1, err := pr.ProfileLibrary("libc.so")
	if err != nil {
		t.Fatal(err)
	}
	depsAfterFirst := pr.Stats().DependentsAnalyzed
	p2, err := pr.ProfileLibrary("libc.so")
	if err != nil {
		t.Fatal(err)
	}
	if pr.Stats().DependentsAnalyzed != depsAfterFirst {
		t.Errorf("second pass re-analysed dependents: %d -> %d",
			depsAfterFirst, pr.Stats().DependentsAnalyzed)
	}
	b1, _ := p1.Marshal()
	b2, _ := p2.Marshal()
	if string(b1) != string(b2) {
		t.Error("repeated profiling is not deterministic")
	}
}

// TestVoidFunctionsYieldNoCodes: functions ending with computed stores do
// not contribute phantom return values.
func TestVoidFunctionsYieldNoCodes(t *testing.T) {
	src := `
int sink;
void touch(int a) {
  int t;
  t = a * 3;
  sink = t;
}`
	lib, err := minic.Compile("v.so", src, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(profiler.Options{})
	if err := pr.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	p, err := pr.ProfileLibrary("v.so")
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := p.Lookup("touch")
	if len(fn.ErrorCodes) != 0 {
		t.Errorf("void function reported codes: %v", fn.Retvals())
	}
}

// TestBudgetDiagnostics: budget-limited analyses are never silent —
// MaxStates truncation and MaxDepth cuts each surface a per-function
// diagnostic line and bump the Stats counters.
func TestBudgetDiagnostics(t *testing.T) {
	src := `
static int d0(void) { return -77; }
static int d1(void) { return d0(); }
static int d2(void) { return d1(); }
int deep(int x) {
  if (x < 0) { return d2(); }
  return 0;
}`
	lib, err := minic.Compile("deep.so", src, obj.Library)
	if err != nil {
		t.Fatal(err)
	}

	// A generous budget: complete analysis, no diagnostics.
	clean := profiler.New(profiler.Options{})
	if err := clean.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.ProfileLibrary("deep.so"); err != nil {
		t.Fatal(err)
	}
	if d := clean.Diagnostics(); len(d) != 0 {
		t.Errorf("complete analysis emitted diagnostics: %v", d)
	}
	if s := clean.Stats(); s.Truncated != 0 || s.DepthLimited != 0 {
		t.Errorf("complete analysis counted budget cuts: %+v", s)
	}

	// MaxStates=1 truncates the product-graph search for every function.
	tight := profiler.New(profiler.Options{MaxStates: 1})
	if err := tight.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := tight.ProfileLibrary("deep.so"); err != nil {
		t.Fatal(err)
	}
	if s := tight.Stats(); s.Truncated == 0 {
		t.Errorf("MaxStates=1 not counted as truncation: %+v", s)
	}
	diags := tight.Diagnostics()
	if len(diags) == 0 {
		t.Fatal("MaxStates truncation produced no diagnostics")
	}
	foundDeep := false
	for _, d := range diags {
		if strings.Contains(d, "deep.so.deep") && strings.Contains(d, "truncated") {
			foundDeep = true
		}
	}
	if !foundDeep {
		t.Errorf("no truncation diagnostic names deep.so.deep: %v", diags)
	}

	// MaxDepth=2 cuts the dependent chain; the cut is attributed to the
	// exported function whose analysis triggered it.
	shallow := profiler.New(profiler.Options{MaxDepth: 2})
	if err := shallow.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := shallow.ProfileLibrary("deep.so"); err != nil {
		t.Fatal(err)
	}
	if s := shallow.Stats(); s.DepthLimited == 0 {
		t.Errorf("MaxDepth cut not counted: %+v", s)
	}
	foundDepth := false
	for _, d := range shallow.Diagnostics() {
		if strings.Contains(d, "deep.so.deep") && strings.Contains(d, "MaxDepth=2") {
			foundDepth = true
		}
	}
	if !foundDepth {
		t.Errorf("no depth diagnostic names deep.so.deep: %v", shallow.Diagnostics())
	}
}
