package profiler_test

import (
	"testing"

	"lfi/internal/kernel"
	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/profile"
	"lfi/internal/profiler"
)

// newLibcProfiler builds a profiler loaded with the synthetic libc and the
// kernel image.
func newLibcProfiler(t *testing.T, opts profiler.Options) *profiler.Profiler {
	t.Helper()
	pr := profiler.New(opts)
	lc, err := libc.Compile()
	if err != nil {
		t.Fatalf("libc: %v", err)
	}
	img, err := kernel.Image()
	if err != nil {
		t.Fatalf("kernel image: %v", err)
	}
	if err := pr.AddLibrary(lc); err != nil {
		t.Fatal(err)
	}
	if err := pr.AddLibrary(img); err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestCloseProfileMatchesPaper reproduces the §3.3 example: close returns
// -1 and exposes errno side effects -EBADF (-9), -EIO (-5), -EINTR (-4)
// through the TLS channel.
func TestCloseProfileMatchesPaper(t *testing.T) {
	pr := newLibcProfiler(t, profiler.Options{DropZeroReturns: true})
	p, err := pr.ProfileLibrary(libc.Name)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := p.Lookup("close")
	if !ok {
		t.Fatal("close not profiled")
	}
	if got := fn.Retvals(); len(got) != 1 || got[0] != -1 {
		t.Fatalf("close retvals = %v, want [-1]", got)
	}
	var values []int32
	for _, se := range fn.ErrorCodes[0].SideEffects {
		if se.Type != profile.SideEffectTLS {
			t.Errorf("side effect type = %s, want TLS", se.Type)
		}
		if se.Module != libc.Name {
			t.Errorf("side effect module = %q", se.Module)
		}
		if se.Op != "neg" {
			t.Errorf("side effect op = %q, want neg", se.Op)
		}
		values = append(values, se.Value)
	}
	want := map[int32]bool{-kernel.EBADF: true, -kernel.EIO: true, -kernel.EINTR: true}
	if len(values) != len(want) {
		t.Fatalf("side effect values = %v, want -9,-5,-4", values)
	}
	for _, v := range values {
		if !want[v] {
			t.Errorf("unexpected side effect value %d", v)
		}
	}
	// Applied() must negate: the injector sets errno = EBADF etc.
	for _, se := range fn.ErrorCodes[0].SideEffects {
		if se.Applied() != -se.Value {
			t.Errorf("Applied() = %d for value %d", se.Applied(), se.Value)
		}
	}
}

// TestMallocProfile: malloc returns NULL (0) with direct errno constants
// EINVAL and ENOMEM.
func TestMallocProfile(t *testing.T) {
	pr := newLibcProfiler(t, profiler.Options{})
	p, err := pr.ProfileLibrary(libc.Name)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := p.Lookup("malloc")
	if !ok {
		t.Fatal("malloc not profiled")
	}
	var zeroEC *profile.ErrorCode
	for i := range fn.ErrorCodes {
		if fn.ErrorCodes[i].Retval == 0 {
			zeroEC = &fn.ErrorCodes[i]
		}
	}
	if zeroEC == nil {
		t.Fatalf("malloc has no NULL return: %v", fn.Retvals())
	}
	seen := map[int32]bool{}
	for _, se := range zeroEC.SideEffects {
		if se.Type == profile.SideEffectTLS {
			seen[se.Applied()] = true
		}
	}
	if !seen[kernel.EINVAL] || !seen[kernel.ENOMEM] {
		t.Errorf("malloc errno side effects = %v, want EINVAL and ENOMEM", seen)
	}
}

// TestKernelPropagation: read's profile includes kernel-originated error
// codes (the libc wrapper pattern recursing into the kernel image).
func TestKernelPropagation(t *testing.T) {
	pr := newLibcProfiler(t, profiler.Options{DropZeroReturns: true})
	p, err := pr.ProfileLibrary(libc.Name)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := p.Lookup("read")
	if !ok {
		t.Fatal("read not profiled")
	}
	rv := map[int32]bool{}
	for _, v := range fn.Retvals() {
		rv[v] = true
	}
	if !rv[-1] {
		t.Errorf("read should return -1; got %v", fn.Retvals())
	}
	// The errno side effects on -1 must cover the kernel's read errnos.
	var ec *profile.ErrorCode
	for i := range fn.ErrorCodes {
		if fn.ErrorCodes[i].Retval == -1 {
			ec = &fn.ErrorCodes[i]
		}
	}
	if ec == nil {
		t.Fatal("no -1 error code entry")
	}
	applied := map[int32]bool{}
	for _, se := range ec.SideEffects {
		applied[se.Applied()] = true
	}
	spec, _ := kernel.SpecByNum(kernel.SysRead)
	for _, e := range spec.Errnos {
		if !applied[e] {
			t.Errorf("read missing errno %s", kernel.ErrnoName(e))
		}
	}
}

// TestStrippedLibraryProfiles verifies profiling works without local
// symbols, as the paper requires.
func TestStrippedLibraryProfiles(t *testing.T) {
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	img, err := kernel.Image()
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(profiler.Options{DropZeroReturns: true})
	if err := pr.AddLibrary(lc.Strip()); err != nil {
		t.Fatal(err)
	}
	if err := pr.AddLibrary(img); err != nil {
		t.Fatal(err)
	}
	p, err := pr.ProfileLibrary(libc.Name)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := p.Lookup("close")
	if !ok {
		t.Fatal("close not profiled on stripped lib")
	}
	if got := fn.Retvals(); len(got) != 1 || got[0] != -1 {
		t.Errorf("stripped close retvals = %v", got)
	}
}

// TestHeuristicZeroReturns: heuristic 1 removes 0 only when other
// constants exist.
func TestHeuristicZeroReturns(t *testing.T) {
	src := `
int both(int x) {
  if (x < 0) { return -1; }
  return 0;
}
int onlyzero(int x) {
  return 0;
}
`
	lib, err := minic.Compile("h1.so", src, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		drop     bool
		wantBoth []int32
		wantZero []int32
	}{
		{drop: false, wantBoth: []int32{-1, 0}, wantZero: []int32{0}},
		{drop: true, wantBoth: []int32{-1}, wantZero: []int32{0}},
	} {
		pr := profiler.New(profiler.Options{DropZeroReturns: tc.drop})
		if err := pr.AddLibrary(lib); err != nil {
			t.Fatal(err)
		}
		p, err := pr.ProfileLibrary("h1.so")
		if err != nil {
			t.Fatal(err)
		}
		bothFn, _ := p.Lookup("both")
		if got := bothFn.Retvals(); !equalI32(got, tc.wantBoth) {
			t.Errorf("drop=%v: both retvals = %v, want %v", tc.drop, got, tc.wantBoth)
		}
		zeroFn, _ := p.Lookup("onlyzero")
		if got := zeroFn.Retvals(); !equalI32(got, tc.wantZero) {
			t.Errorf("drop=%v: onlyzero retvals = %v, want %v (lone 0 kept)", tc.drop, got, tc.wantZero)
		}
	}
}

// TestHeuristicPredicates: heuristic 2 removes isFile()-style checkers
// but keeps error-returning functions.
func TestHeuristicPredicates(t *testing.T) {
	src := `
tls int errno;
int isFile(int x) {
  if (x == 3) { return 1; }
  return 0;
}
int withErrno(int x) {
  if (x < 0) { errno = 9; return 1; }
  return 0;
}
`
	lib, err := minic.Compile("h2.so", src, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(profiler.Options{DropPredicates: true})
	if err := pr.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	p, err := pr.ProfileLibrary("h2.so")
	if err != nil {
		t.Fatal(err)
	}
	isf, _ := p.Lookup("isFile")
	if len(isf.ErrorCodes) != 0 {
		t.Errorf("isFile should be eliminated as a predicate; got %v", isf.Retvals())
	}
	we, _ := p.Lookup("withErrno")
	if len(we.ErrorCodes) == 0 {
		t.Error("withErrno should be kept (it has side effects)")
	}
}

// TestIndirectCallsLimitAnalysis: error codes reachable only through an
// indirect call are missed — the paper's false-negative source (§3.1).
func TestIndirectCallsLimitAnalysis(t *testing.T) {
	src := `
static int realErr(void) { return -7; }
int viaIndirect(int x) {
  int fp;
  fp = &realErr;
  if (x < 0) { return fp(); }
  return 0;
}
int viaDirect(int x) {
  if (x < 0) { return realErr(); }
  return 0;
}
`
	lib, err := minic.Compile("ind.so", src, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(profiler.Options{})
	if err := pr.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	p, err := pr.ProfileLibrary("ind.so")
	if err != nil {
		t.Fatal(err)
	}
	dir, _ := p.Lookup("viaDirect")
	found := false
	for _, v := range dir.Retvals() {
		if v == -7 {
			found = true
		}
	}
	if !found {
		t.Errorf("direct call should propagate -7; got %v", dir.Retvals())
	}
	ind, _ := p.Lookup("viaIndirect")
	for _, v := range ind.Retvals() {
		if v == -7 {
			t.Errorf("indirect call should hide -7 (expected FN); got %v", ind.Retvals())
		}
	}
}

// TestCrossLibraryDependency: §3.1 — dependencies recurse into other
// libraries.
func TestCrossLibraryDependency(t *testing.T) {
	base, err := minic.Compile("base.so", `
int base_fail(int x) {
  if (x < 0) { return -33; }
  return 0;
}`, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	top, err := minic.Compile("top.so", `
needs "base.so";
extern int base_fail(int x);
int top_op(int x) {
  return base_fail(x);
}`, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(profiler.Options{})
	if err := pr.AddLibrary(base); err != nil {
		t.Fatal(err)
	}
	if err := pr.AddLibrary(top); err != nil {
		t.Fatal(err)
	}
	p, err := pr.ProfileLibrary("top.so")
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := p.Lookup("top_op")
	got := map[int32]bool{}
	for _, v := range fn.Retvals() {
		got[v] = true
	}
	if !got[-33] {
		t.Errorf("cross-library constant -33 not propagated; got %v", fn.Retvals())
	}
}

// TestOutputArgumentSideEffect: §3.2 — writes through pointer arguments
// are detected as 'argument' side effects.
func TestOutputArgumentSideEffect(t *testing.T) {
	src := `
int withOutArg(int x, int *detail) {
  if (x < 0) {
    *detail = 42;
    return -1;
  }
  return 0;
}`
	lib, err := minic.Compile("oa.so", src, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	pr := profiler.New(profiler.Options{DropZeroReturns: true})
	if err := pr.AddLibrary(lib); err != nil {
		t.Fatal(err)
	}
	p, err := pr.ProfileLibrary("oa.so")
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := p.Lookup("withOutArg")
	if len(fn.ErrorCodes) != 1 || fn.ErrorCodes[0].Retval != -1 {
		t.Fatalf("retvals = %v", fn.Retvals())
	}
	found := false
	for _, se := range fn.ErrorCodes[0].SideEffects {
		if se.Type == profile.SideEffectArgument && se.ArgIdx == 1 && se.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Errorf("argument side effect not found: %+v", fn.ErrorCodes[0].SideEffects)
	}
}

// TestProfileXMLRoundTrip checks the §3.3 XML serialisation.
func TestProfileXMLRoundTrip(t *testing.T) {
	pr := newLibcProfiler(t, profiler.Options{DropZeroReturns: true})
	p, err := pr.ProfileLibrary(libc.Name)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := profile.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.Library != p.Library || len(q.Functions) != len(p.Functions) {
		t.Errorf("round trip: %d funcs vs %d", len(q.Functions), len(p.Functions))
	}
	c1, _ := p.Lookup("close")
	c2, ok := q.Lookup("close")
	if !ok || len(c2.ErrorCodes) != len(c1.ErrorCodes) {
		t.Error("close entry lost in round trip")
	}
}

// TestProfileApplication walks Needed like ldd.
func TestProfileApplication(t *testing.T) {
	pr := newLibcProfiler(t, profiler.Options{DropZeroReturns: true})
	app, err := minic.Compile("app", `
needs "libc.so";
extern int close(int fd);
int main(void) { return close(3); }`, obj.Executable)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.AddLibrary(app); err != nil {
		t.Fatal(err)
	}
	set, err := pr.ProfileApplication("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set[libc.Name]; !ok {
		t.Fatalf("application profile set missing libc: %v", len(set))
	}
	lib, fn, ok := set.FindFunction("close")
	if !ok || lib != libc.Name || len(fn.ErrorCodes) == 0 {
		t.Error("FindFunction(close) failed")
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
