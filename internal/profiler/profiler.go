// Package profiler implements the LFI profiler (DSN'09 §3): static
// analysis of library binaries to extract fault profiles.
//
// For each exported function of a library the profiler:
//
//  1. disassembles the binary and builds the function's CFG (§3.1,
//     Figure 2) — symbols are only needed for the export table, so
//     stripped libraries work;
//  2. runs reverse constant propagation (package dataflow) to find the
//     constant values that can reach the return register, recursing into
//     dependent functions — local, cross-library, and kernel handlers
//     behind SYSCALL instructions (libc wraps the kernel, so the kernel
//     image is analysed too);
//  3. extracts side effects (§3.2): errno-style TLS stores, PIC global
//     stores, and writes through pointers taken from positive
//     frame-pointer offsets (output arguments);
//  4. optionally applies the paper's two unsound filtering heuristics,
//     which are disabled by default exactly as in the paper ("we prefer
//     to risk injecting some non-faults rather than miss valid faults").
//
// The output is a profile.Profile in the paper's XML format.
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"lfi/internal/cfg"
	"lfi/internal/dataflow"
	"lfi/internal/disasm"
	"lfi/internal/kernel"
	"lfi/internal/obj"
	"lfi/internal/profile"
)

// Options configures profiling.
type Options struct {
	// DropZeroReturns enables §3.1 heuristic 1: remove 0-return values
	// from functions with more than one constant return value (a lone 0
	// is likely a NULL-pointer error return and is kept). Unsound;
	// default off.
	DropZeroReturns bool
	// DropPredicates enables §3.1 heuristic 2: eliminate short functions
	// that only return 0 or 1 and have no side effects or dependent
	// calls (isFile()-style predicates). Unsound; default off.
	DropPredicates bool
	// PruneInfeasible enables the symbolic path-feasibility extension
	// the paper leaves as future work (§3.1): origins whose
	// representative path implies an empty argument interval (e.g. a
	// guard a0 > 95 && a0 < 5) are discarded, removing
	// argument-dependent false positives. Unsound like the heuristics;
	// default off.
	PruneInfeasible bool
	// MaxDepth bounds dependent-function recursion (default 8).
	MaxDepth int
	// MaxStates bounds the product-graph search per function.
	MaxStates int
}

// Stats reports work done by the profiler, for the efficiency experiments
// (§6.2).
type Stats struct {
	FunctionsAnalyzed  int
	DependentsAnalyzed int
	StatesExpanded     int
	// Truncated counts analyses (exported or dependent) abandoned at the
	// MaxStates product-graph budget; their profiles may miss error
	// codes.
	Truncated int
	// DepthLimited counts dependent-call resolutions refused at the
	// MaxDepth recursion bound; the affected origins degrade to
	// non-constant.
	DepthLimited int
}

// Profiler analyses a set of libraries (plus the kernel image) and emits
// fault profiles.
type Profiler struct {
	opts  Options
	libs  map[string]*obj.File
	progs map[string]*disasm.Program
	memo  map[memoKey]memoVal
	stats Stats
	diags []string
}

type memoKey struct {
	module string
	off    int32
}

type memoVal struct {
	consts []int32
	done   bool // false while on the recursion stack (cycle guard)
}

// New creates a Profiler.
func New(opts Options) *Profiler {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 8
	}
	return &Profiler{
		opts:  opts,
		libs:  make(map[string]*obj.File),
		progs: make(map[string]*disasm.Program),
		memo:  make(map[memoKey]memoVal),
	}
}

// Stats returns cumulative profiling statistics.
func (pr *Profiler) Stats() Stats { return pr.stats }

// Diagnostics returns one line per exported function whose analysis was
// cut short by a budget — MaxStates truncation of the product-graph
// search, or MaxDepth refusals while resolving its dependent calls. An
// empty slice means every profile is complete with respect to the
// configured budgets. The lines accumulate across ProfileLibrary calls
// in analysis order.
func (pr *Profiler) Diagnostics() []string {
	return append([]string(nil), pr.diags...)
}

// AddLibrary registers (and disassembles) a library so that dependent
// functions in it can be analysed. The kernel image produced by
// kernel.Image() should be added when profiling libc-style wrappers.
func (pr *Profiler) AddLibrary(f *obj.File) error {
	p, err := disasm.Disassemble(f)
	if err != nil {
		return fmt.Errorf("profiler: %w", err)
	}
	pr.libs[f.Name] = f
	pr.progs[f.Name] = p
	return nil
}

// Libraries returns the names of all registered libraries.
func (pr *Profiler) Libraries() []string {
	out := make([]string, 0, len(pr.libs))
	for n := range pr.libs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ProfileLibrary analyses every exported function of the named library
// and returns its fault profile.
func (pr *Profiler) ProfileLibrary(name string) (*profile.Profile, error) {
	f, ok := pr.libs[name]
	if !ok {
		return nil, fmt.Errorf("profiler: library %q not added", name)
	}
	prog := pr.progs[name]
	out := &profile.Profile{Library: name}
	for _, sym := range f.ExportedFuncs() {
		fn, err := pr.profileFunction(prog, name, sym)
		if err != nil {
			return nil, err
		}
		out.Functions = append(out.Functions, fn)
	}
	out.Sort()
	return out, nil
}

// ProfileApplication finds the shared libraries the registered executable
// links against (recursively, like ldd) and profiles each of them. All
// needed libraries must have been added first.
func (pr *Profiler) ProfileApplication(appName string) (profile.Set, error) {
	app, ok := pr.libs[appName]
	if !ok {
		return nil, fmt.Errorf("profiler: application %q not added", appName)
	}
	set := make(profile.Set)
	seen := map[string]bool{appName: true}
	queue := append([]string(nil), app.Needed...)
	for len(queue) > 0 {
		lib := queue[0]
		queue = queue[1:]
		if seen[lib] || lib == kernel.ImageName {
			continue
		}
		seen[lib] = true
		p, err := pr.ProfileLibrary(lib)
		if err != nil {
			return nil, err
		}
		set[lib] = p
		if f, ok := pr.libs[lib]; ok {
			queue = append(queue, f.Needed...)
		}
	}
	return set, nil
}

// profileFunction runs the full §3 pipeline on one exported function.
func (pr *Profiler) profileFunction(prog *disasm.Program, libName string, sym obj.Symbol) (profile.Function, error) {
	out := profile.Function{Name: sym.Name}
	g, err := cfg.Build(prog, sym.Off)
	if err != nil {
		return out, fmt.Errorf("profiler: %s.%s: %w", libName, sym.Name, err)
	}
	an := &dataflow.Analysis{
		Graph:     g,
		Resolver:  &resolver{pr: pr, module: libName, depth: 0},
		MaxStates: pr.opts.MaxStates,
	}
	// Budget diagnostics: capture the truncation counters around the
	// analysis so cuts inside dependent resolutions (which bump the
	// counters from the resolver) are attributed to this exported
	// function.
	depBefore := pr.stats.Truncated
	depthBefore := pr.stats.DepthLimited
	origins := an.ReturnOrigins()
	pr.stats.FunctionsAnalyzed++
	pr.stats.StatesExpanded += an.StatesExpanded()
	depTrunc := pr.stats.Truncated - depBefore
	depthCut := pr.stats.DepthLimited - depthBefore
	var notes []string
	if an.Truncated() {
		pr.stats.Truncated++
		maxStates := pr.opts.MaxStates
		if maxStates <= 0 {
			maxStates = dataflow.DefaultMaxStates
		}
		notes = append(notes, fmt.Sprintf("return-origin search truncated at %d states (MaxStates=%d)",
			an.StatesExpanded(), maxStates))
	}
	if depTrunc > 0 {
		notes = append(notes, fmt.Sprintf("%d dependent analysis(es) truncated", depTrunc))
	}
	if depthCut > 0 {
		notes = append(notes, fmt.Sprintf("%d dependent call(s) cut at MaxDepth=%d", depthCut, pr.opts.MaxDepth))
	}
	if len(notes) > 0 {
		pr.diags = append(pr.diags, fmt.Sprintf("%s.%s: %s — profile may be missing error codes",
			libName, sym.Name, strings.Join(notes, "; ")))
	}

	// Group side effects by return value.
	type entry struct {
		retval int32
		ses    []profile.SideEffect
	}
	byRet := make(map[int32]*entry)
	var order []int32
	hasDependent := false
	for _, o := range origins {
		if o.ViaCall {
			hasDependent = true
		}
		vals := o.Values()
		if len(vals) == 0 {
			continue
		}
		if pr.opts.PruneInfeasible && !an.PathFeasible(o) {
			continue
		}
		ses := pr.convertSideEffects(libName, an.SideEffects(o))
		for _, v := range vals {
			e, ok := byRet[v]
			if !ok {
				e = &entry{retval: v}
				byRet[v] = e
				order = append(order, v)
			}
			e.ses = mergeSideEffects(e.ses, ses)
		}
	}

	// Heuristic 1: drop 0 returns when other constants exist.
	if pr.opts.DropZeroReturns && len(order) > 1 {
		if _, has := byRet[0]; has {
			delete(byRet, 0)
			kept := order[:0]
			for _, v := range order {
				if v != 0 {
					kept = append(kept, v)
				}
			}
			order = kept
		}
	}

	// Heuristic 2: drop isFile()-style predicates entirely: short
	// functions whose constant returns are a subset of {0,1}, with no
	// side effects and no dependent calls.
	if pr.opts.DropPredicates && !hasDependent && len(order) > 0 && len(g.Blocks) <= 6 {
		predicate := true
		for v, e := range byRet {
			if (v != 0 && v != 1) || len(e.ses) > 0 {
				predicate = false
				break
			}
		}
		if predicate {
			return out, nil
		}
	}

	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, v := range order {
		out.ErrorCodes = append(out.ErrorCodes, profile.ErrorCode{
			Retval:      v,
			SideEffects: byRet[v].ses,
		})
	}
	return out, nil
}

func (pr *Profiler) convertSideEffects(libName string, ses []dataflow.SideEffect) []profile.SideEffect {
	var out []profile.SideEffect
	for _, se := range ses {
		switch se.Kind {
		case dataflow.SideEffectTLS, dataflow.SideEffectGlobal:
			typ := profile.SideEffectTLS
			if se.Kind == dataflow.SideEffectGlobal {
				typ = profile.SideEffectGlobal
			}
			if se.Value.FromCallee {
				op := ""
				if se.Value.Negated {
					op = "neg"
				}
				for _, c := range se.Value.Consts {
					if c >= 0 {
						continue // only propagated error constants expose errno details
					}
					out = append(out, profile.SideEffect{
						Type: typ, Module: libName, Offset: se.Off, Op: op, Value: c,
					})
				}
			} else {
				out = append(out, profile.SideEffect{
					Type: typ, Module: libName, Offset: se.Off, Value: se.Value.Const,
				})
			}
		case dataflow.SideEffectArgument:
			if se.Value.FromCallee {
				continue // argument channels record literal detail codes only
			}
			out = append(out, profile.SideEffect{
				Type: profile.SideEffectArgument, ArgIdx: se.ArgIdx,
				Offset: se.Off, Value: se.Value.Const,
			})
		}
	}
	return out
}

func mergeSideEffects(dst, src []profile.SideEffect) []profile.SideEffect {
	have := make(map[profile.SideEffect]bool, len(dst))
	for _, se := range dst {
		have[se] = true
	}
	for _, se := range src {
		if !have[se] {
			have[se] = true
			dst = append(dst, se)
		}
	}
	return dst
}

// ---------------------------------------------------------------------------
// Dependent-function resolution
// ---------------------------------------------------------------------------

// resolver adapts the Profiler to dataflow.Resolver, binding the module
// whose code is being analysed and the current recursion depth.
type resolver struct {
	pr     *Profiler
	module string
	depth  int
}

var _ dataflow.Resolver = (*resolver)(nil)

// ReturnConstants resolves a callee's constant return values (§3.1:
// "dependencies are determined recursively, both within the same library
// and other libraries called by the current one" — plus the kernel).
func (r *resolver) ReturnConstants(ref dataflow.CalleeRef) ([]int32, bool) {
	if r.depth >= r.pr.opts.MaxDepth {
		r.pr.stats.DepthLimited++
		return nil, false
	}
	switch ref.Kind {
	case dataflow.CalleeLocal:
		return r.pr.returnConstants(r.module, ref.Off, r.depth+1)
	case dataflow.CalleeImport:
		mod, off, ok := r.pr.findExport(ref.Name)
		if !ok {
			return nil, false
		}
		return r.pr.returnConstants(mod, off, r.depth+1)
	case dataflow.CalleeSyscall:
		handler, ok := kernel.HandlerSymbol(ref.Syscall)
		if !ok {
			return nil, false
		}
		img, ok := r.pr.libs[kernel.ImageName]
		if !ok {
			return nil, false
		}
		sym, ok := img.LookupExport(handler)
		if !ok {
			return nil, false
		}
		return r.pr.returnConstants(kernel.ImageName, sym.Off, r.depth+1)
	}
	return nil, false
}

// findExport locates an exported function across all added libraries.
func (pr *Profiler) findExport(name string) (string, int32, bool) {
	names := pr.Libraries()
	for _, lib := range names {
		if lib == kernel.ImageName {
			continue
		}
		if sym, ok := pr.libs[lib].LookupExport(name); ok && sym.Kind == obj.SymFunc {
			return lib, sym.Off, true
		}
	}
	return "", 0, false
}

// returnConstants computes (memoised) the constant return values of the
// function at the given module offset.
func (pr *Profiler) returnConstants(module string, off int32, depth int) ([]int32, bool) {
	key := memoKey{module, off}
	if mv, ok := pr.memo[key]; ok {
		if !mv.done {
			return nil, false // recursion cycle: unknown
		}
		return mv.consts, true
	}
	pr.memo[key] = memoVal{}
	prog, ok := pr.progs[module]
	if !ok {
		delete(pr.memo, key)
		return nil, false
	}
	g, err := cfg.Build(prog, off)
	if err != nil {
		pr.memo[key] = memoVal{done: true}
		return nil, true
	}
	an := &dataflow.Analysis{
		Graph:     g,
		Resolver:  &resolver{pr: pr, module: module, depth: depth},
		MaxStates: pr.opts.MaxStates,
	}
	pr.stats.DependentsAnalyzed++
	var consts []int32
	seen := make(map[int32]bool)
	for _, o := range an.ReturnOrigins() {
		for _, v := range o.Values() {
			if !seen[v] {
				seen[v] = true
				consts = append(consts, v)
			}
		}
	}
	pr.stats.StatesExpanded += an.StatesExpanded()
	if an.Truncated() {
		pr.stats.Truncated++
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i] < consts[j] })
	pr.memo[key] = memoVal{consts: consts, done: true}
	return consts, true
}
