// Package cfg constructs per-function control-flow graphs from
// disassembled SIA-32 code.
//
// This is step two of the LFI profiler pipeline (§3.1): for every exported
// function (and, recursively, for the dependent functions it calls) we
// build a CFG like the paper's Figure 2, on which the reverse
// constant-propagation of package dataflow runs.
//
// Construction explores instructions reachable from the function entry, so
// it works on stripped libraries where local function extents are unknown.
// Indirect jumps (OpJmpI) yield blocks without successors — the same CFG
// incompleteness the paper measures at 0.13% of branches and deliberately
// ignores.
package cfg

import (
	"fmt"
	"sort"

	"lfi/internal/disasm"
	"lfi/internal/isa"
)

// Block is a basic block: a maximal straight-line instruction sequence.
type Block struct {
	ID    int
	Start int32 // text offset of the first instruction
	End   int32 // text offset one past the last instruction
	Succs []*Block
	Preds []*Block

	graph *Graph
}

// NumInsts returns the number of instructions in the block.
func (b *Block) NumInsts() int { return int(b.End-b.Start) / isa.Size }

// Inst returns the i-th instruction of the block.
func (b *Block) Inst(i int) isa.Inst {
	in, _ := b.graph.Prog.InstAt(b.Start + int32(i*isa.Size))
	return in
}

// InstOff returns the text offset of the i-th instruction of the block.
func (b *Block) InstOff(i int) int32 { return b.Start + int32(i*isa.Size) }

// Last returns the final instruction of the block.
func (b *Block) Last() isa.Inst { return b.Inst(b.NumInsts() - 1) }

// IsExit reports whether the block ends the function (OpRet or OpHalt).
func (b *Block) IsExit() bool {
	op := b.Last().Op
	return op == isa.OpRet || op == isa.OpHalt
}

// Graph is the CFG of one function.
type Graph struct {
	Entry  *Block
	Blocks []*Block // sorted by Start offset
	Prog   *disasm.Program
	// Incomplete is true when an indirect jump prevented full successor
	// discovery (the paper's §3.1 CFG-incompleteness caveat).
	Incomplete bool

	byStart map[int32]*Block
}

// BlockAt returns the block starting at the given text offset.
func (g *Graph) BlockAt(off int32) (*Block, bool) {
	b, ok := g.byStart[off]
	return b, ok
}

// BlockContaining returns the block whose range covers the given offset.
func (g *Graph) BlockContaining(off int32) (*Block, bool) {
	for _, b := range g.Blocks {
		if off >= b.Start && off < b.End {
			return b, true
		}
	}
	return nil, false
}

// ExitBlocks returns the blocks ending in OpRet or OpHalt.
func (g *Graph) ExitBlocks() []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.IsExit() {
			out = append(out, b)
		}
	}
	return out
}

// Build constructs the CFG of the function whose entry is at text offset
// entry. It explores only instructions reachable from the entry.
func Build(p *disasm.Program, entry int32) (*Graph, error) {
	if _, ok := p.InstAt(entry); !ok {
		return nil, fmt.Errorf("cfg: entry offset %#x out of range", entry)
	}

	// Phase 1: discover reachable instructions and block leaders.
	reachable := make(map[int32]bool)
	leaders := map[int32]bool{entry: true}
	incomplete := false

	work := []int32{entry}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if reachable[off] {
				break
			}
			in, ok := p.InstAt(off)
			if !ok {
				return nil, fmt.Errorf("cfg: walked off text at %#x", off)
			}
			reachable[off] = true
			next := off + isa.Size

			if in.Op.IsBranch() {
				tgt := branchTarget(p, off, in)
				leaders[tgt] = true
				work = append(work, tgt)
				if in.Op == isa.OpJmp {
					break // no fall-through
				}
				leaders[next] = true
				off = next
				continue
			}
			switch in.Op {
			case isa.OpRet, isa.OpHalt:
				// Function (or program) ends here on this path.
			case isa.OpJmpI:
				incomplete = true
			default:
				off = next
				continue
			}
			break
		}
	}

	// Instructions after a terminator that are targets become leaders;
	// also any reachable instruction following a terminator.
	for off := range reachable {
		in, _ := p.InstAt(off)
		if in.Op.Terminates() {
			next := off + isa.Size
			if reachable[next] {
				leaders[next] = true
			}
		}
	}

	// Phase 2: carve blocks between leaders.
	starts := make([]int32, 0, len(leaders))
	for off := range leaders {
		if reachable[off] {
			starts = append(starts, off)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	g := &Graph{Prog: p, Incomplete: incomplete, byStart: make(map[int32]*Block, len(starts))}
	for i, s := range starts {
		b := &Block{ID: i, Start: s, graph: g}
		// Extend the block until a terminator or the next leader.
		off := s
		for {
			in, ok := p.InstAt(off)
			if !ok {
				break
			}
			next := off + isa.Size
			if in.Op.Terminates() {
				b.End = next
				break
			}
			if leaders[next] && reachable[next] {
				b.End = next
				break
			}
			if !reachable[next] {
				b.End = next
				break
			}
			off = next
		}
		if b.End == 0 {
			b.End = s + isa.Size
		}
		g.Blocks = append(g.Blocks, b)
		g.byStart[s] = b
	}

	// Phase 3: wire successors.
	for _, b := range g.Blocks {
		last := b.Last()
		lastOff := b.End - isa.Size
		switch {
		case last.Op == isa.OpJmp:
			g.addEdge(b, branchTarget(p, lastOff, last))
		case last.Op.IsCondBranch():
			g.addEdge(b, branchTarget(p, lastOff, last))
			g.addEdge(b, b.End)
		case last.Op == isa.OpRet, last.Op == isa.OpHalt, last.Op == isa.OpJmpI:
			// No successors (JmpI: unknown → CFG incomplete).
		default:
			g.addEdge(b, b.End)
		}
	}
	g.Entry = g.byStart[entry]
	return g, nil
}

// StreamLeaders marks basic-block leaders in a fully relocated, linearly
// decoded instruction stream — the whole-text analogue of Build's phase-1
// leader discovery, used by the VM's block-compiled execution engine to
// carve an image's text into superblocks at load time.
//
// Where Build explores only instructions reachable from one function
// entry (it runs on unrelocated per-function disassembly, resolving
// branch targets through relocations), StreamLeaders sweeps the whole
// stream: instruction 0, every direct branch or call target that lands
// inside the stream, and every instruction following a control transfer
// (isa.Op.Transfers) is a leader. targetIdx translates a branch/call
// immediate — a virtual address once text is relocated — to an
// instruction index, reporting false for targets outside this stream
// (cross-module calls, host-function addresses). Indirect transfers
// (OpJmpI, OpCallR, OpRet) contribute no targets; an execution engine
// must therefore tolerate control entering between leaders, exactly as
// Build tolerates CFG incompleteness (§3.1).
func StreamLeaders(insts []isa.Inst, targetIdx func(imm int32) (int, bool)) []bool {
	leaders := make([]bool, len(insts))
	if len(insts) > 0 {
		leaders[0] = true
	}
	for i, in := range insts {
		if in.Op.IsBranch() || in.Op == isa.OpCall {
			if t, ok := targetIdx(in.Imm); ok && t >= 0 && t < len(insts) {
				leaders[t] = true
			}
		}
		if in.Op.Transfers() && i+1 < len(insts) {
			leaders[i+1] = true
		}
	}
	return leaders
}

func (g *Graph) addEdge(from *Block, toOff int32) {
	to, ok := g.byStart[toOff]
	if !ok {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func branchTarget(p *disasm.Program, off int32, in isa.Inst) int32 {
	// Branch targets are local text offsets, either directly in Imm or
	// via a text relocation.
	if r, ok := p.RelocAt(off); ok {
		return r.Index
	}
	return in.Imm
}

// Dot renders the CFG in Graphviz dot syntax; useful for debugging and for
// reproducing the paper's Figure 2 visually.
func (g *Graph) Dot(name string) string {
	out := "digraph \"" + name + "\" {\n  node [shape=box fontname=monospace];\n"
	for _, b := range g.Blocks {
		label := ""
		for i := 0; i < b.NumInsts(); i++ {
			label += fmt.Sprintf("%x: %s\\l", b.InstOff(i), b.Inst(i).String())
		}
		out += fmt.Sprintf("  b%d [label=\"%s\"];\n", b.ID, label)
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			out += fmt.Sprintf("  b%d -> b%d;\n", b.ID, s.ID)
		}
	}
	return out + "}\n"
}
