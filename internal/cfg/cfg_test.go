package cfg_test

import (
	"strings"
	"testing"

	"lfi/internal/asm"
	"lfi/internal/cfg"
	"lfi/internal/disasm"
	"lfi/internal/isa"
	"lfi/internal/obj"
)

// TestStreamLeaders pins the whole-stream leader analysis the VM's
// block engine compiles superblocks from: instruction 0, branch and
// call targets, and every instruction after a control transfer.
func TestStreamLeaders(t *testing.T) {
	base := int32(0x100)
	// idx:  0 mov, 1 je->4, 2 add, 3 call->0, 4 add, 5 syscall, 6 add,
	//       7 jmp->outside, 8 ret, 9 add
	insts := []isa.Inst{
		{Op: isa.OpMovRI, A: isa.R0, Imm: 1},
		{Op: isa.OpJe, Imm: base + 4*isa.Size},
		{Op: isa.OpAddRI, A: isa.R0, Imm: 1},
		{Op: isa.OpCall, Imm: base},
		{Op: isa.OpAddRI, A: isa.R0, Imm: 2},
		{Op: isa.OpSyscall},
		{Op: isa.OpAddRI, A: isa.R0, Imm: 3},
		{Op: isa.OpJmp, Imm: 0x7000}, // outside the stream: no local leader
		{Op: isa.OpRet},
		{Op: isa.OpAddRI, A: isa.R0, Imm: 4},
	}
	leaders := cfg.StreamLeaders(insts, func(imm int32) (int, bool) {
		off := imm - base
		if off < 0 || off%isa.Size != 0 || int(off/isa.Size) >= len(insts) {
			return 0, false
		}
		return int(off / isa.Size), true
	})
	want := map[int]bool{
		0: true, // entry + call target
		2: true, // after the conditional branch
		4: true, // branch target + after call
		6: true, // after syscall
		8: true, // after jmp (the jmp target is outside the stream)
		9: true, // after ret
	}
	for i := range insts {
		if leaders[i] != want[i] {
			t.Errorf("leaders[%d] = %v, want %v", i, leaders[i], want[i])
		}
	}
	if got := cfg.StreamLeaders(nil, nil); len(got) != 0 {
		t.Errorf("empty stream: %v leaders", got)
	}
}

func build(t *testing.T, src, fn string) (*cfg.Graph, *obj.File) {
	t.Helper()
	f, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p, err := disasm.Disassemble(f)
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := f.Lookup(fn)
	if !ok {
		t.Fatalf("no symbol %s", fn)
	}
	g, err := cfg.Build(p, sym.Off)
	if err != nil {
		t.Fatal(err)
	}
	return g, f
}

func TestStraightLine(t *testing.T) {
	g, _ := build(t, `
.lib x
.global f
.func f
  mov r0, 1
  add r0, 2
  ret
`, "f")
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if !g.Blocks[0].IsExit() || g.Blocks[0].NumInsts() != 3 {
		t.Errorf("block shape wrong: %d insts", g.Blocks[0].NumInsts())
	}
	if g.Entry != g.Blocks[0] {
		t.Error("entry mismatch")
	}
}

func TestDiamond(t *testing.T) {
	g, _ := build(t, `
.lib x
.global f
.func f
  cmp r0, 0
  je .zero
  mov r0, 1
  jmp .done
.zero:
  mov r0, 2
.done:
  ret
`, "f")
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4 (cond, then, else, join)", len(g.Blocks))
	}
	if len(g.Entry.Succs) != 2 {
		t.Errorf("entry successors = %d, want 2", len(g.Entry.Succs))
	}
	exits := g.ExitBlocks()
	if len(exits) != 1 {
		t.Fatalf("exits = %d", len(exits))
	}
	if len(exits[0].Preds) != 2 {
		t.Errorf("join preds = %d, want 2", len(exits[0].Preds))
	}
}

func TestLoop(t *testing.T) {
	g, _ := build(t, `
.lib x
.global f
.func f
.head:
  cmp r0, 10
  jge .out
  add r0, 1
  jmp .head
.out:
  ret
`, "f")
	// head, body, out.
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(g.Blocks))
	}
	head := g.Entry
	var body *cfg.Block
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == head && b != head {
				body = b
			}
		}
	}
	if body == nil {
		t.Fatal("no back edge found")
	}
}

func TestMultipleExits(t *testing.T) {
	g, _ := build(t, `
.lib x
.global f
.func f
  cmp r0, 0
  jne .b
  mov r0, -1
  ret
.b:
  mov r0, 0
  ret
`, "f")
	if len(g.ExitBlocks()) != 2 {
		t.Errorf("exits = %d, want 2", len(g.ExitBlocks()))
	}
}

func TestIndirectJumpMarksIncomplete(t *testing.T) {
	g, _ := build(t, `
.lib x
.global f
.func f
  jmpi r1
`, "f")
	if !g.Incomplete {
		t.Error("indirect jump must mark the CFG incomplete")
	}
	if len(g.Entry.Succs) != 0 {
		t.Error("jmpi block has unknowable successors")
	}
}

func TestUnreachableCodeExcluded(t *testing.T) {
	g, _ := build(t, `
.lib x
.global f
.func f
  mov r0, 1
  ret
  mov r0, 2
  ret
`, "f")
	total := 0
	for _, b := range g.Blocks {
		total += b.NumInsts()
	}
	if total != 2 {
		t.Errorf("reachable instructions = %d, want 2 (dead tail excluded)", total)
	}
}

func TestCallsDoNotSplitBlocks(t *testing.T) {
	g, _ := build(t, `
.lib x
.extern w
.global f
.func f
  push 1
  call w
  add sp, 4
  ret
`, "f")
	if len(g.Blocks) != 1 {
		t.Errorf("blocks = %d: calls fall through and must not end blocks", len(g.Blocks))
	}
}

func TestBlockContaining(t *testing.T) {
	g, f := build(t, `
.lib x
.global f
.func f
  cmp r0, 0
  je .a
  mov r0, 1
.a:
  ret
`, "f")
	_ = f
	for _, b := range g.Blocks {
		for i := 0; i < b.NumInsts(); i++ {
			got, ok := g.BlockContaining(b.InstOff(i))
			if !ok || got != b {
				t.Errorf("BlockContaining(%#x) = %v, want block %d", b.InstOff(i), got, b.ID)
			}
		}
	}
	if _, ok := g.BlockAt(g.Entry.Start); !ok {
		t.Error("BlockAt(entry) failed")
	}
}

func TestBadEntry(t *testing.T) {
	f, err := asm.Assemble("t.s", ".lib x\n.global f\n.func f\nret\n")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := disasm.Disassemble(f)
	if _, err := cfg.Build(p, 4096); err == nil {
		t.Error("out-of-range entry should fail")
	}
}

func TestDotOutput(t *testing.T) {
	g, _ := build(t, `
.lib x
.global f
.func f
  cmp r0, 0
  je .a
  mov r0, 1
.a:
  ret
`, "f")
	dot := g.Dot("f")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Errorf("dot output malformed:\n%s", dot)
	}
}
