package minic_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/vm"
)

// expr is a randomly generated arithmetic expression with a Go-side
// evaluator, used for differential testing of the compiler + VM against
// int32 semantics.
type expr struct {
	text string
	eval func(a, b int32) int32
}

func genExpr(rng *rand.Rand, depth int) expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			c := int32(rng.Intn(201) - 100)
			return expr{fmt.Sprint(c), func(a, b int32) int32 { return c }}
		case 1:
			return expr{"a", func(a, b int32) int32 { return a }}
		default:
			return expr{"b", func(a, b int32) int32 { return b }}
		}
	}
	l := genExpr(rng, depth-1)
	r := genExpr(rng, depth-1)
	switch rng.Intn(9) {
	case 0:
		return expr{"(" + l.text + " + " + r.text + ")",
			func(a, b int32) int32 { return l.eval(a, b) + r.eval(a, b) }}
	case 1:
		return expr{"(" + l.text + " - " + r.text + ")",
			func(a, b int32) int32 { return l.eval(a, b) - r.eval(a, b) }}
	case 2:
		return expr{"(" + l.text + " * " + r.text + ")",
			func(a, b int32) int32 { return l.eval(a, b) * r.eval(a, b) }}
	case 3:
		return expr{"(" + l.text + " & " + r.text + ")",
			func(a, b int32) int32 { return l.eval(a, b) & r.eval(a, b) }}
	case 4:
		return expr{"(" + l.text + " | " + r.text + ")",
			func(a, b int32) int32 { return l.eval(a, b) | r.eval(a, b) }}
	case 5:
		return expr{"(" + l.text + " ^ " + r.text + ")",
			func(a, b int32) int32 { return l.eval(a, b) ^ r.eval(a, b) }}
	case 6:
		return expr{"(" + l.text + " < " + r.text + ")",
			func(a, b int32) int32 {
				if l.eval(a, b) < r.eval(a, b) {
					return 1
				}
				return 0
			}}
	case 7:
		return expr{"(" + l.text + " == " + r.text + ")",
			func(a, b int32) int32 {
				if l.eval(a, b) == r.eval(a, b) {
					return 1
				}
				return 0
			}}
	default:
		return expr{"(-" + l.text + ")",
			func(a, b int32) int32 { return -l.eval(a, b) }}
	}
}

// TestDifferentialExpressions compiles random expressions and compares
// the VM result with direct Go evaluation over several argument pairs.
func TestDifferentialExpressions(t *testing.T) {
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20090625)) // DSN'09 conference date
	for i := 0; i < 40; i++ {
		e := genExpr(rng, 3)
		a := int32(rng.Intn(41) - 20)
		b := int32(rng.Intn(41) - 20)
		src := fmt.Sprintf(`
needs "libc.so";
static int f(int a, int b) { return %s; }
int main(void) { return f(%d, %d) & 255; }
`, e.text, a, b)
		exe, err := minic.Compile("diff", src, obj.Executable)
		if err != nil {
			t.Fatalf("expr %q: compile: %v", e.text, err)
		}
		sys := vm.NewSystem(vm.Options{})
		sys.Register(lc)
		sys.Register(exe)
		p, err := sys.Spawn("diff", vm.SpawnConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(5_000_000); err != nil {
			t.Fatalf("expr %q: run: %v", e.text, err)
		}
		want := e.eval(a, b) & 255
		if p.Status.Signal != 0 || p.Status.Code != want {
			t.Errorf("expr %q with a=%d b=%d: VM=%d, Go=%d",
				e.text, a, b, p.Status.Code, want)
		}
	}
}

// TestDifferentialShortCircuit verifies && and || side-effect ordering
// against C semantics.
func TestDifferentialShortCircuit(t *testing.T) {
	st := runMain(t, header+`
int calls = 0;
static int bump(int v) { calls = calls + 1; return v; }
int main(void) {
  calls = 0;
  if (bump(0) && bump(1)) { return 1; }
  if (calls != 1) { return 2; }     // RHS must not evaluate
  calls = 0;
  if (bump(1) || bump(1)) { calls = calls + 0; }
  if (calls != 1) { return 3; }     // RHS must not evaluate
  calls = 0;
  if (bump(1) && bump(0)) { return 4; }
  if (calls != 2) { return 5; }     // both evaluate
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

// TestScopingAndShadowing: inner declarations shadow outer ones and die
// with their block.
func TestScopingAndShadowing(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  int x;
  int sum;
  x = 1;
  sum = 0;
  if (x == 1) {
    int x;
    x = 50;
    sum = sum + x;
  }
  sum = sum + x;   // outer x again
  if (sum != 51) { return 1; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

// TestCommentsAndLiterals: comment styles, hex literals, char escapes.
func TestCommentsAndLiterals(t *testing.T) {
	st := runMain(t, header+`
// line comment
/* block
   comment */
int main(void) {
  byte s[8];
  if (0x10 != 16) { return 1; }
  if ('A' != 65) { return 2; }
  if ('\n' != 10) { return 3; }
  strcpy(s, "a\tb");
  if (s[1] != 9) { return 4; }
  return 0; // trailing comment
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

// TestDeepRecursionGrowsAndReturns: recursion to a depth well past one
// stack page still unwinds correctly.
func TestDeepRecursionGrowsAndReturns(t *testing.T) {
	st := runMain(t, header+`
static int down(int n) {
  if (n == 0) { return 0; }
  return down(n - 1) + 1;
}
int main(void) {
  if (down(5000) != 5000) { return 1; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

// TestStackOverflowIsSEGV: unbounded recursion hits the guard.
func TestStackOverflowIsSEGV(t *testing.T) {
	st := runMain(t, header+`
static int down(int n) { return down(n + 1); }
int main(void) { return down(0); }`)
	if st.Signal != vm.SigSEGV {
		t.Errorf("status = %+v, want SIGSEGV", st)
	}
}

// TestForLoopVariants: empty init/cond/post combinations.
func TestForLoopVariants(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  int i;
  int n;
  n = 0;
  i = 0;
  for (; i < 5; i = i + 1) { n = n + 1; }
  for (i = 0; ; i = i + 1) {
    if (i >= 5) { break; }
    n = n + 1;
  }
  for (i = 0; i < 5; ) { i = i + 1; n = n + 1; }
  if (n != 15) { return n; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestLargeProgramCompiles(t *testing.T) {
	// A synthetic 300-function unit exercises assembler scale.
	var b strings.Builder
	b.WriteString(`needs "libc.so";` + "\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&b, "static int f%d(int x) { return x + %d; }\n", i, i)
	}
	b.WriteString("int main(void) { int s; s = 0;\n")
	for i := 0; i < 300; i += 50 {
		fmt.Fprintf(&b, "  s = s + f%d(1);\n", i)
	}
	b.WriteString("  return s; }\n")
	st := runMain(t, b.String())
	// s = sum over i in {0,50,...,250} of (1+i) = 6 + (0+50+...+250) = 756
	if st.Code != 756 {
		t.Errorf("code = %d, want 756", st.Code)
	}
}
