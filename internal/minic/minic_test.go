package minic_test

import (
	"strings"
	"testing"

	"lfi/internal/libc"
	"lfi/internal/minic"
	"lfi/internal/obj"
	"lfi/internal/vm"
)

// runMain compiles src as an executable (linked against the synthetic
// libc), runs it to completion and returns the exit status.
func runMain(t *testing.T, src string) vm.ExitStatus {
	t.Helper()
	exe, err := minic.Compile("test.exe", src, obj.Executable)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	lc, err := libc.Compile()
	if err != nil {
		t.Fatalf("libc: %v", err)
	}
	sys := vm.NewSystem(vm.Options{})
	sys.Register(lc)
	sys.Register(exe)
	p, err := sys.Spawn("test.exe", vm.SpawnConfig{})
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	if err := sys.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p.Status
}

const header = `
needs "libc.so";
extern byte *malloc(int n);
extern void free(byte *p);
extern int strlen(byte *s);
extern int strcmp(byte *a, byte *b);
extern void strcpy(byte *dst, byte *src);
extern void memset(byte *p, int v, int n);
extern int atoi(byte *s);
extern int itoa(int v, byte *out);
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern int write(int fd, byte *buf, int n);
extern int getpid(void);
extern tls int errno;
`

func TestArithmeticAndControlFlow(t *testing.T) {
	st := runMain(t, header+`
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main(void) {
  int x;
  x = fib(10);
  if (x != 55) { return 1; }
  return x;
}`)
	if st.Signal != 0 || st.Code != 55 {
		t.Errorf("status = %+v, want code 55", st)
	}
}

func TestLoopsAndArrays(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  int a[10];
  int i;
  int sum;
  for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
  sum = 0;
  i = 0;
  while (i < 10) {
    sum = sum + a[i];
    i = i + 1;
  }
  if (sum != 285) { return 1; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestBreakContinueAndLogicalOps(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  int i;
  int hits;
  hits = 0;
  for (i = 0; i < 100; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 20) { break; }
    if (i > 3 && i < 9 || i == 15) { hits = hits + 1; }
  }
  // odd i in (3,9): 5,7 -> 2 hits; i==15 -> 1 hit
  if (hits != 3) { return hits + 40; }
  if (!(1 && 0) != 1) { return 2; }
  if ((7 & 3) != 3) { return 3; }
  if ((4 | 1) != 5) { return 4; }
  if ((5 ^ 1) != 4) { return 5; }
  if ((1 << 4) != 16) { return 6; }
  if ((32 >> 2) != 8) { return 7; }
  if (~0 != -1) { return 8; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestPointersAndStrings(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  byte buf[32];
  byte *p;
  int v;
  strcpy(buf, "hello");
  if (strlen(buf) != 5) { return 1; }
  if (strcmp(buf, "hello") != 0) { return 2; }
  if (strcmp(buf, "hellp") >= 0) { return 3; }
  p = malloc(64);
  if (p == 0) { return 4; }
  memset(p, 'x', 8);
  p[8] = 0;
  if (strlen(p) != 8) { return 5; }
  v = atoi("-123");
  if (v != -123) { return 6; }
  itoa(4095, buf);
  if (strcmp(buf, "4095") != 0) { return 7; }
  if (atoi(buf) != 4095) { return 8; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestAddressOfAndDeref(t *testing.T) {
	st := runMain(t, header+`
static void bump(int *p) { *p = *p + 7; }
int g = 10;
int main(void) {
  int x;
  int *px;
  x = 1;
  px = &x;
  *px = 5;
  bump(&x);
  if (x != 12) { return 1; }
  bump(&g);
  if (g != 17) { return 2; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestGlobalsAndTLS(t *testing.T) {
	st := runMain(t, header+`
int counter = 3;
tls int mytls;
int main(void) {
  counter = counter + 1;
  mytls = 9;
  errno = 0;
  if (counter != 4) { return 1; }
  if (mytls != 9) { return 2; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestFileIOThroughLibc(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  int fd;
  int n;
  byte buf[64];
  fd = open("/tmp/x", 64 | 1, 0);   // O_CREAT|O_WRONLY
  if (fd < 0) { return 1; }
  n = write(fd, "payload", 7);
  if (n != 7) { return 2; }
  if (close(fd) != 0) { return 3; }
  fd = open("/tmp/x", 0, 0);
  if (fd < 0) { return 4; }
  n = read(fd, buf, 64);
  if (n != 7) { return 5; }
  close(fd);
  fd = open("/does/not/exist", 0, 0);
  if (fd != -1) { return 6; }
  if (errno != 2) { return 7; }     // ENOENT
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestMallocFailureSetsErrno(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  byte *p;
  p = malloc(32 * 1024 * 1024);   // beyond the 1 MiB heap limit
  if (p != 0) { return 1; }
  if (errno != 12) { return 2; }  // ENOMEM
  p = malloc(128);
  if (p == 0) { return 3; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestIndirectCallThroughVariable(t *testing.T) {
	st := runMain(t, header+`
static int twice(int x) { return x * 2; }
static int thrice(int x) { return x * 3; }
int main(void) {
  int fp;
  fp = &twice;
  if (fp(21) != 42) { return 1; }
  fp = &thrice;
  if (fp(5) != 15) { return 2; }
  return 0;
}`)
	if st.Code != 0 || st.Signal != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestDivByZeroRaisesSIGFPE(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  int zero;
  zero = 0;
  return 7 / zero;
}`)
	if st.Signal != vm.SigFPE {
		t.Errorf("status = %+v, want SIGFPE", st)
	}
}

func TestBadPointerRaisesSIGSEGV(t *testing.T) {
	st := runMain(t, header+`
int main(void) {
  int *p;
  p = 12345;      // unmapped
  return *p;
}`)
	if st.Signal != vm.SigSEGV {
		t.Errorf("status = %+v, want SIGSEGV", st)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":    `int main(void) { return x; }`,
		"undefined func":   `int main(void) { return f(); }`,
		"break outside":    `int main(void) { break; return 0; }`,
		"bad assign":       `int main(void) { 3 = 4; return 0; }`,
		"variable shift":   `int main(void) { int n; n = 2; return 1 << n; }`,
		"syscall non-lit":  `int main(void) { int n; n = 3; return __syscall1(n, 0); }`,
		"unterminated str": `int main(void) { byte *s; s = "abc`,
		"bad token":        `int main(void) { return 0; } $`,
	}
	for name, src := range cases {
		if _, err := minic.Compile("bad", src, obj.Executable); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

func TestCompileToAsmShape(t *testing.T) {
	asmText, err := minic.CompileToAsm("demo.so", `
tls int errno;
int f(int x) {
  if (x < 0) { errno = 22; return -1; }
  return 0;
}`, obj.Library)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".lib demo.so", ".tls errno 4", ".func f", "push bp", "lea r1, errno"} {
		if !strings.Contains(asmText, want) {
			t.Errorf("assembly missing %q:\n%s", want, asmText)
		}
	}
}

func TestLibcCompiles(t *testing.T) {
	f, err := libc.Compile()
	if err != nil {
		t.Fatalf("libc does not compile: %v", err)
	}
	for _, name := range []string{"open", "close", "read", "write", "malloc", "strlen", "errno"} {
		if _, ok := f.LookupExport(name); !ok {
			t.Errorf("libc missing export %q", name)
		}
	}
}
