package minic

import (
	"fmt"
	"strings"
)

// Type is a MiniC type.
type Type uint8

// MiniC types. Pointers are 32-bit; byte is a storage-only 8-bit type that
// widens to int in expressions.
const (
	TypeVoid Type = iota + 1
	TypeInt
	TypeByte
	TypeIntPtr
	TypeBytePtr
)

// String returns C-like syntax for the type.
func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeByte:
		return "byte"
	case TypeIntPtr:
		return "int*"
	case TypeBytePtr:
		return "byte*"
	}
	return "?"
}

// IsPtr reports whether t is a pointer type.
func (t Type) IsPtr() bool { return t == TypeIntPtr || t == TypeBytePtr }

// ElemSize returns the pointee size for pointer arithmetic and indexing.
func (t Type) ElemSize() int32 {
	if t == TypeBytePtr {
		return 1
	}
	return 4
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

// Unit is a parsed MiniC translation unit.
type Unit struct {
	Name    string
	Needed  []string // shared libraries this unit links against
	Externs []*ExternDecl
	TLS     []*VarDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// ExternDecl declares an imported function or variable. Variables
// (IsVar) resolve at load time to the exporting module's data or TLS
// slot — this is how applications reference libc's errno.
type ExternDecl struct {
	Name   string
	Ret    Type
	Params []Param
	IsVar  bool
	Line   int
}

// VarDecl declares a global, TLS or local variable.
type VarDecl struct {
	Name     string
	Type     Type
	ArrayLen int32 // 0 for scalars
	Init     int32 // initial value (globals) — scalars only
	HasInit  bool
	Line     int
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    Type
	Params []Param
	Body   *BlockStmt
	Static bool
	Line   int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct{ Stmts []Stmt }

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Expr // may be nil (or a DeclStmt lowered by the parser)
	Cond Expr // may be nil (true)
	Post Expr // may be nil
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Value Expr // nil for void returns
	Line  int
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// DeclStmt declares a local variable.
type DeclStmt struct {
	Decl *VarDecl
	Init Expr // optional initialiser
}

// ExprStmt evaluates an expression for side effects.
type ExprStmt struct{ X Expr }

func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumLit is an integer or character literal.
type NumLit struct{ Value int32 }

// StrLit is a string literal (lowered to a data symbol).
type StrLit struct{ Value string }

// Ident references a variable or function by name.
type Ident struct {
	Name string
	Line int
}

// Unary is a prefix operator expression: - ! ~ * &.
type Unary struct {
	Op string
	X  Expr
}

// Binary is an infix operator expression.
type Binary struct {
	Op   string
	L, R Expr
}

// Assign stores R into the lvalue L.
type Assign struct {
	L, R Expr
	Line int
}

// Index is L[I].
type Index struct {
	Base Expr
	Idx  Expr
	Line int
}

// Call invokes a function: direct (named function/extern), indirect
// (through a variable holding a code address) or a __syscallN intrinsic.
type Call struct {
	Name string
	Args []Expr
	Line int
}

func (*NumLit) exprNode() {}
func (*StrLit) exprNode() {}
func (*Ident) exprNode()  {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Assign) exprNode() {}
func (*Index) exprNode()  {}
func (*Call) exprNode()   {}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

type parser struct {
	unit string
	toks []token
	pos  int
}

// Parse parses MiniC source into a Unit. unitName is used in diagnostics.
func Parse(unitName, src string) (*Unit, error) {
	toks, err := lex(unitName, src)
	if err != nil {
		return nil, err
	}
	p := &parser{unit: unitName, toks: toks}
	u := &Unit{Name: unitName}
	for !p.at(tokEOF, "") {
		if err := p.topDecl(u); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", k)
	}
	return t, p.errf(t.line, "expected %q, got %q", want, t.text)
}

func (p *parser) errf(line int, format string, args ...interface{}) error {
	return &CompileError{Unit: p.unit, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseType() (Type, error) {
	t := p.cur()
	var base Type
	switch {
	case p.accept(tokKeyword, "int"):
		base = TypeInt
	case p.accept(tokKeyword, "byte"):
		base = TypeByte
	case p.accept(tokKeyword, "void"):
		base = TypeVoid
	default:
		return 0, p.errf(t.line, "expected type, got %q", t.text)
	}
	if p.accept(tokPunct, "*") {
		switch base {
		case TypeInt:
			return TypeIntPtr, nil
		case TypeByte:
			return TypeBytePtr, nil
		default:
			return 0, p.errf(t.line, "cannot form pointer to %s", base)
		}
	}
	return base, nil
}

func (p *parser) topDecl(u *Unit) error {
	line := p.cur().line
	switch {
	case p.accept(tokKeyword, "needs"):
		lib, err := p.expect(tokString, "")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return err
		}
		u.Needed = append(u.Needed, lib.text)
		return nil

	case p.accept(tokKeyword, "extern"):
		isTLS := p.accept(tokKeyword, "tls")
		ret, err := p.parseType()
		if err != nil {
			return err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		if isTLS || p.at(tokPunct, ";") {
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return err
			}
			u.Externs = append(u.Externs, &ExternDecl{Name: name.text, Ret: ret, IsVar: true, Line: line})
			return nil
		}
		params, err := p.params()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return err
		}
		u.Externs = append(u.Externs, &ExternDecl{Name: name.text, Ret: ret, Params: params, Line: line})
		return nil

	case p.accept(tokKeyword, "tls"):
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return err
		}
		u.TLS = append(u.TLS, &VarDecl{Name: name.text, Type: typ, Line: line})
		return nil
	}

	static := p.accept(tokKeyword, "static")
	typ, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if p.at(tokPunct, "(") {
		params, err := p.params()
		if err != nil {
			return err
		}
		body, err := p.block()
		if err != nil {
			return err
		}
		u.Funcs = append(u.Funcs, &FuncDecl{
			Name: name.text, Ret: typ, Params: params, Body: body,
			Static: static, Line: line,
		})
		return nil
	}
	if static {
		return p.errf(line, "static globals are not supported")
	}
	d := &VarDecl{Name: name.text, Type: typ, Line: line}
	if p.accept(tokPunct, "[") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return err
		}
		d.ArrayLen = n.num
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return err
		}
	} else if p.accept(tokPunct, "=") {
		neg := p.accept(tokPunct, "-")
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return err
		}
		d.Init = n.num
		if neg {
			d.Init = -d.Init
		}
		d.HasInit = true
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	u.Globals = append(u.Globals, d)
	return nil
}

func (p *parser) params() ([]Param, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var out []Param
	if p.accept(tokPunct, ")") {
		return out, nil
	}
	if p.at(tokKeyword, "void") && p.toks[p.pos+1].text == ")" {
		p.next()
		p.next()
		return out, nil
	}
	for {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		out = append(out, Param{Name: name.text, Type: typ})
		if p.accept(tokPunct, ")") {
			return out, nil
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) block() (*BlockStmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errf(p.cur().line, "unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokPunct, "{"):
		return p.block()

	case p.accept(tokKeyword, "if"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then}
		if p.accept(tokKeyword, "else") {
			if s.Else, err = p.stmt(); err != nil {
				return nil, err
			}
		}
		return s, nil

	case p.accept(tokKeyword, "while"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case p.accept(tokKeyword, "for"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		s := &ForStmt{}
		var err error
		if !p.at(tokPunct, ";") {
			if s.Init, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ";") {
			if s.Cond, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tokPunct, ")") {
			if s.Post, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if s.Body, err = p.stmt(); err != nil {
			return nil, err
		}
		return s, nil

	case p.accept(tokKeyword, "return"):
		s := &ReturnStmt{Line: t.line}
		if !p.at(tokPunct, ";") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil

	case p.accept(tokKeyword, "break"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil

	case p.accept(tokKeyword, "continue"):
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil

	case p.at(tokKeyword, "int") || p.at(tokKeyword, "byte"):
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Decl: &VarDecl{Name: name.text, Type: typ, Line: t.line}}
		if p.accept(tokPunct, "[") {
			n, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, err
			}
			d.Decl.ArrayLen = n.num
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
		} else if p.accept(tokPunct, "=") {
			if d.Init, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return d, nil
	}

	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

// Operator precedence for binary expressions, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Expr, error) {
	line := p.cur().line
	l, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "=") {
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		switch l.(type) {
		case *Ident, *Unary, *Index:
			return &Assign{L: l, R: r, Line: line}, nil
		}
		return nil, p.errf(line, "invalid assignment target")
	}
	return l, nil
}

func (p *parser) binExpr(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.unaryExpr()
	}
	l, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.at(tokPunct, op) {
				// '&' as a binary operator must not swallow unary '&x'.
				p.next()
				r, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				l = &Binary{Op: op, L: l, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	for _, op := range []string{"-", "!", "~", "*", "&"} {
		if p.accept(tokPunct, op) {
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			if op == "-" {
				if n, ok := x.(*NumLit); ok {
					return &NumLit{Value: -n.Value}, nil
				}
			}
			return &Unary{Op: op, X: x}, nil
		}
	}
	_ = t
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{Base: x, Idx: idx, Line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case p.accept(tokPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokNumber:
		p.next()
		return &NumLit{Value: t.num}, nil
	case t.kind == tokString:
		p.next()
		return &StrLit{Value: t.text}, nil
	case t.kind == tokIdent:
		p.next()
		if p.at(tokPunct, "(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &Call{Name: t.text, Args: args, Line: t.line}, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	}
	return nil, p.errf(t.line, "unexpected token %q in expression", t.text)
}

func (p *parser) args() ([]Expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var out []Expr
	if p.accept(tokPunct, ")") {
		return out, nil
	}
	for {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		if p.accept(tokPunct, ")") {
			return out, nil
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
	}
}

// IsSyscallIntrinsic reports whether name is one of the __syscallN
// intrinsics and returns its argument count (excluding the number).
func IsSyscallIntrinsic(name string) (arity int, ok bool) {
	if !strings.HasPrefix(name, "__syscall") {
		return 0, false
	}
	switch name {
	case "__syscall0":
		return 0, true
	case "__syscall1":
		return 1, true
	case "__syscall2":
		return 2, true
	case "__syscall3":
		return 3, true
	}
	return 0, false
}
