package minic

import (
	"fmt"
	"strconv"
	"strings"

	"lfi/internal/asm"
	"lfi/internal/obj"
)

// Compile compiles MiniC source into a SLEF object of the given kind. The
// name becomes the module name (e.g. "libc.so", "pidgin").
func Compile(name, src string, kind obj.FileKind) (*obj.File, error) {
	text, err := CompileToAsm(name, src, kind)
	if err != nil {
		return nil, err
	}
	f, err := asm.Assemble(name+".s", text)
	if err != nil {
		return nil, fmt.Errorf("minic: assembling %s: %w", name, err)
	}
	return f, nil
}

// CompileToAsm compiles MiniC source to SIA-32 assembly text.
func CompileToAsm(name, src string, kind obj.FileKind) (string, error) {
	u, err := Parse(name, src)
	if err != nil {
		return "", err
	}
	g := newCodegen(u, kind)
	return g.generate()
}

// symClass classifies a unit-level or local name during code generation.
type symClass uint8

const (
	symLocal symClass = iota + 1 // frame slot (scalar)
	symLocalArray
	symParam
	symGlobal
	symGlobalArray
	symTLS
	symFunc
	symExtern    // imported function
	symExternVar // imported variable (e.g. libc's errno)
)

type symInfo struct {
	class symClass
	typ   Type
	off   int32 // frame offset (locals/params)
	name  string
}

type codegen struct {
	unit *Unit
	kind obj.FileKind

	out     strings.Builder
	globals map[string]symInfo
	externs map[string]*ExternDecl
	strs    []string // string literal pool
	strIdx  map[string]int

	// per-function state
	fn        *FuncDecl
	scopes    []map[string]symInfo
	frameSize int32
	labelN    int
	breakLbl  []string
	contLbl   []string
	err       error
}

func newCodegen(u *Unit, kind obj.FileKind) *codegen {
	g := &codegen{
		unit:    u,
		kind:    kind,
		globals: make(map[string]symInfo),
		externs: make(map[string]*ExternDecl),
		strIdx:  make(map[string]int),
	}
	for _, e := range u.Externs {
		g.externs[e.Name] = e
	}
	for _, d := range u.Globals {
		class := symGlobal
		if d.ArrayLen > 0 {
			class = symGlobalArray
		}
		g.globals[d.Name] = symInfo{class: class, typ: d.Type, name: d.Name}
	}
	for _, d := range u.TLS {
		g.globals[d.Name] = symInfo{class: symTLS, typ: d.Type, name: d.Name}
	}
	for _, f := range u.Funcs {
		g.globals[f.Name] = symInfo{class: symFunc, typ: f.Ret, name: f.Name}
	}
	return g
}

func (g *codegen) fail(line int, format string, args ...interface{}) {
	if g.err == nil {
		g.err = &CompileError{Unit: g.unit.Name, Line: line, Msg: fmt.Sprintf(format, args...)}
	}
}

func (g *codegen) emit(format string, args ...interface{}) {
	fmt.Fprintf(&g.out, format, args...)
	g.out.WriteByte('\n')
}

func (g *codegen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf(".%s%d", prefix, g.labelN)
}

func (g *codegen) generate() (string, error) {
	if g.kind == obj.Executable {
		g.emit(".exe %s", g.unit.Name)
	} else {
		g.emit(".lib %s", g.unit.Name)
	}
	for _, n := range g.unit.Needed {
		g.emit(".needs %s", n)
	}
	for _, e := range g.unit.Externs {
		g.emit(".extern %s", e.Name)
	}
	// Exports: non-static functions, globals, TLS variables.
	for _, f := range g.unit.Funcs {
		if !f.Static {
			g.emit(".global %s", f.Name)
		}
	}
	for _, d := range g.unit.Globals {
		g.emit(".global %s", d.Name)
	}
	for _, d := range g.unit.TLS {
		g.emit(".global %s", d.Name)
	}
	for _, d := range g.unit.TLS {
		g.emit(".tls %s 4", d.Name)
	}
	for _, d := range g.unit.Globals {
		switch {
		case d.ArrayLen > 0:
			size := d.ArrayLen * 4
			if d.Type == TypeByte || d.Type == TypeBytePtr {
				size = (d.ArrayLen + 3) / 4 * 4
			}
			g.emit(".data %s %d", d.Name, size)
		default:
			g.emit(".dataw %s %d", d.Name, d.Init)
		}
	}

	// Two phases so that string literals discovered during function
	// generation land in the data section: generate functions into a
	// temporary buffer, then splice the string pool in front.
	var fnsOut strings.Builder
	saved := g.out
	g.out = strings.Builder{}
	for _, f := range g.unit.Funcs {
		g.genFunc(f)
	}
	fnsOut = g.out
	g.out = saved
	if g.err != nil {
		return "", g.err
	}
	for i, s := range g.strs {
		g.emit(".datab __str%d %s", i, strconv.Quote(s))
	}
	g.out.WriteString(fnsOut.String())
	return g.out.String(), nil
}

func (g *codegen) genFunc(f *FuncDecl) {
	g.fn = f
	g.scopes = []map[string]symInfo{make(map[string]symInfo, len(f.Params))}
	g.frameSize = 0
	g.breakLbl = nil
	g.contLbl = nil
	for i, prm := range f.Params {
		g.scopes[0][prm.Name] = symInfo{
			class: symParam, typ: prm.Type, off: int32(8 + 4*i), name: prm.Name,
		}
	}

	// Pre-scan the body to compute the frame size, so the prologue can
	// reserve it up front (locals are assigned offsets during genBlock;
	// the prologue uses a placeholder patched by emitting `sub sp, N`
	// after the scan).
	size := g.measureFrame(f.Body)

	g.emit(".func %s", f.Name)
	g.emit("  push bp")
	g.emit("  mov bp, sp")
	if size > 0 {
		g.emit("  sub sp, %d", size)
	}
	g.genBlock(f.Body)
	// Fall-off-the-end epilogue (void functions, or safety net).
	g.emitEpilogue()
	g.emit(".endfunc")
	g.fn = nil
}

func (g *codegen) emitEpilogue() {
	g.emit("  mov sp, bp")
	g.emit("  pop bp")
	g.emit("  ret")
}

// measureFrame computes the total stack frame size of all locals declared
// anywhere in the function body. All locals get distinct slots (no reuse
// across sibling scopes — simple and predictable for the profiler).
func (g *codegen) measureFrame(s Stmt) int32 {
	var total int32
	var walk func(Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *BlockStmt:
			for _, sub := range st.Stmts {
				walk(sub)
			}
		case *IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *WhileStmt:
			walk(st.Body)
		case *ForStmt:
			walk(st.Body)
		case *DeclStmt:
			total += declSize(st.Decl)
		}
	}
	walk(s)
	return total
}

func declSize(d *VarDecl) int32 {
	if d.ArrayLen > 0 {
		if d.Type == TypeByte {
			return (d.ArrayLen + 3) / 4 * 4
		}
		return d.ArrayLen * 4
	}
	return 4
}

func (g *codegen) pushScope() { g.scopes = append(g.scopes, make(map[string]symInfo)) }
func (g *codegen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *codegen) lookup(name string) (symInfo, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if si, ok := g.scopes[i][name]; ok {
			return si, true
		}
	}
	if si, ok := g.globals[name]; ok {
		return si, true
	}
	if e, ok := g.externs[name]; ok {
		if e.IsVar {
			return symInfo{class: symExternVar, typ: e.Ret, name: name}, true
		}
		return symInfo{class: symExtern, typ: e.Ret, name: name}, true
	}
	return symInfo{}, false
}

func (g *codegen) genBlock(b *BlockStmt) {
	g.pushScope()
	for _, s := range b.Stmts {
		g.genStmt(s)
	}
	g.popScope()
}

func (g *codegen) genStmt(s Stmt) {
	if g.err != nil {
		return
	}
	switch st := s.(type) {
	case *BlockStmt:
		g.genBlock(st)

	case *DeclStmt:
		d := st.Decl
		g.frameSize += declSize(d)
		off := -g.frameSize
		class := symLocal
		if d.ArrayLen > 0 {
			class = symLocalArray
		}
		g.scopes[len(g.scopes)-1][d.Name] = symInfo{
			class: class, typ: d.Type, off: off, name: d.Name,
		}
		if st.Init != nil {
			g.genExpr(st.Init)
			g.emit("  store [bp%+d], r0", off)
		}

	case *ExprStmt:
		g.genExpr(st.X)

	case *ReturnStmt:
		if st.Value != nil {
			g.genExpr(st.Value)
		}
		g.emitEpilogue()

	case *IfStmt:
		elseL := g.label("else")
		endL := g.label("endif")
		g.genCondJumpFalse(st.Cond, elseL)
		g.genStmt(st.Then)
		if st.Else != nil {
			g.emit("  jmp %s", endL)
			g.emit("%s:", elseL)
			g.genStmt(st.Else)
			g.emit("%s:", endL)
		} else {
			g.emit("%s:", elseL)
		}

	case *WhileStmt:
		headL := g.label("while")
		endL := g.label("endw")
		g.breakLbl = append(g.breakLbl, endL)
		g.contLbl = append(g.contLbl, headL)
		g.emit("%s:", headL)
		g.genCondJumpFalse(st.Cond, endL)
		g.genStmt(st.Body)
		g.emit("  jmp %s", headL)
		g.emit("%s:", endL)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]

	case *ForStmt:
		headL := g.label("for")
		postL := g.label("forpost")
		endL := g.label("endfor")
		if st.Init != nil {
			g.genExpr(st.Init)
		}
		g.breakLbl = append(g.breakLbl, endL)
		g.contLbl = append(g.contLbl, postL)
		g.emit("%s:", headL)
		if st.Cond != nil {
			g.genCondJumpFalse(st.Cond, endL)
		}
		g.genStmt(st.Body)
		g.emit("%s:", postL)
		if st.Post != nil {
			g.genExpr(st.Post)
		}
		g.emit("  jmp %s", headL)
		g.emit("%s:", endL)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]

	case *BreakStmt:
		if len(g.breakLbl) == 0 {
			g.fail(st.Line, "break outside loop")
			return
		}
		g.emit("  jmp %s", g.breakLbl[len(g.breakLbl)-1])

	case *ContinueStmt:
		if len(g.contLbl) == 0 {
			g.fail(st.Line, "continue outside loop")
			return
		}
		g.emit("  jmp %s", g.contLbl[len(g.contLbl)-1])

	default:
		g.fail(0, "unhandled statement %T", s)
	}
}

// genCondJumpFalse evaluates cond and jumps to target when it is zero.
func (g *codegen) genCondJumpFalse(cond Expr, target string) {
	g.genExpr(cond)
	g.emit("  cmp r0, 0")
	g.emit("  je %s", target)
}

// genExpr generates code leaving the expression value in r0.
func (g *codegen) genExpr(e Expr) Type {
	if g.err != nil {
		return TypeInt
	}
	switch x := e.(type) {
	case *NumLit:
		g.emit("  mov r0, %d", x.Value)
		return TypeInt

	case *StrLit:
		idx, ok := g.strIdx[x.Value]
		if !ok {
			idx = len(g.strs)
			g.strIdx[x.Value] = idx
			g.strs = append(g.strs, x.Value)
		}
		g.emit("  lea r0, __str%d", idx)
		return TypeBytePtr

	case *Ident:
		si, ok := g.lookup(x.Name)
		if !ok {
			g.fail(x.Line, "undefined identifier %q", x.Name)
			return TypeInt
		}
		switch si.class {
		case symLocal, symParam:
			g.emit("  load r0, [bp%+d]", si.off)
		case symLocalArray:
			g.emit("  mov r0, bp")
			g.emit("  add r0, %d", si.off)
			return ptrTo(si.typ)
		case symGlobal:
			g.emit("  lea r1, %s", si.name)
			g.emit("  load r0, [r1+0]")
		case symGlobalArray:
			g.emit("  lea r0, %s", si.name)
			return ptrTo(si.typ)
		case symTLS, symExternVar:
			g.emit("  lea r1, %s", si.name)
			g.emit("  load r0, [r1+0]")
		case symFunc, symExtern:
			g.emit("  lea r0, %s", si.name)
		}
		return si.typ

	case *Unary:
		return g.genUnary(x)

	case *Binary:
		return g.genBinary(x)

	case *Assign:
		return g.genAssign(x)

	case *Index:
		bt := g.genAddrOfIndex(x)
		if bt == TypeBytePtr {
			g.emit("  loadb r0, [r0+0]")
			return TypeByte
		}
		g.emit("  load r0, [r0+0]")
		return TypeInt

	case *Call:
		return g.genCall(x)
	}
	g.fail(0, "unhandled expression %T", e)
	return TypeInt
}

func ptrTo(t Type) Type {
	if t == TypeByte || t == TypeBytePtr {
		return TypeBytePtr
	}
	return TypeIntPtr
}

func (g *codegen) genUnary(x *Unary) Type {
	switch x.Op {
	case "-":
		g.genExpr(x.X)
		g.emit("  neg r0")
		return TypeInt
	case "~":
		g.genExpr(x.X)
		g.emit("  not r0")
		return TypeInt
	case "!":
		g.genExpr(x.X)
		t := g.label("t")
		g.emit("  cmp r0, 0")
		g.emit("  mov r0, 1")
		g.emit("  je %s", t)
		g.emit("  mov r0, 0")
		g.emit("%s:", t)
		return TypeInt
	case "*":
		pt := g.genExpr(x.X)
		if pt == TypeBytePtr {
			g.emit("  loadb r0, [r0+0]")
			return TypeByte
		}
		g.emit("  load r0, [r0+0]")
		return TypeInt
	case "&":
		return g.genAddr(x.X)
	}
	g.fail(0, "unhandled unary operator %q", x.Op)
	return TypeInt
}

// genAddr leaves the address of the lvalue in r0 and returns the pointer
// type.
func (g *codegen) genAddr(e Expr) Type {
	switch x := e.(type) {
	case *Ident:
		si, ok := g.lookup(x.Name)
		if !ok {
			g.fail(x.Line, "undefined identifier %q", x.Name)
			return TypeIntPtr
		}
		switch si.class {
		case symLocal, symParam:
			g.emit("  mov r0, bp")
			g.emit("  add r0, %d", si.off)
		case symLocalArray:
			g.emit("  mov r0, bp")
			g.emit("  add r0, %d", si.off)
		case symGlobal, symGlobalArray, symTLS, symExternVar:
			g.emit("  lea r0, %s", si.name)
		case symFunc, symExtern:
			g.emit("  lea r0, %s", si.name)
			return TypeInt // code address used for indirect calls
		}
		return ptrTo(si.typ)
	case *Unary:
		if x.Op == "*" {
			return g.genExpr(x.X)
		}
	case *Index:
		return ptrTo(elemType(g.genAddrOfIndex(x)))
	}
	g.fail(0, "cannot take address of expression %T", e)
	return TypeIntPtr
}

func elemType(pt Type) Type {
	if pt == TypeBytePtr {
		return TypeByte
	}
	return TypeInt
}

// genAddrOfIndex computes &base[idx] into r0 and returns the base pointer
// type (TypeIntPtr or TypeBytePtr) to pick load/store width.
func (g *codegen) genAddrOfIndex(x *Index) Type {
	bt := g.genExpr(x.Base)
	if !bt.IsPtr() {
		bt = TypeIntPtr // int used as address — permissive, C-style
	}
	g.emit("  push r0")
	g.genExpr(x.Idx)
	if bt.ElemSize() == 4 {
		g.emit("  shl r0, 2")
	}
	g.emit("  pop r1")
	g.emit("  add r0, r1")
	return bt
}

func (g *codegen) genAssign(x *Assign) Type {
	// Fast path: direct scalar local/param/global/TLS targets use frame
	// or symbol addressing so the profiler can track them.
	if id, ok := x.L.(*Ident); ok {
		si, found := g.lookup(id.Name)
		if !found {
			g.fail(id.Line, "undefined identifier %q", id.Name)
			return TypeInt
		}
		switch si.class {
		case symLocal, symParam:
			g.genExpr(x.R)
			g.emit("  store [bp%+d], r0", si.off)
			return si.typ
		case symGlobal, symTLS, symExternVar:
			g.genExpr(x.R)
			g.emit("  lea r1, %s", si.name)
			g.emit("  store [r1+0], r0")
			return si.typ
		default:
			g.fail(id.Line, "cannot assign to %q", id.Name)
			return TypeInt
		}
	}
	// General path: compute address, then value.
	var width Type
	switch lv := x.L.(type) {
	case *Unary:
		if lv.Op != "*" {
			g.fail(x.Line, "invalid assignment target")
			return TypeInt
		}
		pt := g.genExpr(lv.X)
		width = elemType(pt)
	case *Index:
		width = elemType(g.genAddrOfIndex(lv))
	default:
		g.fail(x.Line, "invalid assignment target")
		return TypeInt
	}
	g.emit("  push r0")
	g.genExpr(x.R)
	g.emit("  pop r1")
	if width == TypeByte {
		g.emit("  storeb [r1+0], r0")
	} else {
		g.emit("  store [r1+0], r0")
	}
	return width
}

func (g *codegen) genBinary(x *Binary) Type {
	switch x.Op {
	case "&&":
		falseL := g.label("and0")
		endL := g.label("and1")
		g.genExpr(x.L)
		g.emit("  cmp r0, 0")
		g.emit("  je %s", falseL)
		g.genExpr(x.R)
		g.emit("  cmp r0, 0")
		g.emit("  je %s", falseL)
		g.emit("  mov r0, 1")
		g.emit("  jmp %s", endL)
		g.emit("%s:", falseL)
		g.emit("  mov r0, 0")
		g.emit("%s:", endL)
		return TypeInt
	case "||":
		trueL := g.label("or1")
		endL := g.label("or0")
		g.genExpr(x.L)
		g.emit("  cmp r0, 0")
		g.emit("  jne %s", trueL)
		g.genExpr(x.R)
		g.emit("  cmp r0, 0")
		g.emit("  jne %s", trueL)
		g.emit("  mov r0, 0")
		g.emit("  jmp %s", endL)
		g.emit("%s:", trueL)
		g.emit("  mov r0, 1")
		g.emit("%s:", endL)
		return TypeInt
	case "<<", ">>":
		n, ok := x.R.(*NumLit)
		if !ok {
			g.fail(0, "shift amount must be a constant")
			return TypeInt
		}
		g.genExpr(x.L)
		if x.Op == "<<" {
			g.emit("  shl r0, %d", n.Value)
		} else {
			g.emit("  shr r0, %d", n.Value)
		}
		return TypeInt
	}

	lt := g.genExpr(x.L)
	g.emit("  push r0")
	g.genExpr(x.R)
	g.emit("  mov r1, r0")
	g.emit("  pop r0")
	switch x.Op {
	case "+":
		g.emit("  add r0, r1")
		return lt
	case "-":
		g.emit("  sub r0, r1")
		return lt
	case "*":
		g.emit("  mul r0, r1")
	case "/":
		g.emit("  div r0, r1")
	case "%":
		g.emit("  mod r0, r1")
	case "&":
		g.emit("  and r0, r1")
	case "|":
		g.emit("  or r0, r1")
	case "^":
		g.emit("  xor r0, r1")
	case "==", "!=", "<", "<=", ">", ">=":
		jcc := map[string]string{
			"==": "je", "!=": "jne", "<": "jl", "<=": "jle", ">": "jg", ">=": "jge",
		}[x.Op]
		t := g.label("t")
		g.emit("  cmp r0, r1")
		g.emit("  mov r0, 1")
		g.emit("  %s %s", jcc, t)
		g.emit("  mov r0, 0")
		g.emit("%s:", t)
	default:
		g.fail(0, "unhandled binary operator %q", x.Op)
	}
	return TypeInt
}

func (g *codegen) genCall(x *Call) Type {
	if arity, ok := IsSyscallIntrinsic(x.Name); ok {
		return g.genSyscall(x, arity)
	}
	si, found := g.lookup(x.Name)
	if !found {
		g.fail(x.Line, "call to undefined function %q", x.Name)
		return TypeInt
	}
	// Push arguments right-to-left (cdecl).
	for i := len(x.Args) - 1; i >= 0; i-- {
		g.genExpr(x.Args[i])
		g.emit("  push r0")
	}
	var ret Type
	switch si.class {
	case symFunc, symExtern:
		g.emit("  call %s", x.Name)
		ret = si.typ
		if e, ok := g.externs[x.Name]; ok {
			ret = e.Ret
		}
	case symLocal, symParam, symGlobal:
		// Indirect call through a variable holding a code address.
		g.genExpr(&Ident{Name: x.Name, Line: x.Line})
		g.emit("  callr r0")
		ret = TypeInt
	default:
		g.fail(x.Line, "%q is not callable", x.Name)
		return TypeInt
	}
	if len(x.Args) > 0 {
		g.emit("  add sp, %d", 4*len(x.Args))
	}
	return ret
}

// genSyscall lowers __syscallN(num, a1..aN). The syscall number must be a
// literal so that static analysis can map the trap to its kernel handler,
// mirroring how the LFI profiler resolves libc's syscall wrappers (§3.1).
func (g *codegen) genSyscall(x *Call, arity int) Type {
	if len(x.Args) != arity+1 {
		g.fail(x.Line, "%s expects %d arguments", x.Name, arity+1)
		return TypeInt
	}
	num, ok := x.Args[0].(*NumLit)
	if !ok {
		g.fail(x.Line, "%s: syscall number must be a literal", x.Name)
		return TypeInt
	}
	for i := 1; i <= arity; i++ {
		g.genExpr(x.Args[i])
		g.emit("  push r0")
	}
	for i := arity; i >= 1; i-- {
		g.emit("  pop r%d", i)
	}
	g.emit("  mov r0, %d", num.Value)
	g.emit("  syscall")
	return TypeInt
}
