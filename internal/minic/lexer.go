// Package minic implements a small C-like language and its compiler to
// SIA-32 assembly.
//
// MiniC is the reproduction's stand-in for the C toolchains that produced
// the libraries LFI profiles: the synthetic libc, the evaluation corpus
// (libxml2, libssl, ... analogues), the kernel image, and the workload
// applications (httpd, minidb, pidgin) are all written in MiniC and
// compiled to SLEF objects. Because the compiler materialises constant
// error returns, errno side effects and output-argument writes with the
// same instruction idioms the paper describes for gcc-produced IA32 code,
// profiler results on MiniC output are directly comparable to the paper's.
//
// Language summary:
//
//	extern int write(int fd, byte *buf, int n);   // import
//	tls int errno;                                // thread-local (exported)
//	int g_count = 3;                              // global (exported)
//	static int helper(int x) { ... }              // local function
//	int open(byte *path, int flags) { ... }       // exported function
//
// Statements: if/else, while, for, return, break, continue, blocks,
// declarations and expressions. Expressions: integer/char/string literals,
// unary -~!*&, binary arithmetic/bitwise/comparison/logical with
// short-circuit && and ||, assignment, array indexing, function calls
// (direct, or indirect through integer variables holding a function
// address taken with &f), and the __syscallN(num, ...) intrinsics.
package minic

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind uint8

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokPunct
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	num  int32
	line int
}

var keywords = map[string]bool{
	"int": true, "byte": true, "void": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true,
	"continue": true, "extern": true, "tls": true, "static": true,
	"needs": true,
}

// CompileError reports a compilation failure with source position.
type CompileError struct {
	Unit string
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Unit, e.Line, e.Msg)
}

type lexer struct {
	unit string
	src  string
	pos  int
	line int
	toks []token
}

func lex(unit, src string) ([]token, error) {
	l := &lexer{unit: unit, src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &CompileError{Unit: l.unit, Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		k := tokIdent
		if keywords[text] {
			k = tokKeyword
		}
		return token{kind: k, text: text, line: l.line}, nil

	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, l.errf("bad number %q", text)
		}
		return token{kind: tokNumber, text: text, num: int32(v), line: l.line}, nil

	case c == '\'':
		// Character literal.
		end := l.pos + 1
		for end < len(l.src) && l.src[end] != '\'' {
			if l.src[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(l.src) {
			return token{}, l.errf("unterminated character literal")
		}
		lit := l.src[l.pos : end+1]
		l.pos = end + 1
		v, _, _, err := strconv.UnquoteChar(lit[1:len(lit)-1], '\'')
		if err != nil {
			return token{}, l.errf("bad character literal %s", lit)
		}
		return token{kind: tokNumber, text: lit, num: int32(v), line: l.line}, nil

	case c == '"':
		end := l.pos + 1
		for end < len(l.src) && l.src[end] != '"' {
			if l.src[end] == '\\' {
				end++
			}
			if l.src[end] == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			end++
		}
		if end >= len(l.src) {
			return token{}, l.errf("unterminated string literal")
		}
		raw := l.src[l.pos : end+1]
		l.pos = end + 1
		s, err := strconv.Unquote(raw)
		if err != nil {
			return token{}, l.errf("bad string literal: %v", err)
		}
		return token{kind: tokString, text: s, line: l.line}, nil
	}

	// Punctuation: longest match first.
	for _, p := range []string{
		"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
		"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "=",
		"<", ">", "(", ")", "{", "}", "[", "]", ";", ",",
	} {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			return token{kind: tokPunct, text: p, line: l.line}, nil
		}
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == 'x' || c == 'X'
}
