package scenario_test

import (
	"bytes"
	"testing"

	"lfi/internal/scenario"
)

// section4Example is the paper's §4 faultload, the seed of the round-trip
// corpus.
const section4Example = `<plan>
  <function name="readdir" inject="5" retval="0" errno="EBADF" calloriginal="false">
    <stacktrace>
      <frame>0xb824490</frame>
      <frame>refresh_files</frame>
    </stacktrace>
  </function>
  <function name="read" inject="20" calloriginal="true">
    <modify argument="3" op="sub" value="10"></modify>
  </function>
</plan>`

// FuzzPlanRoundTrip asserts that marshalling is a fixed point: for any
// parseable faultload XML, marshal → parse → marshal reproduces the first
// marshalling byte for byte. This is what makes replay scripts and
// profile-diffing stable.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add([]byte(section4Example))
	f.Add([]byte(`<plan seed="42"><function name="open" probability="12.5" random="true" calloriginal="false" once="true" pid="3"></function></plan>`))
	f.Add([]byte(`<plan><function name="malloc" retval="0" errno="ENOMEM" calloriginal="false"></function></plan>`))
	f.Add([]byte(`<plan></plan>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := scenario.Unmarshal(data)
		if err != nil {
			t.Skip() // not a faultload; nothing to round-trip
		}
		first, err := p.Marshal()
		if err != nil {
			t.Skip() // unmarshallable XML oddities (invalid chars) are out of scope
		}
		q, err := scenario.Unmarshal(first)
		if err != nil {
			t.Fatalf("re-parse of own marshalling failed: %v\n%s", err, first)
		}
		second, err := q.Marshal()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("marshal is not a fixed point:\n--- first ---\n%s--- second ---\n%s", first, second)
		}
	})
}

// TestSection4ExampleRoundTrip pins the seed corpus outside fuzzing mode:
// the §4 plan parses, its triggers carry the documented semantics, and a
// clone shares no mutable state with the original.
func TestSection4ExampleRoundTrip(t *testing.T) {
	p, err := scenario.Unmarshal([]byte(section4Example))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Triggers) != 2 {
		t.Fatalf("triggers = %d, want 2", len(p.Triggers))
	}
	rd := p.Triggers[0]
	if rd.Function != "readdir" || rd.Inject != 5 || rd.Retval != "0" || rd.Errno != "EBADF" {
		t.Errorf("readdir trigger = %+v", rd)
	}
	if frames := rd.Frames(); len(frames) != 2 || frames[1] != "refresh_files" {
		t.Errorf("readdir frames = %v", frames)
	}

	c := p.Clone()
	c.Triggers[0].Stacktrace.Frames[0] = "mutated"
	c.Triggers[1].Modify[0].Value = 99
	if p.Triggers[0].Stacktrace.Frames[0] != "0xb824490" || p.Triggers[1].Modify[0].Value != 10 {
		t.Error("Clone shares mutable state with the original plan")
	}

	first, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := scenario.Unmarshal(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("fixed point violated:\n%s\nvs\n%s", first, second)
	}
}
