package scenario_test

import (
	"bytes"
	"reflect"
	"testing"

	"lfi/internal/scenario"
)

// section4Example is the paper's §4 faultload, the seed of the round-trip
// corpus.
const section4Example = `<plan>
  <function name="readdir" inject="5" retval="0" errno="EBADF" calloriginal="false">
    <stacktrace>
      <frame>0xb824490</frame>
      <frame>refresh_files</frame>
    </stacktrace>
  </function>
  <function name="read" inject="20" calloriginal="true">
    <modify argument="3" op="sub" value="10"></modify>
  </function>
</plan>`

// FuzzPlanRoundTrip asserts that marshalling is a fixed point: for any
// parseable faultload XML, marshal → parse → marshal reproduces the first
// marshalling byte for byte. This is what makes replay scripts and
// profile-diffing stable.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add([]byte(section4Example))
	f.Add([]byte(`<plan seed="42"><function name="open" probability="12.5" random="true" calloriginal="false" once="true" pid="3"></function></plan>`))
	f.Add([]byte(`<plan><function name="malloc" retval="0" errno="ENOMEM" calloriginal="false"></function></plan>`))
	f.Add([]byte(`<plan></plan>`))
	for _, seed := range composedSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := scenario.Unmarshal(data)
		if err != nil {
			t.Skip() // not a faultload; nothing to round-trip
		}
		first, err := p.Marshal()
		if err != nil {
			t.Skip() // unmarshallable XML oddities (invalid chars) are out of scope
		}
		q, err := scenario.Unmarshal(first)
		if err != nil {
			t.Fatalf("re-parse of own marshalling failed: %v\n%s", err, first)
		}
		second, err := q.Marshal()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("marshal is not a fixed point:\n--- first ---\n%s--- second ---\n%s", first, second)
		}
	})
}

// composedSeeds exercise the composable condition grammar: containers,
// every leaf kind, cross-trigger <after-fault> and sticky faults.
var composedSeeds = []string{
	`<plan><function name="write" retval="-1" errno="ENOSPC" calloriginal="false" sticky="true"><after-fault function="malloc"></after-fault></function><function name="malloc" inject="4" retval="0" calloriginal="false" once="true"></function></plan>`,
	`<plan seed="7"><function name="read" retval="-1" calloriginal="false"><and><calls after="2" every="3"></calls><not><pid is="2"></pid></not></and></function></plan>`,
	`<plan><function name="send" retval="-1" errno="EPIPE" calloriginal="false"><or><cycles min="100" max="9000"></cycles><probability pct="12.5"></probability><stacktrace><frame>0xb824490</frame><frame>flush</frame></stacktrace></or></function></plan>`,
	`<plan><function name="close" retval="-1" calloriginal="false"><calls until="6"></calls><after-fault function="open" count="2"></after-fault></function><function name="open" retval="-1" errno="EMFILE" calloriginal="false"></function></plan>`,
	// Stateful degradation fault models: latency injection and resource
	// exhaustion, alone and combined with errno faults.
	`<plan><function name="write" inject="3" once="true"><delay cycles="7"></delay></function></plan>`,
	`<plan><function name="open" inject="1" once="true"><exhaust resource="disk" after="16"></exhaust></function></plan>`,
	`<plan><function name="open" inject="2" once="true"><exhaust resource="fds" slots="2"></exhaust></function></plan>`,
	`<plan><function name="read" retval="-1" errno="EIO" calloriginal="false" sticky="true"><delay cycles="5000"></delay><exhaust resource="disk" after="0"></exhaust></function></plan>`,
	// Traffic-window faultloads: availability sweeps open the fault
	// window mid-steady-state on a serving guest via <calls after> and
	// <cycles min> floors against server-side calls.
	`<plan><function name="accept" retval="-1" errno="EMFILE" calloriginal="false" once="true"><calls after="250"></calls></function></plan>`,
	`<plan><function name="write" retval="-1" errno="ENOSPC" calloriginal="false"><and><calls after="200" every="50"></calls><cycles min="500000"></cycles></and></function></plan>`,
	`<plan><function name="accept" once="true"><exhaust resource="fds" slots="0"></exhaust><calls after="250"></calls></function></plan>`,
	`<plan><function name="write" once="true"><delay cycles="30000000"></delay><and><calls after="250" until="300"></calls><cycles min="1000" max="200000000"></cycles></and></function></plan>`,
}

// FuzzPlanCompileEval is the engine-level target: any faultload that
// parses must compile and evaluate without panicking, and two
// evaluators minted from one compiled plan must make identical
// decisions for an identical call stream (determinism per Plan.Seed).
func FuzzPlanCompileEval(f *testing.F) {
	f.Add([]byte(section4Example))
	for _, seed := range composedSeeds {
		f.Add([]byte(seed))
	}
	set := compatSet()
	fns := []string{"open", "read", "write", "close", "malloc", "send", "accept"}
	stack := []scenario.StackFrame{{Addr: 0xb824490, Symbol: "readdir"}, {Addr: 0x1000, Symbol: "flush"}}
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := scenario.Unmarshal(data)
		if err != nil {
			t.Skip() // rejected faultloads are Unmarshal's success case
		}
		cp, err := scenario.Compile(plan, set)
		if err != nil {
			// Unmarshal validates everything Compile checks without a
			// profile set, so a parsed plan must compile.
			t.Fatalf("validated plan failed to compile: %v", err)
		}
		a, b := cp.NewEvaluator(), cp.NewEvaluator()
		for i := 0; i < 64; i++ {
			fn := fns[i%len(fns)]
			st := stack
			if i%3 == 0 {
				st = nil
			}
			da := a.OnCallAt(fn, st, uint64(i)*100)
			db := b.OnCallAt(fn, st, uint64(i)*100)
			if !reflect.DeepEqual(da, db) {
				t.Fatalf("call %d (%s): evaluators diverge: %+v vs %+v", i, fn, da, db)
			}
			if da.Scanned > cp.TriggerCount(fn) {
				t.Fatalf("scanned %d > %d indexed triggers for %s", da.Scanned, cp.TriggerCount(fn), fn)
			}
		}
	})
}

// TestSection4ExampleRoundTrip pins the seed corpus outside fuzzing mode:
// the §4 plan parses, its triggers carry the documented semantics, and a
// clone shares no mutable state with the original.
func TestSection4ExampleRoundTrip(t *testing.T) {
	p, err := scenario.Unmarshal([]byte(section4Example))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Triggers) != 2 {
		t.Fatalf("triggers = %d, want 2", len(p.Triggers))
	}
	rd := p.Triggers[0]
	if rd.Function != "readdir" || rd.Inject != 5 || rd.Retval != "0" || rd.Errno != "EBADF" {
		t.Errorf("readdir trigger = %+v", rd)
	}
	if frames := rd.Frames(); len(frames) != 2 || frames[1] != "refresh_files" {
		t.Errorf("readdir frames = %v", frames)
	}

	c := p.Clone()
	c.Triggers[0].Stacktrace.Frames[0] = "mutated"
	c.Triggers[1].Modify[0].Value = 99
	if p.Triggers[0].Stacktrace.Frames[0] != "0xb824490" || p.Triggers[1].Modify[0].Value != 10 {
		t.Error("Clone shares mutable state with the original plan")
	}

	first, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := scenario.Unmarshal(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("fixed point violated:\n%s\nvs\n%s", first, second)
	}
}
