// Compile-then-evaluate trigger engine. A Plan is compiled once into an
// immutable CompiledPlan — per-function trigger index, pre-parsed
// retvals/errnos/frame addresses, pre-resolved random-fault candidates —
// and any number of Evaluators (one per process) carry the thin mutable
// state on top: call counts, the fired set, per-function fault counts
// and the seeded random stream.
package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"lfi/internal/kernel"
	"lfi/internal/profile"
)

// CompileError is a position-carrying plan validation/compilation error:
// it names the offending trigger by plan-order index and function.
type CompileError struct {
	// Trigger is the 0-based plan-order index of the bad trigger.
	Trigger int
	// Function is the trigger's function attribute.
	Function string
	// Err is the underlying complaint.
	Err error
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("scenario: trigger %d (function %q): %v", e.Trigger, e.Function, e.Err)
}

func (e *CompileError) Unwrap() error { return e.Err }

// Validate checks every trigger without needing a profile set: retval
// and errno attributes must parse, sticky/once must not contradict, and
// condition trees must follow the grammar. Unmarshal calls it, so a
// faultload with an unparsable retval is rejected when it is read, not
// silently skipped when it fires. A plan is valid iff it compiles, so
// Validate is a set-free compile with the result discarded — there is
// no second copy of the rules to drift.
func (p *Plan) Validate() error {
	_, err := Compile(p, nil)
	return err
}

// CompiledPlan is the immutable compiled form of a faultload. It is safe
// to share across goroutines and campaigns: all evaluation state lives
// in the Evaluators it mints.
type CompiledPlan struct {
	plan *Plan
	set  profile.Set
	byFn map[string][]compiledTrigger
}

// compiledTrigger is one trigger with everything parse-time resolved.
type compiledTrigger struct {
	idx    int // plan-order index
	cond   cnode
	once   bool
	sticky bool

	hasRetval    bool
	retval       int32
	hasErrno     bool
	errno        int32
	callOriginal bool
	modify       []Modify
	delay        uint64
	exhaust      *Exhaust

	random bool
	// candidates are the pre-resolved random-fault error codes from the
	// function's profile (nil when no profile covers the function).
	candidates []profile.ErrorCode
}

// Compile validates the plan and builds its immutable compiled form.
// The profile set supplies error codes for random triggers; it may be
// nil when the plan is fully explicit.
func Compile(plan *Plan, set profile.Set) (*CompiledPlan, error) {
	if plan == nil {
		return nil, errors.New("scenario: compile: nil plan")
	}
	cp := &CompiledPlan{plan: plan, set: set, byFn: make(map[string][]compiledTrigger)}
	for i := range plan.Triggers {
		t := &plan.Triggers[i]
		ct, err := compileTrigger(i, t, set)
		if err != nil {
			return nil, &CompileError{Trigger: i, Function: t.Function, Err: err}
		}
		cp.byFn[t.Function] = append(cp.byFn[t.Function], ct)
	}
	return cp, nil
}

// MustCompile is Compile for plans known to be valid; it panics on error.
func MustCompile(plan *Plan, set profile.Set) *CompiledPlan {
	cp, err := Compile(plan, set)
	if err != nil {
		panic(err)
	}
	return cp
}

// Plan returns the source plan (treat as immutable).
func (cp *CompiledPlan) Plan() *Plan { return cp.plan }

// Functions returns the distinct intercepted function names, sorted.
func (cp *CompiledPlan) Functions() []string { return cp.plan.Functions() }

// TriggerCount returns how many triggers guard fn — the number examined
// per intercepted call, i.e. the per-call evaluation cost.
func (cp *CompiledPlan) TriggerCount(fn string) int { return len(cp.byFn[fn]) }

// compileTrigger resolves one trigger's static parts and builds its
// condition chain in the engine's evaluation order: pid, inject,
// probability, stacktrace, then composed condition elements — the order
// fixes how many random draws a partially-matching call consumes, so it
// is part of the deterministic-replay contract.
func compileTrigger(idx int, t *Trigger, set profile.Set) (compiledTrigger, error) {
	ct := compiledTrigger{
		idx:          idx,
		once:         t.Once,
		sticky:       t.Sticky,
		callOriginal: t.CallOriginal,
		modify:       t.Modify,
		random:       t.Random,
	}
	if t.Function == "" {
		return ct, errors.New("missing function name")
	}
	if t.Sticky && t.Once {
		return ct, errors.New(`sticky="true" contradicts once="true"`)
	}
	// Structural grammar checks must precede condition compilation
	// (compileCond assumes container arity holds).
	for i := range t.Conds {
		if err := t.Conds[i].validate(); err != nil {
			return ct, err
		}
	}
	if t.Retval != "" {
		v, err := strconv.ParseInt(t.Retval, 0, 32)
		if err != nil {
			return ct, fmt.Errorf("bad retval %q: not a 32-bit integer", t.Retval)
		}
		ct.hasRetval, ct.retval = true, int32(v)
	}
	if t.Errno != "" {
		v, ok := ParseErrno(t.Errno)
		if !ok {
			return ct, fmt.Errorf("bad errno %q: neither a known errno name nor a number", t.Errno)
		}
		ct.hasErrno, ct.errno = true, v
	}
	if t.Delay != nil {
		if t.Delay.Cycles == 0 {
			return ct, errors.New(`<delay> needs cycles > 0`)
		}
		ct.delay = t.Delay.Cycles
	}
	if t.Exhaust != nil {
		switch t.Exhaust.Resource {
		case ResourceDisk:
			if t.Exhaust.Slots != 0 {
				return ct, errors.New(`<exhaust resource="disk"> takes after=, not slots=`)
			}
			if t.Exhaust.After < 0 {
				return ct, fmt.Errorf("bad disk quota after=%d: must be >= 0", t.Exhaust.After)
			}
		case ResourceFDs:
			if t.Exhaust.After != 0 {
				return ct, errors.New(`<exhaust resource="fds"> takes slots=, not after=`)
			}
			if t.Exhaust.Slots < 0 {
				return ct, fmt.Errorf("bad fd headroom slots=%d: must be >= 0", t.Exhaust.Slots)
			}
		default:
			return ct, fmt.Errorf("unknown <exhaust> resource %q (want %q or %q)",
				t.Exhaust.Resource, ResourceDisk, ResourceFDs)
		}
		ct.exhaust = t.Exhaust
	}
	if t.Random && set != nil {
		if _, pf, ok := set.FindFunction(t.Function); ok && len(pf.ErrorCodes) > 0 {
			ct.candidates = pf.ErrorCodes
		}
	}
	// A trigger that neither returns a value nor modifies arguments and
	// does not call the original would hang the caller; resolve it to a
	// pure pass-through probe (or the C convention -1 for errno-only
	// injections) once, at compile time.
	if !ct.hasRetval && len(ct.modify) == 0 && !t.CallOriginal && !t.Random {
		if !ct.hasErrno {
			ct.callOriginal = true
		} else {
			ct.hasRetval, ct.retval = true, -1
		}
	}

	var conds []cnode
	if t.Pid != 0 {
		conds = append(conds, pidCond(t.Pid))
	}
	if t.Inject > 0 {
		conds = append(conds, nthCond(t.Inject))
	}
	if t.Probability > 0 {
		conds = append(conds, probCond(t.Probability))
	}
	if frames := t.Frames(); len(frames) > 0 {
		m, err := compileFrames(frames)
		if err != nil {
			return ct, err
		}
		conds = append(conds, stackCond(m))
	}
	for i := range t.Conds {
		n, err := compileCond(&t.Conds[i])
		if err != nil {
			return ct, err
		}
		conds = append(conds, n)
	}
	switch len(conds) {
	case 0:
	case 1:
		ct.cond = conds[0]
	default:
		ct.cond = andCond(conds)
	}
	return ct, nil
}

func compileCond(c *Cond) (cnode, error) {
	kids := make([]cnode, len(c.Kids))
	for i := range c.Kids {
		k, err := compileCond(&c.Kids[i])
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	switch c.XMLName.Local {
	case condAnd:
		return andCond(kids), nil
	case condOr:
		return orCond(kids), nil
	case condNot:
		return notCond{kids[0]}, nil
	case condCalls:
		return callsCond{after: c.After, every: c.Every, until: c.Until}, nil
	case condCycles:
		return cyclesCond{min: c.Min, max: c.Max}, nil
	case condPid:
		return pidCond(c.Is), nil
	case condProb:
		return probCond(c.Pct), nil
	case condStack:
		m, err := compileFrames(c.Frames)
		if err != nil {
			return nil, err
		}
		return stackCond(m), nil
	case condAfterFault:
		count := c.Count
		if count == 0 {
			count = 1
		}
		return afterFaultCond{fn: c.Function, count: count}, nil
	}
	return nil, fmt.Errorf("unknown condition element <%s>", c.XMLName.Local)
}

// ---------------------------------------------------------------------------
// Compiled condition nodes
// ---------------------------------------------------------------------------

// callSite is the per-call context a condition node sees.
type callSite struct {
	n     int32 // 1-based call count for the intercepted function
	cycle uint64
	stack []StackFrame
}

// cnode is a compiled condition; eval may consume the evaluator's
// random stream (probability nodes), so evaluation order matters.
type cnode interface {
	eval(e *Evaluator, at *callSite) bool
}

type andCond []cnode

func (c andCond) eval(e *Evaluator, at *callSite) bool {
	for _, k := range c {
		if !k.eval(e, at) {
			return false
		}
	}
	return true
}

type orCond []cnode

func (c orCond) eval(e *Evaluator, at *callSite) bool {
	for _, k := range c {
		if k.eval(e, at) {
			return true
		}
	}
	return false
}

type notCond struct{ kid cnode }

func (c notCond) eval(e *Evaluator, at *callSite) bool { return !c.kid.eval(e, at) }

// nthCond is the flat inject= attribute: exactly the n-th call.
type nthCond int32

func (c nthCond) eval(_ *Evaluator, at *callSite) bool { return int32(c) == at.n }

type pidCond int

func (c pidCond) eval(e *Evaluator, _ *callSite) bool { return int(c) == e.pid }

type probCond float64

func (c probCond) eval(e *Evaluator, _ *callSite) bool {
	return e.rng.Float64()*100 < float64(c)
}

type callsCond struct{ after, every, until int32 }

func (c callsCond) eval(_ *Evaluator, at *callSite) bool {
	if at.n <= c.after {
		return false
	}
	if c.until > 0 && at.n > c.until {
		return false
	}
	if c.every > 1 && (at.n-c.after-1)%c.every != 0 {
		return false
	}
	return true
}

type cyclesCond struct{ min, max uint64 }

func (c cyclesCond) eval(_ *Evaluator, at *callSite) bool {
	return at.cycle >= c.min && (c.max == 0 || at.cycle <= c.max)
}

type afterFaultCond struct {
	fn    string
	count int32
}

func (c afterFaultCond) eval(e *Evaluator, _ *callSite) bool {
	return e.faults[c.fn] >= c.count
}

// frameMatcher is one pre-parsed backtrace frame condition.
type frameMatcher struct {
	isAddr bool
	addr   uint32
	symbol string
}

func compileFrames(frames []string) ([]frameMatcher, error) {
	out := make([]frameMatcher, len(frames))
	for i, w := range frames {
		if strings.HasPrefix(w, "0x") || strings.HasPrefix(w, "0X") {
			v, err := strconv.ParseUint(w[2:], 16, 32)
			if err != nil {
				return nil, fmt.Errorf("bad stack frame address %q: %v", w, err)
			}
			out[i] = frameMatcher{isAddr: true, addr: uint32(v)}
			continue
		}
		out[i] = frameMatcher{symbol: w}
	}
	return out, nil
}

type stackCond []frameMatcher

// eval checks the paper's partial stack-trace condition: matcher i is
// compared against backtrace entry i, innermost first.
func (c stackCond) eval(_ *Evaluator, at *callSite) bool {
	if len(c) > len(at.stack) {
		return false
	}
	for i, m := range c {
		f := at.stack[i]
		if m.isAddr {
			if m.addr != f.Addr {
				return false
			}
			continue
		}
		if m.symbol != f.Symbol {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

// StackFrame describes one backtrace entry for stack-trace triggers.
type StackFrame struct {
	Addr   uint32
	Symbol string
}

// Decision is the outcome of evaluating the triggers for one call.
type Decision struct {
	Inject bool
	// Trigger indexes the fired trigger within the plan.
	Trigger int
	// HasRetval/Retval: value to return instead of calling the original.
	HasRetval bool
	Retval    int32
	// Errno, when HasErrno, must be stored to the errno channel.
	HasErrno bool
	Errno    int32
	// SideEffects from the fault profile to apply (already concrete).
	SideEffects []profile.SideEffect
	// CallOriginal passes the (possibly modified) call through.
	CallOriginal bool
	Modify       []Modify
	// DelayCycles, when non-zero, is latency to charge at the call
	// boundary before anything else happens (latency injection).
	DelayCycles uint64
	// Exhaust, when non-nil, is a resource-exhaustion degradation to arm
	// in the kernel at this fire.
	Exhaust   *Exhaust
	CallCount int32
	// Scanned counts the triggers examined for this function on this
	// call; the controller charges virtual cycles proportional to it,
	// modelling native trigger-evaluation cost. With the compiled
	// per-function index this is O(triggers for fn), not O(|plan|).
	Scanned int
}

// Evaluator evaluates a compiled plan's triggers against a stream of
// intercepted calls. One evaluator corresponds to one process (call
// counts are per-process, as with an LD_PRELOADed interceptor's static
// counters). An evaluator owns all of its mutable state — call counts,
// fired set, per-function fault counts and the random stream seeded
// from Plan.Seed — so concurrent campaigns each mint their own from a
// shared, immutable CompiledPlan.
type Evaluator struct {
	cp     *CompiledPlan
	rng    *rand.Rand
	count  map[string]int32
	fired  map[int]bool
	faults map[string]int32
	pid    int
}

// NewEvaluator mints a fresh evaluator over the compiled plan.
func (cp *CompiledPlan) NewEvaluator() *Evaluator {
	return &Evaluator{
		cp:     cp,
		rng:    rand.New(rand.NewSource(cp.plan.Seed)),
		count:  make(map[string]int32),
		fired:  make(map[int]bool),
		faults: make(map[string]int32),
	}
}

// NewEvaluator compiles the plan and mints an evaluator in one step — a
// convenience for plans known to be valid (it panics on compile errors,
// which Unmarshal and Compile report gracefully). Callers running many
// evaluators over one plan should Compile once and mint evaluators from
// the CompiledPlan instead.
func NewEvaluator(plan *Plan, set profile.Set) *Evaluator {
	return MustCompile(plan, set).NewEvaluator()
}

// SetPID identifies the process this evaluator serves, for pid-pinned
// replay triggers.
func (e *Evaluator) SetPID(pid int) { e.pid = pid }

// CallCount returns the number of calls seen so far for fn.
func (e *Evaluator) CallCount(fn string) int32 { return e.count[fn] }

// FaultCount returns the number of faults injected into fn so far — the
// state <after-fault> conditions read.
func (e *Evaluator) FaultCount(fn string) int32 { return e.faults[fn] }

// OnCall records one call to fn and evaluates its triggers. stack is
// the runtime backtrace, innermost frame first. Cycle-window conditions
// see cycle 0; interceptors with a clock use OnCallAt.
func (e *Evaluator) OnCall(fn string, stack []StackFrame) Decision {
	return e.OnCallAt(fn, stack, 0)
}

// OnCallAt is OnCall with the process's current virtual cycle, for
// <cycles> window conditions. Only the triggers indexed under fn are
// examined, in plan order; the first match fires.
func (e *Evaluator) OnCallAt(fn string, stack []StackFrame, cycle uint64) Decision {
	e.count[fn]++
	at := callSite{n: e.count[fn], cycle: cycle, stack: stack}
	triggers := e.cp.byFn[fn]
	scanned := 0
	for i := range triggers {
		ct := &triggers[i]
		scanned++
		if e.fired[ct.idx] {
			if ct.sticky {
				// A sticky trigger keeps failing once fired, without
				// re-evaluating its conditions (or consuming randomness
				// for deterministic ones; random faults re-draw).
				d := e.fire(ct, fn, at.n)
				d.Scanned = scanned
				return d
			}
			if ct.once {
				continue
			}
		}
		if ct.cond != nil && !ct.cond.eval(e, &at) {
			continue
		}
		e.fired[ct.idx] = true
		d := e.fire(ct, fn, at.n)
		d.Scanned = scanned
		return d
	}
	return Decision{CallCount: at.n, Scanned: scanned}
}

// fire materialises the decision for a matched trigger.
func (e *Evaluator) fire(ct *compiledTrigger, fn string, n int32) Decision {
	e.faults[fn]++
	d := Decision{
		Inject:       true,
		Trigger:      ct.idx,
		HasRetval:    ct.hasRetval,
		Retval:       ct.retval,
		HasErrno:     ct.hasErrno,
		Errno:        ct.errno,
		CallOriginal: ct.callOriginal,
		Modify:       ct.modify,
		DelayCycles:  ct.delay,
		Exhaust:      ct.exhaust,
		CallCount:    n,
	}
	if ct.random && len(ct.candidates) > 0 {
		ec := ct.candidates[e.rng.Intn(len(ct.candidates))]
		d.HasRetval = true
		d.Retval = ec.Retval
		if len(ec.SideEffects) > 0 {
			se := ec.SideEffects[e.rng.Intn(len(ec.SideEffects))]
			d.SideEffects = []profile.SideEffect{se}
			if se.Type == profile.SideEffectTLS {
				d.HasErrno = true
				d.Errno = se.Applied()
			}
		}
	}
	return d
}

// ---------------------------------------------------------------------------
// Lint
// ---------------------------------------------------------------------------

// Lint reports non-fatal faultload smells: conditions that can never
// hold and random triggers with nothing to draw from. The profile set
// may be nil (profile-dependent checks are skipped against a nil set
// only when the trigger is not random).
func Lint(plan *Plan, set profile.Set) []string {
	var warns []string
	warn := func(i int, fn, format string, args ...any) {
		warns = append(warns, fmt.Sprintf("trigger %d (%s): %s", i, fn, fmt.Sprintf(format, args...)))
	}
	named := make(map[string]bool, len(plan.Triggers))
	for _, t := range plan.Triggers {
		named[t.Function] = true
	}
	for i := range plan.Triggers {
		t := &plan.Triggers[i]
		if t.Random {
			covered := false
			if set != nil {
				if _, pf, ok := set.FindFunction(t.Function); ok && len(pf.ErrorCodes) > 0 {
					covered = true
				}
			}
			if !covered {
				warn(i, t.Function, "random fault but no profile supplies error codes for %q", t.Function)
			}
		}
		if t.Probability > 100 {
			warn(i, t.Function, "probability %v exceeds 100: fires on every call", t.Probability)
		}
		if t.Exhaust != nil && t.Exhaust.Resource == ResourceFDs && int(t.Exhaust.Slots) >= kernel.MaxFDs {
			warn(i, t.Function, "fd headroom slots=%d >= MaxFDs (%d): the pressure never binds",
				t.Exhaust.Slots, kernel.MaxFDs)
		}
		for j := range t.Conds {
			t.Conds[j].walk(func(c *Cond) {
				if c.XMLName.Local == condAfterFault && !named[c.Function] {
					warn(i, t.Function, "<after-fault function=%q> can never hold: no trigger targets %q", c.Function, c.Function)
				}
			})
		}
	}
	// One warning per blocking condition kind: snapshot sweeps cannot
	// share the pre-fault prefix of a plan whose first fire site is not
	// statically deterministic, and fall back to replaying the whole run
	// from the entry snapshot.
	memoWarned := make(map[string]bool)
	for i := range plan.Triggers {
		t := &plan.Triggers[i]
		if b := memoBlocker(t); b != "" && !memoWarned[b] {
			memoWarned[b] = true
			warn(i, t.Function, "%s condition makes the plan non-memoizable: snapshot sweeps fall back to the entry snapshot", b)
		}
	}
	return warns
}
