package scenario

import (
	"testing"
)

func TestCanonicalKeyStableAndDiscriminating(t *testing.T) {
	base := func() *Plan {
		return &Plan{Seed: 3, Triggers: []Trigger{
			{Function: "read", Inject: 2, Retval: "-1", Errno: "EIO", Once: true},
			{Function: "write", Probability: 10, Random: true},
		}}
	}
	k1 := base().CanonicalKey()
	if k2 := base().CanonicalKey(); k2 != k1 {
		t.Errorf("identical plans key differently: %q vs %q", k1, k2)
	}
	// A marshal/unmarshal round trip must preserve the key — resume
	// compares keys minted in different processes.
	blob, err := base().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if k := rt.CanonicalKey(); k != k1 {
		t.Errorf("round-tripped key %q != original %q", k, k1)
	}

	for name, mut := range map[string]func(*Plan){
		"retval":  func(p *Plan) { p.Triggers[0].Retval = "-2" },
		"errno":   func(p *Plan) { p.Triggers[0].Errno = "EBADF" },
		"inject":  func(p *Plan) { p.Triggers[0].Inject = 3 },
		"seed":    func(p *Plan) { p.Seed = 4 },
		"order":   func(p *Plan) { p.Triggers[0], p.Triggers[1] = p.Triggers[1], p.Triggers[0] },
		"dropped": func(p *Plan) { p.Triggers = p.Triggers[:1] },
	} {
		p := base()
		mut(p)
		if p.CanonicalKey() == k1 {
			t.Errorf("%s change did not change the key", name)
		}
	}

	if (*Plan)(nil).CanonicalKey() != "none" {
		t.Error("nil plan must key as none")
	}
}

func TestPairwiseMergesWithoutSharing(t *testing.T) {
	a := &Plan{Seed: 7, Triggers: []Trigger{{Function: "read", Inject: 1, Retval: "-1", Once: true}}}
	b := &Plan{Triggers: []Trigger{{
		Function: "malloc", Inject: 1, Retval: "0", Once: true,
		Modify: []Modify{{Argument: 1, Op: "set", Value: 0}},
	}}}
	m := Pairwise(a, b)
	if len(m.Triggers) != 2 || m.Triggers[0].Function != "read" || m.Triggers[1].Function != "malloc" {
		t.Fatalf("merged plan = %+v", m)
	}
	if m.Seed != 7 {
		t.Errorf("seed = %d, want a's seed 7", m.Seed)
	}
	// Deep clone: mutating the merged plan must not reach the parents.
	m.Triggers[1].Modify[0].Value = 99
	if b.Triggers[0].Modify[0].Value != 0 {
		t.Error("Pairwise shares Modify state with its input")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged plan invalid: %v", err)
	}

	if got := Pairwise(nil, b); len(got.Triggers) != 1 || got.Triggers[0].Function != "malloc" {
		t.Errorf("Pairwise(nil, b) = %+v", got)
	}
	if got := Pairwise(a, nil); len(got.Triggers) != 1 {
		t.Errorf("Pairwise(a, nil) = %+v", got)
	}
	if b.Seed != 0 {
		t.Errorf("input plan mutated: seed %d", b.Seed)
	}
}
