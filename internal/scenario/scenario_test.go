package scenario

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"lfi/internal/kernel"
	"lfi/internal/profile"
)

// demoSet builds a small profile set for scenario generation.
func demoSet() profile.Set {
	return profile.Set{
		"libc.so": &profile.Profile{
			Library: "libc.so",
			Functions: []profile.Function{
				{Name: "close", ErrorCodes: []profile.ErrorCode{
					{Retval: -1, SideEffects: []profile.SideEffect{
						{Type: profile.SideEffectTLS, Module: "libc.so", Op: "neg", Value: -9},
						{Type: profile.SideEffectTLS, Module: "libc.so", Op: "neg", Value: -5},
					}},
				}},
				{Name: "read", ErrorCodes: []profile.ErrorCode{
					{Retval: -1},
					{Retval: -11},
				}},
				{Name: "malloc", ErrorCodes: []profile.ErrorCode{
					{Retval: 0, SideEffects: []profile.SideEffect{
						{Type: profile.SideEffectTLS, Module: "libc.so", Value: 12},
					}},
				}},
				{Name: "noerr"},
			},
		},
	}
}

func TestPlanXMLRoundTrip(t *testing.T) {
	plan := &Plan{
		Seed: 7,
		Triggers: []Trigger{
			{
				Function: "readdir", Inject: 5, Retval: "0", Errno: "EBADF",
				Stacktrace: &StackTrace{Frames: []string{"0xb824490", "refresh_files"}},
			},
			{
				Function: "read", Inject: 20, CallOriginal: true,
				Modify: []Modify{{Argument: 3, Op: "sub", Value: 10}},
			},
			{Function: "malloc", Probability: 10, Random: true},
		},
	}
	blob, err := plan.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The XML mirrors the paper's example vocabulary.
	for _, want := range []string{
		`name="readdir"`, `inject="5"`, `retval="0"`, `errno="EBADF"`,
		`calloriginal="false"`, `<frame>refresh_files</frame>`,
		`<modify argument="3" op="sub" value="10"`, `calloriginal="true"`,
	} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("plan XML missing %s:\n%s", want, blob)
		}
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Triggers) != 3 || back.Seed != 7 {
		t.Fatalf("round trip lost triggers: %+v", back)
	}
	if got := back.Triggers[0].Frames(); len(got) != 2 || got[1] != "refresh_files" {
		t.Errorf("stacktrace = %v", got)
	}
	if back.Triggers[1].Modify[0].Apply(30) != 20 {
		t.Error("modify sub broken after round trip")
	}
}

func TestPlanXMLQuickRoundTrip(t *testing.T) {
	f := func(fn string, inject int32, retval int32, once bool) bool {
		if strings.ContainsAny(fn, "<>&") || fn == "" || !utf8.ValidString(fn) {
			return true
		}
		// Runes outside the XML character range are replaced with
		// U+FFFD by the encoder, so identity cannot survive them.
		for _, r := range fn {
			valid := r == 0x9 || r == 0xA || r == 0xD ||
				(r >= 0x20 && r <= 0xD7FF) || (r >= 0xE000 && r <= 0xFFFD) ||
				(r >= 0x10000 && r <= 0x10FFFF)
			if !valid {
				return true
			}
		}
		p := &Plan{Triggers: []Trigger{{
			Function: fn, Inject: inject,
			Retval: "0", Once: once,
		}}}
		blob, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Unmarshal(blob)
		if err != nil {
			return false
		}
		return len(q.Triggers) == 1 && q.Triggers[0].Function == fn &&
			q.Triggers[0].Inject == inject && q.Triggers[0].Once == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestModifyOps(t *testing.T) {
	cases := []struct {
		m    Modify
		in   int32
		want int32
	}{
		{Modify{Op: "sub", Value: 10}, 30, 20},
		{Modify{Op: "add", Value: 5}, 2, 7},
		{Modify{Op: "set", Value: 99}, 1, 99},
		{Modify{Op: "", Value: 3}, 1, 3}, // default = set
	}
	for _, c := range cases {
		if got := c.m.Apply(c.in); got != c.want {
			t.Errorf("%+v.Apply(%d) = %d, want %d", c.m, c.in, got, c.want)
		}
	}
}

func TestExhaustiveGeneration(t *testing.T) {
	plan := Exhaustive(demoSet())
	byFn := map[string][]Trigger{}
	for _, tr := range plan.Triggers {
		byFn[tr.Function] = append(byFn[tr.Function], tr)
	}
	if len(byFn["close"]) != 1 || byFn["close"][0].Inject != 1 {
		t.Errorf("close triggers = %+v", byFn["close"])
	}
	// read has two codes: consecutive calls iterate them.
	reads := byFn["read"]
	if len(reads) != 2 || reads[0].Inject != 1 || reads[1].Inject != 2 {
		t.Errorf("read triggers = %+v", reads)
	}
	if reads[0].Retval != "-1" || reads[1].Retval != "-11" {
		t.Errorf("read retvals = %s, %s", reads[0].Retval, reads[1].Retval)
	}
	// Errno attribute derives from the TLS side effect.
	if byFn["close"][0].Errno != "EBADF" {
		t.Errorf("close errno = %q", byFn["close"][0].Errno)
	}
	if len(byFn["noerr"]) != 0 {
		t.Error("functions without codes get no exhaustive triggers")
	}
}

func TestRandomGenerationAndDeterminism(t *testing.T) {
	set := demoSet()
	plan := Random(set, 25, 99)
	if plan.Seed != 99 {
		t.Error("seed not recorded")
	}
	for _, tr := range plan.Triggers {
		if !tr.Random || tr.Probability != 25 {
			t.Errorf("trigger = %+v", tr)
		}
	}
	// Same seed, same decisions.
	run := func() []bool {
		ev := NewEvaluator(plan, set)
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, ev.OnCall("read", nil).Inject)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random evaluation is not deterministic per seed")
		}
	}
	fires := 0
	for _, x := range a {
		if x {
			fires++
		}
	}
	if fires == 0 || fires == 50 {
		t.Errorf("fires = %d/50 at 25%%", fires)
	}
}

func TestReadyMadeFaultloads(t *testing.T) {
	set := demoSet()
	if p := LibcFileIO(set, 10, 1); len(p.Triggers) != 2 { // close, read
		t.Errorf("fileio triggers = %d", len(p.Triggers))
	}
	if p := LibcMemAlloc(set, 10, 1); len(p.Triggers) != 1 || p.Triggers[0].Function != "malloc" {
		t.Errorf("malloc faultload = %+v", p.Triggers)
	}
	if p := LibcSocketIO(set, 10, 1); len(p.Triggers) != 0 {
		t.Errorf("socket faultload should be empty for this set: %+v", p.Triggers)
	}
}

func TestNthCallAndOnce(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{
		{Function: "f", Inject: 3, Retval: "-1"},
		{Function: "g", Retval: "-1", Once: true},
	}}
	ev := NewEvaluator(plan, nil)
	for i := 1; i <= 5; i++ {
		d := ev.OnCall("f", nil)
		if d.Inject != (i == 3) {
			t.Errorf("f call %d: inject=%v", i, d.Inject)
		}
	}
	if !ev.OnCall("g", nil).Inject {
		t.Error("g first call should inject")
	}
	if ev.OnCall("g", nil).Inject {
		t.Error("once trigger fired twice")
	}
	if ev.CallCount("f") != 5 || ev.CallCount("g") != 2 {
		t.Error("call counts wrong")
	}
}

func TestStackMatching(t *testing.T) {
	stack := []StackFrame{
		{Addr: 0xb824490, Symbol: "readdir"},
		{Addr: 0x1000, Symbol: "refresh_files"},
		{Addr: 0x2000, Symbol: "main"},
	}
	cases := []struct {
		frames []string
		want   bool
	}{
		{nil, true},
		{[]string{"readdir"}, true},
		{[]string{"0xb824490", "refresh_files"}, true},
		{[]string{"readdir", "refresh_files", "main"}, true},
		{[]string{"refresh_files"}, false},    // wrong position
		{[]string{"0xdead"}, false},           // wrong address
		{[]string{"readdir", "main"}, false},  // gap
		{[]string{"a", "b", "c", "d"}, false}, // longer than stack
	}
	for _, c := range cases {
		plan := &Plan{Triggers: []Trigger{{
			Function: "readdir", Retval: "0",
		}}}
		if c.frames != nil {
			plan.Triggers[0].Stacktrace = &StackTrace{Frames: c.frames}
		}
		ev := NewEvaluator(plan, nil)
		if got := ev.OnCall("readdir", stack).Inject; got != c.want {
			t.Errorf("frames %v: inject=%v, want %v", c.frames, got, c.want)
		}
	}
}

func TestPidPinning(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{{Function: "f", Retval: "-1", Pid: 2}}}
	ev1 := NewEvaluator(plan, nil)
	ev1.SetPID(1)
	ev2 := NewEvaluator(plan, nil)
	ev2.SetPID(2)
	if ev1.OnCall("f", nil).Inject {
		t.Error("pid-1 evaluator must not fire a pid-2 trigger")
	}
	if !ev2.OnCall("f", nil).Inject {
		t.Error("pid-2 evaluator must fire")
	}
}

func TestRandomTriggerDrawsFromProfile(t *testing.T) {
	set := demoSet()
	plan := &Plan{Seed: 3, Triggers: []Trigger{{Function: "close", Probability: 100, Random: true}}}
	ev := NewEvaluator(plan, set)
	d := ev.OnCall("close", nil)
	if !d.Inject || !d.HasRetval || d.Retval != -1 {
		t.Fatalf("decision = %+v", d)
	}
	if !d.HasErrno || (d.Errno != kernel.EBADF && d.Errno != kernel.EIO) {
		t.Errorf("errno = %d, want EBADF or EIO from side effects", d.Errno)
	}
}

func TestErrnoOnlyTriggerGetsDefaultRetval(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{{Function: "f", Errno: "EIO"}}}
	ev := NewEvaluator(plan, nil)
	d := ev.OnCall("f", nil)
	if !d.Inject || !d.HasRetval || d.Retval != -1 || !d.HasErrno || d.Errno != kernel.EIO {
		t.Errorf("decision = %+v", d)
	}
}

func TestParseErrno(t *testing.T) {
	if v, ok := ParseErrno("EBADF"); !ok || v != kernel.EBADF {
		t.Error("symbolic errno")
	}
	if v, ok := ParseErrno("17"); !ok || v != 17 {
		t.Error("numeric errno")
	}
	if _, ok := ParseErrno(""); ok {
		t.Error("empty errno should not parse")
	}
	if _, ok := ParseErrno("BOGUS"); ok {
		t.Error("bogus errno should not parse")
	}
}

func TestFunctionsList(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{
		{Function: "b"}, {Function: "a"}, {Function: "b"},
	}}
	fns := plan.Functions()
	if len(fns) != 2 || fns[0] != "a" || fns[1] != "b" {
		t.Errorf("functions = %v", fns)
	}
}
