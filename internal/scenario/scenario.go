// Package scenario implements the LFI fault-scenario language (§4): an
// XML "faultload" of <trigger, fault> tuples, automatic generation of
// exhaustive and random scenarios, and ready-made libc faultloads.
//
// The XML mirrors the paper's example:
//
//	<plan>
//	  <function name="readdir" inject="5" retval="0" errno="EBADF"
//	            calloriginal="false">
//	    <stacktrace>
//	      <frame>0xb824490</frame>
//	      <frame>refresh_files</frame>
//	    </stacktrace>
//	  </function>
//	  <function name="read" inject="20" calloriginal="true">
//	    <modify argument="3" op="sub" value="10" />
//	  </function>
//	</plan>
//
// Every time an intercepted function is called, the relevant triggers are
// evaluated; if one matches, the associated fault is injected.
package scenario

import (
	"encoding/xml"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"lfi/internal/kernel"
	"lfi/internal/profile"
)

// Plan is a fault-injection scenario: a set of triggers with faults.
type Plan struct {
	XMLName xml.Name `xml:"plan"`
	// Seed drives random triggers; replay scripts pin it.
	Seed     int64     `xml:"seed,attr,omitempty"`
	Triggers []Trigger `xml:"function"`
}

// Trigger pairs a matching condition with a fault to inject.
type Trigger struct {
	// Function is the intercepted function's name.
	Function string `xml:"name,attr"`
	// Inject fires on the n-th call (1-based); 0 matches any call.
	Inject int32 `xml:"inject,attr,omitempty"`
	// Probability, in percent (0..100], makes the trigger fire randomly;
	// 0 means deterministic.
	Probability float64 `xml:"probability,attr,omitempty"`
	// Retval is the value to return ("" = none / pick from profile).
	Retval string `xml:"retval,attr,omitempty"`
	// Errno names the errno to set, symbolically ("EBADF") or numerically.
	Errno string `xml:"errno,attr,omitempty"`
	// Random picks the injected error code (and side effect) uniformly
	// from the function's fault profile at fire time.
	Random bool `xml:"random,attr,omitempty"`
	// CallOriginal passes the call through to the original function
	// after applying argument modifications.
	CallOriginal bool `xml:"calloriginal,attr"`
	// Stacktrace, when present, must match the runtime backtrace: frame
	// i is compared against entry i (innermost first), by symbol name or
	// 0x-prefixed address.
	Stacktrace *StackTrace `xml:"stacktrace,omitempty"`
	// Modify rewrites arguments before the call proceeds.
	Modify []Modify `xml:"modify"`
	// Once disables the trigger after its first firing.
	Once bool `xml:"once,attr,omitempty"`
	// Pid restricts the trigger to one process (0 = any). This is a
	// reproduction extension used by replay scripts: the paper's replay
	// is per-application, but our spawn-inheriting interception needs to
	// pin injections to the parent or the forked child.
	Pid int `xml:"pid,attr,omitempty"`
}

// StackTrace is the partial-backtrace condition of a trigger.
type StackTrace struct {
	Frames []string `xml:"frame"`
}

// Frames returns the trigger's stack condition ([] when absent).
func (t *Trigger) Frames() []string {
	if t.Stacktrace == nil {
		return nil
	}
	return t.Stacktrace.Frames
}

// Modify is an argument rewrite: argument indexes are 1-based as in the
// paper ("modify argument 3 by subtracting 10").
type Modify struct {
	Argument int32  `xml:"argument,attr"`
	Op       string `xml:"op,attr"` // "set", "add", "sub"
	Value    int32  `xml:"value,attr"`
}

// Apply computes the modified argument value.
func (m Modify) Apply(old int32) int32 {
	switch m.Op {
	case "add":
		return old + m.Value
	case "sub":
		return old - m.Value
	default: // "set"
		return m.Value
	}
}

// Clone returns a deep copy of the plan. Campaign executors that share a
// plan template across workers clone it per run so no trigger state —
// frames, modify lists — is ever reachable from two campaigns at once.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	out := &Plan{Seed: p.Seed, Triggers: make([]Trigger, len(p.Triggers))}
	for i, t := range p.Triggers {
		out.Triggers[i] = t.Clone()
	}
	return out
}

// Clone returns a deep copy of the trigger.
func (t Trigger) Clone() Trigger {
	if t.Stacktrace != nil {
		t.Stacktrace = &StackTrace{Frames: append([]string(nil), t.Stacktrace.Frames...)}
	}
	t.Modify = append([]Modify(nil), t.Modify...)
	return t
}

// Marshal renders the plan as indented XML.
func (p *Plan) Marshal() ([]byte, error) {
	b, err := xml.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal: %w", err)
	}
	return append(b, '\n'), nil
}

// Unmarshal parses plan XML.
func Unmarshal(data []byte) (*Plan, error) {
	var p Plan
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("scenario: unmarshal: %w", err)
	}
	return &p, nil
}

// Functions returns the distinct function names the plan intercepts,
// sorted — the set the controller must synthesise stubs for.
func (p *Plan) Functions() []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range p.Triggers {
		if !seen[t.Function] {
			seen[t.Function] = true
			out = append(out, t.Function)
		}
	}
	sort.Strings(out)
	return out
}

// ParseErrno resolves a trigger's errno attribute to a numeric value.
func ParseErrno(s string) (int32, bool) {
	if s == "" {
		return 0, false
	}
	if v, ok := kernel.ErrnoByName(s); ok {
		return v, true
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, false
	}
	return int32(v), true
}

// ---------------------------------------------------------------------------
// Automatic scenario generation (§4)
// ---------------------------------------------------------------------------

// Exhaustive generates the paper's exhaustive scenario: every exported
// function of every profiled library is included, and consecutive calls
// to a function iterate through its possible error codes.
func Exhaustive(set profile.Set) *Plan {
	plan := &Plan{}
	for _, lib := range sortedKeys(set) {
		for _, fn := range set[lib].Functions {
			call := int32(1)
			for _, ec := range fn.ErrorCodes {
				t := Trigger{
					Function: fn.Name,
					Inject:   call,
					Retval:   strconv.Itoa(int(ec.Retval)),
				}
				if e, ok := firstErrno(ec); ok {
					t.Errno = e
				}
				plan.Triggers = append(plan.Triggers, t)
				call++
			}
		}
	}
	return plan
}

// Random generates the paper's random scenario: probability (in percent)
// selects which calls fail, and the particular error code is drawn from
// the fault profile at fire time.
func Random(set profile.Set, probabilityPct float64, seed int64) *Plan {
	plan := &Plan{Seed: seed}
	for _, lib := range sortedKeys(set) {
		for _, fn := range set[lib].Functions {
			if len(fn.ErrorCodes) == 0 {
				continue
			}
			plan.Triggers = append(plan.Triggers, Trigger{
				Function:    fn.Name,
				Probability: probabilityPct,
				Random:      true,
			})
		}
	}
	return plan
}

// RandomSubset is Random restricted to the named functions — used for the
// ready-made libc faultloads and the paper's "I/O functions with 10%
// probability" Pidgin experiment.
func RandomSubset(set profile.Set, names []string, probabilityPct float64, seed int64) *Plan {
	allowed := make(map[string]bool, len(names))
	for _, n := range names {
		allowed[n] = true
	}
	full := Random(set, probabilityPct, seed)
	out := &Plan{Seed: seed}
	for _, t := range full.Triggers {
		if allowed[t.Function] {
			out.Triggers = append(out.Triggers, t)
		}
	}
	return out
}

// Ready-made libc faultload function sets (§4: "LFI also comes with
// several ready-made fault scenarios for libc").
var (
	// FileIOFuncs are libc's file I/O entry points.
	FileIOFuncs = []string{"open", "close", "read", "write", "unlink", "pipe"}
	// MemFuncs are memory allocation entry points.
	MemFuncs = []string{"malloc"}
	// SocketIOFuncs are socket I/O entry points.
	SocketIOFuncs = []string{"socket", "listen", "accept", "connect", "send", "recv"}
)

// LibcFileIO builds the ready-made "all file I/O faults" random scenario.
func LibcFileIO(set profile.Set, probabilityPct float64, seed int64) *Plan {
	return RandomSubset(set, FileIOFuncs, probabilityPct, seed)
}

// LibcMemAlloc builds the ready-made "all allocation faults" scenario.
func LibcMemAlloc(set profile.Set, probabilityPct float64, seed int64) *Plan {
	return RandomSubset(set, MemFuncs, probabilityPct, seed)
}

// LibcSocketIO builds the ready-made "all socket I/O faults" scenario.
func LibcSocketIO(set profile.Set, probabilityPct float64, seed int64) *Plan {
	return RandomSubset(set, SocketIOFuncs, probabilityPct, seed)
}

func sortedKeys(set profile.Set) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func firstErrno(ec profile.ErrorCode) (string, bool) {
	for _, se := range ec.SideEffects {
		if se.Type == profile.SideEffectTLS {
			v := se.Applied()
			if name := kernel.ErrnoName(v); name != "" {
				return name, true
			}
			return strconv.Itoa(int(v)), true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Trigger evaluation
// ---------------------------------------------------------------------------

// StackFrame describes one backtrace entry for stack-trace triggers.
type StackFrame struct {
	Addr   uint32
	Symbol string
}

// Decision is the outcome of evaluating the triggers for one call.
type Decision struct {
	Inject bool
	// Trigger indexes the fired trigger within the plan.
	Trigger int
	// HasRetval/Retval: value to return instead of calling the original.
	HasRetval bool
	Retval    int32
	// Errno, when HasErrno, must be stored to the errno channel.
	HasErrno bool
	Errno    int32
	// SideEffects from the fault profile to apply (already concrete).
	SideEffects []profile.SideEffect
	// CallOriginal passes the (possibly modified) call through.
	CallOriginal bool
	Modify       []Modify
	CallCount    int32
	// Scanned counts the triggers examined for this call; the controller
	// charges virtual cycles proportional to it, modelling native
	// trigger-evaluation cost.
	Scanned int
}

// Evaluator evaluates a plan's triggers against a stream of intercepted
// calls. One evaluator corresponds to one process (call counts are
// per-process, as with an LD_PRELOADed interceptor's static counters).
// An evaluator owns all of its mutable state — call counts, fired set
// and the random stream seeded from Plan.Seed — so concurrent campaigns
// each construct their own evaluator and never share one; the plan and
// profile set it reads are treated as immutable.
type Evaluator struct {
	plan  *Plan
	set   profile.Set
	rng   *rand.Rand
	count map[string]int32
	fired map[int]bool
	pid   int
}

// NewEvaluator builds an evaluator for the plan. The profile set supplies
// error codes for random triggers; it may be nil when the plan is fully
// explicit.
func NewEvaluator(plan *Plan, set profile.Set) *Evaluator {
	return &Evaluator{
		plan:  plan,
		set:   set,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		count: make(map[string]int32),
		fired: make(map[int]bool),
	}
}

// SetPID identifies the process this evaluator serves, for pid-pinned
// replay triggers.
func (e *Evaluator) SetPID(pid int) { e.pid = pid }

// CallCount returns the number of calls seen so far for fn.
func (e *Evaluator) CallCount(fn string) int32 { return e.count[fn] }

// OnCall records one call to fn and evaluates the triggers. stack is the
// runtime backtrace, innermost frame first.
func (e *Evaluator) OnCall(fn string, stack []StackFrame) Decision {
	e.count[fn]++
	n := e.count[fn]
	scanned := 0
	for i := range e.plan.Triggers {
		t := &e.plan.Triggers[i]
		if t.Function != fn {
			continue
		}
		scanned++
		if t.Pid != 0 && t.Pid != e.pid {
			continue
		}
		if t.Once && e.fired[i] {
			continue
		}
		if t.Inject > 0 && t.Inject != n {
			continue
		}
		if t.Probability > 0 && e.rng.Float64()*100 >= t.Probability {
			continue
		}
		if !matchStack(t.Frames(), stack) {
			continue
		}
		e.fired[i] = true
		d := e.fire(i, t, fn, n)
		d.Scanned = scanned
		return d
	}
	return Decision{CallCount: n, Scanned: scanned}
}

func (e *Evaluator) fire(idx int, t *Trigger, fn string, n int32) Decision {
	d := Decision{
		Inject:       true,
		Trigger:      idx,
		CallOriginal: t.CallOriginal,
		Modify:       t.Modify,
		CallCount:    n,
	}
	if t.Retval != "" {
		if v, err := strconv.ParseInt(t.Retval, 0, 32); err == nil {
			d.HasRetval = true
			d.Retval = int32(v)
		}
	}
	if v, ok := ParseErrno(t.Errno); ok {
		d.HasErrno = true
		d.Errno = v
	}
	if t.Random && e.set != nil {
		if _, pf, ok := e.set.FindFunction(fn); ok && len(pf.ErrorCodes) > 0 {
			ec := pf.ErrorCodes[e.rng.Intn(len(pf.ErrorCodes))]
			d.HasRetval = true
			d.Retval = ec.Retval
			if len(ec.SideEffects) > 0 {
				se := ec.SideEffects[e.rng.Intn(len(ec.SideEffects))]
				d.SideEffects = []profile.SideEffect{se}
				if se.Type == profile.SideEffectTLS {
					d.HasErrno = true
					d.Errno = se.Applied()
				}
			}
		}
	}
	// A trigger that neither returns a value nor modifies arguments and
	// does not call the original would hang the caller; treat it as a
	// pure pass-through probe.
	if !d.HasRetval && len(d.Modify) == 0 && !t.CallOriginal && !t.Random {
		if !d.HasErrno {
			d.CallOriginal = true
		} else {
			// errno-only injection still needs a retval: without a
			// profile we return -1, the C convention.
			d.HasRetval = true
			d.Retval = -1
		}
	}
	return d
}

// matchStack checks the paper's partial stack-trace condition.
func matchStack(want []string, got []StackFrame) bool {
	if len(want) == 0 {
		return true
	}
	if len(want) > len(got) {
		return false
	}
	for i, w := range want {
		f := got[i]
		if strings.HasPrefix(w, "0x") || strings.HasPrefix(w, "0X") {
			v, err := strconv.ParseUint(w[2:], 16, 32)
			if err != nil || uint32(v) != f.Addr {
				return false
			}
			continue
		}
		if w != f.Symbol {
			return false
		}
	}
	return true
}
