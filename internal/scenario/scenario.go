// Package scenario implements the LFI fault-scenario language (§4): an
// XML "faultload" of <trigger, fault> tuples, automatic generation of
// exhaustive and random scenarios, and ready-made libc faultloads.
//
// The XML mirrors the paper's example:
//
//	<plan>
//	  <function name="readdir" inject="5" retval="0" errno="EBADF"
//	            calloriginal="false">
//	    <stacktrace>
//	      <frame>0xb824490</frame>
//	      <frame>refresh_files</frame>
//	    </stacktrace>
//	  </function>
//	  <function name="read" inject="20" calloriginal="true">
//	    <modify argument="3" op="sub" value="10" />
//	  </function>
//	</plan>
//
// # Compile, then evaluate
//
// A plan is compiled once — Compile(plan, set) — into an immutable
// CompiledPlan: triggers are indexed per function, retval/errno strings
// and 0x frame addresses are parsed up front, and random-fault
// candidates are resolved from the profile set. Every intercepted call
// then evaluates only the triggers guarding that function (the paper's
// "every time an intercepted function is called, the relevant triggers
// are evaluated"), in O(triggers for fn) instead of O(|plan|) —
// exhaustive faultloads no longer slow every call down. Malformed
// attributes (retval="x?") are rejected by Unmarshal/Compile with a
// position-carrying CompileError instead of being silently ignored at
// fire time. Per-process mutable state — call counts, the fired set,
// fault counts and the random stream seeded from Plan.Seed — lives in
// the Evaluators a CompiledPlan mints, so one compiled plan is shared
// read-only by any number of processes and campaign workers.
//
// # Composable conditions
//
// Beyond the paper's flat attributes, a trigger can nest a composable
// condition tree: <and>, <or> and <not> containers over leaves for
// call-count windows (<calls after/every/until>), virtual-cycle windows
// (<cycles min/max>), pids (<pid is>), probabilities (<probability
// pct>), partial backtraces (<stacktrace>) and — for correlated,
// cascading faultloads — cross-trigger state (<after-fault
// function="malloc"/> holds once a fault has been injected into
// malloc). sticky="true" keeps a trigger failing on every call after it
// first fires. A worked correlated faultload — ENOSPC write failures
// that start only after the first malloc fault, as a real heap-pressure
// cascade would:
//
//	<plan>
//	  <function name="malloc" inject="4" retval="0" errno="ENOMEM" once="true"></function>
//	  <function name="write" retval="-1" errno="ENOSPC" sticky="true">
//	    <after-fault function="malloc"></after-fault>
//	  </function>
//	</plan>
//
// Flat attributes and condition elements combine as AND, evaluated in a
// fixed order (pid, inject, probability, stacktrace, then condition
// elements in document order) so the number of random draws a partially
// matching call consumes — and therefore replay — is deterministic.
package scenario

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"

	"lfi/internal/kernel"
	"lfi/internal/profile"
)

// Plan is a fault-injection scenario: a set of triggers with faults.
type Plan struct {
	XMLName xml.Name `xml:"plan"`
	// Seed drives random triggers; replay scripts pin it.
	Seed     int64     `xml:"seed,attr,omitempty"`
	Triggers []Trigger `xml:"function"`
}

// Trigger pairs a matching condition with a fault to inject.
type Trigger struct {
	// Function is the intercepted function's name.
	Function string `xml:"name,attr"`
	// Inject fires on the n-th call (1-based); 0 matches any call.
	Inject int32 `xml:"inject,attr,omitempty"`
	// Probability, in percent (0..100], makes the trigger fire randomly;
	// 0 means deterministic.
	Probability float64 `xml:"probability,attr,omitempty"`
	// Retval is the value to return ("" = none / pick from profile).
	Retval string `xml:"retval,attr,omitempty"`
	// Errno names the errno to set, symbolically ("EBADF") or numerically.
	Errno string `xml:"errno,attr,omitempty"`
	// Random picks the injected error code (and side effect) uniformly
	// from the function's fault profile at fire time.
	Random bool `xml:"random,attr,omitempty"`
	// CallOriginal passes the call through to the original function
	// after applying argument modifications.
	CallOriginal bool `xml:"calloriginal,attr"`
	// Stacktrace, when present, must match the runtime backtrace: frame
	// i is compared against entry i (innermost first), by symbol name or
	// 0x-prefixed address.
	Stacktrace *StackTrace `xml:"stacktrace,omitempty"`
	// Modify rewrites arguments before the call proceeds.
	Modify []Modify `xml:"modify"`
	// Once disables the trigger after its first firing.
	Once bool `xml:"once,attr,omitempty"`
	// Pid restricts the trigger to one process (0 = any). This is a
	// reproduction extension used by replay scripts: the paper's replay
	// is per-application, but our spawn-inheriting interception needs to
	// pin injections to the parent or the forked child.
	Pid int `xml:"pid,attr,omitempty"`
	// Sticky keeps the trigger firing on every subsequent call once it
	// has fired — a persistent fault (disk full, exhausted heap) rather
	// than a transient one. Contradicts Once.
	Sticky bool `xml:"sticky,attr,omitempty"`
	// Delay, when present, charges the given number of guest cycles at
	// the intercepted call boundary every time the trigger fires — the
	// latency-injection fault model. The delay is charged before the
	// original proceeds (or before the errno return), so cycle budgets,
	// <cycles> windows and hang classification all see it.
	Delay *Delay `xml:"delay"`
	// Exhaust, when present, arms a stateful resource-exhaustion fault
	// in the kernel at fire time: a disk-byte quota (ENOSPC) or
	// fd-table pressure (EMFILE). See Exhaust.
	Exhaust *Exhaust `xml:"exhaust"`
	// Conds is the composable condition tree: any number of condition
	// elements (<and>, <or>, <not>, <calls>, <cycles>, <pid>,
	// <probability>, <stacktrace>, <after-fault>) as direct children of
	// <function>, ANDed with each other and the flat attributes above.
	Conds []Cond `xml:",any"`
}

// Exhaustible resources an <exhaust> fault can degrade.
const (
	// ResourceDisk arms a byte quota: once `after` bytes have been
	// written post-fire, Write and creating Open return ENOSPC.
	ResourceDisk = "disk"
	// ResourceFDs shrinks the fd-table headroom to `slots` free
	// descriptors at fire time; allocations beyond it return EMFILE.
	ResourceFDs = "fds"
)

// Delay is the latency-injection fault: <delay cycles="N"> charges N
// guest cycles at the call boundary each time its trigger fires.
type Delay struct {
	Cycles uint64 `xml:"cycles,attr"`
}

// Exhaust is the resource-exhaustion fault: <exhaust resource="disk"
// after="K"/> or <exhaust resource="fds" slots="K"/>. Unlike a one-shot
// errno store, it is stateful — firing arms a degradation in the
// kernel that persists for the rest of the run (and is carried through
// kernel snapshots and controller checkpoints). A sticky trigger
// re-arms on every call, resetting the quota each time.
type Exhaust struct {
	// Resource is ResourceDisk or ResourceFDs.
	Resource string `xml:"resource,attr"`
	// After is the disk-byte quota: writes beyond it (counted from the
	// moment the trigger fires) fail with ENOSPC. 0 means the disk is
	// full immediately. Only valid with resource="disk".
	After int64 `xml:"after,attr,omitempty"`
	// Slots is the fd-table headroom left at fire time: descriptor
	// allocations beyond the current population plus Slots fail with
	// EMFILE. 0 saturates the table immediately. Only valid with
	// resource="fds".
	Slots int32 `xml:"slots,attr,omitempty"`
}

// StackTrace is the partial-backtrace condition of a trigger.
type StackTrace struct {
	Frames []string `xml:"frame"`
}

// Frames returns the trigger's stack condition ([] when absent).
func (t *Trigger) Frames() []string {
	if t.Stacktrace == nil {
		return nil
	}
	return t.Stacktrace.Frames
}

// Modify is an argument rewrite: argument indexes are 1-based as in the
// paper ("modify argument 3 by subtracting 10").
type Modify struct {
	Argument int32  `xml:"argument,attr"`
	Op       string `xml:"op,attr"` // "set", "add", "sub"
	Value    int32  `xml:"value,attr"`
}

// Apply computes the modified argument value.
func (m Modify) Apply(old int32) int32 {
	switch m.Op {
	case "add":
		return old + m.Value
	case "sub":
		return old - m.Value
	default: // "set"
		return m.Value
	}
}

// Clone returns a deep copy of the plan. Campaign executors that share a
// plan template across workers clone it per run so no trigger state —
// frames, modify lists — is ever reachable from two campaigns at once.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	out := &Plan{Seed: p.Seed, Triggers: make([]Trigger, len(p.Triggers))}
	for i, t := range p.Triggers {
		out.Triggers[i] = t.Clone()
	}
	return out
}

// Clone returns a deep copy of the trigger.
func (t Trigger) Clone() Trigger {
	if t.Stacktrace != nil {
		t.Stacktrace = &StackTrace{Frames: append([]string(nil), t.Stacktrace.Frames...)}
	}
	if t.Delay != nil {
		d := *t.Delay
		t.Delay = &d
	}
	if t.Exhaust != nil {
		x := *t.Exhaust
		t.Exhaust = &x
	}
	t.Modify = append([]Modify(nil), t.Modify...)
	if t.Conds != nil {
		conds := make([]Cond, len(t.Conds))
		for i, c := range t.Conds {
			conds[i] = c.clone()
		}
		t.Conds = conds
	}
	return t
}

// Marshal renders the plan as indented XML.
func (p *Plan) Marshal() ([]byte, error) {
	b, err := xml.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal: %w", err)
	}
	return append(b, '\n'), nil
}

// Unmarshal parses and validates plan XML. Triggers with unparsable
// retval/errno attributes or malformed condition trees are rejected
// here with a position-carrying CompileError — they do not survive to
// be silently skipped at fire time.
func Unmarshal(data []byte) (*Plan, error) {
	var p Plan
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("scenario: unmarshal: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Functions returns the distinct function names the plan intercepts,
// sorted — the set the controller must synthesise stubs for.
func (p *Plan) Functions() []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range p.Triggers {
		if !seen[t.Function] {
			seen[t.Function] = true
			out = append(out, t.Function)
		}
	}
	sort.Strings(out)
	return out
}

// ParseErrno resolves a trigger's errno attribute to a numeric value.
func ParseErrno(s string) (int32, bool) {
	if s == "" {
		return 0, false
	}
	if v, ok := kernel.ErrnoByName(s); ok {
		return v, true
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, false
	}
	return int32(v), true
}

// ---------------------------------------------------------------------------
// Automatic scenario generation (§4)
// ---------------------------------------------------------------------------

// Exhaustive generates the paper's exhaustive scenario: every exported
// function of every profiled library is included, and consecutive calls
// to a function iterate through its possible error codes.
func Exhaustive(set profile.Set) *Plan {
	plan := &Plan{}
	for _, lib := range sortedKeys(set) {
		for _, fn := range set[lib].Functions {
			call := int32(1)
			for _, ec := range fn.ErrorCodes {
				t := Trigger{
					Function: fn.Name,
					Inject:   call,
					Retval:   strconv.Itoa(int(ec.Retval)),
				}
				if e, ok := firstErrno(ec); ok {
					t.Errno = e
				}
				plan.Triggers = append(plan.Triggers, t)
				call++
			}
		}
	}
	return plan
}

// Random generates the paper's random scenario: probability (in percent)
// selects which calls fail, and the particular error code is drawn from
// the fault profile at fire time.
func Random(set profile.Set, probabilityPct float64, seed int64) *Plan {
	plan := &Plan{Seed: seed}
	for _, lib := range sortedKeys(set) {
		for _, fn := range set[lib].Functions {
			if len(fn.ErrorCodes) == 0 {
				continue
			}
			plan.Triggers = append(plan.Triggers, Trigger{
				Function:    fn.Name,
				Probability: probabilityPct,
				Random:      true,
			})
		}
	}
	return plan
}

// RandomSubset is Random restricted to the named functions — used for the
// ready-made libc faultloads and the paper's "I/O functions with 10%
// probability" Pidgin experiment.
func RandomSubset(set profile.Set, names []string, probabilityPct float64, seed int64) *Plan {
	allowed := make(map[string]bool, len(names))
	for _, n := range names {
		allowed[n] = true
	}
	full := Random(set, probabilityPct, seed)
	out := &Plan{Seed: seed}
	for _, t := range full.Triggers {
		if allowed[t.Function] {
			out.Triggers = append(out.Triggers, t)
		}
	}
	return out
}

// Ready-made libc faultload function sets (§4: "LFI also comes with
// several ready-made fault scenarios for libc").
var (
	// FileIOFuncs are libc's file I/O entry points.
	FileIOFuncs = []string{"open", "close", "read", "write", "unlink", "pipe"}
	// MemFuncs are memory allocation entry points.
	MemFuncs = []string{"malloc"}
	// SocketIOFuncs are socket I/O entry points.
	SocketIOFuncs = []string{"socket", "listen", "accept", "connect", "send", "recv"}
)

// LibcFileIO builds the ready-made "all file I/O faults" random scenario.
func LibcFileIO(set profile.Set, probabilityPct float64, seed int64) *Plan {
	return RandomSubset(set, FileIOFuncs, probabilityPct, seed)
}

// LibcMemAlloc builds the ready-made "all allocation faults" scenario.
func LibcMemAlloc(set profile.Set, probabilityPct float64, seed int64) *Plan {
	return RandomSubset(set, MemFuncs, probabilityPct, seed)
}

// LibcSocketIO builds the ready-made "all socket I/O faults" scenario.
func LibcSocketIO(set profile.Set, probabilityPct float64, seed int64) *Plan {
	return RandomSubset(set, SocketIOFuncs, probabilityPct, seed)
}

func sortedKeys(set profile.Set) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func firstErrno(ec profile.ErrorCode) (string, bool) {
	for _, se := range ec.SideEffects {
		if se.Type == profile.SideEffectTLS {
			v := se.Applied()
			if name := kernel.ErrnoName(v); name != "" {
				return name, true
			}
			return strconv.Itoa(int(v)), true
		}
	}
	return "", false
}

// Trigger evaluation lives in compile.go: Compile builds an immutable
// CompiledPlan (per-function index, pre-parsed faults) and Evaluators
// carry the per-process mutable state.
