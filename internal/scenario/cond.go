package scenario

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
)

// Condition element names of the trigger grammar.
const (
	condAnd        = "and"
	condOr         = "or"
	condNot        = "not"
	condCalls      = "calls"
	condCycles     = "cycles"
	condPid        = "pid"
	condProb       = "probability"
	condStack      = "stacktrace"
	condAfterFault = "after-fault"
)

// Cond is one node of a trigger's composable condition tree. A trigger
// may carry any number of condition elements as direct children of its
// <function> element; they are ANDed with each other and with the flat
// trigger attributes (inject, probability, pid, <stacktrace>).
//
// Containers:
//
//	<and> c1 c2 ... </and>   all children hold (evaluated in order)
//	<or>  c1 c2 ... </or>    any child holds (short-circuits in order)
//	<not> c </not>           exactly one child, negated
//
// Leaves:
//
//	<calls after="3" every="2" until="9"/>  call-count window: calls
//	    after the first `after` ones, every `every`-th of them, up to
//	    call `until` (0 = open-ended)
//	<cycles min="1000" max="90000"/>        virtual-cycle window of the
//	    intercepted process at call time
//	<pid is="2"/>                           process id equals `is`
//	<probability pct="12.5"/>               independent biased coin
//	<stacktrace><frame>f</frame>...</stacktrace>  partial backtrace
//	    matches, innermost frame first (symbol or 0x-address)
//	<after-fault function="malloc" count="2"/>    cross-trigger state:
//	    at least `count` (default 1) faults have already been injected
//	    into the named function in this process
//
// Container children that consume randomness (<probability>) draw from
// the evaluator's seeded stream in evaluation order, so composed
// conditions remain deterministic per Plan.Seed.
type Cond struct {
	XMLName xml.Name
	// Function and Count belong to <after-fault>. Count 0 means the
	// default of 1 prior fault (XML cannot distinguish an absent count
	// attribute from an explicit zero).
	Function string `xml:"function,attr,omitempty"`
	Count    int32  `xml:"count,attr,omitempty"`
	// After, Every and Until belong to <calls>.
	After int32 `xml:"after,attr,omitempty"`
	Every int32 `xml:"every,attr,omitempty"`
	Until int32 `xml:"until,attr,omitempty"`
	// Min and Max belong to <cycles>.
	Min uint64 `xml:"min,attr,omitempty"`
	Max uint64 `xml:"max,attr,omitempty"`
	// Is belongs to <pid>.
	Is int `xml:"is,attr,omitempty"`
	// Pct belongs to <probability>.
	Pct float64 `xml:"pct,attr,omitempty"`
	// Frames belong to <stacktrace>.
	Frames []string `xml:"frame"`
	// Kids are the children of <and>, <or> and <not>.
	Kids []Cond `xml:",any"`
}

// And builds an <and> condition.
func And(kids ...Cond) Cond { return Cond{XMLName: condName(condAnd), Kids: kids} }

// Or builds an <or> condition.
func Or(kids ...Cond) Cond { return Cond{XMLName: condName(condOr), Kids: kids} }

// Not builds a <not> condition.
func Not(kid Cond) Cond { return Cond{XMLName: condName(condNot), Kids: []Cond{kid}} }

// Calls builds a <calls> call-count window (0 leaves a bound open).
func Calls(after, every, until int32) Cond {
	return Cond{XMLName: condName(condCalls), After: after, Every: every, Until: until}
}

// Cycles builds a <cycles> virtual-cycle window (max 0 = open-ended).
func Cycles(min, max uint64) Cond {
	return Cond{XMLName: condName(condCycles), Min: min, Max: max}
}

// PidIs builds a <pid> condition.
func PidIs(pid int) Cond { return Cond{XMLName: condName(condPid), Is: pid} }

// Probability builds a <probability> condition (pct in (0, 100]).
func Probability(pct float64) Cond { return Cond{XMLName: condName(condProb), Pct: pct} }

// Stack builds a <stacktrace> condition, innermost frame first.
func Stack(frames ...string) Cond {
	return Cond{XMLName: condName(condStack), Frames: frames}
}

// AfterFault builds an <after-fault> condition on one prior fault.
func AfterFault(function string) Cond {
	return Cond{XMLName: condName(condAfterFault), Function: function}
}

// AfterFaultN builds an <after-fault> condition requiring count prior
// faults. Count 0 means the default of 1, matching the XML attribute.
func AfterFaultN(function string, count int32) Cond {
	return Cond{XMLName: condName(condAfterFault), Function: function, Count: count}
}

func condName(local string) xml.Name { return xml.Name{Local: local} }

// clone deep-copies the condition tree.
func (c Cond) clone() Cond {
	if c.Frames != nil {
		c.Frames = append([]string(nil), c.Frames...)
	}
	if c.Kids != nil {
		kids := make([]Cond, len(c.Kids))
		for i, k := range c.Kids {
			kids[i] = k.clone()
		}
		c.Kids = kids
	}
	return c
}

// extraAttrs reports whether the node carries attributes that do not
// belong to its element kind; zero clears the kind's own attributes.
func (c *Cond) extraAttrs(zero func(*Cond)) bool {
	d := *c
	zero(&d)
	return d.Function != "" || d.Count != 0 || d.After != 0 || d.Every != 0 ||
		d.Until != 0 || d.Min != 0 || d.Max != 0 || d.Is != 0 || d.Pct != 0
}

// validate checks one condition node (recursively) at parse time.
func (c *Cond) validate() error {
	name := c.XMLName.Local
	container := name == condAnd || name == condOr || name == condNot
	if !container {
		if len(c.Kids) > 0 {
			return fmt.Errorf("<%s> cannot contain nested conditions", name)
		}
	}
	if name != condStack && len(c.Frames) > 0 {
		return fmt.Errorf("<%s> cannot contain <frame> elements", name)
	}
	switch name {
	case condAnd, condOr:
		if c.extraAttrs(func(*Cond) {}) {
			return fmt.Errorf("<%s> takes no attributes", name)
		}
		if len(c.Kids) == 0 {
			return fmt.Errorf("<%s> needs at least one child condition", name)
		}
	case condNot:
		if c.extraAttrs(func(*Cond) {}) {
			return fmt.Errorf("<not> takes no attributes")
		}
		if len(c.Kids) != 1 {
			return fmt.Errorf("<not> needs exactly one child condition, has %d", len(c.Kids))
		}
	case condCalls:
		if c.extraAttrs(func(d *Cond) { d.After, d.Every, d.Until = 0, 0, 0 }) {
			return fmt.Errorf("<calls> takes only after, every and until attributes")
		}
		if c.After < 0 || c.Every < 0 || c.Until < 0 {
			return fmt.Errorf("<calls> window bounds must be non-negative")
		}
		if c.After == 0 && c.Every == 0 && c.Until == 0 {
			return fmt.Errorf("<calls> needs at least one of after, every, until")
		}
		if c.Until > 0 && c.Until <= c.After {
			return fmt.Errorf("<calls> until=%d never exceeds after=%d: the window is empty", c.Until, c.After)
		}
	case condCycles:
		if c.extraAttrs(func(d *Cond) { d.Min, d.Max = 0, 0 }) {
			return fmt.Errorf("<cycles> takes only min and max attributes")
		}
		if c.Min == 0 && c.Max == 0 {
			return fmt.Errorf("<cycles> needs min and/or max")
		}
		if c.Max > 0 && c.Max < c.Min {
			return fmt.Errorf("<cycles> max=%d below min=%d: the window is empty", c.Max, c.Min)
		}
	case condPid:
		if c.extraAttrs(func(d *Cond) { d.Is = 0 }) {
			return fmt.Errorf("<pid> takes only the is attribute")
		}
		if c.Is == 0 {
			return fmt.Errorf(`<pid> needs is="<pid>"`)
		}
	case condProb:
		if c.extraAttrs(func(d *Cond) { d.Pct = 0 }) {
			return fmt.Errorf("<probability> takes only the pct attribute")
		}
		if !(c.Pct > 0 && c.Pct <= 100) {
			return fmt.Errorf("<probability> pct=%v outside (0, 100]", c.Pct)
		}
	case condStack:
		if c.extraAttrs(func(*Cond) {}) {
			return fmt.Errorf("<stacktrace> takes no attributes")
		}
		if len(c.Frames) == 0 {
			return fmt.Errorf("<stacktrace> condition needs at least one <frame>")
		}
		if err := validateFrames(c.Frames); err != nil {
			return err
		}
	case condAfterFault:
		if c.extraAttrs(func(d *Cond) { d.Function, d.Count = "", 0 }) {
			return fmt.Errorf("<after-fault> takes only function and count attributes")
		}
		if c.Function == "" {
			return fmt.Errorf(`<after-fault> needs function="<name>"`)
		}
		if c.Count < 0 {
			return fmt.Errorf("<after-fault> count=%d must be non-negative", c.Count)
		}
	default:
		return fmt.Errorf("unknown condition element <%s>", name)
	}
	for i := range c.Kids {
		if err := c.Kids[i].validate(); err != nil {
			return err
		}
	}
	return nil
}

// validateFrames checks that every 0x-prefixed frame is a parseable
// 32-bit address; symbolic frames are free-form.
func validateFrames(frames []string) error {
	for _, w := range frames {
		if strings.HasPrefix(w, "0x") || strings.HasPrefix(w, "0X") {
			if _, err := strconv.ParseUint(w[2:], 16, 32); err != nil {
				return fmt.Errorf("bad stack frame address %q: %v", w, err)
			}
		}
	}
	return nil
}

// walk visits the node and all descendants.
func (c *Cond) walk(visit func(*Cond)) {
	visit(c)
	for i := range c.Kids {
		c.Kids[i].walk(visit)
	}
}
