// Faultload identity and multi-fault synthesis for persistent
// campaigns (internal/campaign): a canonical key names a faultload
// stably across processes and machine restarts, and Pairwise merges two
// single-fault plans into one correlated multi-fault plan — the
// escalation planner's second-round unit.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CanonicalKey returns a short, stable digest identifying this
// faultload. Two plans have the same key iff they marshal to the same
// XML — trigger order, attributes, condition trees and the seed all
// participate — so the key survives process restarts and is safe to use
// as the resume identity of a persistent campaign store. A nil plan
// (an uninstrumented run) has the fixed key "none".
func (p *Plan) CanonicalKey() string {
	if p == nil {
		return "none"
	}
	b, err := p.Marshal()
	if err != nil {
		// Marshal only fails on values that cannot come from Unmarshal
		// (e.g. an XML-invalid function name injected programmatically).
		// Such a plan still deserves a deterministic identity.
		b = []byte(fmt.Sprintf("unmarshalable:%+v", p))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Pairwise merges two faultloads into one multi-fault plan: all of a's
// triggers followed by all of b's, deep-cloned so the result shares no
// state with its parents. This is the adaptive escalation unit — two
// single-fault survivors combined into a correlated two-fault scenario —
// but it composes arbitrary plans. When both plans carry a seed, a's
// wins (the merged plan has one random stream).
func Pairwise(a, b *Plan) *Plan {
	out := a.Clone()
	if out == nil {
		out = &Plan{}
	}
	if b != nil {
		bc := b.Clone()
		out.Triggers = append(out.Triggers, bc.Triggers...)
		if out.Seed == 0 {
			out.Seed = bc.Seed
		}
	}
	return out
}
