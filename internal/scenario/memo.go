// Static first-fire-site analysis for prefix-memoized sweeps.
//
// A sweep's snapshot executor can share the deterministic execution
// prefix of many experiments — everything up to the moment a faultload
// first becomes fireable — by checkpointing the guest just before that
// point once and restoring every group member from the checkpoint. That
// is only sound when the analyzer can prove, statically, that (a) no
// trigger of the plan can fire before a specific (function, call-N)
// site, and (b) evaluating calls 1..N-1 is observably identical across
// every plan mapped to the same site: same per-call cycle charge (a
// function of the per-function trigger count), no injections, and no
// random draws (a <probability> condition consumes the seeded stream on
// every examined call, so its mere presence rules memoization out;
// random="true" faults draw only at fire time and stay memoizable).
package scenario

import "fmt"

// FireSite is a deterministic first-fire site: no trigger of the
// analyzed plan can fire before the Call-th intercepted call (1-based,
// counted per process) to Function.
type FireSite struct {
	Function string
	Call     int32
}

// FirstFireSite conservatively maps a plan to the deterministic site of
// its earliest possible injection. The empty reason means the plan is
// memoizable: a sweep may run any same-shaped plan to just before the
// site and reuse the resulting state for every plan sharing the site.
// A non-empty reason names what forces the fallback to the entry
// snapshot: "probability", "after-fault", "sticky", "pid", "cycles",
// "triggers target multiple functions", or "no triggers".
//
// The site is a lower bound, not an exact fire point — conditions the
// analyzer does not model (stacktrace, <calls> windows inside <or>)
// only make the real first fire later, which is safe: the shared prefix
// just ends earlier than it ideally could.
func FirstFireSite(p *Plan) (FireSite, string) {
	if p == nil || len(p.Triggers) == 0 {
		return FireSite{}, "no triggers"
	}
	fn := p.Triggers[0].Function
	var site int32
	for i := range p.Triggers {
		t := &p.Triggers[i]
		if t.Function != fn {
			return FireSite{}, "triggers target multiple functions"
		}
		if b := memoBlocker(t); b != "" {
			return FireSite{}, b
		}
		if c := earliestCall(t); site == 0 || c < site {
			site = c
		}
	}
	return FireSite{Function: fn, Call: site}, ""
}

// memoBlocker reports why one trigger rules out prefix memoization
// ("" = it does not): probability consumes random draws on examined
// calls before the fire, after-fault couples the trigger to other
// triggers' fire history, sticky makes the first fire site load-bearing
// for every later call, and pid/cycles windows depend on runtime state
// the analyzer does not model.
func memoBlocker(t *Trigger) string {
	switch {
	case t.Sticky:
		return "sticky"
	case t.Probability > 0:
		return "probability"
	case t.Pid != 0:
		return "pid"
	}
	blocked := ""
	for i := range t.Conds {
		t.Conds[i].walk(func(c *Cond) {
			if blocked != "" {
				return
			}
			switch c.XMLName.Local {
			case condProb:
				blocked = "probability"
			case condAfterFault:
				blocked = "after-fault"
			case condPid:
				blocked = "pid"
			case condCycles:
				blocked = "cycles"
			}
		})
		if blocked != "" {
			break
		}
	}
	return blocked
}

// earliestCall lower-bounds the first call number at which the trigger
// could fire. inject="n" is an exact n-th-call match, and top-level
// <calls> conditions (including those under top-level <and> chains) are
// ANDed with it, so their `after` bounds raise the floor; conditions
// nested under <or>/<not> are ignored (conservative — they can only be
// modeled as "might hold on any call").
func earliestCall(t *Trigger) int32 {
	n := int32(1)
	if t.Inject > 0 && t.Inject > n {
		n = t.Inject
	}
	var visit func(c *Cond)
	visit = func(c *Cond) {
		switch c.XMLName.Local {
		case condAnd:
			for i := range c.Kids {
				visit(&c.Kids[i])
			}
		case condCalls:
			if c.After+1 > n {
				n = c.After + 1
			}
		}
	}
	for i := range t.Conds {
		visit(&t.Conds[i])
	}
	return n
}

// FirstFireSite applies the static analyzer to the compiled plan's
// source faultload; see the package-level FirstFireSite.
func (cp *CompiledPlan) FirstFireSite() (FireSite, string) {
	return FirstFireSite(cp.plan)
}

// Fire phases reported by FirePhase.
const (
	PhaseStartup = "startup"
	PhaseSteady  = "steady-state"
	PhaseNever   = "never"
)

// FirePhase statically classifies when the plan's earliest injection
// can land in the guest's lifecycle. Unlike FirstFireSite it needs no
// memoizability proof: each trigger is lower-bounded independently
// (inject="n", top-level ANDed <calls after> windows, and <cycles min>
// floors) and the loosest trigger wins. PhaseStartup means some
// trigger may fire at its function's very first call with no cycle
// floor — the fault can hit initialization paths. PhaseSteady means
// every trigger waits out a warmup window, so the fault lands on a
// guest that is already serving. The second return is human-readable
// evidence for the earliest fireable site.
func FirePhase(p *Plan) (phase, site string) {
	if p == nil || len(p.Triggers) == 0 {
		return PhaseNever, "no triggers"
	}
	type bound struct {
		fn     string
		call   int32
		cycles uint64
	}
	var best *bound
	for i := range p.Triggers {
		t := &p.Triggers[i]
		b := bound{fn: t.Function, call: earliestCall(t), cycles: cycleFloor(t)}
		if b.call <= 1 && b.cycles == 0 {
			return PhaseStartup, fmt.Sprintf("%s fireable from call 1", b.fn)
		}
		if best == nil || b.call < best.call ||
			(b.call == best.call && b.cycles < best.cycles) {
			best = &b
		}
	}
	site = fmt.Sprintf("%s fireable from call %d", best.fn, best.call)
	if best.cycles > 0 {
		site += fmt.Sprintf(" and cycle %d", best.cycles)
	}
	return PhaseSteady, site
}

// cycleFloor lower-bounds the virtual cycle count before which the
// trigger cannot fire: top-level <cycles min> conditions (including
// under top-level <and> chains) are ANDed with everything else, so
// their floors bind; <or>/<not> children are conservatively ignored.
func cycleFloor(t *Trigger) uint64 {
	var n uint64
	var visit func(c *Cond)
	visit = func(c *Cond) {
		switch c.XMLName.Local {
		case condAnd:
			for i := range c.Kids {
				visit(&c.Kids[i])
			}
		case condCycles:
			if c.Min > n {
				n = c.Min
			}
		}
	}
	for i := range t.Conds {
		visit(&t.Conds[i])
	}
	return n
}

// FirePhase applies the phase classifier to the compiled plan's source
// faultload; see the package-level FirePhase.
func (cp *CompiledPlan) FirePhase() (phase, site string) {
	return FirePhase(cp.plan)
}

// Stateful reports whether the plan carries stateful degradation
// faults (<delay> or <exhaust>) — faults whose effect persists beyond
// the fired call. Statefulness does NOT block prefix memoization: a
// degradation only acts at or after its trigger's fire site, so the
// shared prefix (calls 1..N-1, strictly pre-fire) carries no armed
// state and is identical across every plan mapped to the same site.
// What statefulness rules out is sharing anything at or beyond the
// fire — the suffix is private per experiment, which is exactly the
// memoization scheme's shape already.
func (p *Plan) Stateful() bool {
	if p == nil {
		return false
	}
	for i := range p.Triggers {
		if p.Triggers[i].Delay != nil || p.Triggers[i].Exhaust != nil {
			return true
		}
	}
	return false
}

// EvalState is the exportable mutable state of an Evaluator: per-
// function call counts, per-trigger once-latches and per-function fault
// counts. State/SetState move it between evaluators of the same
// CompiledPlan so a restored mid-execution snapshot resumes trigger
// decisions bit-identically.
//
// The seeded random stream is deliberately not part of the state: the
// transfer contract covers evaluation prefixes that consumed no
// randomness — no <probability> conditions examined, no random faults
// fired — which is exactly the class FirstFireSite admits, and there a
// freshly seeded stream is bit-identical to the donor's.
type EvalState struct {
	Count  map[string]int32
	Fired  map[int]bool
	Faults map[string]int32
}

// State deep-copies the evaluator's mutable state.
func (e *Evaluator) State() EvalState {
	st := EvalState{
		Count:  make(map[string]int32, len(e.count)),
		Fired:  make(map[int]bool, len(e.fired)),
		Faults: make(map[string]int32, len(e.faults)),
	}
	for k, v := range e.count {
		st.Count[k] = v
	}
	for k, v := range e.fired {
		st.Fired[k] = v
	}
	for k, v := range e.faults {
		st.Faults[k] = v
	}
	return st
}

// SetState overwrites the evaluator's mutable state with a deep copy of
// st, so many evaluators may be seeded from one exported state without
// sharing maps.
func (e *Evaluator) SetState(st EvalState) {
	e.count = make(map[string]int32, len(st.Count))
	e.fired = make(map[int]bool, len(st.Fired))
	e.faults = make(map[string]int32, len(st.Faults))
	for k, v := range st.Count {
		e.count[k] = v
	}
	for k, v := range st.Fired {
		e.fired[k] = v
	}
	for k, v := range st.Faults {
		e.faults[k] = v
	}
}
