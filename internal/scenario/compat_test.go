package scenario_test

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"lfi/internal/profile"
	"lfi/internal/scenario"
)

// legacyEvaluator replicates, verbatim, the pre-compile-engine trigger
// evaluation: a full scan of the plan's trigger list per intercepted
// call, with fire-time retval/errno parsing. It is the oracle proving
// that every pre-refactor faultload evaluates to identical decisions
// under the compiled per-function index.
type legacyEvaluator struct {
	plan  *scenario.Plan
	set   profile.Set
	rng   *rand.Rand
	count map[string]int32
	fired map[int]bool
	pid   int
}

func newLegacyEvaluator(plan *scenario.Plan, set profile.Set) *legacyEvaluator {
	return &legacyEvaluator{
		plan:  plan,
		set:   set,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		count: make(map[string]int32),
		fired: make(map[int]bool),
	}
}

func (e *legacyEvaluator) OnCall(fn string, stack []scenario.StackFrame) scenario.Decision {
	e.count[fn]++
	n := e.count[fn]
	scanned := 0
	for i := range e.plan.Triggers {
		t := &e.plan.Triggers[i]
		if t.Function != fn {
			continue
		}
		scanned++
		if t.Pid != 0 && t.Pid != e.pid {
			continue
		}
		if t.Once && e.fired[i] {
			continue
		}
		if t.Inject > 0 && t.Inject != n {
			continue
		}
		if t.Probability > 0 && e.rng.Float64()*100 >= t.Probability {
			continue
		}
		if !legacyMatchStack(t.Frames(), stack) {
			continue
		}
		e.fired[i] = true
		d := e.fire(i, t, fn, n)
		d.Scanned = scanned
		return d
	}
	return scenario.Decision{CallCount: n, Scanned: scanned}
}

func (e *legacyEvaluator) fire(idx int, t *scenario.Trigger, fn string, n int32) scenario.Decision {
	d := scenario.Decision{
		Inject:       true,
		Trigger:      idx,
		CallOriginal: t.CallOriginal,
		Modify:       t.Modify,
		CallCount:    n,
	}
	if t.Retval != "" {
		if v, err := strconv.ParseInt(t.Retval, 0, 32); err == nil {
			d.HasRetval = true
			d.Retval = int32(v)
		}
	}
	if v, ok := scenario.ParseErrno(t.Errno); ok {
		d.HasErrno = true
		d.Errno = v
	}
	if t.Random && e.set != nil {
		if _, pf, ok := e.set.FindFunction(fn); ok && len(pf.ErrorCodes) > 0 {
			ec := pf.ErrorCodes[e.rng.Intn(len(pf.ErrorCodes))]
			d.HasRetval = true
			d.Retval = ec.Retval
			if len(ec.SideEffects) > 0 {
				se := ec.SideEffects[e.rng.Intn(len(ec.SideEffects))]
				d.SideEffects = []profile.SideEffect{se}
				if se.Type == profile.SideEffectTLS {
					d.HasErrno = true
					d.Errno = se.Applied()
				}
			}
		}
	}
	if !d.HasRetval && len(d.Modify) == 0 && !t.CallOriginal && !t.Random {
		if !d.HasErrno {
			d.CallOriginal = true
		} else {
			d.HasRetval = true
			d.Retval = -1
		}
	}
	return d
}

func legacyMatchStack(want []string, got []scenario.StackFrame) bool {
	if len(want) == 0 {
		return true
	}
	if len(want) > len(got) {
		return false
	}
	for i, w := range want {
		f := got[i]
		if strings.HasPrefix(w, "0x") || strings.HasPrefix(w, "0X") {
			v, err := strconv.ParseUint(w[2:], 16, 32)
			if err != nil || uint32(v) != f.Addr {
				return false
			}
			continue
		}
		if w != f.Symbol {
			return false
		}
	}
	return true
}

// compatSet is a profile set with multiple error codes and side effects
// so random draws exercise the rng stream.
func compatSet() profile.Set {
	tls := func(v int32) profile.SideEffect {
		return profile.SideEffect{Type: profile.SideEffectTLS, Module: "libc.so", Value: v}
	}
	return profile.Set{
		"libc.so": &profile.Profile{
			Library: "libc.so",
			Functions: []profile.Function{
				{Name: "open", ErrorCodes: []profile.ErrorCode{
					{Retval: -1, SideEffects: []profile.SideEffect{tls(13), tls(2)}},
				}},
				{Name: "read", ErrorCodes: []profile.ErrorCode{
					{Retval: -1, SideEffects: []profile.SideEffect{tls(5)}},
					{Retval: -11},
				}},
				{Name: "write", ErrorCodes: []profile.ErrorCode{
					{Retval: -1, SideEffects: []profile.SideEffect{tls(28), tls(32), tls(5)}},
				}},
				{Name: "close", ErrorCodes: []profile.ErrorCode{
					{Retval: -1, SideEffects: []profile.SideEffect{tls(9)}},
				}},
				{Name: "malloc", ErrorCodes: []profile.ErrorCode{
					{Retval: 0, SideEffects: []profile.SideEffect{tls(12)}},
				}},
			},
		},
	}
}

// compatFixtures are pre-refactor faultloads: flat attributes only, the
// exact vocabulary the seed repo shipped.
var compatFixtures = map[string]string{
	"section4": `<plan>
  <function name="readdir" inject="5" retval="0" errno="EBADF" calloriginal="false">
    <stacktrace>
      <frame>0xb824490</frame>
      <frame>refresh_files</frame>
    </stacktrace>
  </function>
  <function name="read" inject="20" calloriginal="true">
    <modify argument="3" op="sub" value="10"></modify>
  </function>
</plan>`,
	"mixed": `<plan seed="9">
  <function name="open" inject="2" retval="-1" errno="EACCES" calloriginal="false"></function>
  <function name="read" probability="35" random="true" calloriginal="false"></function>
  <function name="read" inject="4" retval="-11" calloriginal="false"></function>
  <function name="write" probability="50" random="true" calloriginal="false" once="true"></function>
  <function name="close" retval="-1" errno="9" calloriginal="false" once="true"></function>
  <function name="malloc" errno="ENOMEM" calloriginal="false"></function>
</plan>`,
	"pids": `<plan>
  <function name="write" inject="1" retval="-1" errno="EPIPE" calloriginal="false" once="true" pid="2"></function>
  <function name="write" inject="3" retval="-1" calloriginal="false" pid="1"></function>
</plan>`,
	"stacks": `<plan>
  <function name="close" retval="-1" errno="EINTR" calloriginal="false">
    <stacktrace>
      <frame>close</frame>
      <frame>path_b</frame>
    </stacktrace>
  </function>
</plan>`,
}

// TestCompiledMatchesLegacyFixtures drives the legacy full-scan oracle
// and the compiled engine over identical call streams and demands
// decision-for-decision equality — including Scanned (the cycle-charge
// input) and the random draws.
func TestCompiledMatchesLegacyFixtures(t *testing.T) {
	set := compatSet()
	stacks := [][]scenario.StackFrame{
		nil,
		{{Addr: 0xb824490, Symbol: "readdir"}, {Addr: 0x1000, Symbol: "refresh_files"}},
		{{Addr: 0x10, Symbol: "close"}, {Addr: 0x20, Symbol: "path_b"}, {Addr: 0x30, Symbol: "main"}},
		{{Addr: 0x10, Symbol: "close"}, {Addr: 0x22, Symbol: "path_a"}},
		{{Addr: 0x40, Symbol: "write"}, {Addr: 0x50, Symbol: "flush"}},
	}
	fns := []string{"open", "read", "write", "close", "malloc", "readdir"}
	for name, blob := range compatFixtures {
		t.Run(name, func(t *testing.T) {
			plan, err := scenario.Unmarshal([]byte(blob))
			if err != nil {
				t.Fatalf("pre-refactor fixture rejected: %v", err)
			}
			// The fixture itself must still round-trip byte-identically.
			first, err := plan.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			plan2, err := scenario.Unmarshal(first)
			if err != nil {
				t.Fatal(err)
			}
			second, err := plan2.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if string(first) != string(second) {
				t.Fatalf("fixture does not round-trip:\n%s\nvs\n%s", first, second)
			}

			for pid := 1; pid <= 2; pid++ {
				legacy := newLegacyEvaluator(plan, set)
				legacy.pid = pid
				cp, err := scenario.Compile(plan, set)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				ev := cp.NewEvaluator()
				ev.SetPID(pid)
				// A deterministic pseudo-random call stream, same for
				// both engines.
				drive := rand.New(rand.NewSource(int64(pid) * 77))
				for call := 0; call < 400; call++ {
					fn := fns[drive.Intn(len(fns))]
					stack := stacks[drive.Intn(len(stacks))]
					want := legacy.OnCall(fn, stack)
					got := ev.OnCall(fn, stack)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("pid %d call %d (%s): decisions diverge\nlegacy:   %+v\ncompiled: %+v",
							pid, call, fn, want, got)
					}
				}
			}
		})
	}
}

// TestCompiledMatchesLegacyGenerated covers the generated faultloads:
// exhaustive and seeded-random plans over the profile set.
func TestCompiledMatchesLegacyGenerated(t *testing.T) {
	set := compatSet()
	plans := map[string]*scenario.Plan{
		"exhaustive": scenario.Exhaustive(set),
		"random10":   scenario.Random(set, 10, 3),
		"random80":   scenario.Random(set, 80, 41),
		"fileio":     scenario.LibcFileIO(set, 25, 7),
	}
	fns := []string{"open", "read", "write", "close", "malloc"}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			legacy := newLegacyEvaluator(plan, set)
			legacy.pid = 1
			ev := scenario.MustCompile(plan, set).NewEvaluator()
			ev.SetPID(1)
			for call := 0; call < 600; call++ {
				fn := fns[call%len(fns)]
				want := legacy.OnCall(fn, nil)
				got := ev.OnCall(fn, nil)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("call %d (%s): decisions diverge\nlegacy:   %+v\ncompiled: %+v",
						call, fn, want, got)
				}
			}
		})
	}
}
