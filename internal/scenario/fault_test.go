package scenario

import (
	"strings"
	"testing"

	"lfi/internal/kernel"
)

// The degradation fault models are grammar extensions: they must round-
// trip XML, validate strictly, alter the canonical key, and leave
// prefix memoization intact (the fire site is static; only the suffix
// is stateful).

func TestDelayExhaustRoundTrip(t *testing.T) {
	src := `<plan>
  <function name="write" inject="3" once="true">
    <delay cycles="5000"></delay>
  </function>
  <function name="open" inject="1" once="true">
    <exhaust resource="disk" after="4096"></exhaust>
  </function>
  <function name="socket" inject="2" once="true">
    <exhaust resource="fds" slots="2"></exhaust>
  </function>
</plan>`
	p, err := Unmarshal([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Triggers[0].Delay == nil || p.Triggers[0].Delay.Cycles != 5000 {
		t.Fatalf("delay not parsed: %+v", p.Triggers[0].Delay)
	}
	if x := p.Triggers[1].Exhaust; x == nil || x.Resource != ResourceDisk || x.After != 4096 {
		t.Fatalf("disk exhaust not parsed: %+v", p.Triggers[1].Exhaust)
	}
	if x := p.Triggers[2].Exhaust; x == nil || x.Resource != ResourceFDs || x.Slots != 2 {
		t.Fatalf("fds exhaust not parsed: %+v", p.Triggers[2].Exhaust)
	}
	// Marshal must be a fixed point: unmarshal(marshal(p)) == marshal(p).
	out, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := p2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(out2) {
		t.Fatalf("marshal not a fixed point:\n%s\nvs\n%s", out, out2)
	}
	// A degradation element must not leak into the ,any Conds catch-all.
	for i, tr := range p.Triggers {
		if len(tr.Conds) != 0 {
			t.Fatalf("trigger %d: degradation element landed in Conds: %+v", i, tr.Conds)
		}
	}
}

func TestDelayExhaustValidation(t *testing.T) {
	bad := []string{
		`<plan><function name="f"><delay cycles="0"></delay></function></plan>`,
		`<plan><function name="f"><exhaust resource="disk" slots="1"></exhaust></function></plan>`,
		`<plan><function name="f"><exhaust resource="disk" after="-1"></exhaust></function></plan>`,
		`<plan><function name="f"><exhaust resource="fds" after="1"></exhaust></function></plan>`,
		`<plan><function name="f"><exhaust resource="fds" slots="-1"></exhaust></function></plan>`,
		`<plan><function name="f"><exhaust resource="ram"></exhaust></function></plan>`,
	}
	for _, src := range bad {
		if _, err := Unmarshal([]byte(src)); err == nil {
			t.Errorf("Unmarshal accepted invalid degradation: %s", src)
		}
	}
	good := []string{
		`<plan><function name="f"><exhaust resource="disk" after="0"></exhaust></function></plan>`,
		`<plan><function name="f"><exhaust resource="fds" slots="0"></exhaust></function></plan>`,
		`<plan><function name="f" retval="-1" errno="EIO"><delay cycles="7"></delay></function></plan>`,
	}
	for _, src := range good {
		if _, err := Unmarshal([]byte(src)); err != nil {
			t.Errorf("Unmarshal rejected valid degradation %s: %v", src, err)
		}
	}
}

func TestDelayExhaustCanonicalKey(t *testing.T) {
	mk := func(mut func(*Trigger)) string {
		p := &Plan{Triggers: []Trigger{{Function: "write", Inject: 1, Once: true}}}
		mut(&p.Triggers[0])
		return p.CanonicalKey()
	}
	keys := map[string]string{
		"plain":  mk(func(*Trigger) {}),
		"delay1": mk(func(tr *Trigger) { tr.Delay = &Delay{Cycles: 100} }),
		"delay2": mk(func(tr *Trigger) { tr.Delay = &Delay{Cycles: 200} }),
		"disk0":  mk(func(tr *Trigger) { tr.Exhaust = &Exhaust{Resource: ResourceDisk} }),
		"disk4k": mk(func(tr *Trigger) { tr.Exhaust = &Exhaust{Resource: ResourceDisk, After: 4096} }),
		"fds0":   mk(func(tr *Trigger) { tr.Exhaust = &Exhaust{Resource: ResourceFDs} }),
		"fds2":   mk(func(tr *Trigger) { tr.Exhaust = &Exhaust{Resource: ResourceFDs, Slots: 2} }),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("canonical key collision: %s and %s both %s", prev, name, k)
		}
		seen[k] = name
	}
}

func TestDegradationTriggerCompilesToPassThrough(t *testing.T) {
	// A delay/exhaust-only trigger neither returns a value nor modifies
	// arguments: it must resolve to a pass-through probe, with the
	// degradation payload on the decision.
	p, err := Unmarshal([]byte(`<plan>
  <function name="write" inject="1" once="true">
    <delay cycles="123"></delay>
    <exhaust resource="disk" after="64"></exhaust>
  </function>
</plan>`))
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(p, nil)
	d := ev.OnCall("write", nil)
	if !d.Inject {
		t.Fatal("trigger did not fire")
	}
	if !d.CallOriginal || d.HasRetval {
		t.Errorf("degradation-only trigger must pass through: %+v", d)
	}
	if d.DelayCycles != 123 {
		t.Errorf("DelayCycles = %d, want 123", d.DelayCycles)
	}
	if d.Exhaust == nil || d.Exhaust.Resource != ResourceDisk || d.Exhaust.After != 64 {
		t.Errorf("Exhaust = %+v", d.Exhaust)
	}
	// errno-only + delay keeps the C convention retval -1 with the delay.
	p2 := MustCompile(&Plan{Triggers: []Trigger{{
		Function: "read", Inject: 1, Once: true, Errno: "EIO",
		Delay: &Delay{Cycles: 9},
	}}}, nil)
	d2 := p2.NewEvaluator().OnCall("read", nil)
	if !d2.HasRetval || d2.Retval != -1 || !d2.HasErrno || d2.DelayCycles != 9 {
		t.Errorf("errno+delay decision = %+v", d2)
	}
}

func TestDegradationPlansStayMemoizable(t *testing.T) {
	p := &Plan{Triggers: []Trigger{{
		Function: "write", Inject: 3, Once: true,
		Delay:   &Delay{Cycles: 1000},
		Exhaust: &Exhaust{Resource: ResourceDisk, After: 0},
	}}}
	site, reason := FirstFireSite(p)
	if reason != "" {
		t.Fatalf("degradation plan non-memoizable: %q", reason)
	}
	if site.Function != "write" || site.Call != 3 {
		t.Fatalf("site = %+v", site)
	}
	if !p.Stateful() {
		t.Error("Stateful() = false for a degradation plan")
	}
	if (&Plan{Triggers: []Trigger{{Function: "write", Retval: "-1"}}}).Stateful() {
		t.Error("Stateful() = true for a plain errno plan")
	}
	// Sticky degradations remain blocked, as every sticky plan is.
	sticky := &Plan{Triggers: []Trigger{{
		Function: "write", Sticky: true, Exhaust: &Exhaust{Resource: ResourceDisk},
	}}}
	if _, reason := FirstFireSite(sticky); reason != "sticky" {
		t.Errorf("sticky degradation reason = %q, want sticky", reason)
	}
}

func TestLintFDSlotsNeverBind(t *testing.T) {
	p := &Plan{Triggers: []Trigger{{
		Function: "open", Inject: 1, Once: true,
		Exhaust: &Exhaust{Resource: ResourceFDs, Slots: kernel.MaxFDs},
	}}}
	warns := Lint(p, nil)
	found := false
	for _, w := range warns {
		if strings.Contains(w, "never binds") {
			found = true
		}
	}
	if !found {
		t.Errorf("Lint missed slots >= MaxFDs: %v", warns)
	}
}

func TestPairwiseMergesDegradationWithErrno(t *testing.T) {
	a := &Plan{Triggers: []Trigger{{Function: "read", Inject: 1, Once: true, Retval: "-1", Errno: "EIO"}}}
	b := &Plan{Triggers: []Trigger{{
		Function: "write", Inject: 1, Once: true,
		Exhaust: &Exhaust{Resource: ResourceDisk, After: 16},
	}}}
	m := Pairwise(a, b)
	if len(m.Triggers) != 2 {
		t.Fatalf("merged triggers = %d", len(m.Triggers))
	}
	if m.Triggers[1].Exhaust == nil || m.Triggers[1].Exhaust.After != 16 {
		t.Fatalf("degradation lost in merge: %+v", m.Triggers[1])
	}
	// The merge is a deep copy: mutating it must not reach the parents.
	m.Triggers[1].Exhaust.After = 999
	if b.Triggers[0].Exhaust.After != 16 {
		t.Error("Pairwise aliased the parent's Exhaust")
	}
	if _, err := Compile(m, nil); err != nil {
		t.Fatalf("merged plan does not compile: %v", err)
	}
}

func TestFirePhase(t *testing.T) {
	cases := []struct {
		name  string
		plan  *Plan
		phase string
		site  string
	}{
		{"empty", &Plan{}, PhaseNever, "no triggers"},
		{"bare-trigger", &Plan{Triggers: []Trigger{{Function: "open", Retval: "-1"}}},
			PhaseStartup, "open fireable from call 1"},
		{"probability-is-startup", &Plan{Triggers: []Trigger{{
			Function: "read", Probability: 50, Random: true}}},
			PhaseStartup, "read fireable from call 1"},
		{"inject-n", &Plan{Triggers: []Trigger{{Function: "open", Retval: "-1", Inject: 5}}},
			PhaseSteady, "open fireable from call 5"},
		{"calls-window", &Plan{Triggers: []Trigger{{
			Function: "accept", Retval: "-1", Once: true,
			Conds: []Cond{Calls(250, 0, 0)}}}},
			PhaseSteady, "accept fireable from call 251"},
		{"calls-and-cycles", &Plan{Triggers: []Trigger{{
			Function: "write", Retval: "-1",
			Conds: []Cond{And(Calls(200, 50, 0), Cycles(500_000, 0))}}}},
			PhaseSteady, "write fireable from call 201 and cycle 500000"},
		{"cycles-only", &Plan{Triggers: []Trigger{{
			Function: "write", Retval: "-1", Conds: []Cond{Cycles(1000, 0)}}}},
			PhaseSteady, "write fireable from call 1 and cycle 1000"},
		{"or-window-conservative", &Plan{Triggers: []Trigger{{
			Function: "send", Retval: "-1",
			Conds: []Cond{Or(Calls(9, 0, 0), Cycles(77, 0))}}}},
			PhaseStartup, "send fireable from call 1"},
		{"loosest-trigger-wins", &Plan{Triggers: []Trigger{
			{Function: "write", Retval: "-1", Inject: 40},
			{Function: "accept", Retval: "-1", Conds: []Cond{Calls(10, 0, 0)}},
		}}, PhaseSteady, "accept fireable from call 11"},
	}
	for _, tc := range cases {
		phase, site := FirePhase(tc.plan)
		if phase != tc.phase || site != tc.site {
			t.Errorf("%s: FirePhase = %q (%q), want %q (%q)",
				tc.name, phase, site, tc.phase, tc.site)
		}
	}
}
