package scenario

import (
	"strings"
	"testing"
)

// evalPlan compiles one write-guarding trigger with the given conds and
// returns the per-call decisions for nCalls calls.
func evalConds(t *testing.T, conds []Cond, nCalls int) []bool {
	t.Helper()
	plan := &Plan{Triggers: []Trigger{{Function: "write", Retval: "-1", Conds: conds}}}
	cp, err := Compile(plan, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ev := cp.NewEvaluator()
	out := make([]bool, nCalls)
	for i := range out {
		out[i] = ev.OnCall("write", nil).Inject
	}
	return out
}

func TestCondCallsWindow(t *testing.T) {
	cases := []struct {
		name string
		cond Cond
		want []bool // per call, 8 calls
	}{
		{"after", Calls(3, 0, 0),
			[]bool{false, false, false, true, true, true, true, true}},
		{"until", Calls(0, 0, 3),
			[]bool{true, true, true, false, false, false, false, false}},
		{"every", Calls(0, 3, 0),
			[]bool{true, false, false, true, false, false, true, false}},
		{"window", Calls(2, 2, 7),
			[]bool{false, false, true, false, true, false, true, false}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := evalConds(t, []Cond{c.cond}, len(c.want))
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Errorf("call %d: inject=%v, want %v (got %v)", i+1, got[i], c.want[i], got)
					break
				}
			}
		})
	}
}

func TestCondComposition(t *testing.T) {
	cases := []struct {
		name string
		cond Cond
		want []bool // 6 calls
	}{
		{"and", And(Calls(2, 0, 0), Calls(0, 0, 4)),
			[]bool{false, false, true, true, false, false}},
		{"or", Or(Calls(0, 0, 2), Calls(5, 0, 0)),
			[]bool{true, true, false, false, false, true}},
		{"not", Not(Calls(0, 0, 3)),
			[]bool{false, false, false, true, true, true}},
		{"nested", And(Not(Calls(0, 0, 1)), Or(Calls(0, 0, 2), Calls(4, 0, 0))),
			[]bool{false, true, false, false, true, true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := evalConds(t, []Cond{c.cond}, len(c.want))
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Errorf("call %d: inject=%v, want %v (got %v)", i+1, got[i], c.want[i], got)
					break
				}
			}
		})
	}
}

func TestCondPidAndStack(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{{Function: "f", Retval: "-1",
		Conds: []Cond{And(PidIs(2), Stack("f", "caller"))}}}}
	cp := MustCompile(plan, nil)
	stack := []StackFrame{{Symbol: "f"}, {Symbol: "caller"}}

	ev := cp.NewEvaluator()
	ev.SetPID(1)
	if ev.OnCall("f", stack).Inject {
		t.Error("pid 1 must not match <pid is=2>")
	}
	ev2 := cp.NewEvaluator()
	ev2.SetPID(2)
	if !ev2.OnCall("f", stack).Inject {
		t.Error("pid 2 with matching stack must fire")
	}
	ev3 := cp.NewEvaluator()
	ev3.SetPID(2)
	if ev3.OnCall("f", []StackFrame{{Symbol: "f"}, {Symbol: "other"}}).Inject {
		t.Error("mismatched stack must not fire")
	}
}

func TestCondCyclesWindow(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{{Function: "f", Retval: "-1",
		Conds: []Cond{Cycles(100, 200)}}}}
	ev := MustCompile(plan, nil).NewEvaluator()
	if ev.OnCallAt("f", nil, 50).Inject {
		t.Error("cycle 50 outside [100,200]")
	}
	if !ev.OnCallAt("f", nil, 150).Inject {
		t.Error("cycle 150 inside [100,200]")
	}
	if ev.OnCallAt("f", nil, 250).Inject {
		t.Error("cycle 250 outside [100,200]")
	}
	// OnCall sees cycle 0.
	if ev.OnCall("f", nil).Inject {
		t.Error("OnCall evaluates cycle windows at cycle 0")
	}
}

func TestCondAfterFaultAndSticky(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{
		{Function: "malloc", Inject: 3, Retval: "0", Once: true},
		{Function: "write", Retval: "-1", Sticky: true,
			Conds: []Cond{AfterFault("malloc")}},
	}}
	ev := MustCompile(plan, nil).NewEvaluator()
	for i := 1; i <= 2; i++ {
		if ev.OnCall("write", nil).Inject {
			t.Fatalf("write call %d injected before any malloc fault", i)
		}
		if d := ev.OnCall("malloc", nil); d.Inject {
			t.Fatalf("malloc call %d fired early", i)
		}
	}
	if !ev.OnCall("malloc", nil).Inject {
		t.Fatal("malloc call 3 must fire")
	}
	if ev.FaultCount("malloc") != 1 {
		t.Errorf("malloc fault count = %d", ev.FaultCount("malloc"))
	}
	// Every subsequent write fails: first via <after-fault>, then sticky.
	for i := 3; i <= 6; i++ {
		if !ev.OnCall("write", nil).Inject {
			t.Errorf("write call %d should fail after the malloc fault", i)
		}
	}
	if ev.FaultCount("write") != 4 {
		t.Errorf("write fault count = %d, want 4", ev.FaultCount("write"))
	}
}

func TestCondAfterFaultCount(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{
		{Function: "malloc", Retval: "0"}, // every call
		{Function: "write", Retval: "-1", Conds: []Cond{AfterFaultN("malloc", 3)}},
	}}
	ev := MustCompile(plan, nil).NewEvaluator()
	for i := 1; i <= 2; i++ {
		ev.OnCall("malloc", nil)
		if ev.OnCall("write", nil).Inject {
			t.Fatalf("write injected after only %d malloc faults", i)
		}
	}
	ev.OnCall("malloc", nil)
	if !ev.OnCall("write", nil).Inject {
		t.Error("write should inject after 3 malloc faults")
	}
}

func TestStickyRefireSemantics(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{{Function: "f", Inject: 2, Retval: "-1", Errno: "EIO", Sticky: true}}}
	ev := MustCompile(plan, nil).NewEvaluator()
	if ev.OnCall("f", nil).Inject {
		t.Error("call 1 precedes the window")
	}
	for i := 2; i <= 5; i++ {
		d := ev.OnCall("f", nil)
		if !d.Inject || d.Retval != -1 || !d.HasErrno {
			t.Errorf("call %d: sticky trigger must keep failing: %+v", i, d)
		}
	}
}

func TestCondProbabilityDeterminism(t *testing.T) {
	plan := &Plan{Seed: 11, Triggers: []Trigger{{Function: "f", Retval: "-1",
		Conds: []Cond{Probability(40)}}}}
	cp := MustCompile(plan, nil)
	run := func() []bool {
		ev := cp.NewEvaluator()
		out := make([]bool, 60)
		for i := range out {
			out[i] = ev.OnCall("f", nil).Inject
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("probability condition is not deterministic per seed")
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Errorf("fires = %d/%d at 40%%", fires, len(a))
	}
}

func TestCondXMLRoundTrip(t *testing.T) {
	const in = `<plan>
  <function name="write" retval="-1" errno="ENOSPC" sticky="true">
    <and>
      <after-fault function="malloc"></after-fault>
      <not>
        <calls until="2"></calls>
      </not>
      <or>
        <pid is="2"></pid>
        <cycles min="100" max="900"></cycles>
        <probability pct="12.5"></probability>
        <stacktrace>
          <frame>0xb824490</frame>
          <frame>flush</frame>
        </stacktrace>
      </or>
    </and>
  </function>
</plan>`
	p, err := Unmarshal([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Triggers[0]
	if !tr.Sticky || len(tr.Conds) != 1 {
		t.Fatalf("trigger = %+v", tr)
	}
	and := tr.Conds[0]
	if and.XMLName.Local != "and" || len(and.Kids) != 3 {
		t.Fatalf("and = %+v", and)
	}
	or := and.Kids[2]
	if or.XMLName.Local != "or" || len(or.Kids) != 4 {
		t.Fatalf("or = %+v", or)
	}
	if or.Kids[3].XMLName.Local != "stacktrace" || len(or.Kids[3].Frames) != 2 {
		t.Fatalf("stack leaf = %+v", or.Kids[3])
	}
	first, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(first)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, first)
	}
	second, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("marshal not a fixed point:\n%s\nvs\n%s", first, second)
	}

	// Clone must deep-copy the condition tree.
	c := p.Clone()
	c.Triggers[0].Conds[0].Kids[2].Kids[3].Frames[1] = "mutated"
	if p.Triggers[0].Conds[0].Kids[2].Kids[3].Frames[1] != "flush" {
		t.Error("Clone shares condition state with the original")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		xml  string
		want string // substring of the error
	}{
		{"bad retval", `<plan><function name="f" retval="x?"></function></plan>`, `bad retval "x?"`},
		{"bad errno", `<plan><function name="f" errno="EWHAT"></function></plan>`, `bad errno "EWHAT"`},
		{"bad errno position", `<plan><function name="ok" retval="0"></function><function name="g" errno="12junk"></function></plan>`, `trigger 1 (function "g")`},
		{"sticky once", `<plan><function name="f" retval="-1" sticky="true" once="true"></function></plan>`, "contradicts"},
		{"missing name", `<plan><function retval="-1"></function></plan>`, "missing function name"},
		{"unknown cond", `<plan><function name="f" retval="-1"><frobnicate></frobnicate></function></plan>`, "unknown condition element"},
		{"not arity", `<plan><function name="f" retval="-1"><not><calls after="1"></calls><calls after="2"></calls></not></function></plan>`, "exactly one child"},
		{"empty and", `<plan><function name="f" retval="-1"><and></and></function></plan>`, "at least one child"},
		{"empty window", `<plan><function name="f" retval="-1"><calls after="5" until="5"></calls></function></plan>`, "never exceeds"},
		{"bare calls", `<plan><function name="f" retval="-1"><calls></calls></function></plan>`, "at least one of"},
		{"probability range", `<plan><function name="f" retval="-1"><probability pct="150"></probability></function></plan>`, "outside (0, 100]"},
		{"pid zero", `<plan><function name="f" retval="-1"><pid></pid></function></plan>`, "<pid> needs"},
		{"after-fault unnamed", `<plan><function name="f" retval="-1"><after-fault></after-fault></function></plan>`, "<after-fault> needs"},
		{"stray attr", `<plan><function name="f" retval="-1"><calls after="1" pct="5"></calls></function></plan>`, "takes only"},
		{"empty stack cond", `<plan><function name="f" retval="-1"><not><stacktrace></stacktrace></not></function></plan>`, "at least one <frame>"},
		{"bad frame addr", `<plan><function name="f" retval="-1"><stacktrace><frame>0xzz</frame></stacktrace></function></plan>`, "bad stack frame address"},
		{"bad flat frame", `<plan><function name="f" retval="-1"><stacktrace><frame>0x</frame></stacktrace></function></plan>`, "bad stack frame address"},
		{"cycles empty", `<plan><function name="f" retval="-1"><cycles></cycles></function></plan>`, "<cycles> needs"},
		{"cycles inverted", `<plan><function name="f" retval="-1"><cycles min="10" max="5"></cycles></function></plan>`, "below min"},
		{"nested leaf", `<plan><function name="f" retval="-1"><calls after="1"><pid is="1"></pid></calls></function></plan>`, "cannot contain nested"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Unmarshal([]byte(c.xml))
			if err == nil {
				t.Fatalf("expected validation error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestCompileErrorPosition(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{
		{Function: "ok", Retval: "0"},
		{Function: "bad", Retval: "nope"},
	}}
	_, err := Compile(plan, nil)
	if err == nil {
		t.Fatal("expected compile error")
	}
	ce, ok := err.(*CompileError)
	if !ok {
		t.Fatalf("error type %T, want *CompileError", err)
	}
	if ce.Trigger != 1 || ce.Function != "bad" {
		t.Errorf("position = trigger %d function %q, want 1/bad", ce.Trigger, ce.Function)
	}
}

func TestTriggerCountIndex(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{
		{Function: "read", Inject: 1, Retval: "-1"},
		{Function: "write", Inject: 1, Retval: "-1"},
		{Function: "read", Inject: 2, Retval: "-1"},
	}}
	cp := MustCompile(plan, nil)
	if cp.TriggerCount("read") != 2 || cp.TriggerCount("write") != 1 || cp.TriggerCount("open") != 0 {
		t.Errorf("index counts wrong: read=%d write=%d open=%d",
			cp.TriggerCount("read"), cp.TriggerCount("write"), cp.TriggerCount("open"))
	}
	// Scanned charges only the triggers guarding the called function.
	ev := cp.NewEvaluator()
	if d := ev.OnCall("write", nil); d.Scanned != 1 {
		t.Errorf("write scanned %d triggers, want 1", d.Scanned)
	}
	ev2 := cp.NewEvaluator()
	if d := ev2.OnCall("read", nil); d.Scanned != 1 {
		t.Errorf("read fired on first trigger, scanned %d, want 1", d.Scanned)
	}
	ev3 := cp.NewEvaluator()
	ev3.OnCall("read", nil)
	if d := ev3.OnCall("read", nil); d.Scanned != 2 {
		t.Errorf("read call 2 scanned %d, want 2", d.Scanned)
	}
}

func TestLint(t *testing.T) {
	plan := &Plan{Triggers: []Trigger{
		{Function: "read", Probability: 10, Random: true},
		{Function: "write", Retval: "-1", Conds: []Cond{AfterFault("malloc")}},
	}}
	warns := Lint(plan, nil)
	if len(warns) != 4 {
		t.Fatalf("warnings = %v, want 4", warns)
	}
	if !strings.Contains(warns[0], "no profile supplies error codes") {
		t.Errorf("warns[0] = %q", warns[0])
	}
	if !strings.Contains(warns[1], `no trigger targets "malloc"`) {
		t.Errorf("warns[1] = %q", warns[1])
	}
	// Probability and after-fault both force the entry-snapshot
	// fallback, one warning per condition kind.
	if !strings.Contains(warns[2], "probability condition makes the plan non-memoizable") {
		t.Errorf("warns[2] = %q", warns[2])
	}
	if !strings.Contains(warns[3], "after-fault condition makes the plan non-memoizable") {
		t.Errorf("warns[3] = %q", warns[3])
	}
	// With a covering profile and a malloc trigger, only the
	// memoizability warnings remain.
	plan2 := &Plan{Triggers: []Trigger{
		{Function: "read", Probability: 10, Random: true},
		{Function: "malloc", Inject: 1, Retval: "0"},
		{Function: "write", Retval: "-1", Conds: []Cond{AfterFault("malloc")}},
	}}
	warns2 := Lint(plan2, demoSet())
	if len(warns2) != 2 {
		t.Fatalf("warnings = %v, want 2", warns2)
	}
	for _, w := range warns2 {
		if !strings.Contains(w, "non-memoizable") {
			t.Errorf("unexpected warning: %q", w)
		}
	}
	// A deterministic single-function plan lints clean.
	plan3 := &Plan{Triggers: []Trigger{
		{Function: "malloc", Inject: 2, Retval: "0", Once: true},
	}}
	if warns := Lint(plan3, demoSet()); len(warns) != 0 {
		t.Errorf("unexpected warnings: %v", warns)
	}
}
