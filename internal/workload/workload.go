// Package workload implements the host-side workload drivers of the
// evaluation: an AB-style HTTP request generator (paper Table 3) and a
// SysBench-OLTP-style transaction driver (paper Table 4).
//
// Drivers run outside the VM, like AB and SysBench run outside the server
// under test. They connect to the VM server through kernel loopback
// sockets, interleaving with VM execution via System.RunUntil. Time is
// virtual: completion time = VM cycles elapsed / vm.ClockHz, which makes
// the overhead tables deterministic.
package workload

import (
	"bytes"
	"fmt"
	"strconv"

	"lfi/internal/vm"
)

// perRequestBudget bounds the cycles spent serving one request before the
// driver declares it failed (covers crashed or wedged servers).
const perRequestBudget = 5_000_000

// ABResult is the outcome of an AB run.
type ABResult struct {
	Requests  int
	Completed int
	Failed    int
	// Cycles is the total virtual time for the whole run.
	Cycles uint64
}

// Seconds converts the run's cycles to virtual seconds.
func (r ABResult) Seconds() float64 { return float64(r.Cycles) / vm.ClockHz }

// RunAB issues n sequential requests for path against the httpd listening
// on port, mirroring `ab -n <n>`: it reports the completion time of the
// full batch.
func RunAB(sys *vm.System, port int32, path string, n int) (ABResult, error) {
	res := ABResult{Requests: n}
	// Let the server reach accept().
	if err := settle(sys); err != nil {
		return res, err
	}
	start := sys.TotalCycles
	req := []byte("GET " + path + "\n")
	for i := 0; i < n; i++ {
		ok, err := oneRequest(sys, port, req)
		if err != nil {
			return res, fmt.Errorf("workload: request %d: %w", i, err)
		}
		if ok {
			res.Completed++
		} else {
			res.Failed++
		}
	}
	res.Cycles = sys.TotalCycles - start
	return res, nil
}

// Exchange performs a single request/response round trip against a VM
// server — the building block custom test drivers (e.g. the coverage
// experiment's regression suite) use directly.
func Exchange(sys *vm.System, port int32, req []byte) (bool, error) {
	return oneRequest(sys, port, req)
}

// Settle runs the system until the server blocks in accept (or exits).
func Settle(sys *vm.System) error { return settle(sys) }

// oneRequest performs a single request/response exchange. ok=false means
// the server did not produce a complete response (e.g. it crashed).
func oneRequest(sys *vm.System, port int32, req []byte) (bool, error) {
	conn, err := sys.Kernel().Dial(port)
	if err != nil {
		return false, nil // listener gone: server crashed
	}
	defer conn.Close()
	conn.Send(req)
	var resp []byte
	budgetLeft := uint64(perRequestBudget)
	for {
		err := sys.RunUntil(func() bool { return conn.Pending() || conn.PeerClosed() }, budgetLeft)
		resp = append(resp, conn.Recv()...)
		if done(resp) || conn.PeerClosed() {
			resp = append(resp, conn.Recv()...)
			return done(resp), nil
		}
		switch err {
		case nil:
			continue
		case vm.ErrIdle:
			// Server quiesced without answering.
			return done(resp), nil
		case vm.ErrBudget:
			return false, nil
		default:
			return false, err
		}
	}
}

// done recognises a complete httpd/minidb response.
func done(resp []byte) bool {
	return bytes.HasSuffix(resp, []byte("\n\n")) || bytes.Contains(resp, []byte("OK ")) && bytes.HasSuffix(resp, []byte("\n"))
}

// settle runs the system until it goes idle (server blocked in accept) or
// exits.
func settle(sys *vm.System) error {
	err := sys.RunUntil(nil, 50_000_000)
	if err == vm.ErrIdle || err == nil {
		return nil
	}
	return err
}

// ---------------------------------------------------------------------------
// OLTP driver (SysBench analogue)
// ---------------------------------------------------------------------------

// OLTPResult is the outcome of an OLTP run.
type OLTPResult struct {
	Transactions int
	Completed    int
	Failed       int
	Cycles       uint64
}

// Seconds converts to virtual seconds.
func (r OLTPResult) Seconds() float64 { return float64(r.Cycles) / vm.ClockHz }

// TPS is transactions per virtual second.
func (r OLTPResult) TPS() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.Completed) / s
}

// OLTPKind selects the SysBench workload flavour.
type OLTPKind uint8

// Workload flavours.
const (
	ReadOnly OLTPKind = iota + 1
	ReadWrite
)

// String names the workload.
func (k OLTPKind) String() string {
	if k == ReadWrite {
		return "read/write"
	}
	return "read-only"
}

// txnCommand builds one SysBench-style transaction: 10 point selects,
// plus 4 updates in the read/write flavour, then commit.
func txnCommand(kind OLTPKind, i int) []byte {
	var b bytes.Buffer
	for q := 0; q < 10; q++ {
		b.WriteString("R ")
		b.WriteString(strconv.Itoa((i*7 + q*13) % 512))
		b.WriteByte(' ')
	}
	if kind == ReadWrite {
		for u := 0; u < 4; u++ {
			b.WriteString("W ")
			b.WriteString(strconv.Itoa((i*11 + u*29) % 512))
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(i + u))
			b.WriteByte(' ')
		}
	}
	b.WriteString("C\n")
	return b.Bytes()
}

// RunOLTP issues n sequential transactions against the minidb listening
// on port and reports throughput in transactions per virtual second.
func RunOLTP(sys *vm.System, port int32, kind OLTPKind, n int) (OLTPResult, error) {
	res := OLTPResult{Transactions: n}
	if err := settle(sys); err != nil {
		return res, err
	}
	start := sys.TotalCycles
	for i := 0; i < n; i++ {
		ok, err := oneRequest(sys, port, txnCommand(kind, i))
		if err != nil {
			return res, fmt.Errorf("workload: txn %d: %w", i, err)
		}
		if ok {
			res.Completed++
		} else {
			res.Failed++
		}
	}
	res.Cycles = sys.TotalCycles - start
	return res, nil
}
