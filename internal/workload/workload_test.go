package workload

import (
	"bytes"
	"testing"

	"lfi/internal/apps"
	"lfi/internal/libc"
	"lfi/internal/vm"
)

func TestTxnCommandShape(t *testing.T) {
	ro := txnCommand(ReadOnly, 3)
	if bytes.Contains(ro, []byte("W ")) {
		t.Errorf("read-only txn contains writes: %q", ro)
	}
	if n := bytes.Count(ro, []byte("R ")); n != 10 {
		t.Errorf("read-only txn has %d selects, want 10", n)
	}
	if !bytes.HasSuffix(ro, []byte("C\n")) {
		t.Errorf("txn must end with commit: %q", ro)
	}
	rw := txnCommand(ReadWrite, 3)
	if n := bytes.Count(rw, []byte("W ")); n != 4 {
		t.Errorf("read/write txn has %d updates, want 4", n)
	}
}

func TestDoneDetector(t *testing.T) {
	cases := map[string]bool{
		"200 payload\n\n": true,
		"OK 42\n":         true,
		"partial":         false,
		"OK ":             false, // no terminating newline
		"":                false,
	}
	for resp, want := range cases {
		if got := done([]byte(resp)); got != want {
			t.Errorf("done(%q) = %v, want %v", resp, got, want)
		}
	}
}

func TestResultArithmetic(t *testing.T) {
	r := ABResult{Requests: 10, Completed: 10, Cycles: vm.ClockHz}
	if r.Seconds() != 1.0 {
		t.Errorf("seconds = %v", r.Seconds())
	}
	o := OLTPResult{Completed: 50, Cycles: vm.ClockHz / 2}
	if o.Seconds() != 0.5 || o.TPS() != 100 {
		t.Errorf("oltp: secs=%v tps=%v", o.Seconds(), o.TPS())
	}
	if (OLTPResult{}).TPS() != 0 {
		t.Error("zero-cycle TPS must be 0")
	}
}

// TestRequestAgainstCrashedServer: a dead listener yields a failed
// request, not an error.
func TestRequestAgainstCrashedServer(t *testing.T) {
	sys := vm.NewSystem(vm.Options{})
	ok, err := Exchange(sys, 9999, []byte("hi"))
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if ok {
		t.Error("request against nothing should fail")
	}
}

// TestABFullRunSmoke drives httpd through the exported API.
func TestABFullRunSmoke(t *testing.T) {
	lc, err := libc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	httpd, err := apps.Compile("httpd")
	if err != nil {
		t.Fatal(err)
	}
	sys := vm.NewSystem(vm.Options{})
	sys.Register(lc)
	sys.Register(httpd)
	for p, data := range apps.WWWFiles() {
		sys.Kernel().AddFile(p, data)
	}
	if _, err := sys.Spawn("httpd", vm.SpawnConfig{}); err != nil {
		t.Fatal(err)
	}
	r, err := RunAB(sys, apps.HTTPPort, "/index.html", 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 3 || r.Failed != 0 || r.Cycles == 0 {
		t.Errorf("result = %+v", r)
	}
}
