package apps_test

import (
	"testing"

	"lfi/internal/apps"
	"lfi/internal/vm"
)

// readAvail reads one av_* counter from the client program's globals.
func readAvail(t *testing.T, p *vm.Proc, client, sym string) int32 {
	t.Helper()
	im, ok := p.ImageByName(client)
	if !ok {
		t.Fatalf("no image %q", client)
	}
	va, ok := im.SymbolVA(sym)
	if !ok {
		t.Fatalf("no symbol %q in %s", sym, client)
	}
	v, err := p.ReadWord(va)
	if err != nil {
		t.Fatalf("read %s: %v", sym, err)
	}
	return v
}

func TestNewServerAppsCompile(t *testing.T) {
	for _, n := range []string{"httpd-mp", "httpdw", "minidb-nr", "minidb-drv", "minidb-nr-drv", "httpd-mp-drv", "httpd-drv"} {
		if _, err := apps.Compile(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := apps.AvailClientSource("pidgin"); err == nil {
		t.Error("pidgin should have no availability client")
	}
}

// driveClean runs the generated traffic client against its server with
// no faults injected and returns the client process. Every request of
// every phase must succeed and both processes must exit cleanly.
func driveClean(t *testing.T, server string, extra ...string) *vm.Proc {
	t.Helper()
	client := apps.AvailClientName(server)
	sys := newSystem(t, append([]string{server, client}, extra...)...)
	for p, data := range apps.WWWFiles() {
		sys.Kernel().AddFile(p, data)
	}
	proc, err := sys.Spawn(client, vm.SpawnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(2_000_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if proc.Status.Signal != 0 || proc.Status.Code != 0 {
		t.Fatalf("client status = %+v", proc.Status)
	}
	if done := readAvail(t, proc, client, "av_done"); done != 1 {
		t.Fatalf("av_done = %d", done)
	}
	total := int32(apps.AvailWarm + apps.AvailSteady + apps.AvailPost)
	ok := readAvail(t, proc, client, "av_warm_ok") +
		readAvail(t, proc, client, "av_steady_ok") +
		readAvail(t, proc, client, "av_post_ok")
	if ok != total {
		t.Errorf("clean run served %d/%d requests", ok, total)
	}
	fails := readAvail(t, proc, client, "av_warm_fail") +
		readAvail(t, proc, client, "av_steady_fail") +
		readAvail(t, proc, client, "av_post_fail") +
		readAvail(t, proc, client, "av_tail_fail") +
		readAvail(t, proc, client, "av_warm_err") +
		readAvail(t, proc, client, "av_steady_err") +
		readAvail(t, proc, client, "av_post_err")
	if fails != 0 {
		t.Errorf("clean run failed %d requests", fails)
	}
	// Every process (client, server, workers) must have exited.
	for _, p := range sys.Procs() {
		if !p.Exited {
			t.Errorf("pid %d did not exit", p.ID)
		}
	}
	return proc
}

func TestAvailClientMinidbCleanRun(t *testing.T) {
	p := driveClean(t, "minidb")
	_ = p
}

func TestAvailClientMinidbNRCleanRun(t *testing.T) {
	driveClean(t, "minidb-nr")
}

func TestAvailClientHttpdMPCleanRun(t *testing.T) {
	driveClean(t, "httpd-mp", "httpdw")
}

func TestAvailClientHttpdCleanRun(t *testing.T) {
	driveClean(t, "httpd")
}
