// Package apps provides the MiniC workload applications used by the
// evaluation experiments:
//
//   - httpd: an Apache-analogue web server serving a static page and a
//     "PHP" page that performs many more library calls (paper Table 3);
//   - minidb: a MySQL-analogue transactional store with a WAL, recovery
//     paths exercised only under fault injection, and an unexercised
//     admin module (paper Table 4 and the §6.1 coverage experiment);
//   - pidgin + resolver: the §6.1 case study — a parent that forks a DNS
//     resolver child communicating over a pipe, where the child ignores
//     write() failures and the parent aborts on a huge malloc when the
//     pipe stream desynchronises (the real Pidgin ticket #8672 bug).
//
// All programs link against the synthetic libc and run in the SIA-32 VM.
package apps

import (
	"fmt"
	"strings"

	"lfi/internal/minic"
	"lfi/internal/obj"
)

// Port numbers the servers listen on.
const (
	HTTPPort int32 = 80
	DBPort   int32 = 3306
)

const commonHeader = `
needs "libc.so";
extern int open(byte *path, int flags, int mode);
extern int close(int fd);
extern int read(int fd, byte *buf, int n);
extern int write(int fd, byte *buf, int n);
extern int socket(int domain);
extern int listen(int fd, int port);
extern int accept(int fd);
extern int connect(int fd, int port);
extern int yield(void);
extern int send(int fd, byte *buf, int n);
extern int recv(int fd, byte *buf, int n);
extern byte *malloc(int n);
extern void free(byte *p);
extern int strlen(byte *s);
extern int strcmp(byte *a, byte *b);
extern int strncmp(byte *a, byte *b, int n);
extern void memset(byte *p, int v, int n);
extern int itoa(int v, byte *out);
extern int atoi(byte *s);
extern void exit(int code);
extern void abort(void);
extern int pipe(int *fds);
extern int spawn(byte *prog, int fdin, int fdout);
extern int waitpid(int pid, int *status);
extern tls int errno;
`

// HttpdSource is the web server. GET /index.html is the static workload
// (a handful of library calls); GET /app.php is the dynamic workload
// (roughly ten times as many library calls, mirroring the paper's
// static-vs-PHP factor in Table 3).
const HttpdSource = commonHeader + `
int requests = 0;

// render models the server-side processing of a response body (header
// assembly, content filtering) — the in-process work that dominates a
// real Apache request next to which trigger evaluation is negligible.
static int render(byte *buf, int n, int rounds) {
  int r;
  int i;
  int acc;
  acc = 0;
  for (r = 0; r < rounds; r = r + 1) {
    for (i = 0; i < n; i = i + 1) {
      acc = acc + buf[i];
      acc = acc ^ (acc << 1);
    }
  }
  return acc;
}

static int handle_static(int cfd, byte *path) {
  int fd;
  int n;
  byte fbuf[256];
  fd = open(path, 0, 0);
  if (fd < 0) {
    send(cfd, "404 \n\n", 6);
    return -1;
  }
  n = read(fd, fbuf, 255);
  if (n < 0) { n = 0; }
  close(fd);
  render(fbuf, n, 8);
  send(cfd, "200 ", 4);
  send(cfd, fbuf, n);
  send(cfd, "\n\n", 2);
  return 0;
}

static int handle_php(int cfd) {
  int i;
  int fd;
  int n;
  int total;
  byte fbuf[128];
  byte num[16];
  byte *tmp;
  total = 0;
  for (i = 0; i < 20; i = i + 1) {
    fd = open("/www/inc.php", 0, 0);
    if (fd < 0) { continue; }
    n = read(fd, fbuf, 127);
    if (n > 0) {
      total = total + n;
      // "Interpret" the include — PHP burns far more CPU per request
      // than the static path, as in the paper's 10x baseline gap.
      render(fbuf, n, 10);
    }
    close(fd);
  }
  tmp = malloc(64);
  if (tmp != 0) {
    memset(tmp, 'p', 32);
    free(tmp);
  }
  send(cfd, "200 ", 4);
  itoa(total, num);
  send(cfd, num, strlen(num));
  send(cfd, "\n\n", 2);
  return 0;
}

int main(void) {
  int lfd;
  int cfd;
  int n;
  byte req[256];
  lfd = socket(1);
  if (lfd < 0) { return 1; }
  if (listen(lfd, 80) != 0) { return 2; }
  while (1) {
    cfd = accept(lfd);
    if (cfd < 0) { continue; }
    n = recv(cfd, req, 255);
    if (n <= 0) { close(cfd); continue; }
    req[n] = 0;
    requests = requests + 1;
    if (strncmp(req, "GET /quit", 9) == 0) {
      // Orderly shutdown, for traffic drivers that outlive the server.
      send(cfd, "200 bye\n\n", 9);
      close(cfd);
      exit(0);
    }
    if (strncmp(req, "GET /app.php", 12) == 0) {
      handle_php(cfd);
    } else {
      handle_static(cfd, "/www/index.html");
    }
    close(cfd);
  }
  return 0;
}
`

// HttpdWorkerSource is the request-processing child of the multi-process
// web server. It reads one newline-terminated request line per turn from
// fd 0, performs the file and render work of the single-process httpd,
// and writes a (4-byte length, body) response frame to fd 1. EOF on the
// request pipe is the master's shutdown signal.
const HttpdWorkerSource = commonHeader + `
static int render(byte *buf, int n, int rounds) {
  int r;
  int i;
  int acc;
  acc = 0;
  for (r = 0; r < rounds; r = r + 1) {
    for (i = 0; i < n; i = i + 1) {
      acc = acc + buf[i];
      acc = acc ^ (acc << 1);
    }
  }
  return acc;
}

static int work_static(byte *resp) {
  int fd;
  int n;
  byte fbuf[256];
  int i;
  fd = open("/www/index.html", 0, 0);
  if (fd < 0) {
    resp[0] = '4'; resp[1] = '0'; resp[2] = '4'; resp[3] = ' ';
    resp[4] = 10; resp[5] = 10;
    return 6;
  }
  n = read(fd, fbuf, 255);
  if (n < 0) { n = 0; }
  close(fd);
  render(fbuf, n, 8);
  resp[0] = '2'; resp[1] = '0'; resp[2] = '0'; resp[3] = ' ';
  for (i = 0; i < n; i = i + 1) { resp[4 + i] = fbuf[i]; }
  resp[4 + n] = 10;
  resp[5 + n] = 10;
  return 6 + n;
}

static int work_php(byte *resp) {
  int i;
  int fd;
  int n;
  int total;
  int len;
  byte fbuf[128];
  total = 0;
  for (i = 0; i < 20; i = i + 1) {
    fd = open("/www/inc.php", 0, 0);
    if (fd < 0) { continue; }
    n = read(fd, fbuf, 127);
    if (n > 0) {
      total = total + n;
      render(fbuf, n, 10);
    }
    close(fd);
  }
  resp[0] = '2'; resp[1] = '0'; resp[2] = '0'; resp[3] = ' ';
  len = 4 + itoa(total, resp + 4);
  resp[len] = 10;
  resp[len + 1] = 10;
  return len + 2;
}

int main(void) {
  int n;
  int len;
  byte req[256];
  byte resp[300];
  while (1) {
    n = read(0, req, 255);
    if (n <= 0) { exit(0); }
    req[n] = 0;
    if (strncmp(req, "GET /app.php", 12) == 0) {
      len = work_php(resp);
    } else {
      len = work_static(resp);
    }
    write(1, &len, 4);
    write(1, resp, len);
  }
  return 0;
}
`

// HttpdMPSource is the multi-process web server: an accepting master
// that spawns two HttpdWorkerSource children and round-robins request
// lines to them over pipes (the Apache prefork shape). A worker that
// dies mid-request is detected by EOF on its response pipe and retired;
// the master fails the request over to the surviving worker, and serves
// "500 " once no workers remain — it degrades instead of wedging.
// "GET /quit" shuts the pool down: close the request pipes, reap the
// children, exit.
const HttpdMPSource = commonHeader + `
int rq[4];
int rs[4];
int dead[2];
int wpid[2];

static int read_full(int fd, byte *dst, int want) {
  int got;
  int n;
  got = 0;
  while (got < want) {
    n = read(fd, dst + got, want - got);
    if (n < 0) { continue; }
    if (n == 0) { return got; }
    got = got + n;
  }
  return got;
}

static int mp_ask(int w, byte *req, int n, byte *resp) {
  int len;
  if (dead[w] == 1) { return -1; }
  if (write(rq[w * 2 + 1], req, n) < 0) { dead[w] = 1; return -1; }
  if (read_full(rs[w * 2], &len, 4) != 4) { dead[w] = 1; return -1; }
  if (len < 1 || len > 299) { dead[w] = 1; return -1; }
  if (read_full(rs[w * 2], resp, len) != len) { dead[w] = 1; return -1; }
  return len;
}

int main(void) {
  int lfd;
  int cfd;
  int n;
  int w;
  int st;
  int len;
  int p[2];
  byte req[256];
  byte resp[300];
  if (pipe(p) != 0) { return 1; }
  rq[0] = p[0]; rq[1] = p[1];
  if (pipe(p) != 0) { return 1; }
  rs[0] = p[0]; rs[1] = p[1];
  if (pipe(p) != 0) { return 1; }
  rq[2] = p[0]; rq[3] = p[1];
  if (pipe(p) != 0) { return 1; }
  rs[2] = p[0]; rs[3] = p[1];
  wpid[0] = spawn("httpdw", rq[0], rs[1]);
  wpid[1] = spawn("httpdw", rq[2], rs[3]);
  if (wpid[0] < 0 || wpid[1] < 0) { return 2; }
  // Drop the worker-side pipe ends: a dead worker must surface as EOF
  // on its response pipe and EPIPE on its request pipe, not a master
  // blocked on its own still-open copies.
  close(rq[0]);
  close(rq[2]);
  close(rs[1]);
  close(rs[3]);
  lfd = socket(1);
  if (lfd < 0) { return 3; }
  if (listen(lfd, 80) != 0) { return 4; }
  w = 0;
  while (1) {
    cfd = accept(lfd);
    if (cfd < 0) { continue; }
    n = recv(cfd, req, 255);
    if (n <= 0) { close(cfd); continue; }
    req[n] = 0;
    if (strncmp(req, "GET /quit", 9) == 0) {
      send(cfd, "200 bye\n\n", 9);
      close(cfd);
      close(rq[1]);
      close(rq[3]);
      waitpid(wpid[0], &st);
      waitpid(wpid[1], &st);
      exit(0);
    }
    len = mp_ask(w, req, n, resp);
    if (len < 0) { len = mp_ask(1 - w, req, n, resp); }
    w = 1 - w;
    if (len < 0) {
      send(cfd, "500 \n\n", 6);
      close(cfd);
      continue;
    }
    send(cfd, resp, len);
    close(cfd);
  }
  return 0;
}
`

// MinidbSource is the transactional store. Function-name prefixes form
// the "modules" of the coverage experiment: net_ (connection handling),
// parse_ (command parsing), tbl_ (table), wal_ (write-ahead log, with
// recovery code reached only under fault injection — the InnoDB-ibuf
// analogue), adm_ (admin commands the regression suite never runs).
//
// Protocol: one connection per transaction; the command string is a
// space-separated token list: "R <k>" reads key k, "W <k> <v>" writes,
// "A" runs admin stats, "C" commits, "Q" shuts the server down after
// replying. The reply is "OK <sum>\n", or "ERR <sum>\n" when the
// transaction's WAL append failed — durability is part of the contract,
// so a client-visible error is the honest answer.
//
// cfg_retry selects the recovery policy: 1 retries/reopens the WAL on
// append failures (the production build); 0 gives up on the first
// failure (MinidbNRSource) — the pair behind the availability
// comparison of retrying vs non-retrying servers.
const MinidbSource = commonHeader + `
int table[512];
int wal_fd = -1;
int cfg_retry = 1;
int wal_failures = 0;
int wal_shorts = 0;
int wal_lost = 0;
int stats_reads = 0;
int stats_writes = 0;
int txn_werr = 0;
int quit_req = 0;

// ---- wal module ----

static int wal_open(void) {
  wal_fd = open("/db/wal", 64 | 1 | 1024, 0);
  if (wal_fd < 0) { return -1; }
  return 0;
}

static void wal_giveup(void) {
  // Recovery failed: run degraded, count every update as lost.
  wal_lost = wal_lost + 1;
  wal_fd = -1;
}

static void wal_reopen(void) {
  if (wal_fd >= 0) { close(wal_fd); }
  wal_fd = open("/db/wal", 64 | 1 | 1024, 0);
  if (wal_fd < 0) {
    wal_giveup();
    return;
  }
  wal_failures = wal_failures + 1;
}

static void wal_short_write(int wrote, int want) {
  // A short append tore a record; truncate by reopening and note it.
  wal_shorts = wal_shorts + 1;
  if (wrote > 0) {
    wal_reopen();
    return;
  }
  wal_giveup();
}

static int wal_format(int k, int v, byte *rec) {
  int len;
  int crc;
  int i;
  len = itoa(k, rec);
  rec[len] = ':';
  len = len + 1;
  len = len + itoa(v, rec + len);
  rec[len] = '#';
  len = len + 1;
  crc = 0;
  for (i = 0; i < len; i = i + 1) {
    crc = crc + rec[i];
    crc = crc ^ (crc << 1);
  }
  if (crc < 0) { crc = -crc; }
  len = len + itoa(crc % 997, rec + len);
  rec[len] = 10;
  return len + 1;
}

static int wal_append(int k, int v) {
  byte rec[48];
  int len;
  int n;
  len = wal_format(k, v, rec);
  if (wal_fd < 0) { return -1; }
  n = write(wal_fd, rec, len);
  if (n < 0) {
    if (cfg_retry == 0) {
      // Non-retrying build: the first append failure retires the WAL.
      wal_giveup();
      return -1;
    }
    if (errno == 4) {
      // EINTR: retry once, the common recovery idiom.
      n = write(wal_fd, rec, len);
      if (n == len) { return 0; }
    }
    wal_reopen();
    return -1;
  }
  if (n < len) {
    if (cfg_retry == 0) {
      wal_giveup();
      return -1;
    }
    wal_short_write(n, len);
    return -1;
  }
  return 0;
}

// ---- tbl module ----

static int tbl_slot(int k) {
  int s;
  s = k % 512;
  if (s < 0) { s = s + 512; }
  return s;
}

// tbl_walk models the index traversal and row materialisation a real
// storage engine performs per point query — the per-transaction work
// that dwarfs trigger evaluation in the paper's Table 4.
static int tbl_walk(int s) {
  int i;
  int acc;
  acc = s;
  for (i = 0; i < 120; i = i + 1) {
    acc = acc + table[(s + i * 7) % 512];
    acc = acc ^ (acc << 1);
  }
  return acc;
}

static int tbl_get(int k) {
  int s;
  stats_reads = stats_reads + 1;
  s = tbl_slot(k);
  tbl_walk(s);
  return table[s];
}

static void tbl_put(int k, int v) {
  int s;
  stats_writes = stats_writes + 1;
  s = tbl_slot(k);
  tbl_walk(s);
  table[s] = v;
}

static int tbl_check(void) {
  int i;
  int bad;
  bad = 0;
  for (i = 0; i < 512; i = i + 1) {
    if (table[i] < 0) { bad = bad + 1; }
  }
  return bad;
}

// ---- adm module (never exercised by the regression workloads) ----

static int adm_stats(int cfd) {
  byte num[16];
  send(cfd, "STATS ", 6);
  itoa(stats_reads, num);
  send(cfd, num, strlen(num));
  send(cfd, " ", 1);
  itoa(stats_writes, num);
  send(cfd, num, strlen(num));
  send(cfd, "\n", 1);
  return 0;
}

static int adm_flush(void) {
  int i;
  for (i = 0; i < 512; i = i + 1) { table[i] = 0; }
  if (wal_fd >= 0) { close(wal_fd); }
  return wal_open();
}

static int adm_repair(void) {
  int bad;
  bad = tbl_check();
  if (bad > 0) {
    adm_flush();
    return bad;
  }
  return 0;
}

static int adm_backup(int cfd) {
  int fd;
  int i;
  byte num[16];
  int len;
  fd = open("/db/backup", 64 | 1 | 512, 0);
  if (fd < 0) { return -1; }
  for (i = 0; i < 512; i = i + 1) {
    len = itoa(table[i], num);
    num[len] = 10;
    write(fd, num, len + 1);
  }
  close(fd);
  send(cfd, "BACKUP OK\n", 10);
  return 0;
}

// ---- parse module ----

static int parse_int(byte *s, int *pos) {
  int i;
  int v;
  int sign;
  i = *pos;
  while (s[i] == ' ') { i = i + 1; }
  sign = 1;
  if (s[i] == '-') { sign = -1; i = i + 1; }
  v = 0;
  while (s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  *pos = i;
  return v * sign;
}

static int parse_exec(int cfd, byte *cmd, int len) {
  int pos;
  int sum;
  int k;
  int v;
  byte *scratch;
  pos = 0;
  sum = 0;
  while (pos < len) {
    if (cmd[pos] == ' ' || cmd[pos] == 10) { pos = pos + 1; continue; }
    if (cmd[pos] == 'R') {
      pos = pos + 1;
      k = parse_int(cmd, &pos);
      sum = sum + tbl_get(k);
      continue;
    }
    if (cmd[pos] == 'W') {
      pos = pos + 1;
      k = parse_int(cmd, &pos);
      v = parse_int(cmd, &pos);
      tbl_put(k, v);
      if (wal_append(k, v) != 0) { txn_werr = 1; }
      continue;
    }
    if (cmd[pos] == 'Q') {
      // Shutdown: reply to this transaction, then exit the serve loop.
      pos = pos + 1;
      quit_req = 1;
      continue;
    }
    if (cmd[pos] == 'A') {
      pos = pos + 1;
      adm_stats(cfd);
      adm_repair();
      adm_backup(cfd);
      continue;
    }
    if (cmd[pos] == 'V') {
      // Verify: consistency check over the table.
      pos = pos + 1;
      sum = sum + tbl_check();
      continue;
    }
    if (cmd[pos] == 'C') {
      pos = pos + 1;
      // Commit: allocate the reply record. The allocation result is
      // not checked — MySQL-style latent bug that only fault
      // injection exposes (the paper saw 12 SIGSEGVs).
      scratch = malloc(48);
      scratch[0] = 'C';
      free(scratch);
      continue;
    }
    pos = pos + 1;
  }
  return sum;
}

// ---- net module ----

static int net_reply(int cfd, int sum) {
  byte out[32];
  int len;
  if (txn_werr == 1) {
    // The transaction lost durability: tell the client.
    out[0] = 'E';
    out[1] = 'R';
    out[2] = 'R';
    out[3] = ' ';
    len = 4 + itoa(sum, out + 4);
    out[len] = 10;
    return send(cfd, out, len + 1);
  }
  out[0] = 'O';
  out[1] = 'K';
  out[2] = ' ';
  len = 3 + itoa(sum, out + 3);
  out[len] = 10;
  return send(cfd, out, len + 1);
}

static int net_serve(int lfd) {
  int cfd;
  int n;
  int sum;
  byte cmd[256];
  cfd = accept(lfd);
  if (cfd < 0) { return -1; }
  n = recv(cfd, cmd, 255);
  if (n <= 0) { close(cfd); return -1; }
  cmd[n] = 0;
  txn_werr = 0;
  sum = parse_exec(cfd, cmd, n);
  if (net_reply(cfd, sum) < 0) {
    // Reply failed: nothing to recover, the client sees a dead conn.
    close(cfd);
    return -1;
  }
  close(cfd);
  return 0;
}

int main(void) {
  int lfd;
  if (wal_open() != 0) { return 1; }
  lfd = socket(1);
  if (lfd < 0) { return 2; }
  if (listen(lfd, 3306) != 0) { return 3; }
  while (1) {
    net_serve(lfd);
    if (quit_req == 1) { exit(0); }
  }
  return 0;
}
`

// ResolverSource is pidgin's forked DNS child. The bug is verbatim from
// the paper: "The child does not handle the case when writes fail or are
// incomplete" — every write return value is ignored, so an injected
// write failure desynchronises the response stream.
const ResolverSource = commonHeader + `
int main(void) {
  byte req[64];
  int n;
  int status;
  int size;
  while (1) {
    n = read(0, req, 64);
    if (n <= 0) { exit(0); }
    status = 0;
    size = 8;
    write(1, &status, 4);
    write(1, &size, 4);
    write(1, "10.0.0.1", 8);
  }
  return 0;
}
`

// PidginSource is the parent: it spawns the resolver, sends resolution
// requests, and reads (status, size, payload) responses. It trusts the
// size field; after a desync it calls malloc with a garbage size, the
// allocation fails, and the xmalloc-style wrapper aborts — the paper's
// SIGABRT.
const PidginSource = commonHeader + `
static int read_full(int fd, byte *dst, int want) {
  int got;
  int n;
  got = 0;
  while (got < want) {
    n = read(fd, dst + got, want - got);
    if (n < 0) { continue; }
    if (n == 0) { return got; }
    got = got + n;
  }
  return got;
}

static byte *xmalloc(int n) {
  byte *p;
  p = malloc(n);
  if (p == 0) { abort(); }
  return p;
}

int main(void) {
  int req_pipe[2];
  int resp_pipe[2];
  int pid;
  int i;
  int status;
  int size;
  byte *addr;
  int resolved;
  if (pipe(req_pipe) != 0) { return 1; }
  if (pipe(resp_pipe) != 0) { return 2; }
  pid = spawn("resolver", req_pipe[0], resp_pipe[1]);
  if (pid < 0) { return 3; }
  resolved = 0;
  for (i = 0; i < 12; i = i + 1) {
    // The parent is robust to its own send failures: retry.
    while (write(req_pipe[1], "resolve im.example\n", 19) < 0) { }
    if (read_full(resp_pipe[0], &status, 4) != 4) { break; }
    if (read_full(resp_pipe[0], &size, 4) != 4) { break; }
    if (status == 0) {
      addr = xmalloc(size);
      read_full(resp_pipe[0], addr, size);
      resolved = resolved + 1;
      free(addr);
    }
  }
  return resolved;
}
`

// MinidbNRSource is the non-retrying minidb build: identical to
// MinidbSource except that the first WAL append failure permanently
// retires the log (cfg_retry = 0). The availability experiments sweep
// both builds to measure what the retry actually buys.
var MinidbNRSource = strings.Replace(MinidbSource,
	"int cfg_retry = 1;", "int cfg_retry = 0;", 1)

// Availability traffic phases, in requests. The generated client pumps
// Warm requests to warm the server up, Steady requests during which the
// faultload fires, and Post requests that probe recovery; the last Tail
// of the post phase is the restored-service window the "lost" class
// checks. AvailAfter is the call-window offset availability faultloads
// arm (`<calls after>`): past warmup, inside the steady phase, for
// every server function the traffic exercises each request.
const (
	AvailWarm   = 200
	AvailSteady = 600
	AvailPost   = 400
	AvailTail   = 100
	AvailAfter  = 250
)

// AvailClientName returns the program name of the generated traffic
// client for a server ("minidb" -> "minidb-drv").
func AvailClientName(server string) string { return server + "-drv" }

// availClientTemplate is the synthetic traffic driver: it spawns the
// server, pumps the three availability phases through loopback sockets
// on the deterministic cycle clock, counts per-phase outcomes in the
// av_* globals the host reads back after the run, then shuts the
// server down and reaps it. One connection per request; each request
// resolves three ways — served (success reply), answered with an error
// status (the service is up but failing), or unanswered (connect
// exhaustion, send failure, or EOF before a reply) — because the
// availability classifier must tell a server that answers ERR
// (degraded) from one that has stopped answering (wedged).
const availClientTemplate = commonHeader + `
int av_warm_ok = 0;
int av_warm_fail = 0;
int av_warm_err = 0;
int av_steady_ok = 0;
int av_steady_fail = 0;
int av_steady_err = 0;
int av_post_ok = 0;
int av_post_fail = 0;
int av_post_err = 0;
int av_tail_fail = 0;
int av_done = 0;
int srv_up = 0;

@BUILDREQ@

// req_once returns 2 when the request was served, 1 when the server
// answered with an error status, 0 when it never answered.
static int req_once(int i) {
  int fd;
  int n;
  int got;
  int tries;
  int len;
  int cap;
  byte req[48];
  byte buf[64];
  len = build_req(i, req);
  fd = socket(1);
  if (fd < 0) { return 0; }
  // Before the first successful connect the server may still be
  // starting up: retry across several scheduler rounds. Afterwards a
  // refused connect means the listener is gone; fail fast.
  tries = 0;
  cap = 8;
  if (srv_up == 0) { cap = 1500; }
  while (connect(fd, @PORT@) != 0) {
    tries = tries + 1;
    if (tries > cap) { close(fd); return 0; }
    yield();
  }
  srv_up = 1;
  if (send(fd, req, len) < 0) { close(fd); return 0; }
  got = 0;
  while (got < 63) {
    n = recv(fd, buf + got, 63 - got);
    if (n <= 0) { break; }
    got = got + n;
    if (buf[got - 1] == 10) { break; }
  }
  close(fd);
  if (got < 1) { return 0; }
  if (buf[0] != '@OK@') { return 1; }
  return 2;
}

static void quit_server(void) {
  int fd;
  int tries;
  int n;
  byte buf[32];
  fd = socket(1);
  if (fd < 0) { return; }
  tries = 0;
  while (connect(fd, @PORT@) != 0) {
    tries = tries + 1;
    if (tries > 8) { close(fd); return; }
    yield();
  }
  send(fd, @QUIT@);
  // Wait for the goodbye (or EOF) so the server gets its shutdown turn.
  n = recv(fd, buf, 31);
  close(fd);
}

int main(void) {
  int pid;
  int i;
  int st;
  int r;
  pid = spawn("@SERVER@", 0, 0);
  if (pid < 0) { return 9; }
  for (i = 0; i < @WARM@; i = i + 1) {
    r = req_once(i);
    if (r == 2) { av_warm_ok = av_warm_ok + 1; }
    if (r == 1) { av_warm_err = av_warm_err + 1; }
    if (r == 0) { av_warm_fail = av_warm_fail + 1; }
  }
  for (i = 0; i < @STEADY@; i = i + 1) {
    r = req_once(@WARM@ + i);
    if (r == 2) { av_steady_ok = av_steady_ok + 1; }
    if (r == 1) { av_steady_err = av_steady_err + 1; }
    if (r == 0) { av_steady_fail = av_steady_fail + 1; }
  }
  for (i = 0; i < @POST@; i = i + 1) {
    r = req_once(@WARM@ + @STEADY@ + i);
    if (r == 2) { av_post_ok = av_post_ok + 1; }
    if (r == 1) { av_post_err = av_post_err + 1; }
    if (r == 0) { av_post_fail = av_post_fail + 1; }
    if (r != 2) {
      if (i >= @POST@ - @TAIL@) { av_tail_fail = av_tail_fail + 1; }
    }
  }
  quit_server();
  waitpid(pid, &st);
  av_done = 1;
  return 0;
}
`

// dbBuildReq writes one minidb transaction per request — always a
// write, so every request exercises the WAL durability path.
const dbBuildReq = `static int build_req(int i, byte *req) {
  int len;
  int k;
  k = i % 64;
  req[0] = 'W';
  req[1] = ' ';
  len = 2 + itoa(k, req + 2);
  req[len] = ' ';
  len = len + 1;
  len = len + itoa(k + 7, req + len);
  req[len] = ' ';
  req[len + 1] = 'C';
  req[len + 2] = 10;
  return len + 3;
}`

// httpBuildReq requests the static page each time.
const httpBuildReq = `static int build_req(int i, byte *req) {
  int j;
  byte *s;
  s = "GET /index.html\n";
  j = 0;
  while (s[j] != 0) { req[j] = s[j]; j = j + 1; }
  return j;
}`

// AvailClientSource generates the traffic client for one of the server
// applications.
func AvailClientSource(server string) (string, error) {
	var port int32
	var ok byte
	var build, quit string
	switch server {
	case "minidb", "minidb-nr":
		port, ok, build = DBPort, 'O', dbBuildReq
		quit = `"Q\n", 2`
	case "httpd", "httpd-mp":
		port, ok, build = HTTPPort, '2', httpBuildReq
		quit = `"GET /quit\n", 10`
	default:
		return "", fmt.Errorf("apps: no availability client for %q", server)
	}
	r := strings.NewReplacer(
		"@BUILDREQ@", build,
		"@PORT@", fmt.Sprint(port),
		"@OK@", string(ok),
		"@QUIT@", quit,
		"@SERVER@", server,
		"@WARM@", fmt.Sprint(AvailWarm),
		"@STEADY@", fmt.Sprint(AvailSteady),
		"@POST@", fmt.Sprint(AvailPost),
		"@TAIL@", fmt.Sprint(AvailTail),
	)
	return r.Replace(availClientTemplate), nil
}

// Compile builds one of the applications by name.
func Compile(name string) (*obj.File, error) {
	var src string
	switch name {
	case "httpd":
		src = HttpdSource
	case "httpd-mp":
		src = HttpdMPSource
	case "httpdw":
		src = HttpdWorkerSource
	case "minidb":
		src = MinidbSource
	case "minidb-nr":
		src = MinidbNRSource
	case "pidgin":
		src = PidginSource
	case "resolver":
		src = ResolverSource
	default:
		if server, ok := strings.CutSuffix(name, "-drv"); ok {
			src, err := AvailClientSource(server)
			if err != nil {
				return nil, err
			}
			f, err := minic.Compile(name, src, obj.Executable)
			if err != nil {
				return nil, fmt.Errorf("apps: compiling %s: %w", name, err)
			}
			return f, nil
		}
		return nil, fmt.Errorf("apps: unknown application %q", name)
	}
	f, err := minic.Compile(name, src, obj.Executable)
	if err != nil {
		return nil, fmt.Errorf("apps: compiling %s: %w", name, err)
	}
	return f, nil
}

// WWWFiles returns the web content httpd serves; install them with
// Kernel.AddFile before spawning.
func WWWFiles() map[string][]byte {
	page := make([]byte, 200)
	for i := range page {
		page[i] = byte('a' + i%26)
	}
	inc := make([]byte, 100)
	for i := range inc {
		inc[i] = byte('A' + i%26)
	}
	return map[string][]byte{
		"/www/index.html": page,
		"/www/inc.php":    inc,
	}
}
